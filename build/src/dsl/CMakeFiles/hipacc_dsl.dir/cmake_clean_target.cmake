file(REMOVE_RECURSE
  "libhipacc_dsl.a"
)
