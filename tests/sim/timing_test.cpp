// Per-queue stream timeline: overlap vs serial scheduling semantics,
// dependency (ready_ms) handling, busy/utilisation accounting, and the
// PCIe copy model the streaming executor charges H2D/D2H transfers with.
#include <gtest/gtest.h>

#include <cstring>

#include "hwmodel/device_spec.hpp"
#include "sim/timing.hpp"

namespace hipacc::sim {
namespace {

TEST(StreamTimelineTest, OverlapRunsQueuesIndependently) {
  StreamTimeline timeline(/*overlap=*/true);
  // An upload and a compute op with no dependency land on different queues
  // and therefore run concurrently.
  EXPECT_DOUBLE_EQ(timeline.Enqueue(StreamQueue::kCopyH2D, 0.0, 4.0), 4.0);
  EXPECT_DOUBLE_EQ(timeline.Enqueue(StreamQueue::kCompute, 0.0, 5.0), 5.0);
  // Same-queue submissions serialise on that queue's availability.
  EXPECT_DOUBLE_EQ(timeline.Enqueue(StreamQueue::kCompute, 0.0, 2.0), 7.0);
  EXPECT_DOUBLE_EQ(timeline.finish_ms(), 7.0);
  EXPECT_DOUBLE_EQ(timeline.busy_ms(StreamQueue::kCompute), 7.0);
  EXPECT_DOUBLE_EQ(timeline.busy_ms(StreamQueue::kCopyH2D), 4.0);
  EXPECT_DOUBLE_EQ(timeline.busy_ms(StreamQueue::kCopyD2H), 0.0);
  EXPECT_EQ(timeline.op_count(), 3);
}

TEST(StreamTimelineTest, SerialCollapsesOntoOneTimeline) {
  StreamTimeline timeline(/*overlap=*/false);
  EXPECT_DOUBLE_EQ(timeline.Enqueue(StreamQueue::kCopyH2D, 0.0, 4.0), 4.0);
  // Different queue, but serial mode makes it wait anyway.
  EXPECT_DOUBLE_EQ(timeline.Enqueue(StreamQueue::kCompute, 0.0, 5.0), 9.0);
  EXPECT_DOUBLE_EQ(timeline.Enqueue(StreamQueue::kCopyD2H, 0.0, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(timeline.finish_ms(), 10.0);
  // Busy time is still attributed per queue so utilisation reports stay
  // comparable with overlap mode.
  EXPECT_DOUBLE_EQ(timeline.busy_ms(StreamQueue::kCompute), 5.0);
  EXPECT_DOUBLE_EQ(timeline.busy_ms(StreamQueue::kCopyH2D), 4.0);
  EXPECT_DOUBLE_EQ(timeline.busy_ms(StreamQueue::kCopyD2H), 1.0);
}

TEST(StreamTimelineTest, ReadyTimeDefersStartAcrossQueues) {
  StreamTimeline timeline(/*overlap=*/true);
  const double upload = timeline.Enqueue(StreamQueue::kCopyH2D, 0.0, 3.0);
  // Compute depends on the upload; its queue is free but it must wait.
  const double compute = timeline.Enqueue(StreamQueue::kCompute, upload, 2.0);
  EXPECT_DOUBLE_EQ(compute, 5.0);
  // Download depends on compute.
  EXPECT_DOUBLE_EQ(timeline.Enqueue(StreamQueue::kCopyD2H, compute, 1.0), 6.0);
  // A second frame's upload only waited on its own queue — it overlapped
  // the first frame's compute.
  EXPECT_DOUBLE_EQ(timeline.Enqueue(StreamQueue::kCopyH2D, 0.0, 3.0), 6.0);
  EXPECT_DOUBLE_EQ(timeline.finish_ms(), 6.0);
}

TEST(StreamTimelineTest, UtilisationIsBusyOverMakespan) {
  StreamTimeline timeline(/*overlap=*/true);
  EXPECT_DOUBLE_EQ(timeline.utilisation(StreamQueue::kCompute), 0.0);
  timeline.Enqueue(StreamQueue::kCompute, 0.0, 6.0);
  timeline.Enqueue(StreamQueue::kCopyH2D, 0.0, 3.0);
  EXPECT_DOUBLE_EQ(timeline.utilisation(StreamQueue::kCompute), 1.0);
  EXPECT_DOUBLE_EQ(timeline.utilisation(StreamQueue::kCopyH2D), 0.5);
}

TEST(StreamTimelineTest, QueueNamesAreStable) {
  EXPECT_STREQ(to_string(StreamQueue::kCompute), "compute");
  EXPECT_STREQ(to_string(StreamQueue::kCopyH2D), "copy_h2d");
  EXPECT_STREQ(to_string(StreamQueue::kCopyD2H), "copy_d2h");
}

TEST(ModelCopyTest, CopyTimeIsBandwidthPlusFixedOverhead) {
  hw::DeviceSpec device;
  device.pcie_bandwidth_gbps = 6.0;
  // 6e6 bytes over 6 GB/s = 1 ms, plus the fixed DMA-setup overhead.
  EXPECT_NEAR(ModelCopyMs(6'000'000, device), 1.0 + kCopyOverheadMs, 1e-12);
  // Tiny copies are dominated by the overhead, never free.
  EXPECT_GE(ModelCopyMs(4, device), kCopyOverheadMs);
  // Double the bytes ~ double the transfer part.
  const double one = ModelCopyMs(6'000'000, device) - kCopyOverheadMs;
  const double two = ModelCopyMs(12'000'000, device) - kCopyOverheadMs;
  EXPECT_NEAR(two, 2.0 * one, 1e-9);
}

}  // namespace
}  // namespace hipacc::sim
