#include "sim/jit/cache.hpp"

#include "sim/bytecode.hpp"
#include "sim/jit/emit.hpp"
#include "sim/trace.hpp"
#include "support/disk_store.hpp"
#include "support/hash.hpp"
#include "support/log.hpp"
#include "support/string_utils.hpp"

namespace hipacc::sim::jit {

JitCache& JitCache::Instance() {
  static JitCache* cache = new JitCache();  // immortal: lanes may outlive main
  return *cache;
}

void JitCache::ResetForTesting() {
  const std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  compiles_.store(0);
}

JitCache::Outcome JitCache::GetOrCompile(const ProgramSet& ps) {
  Outcome out;
  EmittedSource emitted = EmitNativeSource(ps);

  support::Fnv1a key;
  key.Mix(emitted.source);
  key.Mix(kJitAbiVersion);
  key.Mix(ToolchainIdentity());
  const std::uint64_t digest = key.digest();

  std::shared_ptr<Entry> entry;
  bool owner = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto& bucket = map_[digest];
    for (const auto& e : bucket)
      if (e->source == emitted.source) entry = e;
    if (!entry) {
      entry = std::make_shared<Entry>();
      entry->source = emitted.source;
      bucket.push_back(entry);
      owner = true;
    } else {
      // In-flight deduplication: wait for the compiling thread.
      cv_.wait(lock, [&] { return entry->done; });
      out.program = entry->program;
      out.error = entry->error;
      return out;
    }
  }

  // Owner path: resolve outside the lock (toolchain runs take ~0.5 s).
  // The persistent tier is consulted first: a cached .so skips the
  // toolchain entirely and only pays a dlopen.
  const std::string tag = "hipacc_" + support::Fnv1a().Mix(digest).hex();
  // Canonical disk identity mirrors the in-memory key: full source text
  // plus ABI and toolchain identity, so neither an ABI bump nor a compiler
  // switch can ever reuse a stale object.
  const std::string canonical =
      StrFormat("abi=%d|toolchain=", kJitAbiVersion) +
      ToolchainIdentity() + "|" + emitted.source;
  support::DiskStore& disk = support::GlobalDiskStore();

  auto resolve = [&emitted](std::shared_ptr<NativeModule> module,
                            std::string* error)
      -> std::shared_ptr<const NativeProgram> {
    auto native = std::make_shared<NativeProgram>();
    native->module = std::move(module);
    for (const auto& si : emitted.symbols) {
      NativeProgram::Entry e;
      e.region = si.region;
      e.fused = si.fused;
      e.fn = reinterpret_cast<JitWarpFn>(
          native->module->Sym(si.symbol.c_str()));
      if (!e.fn) {
        *error = "missing jit symbol " + si.symbol;
        return nullptr;
      }
      native->fns.push_back(e);
    }
    return native;
  };

  std::shared_ptr<const NativeProgram> program;
  std::string error;
  if (disk.enabled()) {
    out.disk_checked = true;
    if (std::optional<std::string> so_bytes = disk.Get("jit", canonical)) {
      Result<std::shared_ptr<NativeModule>> module =
          OpenSharedObjectBytes(*so_bytes, tag);
      if (module.ok()) {
        program = resolve(module.value(), &error);
        out.disk_hit = program != nullptr;
        error.clear();  // a bad cached object falls through to a fresh build
      }
    }
  }

  if (!program) {
    out.compiled = true;
    std::string so_bytes;
    Result<std::shared_ptr<NativeModule>> module = CompileSharedObject(
        emitted.source, tag, disk.enabled() ? &so_bytes : nullptr);
    // Count actual toolchain invocations; a missing toolchain
    // (Unimplemented) never ran anything.
    if (module.ok() ||
        module.status().code() != StatusCode::kUnimplemented)
      compiles_.fetch_add(1);
    if (module.ok()) {
      program = resolve(module.value(), &error);
      if (program && !so_bytes.empty())
        out.disk_stored = disk.Put("jit", canonical, so_bytes).stored;
    } else {
      error = module.status().ToString();
    }
  }

  {
    const std::lock_guard<std::mutex> lock(mu_);
    entry->done = true;
    entry->failed = !error.empty();
    entry->error = error;
    entry->program = program;
  }
  cv_.notify_all();
  out.program = std::move(program);
  out.error = std::move(error);
  return out;
}

const NativeProgram* AcquireNative(const ProgramSet& ps, int threshold,
                                   TraceSink* trace) {
  TierState* ts = ps.jit_state.get();
  if (!ts) return nullptr;

  // Lock-free hot path once tiered up.
  if (const NativeProgram* fast = ts->fast.load(std::memory_order_acquire)) {
    if (trace) trace->IncrementCounter("jit.hit");
    return fast;
  }
  if (ts->phase.load(std::memory_order_relaxed) == 2) {
    if (trace) trace->IncrementCounter("jit.threaded");
    return nullptr;
  }

  const std::uint64_t launch =
      ts->launches.fetch_add(1, std::memory_order_relaxed) + 1;
  if (launch < static_cast<std::uint64_t>(threshold > 0 ? threshold : 1)) {
    if (trace) trace->IncrementCounter("jit.threaded");
    return nullptr;
  }

  const std::lock_guard<std::mutex> lock(ts->mu);
  if (const NativeProgram* fast = ts->fast.load(std::memory_order_acquire)) {
    if (trace) trace->IncrementCounter("jit.hit");
    return fast;
  }
  if (ts->phase.load(std::memory_order_relaxed) == 2) {
    if (trace) trace->IncrementCounter("jit.threaded");
    return nullptr;
  }

  JitCache::Outcome outcome = JitCache::Instance().GetOrCompile(ps);
  if (trace && outcome.disk_checked) {
    trace->IncrementCounter(outcome.disk_hit ? "cache.disk.hit"
                                             : "cache.disk.miss");
    if (outcome.disk_stored) trace->IncrementCounter("cache.disk.store");
  }
  if (!outcome.program) {
    ts->phase.store(2, std::memory_order_release);
    if (trace) {
      trace->IncrementCounter("jit.error");
      trace->IncrementCounter("jit.threaded");
    }
    LogWarn("native tier unavailable for " + ps.kernel_name + ": " +
            outcome.error + " — staying on the threaded VM");
    return nullptr;
  }
  ts->program = outcome.program;
  ts->phase.store(1, std::memory_order_release);
  ts->fast.store(ts->program.get(), std::memory_order_release);
  if (trace) {
    trace->IncrementCounter(outcome.compiled ? "jit.compile"
                                             : "jit.cache_hit");
    trace->IncrementCounter("jit.hit");
  }
  return ts->program.get();
}

}  // namespace hipacc::sim::jit
