// Interpreter and timing model: hand-built device kernels executed on the
// simulated device, divergence, sampled-vs-full agreement, launch
// validation, and timing-model monotonicity.
#include <gtest/gtest.h>

#include "dsl/image.hpp"
#include "hwmodel/device_db.hpp"
#include "sim/simulator.hpp"

namespace hipacc::sim {
namespace {

using namespace hipacc::ast;

ExprPtr Gx() { return ast::ThreadIndex(ThreadIndexKind::kGlobalIdX); }
ExprPtr Gy() { return ast::ThreadIndex(ThreadIndexKind::kGlobalIdY); }

/// out[x, y] = in[x, y] * 2 + 1
DeviceKernel MakeScaleKernel() {
  DeviceKernel dk;
  dk.name = "scale";
  dk.buffers = {{"IN", MemSpace::kGlobal, false},
                {"_out", MemSpace::kGlobal, true}};
  ExprPtr read = ast::MemRead(MemSpace::kGlobal, "IN", Gx(), Gy(),
                              BoundaryMode::kUndefined, {});
  ExprPtr value = Binary(BinaryOp::kAdd,
                         Binary(BinaryOp::kMul, read, FloatLit(2.0)),
                         FloatLit(1.0));
  dk.variants = {{Region::kInterior,
                  Block({ast::MemWrite(MemSpace::kGlobal, "_out", Gx(), Gy(),
                                       value)})}};
  return dk;
}

Launch MakeLaunch(const DeviceKernel& kernel, dsl::Image<float>& in,
                  dsl::Image<float>& out, hw::KernelConfig config) {
  Launch launch;
  launch.kernel = &kernel;
  launch.config = config;
  launch.width = out.width();
  launch.height = out.height();
  launch.buffers = {{"IN", in.span().data(), in.width(), in.height(),
                     in.stride(), false},
                    {"_out", out.span().data(), out.width(), out.height(),
                     out.stride(), true}};
  return launch;
}

TEST(InterpreterTest, PointKernelComputesEveryPixel) {
  const int n = 37;  // not block aligned
  dsl::Image<float> in(n, n), out(n, n);
  for (int y = 0; y < n; ++y)
    for (int x = 0; x < n; ++x) in.at(x, y) = static_cast<float>(x + y);
  const DeviceKernel kernel = MakeScaleKernel();
  Simulator sim(hw::TeslaC2050());
  auto stats = sim.Execute(MakeLaunch(kernel, in, out, {32, 4}));
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  for (int y = 0; y < n; ++y)
    for (int x = 0; x < n; ++x)
      ASSERT_FLOAT_EQ(out.at(x, y), 2.0f * (x + y) + 1.0f);
  EXPECT_EQ(stats.value().metrics.oob_violations, 0u);
  EXPECT_GT(stats.value().metrics.global_read_instrs, 0u);
  EXPECT_GT(stats.value().metrics.global_write_instrs, 0u);
}

TEST(InterpreterTest, DivergentIfUsesLaneMasks) {
  // out = (x % 2 == 0) ? 10 : 20 via an if/else.
  DeviceKernel dk;
  dk.name = "diverge";
  dk.buffers = {{"_out", MemSpace::kGlobal, true}};
  ExprPtr even = Binary(BinaryOp::kEq, Binary(BinaryOp::kMod, Gx(), IntLit(2)),
                        IntLit(0));
  StmtPtr body = Block({
      Decl(ScalarType::kFloat, "v", FloatLit(0.0)),
      If(even, Assign("v", AssignOp::kAssign, FloatLit(10.0)),
         Assign("v", AssignOp::kAssign, FloatLit(20.0))),
      ast::MemWrite(MemSpace::kGlobal, "_out", Gx(), Gy(),
                    VarRef("v", ScalarType::kFloat)),
  });
  dk.variants = {{Region::kInterior, body}};

  const int n = 16;
  dsl::Image<float> dummy(n, n), out(n, n);
  Launch launch;
  launch.kernel = &dk;
  launch.config = {32, 1};
  launch.width = n;
  launch.height = n;
  launch.buffers = {{"_out", out.span().data(), n, n, out.stride(), true}};
  Simulator sim(hw::TeslaC2050());
  ASSERT_TRUE(sim.Execute(launch).ok());
  for (int y = 0; y < n; ++y)
    for (int x = 0; x < n; ++x)
      ASSERT_FLOAT_EQ(out.at(x, y), x % 2 == 0 ? 10.0f : 20.0f);
}

TEST(InterpreterTest, PerLaneLoopBounds) {
  // out[x, y] = sum over i in [0, x] of 1 -> x + 1 (divergent trip counts).
  DeviceKernel dk;
  dk.name = "tri";
  dk.buffers = {{"_out", MemSpace::kGlobal, true}};
  StmtPtr body = Block({
      Decl(ScalarType::kFloat, "s", FloatLit(0.0)),
      For("i", IntLit(0), Gx(), 1,
          Block({Assign("s", AssignOp::kAddAssign, FloatLit(1.0))})),
      ast::MemWrite(MemSpace::kGlobal, "_out", Gx(), Gy(),
                    VarRef("s", ScalarType::kFloat)),
  });
  dk.variants = {{Region::kInterior, body}};

  const int n = 40;
  dsl::Image<float> out(n, 2);
  Launch launch;
  launch.kernel = &dk;
  launch.config = {32, 2};
  launch.width = n;
  launch.height = 2;
  launch.buffers = {{"_out", out.span().data(), n, 2, out.stride(), true}};
  Simulator sim(hw::TeslaC2050());
  ASSERT_TRUE(sim.Execute(launch).ok());
  for (int x = 0; x < n; ++x) ASSERT_FLOAT_EQ(out.at(x, 0), x + 1.0f);
}

TEST(SimulatorTest, ValidateRejectsBadLaunches) {
  const DeviceKernel kernel = MakeScaleKernel();
  dsl::Image<float> in(16, 16), out(16, 16);
  Simulator sim(hw::TeslaC2050());
  {
    Launch launch = MakeLaunch(kernel, in, out, {32, 64});  // 2048 threads
    EXPECT_EQ(sim.Validate(launch).code(), StatusCode::kResourceExhausted);
  }
  {
    Launch launch = MakeLaunch(kernel, in, out, {32, 1});
    launch.buffers.pop_back();  // output unbound
    EXPECT_EQ(sim.Validate(launch).code(), StatusCode::kInvalidArgument);
  }
  {
    Launch launch = MakeLaunch(kernel, in, out, {32, 1});
    launch.width = 0;
    EXPECT_FALSE(sim.Validate(launch).ok());
  }
}

TEST(SimulatorTest, AmdConfigLimitRejected) {
  // "on graphics cards from AMD, the maximal number of threads ... is 256";
  // the same kernel at 512 threads is a launch error there but fine on
  // NVIDIA (Section V-C's motivating example).
  const DeviceKernel kernel = MakeScaleKernel();
  dsl::Image<float> in(64, 64), out(64, 64);
  const Launch launch = MakeLaunch(kernel, in, out, {512, 1});
  EXPECT_FALSE(Simulator(hw::RadeonHd5870()).Validate(launch).ok());
  EXPECT_TRUE(Simulator(hw::TeslaC2050()).Validate(launch).ok());
}

TEST(SimulatorTest, SampledMeasureTracksFullExecution) {
  const DeviceKernel kernel = MakeScaleKernel();
  const int n = 256;
  dsl::Image<float> in(n, n), out(n, n);
  Simulator sim(hw::TeslaC2050());
  auto full = sim.Execute(MakeLaunch(kernel, in, out, {32, 4}));
  auto sampled = sim.Measure(MakeLaunch(kernel, in, out, {32, 4}));
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(sampled.ok());
  EXPECT_TRUE(sampled.value().sampled);
  // Uniform kernel: extrapolated counts match the exact ones closely.
  const double full_alu = static_cast<double>(full.value().metrics.alu_ops);
  const double sampled_alu =
      static_cast<double>(sampled.value().metrics.alu_ops);
  EXPECT_NEAR(sampled_alu / full_alu, 1.0, 0.02);
  EXPECT_NEAR(sampled.value().timing.total_ms / full.value().timing.total_ms,
              1.0, 0.05);
}

TEST(TimingModelTest, BoundsAndMonotonicity) {
  const hw::DeviceSpec device = hw::TeslaC2050();
  hw::OccupancyResult occ;
  occ.valid = true;
  occ.active_warps = 48;
  occ.occupancy = 1.0;

  Metrics compute_heavy;
  compute_heavy.alu_ops = 1'000'000;
  const TimingBreakdown base = ModelTime(compute_heavy, device, occ);
  EXPECT_GT(base.total_ms, kLaunchOverheadMs);

  Metrics more = compute_heavy;
  more.alu_ops *= 2;
  EXPECT_GT(ModelTime(more, device, occ).total_ms, base.total_ms);

  // Bandwidth-bound case: many transactions, no compute.
  Metrics memory_heavy;
  memory_heavy.global_transactions = 1'000'000;
  const TimingBreakdown mem = ModelTime(memory_heavy, device, occ);
  EXPECT_GT(mem.bandwidth_cycles, mem.compute_cycles);

  // Lower occupancy exposes more latency.
  hw::OccupancyResult low = occ;
  low.active_warps = 8;
  Metrics latency_heavy;
  latency_heavy.global_transactions = 100'000;
  EXPECT_GT(ModelTime(latency_heavy, device, low).latency_cycles,
            ModelTime(latency_heavy, device, occ).latency_cycles);

  // The OpenCL issue-overhead factor scales compute.
  EXPECT_GT(ModelTime(compute_heavy, device, occ, 1.35).total_ms,
            base.total_ms);
}

TEST(SimulatorTest, DegenerateRegionLaunchRejected) {
  // A 9-region kernel on an image too small for its window/config: rejected
  // with an actionable message instead of silent wrong guards.
  DeviceKernel dk = MakeScaleKernel();
  dk.bh_window = {6, 6};
  dk.variants.clear();
  for (const Region region :
       {Region::kTopLeft, Region::kTop, Region::kTopRight, Region::kLeft,
        Region::kInterior, Region::kRight, Region::kBottomLeft,
        Region::kBottom, Region::kBottomRight})
    dk.variants.push_back(
        {region, Block({ast::MemWrite(MemSpace::kGlobal, "_out", Gx(), Gy(),
                                      FloatLit(0.0))})});
  dsl::Image<float> in(10, 10), out(10, 10);
  const Launch launch = MakeLaunch(dk, in, out, {128, 1});
  const Status st = Simulator(hw::TeslaC2050()).Validate(launch);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("too small"), std::string::npos);
}

TEST(SimulatorOptionsTest, ParseExecEngineAcceptsAllThreeEngines) {
  // The --sim-engine flag surface: every engine name the help text
  // advertises must parse, and the rejection message must list all of them
  // so a typo points at the full choice set.
  ASSERT_TRUE(ParseExecEngine("bytecode").ok());
  EXPECT_EQ(ParseExecEngine("bytecode").value(), ExecEngine::kBytecode);
  ASSERT_TRUE(ParseExecEngine("ast").ok());
  EXPECT_EQ(ParseExecEngine("ast").value(), ExecEngine::kAst);
  ASSERT_TRUE(ParseExecEngine("native").ok());
  EXPECT_EQ(ParseExecEngine("native").value(), ExecEngine::kNative);
  const Result<ExecEngine> bad = ParseExecEngine("jit");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad.status().message().find("native"), std::string::npos);
}

}  // namespace
}  // namespace hipacc::sim
