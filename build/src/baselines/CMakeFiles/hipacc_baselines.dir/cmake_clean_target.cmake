file(REMOVE_RECURSE
  "libhipacc_baselines.a"
)
