# Empty dependencies file for table5_quadro_opencl.
# This may be replaced when dependencies are built.
