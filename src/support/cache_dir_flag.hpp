// Shared --cache-dir=PATH|off flag for every user-facing binary (the
// compiler CLI, benchmarks, examples): steers the process-wide persistent
// cache tier (support/disk_store.hpp) that backs the compilation cache, the
// JIT object cache, and the profile store.
//
// Libraries and tests stay hermetic — GlobalDiskStore() starts disabled —
// so enabling-by-default is an explicit, binary-level decision made by
// registering this flag.
#pragma once

#include "support/cli.hpp"
#include "support/disk_store.hpp"

namespace hipacc::support {

/// Registers `--cache-dir=PATH|off` on `cli` and immediately enables the
/// process-wide persistent cache at its resolved default location
/// ($HIPACC_CACHE_DIR, else ~/.cache/hipacc), so a binary that never passes
/// the flag still warm-starts. Parsing a value reconfigures the store in
/// place before any compilation runs; "off" disables the tier entirely.
inline CliParser& RegisterCacheDirFlag(CliParser& cli) {
  DiskStoreOptions defaults;
  defaults.root = ResolveCacheDir("");
  ConfigureGlobalDiskStore(std::move(defaults));
  return cli.Value(
      "cache-dir", "PATH|off",
      "persistent compilation/JIT cache directory (default: "
      "$HIPACC_CACHE_DIR, else ~/.cache/hipacc; off disables)",
      [](const std::string& value) -> Status {
        DiskStoreOptions options;
        options.root = ResolveCacheDir(value);
        ConfigureGlobalDiskStore(std::move(options));
        return Status::Ok();
      });
}

}  // namespace hipacc::support
