// Three-way differential fuzz harness: the proof that the native tier is a
// drop-in for the bytecode VM, and the VM for the AST interpreter. A seeded
// generator emits random DSL kernels — convolution masks of random shapes
// and values (including rank-1 masks that trigger the separable
// decomposition), static-bound stencil loops with random arithmetic bodies
// (the native tier's unrolled-fusion path), runtime-bound loops (the
// per-insn fallback path), divergent if/else bodies, and point-operator
// chains — across all five boundary modes, odd extents, random codegen
// variants (pixels-per-thread 1/2/4/8, scratchpad staging, texture paths,
// constant vs global masks, both backends), then runs every case on all
// three engines and requires them to be observably indistinguishable:
// output pixels bit for bit, every metric counter, and the modelled time.
//
// Two entry points: a pinned sweep that always runs under ctest (fixed
// seed, every generator kind), and an env-scaled sweep for CI fuzz jobs —
// HIPACC_FUZZ_CASES / HIPACC_FUZZ_SEED select the budget and seed matrix.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <map>
#include <set>

#include "compiler/driver.hpp"
#include "compiler/executable.hpp"
#include "ops/kernel_sources.hpp"
#include "runtime/bindings.hpp"
#include "runtime/graph.hpp"
#include "sim/bytecode.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "support/rng.hpp"
#include "support/string_utils.hpp"

namespace hipacc {
namespace {

using ast::BoundaryMode;
using ast::ScalarType;

constexpr BoundaryMode kAllModes[] = {
    BoundaryMode::kUndefined, BoundaryMode::kClamp, BoundaryMode::kRepeat,
    BoundaryMode::kMirror, BoundaryMode::kConstant};

// ---------------------------------------------------------------------------
// Random kernel generation
// ---------------------------------------------------------------------------

/// One generated fuzz case: the kernel source plus everything needed to
/// compile and launch it deterministically.
struct FuzzCase {
  frontend::KernelSource source;
  runtime::BindingSet scalars;
  codegen::CodegenOptions codegen;
  std::optional<hw::KernelConfig> forced_config;
  int width = 0;
  int height = 0;
  std::string summary;
};

enum class FuzzKind {
  kConvolution,   ///< random mask shape/values via ConvolutionSource
  kStaticLoop,    ///< literal-bound loop nest, random arithmetic body
  kRuntimeLoop,   ///< parameter-bound loop nest (native per-insn path)
  kPointChain,    ///< straight-line point-operator chain
};
constexpr FuzzKind kAllKinds[] = {FuzzKind::kConvolution, FuzzKind::kStaticLoop,
                                  FuzzKind::kRuntimeLoop,
                                  FuzzKind::kPointChain};

std::string FloatLit(Rng& rng) {
  static const char* kPool[] = {"0.0f",   "1.0f",  "0.5f",    "-0.75f",
                                "2.0f",   "-1.5f", "0.125f",  "3.0f",
                                "-0.25f", "0.1f",  "0.3333f", "-2.5f"};
  return kPool[rng.NextInt(0, 11)];
}

/// Random arithmetic expression over `atoms` (in-scope value names). Every
/// operator maps onto DSL constructs all three engines implement; divides
/// are denominator-guarded and exp is range-clamped so images stay mostly
/// finite — an all-NaN image would make the bitwise comparison vacuous.
std::string RandomExpr(Rng& rng, const std::vector<std::string>& atoms,
                       int depth) {
  if (depth <= 0 || rng.NextInt(0, 3) == 0) {
    if (!atoms.empty() && rng.NextInt(0, 2) != 0)
      return atoms[static_cast<std::size_t>(
          rng.NextInt(0, static_cast<int>(atoms.size()) - 1))];
    return FloatLit(rng);
  }
  const std::string a = RandomExpr(rng, atoms, depth - 1);
  const std::string b = RandomExpr(rng, atoms, depth - 1);
  switch (rng.NextInt(0, 7)) {
    case 0: return "(" + a + " + " + b + ")";
    case 1: return "(" + a + " - " + b + ")";
    case 2: return "(" + a + " * " + b + ")";
    case 3: return "(" + a + " / (0.5f + " + b + " * " + b + "))";
    case 4: return "fmin(" + a + ", " + b + ")";
    case 5: return "fmax(" + a + ", " + b + ")";
    case 6: return "exp(fmin(4.0f, " + a + "))";
    default: return "sqrt(fabs(" + a + "))";
  }
}

/// Statements executed once per window tap; mutates `acc` (always live) and
/// sometimes a secondary loop-carried value `w`. A random divergent
/// if/else exercises the masked-execution paths of all engines.
std::string RandomTapBody(Rng& rng, std::vector<std::string> atoms) {
  std::string body;
  body += "        float t = " + RandomExpr(rng, atoms, 2) + ";\n";
  atoms.push_back("t");
  if (rng.NextInt(0, 1) == 0) {
    body += "        if (" + RandomExpr(rng, atoms, 1) + " > " +
            FloatLit(rng) + ") {\n";
    body += "          acc = acc + " + RandomExpr(rng, atoms, 1) + ";\n";
    body += "        } else {\n";
    body += "          acc = acc - " + FloatLit(rng) + " * t;\n";
    body += "        }\n";
  } else {
    body += "        acc = acc + t * " + FloatLit(rng) + ";\n";
  }
  if (rng.NextInt(0, 2) == 0)
    body += "        w = 0.5f * w + " + RandomExpr(rng, atoms, 1) + ";\n";
  return body;
}

ast::AccessorInfo FuzzAccessor(int wx, int wy, BoundaryMode mode,
                               float constant_value) {
  ast::AccessorInfo acc;
  acc.name = "Input";
  acc.window = ast::WindowExtent::FromSize(wx, wy);
  acc.boundary = mode;
  acc.constant_value = constant_value;
  return acc;
}

FuzzCase MakeConvolutionCase(Rng& rng) {
  FuzzCase fc;
  const int wx = 2 * rng.NextInt(0, 2) + 1;
  const int wy = 2 * rng.NextInt(0, 2) + 1;
  std::vector<float> mask(static_cast<std::size_t>(wx) * wy);
  const bool rank1 = wx == wy && wx > 1 && rng.NextInt(0, 1) == 0;
  if (rank1) {
    // Outer product of random vectors: exactly rank 1, so the separable
    // decomposition fires and the native tier sees both passes.
    std::vector<float> u(static_cast<std::size_t>(wy)),
        v(static_cast<std::size_t>(wx));
    for (float& x : u) x = 2.0f * rng.NextFloat() - 0.5f;
    for (float& x : v) x = 2.0f * rng.NextFloat() - 0.5f;
    for (int y = 0; y < wy; ++y)
      for (int x = 0; x < wx; ++x)
        mask[static_cast<std::size_t>(y) * wx + x] =
            u[static_cast<std::size_t>(y)] * v[static_cast<std::size_t>(x)];
  } else {
    for (float& x : mask) x = 4.0f * rng.NextFloat() - 2.0f;
  }
  const BoundaryMode mode = kAllModes[rng.NextInt(0, 4)];
  fc.source = ops::ConvolutionSource("fuzz_conv", wx, wy, mask, mode,
                                     2.0f * rng.NextFloat() - 1.0f);
  fc.summary = StrFormat("conv %dx%d mode=%d rank1=%d", wx, wy,
                         static_cast<int>(mode), rank1 ? 1 : 0);
  return fc;
}

FuzzCase MakeStencilCase(Rng& rng, bool runtime_bounds) {
  FuzzCase fc;
  const int rx = rng.NextInt(0, 2);
  const int ry = rng.NextInt(0, 2);
  const int wx = runtime_bounds ? 5 : 2 * rx + 1;
  const int wy = runtime_bounds ? 5 : 2 * ry + 1;
  const BoundaryMode mode = kAllModes[rng.NextInt(0, 4)];
  fc.source.name = runtime_bounds ? "fuzz_rt_stencil" : "fuzz_stencil";
  fc.source.params = {{"p0", ScalarType::kFloat}};
  fc.source.accessors = {
      FuzzAccessor(wx, wy, mode, 2.0f * rng.NextFloat() - 1.0f)};
  std::vector<std::string> atoms = {"Input(xf, yf)", "Input()", "acc", "w"};
  if (rng.NextInt(0, 1) == 0) {
    ast::MaskInfo m;
    m.name = "M";
    m.size_x = wx;
    m.size_y = wy;
    m.static_values.resize(static_cast<std::size_t>(wx) * wy);
    for (float& x : m.static_values) x = 2.0f * rng.NextFloat() - 1.0f;
    fc.source.masks = {m};
    atoms.push_back("M(xf, yf)");
  }
  std::string bounds_y, bounds_x;
  if (runtime_bounds) {
    fc.source.params.push_back({"r", ScalarType::kInt});
    fc.scalars.Scalar("r", rng.NextInt(0, 2));
    bounds_y = bounds_x = "r";
  } else {
    bounds_y = StrFormat("%d", ry);
    bounds_x = StrFormat("%d", rx);
  }
  fc.source.body = StrFormat(R"(
    float acc = %s;
    float w = p0;
    for (int yf = -%s; yf <= %s; yf++) {
      for (int xf = -%s; xf <= %s; xf++) {
%s      }
    }
    output() = acc + w * %s;
  )",
                             FloatLit(rng).c_str(), bounds_y.c_str(),
                             bounds_y.c_str(), bounds_x.c_str(),
                             bounds_x.c_str(), RandomTapBody(rng, atoms).c_str(),
                             FloatLit(rng).c_str());
  fc.scalars.Scalar("p0", 2.0 * rng.NextDouble() - 1.0);
  fc.summary = StrFormat("%s window=%dx%d mode=%d mask=%d",
                         fc.source.name.c_str(), wx, wy,
                         static_cast<int>(mode),
                         fc.source.masks.empty() ? 0 : 1);
  return fc;
}

FuzzCase MakePointChainCase(Rng& rng) {
  FuzzCase fc;
  fc.source.name = "fuzz_point";
  fc.source.params = {{"p0", ScalarType::kFloat}};
  fc.source.accessors =
      {FuzzAccessor(1, 1, BoundaryMode::kUndefined, 0.0f)};
  const int stages = rng.NextInt(3, 9);
  std::string body = "\n    float v = Input();\n    float u = " +
                     FloatLit(rng) + ";\n";
  const std::vector<std::string> atoms = {"v", "u", "p0"};
  for (int s = 0; s < stages; ++s) {
    body += std::string("    ") + (s % 2 == 0 ? "v" : "u") + " = " +
            RandomExpr(rng, atoms, 2) + ";\n";
  }
  body += "    output() = v + u;\n  ";
  fc.source.body = body;
  fc.scalars.Scalar("p0", 2.0 * rng.NextDouble() - 1.0);
  fc.summary = StrFormat("point chain stages=%d", stages);
  return fc;
}

/// Draws codegen/launch variation shared by all kinds: pixels-per-thread,
/// memory paths, backend, block configuration, and an odd image extent.
void RandomizeLaunch(Rng& rng, FuzzCase* fc) {
  static const int kPpt[] = {1, 2, 4, 8};
  fc->codegen.pixels_per_thread = kPpt[rng.NextInt(0, 3)];
  fc->codegen.use_scratchpad = rng.NextInt(0, 3) == 0;
  fc->codegen.masks_in_constant_memory = rng.NextInt(0, 3) != 0;
  fc->codegen.scalar_optimizer = rng.NextInt(0, 3) != 0;
  if (rng.NextInt(0, 3) == 0)
    fc->codegen.texture = rng.NextInt(0, 1) == 0
                              ? codegen::TexturePolicy::kLinear
                              : codegen::TexturePolicy::kArray2D;
  if (rng.NextInt(0, 3) == 0)
    fc->codegen.border = codegen::BorderPolicy::kUniform;
  if (rng.NextInt(0, 3) == 0) fc->codegen.backend = ast::Backend::kOpenCL;
  switch (rng.NextInt(0, 2)) {
    case 0: fc->forced_config = hw::KernelConfig{32, 2}; break;
    case 1: fc->forced_config = hw::KernelConfig{16, 4}; break;
    default: break;  // heuristic-selected
  }
  fc->width = 2 * rng.NextInt(8, 48) + 1;   // odd, 17..97
  fc->height = 2 * rng.NextInt(6, 32) + 1;  // odd, 13..65
  fc->summary += StrFormat(" ppt=%d smem=%d tex=%d border=%d be=%d %dx%d",
                           fc->codegen.pixels_per_thread,
                           fc->codegen.use_scratchpad ? 1 : 0,
                           static_cast<int>(fc->codegen.texture),
                           static_cast<int>(fc->codegen.border),
                           static_cast<int>(fc->codegen.backend), fc->width,
                           fc->height);
}

FuzzCase MakeCase(Rng& rng, FuzzKind kind) {
  FuzzCase fc;
  switch (kind) {
    case FuzzKind::kConvolution: fc = MakeConvolutionCase(rng); break;
    case FuzzKind::kStaticLoop: fc = MakeStencilCase(rng, false); break;
    case FuzzKind::kRuntimeLoop: fc = MakeStencilCase(rng, true); break;
    case FuzzKind::kPointChain: fc = MakePointChainCase(rng); break;
  }
  RandomizeLaunch(rng, &fc);
  return fc;
}

// ---------------------------------------------------------------------------
// Execution and comparison
// ---------------------------------------------------------------------------

struct EngineRun {
  Status status = Status::Ok();
  std::vector<float> output;
  sim::LaunchStats stats;
};

HostImage<float> RandomInput(int w, int h, Rng& rng) {
  HostImage<float> img(w, h);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x)
      img(x, y) = 4.0f * rng.NextFloat() - 1.0f;
  return img;
}

EngineRun RunEngine(const compiler::CompiledKernel& kernel,
                    const HostImage<float>& input,
                    const runtime::BindingSet& scalars,
                    sim::ExecEngine engine) {
  EngineRun run;
  dsl::Image<float> in(input.width(), input.height());
  dsl::Image<float> out(input.width(), input.height());
  in.CopyFrom(input);
  runtime::BindingSet bindings = scalars;
  bindings.Input("Input", in).Output(out);
  Result<runtime::LaunchHolder> holder =
      runtime::BuildLaunch(kernel.device_ir, kernel.config.config, bindings);
  if (!holder.ok()) {
    run.status = holder.status();
    return run;
  }
  holder.value().launch.programs = kernel.bytecode.get();
  sim::SimulatorOptions options;
  options.engine = engine;
  options.jit_threshold = 1;  // tier up on the first launch
  sim::Simulator simulator(hw::TeslaC2050(), options);
  Result<sim::LaunchStats> stats = simulator.Execute(holder.value().launch);
  if (!stats.ok()) {
    run.status = stats.status();
    return run;
  }
  run.stats = stats.value();
  const HostImage<float>& data = out.getData();
  run.output.assign(data.data(), data.data() + data.size());
  return run;
}

void ExpectMetricsEqual(const sim::Metrics& a, const sim::Metrics& b) {
  EXPECT_EQ(a.alu_ops, b.alu_ops);
  EXPECT_EQ(a.sfu_calls, b.sfu_calls);
  EXPECT_EQ(a.global_read_instrs, b.global_read_instrs);
  EXPECT_EQ(a.global_write_instrs, b.global_write_instrs);
  EXPECT_EQ(a.global_transactions, b.global_transactions);
  EXPECT_EQ(a.l1_hits, b.l1_hits);
  EXPECT_EQ(a.tex_read_instrs, b.tex_read_instrs);
  EXPECT_EQ(a.tex_hits, b.tex_hits);
  EXPECT_EQ(a.tex_transactions, b.tex_transactions);
  EXPECT_EQ(a.const_broadcasts, b.const_broadcasts);
  EXPECT_EQ(a.const_serialized, b.const_serialized);
  EXPECT_EQ(a.smem_accesses, b.smem_accesses);
  EXPECT_EQ(a.smem_conflict_cycles, b.smem_conflict_cycles);
  EXPECT_EQ(a.oob_violations, b.oob_violations);
}

void ExpectRunsIdentical(const EngineRun& ref, const EngineRun& other,
                         const char* label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(ref.status.ok(), other.status.ok())
      << "ref: " << ref.status.ToString()
      << " other: " << other.status.ToString();
  if (!ref.status.ok()) {
    EXPECT_EQ(ref.status.ToString(), other.status.ToString());
    return;
  }
  ASSERT_EQ(ref.output.size(), other.output.size());
  EXPECT_EQ(std::memcmp(ref.output.data(), other.output.data(),
                        ref.output.size() * sizeof(float)),
            0)
      << "output pixels differ bitwise";
  ExpectMetricsEqual(ref.stats.metrics, other.stats.metrics);
  EXPECT_EQ(ref.stats.timing.total_ms, other.stats.timing.total_ms);
}

/// Compiles and runs one fuzz case on all three engines. Returns false when
/// the case did not compile (the sweep tracks the rate: a generator change
/// that drifts into mostly-invalid programs must fail loudly, not silently
/// shrink coverage).
bool RunFuzzCase(const FuzzCase& fc, Rng& rng) {
  compiler::CompileOptions options;
  options.codegen = fc.codegen;
  options.device = hw::TeslaC2050();
  options.image_width = fc.width;
  options.image_height = fc.height;
  options.forced_config = fc.forced_config;
  Result<compiler::CompiledKernel> compiled =
      compiler::Compile(fc.source, options);
  if (!compiled.ok() || compiled.value().bytecode == nullptr) return false;

  const HostImage<float> input = RandomInput(fc.width, fc.height, rng);
  const EngineRun ast = RunEngine(compiled.value(), input, fc.scalars,
                                  sim::ExecEngine::kAst);
  const EngineRun vm = RunEngine(compiled.value(), input, fc.scalars,
                                 sim::ExecEngine::kBytecode);
  const EngineRun native = RunEngine(compiled.value(), input, fc.scalars,
                                     sim::ExecEngine::kNative);
  SCOPED_TRACE(fc.summary);
  ExpectRunsIdentical(ast, vm, "ast vs bytecode");
  ExpectRunsIdentical(ast, native, "ast vs native");
  return true;
}

std::uint64_t EnvU64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  return std::strtoull(v, nullptr, 0);
}

// ---------------------------------------------------------------------------
// Multi-stage graph generation (fusion planner differential coverage)
// ---------------------------------------------------------------------------

/// A random linear-algebra-free DAG of single-input kernel stages. Stages
/// draw their input from any earlier image, so the generator naturally
/// produces point chains (point fusion), shared-input siblings (horizontal
/// fusion), and expression producers feeding convolutions (halo fusion).
struct GraphCase {
  struct Stage {
    std::string name;   ///< virtual image the stage produces
    frontend::KernelSource source;
    std::string input;  ///< virtual image consumed (accessor "Input")
    std::vector<std::pair<std::string, double>> scalars;
  };
  std::vector<Stage> stages;
  int width = 0;
  int height = 0;
  std::string summary;
};

GraphCase MakeGraphCase(Rng& rng, BoundaryMode mode) {
  GraphCase gc;
  gc.width = 2 * rng.NextInt(10, 24) + 1;   // odd, 21..49
  gc.height = 2 * rng.NextInt(8, 16) + 1;   // odd, 17..33
  const int n = rng.NextInt(2, 5);
  std::vector<std::string> images = {"in"};
  for (int s = 0; s < n; ++s) {
    GraphCase::Stage st;
    st.name = StrFormat("s%d", s);
    st.input = images[static_cast<std::size_t>(
        rng.NextInt(0, static_cast<int>(images.size()) - 1))];
    switch (rng.NextInt(0, 2)) {
      case 0: {  // point stage, per-stage unique scalar name
        const std::string p = StrFormat("p%d", s);
        st.source.name = StrFormat("point%d", s);
        st.source.params = {{p, ScalarType::kFloat}};
        st.source.accessors = {
            FuzzAccessor(1, 1, BoundaryMode::kUndefined, 0.0f)};
        st.source.body =
            "output() = Input() * " + p + " + " + FloatLit(rng) + ";";
        st.scalars = {{p, 2.0 * rng.NextDouble() - 1.0}};
        break;
      }
      case 1: {  // loop-bodied random convolution (halo consumer)
        const int w = 2 * rng.NextInt(1, 2) + 1;  // 3 or 5
        std::vector<float> mask(static_cast<std::size_t>(w) * w);
        for (float& x : mask) x = 2.0f * rng.NextFloat() - 1.0f;
        st.source = ops::ConvolutionSource(StrFormat("conv%d", s), w, w,
                                           std::move(mask), mode,
                                           2.0f * rng.NextFloat() - 1.0f);
        break;
      }
      default: {  // convolve()-intrinsic gaussian (halo-fusable producer)
        st.source =
            ops::GaussianConvolveSource(3, 0.5f + rng.NextFloat(), mode);
        break;
      }
    }
    images.push_back(st.name);
    gc.stages.push_back(std::move(st));
  }
  gc.summary = StrFormat("graph stages=%d mode=%d %dx%d", n,
                         static_cast<int>(mode), gc.width, gc.height);
  return gc;
}

/// Runs one graph case three ways — per-stage eager simulation, the graph
/// runtime with fusion off, and with the full planner — and requires every
/// externally visible image to match bit for bit. Accumulates the planner's
/// applied-edge count so sweeps can assert fusion actually engaged.
/// Increments `*ran` only when the case's kernels all compile (small odd
/// extents legitimately reject some window/config combinations); sweeps
/// assert on the ran-rate so a generator drifting into mostly-invalid
/// graphs fails loudly.
void RunGraphCase(const GraphCase& gc, int ppt, Rng& rng,
                  long long* fused_edges, int* ran) {
  SCOPED_TRACE(gc.summary + StrFormat(" ppt=%d", ppt));
  const HostImage<float> input = RandomInput(gc.width, gc.height, rng);

  // Sinks (images nothing consumes) become the graph's external outputs.
  std::set<std::string> consumed;
  for (const GraphCase::Stage& st : gc.stages) consumed.insert(st.input);
  std::vector<std::string> sinks;
  for (const GraphCase::Stage& st : gc.stages)
    if (consumed.count(st.name) == 0) sinks.push_back(st.name);

  // Eager reference: each stage compiled and simulated on its own, with
  // intermediates round-tripped through host images.
  std::map<std::string, HostImage<float>> eager;
  eager.emplace("in", input);
  for (const GraphCase::Stage& st : gc.stages) {
    compiler::CompileOptions copts;
    copts.codegen.pixels_per_thread = ppt;
    // Uniform border guards: the regioned boundary layout rejects launches
    // when a block row spans more than half a small fuzz image, which would
    // skip most high-ppt cases (the regioned path has its own coverage).
    copts.codegen.border = codegen::BorderPolicy::kUniform;
    copts.image_width = gc.width;
    copts.image_height = gc.height;
    Result<compiler::CompiledKernel> ck = compiler::Compile(st.source, copts);
    if (!ck.ok()) return;  // config rejected for this extent — skip the case
    dsl::Image<float> in(gc.width, gc.height), out(gc.width, gc.height);
    in.CopyFrom(eager.at(st.input));
    runtime::BindingSet bindings;
    bindings.Input("Input", in).Output(out);
    for (const auto& [name, value] : st.scalars) bindings.Scalar(name, value);
    compiler::SimulatedExecutable exe(std::move(ck).take(), hw::TeslaC2050());
    const Result<sim::LaunchStats> stats = exe.Run(bindings);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    eager.emplace(st.name, out.getData());
  }
  if (ran != nullptr) ++*ran;

  for (const compiler::FusionMode fuse :
       {compiler::FusionMode::kOff, compiler::FusionMode::kAll}) {
    runtime::PipelineGraph graph;
    graph.Source("in", gc.width, gc.height);
    for (const GraphCase::Stage& st : gc.stages)
      graph.Kernel(st.name, st.source, {{"Input", st.input}}, st.scalars);
    std::map<std::string, HostImage<float>> outs;
    runtime::PipelineGraph::OutputBindings out_bindings;
    for (const std::string& s : sinks) {
      graph.Output(s);
      outs.emplace(s, HostImage<float>(gc.width, gc.height));
    }
    for (auto& [name, image] : outs) out_bindings.emplace_back(name, &image);
    sim::TraceSink trace;
    runtime::GraphOptions gopts;
    gopts.fuse = fuse;
    gopts.executor = runtime::GraphOptions::Executor::kSimulator;
    gopts.run.codegen.pixels_per_thread = ppt;
    gopts.run.codegen.border = codegen::BorderPolicy::kUniform;
    gopts.run.trace = &trace;
    const Status run = graph.Run({{"in", &input}}, out_bindings, gopts);
    ASSERT_TRUE(run.ok()) << run.ToString();
    if (fuse == compiler::FusionMode::kAll && fused_edges != nullptr)
      *fused_edges += trace.counter("graph.fused_edges");
    for (const std::string& s : sinks) {
      SCOPED_TRACE(StrFormat("sink %s fuse=%s", s.c_str(), to_string(fuse)));
      const HostImage<float>& want = eager.at(s);
      const HostImage<float>& got = outs.at(s);
      ASSERT_EQ(want.size(), got.size());
      EXPECT_EQ(std::memcmp(want.data(), got.data(),
                            want.size() * sizeof(float)),
                0)
          << "graph output differs bitwise from eager";
    }
  }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

// Always-on pinned sweep: a fixed seed and one case of every generator kind,
// so every ctest run exercises each engine path end to end and a divergence
// reproduces byte for byte from the seed alone.
TEST(DifferentialFuzzTest, PinnedKindsAgree) {
  Rng rng(0x5EEDF00Du);
  int compiled = 0;
  for (const FuzzKind kind : kAllKinds) {
    for (int i = 0; i < 2; ++i) {
      if (RunFuzzCase(MakeCase(rng, kind), rng)) ++compiled;
    }
  }
  // All kinds are constructed from always-valid templates; at most the
  // occasional codegen combination may be rejected.
  EXPECT_GE(compiled, 6);
}

// Deterministic fused-arithmetic anchors: the generator draws kernels at
// random, so a short sweep can miss the native tier's unrolled-fusion
// float paths entirely. These two sources are known to fuse and between
// them cover float add/sub/mul/div chains, exp, masked accumulation, and
// loop-carried state — a mutation in the fused emitter fails here even
// when the random sweep gets unlucky.
TEST(DifferentialFuzzTest, PinnedFusedArithmeticAgrees) {
  Rng rng(0xFA57C0DEu);
  {
    FuzzCase fc;
    fc.source = ops::ToneCurveSource(6);
    fc.scalars.Scalar("center", 0.4).Scalar("weight", 0.7);
    fc.width = 65;
    fc.height = 33;
    fc.summary = "tone_curve pinned";
    EXPECT_TRUE(RunFuzzCase(fc, rng));
  }
  {
    FuzzCase fc;
    fc.source = ops::BilateralFixedSource(1, BoundaryMode::kMirror);
    fc.scalars.Scalar("sigma_r", 4);
    fc.width = 49;
    fc.height = 27;
    fc.summary = "bilateral_fixed pinned";
    EXPECT_TRUE(RunFuzzCase(fc, rng));
  }
}

// Pixels-per-thread matrix under a fixed generator seed: the codegen knob
// with the most layout-sensitive interaction with the fused native body.
TEST(DifferentialFuzzTest, PptMatrixAgrees) {
  for (const int ppt : {1, 2, 4, 8}) {
    Rng rng(0x9977AA55u ^ static_cast<std::uint64_t>(ppt));
    FuzzCase fc = MakeCase(rng, FuzzKind::kStaticLoop);
    fc.codegen.pixels_per_thread = ppt;
    RunFuzzCase(fc, rng);
  }
}

// Pinned fusion-planner matrix: every boundary mode crossed with every
// pixels-per-thread variant, each on a fresh random multi-stage graph.
// Fused, unfused, and eager execution must be observably identical, and
// the sweep as a whole must have applied at least one fusion (a planner
// that silently rejects everything would make the comparison vacuous).
TEST(DifferentialFuzzTest, GraphFusionMatrixAgrees) {
  Rng rng(0x6F5A9EEDu);
  long long fused_edges = 0;
  int ran = 0, cases = 0;
  for (const BoundaryMode mode : kAllModes)
    for (const int ppt : {1, 2, 4, 8}) {
      RunGraphCase(MakeGraphCase(rng, mode), ppt, rng, &fused_edges, &ran);
      ++cases;
    }
  EXPECT_GT(fused_edges, 0);
  EXPECT_GE(ran * 2, cases) << ran << " of " << cases << " graphs ran";
}

// Env-scaled graph sweep for the CI fuzz job (the graph matrix entry):
// HIPACC_FUZZ_CASES random graphs drawn from HIPACC_FUZZ_SEED, each with a
// random boundary mode and pixels-per-thread.
TEST(DifferentialFuzzTest, GraphSeededSweep) {
  const std::uint64_t seed = EnvU64("HIPACC_FUZZ_SEED", 0x6EED0002u);
  const std::uint64_t budget = EnvU64("HIPACC_FUZZ_CASES", 4);
  const int cases = static_cast<int>(budget > 200 ? 200 : budget);
  static const int kPpt[] = {1, 2, 4, 8};
  Rng rng(seed ^ 0x9A57u);
  long long fused_edges = 0;
  int ran = 0;
  for (int i = 0; i < cases; ++i)
    RunGraphCase(MakeGraphCase(rng, kAllModes[rng.NextInt(0, 4)]),
                 kPpt[rng.NextInt(0, 3)], rng, &fused_edges, &ran);
  if (cases >= 8) {
    EXPECT_GT(fused_edges, 0);
    EXPECT_GE(ran * 2, cases) << ran << " of " << cases << " graphs ran";
  }
}

// Env-scaled sweep for the CI fuzz job: HIPACC_FUZZ_CASES cases drawn from
// HIPACC_FUZZ_SEED. Defaults keep the ctest run quick; CI raises the budget.
TEST(DifferentialFuzzTest, SeededSweep) {
  const std::uint64_t seed = EnvU64("HIPACC_FUZZ_SEED", 0x5EED0001u);
  const std::uint64_t budget = EnvU64("HIPACC_FUZZ_CASES", 8);
  const int cases = static_cast<int>(budget > 500 ? 500 : budget);
  Rng rng(seed);
  int compiled = 0;
  for (int i = 0; i < cases; ++i) {
    const FuzzKind kind = kAllKinds[rng.NextInt(0, 3)];
    if (RunFuzzCase(MakeCase(rng, kind), rng)) ++compiled;
  }
  // Guard against generator rot: the bulk of generated programs must
  // compile, or the sweep is fuzzing nothing.
  EXPECT_GE(compiled * 10, cases * 6)
      << compiled << " of " << cases << " cases compiled";
}

}  // namespace
}  // namespace hipacc
