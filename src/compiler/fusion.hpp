// Producer→consumer point-wise kernel fusion at the DSL-source level: a
// point operator (every accessor a 1x1 window, so every read is at offset
// (0, 0)) is inlined into the local operator producing one of its inputs.
// The fused kernel computes the producer's output pixel into a local
// variable and substitutes it for the consumer's reads of the consumed
// accessor — eliminating one intermediate image and one full global-memory
// round trip per fused edge (write + re-read of every pixel).
//
// Legality rule (checked, not assumed):
//   * the consumed accessor exists in the consumer and has a 1x1 window;
//   * every OTHER consumer accessor is also 1x1 (a true point operator —
//     a windowed second input would need the producer's value at
//     neighbouring iteration points, which inlining cannot provide);
//   * the producer writes output() exactly once, as a statement-level
//     assignment (so the write can become a local definition);
//   * merging introduces no name collisions: params, accessors, masks and
//     body-local variables of producer and consumer must be disjoint.
// The graph runtime additionally requires the producer's image to have no
// other consumer and not be a pipeline output (runtime/graph.cpp).
//
// Fusion runs inside the compiler pipeline as the "fuse" pass
// (compiler/pass.cpp), requested through CompileOptions::fusion; the driver
// fingerprints the *fused* source, so compilation-cache keys distinguish a
// kernel from its fused variants.
#pragma once

#include <string>
#include <vector>

#include "frontend/parser.hpp"

namespace hipacc::compiler {

/// One fusion step: inline `consumer` into the producing kernel, replacing
/// the consumer's reads of `accessor` with the producer's output value.
struct FusionRequest {
  frontend::KernelSource consumer;
  std::string accessor;  ///< consumer accessor fed by the producer
};

/// Fuses one point-wise consumer into `producer` (see the legality rule in
/// the file comment). The fused kernel is named
/// "<producer>_<consumer>"; its accessor list is the producer's accessors
/// followed by the consumer's remaining ones, so the producer's (windowed)
/// accessor keeps driving boundary-region selection.
Result<frontend::KernelSource> FusePointwise(
    const frontend::KernelSource& producer,
    const frontend::KernelSource& consumer, const std::string& accessor);

/// Applies a chain of fusion steps in order (producer -> r[0] -> r[1] ...),
/// each step treating the previous result as the producer.
Result<frontend::KernelSource> ApplyFusion(
    const frontend::KernelSource& producer,
    const std::vector<FusionRequest>& chain);

}  // namespace hipacc::compiler
