// DSL `Kernel` base class (Listing 1). The programmer derives from
// Kernel<T>, registers accessors, and implements the virtual kernel()
// method describing the operation for ONE output pixel; execute() applies
// it to every point of the IterationSpace in parallel.
//
// This is the *functional* execution path (HIPAcc's CPU semantics). The
// compiled path — source-to-source compilation to CUDA/OpenCL and execution
// on the simulated GPU — lives in src/compiler and src/sim and is checked
// against this path by the integration tests.
#pragma once

#include <vector>

#include "dsl/accessor.hpp"
#include "support/parallel_for.hpp"

namespace hipacc::dsl {

template <typename T>
class Kernel {
 public:
  explicit Kernel(IterationSpace<T>& iteration_space)
      : iteration_space_(&iteration_space) {}
  virtual ~Kernel() = default;

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  /// The per-pixel operation; reads accessors, writes output().
  virtual void kernel() = 0;

  /// Registers an input accessor (Listing 1's addAccessor). Registration
  /// feeds the compiler's access metadata; the functional executor itself
  /// only needs it for completeness checks.
  void addAccessor(Accessor<T>* accessor) {
    HIPACC_CHECK(accessor != nullptr);
    accessors_.push_back(accessor);
  }

  /// Applies kernel() to every point of the iteration space, parallelised
  /// over rows on host threads (the simulated device path is separate).
  void execute() {
    Image<T>& out = iteration_space_->image();
    const int x0 = iteration_space_->offset_x();
    const int y0 = iteration_space_->offset_y();
    const int w = iteration_space_->width();
    const int h = iteration_space_->height();
    ParallelFor(0, h, [this, &out, x0, y0, w](int row) {
      for (int col = 0; col < w; ++col) {
        detail::g_exec_point.x = x0 + col;
        detail::g_exec_point.y = y0 + row;
        kernel();
        (void)out;
      }
    });
  }

  const std::vector<Accessor<T>*>& accessors() const noexcept {
    return accessors_;
  }
  const IterationSpace<T>& iteration_space() const noexcept {
    return *iteration_space_;
  }

 protected:
  /// Output pixel at the current iteration point (write target).
  T& output() {
    return iteration_space_->image().at(detail::g_exec_point.x,
                                        detail::g_exec_point.y);
  }

  /// Current iteration-space coordinates (HIPAcc's x() / y()).
  int x() const noexcept { return detail::g_exec_point.x; }
  int y() const noexcept { return detail::g_exec_point.y; }

 private:
  IterationSpace<T>* iteration_space_;
  std::vector<Accessor<T>*> accessors_;
};

}  // namespace hipacc::dsl
