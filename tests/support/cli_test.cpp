#include "support/cli.hpp"

#include <gtest/gtest.h>

namespace hipacc::support {
namespace {

Status ParseArgs(CliParser& cli, std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return cli.Parse(static_cast<int>(args.size()), args.data());
}

TEST(CliParserTest, TypedFlagsFillTargets) {
  bool flag = false;
  int number = 0;
  std::string text;
  CliParser cli("prog");
  cli.Bool("flag", &flag, "a switch");
  cli.Int("number", &number, "N", "an int");
  cli.String("text", &text, "TEXT", "a string");
  ASSERT_TRUE(
      ParseArgs(cli, {"--flag", "--number=42", "--text=hello"}).ok());
  EXPECT_TRUE(flag);
  EXPECT_EQ(number, 42);
  EXPECT_EQ(text, "hello");
}

TEST(CliParserTest, UnknownFlagNamesTheArgument) {
  CliParser cli("prog");
  const Status status = ParseArgs(cli, {"--bogus"});
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("--bogus"), std::string::npos);
}

TEST(CliParserTest, MalformedIntIsAnError) {
  int number = 0;
  CliParser cli("prog");
  cli.Int("number", &number, "N", "an int");
  EXPECT_FALSE(ParseArgs(cli, {"--number=abc"}).ok());
  EXPECT_FALSE(ParseArgs(cli, {"--number"}).ok());  // value required
}

TEST(CliParserTest, ValueSetterStatusSurfaces) {
  CliParser cli("prog");
  cli.Value("mode", "MODE", "a vocabulary",
            [](const std::string& value) -> Status {
              if (value == "good") return Status::Ok();
              return Status::Invalid("unknown mode '" + value + "'");
            });
  EXPECT_TRUE(ParseArgs(cli, {"--mode=good"}).ok());
  const Status bad = ParseArgs(cli, {"--mode=bad"});
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.message().find("unknown mode 'bad'"), std::string::npos);
}

TEST(CliParserTest, PositionalsFillInOrderAndRequireWhenMarked) {
  std::string first, second;
  CliParser cli("prog");
  cli.Positional("first", &first, "first arg");
  cli.Positional("second", &second, "second arg", /*required=*/false);
  ASSERT_TRUE(ParseArgs(cli, {"a", "b"}).ok());
  EXPECT_EQ(first, "a");
  EXPECT_EQ(second, "b");

  std::string only;
  CliParser strict("prog");
  strict.Positional("input", &only, "required input");
  EXPECT_FALSE(ParseArgs(strict, {}).ok());      // missing required
  EXPECT_FALSE(ParseArgs(strict, {"a", "b"}).ok());  // surplus
}

TEST(CliParserTest, HelpShortCircuitsValidation) {
  std::string input;
  CliParser cli("prog", "summary line");
  cli.Positional("input", &input, "required input");
  ASSERT_TRUE(ParseArgs(cli, {"--help"}).ok());  // missing positional is fine
  EXPECT_TRUE(cli.help_requested());
  const std::string help = cli.Help();
  EXPECT_NE(help.find("summary line"), std::string::npos);
  EXPECT_NE(help.find("input"), std::string::npos);
}

TEST(CliParserTest, HelpListsRegisteredFlags) {
  bool flag = false;
  CliParser cli("prog");
  cli.Bool("enable-thing", &flag, "turns the thing on");
  const std::string help = cli.Help();
  EXPECT_NE(help.find("--enable-thing"), std::string::npos);
  EXPECT_NE(help.find("turns the thing on"), std::string::npos);
}

}  // namespace
}  // namespace hipacc::support
