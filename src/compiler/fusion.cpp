#include "compiler/fusion.hpp"

#include <cctype>

#include "support/string_utils.hpp"

namespace hipacc::compiler {
namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when body[pos, pos+len) is a whole identifier (not a substring of a
/// longer one).
bool IsWholeIdent(const std::string& body, std::size_t pos, std::size_t len) {
  if (pos > 0 && IsIdentChar(body[pos - 1])) return false;
  const std::size_t end = pos + len;
  return end >= body.size() || !IsIdentChar(body[end]);
}

std::size_t SkipSpace(const std::string& body, std::size_t pos) {
  while (pos < body.size() &&
         std::isspace(static_cast<unsigned char>(body[pos])) != 0)
    ++pos;
  return pos;
}

/// Local variables declared in a kernel body: identifiers introduced by
/// `float x`, `int i`, `bool b` (including for-init declarations).
std::vector<std::string> DeclaredLocals(const std::string& body) {
  static const char* kTypes[] = {"float", "int", "bool"};
  std::vector<std::string> names;
  for (const char* type : kTypes) {
    const std::size_t tlen = std::char_traits<char>::length(type);
    for (std::size_t pos = body.find(type); pos != std::string::npos;
         pos = body.find(type, pos + 1)) {
      if (!IsWholeIdent(body, pos, tlen)) continue;
      std::size_t p = SkipSpace(body, pos + tlen);
      std::size_t end = p;
      while (end < body.size() && IsIdentChar(body[end])) ++end;
      if (end > p) names.push_back(body.substr(p, end - p));
    }
  }
  return names;
}

bool Contains(const std::vector<std::string>& names, const std::string& name) {
  for (const std::string& n : names)
    if (n == name) return true;
  return false;
}

/// Replaces every read `name(...)` (balanced argument list) with `local`.
/// Returns the number of replacements.
int ReplaceReads(std::string* body, const std::string& name,
                 const std::string& local) {
  int replaced = 0;
  std::size_t pos = 0;
  while ((pos = body->find(name, pos)) != std::string::npos) {
    if (!IsWholeIdent(*body, pos, name.size())) {
      pos += name.size();
      continue;
    }
    std::size_t open = SkipSpace(*body, pos + name.size());
    if (open >= body->size() || (*body)[open] != '(') {
      pos += name.size();
      continue;
    }
    int depth = 0;
    std::size_t close = open;
    for (; close < body->size(); ++close) {
      if ((*body)[close] == '(') ++depth;
      if ((*body)[close] == ')' && --depth == 0) break;
    }
    if (close >= body->size()) return -1;  // unbalanced; parser will reject
    body->replace(pos, close + 1 - pos, local);
    pos += local.size();
    ++replaced;
  }
  return replaced;
}

/// Rewrites the producer's single top-level `output() = expr;` into
/// `float <local> = expr;`. Fails when there is no write, several writes,
/// or the write sits inside a nested block (its value would go out of
/// scope before the consumer body runs).
Status RewriteProducerOutput(std::string* body, const std::string& local,
                             const std::string& producer_name) {
  std::size_t found = std::string::npos;
  int count = 0;
  for (std::size_t pos = body->find("output"); pos != std::string::npos;
       pos = body->find("output", pos + 1)) {
    if (!IsWholeIdent(*body, pos, 6)) continue;
    ++count;
    found = pos;
  }
  if (count != 1)
    return Status::Invalid(StrFormat(
        "cannot fuse into kernel '%s': expected exactly one output() write, "
        "found %d",
        producer_name.c_str(), count));
  int depth = 0;
  for (std::size_t i = 0; i < found; ++i) {
    if ((*body)[i] == '{') ++depth;
    if ((*body)[i] == '}') --depth;
  }
  if (depth != 0)
    return Status::Invalid(
        "cannot fuse into kernel '" + producer_name +
        "': its output() write is inside a nested block, so the fused "
        "value would not be in scope for the consumer body");
  std::size_t open = SkipSpace(*body, found + 6);
  if (open >= body->size() || (*body)[open] != '(')
    return Status::Invalid("cannot fuse into kernel '" + producer_name +
                           "': malformed output() write");
  std::size_t close = SkipSpace(*body, open + 1);
  if (close >= body->size() || (*body)[close] != ')')
    return Status::Invalid("cannot fuse into kernel '" + producer_name +
                           "': malformed output() write");
  std::size_t eq = SkipSpace(*body, close + 1);
  if (eq >= body->size() || (*body)[eq] != '=' ||
      (eq + 1 < body->size() && (*body)[eq + 1] == '='))
    return Status::Invalid("cannot fuse into kernel '" + producer_name +
                           "': output() is not written by a plain assignment");
  body->replace(found, close + 1 - found, "float " + local);
  return Status::Ok();
}

}  // namespace

Result<frontend::KernelSource> FusePointwise(
    const frontend::KernelSource& producer,
    const frontend::KernelSource& consumer, const std::string& accessor) {
  // The consumed accessor must exist and the consumer must be a pure point
  // operator: every accessor window 1x1, so all its reads are offset (0,0).
  const ast::AccessorInfo* consumed = nullptr;
  for (const ast::AccessorInfo& acc : consumer.accessors) {
    if (acc.window.half_x != 0 || acc.window.half_y != 0)
      return Status::Invalid(StrFormat(
          "cannot fuse kernel '%s' into '%s': accessor '%s' has a %dx%d "
          "window — only point operators (all windows 1x1) are fusable",
          consumer.name.c_str(), producer.name.c_str(), acc.name.c_str(),
          acc.window.size_x(), acc.window.size_y()));
    if (acc.name == accessor) consumed = &acc;
  }
  if (consumed == nullptr)
    return Status::Invalid(StrFormat(
        "cannot fuse kernel '%s' into '%s': it has no accessor named '%s'",
        consumer.name.c_str(), producer.name.c_str(), accessor.c_str()));

  // Merging must not capture names: params, accessors, masks, and declared
  // body locals of the two kernels have to be disjoint. Producer locals
  // matter too — a consumer param shadowed by a producer body variable
  // would silently read the wrong value in the merged body.
  const std::vector<std::string> producer_locals =
      DeclaredLocals(producer.body);
  auto collide = [&](const std::string& name) -> bool {
    for (const ast::ParamInfo& p : producer.params)
      if (p.name == name) return true;
    for (const ast::AccessorInfo& a : producer.accessors)
      if (a.name == name) return true;
    for (const ast::MaskInfo& m : producer.masks)
      if (m.name == name) return true;
    return Contains(producer_locals, name);
  };
  for (const ast::ParamInfo& p : consumer.params)
    if (collide(p.name))
      return Status::Invalid("cannot fuse: name '" + p.name +
                             "' exists in both kernels");
  // The consumed accessor is exempt: its reads are substituted away and its
  // name does not survive into the fused kernel.
  for (const ast::AccessorInfo& a : consumer.accessors)
    if (a.name != accessor && collide(a.name))
      return Status::Invalid("cannot fuse: name '" + a.name +
                             "' exists in both kernels");
  for (const ast::MaskInfo& m : consumer.masks)
    if (collide(m.name))
      return Status::Invalid("cannot fuse: name '" + m.name +
                             "' exists in both kernels");
  const std::vector<std::string> consumer_locals =
      DeclaredLocals(consumer.body);
  for (const std::string& name : consumer_locals)
    if (collide(name))
      return Status::Invalid("cannot fuse: local variable '" + name +
                             "' is declared in both kernel bodies");

  // Pick a fresh name for the producer's pixel value.
  std::string local = "fused_" + accessor;
  while (Contains(producer_locals, local) || Contains(consumer_locals, local) ||
         collide(local))
    local += "_";

  std::string producer_body = producer.body;
  HIPACC_RETURN_IF_ERROR(
      RewriteProducerOutput(&producer_body, local, producer.name));

  std::string consumer_body = consumer.body;
  const int replaced = ReplaceReads(&consumer_body, accessor, local);
  if (replaced < 0)
    return Status::Invalid("cannot fuse kernel '" + consumer.name +
                           "': unbalanced parentheses in its body");
  if (replaced == 0)
    return Status::Invalid(StrFormat(
        "cannot fuse kernel '%s' into '%s': its body never reads "
        "accessor '%s'",
        consumer.name.c_str(), producer.name.c_str(), accessor.c_str()));

  frontend::KernelSource fused;
  fused.name = producer.name + "_" + consumer.name;
  fused.params = producer.params;
  fused.params.insert(fused.params.end(), consumer.params.begin(),
                      consumer.params.end());
  // Producer accessors first: the front accessor (the windowed one) keeps
  // driving the boundary-handling region layout of the fused kernel.
  fused.accessors = producer.accessors;
  for (const ast::AccessorInfo& acc : consumer.accessors)
    if (acc.name != accessor) fused.accessors.push_back(acc);
  fused.masks = producer.masks;
  fused.masks.insert(fused.masks.end(), consumer.masks.begin(),
                     consumer.masks.end());
  fused.body = producer_body + "\n" + consumer_body;
  return fused;
}

Result<frontend::KernelSource> ApplyFusion(
    const frontend::KernelSource& producer,
    const std::vector<FusionRequest>& chain) {
  frontend::KernelSource current = producer;
  for (const FusionRequest& request : chain) {
    Result<frontend::KernelSource> fused =
        FusePointwise(current, request.consumer, request.accessor);
    if (!fused.ok()) return fused.status();
    current = std::move(fused).take();
  }
  return current;
}

}  // namespace hipacc::compiler
