// Global operators (paper Section I, group c): reductions producing one
// value from all pixels of an image. The paper defers their DSL syntax to
// future work (Section VIII); we provide the framework-level primitives the
// examples and tests need — sum, min, max, and a generic binary combine.
#pragma once

#include <functional>
#include <limits>
#include <mutex>

#include "dsl/accessor.hpp"
#include "support/parallel_for.hpp"

namespace hipacc::dsl {

/// Reduces all pixels of `image` with `combine` starting from `init`.
/// `combine` must be associative and commutative (rows are reduced in
/// parallel and merged in unspecified order).
template <typename T>
T Reduce(const Image<T>& image, T init, const std::function<T(T, T)>& combine) {
  std::mutex merge_mutex;
  T total = init;
  ParallelFor(0, image.height(), [&](int y) {
    T row_acc = init;
    for (int x = 0; x < image.width(); ++x)
      row_acc = combine(row_acc, image.at(x, y));
    const std::lock_guard<std::mutex> lock(merge_mutex);
    total = combine(total, row_acc);
  });
  return total;
}

/// Sum of all pixels (e.g., "compute the sum of all pixels" from Section I).
template <typename T>
T ReduceSum(const Image<T>& image) {
  return Reduce<T>(image, T{}, [](T a, T b) { return a + b; });
}

/// Minimum pixel value.
template <typename T>
T ReduceMin(const Image<T>& image) {
  return Reduce<T>(image, std::numeric_limits<T>::max(),
                   [](T a, T b) { return a < b ? a : b; });
}

/// Maximum pixel value.
template <typename T>
T ReduceMax(const Image<T>& image) {
  return Reduce<T>(image, std::numeric_limits<T>::lowest(),
                   [](T a, T b) { return a > b ? a : b; });
}

}  // namespace hipacc::dsl
