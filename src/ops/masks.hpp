// Filter-mask coefficient builders for the built-in operators, plus the
// rank-1 factorization that powers separable-filter decomposition.
#pragma once

#include <vector>

#include "ast/mask_factor.hpp"

namespace hipacc::ops {

// The separability test itself lives at the AST layer (ast/mask_factor.hpp)
// so the compiler's `separate` rewrite can use it too; re-exported here
// because mask coefficients are this library's domain.
using ast::FactorizeRank1;
using ast::Rank1Factors;

/// Normalised 2D Gaussian of odd `size` with standard deviation `sigma`
/// (size*size row-major coefficients summing to 1).
std::vector<float> GaussianMask2D(int size, float sigma);

/// Normalised 1D Gaussian (for separable implementations).
std::vector<float> GaussianMask1D(int size, float sigma);

/// Bilateral closeness mask: exp(-(x^2+y^2) / (2 sigma_d^2)) over the
/// (4*sigma_d+1)^2 window — the paper's CMask (Listing 4), unnormalised.
std::vector<float> BilateralClosenessMask(int sigma_d);

/// 3x3 Sobel derivative masks.
std::vector<float> SobelMaskX();
std::vector<float> SobelMaskY();

/// 3x3 Laplacian (4-neighbour).
std::vector<float> LaplacianMask3();

/// size x size box (mean) filter, coefficients 1/size^2.
std::vector<float> BoxMask(int size);

}  // namespace hipacc::ops
