#include "common/gaussian_table.hpp"

#include <cstdio>

#include "baselines/opencv_like.hpp"
#include "common/table.hpp"
#include "compiler/executable.hpp"
#include "ops/kernel_sources.hpp"
#include "ops/masks.hpp"
#include "support/string_utils.hpp"

namespace hipacc::bench {
namespace {

using ast::Backend;
using ast::BoundaryMode;

const BoundaryMode kModes[] = {BoundaryMode::kClamp, BoundaryMode::kRepeat,
                               BoundaryMode::kMirror, BoundaryMode::kConstant};

/// One generated-variant measurement with automatic configuration selection
/// (the framework's heuristic, as the paper's Table VIII/IX rows use).
Result<double> MeasureGenerated(const GaussianTableOptions& options,
                                Backend backend, int window, BoundaryMode mode,
                                codegen::TexturePolicy texture,
                                bool scratchpad) {
  const int n = options.image_size;
  frontend::KernelSource source =
      ops::GaussianSource(window, 0.5f * window, mode);
  compiler::CompileOptions copts;
  copts.codegen.backend = backend;
  copts.codegen.texture = texture;
  copts.codegen.use_scratchpad = scratchpad;
  copts.device = options.device;
  copts.image_width = n;
  copts.image_height = n;

  Result<compiler::CompiledKernel> compiled = compiler::Compile(source, copts);
  if (!compiled.ok()) return compiled.status();

  dsl::Image<float> in(n, n), out(n, n);
  runtime::BindingSet bindings;
  bindings.Input("Input", in).Output(out);
  compiler::SimulatedExecutable exe(std::move(compiled).take(), options.device);
  Result<sim::LaunchStats> stats = exe.Measure(bindings);
  if (!stats.ok()) return stats.status();
  return stats.value().timing.total_ms;
}

}  // namespace

std::string RunGaussianTable(const std::string& title,
                             const GaussianTableOptions& options) {
  std::string out = title + "\n";
  out += StrFormat("Gaussian filter, %dx%d image, times in ms (modelled).\n\n",
                   options.image_size, options.image_size);
  support::Json tables = support::Json::Array();

  for (const int window : options.window_sizes) {
    Table table({"Clamp", "Repeat", "Mirror", "Const."});
    const std::vector<float> mask1d = ops::GaussianMask1D(window, 0.5f * window);

    for (const int ppt : {8, 1}) {
      table.Row(StrFormat("OpenCV: PPT=%d", ppt));
      baselines::OpenCvLikeEngine engine(options.device, Backend::kCuda);
      for (const BoundaryMode mode : kModes) {
        Result<baselines::SeparableTiming> timing =
            engine.Measure(options.image_size, options.image_size, mask1d,
                           mode, ppt, hw::KernelConfig{128, 1});
        if (timing.ok())
          table.Cell(timing.value().total_ms);
        else
          table.Cell(std::string("error"));
      }
    }

    struct GenRow {
      std::string label;
      Backend backend;
      codegen::TexturePolicy texture;
      bool scratchpad;
    };
    const std::vector<GenRow> rows = {
        {"CUDA(Gen)", Backend::kCuda, codegen::TexturePolicy::kNone, false},
        {"CUDA(+Tex)", Backend::kCuda, codegen::TexturePolicy::kLinear, false},
        {"CUDA(+Smem)", Backend::kCuda, codegen::TexturePolicy::kNone, true},
        {"OpenCL(Gen)", Backend::kOpenCL, codegen::TexturePolicy::kNone, false},
        {"OpenCL(+Img)", Backend::kOpenCL, codegen::TexturePolicy::kLinear, false},
        {"OpenCL(+Lmem)", Backend::kOpenCL, codegen::TexturePolicy::kNone, true},
    };
    for (const GenRow& row : rows) {
      table.Row(row.label);
      for (const BoundaryMode mode : kModes) {
        Result<double> ms = MeasureGenerated(options, row.backend, window,
                                             mode, row.texture, row.scratchpad);
        if (ms.ok())
          table.Cell(ms.value());
        else
          table.Cell(std::string("error"));
      }
    }
    const std::string window_title = StrFormat("Gaussian: %dx%d", window, window);
    out += table.Render(window_title);
    out += "\n";
    tables.push_back(table.ToJson(window_title));
  }
  if (!options.json_out.empty()) {
    support::Json doc = support::Json::Object();
    doc["title"] = title;
    doc["tables"] = std::move(tables);
    const Status written =
        support::WriteFile(options.json_out, doc.Dump(2) + "\n");
    if (!written.ok())
      std::fprintf(stderr, "warning: %s\n", written.ToString().c_str());
  }
  return out;
}

}  // namespace hipacc::bench
