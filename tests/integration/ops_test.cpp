// Every built-in operator, compiled and executed on the simulated device,
// must match its DSL (host) reference exactly — including the scratchpad
// and texture code paths and the OpenCV-like separable engine.
#include <gtest/gtest.h>

#include "baselines/opencv_like.hpp"
#include "compiler/executable.hpp"
#include "image/metrics.hpp"
#include "image/synthetic.hpp"
#include "ops/dsl_ops.hpp"
#include "ops/kernel_sources.hpp"
#include "ops/masks.hpp"

namespace hipacc {
namespace {

using ast::BoundaryMode;

constexpr int kW = 73;
constexpr int kH = 41;

HostImage<float> RunCompiled(const frontend::KernelSource& source,
                             const HostImage<float>& input,
                             const runtime::BindingSet& extra_bindings,
                             codegen::CodegenOptions codegen = {}) {
  compiler::CompileOptions options;
  options.codegen = codegen;
  options.device = hw::TeslaC2050();
  options.image_width = input.width();
  options.image_height = input.height();
  options.forced_config = hw::KernelConfig{32, 2};

  auto compiled = compiler::Compile(source, options);
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();

  dsl::Image<float> in(input.width(), input.height());
  dsl::Image<float> out(input.width(), input.height());
  in.CopyFrom(input);
  runtime::BindingSet bindings = extra_bindings;
  bindings.Input("Input", in).Output(out);
  compiler::SimulatedExecutable exe(std::move(compiled).take(),
                                    hw::TeslaC2050());
  auto stats = exe.Run(bindings);
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  if (stats.ok()) {
    EXPECT_EQ(stats.value().metrics.oob_violations, 0u);
  }
  return out.getData();
}

template <typename MakeKernel>
HostImage<float> RunDsl(const HostImage<float>& input, int window,
                        BoundaryMode mode, MakeKernel make) {
  dsl::Image<float> in(input.width(), input.height());
  dsl::Image<float> out(input.width(), input.height());
  in.CopyFrom(input);
  dsl::BoundaryCondition<float> bc(in, window, window, mode);
  dsl::Accessor<float> acc(bc);
  dsl::IterationSpace<float> is(out);
  auto kernel = make(is, acc);
  kernel->execute();
  return out.getData();
}

TEST(OpsTest, GaussianMatchesDslReference) {
  const auto input = MakeAngiogramPhantom(kW, kH, 0.05f, 2);
  dsl::Mask<float> mask(5, 5);
  const auto coeffs = ops::GaussianMask2D(5, 1.2f);
  mask = coeffs;
  const auto expected =
      RunDsl(input, 5, BoundaryMode::kMirror, [&](auto& is, auto& acc) {
        return std::make_unique<ops::Convolution>(is, acc, mask);
      });
  frontend::KernelSource source =
      ops::ConvolutionSource("gaussian", 5, 5, coeffs, BoundaryMode::kMirror);
  const auto actual = RunCompiled(source, input, {});
  EXPECT_LE(MaxAbsDiff(expected, actual), 1e-6);
}

TEST(OpsTest, SobelAndLaplacianMatch) {
  const auto input = MakeAngiogramPhantom(kW, kH, 0.02f, 3);
  for (const auto& coeffs :
       {ops::SobelMaskX(), ops::SobelMaskY(), ops::LaplacianMask3()}) {
    dsl::Mask<float> mask(3, 3);
    mask = coeffs;
    const auto expected =
        RunDsl(input, 3, BoundaryMode::kClamp, [&](auto& is, auto& acc) {
          return std::make_unique<ops::Convolution>(is, acc, mask);
        });
    frontend::KernelSource source =
        ops::ConvolutionSource("conv3", 3, 3, coeffs, BoundaryMode::kClamp);
    const auto actual = RunCompiled(source, input, {});
    EXPECT_LE(MaxAbsDiff(expected, actual), 1e-6);
  }
}

TEST(OpsTest, MedianIsExactOrderStatistic) {
  const auto input = MakeNoiseImage(kW, kH, 6);
  frontend::KernelSource source = ops::Median3x3Source(BoundaryMode::kClamp);
  const auto actual = RunCompiled(source, input, {});
  // Direct order-statistic reference.
  for (int y = 0; y < kH; ++y) {
    for (int x = 0; x < kW; ++x) {
      std::vector<float> window;
      for (int dy = -1; dy <= 1; ++dy)
        for (int dx = -1; dx <= 1; ++dx) {
          const int cx = std::clamp(x + dx, 0, kW - 1);
          const int cy = std::clamp(y + dy, 0, kH - 1);
          window.push_back(input(cx, cy));
        }
      std::nth_element(window.begin(), window.begin() + 4, window.end());
      ASSERT_FLOAT_EQ(actual(x, y), window[4]) << x << "," << y;
    }
  }
}

TEST(OpsTest, ErodeDilateMatchMorphologyReference) {
  const auto input = MakeNoiseImage(kW, kH, 8);
  const dsl::Domain domain(3, 3);
  const auto eroded_ref =
      RunDsl(input, 3, BoundaryMode::kClamp, [&](auto& is, auto& acc) {
        return std::make_unique<ops::Morphology>(is, acc, domain,
                                                 ops::Morphology::Op::kErode);
      });
  const auto eroded = RunCompiled(ops::ErodeSource(3, BoundaryMode::kClamp),
                                  input, {});
  EXPECT_LE(MaxAbsDiff(eroded_ref, eroded), 0.0);

  const auto dilated_ref =
      RunDsl(input, 3, BoundaryMode::kClamp, [&](auto& is, auto& acc) {
        return std::make_unique<ops::Morphology>(is, acc, domain,
                                                 ops::Morphology::Op::kDilate);
      });
  const auto dilated = RunCompiled(ops::DilateSource(3, BoundaryMode::kClamp),
                                   input, {});
  EXPECT_LE(MaxAbsDiff(dilated_ref, dilated), 0.0);
}

TEST(OpsTest, PointOperators) {
  const auto input = MakeGradientImage(kW, kH);
  runtime::BindingSet scalars;
  scalars.Scalar("scale", 3.0).Scalar("offset", -0.5);
  const auto scaled = RunCompiled(ops::ScaleOffsetSource(), input, scalars);
  for (int y = 0; y < kH; ++y)
    for (int x = 0; x < kW; ++x)
      ASSERT_FLOAT_EQ(scaled(x, y), 3.0f * input(x, y) - 0.5f);

  runtime::BindingSet threshold;
  threshold.Scalar("threshold", 0.5);
  const auto binary = RunCompiled(ops::ThresholdSource(), input, threshold);
  for (int y = 0; y < kH; ++y)
    for (int x = 0; x < kW; ++x)
      ASSERT_FLOAT_EQ(binary(x, y), input(x, y) > 0.5f ? 1.0f : 0.0f);
}

TEST(OpsTest, ScratchpadPathBitExact) {
  // The staged-scratchpad code path must produce identical pixels.
  const auto input = MakeAngiogramPhantom(kW, kH, 0.05f, 4);
  const auto coeffs = ops::GaussianMask2D(5, 1.0f);
  frontend::KernelSource source =
      ops::ConvolutionSource("gaussian", 5, 5, coeffs, BoundaryMode::kRepeat);
  const auto plain = RunCompiled(source, input, {});
  codegen::CodegenOptions smem;
  smem.use_scratchpad = true;
  const auto staged = RunCompiled(source, input, {}, smem);
  EXPECT_LE(MaxAbsDiff(plain, staged), 0.0);
}

TEST(OpsTest, DynamicMaskMatchesStaticMask) {
  const auto input = MakeAngiogramPhantom(kW, kH, 0.03f, 5);
  const int sigma_d = 1, sigma_r = 4;
  runtime::BindingSet scalars;
  scalars.Scalar("sigma_d", sigma_d).Scalar("sigma_r", sigma_r);

  frontend::KernelSource static_src =
      ops::BilateralMaskSource(sigma_d, BoundaryMode::kClamp, true);
  const auto with_static = RunCompiled(static_src, input, scalars);

  frontend::KernelSource dynamic_src =
      ops::BilateralMaskSource(sigma_d, BoundaryMode::kClamp, false);
  runtime::BindingSet with_mask = scalars;
  with_mask.MaskValues("CMask", ops::BilateralClosenessMask(sigma_d));
  const auto with_dynamic = RunCompiled(dynamic_src, input, with_mask);
  EXPECT_LE(MaxAbsDiff(with_static, with_dynamic), 0.0);

  // ... and the global-memory mask variant agrees too.
  codegen::CodegenOptions global_mask;
  global_mask.masks_in_constant_memory = false;
  const auto with_global = RunCompiled(dynamic_src, input, with_mask, global_mask);
  EXPECT_LE(MaxAbsDiff(with_static, with_global), 0.0);
}

TEST(OpenCvLikeTest, SeparableMatches2dReference) {
  const auto input = MakeAngiogramPhantom(96, 64, 0.04f, 7);
  const auto mask1d = ops::GaussianMask1D(5, 1.5f);
  // Outer product reference mask.
  std::vector<float> mask2d(25);
  for (int y = 0; y < 5; ++y)
    for (int x = 0; x < 5; ++x)
      mask2d[static_cast<size_t>(y) * 5 + x] =
          mask1d[static_cast<size_t>(y)] * mask1d[static_cast<size_t>(x)];
  dsl::Mask<float> mask(5, 5);
  mask = mask2d;
  const auto expected =
      RunDsl(input, 5, BoundaryMode::kClamp, [&](auto& is, auto& acc) {
        return std::make_unique<ops::Convolution>(is, acc, mask);
      });

  for (const int ppt : {1, 8}) {
    baselines::OpenCvLikeEngine engine(hw::TeslaC2050(), ast::Backend::kCuda);
    auto actual = engine.Run(input, mask1d, BoundaryMode::kClamp, ppt);
    ASSERT_TRUE(actual.ok()) << actual.status().ToString();
    // Separable evaluation reorders float math; allow tiny drift. The
    // boundary columns differ structurally (row pass clamps in x only, so
    // corner weights differ from true 2D clamping) — compare the interior.
    double worst = 0.0;
    for (int y = 2; y < 62; ++y)
      for (int x = 2; x < 94; ++x)
        worst = std::max(worst, std::abs(static_cast<double>(
                                    actual.value()(x, y) - expected(x, y))));
    EXPECT_LE(worst, 1e-5) << "ppt=" << ppt;
  }
}

TEST(OpsTest, ConvolveSyntaxMatchesLoopedConvolution) {
  // Listing 9's convolve() (unrolled, coefficients propagated) must produce
  // the same pixels as the loop-based Mask kernel, for every boundary mode.
  const auto input = MakeAngiogramPhantom(kW, kH, 0.04f, 10);
  for (const BoundaryMode mode :
       {BoundaryMode::kClamp, BoundaryMode::kRepeat, BoundaryMode::kMirror}) {
    const auto looped =
        RunCompiled(ops::GaussianSource(5, 1.3f, mode), input, {});
    const auto unrolled =
        RunCompiled(ops::GaussianConvolveSource(5, 1.3f, mode), input, {});
    EXPECT_LE(MaxAbsDiff(looped, unrolled), 0.0) << to_string(mode);
  }
}

TEST(OpsTest, ConvolveMinReductionIsErosion) {
  // convolve(M, MIN, Input(M)) over a uniform mask == grayscale erosion.
  const auto input = MakeNoiseImage(kW, kH, 12);
  frontend::KernelSource src;
  src.name = "erode_convolve";
  src.accessors = {{"Input", {1, 1}, BoundaryMode::kClamp, 0.0f}};
  ast::MaskInfo mask;
  mask.name = "M";
  mask.size_x = mask.size_y = 3;
  mask.static_values.assign(9, 1.0f);
  src.masks = {mask};
  src.body = "output() = convolve(M, MIN, Input(M));";
  const auto actual = RunCompiled(src, input, {});
  const auto expected =
      RunCompiled(ops::ErodeSource(3, BoundaryMode::kClamp), input, {});
  EXPECT_LE(MaxAbsDiff(expected, actual), 0.0);
}

TEST(OpsTest, MaskBuilders) {
  const auto gauss = ops::GaussianMask2D(5, 1.0f);
  double sum = 0.0;
  for (const float v : gauss) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-6);
  EXPECT_GT(gauss[12], gauss[0]);  // center heaviest

  const auto closeness = ops::BilateralClosenessMask(2);
  EXPECT_EQ(closeness.size(), 81u);  // (4*2+1)^2
  EXPECT_FLOAT_EQ(closeness[40], 1.0f);  // exp(0) at the center

  const auto box = ops::BoxMask(3);
  EXPECT_FLOAT_EQ(box[0], 1.0f / 9.0f);
}

}  // namespace
}  // namespace hipacc
