// Plain-text image I/O so examples can emit viewable artifacts without any
// external dependency: binary PGM (P5, 8-bit) for float images in [0,1] and
// CSV for exact round-tripping in tests.
#pragma once

#include <string>

#include "image/host_image.hpp"
#include "support/status.hpp"

namespace hipacc {

/// Scratch location for example artifacts: "<dir>/<filename>", where the
/// directory is $HIPACC_EXAMPLE_OUT or "out" and is created on first use —
/// so examples never litter the directory they are launched from (the repo
/// root gitignores stray *.pgm as a second line of defence).
std::string ExampleOutputPath(const std::string& filename);

/// Writes `img` as an 8-bit binary PGM, clamping pixels to [0, 1] and
/// scaling to [0, 255].
Status WritePgm(const HostImage<float>& img, const std::string& path);

/// Reads an 8-bit binary PGM into floats in [0, 1].
Result<HostImage<float>> ReadPgm(const std::string& path);

/// Writes pixels as CSV rows with full float precision (%.9g).
Status WriteCsv(const HostImage<float>& img, const std::string& path);

/// Reads a CSV written by WriteCsv.
Result<HostImage<float>> ReadCsv(const std::string& path);

}  // namespace hipacc
