#include "compiler/kernel_file.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "support/string_utils.hpp"

namespace hipacc::compiler {
namespace {

Result<ast::BoundaryMode> ParseMode(const std::string& word) {
  if (word == "undefined") return ast::BoundaryMode::kUndefined;
  if (word == "clamp") return ast::BoundaryMode::kClamp;
  if (word == "repeat") return ast::BoundaryMode::kRepeat;
  if (word == "mirror") return ast::BoundaryMode::kMirror;
  if (word == "constant") return ast::BoundaryMode::kConstant;
  return Status::Parse("unknown boundary mode '" + word + "'");
}

Result<ast::ScalarType> ParseType(const std::string& word) {
  if (word == "float") return ast::ScalarType::kFloat;
  if (word == "int") return ast::ScalarType::kInt;
  if (word == "bool") return ast::ScalarType::kBool;
  return Status::Parse("unknown parameter type '" + word + "'");
}

std::vector<std::string> Words(std::string_view line) {
  std::vector<std::string> words;
  std::istringstream stream{std::string(line)};
  std::string word;
  while (stream >> word) words.push_back(word);
  return words;
}

}  // namespace

Result<frontend::KernelSource> ParseKernelFile(const std::string& text) {
  frontend::KernelSource src;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  bool in_body = false;

  while (std::getline(in, line)) {
    ++line_no;
    if (in_body) {
      src.body += line;
      src.body += '\n';
      continue;
    }
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    const std::vector<std::string> words = Words(trimmed);
    const std::string& directive = words.front();
    auto error = [&](const std::string& msg) {
      return Status::Parse(StrFormat("line %d: %s", line_no, msg.c_str()));
    };

    if (directive == "kernel") {
      if (words.size() != 2) return error("kernel expects exactly a name");
      src.name = words[1];
    } else if (directive == "param") {
      if (words.size() != 3) return error("param expects <type> <name>");
      Result<ast::ScalarType> type = ParseType(words[1]);
      if (!type.ok()) return error(type.status().message());
      src.params.push_back({words[2], type.value()});
    } else if (directive == "accessor") {
      if (words.size() < 5 || words.size() > 6)
        return error("accessor expects <name> <sx> <sy> <mode> [const]");
      ast::AccessorInfo acc;
      acc.name = words[1];
      const int sx = std::atoi(words[2].c_str());
      const int sy = std::atoi(words[3].c_str());
      if (sx <= 0 || sy <= 0 || sx % 2 == 0 || sy % 2 == 0)
        return error("accessor window sizes must be odd and positive");
      acc.window = ast::WindowExtent::FromSize(sx, sy);
      Result<ast::BoundaryMode> mode = ParseMode(words[4]);
      if (!mode.ok()) return error(mode.status().message());
      acc.boundary = mode.value();
      if (acc.boundary == ast::BoundaryMode::kConstant) {
        if (words.size() != 6)
          return error("constant boundary mode requires a value");
        acc.constant_value = std::strtof(words[5].c_str(), nullptr);
      }
      src.accessors.push_back(acc);
    } else if (directive == "mask") {
      if (words.size() != 4) return error("mask expects <name> <sx> <sy>");
      ast::MaskInfo mask;
      mask.name = words[1];
      mask.size_x = std::atoi(words[2].c_str());
      mask.size_y = std::atoi(words[3].c_str());
      if (mask.size_x <= 0 || mask.size_y <= 0 || mask.size_x % 2 == 0 ||
          mask.size_y % 2 == 0)
        return error("mask sizes must be odd and positive");
      src.masks.push_back(mask);
    } else if (directive == "values") {
      if (src.masks.empty()) return error("values without a preceding mask");
      ast::MaskInfo& mask = src.masks.back();
      for (size_t i = 1; i < words.size(); ++i)
        mask.static_values.push_back(std::strtof(words[i].c_str(), nullptr));
    } else if (directive == "body") {
      in_body = true;
    } else {
      return error("unknown directive '" + directive + "'");
    }
  }

  if (src.name.empty()) return Status::Parse("missing 'kernel <name>'");
  if (!in_body) return Status::Parse("missing 'body' section");
  for (const auto& mask : src.masks) {
    if (!mask.static_values.empty() &&
        static_cast<int>(mask.static_values.size()) !=
            mask.size_x * mask.size_y)
      return Status::Parse(StrFormat(
          "mask '%s' has %zu values, expected %d", mask.name.c_str(),
          mask.static_values.size(), mask.size_x * mask.size_y));
  }
  return src;
}

Result<frontend::KernelSource> LoadKernelFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::Invalid("cannot open kernel file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseKernelFile(buffer.str());
}

}  // namespace hipacc::compiler
