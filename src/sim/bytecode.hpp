// Bytecode programs for the simulator's register VM (vm.cpp): a one-shot
// compiler from the device IR into linear, register-based instruction
// streams — one program per boundary-region variant, mirroring the paper's
// Figure 3 multiplexing. Compilation resolves variable names to register
// slots, folds constants, resolves builtins to direct opcodes, and unrolls
// mask loops with static bounds, so the per-warp execution loop is a flat
// fetch/dispatch with no recursion, no per-node Status, and no name lookup.
//
// The VM is an exact re-implementation of the AST interpreter's semantics:
// lane values, float-precision rules, metric increments (every folded or
// fused operation carries its interpreter cost on the surviving
// instruction), and the memory-model call sequence are all preserved, so
// outputs AND modelled times are bit-identical between the two engines.
// Constructs the compiler cannot prove equivalent (DSL-level nodes,
// variables read before any declaration) fail compilation and the simulator
// falls back to the interpreter.
#pragma once

#include <cmath>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ast/kernel_ir.hpp"
#include "support/status.hpp"

namespace hipacc::sim {

namespace jit {
struct TierState;
}

enum class Op : std::uint8_t {
  kConst,       // dst <- broadcast imm (typed)
  kCopy,        // dst <- a (raw copy, lanes + type)
  kConvert,     // dst <- convert(a, type); Decl conversions cost 0, casts 1
  kUnary,       // dst <- unary_op(a)
  kBinary,      // dst <- binary_op(a, b); div cost resolved at run time
  kSelect,      // dst <- a != 0 ? b : c   (all three pre-evaluated, like AST)
  kCall,        // dst <- builtin(a[, b])
  kThreadIdx,   // dst <- thread/block/grid index
  kAssign,      // dst[l] <- combine(dst[l], convert(a[l])) for masked lanes
  kLoadImage,   // dst <- image read (global/texture) with boundary guards
  kLoadShared,  // dst <- scratchpad tile read
  kLoadConst,   // dst <- constant-memory mask read
  kStore,       // buffer[cx, cy] <- a for masked lanes
  kBarrier,     // cost-only (+1 alu)
  kAccount,     // cost-only: metrics of fully folded interpreter work
  kMaskIf,      // masks[dst] / masks[b] <- divergence split of masks[mask] by a
  kJumpIfNone,  // pc <- jump when masks[mask] has no active lane
  kLoopInit,    // dst <- a (lanes), type int  (loop variable seed)
  kLoopHead,    // masks[dst] <- masks[mask] && a <= b; exit to jump when empty
  kLoopInc,     // dst[l] += imm for lanes in masks[mask]; pc <- jump (back edge)
};

/// Builtins resolved to direct handlers at compile time (the AST engine
/// dispatches on the callee name per warp per call).
enum class VmBuiltin : std::uint8_t {
  kExp, kExp2, kLog, kLog2, kSqrt, kRsqrt, kSin, kCos, kTan, kAtan,
  kAtan2, kPow, kFmod, kFabs, kFmin, kFmax, kFloor, kCeil, kRound,
  kMin, kMax, kAbs,
};

std::optional<VmBuiltin> ResolveBuiltin(const std::string& name);

/// Memory coordinate operand. Loads and stores fuse the ubiquitous
/// `gid/tid + literal` addressing (and fully folded coordinates) instead of
/// spending three instructions per coordinate; the folded add's ALU cost
/// moves onto the memory instruction.
enum class CoordKind : std::uint8_t { kReg, kGidX, kGidY, kTidX, kTidY, kImm };

struct Coord {
  CoordKind kind = CoordKind::kImm;
  std::uint16_t reg = 0;  ///< kReg only
  int off = 0;            ///< kImm value, or offset added to gid/tid
};

/// One fixed-size instruction. Fields are populated per `op`; `alu_cost` /
/// `sfu_cost` replay the interpreter's metric increments for this
/// instruction plus any work folded into it.
struct Insn {
  Op op = Op::kAccount;
  ast::ScalarType type = ast::ScalarType::kFloat;  // result / decl type
  std::uint8_t sub = 0;   // UnaryOp/BinaryOp/AssignOp/VmBuiltin/ThreadIndexKind
                          // (kLoadImage: 1 = texture path)
  bool hw_bh = false;     // kLoadImage: boundary handled by the texture unit
  std::uint16_t dst = 0;  // destination register (kMaskIf/kLoopHead: mask slot)
  std::uint16_t a = 0;
  std::uint16_t b = 0;    // kMaskIf: else-mask slot
  std::uint16_t c = 0;
  std::uint16_t mask = 0;    // predication mask slot (slot 0 = warp active mask)
  std::int32_t jump = -1;    // kJumpIfNone / kLoopHead exit / kLoopInc back edge
  std::uint32_t alu_cost = 0;
  std::uint32_t sfu_cost = 0;
  double imm = 0.0;          // kConst value / kLoopInc step
  std::int16_t buffer = -1;  // ProgramSet buffer / const-mask table index
  Coord cx, cy;
  ast::BoundaryMode boundary = ast::BoundaryMode::kUndefined;
  ast::RegionChecks checks;
  float cvalue = 0.0f;
};

/// Scalar parameter seeding: the VM re-seeds these registers per warp (the
/// body may overwrite them), exactly like the interpreter's fresh Env.
struct ParamSeed {
  std::string name;
  std::uint16_t reg = 0;
  ast::ScalarType type = ast::ScalarType::kFloat;
};

/// The compiled stream of one region variant.
struct Program {
  ast::Region region = ast::Region::kInterior;
  std::vector<Insn> code;
  std::vector<ParamSeed> params;
  int num_regs = 0;
  int num_masks = 1;
};

/// All region programs of one kernel plus the name tables the VM binds to a
/// Launch at execution time (bindings stay lazy: a missing buffer only
/// errors when an instruction touches it, like the interpreter).
struct ProgramSet {
  std::string kernel_name;
  std::vector<Program> programs;
  std::vector<std::string> buffer_names;
  struct MaskRef {
    std::string name;
    int width = 1;
  };
  std::vector<MaskRef> const_masks;
  /// Pixels per thread of the source kernel. The host executor iterates
  /// pixels (one virtual thread per pixel), so it only supports ppt == 1.
  int ppt = 1;
  std::uint64_t total_instructions = 0;
  double compile_ms = 0.0;

  /// Native-tier tiering state (jit/cache.hpp), created by
  /// CompileToBytecode and shared by every holder of this ProgramSet — the
  /// target-level compilation cache hands the same set to all exploration
  /// lanes, so they tier up together and share one compiled object. Null
  /// for hand-assembled sets, which then never leave the VM.
  std::shared_ptr<jit::TierState> jit_state;

  const Program* Find(ast::Region region) const;
};

/// Compiles every region variant of `kernel`. Returns Unimplemented for IR
/// the compiler cannot prove bit-equivalent under the VM — callers fall
/// back to the AST engine.
Result<std::shared_ptr<const ProgramSet>> CompileToBytecode(
    const ast::DeviceKernel& kernel);

// ---- Lane arithmetic shared by the compiler's constant folder and the VM
// ---- handlers (and kept textually identical to interpreter.cpp).

/// AST Convert: conversion switches on the target type only.
inline double ConvertLaneValue(double v, ast::ScalarType to) {
  switch (to) {
    case ast::ScalarType::kFloat:
      return static_cast<double>(static_cast<float>(v));
    case ast::ScalarType::kInt:
    case ast::ScalarType::kUInt:
      return static_cast<double>(static_cast<long long>(v));
    case ast::ScalarType::kBool:
      return v != 0.0 ? 1.0 : 0.0;
    case ast::ScalarType::kVoid:
      return 0.0;
  }
  return 0.0;
}

/// AST Convert skips conversion entirely when the types already match; the
/// distinction matters for values that are not representable in the target.
inline double ConvertLaneIf(double v, ast::ScalarType from, ast::ScalarType to) {
  return from == to ? v : ConvertLaneValue(v, to);
}

inline double EvalBinaryLane(ast::BinaryOp op, bool float_math, double x,
                             double y) {
  using ast::BinaryOp;
  switch (op) {
    case BinaryOp::kAdd: return float_math ? static_cast<double>(static_cast<float>(x) + static_cast<float>(y)) : x + y;
    case BinaryOp::kSub: return float_math ? static_cast<double>(static_cast<float>(x) - static_cast<float>(y)) : x - y;
    case BinaryOp::kMul: return float_math ? static_cast<double>(static_cast<float>(x) * static_cast<float>(y)) : x * y;
    case BinaryOp::kDiv:
      if (float_math)
        return static_cast<double>(static_cast<float>(x) / static_cast<float>(y));
      else {
        const long long yi = static_cast<long long>(y);
        return yi == 0 ? 0.0
                       : static_cast<double>(static_cast<long long>(x) / yi);
      }
    case BinaryOp::kMod: {
      const long long yi = static_cast<long long>(y);
      return yi == 0 ? 0.0
                     : static_cast<double>(static_cast<long long>(x) % yi);
    }
    case BinaryOp::kLt: return x < y;
    case BinaryOp::kLe: return x <= y;
    case BinaryOp::kGt: return x > y;
    case BinaryOp::kGe: return x >= y;
    case BinaryOp::kEq: return x == y;
    case BinaryOp::kNe: return x != y;
    case BinaryOp::kAnd: return (x != 0.0) && (y != 0.0);
    case BinaryOp::kOr: return (x != 0.0) || (y != 0.0);
  }
  return 0.0;
}

inline double EvalUnaryLane(ast::UnaryOp op, ast::ScalarType result_type,
                            double v) {
  if (op == ast::UnaryOp::kNot) return v == 0.0 ? 1.0 : 0.0;
  return result_type == ast::ScalarType::kFloat
             ? static_cast<double>(-static_cast<float>(v))
             : -v;
}

inline double EvalBuiltinLane(VmBuiltin fn, double x, double y) {
  const float fx = static_cast<float>(x);
  const float fy = static_cast<float>(y);
  float r = 0.0f;
  switch (fn) {
    case VmBuiltin::kExp: r = std::exp(fx); break;
    case VmBuiltin::kExp2: r = std::exp2(fx); break;
    case VmBuiltin::kLog: r = std::log(fx); break;
    case VmBuiltin::kLog2: r = std::log2(fx); break;
    case VmBuiltin::kSqrt: r = std::sqrt(fx); break;
    case VmBuiltin::kRsqrt: r = 1.0f / std::sqrt(fx); break;
    case VmBuiltin::kSin: r = std::sin(fx); break;
    case VmBuiltin::kCos: r = std::cos(fx); break;
    case VmBuiltin::kTan: r = std::tan(fx); break;
    case VmBuiltin::kAtan: r = std::atan(fx); break;
    case VmBuiltin::kAtan2: r = std::atan2(fx, fy); break;
    case VmBuiltin::kPow: r = std::pow(fx, fy); break;
    case VmBuiltin::kFmod: r = std::fmod(fx, fy); break;
    case VmBuiltin::kFabs: r = std::fabs(fx); break;
    case VmBuiltin::kFmin: r = std::fmin(fx, fy); break;
    case VmBuiltin::kFmax: r = std::fmax(fx, fy); break;
    case VmBuiltin::kFloor: r = std::floor(fx); break;
    case VmBuiltin::kCeil: r = std::ceil(fx); break;
    case VmBuiltin::kRound: r = std::round(fx); break;
    // min/max/abs operate on the raw double lanes in the interpreter.
    case VmBuiltin::kMin: return std::min(x, y);
    case VmBuiltin::kMax: return std::max(x, y);
    case VmBuiltin::kAbs: return std::fabs(x);
  }
  return static_cast<double>(r);
}

inline double CombineLane(ast::ScalarType type, ast::AssignOp op, double lhs,
                          double rhs) {
  using ast::AssignOp;
  const bool f = type == ast::ScalarType::kFloat;
  auto as_float = [](double v) { return static_cast<double>(static_cast<float>(v)); };
  switch (op) {
    case AssignOp::kAssign: return rhs;
    case AssignOp::kAddAssign: return f ? as_float(as_float(lhs) + as_float(rhs)) : lhs + rhs;
    case AssignOp::kSubAssign: return f ? as_float(as_float(lhs) - as_float(rhs)) : lhs - rhs;
    case AssignOp::kMulAssign: return f ? as_float(as_float(lhs) * as_float(rhs)) : lhs * rhs;
    case AssignOp::kDivAssign: return f ? as_float(as_float(lhs) / as_float(rhs)) : (rhs != 0.0 ? static_cast<double>(static_cast<long long>(lhs) / static_cast<long long>(rhs)) : 0.0);
  }
  return rhs;
}

}  // namespace hipacc::sim
