// Minimal fixed-width table printer for the benchmark harnesses, matching
// the layout of the paper's tables (variants as rows, boundary modes as
// columns, "crash"/"n/a" cells). Tables also serialise to the BENCH_*.json
// schema so sweeps are machine-readable: numeric cells stay numbers, text
// cells become {"ms": null, "status": "..."} sentinels.
#pragma once

#include <string>
#include <vector>

#include "compiler/fusion_planner.hpp"
#include "support/cli.hpp"
#include "support/json.hpp"

namespace hipacc::bench {

/// Process-wide tuning knobs shared by every benchmark binary, set from the
/// common flags MakeBenchCli registers.
struct BenchTuning {
  /// --ppt=N|auto: pixels per thread for generated kernels. -1 = flag not
  /// given (each bench keeps its own default), 0 = auto (the compiler's
  /// heuristic sweep picks per device), otherwise the forced value.
  int ppt = -1;
  /// --no-separate clears this: rewrite rank-1 convolution stages into
  /// row + column passes where the bench runs a pipeline graph.
  bool separate = true;
  /// --fuse=off|point|horizontal|halo|all: candidate kinds the fusion
  /// planner may apply in graph-based benches (default: all).
  compiler::FusionMode fuse = compiler::FusionMode::kAll;
  /// --explain-fusion: print every fusion candidate the planner examined
  /// (accept/reject, reason, modelled score) after the graph runs.
  bool explain_fusion = false;
};
BenchTuning& Tuning();

/// CliParser preloaded with the flags every benchmark binary shares
/// (--sim-engine, --cache-dir, --ppt, --no-separate, --fuse,
/// --explain-fusion); a binary registers its extra flags on the returned
/// parser, then calls HandleArgs(). Creating the parser enables the
/// persistent cache at its default location; --cache-dir=off opts out.
support::CliParser MakeBenchCli(std::string program, std::string summary);

/// The --explain-fusion report: dedupes and prints one line per examined
/// fusion candidate (kind, stages, verdict, reason, modelled score).
void PrintFusionDecisions(std::vector<compiler::CandidateDecision> decisions);

class Table {
 public:
  explicit Table(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  /// Starts a new row with the given label.
  void Row(const std::string& label);
  /// Appends a numeric cell (milliseconds) to the current row.
  void Cell(double ms);
  /// Appends a text cell ("crash", "n/a").
  void Cell(const std::string& text);

  /// Renders with aligned columns; `title` is printed first.
  std::string Render(const std::string& title) const;

  /// {"title", "columns": [...], "rows": [{"label", "cells": [...]}]} where
  /// each cell is a number (ms) or, for non-numeric results, the typed
  /// sentinel {"ms": null, "status": "crash"|"n/a"|...} — no magic strings
  /// in numeric positions.
  support::Json ToJson(const std::string& title) const;

  /// Serialises ToJson(title) to `path` (pretty-printed, trailing newline).
  Status WriteJson(const std::string& path, const std::string& title) const;

 private:
  std::vector<std::string> columns_;
  struct TableRow {
    std::string label;
    std::vector<std::string> rendered;  ///< fixed-width text form
    std::vector<support::Json> values;  ///< typed form for ToJson
  };
  std::vector<TableRow> rows_;
};

}  // namespace hipacc::bench
