# Empty dependencies file for hipacc_image.
# This may be replaced when dependencies are built.
