// Reproduces Table VII: bilateral filter on the Radeon HD 6970 (VLIW4),
// OpenCL backend.
#include <cstdio>

#include "common/bilateral_table.hpp"
#include "common/table.hpp"
#include "hwmodel/device_db.hpp"

int main(int argc, char** argv) {
  hipacc::support::CliParser cli =
      hipacc::bench::MakeBenchCli("table7_hd6970_opencl", "Table VII: bilateral filter, Radeon HD 6970, OpenCL backend");
  if (const int code = cli.HandleArgs(argc, argv); code >= 0) return code;
  hipacc::bench::BilateralTableOptions options;
  options.device = hipacc::hw::RadeonHd6970();
  options.json_out = "BENCH_table7.json";
  options.backend = hipacc::ast::Backend::kOpenCL;
  std::printf("%s\n", hipacc::bench::RunBilateralTable(
                          "Table VII: Radeon HD 6970, OpenCL backend", options)
                          .c_str());
  return 0;
}
