// Shared --sim-engine=bytecode|ast flag for the benchmark binaries: selects
// the simulator execution engine process-wide (sim/options.hpp), so the CI
// perf-smoke can run the same table under both engines and diff the output.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "sim/options.hpp"

namespace hipacc::bench {

/// Consumes a `--sim-engine=NAME` argument by updating the process-wide
/// DefaultSimulatorOptions(). Returns false when `arg` is some other flag;
/// exits with a usage error when the engine name is unknown.
inline bool HandleSimEngineFlag(const char* arg) {
  static constexpr char kPrefix[] = "--sim-engine=";
  constexpr std::size_t kLen = sizeof(kPrefix) - 1;
  if (std::strncmp(arg, kPrefix, kLen) != 0) return false;
  const Result<sim::ExecEngine> engine = sim::ParseExecEngine(arg + kLen);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    std::exit(2);
  }
  sim::DefaultSimulatorOptions().engine = engine.value();
  return true;
}

}  // namespace hipacc::bench
