#include "runtime/scheduler.hpp"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <thread>

namespace hipacc::runtime {

Result<std::vector<int>> TopologicalOrder(
    const DagSpec& dag, const std::function<std::string(int)>& label) {
  const int n = dag.node_count();
  std::vector<int> pending = dag.dependencies;
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<int> ready;
  for (int i = 0; i < n; ++i)
    if (pending[static_cast<std::size_t>(i)] == 0) ready.push_back(i);
  while (!ready.empty()) {
    const int node = ready.back();
    ready.pop_back();
    order.push_back(node);
    for (int consumer : dag.consumers[static_cast<std::size_t>(node)])
      if (--pending[static_cast<std::size_t>(consumer)] == 0)
        ready.push_back(consumer);
  }
  if (static_cast<int>(order.size()) == n) return order;

  // Every unprocessed node still has a pending producer, so following any
  // chain of unprocessed producers must revisit a node: that walk is the
  // cycle we report. Rebuild producer edges locally (the spec only stores
  // consumers).
  std::vector<std::vector<int>> producers(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    for (int consumer : dag.consumers[static_cast<std::size_t>(i)])
      producers[static_cast<std::size_t>(consumer)].push_back(i);
  int start = 0;
  while (pending[static_cast<std::size_t>(start)] == 0) ++start;
  std::vector<int> walk;
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  int node = start;
  while (!seen[static_cast<std::size_t>(node)]) {
    seen[static_cast<std::size_t>(node)] = true;
    walk.push_back(node);
    for (int producer : producers[static_cast<std::size_t>(node)]) {
      if (pending[static_cast<std::size_t>(producer)] != 0 ||
          std::find(walk.begin(), walk.end(), producer) != walk.end()) {
        node = producer;
        break;
      }
    }
  }
  // `node` closes the cycle; trim the lead-in and print it producer-first.
  std::string message = "pipeline graph has a cycle: ";
  const auto entry = std::find(walk.begin(), walk.end(), node);
  for (auto it = entry; it != walk.end(); ++it)
    message += label(*it) + " -> ";
  message += label(node);
  return Status::Invalid(message);
}

Status RunDag(const DagSpec& dag, int workers,
              const std::function<Status(int)>& exec) {
  const int n = dag.node_count();
  if (n == 0) return Status::Ok();
  unsigned thread_count =
      workers > 0 ? static_cast<unsigned>(workers)
                  : std::max(1u, std::thread::hardware_concurrency());
  thread_count = std::min(thread_count, static_cast<unsigned>(n));

  std::mutex mutex;
  std::condition_variable cv;
  std::vector<int> pending = dag.dependencies;
  std::vector<int> ready;
  for (int i = 0; i < n; ++i)
    if (pending[static_cast<std::size_t>(i)] == 0) ready.push_back(i);
  int completed = 0;
  bool failed = false;
  Status first_error = Status::Ok();

  auto worker = [&] {
    std::unique_lock<std::mutex> lock(mutex);
    for (;;) {
      cv.wait(lock, [&] { return !ready.empty() || completed == n || failed; });
      if (ready.empty()) return;  // done or failing: nothing left to claim
      const int node = ready.back();
      ready.pop_back();
      lock.unlock();
      const Status status = exec(node);
      lock.lock();
      if (!status.ok()) {
        if (!failed) {
          failed = true;
          first_error = status;
        }
        ready.clear();  // stop dispatching; running nodes finish
        completed = n;
        cv.notify_all();
        return;
      }
      ++completed;
      for (int consumer : dag.consumers[static_cast<std::size_t>(node)])
        if (--pending[static_cast<std::size_t>(consumer)] == 0)
          ready.push_back(consumer);
      if (completed == n || !ready.empty()) cv.notify_all();
    }
  };

  if (thread_count <= 1) {
    // Serial fast path: same claiming logic without the lock traffic.
    std::vector<int>& queue = ready;
    while (!queue.empty()) {
      const int node = queue.back();
      queue.pop_back();
      HIPACC_RETURN_IF_ERROR(exec(node));
      ++completed;
      for (int consumer : dag.consumers[static_cast<std::size_t>(node)])
        if (--pending[static_cast<std::size_t>(consumer)] == 0)
          queue.push_back(consumer);
    }
    return completed == n
               ? Status::Ok()
               : Status::Internal("pipeline graph stalled (cycle?)");
  }

  std::vector<std::thread> threads;
  threads.reserve(thread_count);
  for (unsigned t = 0; t < thread_count; ++t) threads.emplace_back(worker);
  for (auto& t : threads) t.join();
  if (failed) return first_error;
  return completed == n
             ? Status::Ok()
             : Status::Internal("pipeline graph stalled (cycle?)");
}

}  // namespace hipacc::runtime
