#include "hwmodel/occupancy.hpp"

#include <algorithm>

#include "support/string_utils.hpp"

namespace hipacc::hw {
namespace {
int CeilDiv(int a, int b) { return (a + b - 1) / b; }
int RoundUp(int value, int multiple) {
  return multiple > 0 ? CeilDiv(value, multiple) * multiple : value;
}
}  // namespace

int KernelResources::SmemBytesPerBlock(const KernelConfig& config) const noexcept {
  int bytes = smem_static_bytes;
  if (smem_tile) {
    const int tile_w = config.block_x + 2 * smem_halo_x + 1;
    const int tile_h = config.block_y * (ppt > 0 ? ppt : 1) + 2 * smem_halo_y;
    bytes += tile_w * tile_h * elem_bytes;
  }
  return bytes;
}

const char* to_string(OccupancyLimiter limiter) noexcept {
  switch (limiter) {
    case OccupancyLimiter::kThreads: return "threads";
    case OccupancyLimiter::kBlocks: return "blocks";
    case OccupancyLimiter::kRegisters: return "registers";
    case OccupancyLimiter::kSharedMemory: return "shared_memory";
    case OccupancyLimiter::kInvalid: return "invalid";
  }
  return "?";
}

OccupancyResult ComputeOccupancy(const DeviceSpec& device,
                                 const KernelConfig& config,
                                 const KernelResources& resources) {
  OccupancyResult result;
  const int threads = config.threads();
  if (threads <= 0 || threads > device.max_threads_per_block) {
    result.reason = StrFormat("%d threads exceed the per-block limit of %d",
                              threads, device.max_threads_per_block);
    return result;
  }
  if (threads > device.max_threads_per_sm) {
    result.reason = "block exceeds threads per SIMD unit";
    return result;
  }

  const int warps_per_block = CeilDiv(threads, device.simd_width);

  // Shared memory demand; a single block must fit.
  const int smem_block =
      RoundUp(resources.SmemBytesPerBlock(config), device.smem_alloc_granularity);
  if (smem_block > device.smem_per_sm) {
    result.reason = StrFormat("%d B shared memory exceed the %d B per SIMD unit",
                              smem_block, device.smem_per_sm);
    return result;
  }

  // Register demand; a single block must fit.
  int blocks_by_regs = device.max_blocks_per_sm;
  if (resources.regs_per_thread > 0) {
    if (device.regs_allocated_per_block) {
      // CC 1.x: registers are allocated per block, warp-pair granular.
      const int regs_block =
          RoundUp(resources.regs_per_thread * device.simd_width *
                      RoundUp(warps_per_block, 2),
                  device.reg_alloc_granularity);
      if (regs_block > device.regs_per_sm) {
        result.reason = StrFormat("%d registers exceed the %d per SIMD unit",
                                  regs_block, device.regs_per_sm);
        return result;
      }
      blocks_by_regs = device.regs_per_sm / regs_block;
    } else {
      // CC 2.x / AMD: registers are allocated per warp.
      const int regs_warp = RoundUp(resources.regs_per_thread * device.simd_width,
                                    device.reg_alloc_granularity);
      const int warps_by_regs = device.regs_per_sm / regs_warp;
      if (warps_by_regs < warps_per_block) {
        result.reason = "registers do not fit a single block";
        return result;
      }
      blocks_by_regs = warps_by_regs / warps_per_block;
    }
  }

  const int blocks_by_threads = device.max_threads_per_sm / threads;
  const int blocks_by_smem =
      smem_block > 0 ? device.smem_per_sm / smem_block : device.max_blocks_per_sm;

  int blocks = device.max_blocks_per_sm;
  OccupancyLimiter limiter = OccupancyLimiter::kBlocks;
  if (blocks_by_threads < blocks) {
    blocks = blocks_by_threads;
    limiter = OccupancyLimiter::kThreads;
  }
  if (blocks_by_regs < blocks) {
    blocks = blocks_by_regs;
    limiter = OccupancyLimiter::kRegisters;
  }
  if (blocks_by_smem < blocks) {
    blocks = blocks_by_smem;
    limiter = OccupancyLimiter::kSharedMemory;
  }

  result.valid = true;
  result.blocks_per_sm = blocks;
  result.active_warps = blocks * warps_per_block;
  result.occupancy =
      static_cast<double>(result.active_warps) / device.max_warps_per_sm();
  result.limiter = limiter;
  return result;
}

}  // namespace hipacc::hw
