#include "sim/block_state.hpp"

#include <utility>

#include "dsl/boundary.hpp"
#include "support/string_utils.hpp"

namespace hipacc::sim {

using namespace hipacc::ast;

int GuardAluCost(BoundaryMode mode) {
  switch (mode) {
    case BoundaryMode::kClamp: return 1;    // min or max folds into addressing
    case BoundaryMode::kMirror: return 2;   // compare + reflect
    case BoundaryMode::kRepeat: return 3;   // compare + wrap (+ extra range op)
    case BoundaryMode::kConstant: return 7; // divergent predicated dual path:
                                            // compare chain, branch, select
    case BoundaryMode::kUndefined: return 0;
  }
  return 0;
}

BlockState::BlockState(const Launch& launch, const hw::DeviceSpec& device,
                       int block_x_idx, int block_y_idx, Metrics* metrics)
    : launch(launch), device(device), bix(block_x_idx), biy(block_y_idx),
      metrics(metrics), memory(device) {}

Result<BlockState::Plan> BlockState::Begin() {
  const DeviceKernel& kernel = *launch.kernel;
  const hw::RegionGrid rg =
      hw::ComputeRegionGrid(launch.config, launch.width, launch.height,
                            kernel.bh_window, kernel.ppt);
  Plan plan;
  plan.region = kernel.has_boundary_variants() ? rg.RegionOf(bix, biy)
                                               : Region::kInterior;
  if (!kernel.FindVariant(plan.region))
    return Status::Internal("kernel has no variant for region " +
                            std::string(to_string(plan.region)));

  // Block dispatch cost (Listing 8's conditional chain): a handful of
  // compares per thread, uniform across the warp.
  if (kernel.has_boundary_variants()) metrics->alu_ops += 4;

  warp_size = device.simd_width;
  if (warp_size > kMaxWarpWidth)
    return Status::Internal(
        StrFormat("SIMD width %d exceeds the simulator's lane limit %d",
                  warp_size, kMaxWarpWidth));
  plan.threads = launch.config.threads();
  plan.warps = (plan.threads + warp_size - 1) / warp_size;

  if (kernel.smem) {
    const Status staged = StageScratchpad(plan.warps, plan.threads);
    if (!staged.ok()) return staged;
  }
  return plan;
}

void BlockState::BuildWarpContext(int warp, int threads) {
  const int bx = launch.config.block_x;
  const int ppt = launch.kernel ? launch.kernel->ppt : 1;
  tid_x.fill(0);
  tid_y.fill(0);
  gid_x.fill(0);
  gid_y.fill(0);
  active.fill(0);
  for (int lane = 0; lane < warp_size; ++lane) {
    const int lin = warp * warp_size + lane;
    if (lin >= threads) continue;
    const int tx = lin % bx;
    const int ty = lin / bx;
    tid_x[static_cast<size_t>(lane)] = tx;
    tid_y[static_cast<size_t>(lane)] = ty;
    const int gx = bix * bx + tx;
    const int gy = biy * launch.config.block_y + ty;
    gid_x[static_cast<size_t>(lane)] = gx;
    gid_y[static_cast<size_t>(lane)] = gy;
    // The emitted guard `if (gid_x >= IW || gid_y >= IH) return;` — with
    // PPT > 1 a thread is live when its FIRST output row is in bounds
    // (`gid_y * PPT >= IH` in the generated source); later sub-rows carry
    // their own If(y_i < IH) guards in the lowered body.
    active[static_cast<size_t>(lane)] =
        gx < launch.width && gy * ppt < launch.height;
  }
  metrics->alu_ops += 4;  // gid computation + bounds guard
}

// ---- scratchpad staging (Listing 7) ----------------------------------------
Status BlockState::StageScratchpad(int warps, int threads) {
  const SmemPlan& plan = *launch.kernel->smem;
  const BufferBinding* src = launch.FindBuffer(plan.accessor);
  if (!src)
    return Status::Invalid("unbound staged accessor " + plan.accessor);
  const int bx = launch.config.block_x;
  const int by = launch.config.block_y;
  const int ppt = launch.kernel->ppt;
  // With PPT the tile covers block_y*ppt pixel rows plus the halo.
  const int rows = by * ppt;
  const int hx = plan.window.half_x;
  const int hy = plan.window.half_y;
  tile_w = bx + 2 * hx + 1;  // +1 column: bank-conflict padding
  tile_h = rows + 2 * hy;
  tile.assign(static_cast<size_t>(tile_w) * tile_h, 0.0f);

  for (int w = 0; w < warps; ++w) {
    BuildWarpContext(w, threads);
    // Staging happens BEFORE the image-extent guard in the generated code
    // (Listing 7): threads whose own output pixel lies outside the image
    // still cooperate in loading the tile, so no warp is skipped here.
    for (int ty_off = 0; ty_off < rows + 2 * hy; ty_off += by) {
      for (int tx_off = 0; tx_off < bx + 2 * hx; tx_off += bx) {
        std::vector<std::uint64_t> gaddrs, saddrs;
        std::vector<std::pair<size_t, float>> stores;
        for (int lane = 0; lane < warp_size; ++lane) {
          const size_t l = static_cast<size_t>(lane);
          const int lin = w * warp_size + lane;
          if (lin >= threads) continue;
          const int xx = static_cast<int>(tid_x[l]) + tx_off;
          const int yy = static_cast<int>(tid_y[l]) + ty_off;
          if (xx >= bx + 2 * hx || yy >= rows + 2 * hy) continue;
          const int gx = bix * bx + xx - hx;
          const int gy = biy * rows + yy - hy;
          const int rx = dsl::ResolveBoundaryIndex(gx, src->width, plan.boundary);
          const int ry = dsl::ResolveBoundaryIndex(gy, src->height, plan.boundary);
          float value = plan.constant_value;
          if (rx >= 0 && ry >= 0) {
            value = src->data[static_cast<size_t>(ry) * src->stride + rx];
            gaddrs.push_back(static_cast<std::uint64_t>(ry) * src->stride + rx);
          }
          const size_t tidx = static_cast<size_t>(yy) * tile_w + xx;
          stores.emplace_back(tidx, value);
          saddrs.push_back(tidx);
        }
        if (stores.empty()) continue;
        metrics->alu_ops += 6;  // index arithmetic of the staging loop
        metrics->alu_ops += 2 * GuardAluCost(plan.boundary);
        memory.GlobalAccess(gaddrs, /*is_write=*/false, metrics);
        memory.SharedAccess(saddrs, metrics);
        for (const auto& [idx, v] : stores) tile[idx] = v;
      }
    }
  }
  metrics->alu_ops += 1;  // barrier
  return Status::Ok();
}

}  // namespace hipacc::sim
