# Empty compiler generated dependencies file for table8_gaussian_tesla.
# This may be replaced when dependencies are built.
