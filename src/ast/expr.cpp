#include "ast/expr.hpp"

#include "support/status.hpp"

namespace hipacc::ast {

const char* to_string(BinaryOp op) noexcept {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kEq: return "==";
    case BinaryOp::kNe: return "!=";
    case BinaryOp::kAnd: return "&&";
    case BinaryOp::kOr: return "||";
  }
  return "?";
}

const char* to_string(UnaryOp op) noexcept {
  switch (op) {
    case UnaryOp::kNeg: return "-";
    case UnaryOp::kNot: return "!";
  }
  return "?";
}

bool IsComparison(BinaryOp op) noexcept {
  switch (op) {
    case BinaryOp::kLt: case BinaryOp::kLe: case BinaryOp::kGt:
    case BinaryOp::kGe: case BinaryOp::kEq: case BinaryOp::kNe:
    case BinaryOp::kAnd: case BinaryOp::kOr:
      return true;
    default:
      return false;
  }
}

const char* to_string(ThreadIndexKind kind) noexcept {
  switch (kind) {
    case ThreadIndexKind::kThreadIdxX: return "threadIdx.x";
    case ThreadIndexKind::kThreadIdxY: return "threadIdx.y";
    case ThreadIndexKind::kBlockIdxX: return "blockIdx.x";
    case ThreadIndexKind::kBlockIdxY: return "blockIdx.y";
    case ThreadIndexKind::kBlockDimX: return "blockDim.x";
    case ThreadIndexKind::kBlockDimY: return "blockDim.y";
    case ThreadIndexKind::kGridDimX: return "gridDim.x";
    case ThreadIndexKind::kGridDimY: return "gridDim.y";
    case ThreadIndexKind::kGlobalIdX: return "gid_x";
    case ThreadIndexKind::kGlobalIdY: return "gid_y";
    case ThreadIndexKind::kImageW: return "IW";
    case ThreadIndexKind::kImageH: return "IH";
  }
  return "?";
}

namespace {
std::shared_ptr<Expr> Make(ExprKind kind, ScalarType type) {
  auto e = std::make_shared<Expr>();
  e->kind = kind;
  e->type = type;
  return e;
}
}  // namespace

ExprPtr IntLit(long long value) {
  auto e = Make(ExprKind::kIntLit, ScalarType::kInt);
  e->int_value = value;
  return e;
}

ExprPtr FloatLit(double value) {
  auto e = Make(ExprKind::kFloatLit, ScalarType::kFloat);
  e->float_value = value;
  return e;
}

ExprPtr BoolLit(bool value) {
  auto e = Make(ExprKind::kBoolLit, ScalarType::kBool);
  e->bool_value = value;
  return e;
}

ExprPtr VarRef(std::string name, ScalarType type) {
  auto e = Make(ExprKind::kVarRef, type);
  e->name = std::move(name);
  return e;
}

ExprPtr Unary(UnaryOp op, ExprPtr operand) {
  HIPACC_CHECK(operand != nullptr);
  auto e = Make(ExprKind::kUnary,
                op == UnaryOp::kNot ? ScalarType::kBool : operand->type);
  e->unary_op = op;
  e->args = {std::move(operand)};
  return e;
}

ExprPtr Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  HIPACC_CHECK(lhs != nullptr && rhs != nullptr);
  const ScalarType type =
      IsComparison(op) ? ScalarType::kBool : Promote(lhs->type, rhs->type);
  auto e = Make(ExprKind::kBinary, type);
  e->binary_op = op;
  e->args = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr Conditional(ExprPtr cond, ExprPtr then_expr, ExprPtr else_expr) {
  HIPACC_CHECK(cond && then_expr && else_expr);
  auto e = Make(ExprKind::kConditional,
                Promote(then_expr->type, else_expr->type));
  e->args = {std::move(cond), std::move(then_expr), std::move(else_expr)};
  return e;
}

ExprPtr Call(std::string callee, std::vector<ExprPtr> args, ScalarType type) {
  auto e = Make(ExprKind::kCall, type);
  e->name = std::move(callee);
  e->args = std::move(args);
  return e;
}

ExprPtr Cast(ScalarType type, ExprPtr operand) {
  HIPACC_CHECK(operand != nullptr);
  auto e = Make(ExprKind::kCast, type);
  e->args = {std::move(operand)};
  return e;
}

ExprPtr AccessorRead(std::string accessor, ExprPtr dx, ExprPtr dy) {
  HIPACC_CHECK(dx && dy);
  auto e = Make(ExprKind::kAccessorRead, ScalarType::kFloat);
  e->name = std::move(accessor);
  e->args = {std::move(dx), std::move(dy)};
  return e;
}

ExprPtr MaskRead(std::string mask, ExprPtr x, ExprPtr y) {
  HIPACC_CHECK(x && y);
  auto e = Make(ExprKind::kMaskRead, ScalarType::kFloat);
  e->name = std::move(mask);
  e->args = {std::move(x), std::move(y)};
  return e;
}

ExprPtr IterIndex(bool is_y) {
  auto e = Make(ExprKind::kIterIndex, ScalarType::kInt);
  e->is_y = is_y;
  return e;
}

ExprPtr ThreadIndex(ThreadIndexKind kind) {
  auto e = Make(ExprKind::kThreadIndex, ScalarType::kInt);
  e->thread_index = kind;
  return e;
}

ExprPtr MemRead(MemSpace space, std::string buffer, ExprPtr x, ExprPtr y,
                BoundaryMode boundary, RegionChecks checks,
                float constant_value) {
  HIPACC_CHECK(x && y);
  auto e = Make(ExprKind::kMemRead, ScalarType::kFloat);
  e->space = space;
  e->name = std::move(buffer);
  e->args = {std::move(x), std::move(y)};
  e->boundary = boundary;
  e->checks = checks;
  e->constant_value = constant_value;
  return e;
}

}  // namespace hipacc::ast
