#include "support/parallel_for.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace hipacc {
namespace {

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> counts(1000);
  ParallelFor(0, 1000, [&](int i) { counts[static_cast<size_t>(i)]++; });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  std::atomic<int> calls{0};
  ParallelFor(5, 5, [&](int) { calls++; });
  ParallelFor(5, 3, [&](int) { calls++; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, NonZeroBegin) {
  std::atomic<long> sum{0};
  ParallelFor(10, 20, [&](int i) { sum += i; });
  EXPECT_EQ(sum.load(), 145);  // 10 + 11 + ... + 19
}

TEST(ParallelForTest, SingleThreadFallback) {
  std::vector<int> order;
  ParallelFor(0, 10, [&](int i) { order.push_back(i); }, /*max_threads=*/1);
  std::vector<int> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);  // sequential when one worker
}

TEST(ParallelForTest, MoreWorkersThanItems) {
  std::vector<std::atomic<int>> counts(3);
  ParallelFor(0, 3, [&](int i) { counts[static_cast<size_t>(i)]++; },
              /*max_threads=*/16);
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

}  // namespace
}  // namespace hipacc
