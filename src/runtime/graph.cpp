#include "runtime/graph.hpp"

#include <algorithm>

#include "runtime/graph_plan.hpp"
#include "runtime/scheduler.hpp"
#include "sim/trace.hpp"

namespace hipacc::runtime {

PipelineGraph& PipelineGraph::AddNode(Node node) {
  for (const Node& existing : nodes_) {
    if (existing.name == node.name) {
      if (deferred_error_.ok())
        deferred_error_ = Status::Invalid("image '" + node.name +
                                          "' is produced by more than one "
                                          "stage");
      return *this;
    }
  }
  nodes_.push_back(std::move(node));
  return *this;
}

PipelineGraph& PipelineGraph::Source(std::string name, int width, int height) {
  if (width <= 0 || height <= 0) {
    if (deferred_error_.ok())
      deferred_error_ =
          Status::Invalid("source '" + name + "' needs a positive extent");
    return *this;
  }
  Node node;
  node.kind = Node::Kind::kSource;
  node.name = std::move(name);
  node.width = width;
  node.height = height;
  return AddNode(std::move(node));
}

PipelineGraph& PipelineGraph::Kernel(
    std::string name, frontend::KernelSource kernel,
    std::vector<std::pair<std::string, std::string>> inputs,
    std::vector<std::pair<std::string, double>> scalars) {
  if (inputs.empty()) {
    if (deferred_error_.ok())
      deferred_error_ = Status::Invalid(
          "kernel stage '" + name +
          "' needs at least one input (its extent is inferred from the "
          "first)");
    return *this;
  }
  Node node;
  node.kind = Node::Kind::kKernel;
  node.name = std::move(name);
  node.kernel = std::move(kernel);
  node.inputs = std::move(inputs);
  node.scalars = std::move(scalars);
  return AddNode(std::move(node));
}

PipelineGraph& PipelineGraph::Decimate2(std::string name, std::string input) {
  Node node;
  node.kind = Node::Kind::kDecimate;
  node.name = std::move(name);
  node.inputs.emplace_back(std::string(), std::move(input));
  return AddNode(std::move(node));
}

PipelineGraph& PipelineGraph::ZeroUpsample(std::string name, std::string input,
                                           int width, int height) {
  if (width <= 0 || height <= 0) {
    if (deferred_error_.ok())
      deferred_error_ = Status::Invalid("upsample stage '" + name +
                                        "' needs a positive target extent");
    return *this;
  }
  Node node;
  node.kind = Node::Kind::kUpsample;
  node.name = std::move(name);
  node.inputs.emplace_back(std::string(), std::move(input));
  node.width = width;
  node.height = height;
  return AddNode(std::move(node));
}

PipelineGraph& PipelineGraph::Output(std::string name) {
  if (std::find(outputs_.begin(), outputs_.end(), name) == outputs_.end())
    outputs_.push_back(std::move(name));
  return *this;
}

Status PipelineGraph::Run(const InputBindings& inputs,
                          const OutputBindings& outputs,
                          const GraphOptions& options) {
  // One-shot execution is exactly "build one plan, execute one frame"; the
  // streaming executor (stream_executor.hpp) holds the plan across frames
  // instead.
  sim::TraceSpan span(options.run.trace, "graph run", "graph");
  Result<GraphPlan> plan = GraphPlan::Build(*this, options);
  if (!plan.ok()) return plan.status();
  HIPACC_RETURN_IF_ERROR(plan.value().ValidateBindings(inputs, outputs));

  FrameExec frame(plan.value(), /*epoch=*/0);
  frame.BindInputs(&inputs);
  Status status = RunDag(plan.value().dag, options.workers,
                         [&frame](int index) { return frame.ExecStage(index); });
  if (status.ok()) status = frame.CopyOutputs(outputs);
  // Return every remaining buffer (outputs, unconsumed leaves) to the pool
  // for the next Run() — also on failure, so errors never leak buffers.
  frame.ReleaseRemaining();
  HIPACC_RETURN_IF_ERROR(status);

  if (options.run.profiles != nullptr)
    options.run.profiles->RecordBatch(frame.TakeObservations());
  if (options.run.trace != nullptr)
    options.run.trace->IncrementCounter("graph.runs");
  return Status::Ok();
}

}  // namespace hipacc::runtime
