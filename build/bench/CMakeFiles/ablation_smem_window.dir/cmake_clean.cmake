file(REMOVE_RECURSE
  "CMakeFiles/ablation_smem_window.dir/ablation_smem_window.cpp.o"
  "CMakeFiles/ablation_smem_window.dir/ablation_smem_window.cpp.o.d"
  "ablation_smem_window"
  "ablation_smem_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_smem_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
