file(REMOVE_RECURSE
  "CMakeFiles/hipacc_compiler.dir/driver.cpp.o"
  "CMakeFiles/hipacc_compiler.dir/driver.cpp.o.d"
  "CMakeFiles/hipacc_compiler.dir/explore.cpp.o"
  "CMakeFiles/hipacc_compiler.dir/explore.cpp.o.d"
  "CMakeFiles/hipacc_compiler.dir/kernel_file.cpp.o"
  "CMakeFiles/hipacc_compiler.dir/kernel_file.cpp.o.d"
  "libhipacc_compiler.a"
  "libhipacc_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipacc_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
