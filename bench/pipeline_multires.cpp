// Pipeline benchmark: the paper's motivating multiresolution (Laplacian
// pyramid) filter (Section III-A), eager per-stage execution vs the pipeline
// graph runtime. Both paths run the identical kernels; the graph wins by
// fusing each point-wise detail/collect stage into its expand convolution,
// recycling intermediate buffers through the pool, and keeping pixels in
// device images between stages instead of round-tripping host copies. The
// outputs must be bit-identical (the benchmark fails otherwise), so the
// speedup is pure scheduling.
#include <cstdio>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "image/metrics.hpp"
#include "image/synthetic.hpp"
#include "ops/pyramid.hpp"
#include "sim/trace.hpp"
#include "support/stopwatch.hpp"
#include "support/string_utils.hpp"

using namespace hipacc;

namespace {

Result<ast::BoundaryMode> ParseMode(const std::string& name) {
  if (name == "undefined") return ast::BoundaryMode::kUndefined;
  if (name == "clamp") return ast::BoundaryMode::kClamp;
  if (name == "repeat") return ast::BoundaryMode::kRepeat;
  if (name == "mirror") return ast::BoundaryMode::kMirror;
  if (name == "constant") return ast::BoundaryMode::kConstant;
  return Status::Invalid("unknown boundary mode '" + name +
                         "' (undefined|clamp|repeat|mirror|constant|all)");
}

}  // namespace

int main(int argc, char** argv) {
  int size = 1024;
  int levels = 3;
  int repeat = 3;
  std::string mode_name = "all";
  std::string json_out = "BENCH_pipeline.json";
  std::string trace_out;

  support::CliParser cli = bench::MakeBenchCli(
      "pipeline_multires",
      "multiresolution filter: eager per-stage vs pipeline graph runtime");
  cli.Int("size", &size, "N", "square image extent (default 1024)");
  cli.Int("levels", &levels, "N", "pyramid levels (default 3)");
  cli.Int("repeat", &repeat, "N", "timed runs per variant (default 3)");
  cli.String("mode", &mode_name, "MODE",
             "boundary mode to benchmark, or 'all' (default)");
  cli.String("json-out", &json_out, "FILE",
             "BENCH_*.json report path (default BENCH_pipeline.json)");
  cli.String("trace-out", &trace_out, "FILE",
             "Chrome trace_event timeline of the graph runs");
  if (const int code = cli.HandleArgs(argc, argv); code >= 0) return code;

  std::vector<std::pair<std::string, ast::BoundaryMode>> modes;
  if (mode_name == "all") {
    modes = {{"undefined", ast::BoundaryMode::kUndefined},
             {"clamp", ast::BoundaryMode::kClamp},
             {"repeat", ast::BoundaryMode::kRepeat},
             {"mirror", ast::BoundaryMode::kMirror},
             {"constant", ast::BoundaryMode::kConstant}};
  } else {
    Result<ast::BoundaryMode> mode = ParseMode(mode_name);
    if (!mode.ok()) {
      std::fprintf(stderr, "error: %s\n", mode.status().ToString().c_str());
      return 2;
    }
    modes = {{mode_name, mode.value()}};
  }

  const std::vector<float> gains = {2.5f, 1.8f, 1.2f};
  const HostImage<float> input =
      MakeAngiogramPhantom(size, size, 0.02f, 3);

  sim::TraceSink trace;
  bench::Table table({"eager_ms", "graph_ms", "speedup", "max_diff"});
  double worst_speedup = 1e9;

  for (const auto& [name, mode] : modes) {
    // Correctness first: the graph output must match the eager reference
    // bit for bit.
    const HostImage<float> eager_out =
        ops::MultiresolutionFilterEager(input, levels, gains, mode);
    runtime::GraphOptions gopts;
    gopts.run.trace = &trace;
    gopts.fuse = bench::Tuning().fuse;
    std::vector<compiler::CandidateDecision> decisions;
    if (bench::Tuning().explain_fusion) gopts.explain = &decisions;
    Result<HostImage<float>> graph_out =
        ops::MultiresolutionFilterGraph(input, levels, gains, mode, gopts);
    if (!graph_out.ok()) {
      std::fprintf(stderr, "error: graph run (%s): %s\n", name.c_str(),
                   graph_out.status().ToString().c_str());
      return 1;
    }
    const double diff = MaxAbsDiff(eager_out, graph_out.value());
    if (diff != 0.0) {
      std::fprintf(stderr,
                   "error: graph output differs from eager (%s): max |d| = "
                   "%g\n",
                   name.c_str(), diff);
      return 1;
    }

    double eager_ms = 1e300, graph_ms = 1e300;
    for (int r = 0; r < repeat; ++r) {
      Stopwatch sw;
      (void)ops::MultiresolutionFilterEager(input, levels, gains, mode);
      eager_ms = std::min(eager_ms, sw.ElapsedMs());
    }
    // One persistent graph across the timed runs: repeated Run() calls hit
    // the compilation cache and reuse every pooled buffer.
    runtime::PipelineGraph graph;
    ops::BuildMultiresolutionGraph(graph, size, size, levels, gains, mode);
    HostImage<float> out(size, size);
    for (int r = 0; r < repeat; ++r) {
      Stopwatch sw;
      const Status run = graph.Run({{"g0", &input}}, {{"r0", &out}}, gopts);
      if (!run.ok()) {
        std::fprintf(stderr, "error: %s\n", run.ToString().c_str());
        return 1;
      }
      graph_ms = std::min(graph_ms, sw.ElapsedMs());
    }
    if (bench::Tuning().explain_fusion) {
      std::printf("%s:\n", name.c_str());
      bench::PrintFusionDecisions(decisions);
    }

    const double speedup = eager_ms / graph_ms;
    worst_speedup = std::min(worst_speedup, speedup);
    table.Row(name);
    table.Cell(eager_ms);
    table.Cell(graph_ms);
    table.Cell(StrFormat("%.2fx", speedup));
    table.Cell(0.0);
  }

  const std::string title = StrFormat(
      "Multiresolution pipeline, %dx%d, %d levels: eager vs graph runtime",
      size, size, levels);
  std::printf("%s\n", table.Render(title).c_str());
  std::printf(
      "graph counters: stages %lld, fused edges %lld, host launches %lld, "
      "sim launches %lld, pool allocs %lld, pool reuses %lld\n",
      static_cast<long long>(trace.counter("graph.stages")),
      static_cast<long long>(trace.counter("graph.fused_edges")),
      static_cast<long long>(trace.counter("graph.launches.host")),
      static_cast<long long>(trace.counter("graph.launches.sim")),
      static_cast<long long>(trace.counter("bufpool.alloc")),
      static_cast<long long>(trace.counter("bufpool.reuse")));

  if (!json_out.empty()) {
    support::Json doc = table.ToJson(title);
    support::Json counters = support::Json::Object();
    for (const char* key :
         {"graph.stages", "graph.fused_edges", "graph.fused.point",
          "graph.fused.horizontal", "graph.fused.halo",
          "fuse.rejected.legality", "fuse.rejected.profitability",
          "graph.launches.host", "graph.launches.sim", "graph.runs",
          "bufpool.alloc", "bufpool.reuse", "bufpool.peak_bytes",
          "fuse.point.edges", "fuse.horizontal.edges", "fuse.halo.edges"})
      counters[key] = static_cast<double>(trace.counter(key));
    doc["counters"] = std::move(counters);
    const Status written =
        support::WriteFile(json_out, doc.Dump(2) + "\n");
    if (!written.ok()) {
      std::fprintf(stderr, "error: %s\n", written.ToString().c_str());
      return 1;
    }
  }
  if (!trace_out.empty()) {
    const Status written = trace.WriteChromeTrace(trace_out);
    if (!written.ok()) {
      std::fprintf(stderr, "error: %s\n", written.ToString().c_str());
      return 1;
    }
  }
  if (worst_speedup < 1.0) {
    std::fprintf(stderr, "warning: graph slower than eager (%.2fx)\n",
                 worst_speedup);
  }
  return 0;
}
