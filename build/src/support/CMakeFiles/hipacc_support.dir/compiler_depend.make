# Empty compiler generated dependencies file for hipacc_support.
# This may be replaced when dependencies are built.
