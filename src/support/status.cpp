#include "support/status.hpp"

namespace hipacc {

const char* to_string(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kOutOfRange: return "out_of_range";
    case StatusCode::kResourceExhausted: return "resource_exhausted";
    case StatusCode::kUnimplemented: return "unimplemented";
    case StatusCode::kInternal: return "internal";
    case StatusCode::kParseError: return "parse_error";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out = to_string(code_);
  out += ": ";
  out += message_;
  return out;
}

namespace detail {
void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& msg) {
  std::fprintf(stderr, "HIPACC_CHECK failed at %s:%d: %s %s\n", file, line,
               expr, msg.c_str());
  std::abort();
}
}  // namespace detail

}  // namespace hipacc
