#include "common/bilateral_table.hpp"

#include <cstdio>

#include "baselines/manual.hpp"
#include "baselines/rapidmind.hpp"
#include "common/table.hpp"
#include "compiler/executable.hpp"
#include "ops/kernel_sources.hpp"
#include "support/string_utils.hpp"

namespace hipacc::bench {
namespace {

using ast::Backend;
using ast::BoundaryMode;

const BoundaryMode kModes[] = {BoundaryMode::kUndefined, BoundaryMode::kClamp,
                               BoundaryMode::kRepeat, BoundaryMode::kMirror,
                               BoundaryMode::kConstant};

struct VariantSpec {
  std::string label;
  bool generated = false;  ///< region-specialised (our compiler) vs manual
  bool use_mask = false;
  codegen::TexturePolicy texture = codegen::TexturePolicy::kNone;
};

std::vector<VariantSpec> Variants(Backend backend) {
  const bool cuda = backend == Backend::kCuda;
  const std::string tex = cuda ? "+Tex" : "+Img";
  const std::string tex2d = cuda ? "+2DTex" : "+ImgBH";
  using TP = codegen::TexturePolicy;
  return {
      {"Manual", false, false, TP::kNone},
      {"  " + tex, false, false, TP::kLinear},
      {"  " + tex2d, false, false, TP::kArray2D},
      {"  +Mask", false, true, TP::kNone},
      {"  +Mask" + tex, false, true, TP::kLinear},
      {"  +Mask" + tex2d, false, true, TP::kArray2D},
      {"Generated", true, false, TP::kNone},
      {"  " + tex, true, false, TP::kLinear},
      {"  +Mask", true, true, TP::kNone},
      {"  +Mask" + tex, true, true, TP::kLinear},
  };
}

}  // namespace

std::string RunBilateralTable(const std::string& title,
                              const BilateralTableOptions& options) {
  const int n = options.image_size;
  const hw::KernelConfig config{128, 1};  // as stated under each paper table
  dsl::Image<float> in(n, n), out(n, n);

  Table table({"Undef.", "Clamp", "Repeat", "Mirror", "Const."});

  for (const VariantSpec& variant : Variants(options.backend)) {
    table.Row(variant.label);
    for (const BoundaryMode mode : kModes) {
      // Hardware boundary handling only exists for some modes: CUDA 2D
      // textures support Clamp/Repeat, OpenCL samplers additionally a 0/1
      // Constant; Mirror is never available (the paper's "n/a" cells).
      frontend::KernelSource source =
          variant.use_mask
              ? ops::BilateralMaskSource(options.sigma_d, mode)
              : ops::BilateralSource(options.sigma_d, mode);
      compiler::CompileOptions copts;
      copts.codegen.backend = options.backend;
      copts.codegen.texture = variant.texture;
      copts.codegen.border = variant.generated ? codegen::BorderPolicy::kRegions
                                               : codegen::BorderPolicy::kUniform;
      copts.device = options.device;
      copts.image_width = n;
      copts.image_height = n;
      copts.forced_config = config;

      Result<compiler::CompiledKernel> compiled =
          compiler::Compile(source, copts);
      if (!compiled.ok()) {
        table.Cell(std::string("n/a"));
        continue;
      }
      runtime::BindingSet bindings;
      bindings.Input("Input", in)
          .Output(out)
          .Scalar("sigma_d", options.sigma_d)
          .Scalar("sigma_r", options.sigma_r);
      compiler::SimulatedExecutable exe(std::move(compiled).take(),
                                        options.device);
      Result<sim::LaunchStats> stats = exe.Measure(bindings);
      if (!stats.ok()) {
        table.Cell(std::string("error"));
        continue;
      }
      // Unguarded out-of-bounds global reads crash Fermi-class cards under
      // the CUDA runtime (Table II); other platforms return garbage pixels.
      const bool crashes = stats.value().metrics.oob_violations > 0 &&
                           options.device.compute_capability >= 20 &&
                           options.backend == Backend::kCuda;
      if (crashes)
        table.Cell(std::string("crash"));
      else
        table.Cell(stats.value().timing.total_ms);
    }
  }

  if (options.include_rapidmind) {
    for (const bool texture : {false, true}) {
      table.Row(texture ? "  +Tex" : "RapidMind");
      for (const BoundaryMode mode : kModes) {
        runtime::BindingSet bindings;
        bindings.Input("Input", in).Output(out);
        Result<baselines::RapidMindMeasurement> rm =
            baselines::MeasureRapidMindBilateral(
                options.sigma_d, options.sigma_r, mode, texture,
                options.device, n, n, config, bindings);
        if (!rm.ok()) {
          table.Cell(std::string("n/a"));
        } else if (rm.value().crashed) {
          table.Cell(std::string("crash"));
        } else {
          table.Cell(rm.value().ms);
        }
      }
    }
  }

  const std::string full_title = StrFormat(
      "%s\nBilateral filter, %dx%d image, %dx%d window (sigma_d = %d), "
      "kernel configuration 128x1. Times in ms (modelled).",
      title.c_str(), n, n, 4 * options.sigma_d + 1, 4 * options.sigma_d + 1,
      options.sigma_d);
  if (!options.json_out.empty()) {
    const Status written = table.WriteJson(options.json_out, title);
    if (!written.ok())
      std::fprintf(stderr, "warning: %s\n", written.ToString().c_str());
  }
  return table.Render(full_title);
}

}  // namespace hipacc::bench
