
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsl/boundary.cpp" "src/dsl/CMakeFiles/hipacc_dsl.dir/boundary.cpp.o" "gcc" "src/dsl/CMakeFiles/hipacc_dsl.dir/boundary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/hipacc_support.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/hipacc_image.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/hipacc_ast.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
