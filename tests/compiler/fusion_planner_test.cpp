// Fusion planner and the horizontal / halo mergers: legality rules,
// alpha-renaming, bit-exact equivalence of fused kernels against separate
// launches, and the profitability model's behaviour against device limits.
#include "compiler/fusion_planner.hpp"

#include <gtest/gtest.h>

#include "compiler/driver.hpp"
#include "compiler/executable.hpp"
#include "compiler/fusion.hpp"
#include "image/metrics.hpp"
#include "image/synthetic.hpp"
#include "ops/kernel_sources.hpp"
#include "ops/masks.hpp"

namespace hipacc {
namespace {

using ast::BoundaryMode;
using compiler::CandidateDecision;
using compiler::FuseHalo;
using compiler::FuseHorizontal;
using compiler::FuseKind;
using compiler::FusionMode;
using compiler::FusionPlannerOptions;
using compiler::ParseFusionMode;
using compiler::PlannerStage;
using compiler::PlanNextFusion;

frontend::KernelSource SobelX(BoundaryMode mode = BoundaryMode::kClamp) {
  return ops::ConvolutionSource("sobel_x", 3, 3, ops::SobelMaskX(), mode);
}
frontend::KernelSource SobelY(BoundaryMode mode = BoundaryMode::kClamp) {
  return ops::ConvolutionSource("sobel_y", 3, 3, ops::SobelMaskY(), mode);
}

TEST(FusionModeTest, ParsesAllSpellings) {
  EXPECT_EQ(ParseFusionMode("off").value(), FusionMode::kOff);
  EXPECT_EQ(ParseFusionMode("point").value(), FusionMode::kPoint);
  EXPECT_EQ(ParseFusionMode("horizontal").value(), FusionMode::kHorizontal);
  EXPECT_EQ(ParseFusionMode("halo").value(), FusionMode::kHalo);
  EXPECT_EQ(ParseFusionMode("all").value(), FusionMode::kAll);
  EXPECT_FALSE(ParseFusionMode("vertical").ok());
  EXPECT_FALSE(ParseFusionMode("").ok());
}

TEST(FusionModeTest, AllowsMatchingKindsOnly) {
  EXPECT_FALSE(FusionModeAllows(FusionMode::kOff, FuseKind::kPoint));
  EXPECT_TRUE(FusionModeAllows(FusionMode::kPoint, FuseKind::kPoint));
  EXPECT_FALSE(FusionModeAllows(FusionMode::kPoint, FuseKind::kHalo));
  EXPECT_TRUE(FusionModeAllows(FusionMode::kHalo, FuseKind::kHalo));
  EXPECT_TRUE(FusionModeAllows(FusionMode::kAll, FuseKind::kHorizontal));
}

// --- horizontal merger ------------------------------------------------

TEST(FuseHorizontalTest, MergesSobelPairWithAlphaRenaming) {
  // Both kernels come from the same factory: mask "M" and body locals
  // sum/xf/yf collide. The merger must rename b's copies, not reject.
  const Result<frontend::KernelSource> fused =
      FuseHorizontal(SobelX(), "Input", SobelY(), "Input", "gy");
  ASSERT_TRUE(fused.ok()) << fused.status().ToString();
  ASSERT_EQ(fused.value().extra_outputs.size(), 1u);
  EXPECT_EQ(fused.value().extra_outputs[0], "gy");
  // b's output write was retargeted to the named extra output.
  EXPECT_NE(fused.value().body.find("output(gy)"), std::string::npos);
  // Two masks with distinct names survive.
  ASSERT_EQ(fused.value().masks.size(), 2u);
  EXPECT_NE(fused.value().masks[0].name, fused.value().masks[1].name);
  // One shared accessor, not two.
  EXPECT_EQ(fused.value().accessors.size(), 1u);
}

TEST(FuseHorizontalTest, SobelPairBitIdenticalToSeparateLaunches) {
  const HostImage<float> input = MakeNoiseImage(48, 40, 21);
  compiler::CompileOptions copts;
  copts.image_width = input.width();
  copts.image_height = input.height();

  auto run_single = [&](const frontend::KernelSource& k) {
    Result<compiler::CompiledKernel> ck = compiler::Compile(k, copts);
    EXPECT_TRUE(ck.ok()) << ck.status().ToString();
    dsl::Image<float> in(input.width(), input.height());
    dsl::Image<float> out(input.width(), input.height());
    in.CopyFrom(input);
    runtime::BindingSet bindings;
    bindings.Input("Input", in).Output(out);
    compiler::SimulatedExecutable exe(std::move(ck).take(), hw::TeslaC2050());
    const Result<sim::LaunchStats> stats = exe.Run(bindings);
    EXPECT_TRUE(stats.ok()) << stats.status().ToString();
    return out.getData();
  };
  const HostImage<float> gx_ref = run_single(SobelX());
  const HostImage<float> gy_ref = run_single(SobelY());

  const Result<frontend::KernelSource> fused =
      FuseHorizontal(SobelX(), "Input", SobelY(), "Input", "gy");
  ASSERT_TRUE(fused.ok()) << fused.status().ToString();
  Result<compiler::CompiledKernel> ck = compiler::Compile(fused.value(), copts);
  ASSERT_TRUE(ck.ok()) << ck.status().ToString();
  dsl::Image<float> in(input.width(), input.height());
  dsl::Image<float> gx(input.width(), input.height());
  dsl::Image<float> gy(input.width(), input.height());
  in.CopyFrom(input);
  runtime::BindingSet bindings;
  bindings.Input("Input", in).Output(gx).Output("gy", gy);
  compiler::SimulatedExecutable exe(std::move(ck).take(), hw::TeslaC2050());
  const Result<sim::LaunchStats> stats = exe.Run(bindings);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  EXPECT_EQ(MaxAbsDiff(gx_ref, gx.getData()), 0.0);
  EXPECT_EQ(MaxAbsDiff(gy_ref, gy.getData()), 0.0);
}

TEST(FuseHorizontalTest, RejectsParamCollision) {
  // Two scale_offset siblings both bind scalars named scale/offset; the
  // runtime binds params by name, so merging them is ambiguous.
  const Result<frontend::KernelSource> fused = FuseHorizontal(
      ops::ScaleOffsetSource(), "Input", ops::ScaleOffsetSource(), "Input",
      "second");
  ASSERT_FALSE(fused.ok());
  EXPECT_NE(fused.status().message().find("scale"), std::string::npos);
}

TEST(FuseHorizontalTest, RejectsWindowedBoundaryMismatch) {
  // Both siblings window the shared image but disagree on the boundary
  // mode; a single merged accessor cannot honour both.
  const Result<frontend::KernelSource> fused = FuseHorizontal(
      SobelX(BoundaryMode::kClamp), "Input", SobelY(BoundaryMode::kMirror),
      "Input", "gy");
  ASSERT_FALSE(fused.ok());
  EXPECT_NE(fused.status().message().find("boundary"), std::string::npos);
}

TEST(FuseHorizontalTest, RejectsMultiOutputSecondSibling) {
  Result<frontend::KernelSource> pair =
      FuseHorizontal(SobelX(), "Input", SobelY(), "Input", "gy");
  ASSERT_TRUE(pair.ok());
  // Folding a multi-output kernel in as the *second* sibling is not
  // supported (its named writes cannot be retargeted); as the first
  // sibling it accumulates further outputs fine.
  const Result<frontend::KernelSource> bad = FuseHorizontal(
      ops::ScaleOffsetSource(), "Input", pair.value(), "Input", "third");
  ASSERT_FALSE(bad.ok());
  const Result<frontend::KernelSource> good = FuseHorizontal(
      pair.value(), "Input", ops::ThresholdSource(), "Input", "mask_img");
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  EXPECT_EQ(good.value().extra_outputs.size(), 2u);
}

// --- halo merger ------------------------------------------------------

/// Compiles and runs `kernel` over `input` on the simulator.
HostImage<float> RunOn(const frontend::KernelSource& kernel,
                       const HostImage<float>& input,
                       const std::vector<std::pair<std::string, double>>&
                           scalars = {}) {
  compiler::CompileOptions copts;
  copts.image_width = input.width();
  copts.image_height = input.height();
  Result<compiler::CompiledKernel> ck = compiler::Compile(kernel, copts);
  EXPECT_TRUE(ck.ok()) << ck.status().ToString();
  dsl::Image<float> in(input.width(), input.height());
  dsl::Image<float> out(input.width(), input.height());
  in.CopyFrom(input);
  runtime::BindingSet bindings;
  bindings.Input(ck.value().decl.accessors.front().name, in).Output(out);
  for (const auto& [name, value] : scalars) bindings.Scalar(name, value);
  compiler::SimulatedExecutable exe(std::move(ck).take(), hw::TeslaC2050());
  const Result<sim::LaunchStats> stats = exe.Run(bindings);
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  return out.getData();
}

TEST(FuseHaloTest, PointProducerIntoConvolutionBitExact) {
  // scale_offset -> sobel: the consumer re-evaluates the producer at every
  // tap, with boundary-remapped coordinates at the edges.
  const HostImage<float> input = MakeNoiseImage(40, 33, 3);
  for (const BoundaryMode mode : {BoundaryMode::kClamp, BoundaryMode::kMirror}) {
    const HostImage<float> scaled =
        RunOn(ops::ScaleOffsetSource(), input, {{"scale", 1.5}, {"offset", -0.2}});
    const HostImage<float> reference = RunOn(SobelX(mode), scaled);

    const Result<frontend::KernelSource> fused =
        FuseHalo(ops::ScaleOffsetSource(), SobelX(mode), "Input",
                 input.width(), input.height());
    ASSERT_TRUE(fused.ok()) << fused.status().ToString();
    const HostImage<float> got =
        RunOn(fused.value(), input, {{"scale", 1.5}, {"offset", -0.2}});
    EXPECT_EQ(MaxAbsDiff(reference, got), 0.0)
        << "mode " << static_cast<int>(mode);
  }
}

TEST(FuseHaloTest, ConvolveProducerIntoLaplacianBitExact) {
  // gaussian (expressed with the convolve() intrinsic) -> laplacian: the
  // producer's convolve is pre-expanded into a tap sum, then inlined at
  // every consumer tap. Both kernels name their mask "M" — legal, because
  // the producer's mask is fully consumed by the expansion.
  const HostImage<float> input = MakeAngiogramPhantom(48, 48, 0.02f, 5);
  const frontend::KernelSource producer =
      ops::GaussianConvolveSource(3, 1.0f, BoundaryMode::kClamp);
  const frontend::KernelSource consumer = ops::ConvolutionSource(
      "laplacian", 3, 3, ops::LaplacianMask3(), BoundaryMode::kClamp);

  const HostImage<float> reference = RunOn(consumer, RunOn(producer, input));

  const Result<frontend::KernelSource> fused =
      FuseHalo(producer, consumer, "Input", input.width(), input.height());
  ASSERT_TRUE(fused.ok()) << fused.status().ToString();
  // The producer's mask was folded into literals: one mask (the consumer's)
  // remains, and the fused accessor window widened from 3x3 to 5x5.
  EXPECT_EQ(fused.value().masks.size(), 1u);
  ASSERT_EQ(fused.value().accessors.size(), 1u);
  EXPECT_EQ(fused.value().accessors[0].window.size_x(), 5);
  EXPECT_EQ(fused.value().accessors[0].window.size_y(), 5);

  EXPECT_EQ(MaxAbsDiff(reference, RunOn(fused.value(), input)), 0.0);
}

TEST(FuseHaloTest, RejectsUnsupportedConsumerBoundary) {
  const frontend::KernelSource consumer = ops::ConvolutionSource(
      "box", 3, 3, ops::BoxMask(3), BoundaryMode::kRepeat);
  const Result<frontend::KernelSource> fused =
      FuseHalo(ops::ScaleOffsetSource(), consumer, "Input", 32, 32);
  ASSERT_FALSE(fused.ok());
  EXPECT_NE(fused.status().message().find("boundary"), std::string::npos);
}

TEST(FuseHaloTest, RejectsLoopBodiedProducer) {
  // ConvolutionSource bodies are for-loops, not a single `output() = expr;`
  // statement — the halo merger only inlines expression producers.
  const Result<frontend::KernelSource> fused =
      FuseHalo(SobelX(), SobelY(), "Input", 32, 32);
  ASSERT_FALSE(fused.ok());
  EXPECT_NE(fused.status().message().find("expression"), std::string::npos);
}

// --- planner ----------------------------------------------------------

std::vector<PlannerStage> TwoStageChain(const frontend::KernelSource& a,
                                        const frontend::KernelSource& b,
                                        int w, int h) {
  PlannerStage sa;
  sa.fusable = true;
  sa.name = "a";
  sa.source = &a;
  sa.inputs = {{"Input", "in"}};
  sa.width = w;
  sa.height = h;
  PlannerStage sb = sa;
  sb.name = "b";
  sb.source = &b;
  sb.inputs = {{"Input", "a"}};
  return {sa, sb};
}

TEST(FusionPlannerTest, PlansPointEdgeOverChain) {
  const frontend::KernelSource conv = SobelX();
  const frontend::KernelSource scale = ops::ScaleOffsetSource();
  const std::vector<PlannerStage> stages = TwoStageChain(conv, scale, 64, 64);
  FusionPlannerOptions options;
  const auto plan = PlanNextFusion(stages, options);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->request.kind, FuseKind::kPoint);
  EXPECT_EQ(plan->into, 1);
  EXPECT_EQ(plan->retired, 0);
}

TEST(FusionPlannerTest, RespectsModeRestriction) {
  const frontend::KernelSource conv = SobelX();
  const frontend::KernelSource scale = ops::ScaleOffsetSource();
  const std::vector<PlannerStage> stages = TwoStageChain(conv, scale, 64, 64);
  FusionPlannerOptions options;
  options.mode = FusionMode::kHorizontal;  // no siblings here
  EXPECT_FALSE(PlanNextFusion(stages, options).has_value());
  options.mode = FusionMode::kOff;
  EXPECT_FALSE(PlanNextFusion(stages, options).has_value());
}

TEST(FusionPlannerTest, RecordsStructuralRejectReasons) {
  // "a" is external: the planner must refuse to eliminate it and say why.
  const frontend::KernelSource conv = SobelX();
  const frontend::KernelSource scale = ops::ScaleOffsetSource();
  std::vector<PlannerStage> stages = TwoStageChain(conv, scale, 64, 64);
  stages[0].external = true;
  std::vector<CandidateDecision> decisions;
  FusionPlannerOptions options;
  options.decisions = &decisions;
  EXPECT_FALSE(PlanNextFusion(stages, options).has_value());
  ASSERT_FALSE(decisions.empty());
  bool saw_external = false;
  for (const CandidateDecision& d : decisions) {
    EXPECT_FALSE(d.accepted);
    saw_external |= d.reason.find("externally visible") != std::string::npos;
  }
  EXPECT_TRUE(saw_external);
}

TEST(FusionPlannerTest, DeclinesFusionExceedingDeviceResources) {
  // A device with a scratchpad too small for the widened fused tile: the
  // halo candidate is legal but must be declined by the profitability
  // model (Compile fails in config selection, not in the merger).
  const frontend::KernelSource producer =
      ops::GaussianConvolveSource(3, 1.0f, BoundaryMode::kClamp);
  const frontend::KernelSource consumer = ops::ConvolutionSource(
      "laplacian", 3, 3, ops::LaplacianMask3(), BoundaryMode::kClamp);
  std::vector<PlannerStage> stages = TwoStageChain(producer, consumer, 64, 64);

  hw::DeviceSpec tiny = hw::TeslaC2050();
  tiny.name = "tiny";
  tiny.smem_per_sm = 256;   // no staging tile with a 2-pixel halo fits
  tiny.regs_per_sm = 1024;

  std::vector<CandidateDecision> decisions;
  FusionPlannerOptions options;
  options.decisions = &decisions;
  options.compile.device = tiny;
  options.compile.codegen.use_scratchpad = true;
  EXPECT_FALSE(PlanNextFusion(stages, options).has_value());
  bool saw_resource_decline = false;
  for (const CandidateDecision& d : decisions)
    if (d.kind == FuseKind::kHalo && d.legal && !d.accepted &&
        d.reason.find("does not fit the device") != std::string::npos)
      saw_resource_decline = true;
  EXPECT_TRUE(saw_resource_decline);

  // The same candidate on the real device is accepted.
  decisions.clear();
  FusionPlannerOptions roomy;
  roomy.decisions = &decisions;
  const auto plan = PlanNextFusion(stages, roomy);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->request.kind, FuseKind::kHalo);
}

TEST(FusionPlannerTest, DedupeKeepsAcceptedVerdict) {
  std::vector<CandidateDecision> decisions;
  CandidateDecision reject;
  reject.kind = FuseKind::kHalo;
  reject.producer = "a";
  reject.consumer = "b";
  reject.reason = "first look: too expensive";
  CandidateDecision accept = reject;
  accept.legal = true;
  accept.accepted = true;
  accept.reason = "second look: profitable";
  CandidateDecision other = reject;
  other.kind = FuseKind::kPoint;
  decisions = {reject, accept, reject, other};
  compiler::DedupeDecisions(&decisions);
  ASSERT_EQ(decisions.size(), 2u);
  EXPECT_TRUE(decisions[0].accepted);  // accepted verdict wins
  EXPECT_EQ(decisions[1].kind, FuseKind::kPoint);
}

}  // namespace
}  // namespace hipacc
