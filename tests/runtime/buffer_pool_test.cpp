// Concurrency contract of the graph runtime's buffer pool: the scheduler
// acquires and releases intermediates from worker threads, so the pool must
// never hand the same buffer to two owners, keep its counters consistent
// under churn, and make multi-worker graph runs bit-identical to serial
// ones. Run under TSan these tests double as a data-race check on the
// Acquire/Release paths.
#include "runtime/buffer_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "image/metrics.hpp"
#include "image/synthetic.hpp"
#include "ops/kernel_sources.hpp"
#include "runtime/graph.hpp"
#include "sim/trace.hpp"

namespace hipacc {
namespace {

using runtime::BufferPool;
using runtime::GraphOptions;
using runtime::PipelineGraph;

TEST(BufferPoolTest, RecyclesOnlyMatchingExtent) {
  BufferPool pool;
  BufferPool::ImagePtr a = pool.Acquire(16, 8);
  BufferPool::ImagePtr b = pool.Acquire(8, 16);  // transposed: distinct key
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->width(), 16);
  EXPECT_EQ(a->height(), 8);
  dsl::Image<float>* recycled = a.get();
  pool.Release(std::move(a));
  pool.Release(std::move(b));
  // Same extent comes back from the free list; a third extent allocates.
  BufferPool::ImagePtr again = pool.Acquire(16, 8);
  EXPECT_EQ(again.get(), recycled);
  BufferPool::ImagePtr fresh = pool.Acquire(4, 4);
  EXPECT_EQ(pool.alloc_count(), 3);
  EXPECT_EQ(pool.reuse_count(), 1);
}

TEST(BufferPoolTest, ConcurrentChurnNeverDoubleHandsOutABuffer) {
  // Hammer one pool from a worker-pool's worth of threads over a small set
  // of extents (so reuse actually happens), and track every live pointer
  // in a shared set: an Acquire returning a buffer some other thread still
  // owns inserts a duplicate and fails immediately.
  BufferPool pool;
  constexpr int kThreads = 8;
  constexpr int kIterations = 400;
  constexpr struct { int w, h; } kExtents[] = {{33, 17}, {64, 8}, {17, 33}};
  std::mutex live_mu;
  std::set<const dsl::Image<float>*> live;
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        const auto& e = kExtents[(t + i) % 3];
        BufferPool::ImagePtr img = pool.Acquire(e.w, e.h);
        if (img == nullptr || img->width() != e.w || img->height() != e.h) {
          errors.fetch_add(1);
          continue;
        }
        {
          std::lock_guard<std::mutex> lock(live_mu);
          if (!live.insert(img.get()).second) errors.fetch_add(1);
        }
        // Touch the pixels while owning the buffer; a double hand-out
        // turns this into a racing write TSan flags even if the set
        // check's timing misses it.
        img->span()(0, 0) = static_cast<float>(t * kIterations + i);
        {
          std::lock_guard<std::mutex> lock(live_mu);
          live.erase(img.get());
        }
        pool.Release(std::move(img));
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(errors.load(), 0);
  // Every acquire was served, either fresh or recycled, and the pool never
  // allocated more than the true concurrent peak per extent.
  EXPECT_EQ(pool.alloc_count() + pool.reuse_count(),
            static_cast<long long>(kThreads) * kIterations);
  EXPECT_LE(pool.alloc_count(), static_cast<long long>(kThreads) * 3);
  EXPECT_GT(pool.reuse_count(), 0);
}

TEST(PipelineGraphConcurrencyTest, WorkerPoolRunsBitIdenticalToSerial) {
  // A wide fan-out/fan-in DAG: eight independent blur branches feeding a
  // reduction chain. With workers > 1 the branches execute concurrently on
  // the scheduler's pool threads, releasing intermediates back to the
  // shared BufferPool from different threads; pixels must still match the
  // serial run bit for bit.
  const HostImage<float> in = MakeNoiseImage(48, 40, 21);
  HostImage<float> serial(48, 40), parallel(48, 40);
  for (const int workers : {1, 8}) {
    PipelineGraph graph;
    graph.Source("in", 48, 40);
    std::vector<std::pair<std::string, std::string>> last;
    for (int b = 0; b < 8; ++b) {
      const std::string name = "blur" + std::to_string(b);
      graph.Kernel(name,
                   ops::GaussianSource(3, 1.0f + 0.1f * b,
                                       ast::BoundaryMode::kClamp),
                   {{"Input", "in"}});
    }
    std::string acc = "blur0";
    for (int b = 1; b < 8; ++b) {
      const std::string merged = "merge" + std::to_string(b);
      graph.Kernel(merged, ops::PyramidDetailSource(),
                   {{"U", acc}, {"Fine", "blur" + std::to_string(b)}});
      acc = merged;
    }
    graph.Output(acc);
    sim::TraceSink trace;
    GraphOptions options;
    options.workers = workers;
    options.run.trace = &trace;
    HostImage<float>& out = workers == 1 ? serial : parallel;
    ASSERT_TRUE(graph.Run({{"in", &in}}, {{acc, &out}}, options).ok());
    // Rerun on the same graph: the pool must serve every intermediate from
    // the free list regardless of which worker released it.
    const long long allocs = trace.counter("bufpool.alloc");
    ASSERT_TRUE(graph.Run({{"in", &in}}, {{acc, &out}}, options).ok());
    EXPECT_EQ(trace.counter("bufpool.alloc"), allocs);
    EXPECT_GT(graph.pool().reuse_count(), 0);
  }
  EXPECT_EQ(MaxAbsDiff(serial, parallel), 0.0);
}

}  // namespace
}  // namespace hipacc
