// Constant folding / propagation over the IR. The paper uses this to turn
// compile-time-constant filter masks into statically initialised constant
// memory and to simplify boundary-region index arithmetic.
#pragma once

#include "ast/stmt.hpp"

namespace hipacc::ast {

/// Folds literal arithmetic, comparisons, casts, known math calls on
/// literal arguments, constant conditionals, and the algebraic identities
/// x+0, x*1, x*0. Returns the (possibly shared) folded tree.
ExprPtr FoldConstants(const ExprPtr& expr);

/// Applies FoldConstants to every expression in a statement tree.
StmtPtr FoldConstants(const StmtPtr& stmt);

/// If `expr` folds to a numeric literal, stores it in `out` (ints convert
/// exactly) and returns true.
bool EvaluateConstant(const ExprPtr& expr, double* out);

}  // namespace hipacc::ast
