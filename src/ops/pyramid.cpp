#include "ops/pyramid.hpp"

#include <string>

#include "dsl/accessor.hpp"
#include "dsl/image.hpp"
#include "ops/dsl_ops.hpp"
#include "ops/kernel_sources.hpp"
#include "ops/masks.hpp"

namespace hipacc::ops {
namespace {

/// Runs the DSL Convolution kernel over a whole image with the given
/// boundary mode and 5x5 Gaussian mask.
HostImage<float> Smooth5(const HostImage<float>& image,
                         ast::BoundaryMode mode) {
  dsl::Image<float> in(image.width(), image.height());
  dsl::Image<float> out(image.width(), image.height());
  in.CopyFrom(image);

  dsl::Mask<float> mask(5, 5);
  mask = GaussianMask2D(5, 1.0f);

  dsl::BoundaryCondition<float> bc =
      mode == ast::BoundaryMode::kConstant
          ? dsl::BoundaryCondition<float>(in, 5, 5, mode, 0.0f)
          : dsl::BoundaryCondition<float>(in, 5, 5, mode);
  dsl::Accessor<float> acc(bc);
  dsl::IterationSpace<float> is(out);
  Convolution conv(is, acc, mask);
  conv.execute();
  return out.getData();
}

}  // namespace

HostImage<float> PyramidDown(const HostImage<float>& image,
                             ast::BoundaryMode mode) {
  const HostImage<float> smooth = Smooth5(image, mode);
  const int w = (image.width() + 1) / 2;
  const int h = (image.height() + 1) / 2;
  HostImage<float> down(w, h);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x) down(x, y) = smooth(2 * x, 2 * y);
  return down;
}

HostImage<float> PyramidUp(const HostImage<float>& image, int target_width,
                           int target_height, ast::BoundaryMode mode) {
  HIPACC_CHECK(target_width >= image.width() && target_height >= image.height());
  HostImage<float> expanded(target_width, target_height, 0.0f);
  for (int y = 0; y < image.height(); ++y)
    for (int x = 0; x < image.width(); ++x) {
      const int tx = 2 * x, ty = 2 * y;
      if (tx < target_width && ty < target_height)
        expanded(tx, ty) = image(x, y);
    }
  HostImage<float> smooth = Smooth5(expanded, mode);
  // Zero insertion quarters the energy; restore it.
  for (int y = 0; y < target_height; ++y)
    for (int x = 0; x < target_width; ++x) smooth(x, y) *= 4.0f;
  return smooth;
}

void BuildMultiresolutionGraph(runtime::PipelineGraph& graph, int width,
                               int height, int levels,
                               const std::vector<float>& gains,
                               ast::BoundaryMode mode) {
  HIPACC_CHECK(levels >= 1);
  const frontend::KernelSource conv =
      ConvolutionSource("gauss5", 5, 5, GaussianMask2D(5, 1.0f), mode, 0.0f);

  // Per-level extents: w[l+1] = ceil(w[l] / 2), as PyramidDown produces.
  std::vector<int> w{width}, h{height};
  for (int l = 0; l < levels; ++l) {
    w.push_back((w.back() + 1) / 2);
    h.push_back((h.back() + 1) / 2);
  }
  auto g = [](int l) { return "g" + std::to_string(l); };

  graph.Source(g(0), width, height);
  // Decompose: Gaussian levels and detail bands. The expand convolution
  // ("updc") has the detail stage as its only consumer, so the fusion pass
  // folds it away — one fused launch per band instead of two.
  for (int l = 0; l < levels; ++l) {
    const std::string ls = std::to_string(l);
    graph.Kernel("smooth" + ls, conv, {{"Input", g(l)}})
        .Decimate2(g(l + 1), "smooth" + ls)
        .ZeroUpsample("upd" + ls, g(l + 1), w[static_cast<size_t>(l)],
                      h[static_cast<size_t>(l)])
        .Kernel("updc" + ls, conv, {{"Input", "upd" + ls}})
        .Kernel("band" + ls, PyramidDetailSource(),
                {{"U", "updc" + ls}, {"Fine", g(l)}});
  }
  // Reconstruct coarse-to-fine; "r<l>" is the recollected level-l image
  // (the coarsest is the top Gaussian level itself). The expand convolution
  // ("uprc") again fuses into the point-wise collect stage.
  for (int l = levels - 1; l >= 0; --l) {
    const std::string ls = std::to_string(l);
    const std::string coarser =
        l == levels - 1 ? g(levels) : "r" + std::to_string(l + 1);
    const float gain =
        l < static_cast<int>(gains.size()) ? gains[static_cast<size_t>(l)]
                                           : 1.0f;
    graph
        .ZeroUpsample("upr" + ls, coarser, w[static_cast<size_t>(l)],
                      h[static_cast<size_t>(l)])
        .Kernel("uprc" + ls, conv, {{"Input", "upr" + ls}})
        .Kernel("r" + ls, PyramidCollectSource(),
                {{"U", "uprc" + ls}, {"B", "band" + ls}},
                {{"gain", static_cast<double>(gain)}});
  }
  graph.Output("r0");
}

Result<HostImage<float>> MultiresolutionFilterGraph(
    const HostImage<float>& image, int levels, const std::vector<float>& gains,
    ast::BoundaryMode mode, const runtime::GraphOptions& options) {
  runtime::PipelineGraph graph;
  BuildMultiresolutionGraph(graph, image.width(), image.height(), levels,
                            gains, mode);
  HostImage<float> out(image.width(), image.height());
  HIPACC_RETURN_IF_ERROR(
      graph.Run({{"g0", &image}}, {{"r0", &out}}, options));
  return out;
}

HostImage<float> MultiresolutionFilter(const HostImage<float>& image,
                                       int levels,
                                       const std::vector<float>& gains,
                                       ast::BoundaryMode mode) {
  Result<HostImage<float>> out =
      MultiresolutionFilterGraph(image, levels, gains, mode);
  HIPACC_CHECK(out.ok());
  return std::move(out).take();
}

HostImage<float> MultiresolutionFilterEager(const HostImage<float>& image,
                                            int levels,
                                            const std::vector<float>& gains,
                                            ast::BoundaryMode mode) {
  HIPACC_CHECK(levels >= 1);
  // Decompose.
  std::vector<HostImage<float>> gaussians;
  gaussians.push_back(image);
  for (int l = 0; l < levels; ++l)
    gaussians.push_back(PyramidDown(gaussians.back(), mode));

  std::vector<HostImage<float>> details;
  for (int l = 0; l < levels; ++l) {
    const HostImage<float>& fine = gaussians[static_cast<size_t>(l)];
    const HostImage<float> up = PyramidUp(gaussians[static_cast<size_t>(l) + 1],
                                          fine.width(), fine.height(), mode);
    HostImage<float> band(fine.width(), fine.height());
    for (int y = 0; y < fine.height(); ++y)
      for (int x = 0; x < fine.width(); ++x)
        band(x, y) = fine(x, y) - up(x, y);
    details.push_back(std::move(band));
  }

  // Reconstruct with per-band gains.
  HostImage<float> current = gaussians.back();
  for (int l = levels - 1; l >= 0; --l) {
    const HostImage<float>& band = details[static_cast<size_t>(l)];
    HostImage<float> up =
        PyramidUp(current, band.width(), band.height(), mode);
    const float gain =
        l < static_cast<int>(gains.size()) ? gains[static_cast<size_t>(l)] : 1.0f;
    for (int y = 0; y < band.height(); ++y)
      for (int x = 0; x < band.width(); ++x)
        up(x, y) += gain * band(x, y);
    current = std::move(up);
  }
  return current;
}

}  // namespace hipacc::ops
