file(REMOVE_RECURSE
  "CMakeFiles/ablation_mask.dir/ablation_mask.cpp.o"
  "CMakeFiles/ablation_mask.dir/ablation_mask.cpp.o.d"
  "ablation_mask"
  "ablation_mask.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mask.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
