// Differential validation of the bytecode execution engine: for every
// example kernel, boundary mode, image extent, and memory-path variant, the
// bytecode VM must be observably indistinguishable from the AST
// interpreter — output pixels bit for bit, every metric counter, and the
// modelled time. Inputs are randomized with the repo's deterministic RNG
// (same generator discipline as the PR 1 boundary property sweeps), so a
// divergence reproduces byte-for-byte.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "compiler/driver.hpp"
#include "ops/kernel_sources.hpp"
#include "ops/masks.hpp"
#include "runtime/bindings.hpp"
#include "sim/bytecode.hpp"
#include "sim/jit/cache.hpp"
#include "sim/jit/toolchain.hpp"
#include "sim/simulator.hpp"
#include "support/rng.hpp"

namespace hipacc {
namespace {

using ast::BoundaryMode;

constexpr BoundaryMode kAllModes[] = {
    BoundaryMode::kUndefined, BoundaryMode::kClamp, BoundaryMode::kRepeat,
    BoundaryMode::kMirror, BoundaryMode::kConstant};

struct EngineRun {
  Status status = Status::Ok();
  std::vector<float> output;
  sim::LaunchStats stats;
};

HostImage<float> RandomInput(int w, int h, Rng& rng) {
  HostImage<float> img(w, h);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x)
      img(x, y) = 4.0f * rng.NextFloat() - 1.0f;  // includes negatives
  return img;
}

EngineRun RunEngine(const compiler::CompiledKernel& kernel,
                    const HostImage<float>& input,
                    const runtime::BindingSet& scalars,
                    sim::ExecEngine engine) {
  EngineRun run;
  dsl::Image<float> in(input.width(), input.height());
  dsl::Image<float> out(input.width(), input.height());
  in.CopyFrom(input);
  runtime::BindingSet bindings = scalars;
  bindings.Input("Input", in).Output(out);
  Result<runtime::LaunchHolder> holder =
      runtime::BuildLaunch(kernel.device_ir, kernel.config.config, bindings);
  if (!holder.ok()) {
    run.status = holder.status();
    return run;
  }
  holder.value().launch.programs = kernel.bytecode.get();
  sim::SimulatorOptions options;
  options.engine = engine;
  options.jit_threshold = 1;  // native runs tier up on the first launch
  sim::Simulator simulator(hw::TeslaC2050(), options);
  Result<sim::LaunchStats> stats =
      simulator.Execute(holder.value().launch);
  if (!stats.ok()) {
    run.status = stats.status();
    return run;
  }
  run.stats = stats.value();
  const HostImage<float>& data = out.getData();
  run.output.assign(data.data(), data.data() + data.size());
  return run;
}

void ExpectMetricsEqual(const sim::Metrics& a, const sim::Metrics& b) {
  EXPECT_EQ(a.alu_ops, b.alu_ops);
  EXPECT_EQ(a.sfu_calls, b.sfu_calls);
  EXPECT_EQ(a.global_read_instrs, b.global_read_instrs);
  EXPECT_EQ(a.global_write_instrs, b.global_write_instrs);
  EXPECT_EQ(a.global_transactions, b.global_transactions);
  EXPECT_EQ(a.l1_hits, b.l1_hits);
  EXPECT_EQ(a.tex_read_instrs, b.tex_read_instrs);
  EXPECT_EQ(a.tex_hits, b.tex_hits);
  EXPECT_EQ(a.tex_transactions, b.tex_transactions);
  EXPECT_EQ(a.const_broadcasts, b.const_broadcasts);
  EXPECT_EQ(a.const_serialized, b.const_serialized);
  EXPECT_EQ(a.smem_accesses, b.smem_accesses);
  EXPECT_EQ(a.smem_conflict_cycles, b.smem_conflict_cycles);
  EXPECT_EQ(a.oob_violations, b.oob_violations);
}

/// Compiles `source` and runs the AST interpreter against `engine` on a
/// fresh randomized input; every observable — pixels (bitwise), metrics,
/// modelled time — must match. Failures (e.g. degenerate region grids at
/// tiny extents) must be identical on both engines too.
void ExpectEngineMatchesAst(const frontend::KernelSource& source, int w,
                            int h, const runtime::BindingSet& scalars,
                            Rng& rng, codegen::CodegenOptions codegen,
                            sim::ExecEngine engine) {
  compiler::CompileOptions options;
  options.codegen = codegen;
  options.device = hw::TeslaC2050();
  options.image_width = w;
  options.image_height = h;
  options.forced_config = hw::KernelConfig{32, 2};
  Result<compiler::CompiledKernel> compiled =
      compiler::Compile(source, options);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  ASSERT_NE(compiled.value().bytecode, nullptr)
      << "bytecode pass fell back for " << source.name;

  const HostImage<float> input = RandomInput(w, h, rng);
  const EngineRun ast = RunEngine(compiled.value(), input, scalars,
                                  sim::ExecEngine::kAst);
  const EngineRun vm = RunEngine(compiled.value(), input, scalars, engine);
  SCOPED_TRACE(source.name + " " + std::to_string(w) + "x" +
               std::to_string(h));
  ASSERT_EQ(ast.status.ok(), vm.status.ok())
      << "ast: " << ast.status.ToString()
      << " vm: " << vm.status.ToString();
  if (!ast.status.ok()) {
    EXPECT_EQ(ast.status.ToString(), vm.status.ToString());
    return;
  }
  ASSERT_EQ(ast.output.size(), vm.output.size());
  EXPECT_EQ(std::memcmp(ast.output.data(), vm.output.data(),
                        ast.output.size() * sizeof(float)),
            0)
      << "output pixels differ";
  ExpectMetricsEqual(ast.stats.metrics, vm.stats.metrics);
  EXPECT_EQ(ast.stats.timing.total_ms, vm.stats.timing.total_ms);
}

void ExpectEnginesAgree(const frontend::KernelSource& source, int w, int h,
                        const runtime::BindingSet& scalars, Rng& rng,
                        codegen::CodegenOptions codegen = {}) {
  ExpectEngineMatchesAst(source, w, h, scalars, rng, codegen,
                         sim::ExecEngine::kBytecode);
}

/// Same differential contract, but for the native tier: the jitted host
/// code (or its threaded-VM fallback when a program is not jittable) must
/// be observably indistinguishable from the AST interpreter.
void ExpectNativeAgrees(const frontend::KernelSource& source, int w, int h,
                        const runtime::BindingSet& scalars, Rng& rng,
                        codegen::CodegenOptions codegen = {}) {
  ExpectEngineMatchesAst(source, w, h, scalars, rng, codegen,
                         sim::ExecEngine::kNative);
}

// The extents exercise: a single-block grid, a grid with populated border
// bands on a 32x2 configuration, and a larger multi-block interior.
constexpr struct { int w, h; } kExtents[] = {{33, 29}, {73, 41}, {129, 65}};

TEST(BytecodeDifferentialTest, GaussianAllModesAllExtents) {
  Rng rng(0xB0DA12u);
  for (const auto& e : kExtents)
    for (const BoundaryMode mode : kAllModes)
      ExpectEnginesAgree(ops::GaussianSource(5, 1.2f, mode, 0.25f), e.w, e.h,
                         {}, rng);
}

TEST(BytecodeDifferentialTest, SobelAllModesAllExtents) {
  Rng rng(0xB0DA12u);
  for (const auto& e : kExtents)
    for (const BoundaryMode mode : kAllModes)
      ExpectEnginesAgree(
          ops::ConvolutionSource("sobel", 3, 3, ops::SobelMaskX(), mode,
                                 -0.5f),
          e.w, e.h, {}, rng);
}

TEST(BytecodeDifferentialTest, BilateralAllModesAllExtents) {
  Rng rng(0xB0DA12u);
  runtime::BindingSet scalars;
  scalars.Scalar("sigma_d", 1).Scalar("sigma_r", 5);
  for (const auto& e : kExtents)
    for (const BoundaryMode mode : kAllModes) {
      // Both the mask-based (Listing 5) and the recompute-everything
      // (Listing 1) formulations; the latter exercises nested loops with
      // live accumulators and exp() in the inner loop.
      ExpectEnginesAgree(ops::BilateralMaskSource(1, mode), e.w, e.h,
                         scalars, rng);
      ExpectEnginesAgree(ops::BilateralSource(1, mode, 0.5f), e.w, e.h,
                         scalars, rng);
    }
}

TEST(BytecodeDifferentialTest, NonConvolutionOpsAllModes) {
  Rng rng(0xB0DA12u);
  for (const BoundaryMode mode : kAllModes) {
    ExpectEnginesAgree(ops::Median3x3Source(mode), 73, 41, {}, rng);
    ExpectEnginesAgree(ops::ErodeSource(3, mode), 73, 41, {}, rng);
    ExpectEnginesAgree(ops::DilateSource(3, mode), 73, 41, {}, rng);
  }
}

TEST(BytecodeDifferentialTest, PointOperators) {
  Rng rng(0xB0DA12u);
  runtime::BindingSet scale;
  scale.Scalar("scale", 3.0).Scalar("offset", -0.5);
  runtime::BindingSet threshold;
  threshold.Scalar("threshold", 0.5);
  for (const auto& e : kExtents) {
    ExpectEnginesAgree(ops::ScaleOffsetSource(), e.w, e.h, scale, rng);
    ExpectEnginesAgree(ops::ThresholdSource(), e.w, e.h, threshold, rng);
  }
}

TEST(BytecodeDifferentialTest, MemoryPathVariants) {
  Rng rng(0xB0DA12u);
  const frontend::KernelSource source =
      ops::GaussianSource(5, 1.0f, BoundaryMode::kMirror);
  codegen::CodegenOptions smem;
  smem.use_scratchpad = true;
  ExpectEnginesAgree(source, 73, 41, {}, rng, smem);

  codegen::CodegenOptions tex;
  tex.texture = codegen::TexturePolicy::kLinear;
  ExpectEnginesAgree(source, 73, 41, {}, rng, tex);

  codegen::CodegenOptions hwbh;
  hwbh.texture = codegen::TexturePolicy::kArray2D;
  ExpectEnginesAgree(ops::GaussianSource(5, 1.0f, BoundaryMode::kClamp), 73,
                     41, {}, rng, hwbh);

  codegen::CodegenOptions global_masks;
  global_masks.masks_in_constant_memory = false;
  ExpectEnginesAgree(source, 73, 41, {}, rng, global_masks);

  codegen::CodegenOptions uniform;
  uniform.border = codegen::BorderPolicy::kUniform;
  ExpectEnginesAgree(source, 73, 41, {}, rng, uniform);

  codegen::CodegenOptions opencl;
  opencl.backend = ast::Backend::kOpenCL;
  ExpectEnginesAgree(source, 73, 41, {}, rng, opencl);

  codegen::CodegenOptions unopt;
  unopt.scalar_optimizer = false;
  ExpectEnginesAgree(source, 73, 41, {}, rng, unopt);

  codegen::CodegenOptions intrinsics;
  intrinsics.use_fast_intrinsics = true;
  runtime::BindingSet scalars;
  scalars.Scalar("sigma_d", 1).Scalar("sigma_r", 5);
  ExpectEnginesAgree(ops::BilateralSource(1, BoundaryMode::kClamp), 73, 41,
                     scalars, rng, intrinsics);
}

TEST(BytecodeDifferentialTest, ConvolveUnrolledFormulation) {
  // Listing 9's convolve() syntax: fully unrolled taps with folded
  // coefficients — the heaviest constant-folding path in the compiler.
  Rng rng(0xB0DA12u);
  for (const BoundaryMode mode : kAllModes)
    ExpectEnginesAgree(ops::GaussianConvolveSource(3, 1.0f, mode, 1.0f), 73,
                       41, {}, rng);
}

// --- Native tier ---------------------------------------------------------
// The same differential contract, with the native tier as the engine under
// test. Each run tiers up on its first launch (threshold 1), so the
// generated host code — not the threaded VM — produces the compared
// pixels whenever a toolchain is present. Without a toolchain the engine
// must degrade to the threaded VM and still agree, which is exactly what
// MissingToolchainStillAgrees pins down.

TEST(NativeDifferentialTest, GaussianAllModesAllExtents) {
  if (!sim::jit::ToolchainAvailable())
    GTEST_SKIP() << "no host toolchain in this environment";
  Rng rng(0x7A17B0u);
  for (const auto& e : kExtents)
    for (const BoundaryMode mode : kAllModes)
      ExpectNativeAgrees(ops::GaussianSource(5, 1.2f, mode, 0.25f), e.w,
                         e.h, {}, rng);
}

TEST(NativeDifferentialTest, SobelAndBilateralAllModes) {
  if (!sim::jit::ToolchainAvailable())
    GTEST_SKIP() << "no host toolchain in this environment";
  Rng rng(0x7A17B0u);
  runtime::BindingSet scalars;
  scalars.Scalar("sigma_d", 1).Scalar("sigma_r", 5);
  for (const BoundaryMode mode : kAllModes) {
    ExpectNativeAgrees(
        ops::ConvolutionSource("sobel", 3, 3, ops::SobelMaskX(), mode,
                               -0.5f),
        73, 41, {}, rng);
    ExpectNativeAgrees(ops::BilateralMaskSource(1, mode), 49, 27, scalars,
                       rng);
  }
}

TEST(NativeDifferentialTest, PixelsPerThreadMatrix) {
  if (!sim::jit::ToolchainAvailable())
    GTEST_SKIP() << "no host toolchain in this environment";
  // Host-compile time of the fused straight-line code scales with
  // taps x ppt, so the deterministic matrix sticks to a 3x3 stencil and a
  // point chain; wide-stencil ppt=8 coverage lives in the fuzz harness's
  // PptMatrixAgrees, which uses small random masks.
  Rng rng(0x7A17B0u);
  runtime::BindingSet tone;
  tone.Scalar("center", 0.4f).Scalar("weight", 0.7f);
  for (const int ppt : {1, 2, 4}) {
    codegen::CodegenOptions codegen;
    codegen.pixels_per_thread = ppt;
    SCOPED_TRACE("ppt=" + std::to_string(ppt));
    ExpectNativeAgrees(
        ops::ConvolutionSource("sobel", 3, 3, ops::SobelMaskX(),
                               BoundaryMode::kClamp, -0.5f),
        73, 41, {}, rng, codegen);
  }
  for (const int ppt : {2, 4, 8}) {
    codegen::CodegenOptions codegen;
    codegen.pixels_per_thread = ppt;
    SCOPED_TRACE("ppt=" + std::to_string(ppt));
    ExpectNativeAgrees(ops::ToneCurveSource(6), 73, 41, tone, rng, codegen);
  }
}

TEST(NativeDifferentialTest, BackendAndMemoryPathVariants) {
  if (!sim::jit::ToolchainAvailable())
    GTEST_SKIP() << "no host toolchain in this environment";
  Rng rng(0x7A17B0u);
  const frontend::KernelSource source =
      ops::GaussianSource(5, 1.0f, BoundaryMode::kMirror);

  codegen::CodegenOptions smem;
  smem.use_scratchpad = true;
  ExpectNativeAgrees(source, 73, 41, {}, rng, smem);

  codegen::CodegenOptions tex;
  tex.texture = codegen::TexturePolicy::kLinear;
  ExpectNativeAgrees(source, 73, 41, {}, rng, tex);

  codegen::CodegenOptions hwbh;
  hwbh.texture = codegen::TexturePolicy::kArray2D;
  ExpectNativeAgrees(ops::GaussianSource(5, 1.0f, BoundaryMode::kClamp), 73,
                     41, {}, rng, hwbh);

  codegen::CodegenOptions global_masks;
  global_masks.masks_in_constant_memory = false;
  ExpectNativeAgrees(source, 73, 41, {}, rng, global_masks);

  codegen::CodegenOptions uniform;
  uniform.border = codegen::BorderPolicy::kUniform;
  ExpectNativeAgrees(source, 73, 41, {}, rng, uniform);

  codegen::CodegenOptions opencl;
  opencl.backend = ast::Backend::kOpenCL;
  ExpectNativeAgrees(source, 73, 41, {}, rng, opencl);

  codegen::CodegenOptions unopt;
  unopt.scalar_optimizer = false;
  ExpectNativeAgrees(source, 73, 41, {}, rng, unopt);

  codegen::CodegenOptions intrinsics;
  intrinsics.use_fast_intrinsics = true;
  runtime::BindingSet scalars;
  scalars.Scalar("sigma_d", 1).Scalar("sigma_r", 5);
  ExpectNativeAgrees(ops::BilateralSource(1, BoundaryMode::kClamp), 73, 41,
                     scalars, rng, intrinsics);
}

TEST(NativeDifferentialTest, SpecialisedSourcesAllModes) {
  // The device-specialised sources added alongside the native tier:
  // compile-time window baking (bilateral_fixed) and the dispatch-bound
  // point chain (tone_curve). Both lower to fused straight-line native
  // code with live float arithmetic, so they anchor the emitter's
  // arithmetic paths the masked convolutions never reach.
  if (!sim::jit::ToolchainAvailable())
    GTEST_SKIP() << "no host toolchain in this environment";
  Rng rng(0x7A17B0u);
  runtime::BindingSet bilateral;
  bilateral.Scalar("sigma_r", 4);
  runtime::BindingSet tone;
  tone.Scalar("center", 0.4f).Scalar("weight", 0.7f);
  for (const BoundaryMode mode : kAllModes)
    ExpectNativeAgrees(ops::BilateralFixedSource(1, mode, 0.5f), 49, 27,
                       bilateral, rng);
  ExpectNativeAgrees(ops::ToneCurveSource(6), 73, 41, tone, rng);
  ExpectNativeAgrees(ops::ToneCurveSource(3), 33, 29, tone, rng);
}

TEST(NativeDifferentialTest, MissingToolchainStillAgrees) {
  // On a machine with no host compiler the native engine must silently
  // degrade to the threaded VM and remain bit-identical to the AST
  // interpreter — same pixels, metrics, and modelled time.
  sim::jit::JitCache::Instance().ResetForTesting();
  sim::jit::SetToolchainOverrideForTesting("");
  EXPECT_FALSE(sim::jit::ToolchainAvailable());
  Rng rng(0x7A17B0u);
  ExpectNativeAgrees(ops::GaussianSource(5, 1.2f, BoundaryMode::kMirror),
                     73, 41, {}, rng);
  ExpectNativeAgrees(ops::Median3x3Source(BoundaryMode::kClamp), 33, 29, {},
                     rng);
  sim::jit::SetToolchainOverrideForTesting(nullptr);
  sim::jit::JitCache::Instance().ResetForTesting();
}

TEST(BytecodeCompilerTest, ProgramsAreRegionSpecialised) {
  compiler::CompileOptions options;
  options.image_width = 256;
  options.image_height = 256;
  Result<compiler::CompiledKernel> compiled = compiler::Compile(
      ops::GaussianSource(5, 1.0f, BoundaryMode::kMirror), options);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  const auto& programs = compiled.value().bytecode;
  ASSERT_NE(programs, nullptr);
  // Region-specialised kernels get one program per border variant.
  EXPECT_EQ(programs->programs.size(),
            compiled.value().device_ir.variants.size());
  EXPECT_GT(programs->total_instructions, 0);
  for (const auto& program : programs->programs) {
    EXPECT_NE(programs->Find(program.region), nullptr);
    EXPECT_GT(program.code.size(), 0u);
    EXPECT_GT(program.num_regs, 0);
  }
}

}  // namespace
}  // namespace hipacc
