// DAG scheduling for the pipeline graph runtime: topological validation
// (with a useful cycle diagnostic) and dependency-counting execution over a
// small worker pool. Kept separate from graph.cpp so the scheduling policy
// is testable without building pipelines.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "support/status.hpp"

namespace hipacc::runtime {

/// Dependency structure of one pipeline run. Node `i` may start once all of
/// its `dependencies[i]` producers completed; when it completes, each node
/// in `consumers[i]` loses one pending dependency.
struct DagSpec {
  std::vector<std::vector<int>> consumers;
  std::vector<int> dependencies;

  int node_count() const { return static_cast<int>(dependencies.size()); }
};

/// Kahn's algorithm. Returns a valid execution order, or Invalid naming the
/// stages on a cycle ("a -> b -> a") via the `label` callback.
Result<std::vector<int>> TopologicalOrder(
    const DagSpec& dag, const std::function<std::string(int)>& label);

/// Executes every node once, respecting dependencies, with up to `workers`
/// threads (0 = hardware concurrency; always at least 1). Independent
/// branches run concurrently; `exec` must be thread-safe across distinct
/// nodes. Stops dispatching after the first failure and returns it.
/// Precondition: the DAG is acyclic (run TopologicalOrder first).
Status RunDag(const DagSpec& dag, int workers,
              const std::function<Status(int)>& exec);

}  // namespace hipacc::runtime
