// Read/write analysis (paper Section IV-A): builds the CFG of the kernel
// body and traverses it recording, for every Image/Accessor, whether it is
// read, written, or both. Texture mapping is only valid for read-only
// accesses; the output image uses plain global pointers in CUDA and
// write_imagef in OpenCL.
#pragma once

#include <map>
#include <string>

#include "ast/kernel_ir.hpp"

namespace hipacc::codegen {

enum class AccessKind { kNone, kRead, kWrite, kReadWrite };

const char* to_string(AccessKind kind) noexcept;

struct AccessSummary {
  /// Accessor name -> observed access kind.
  std::map<std::string, AccessKind> accessors;
  /// Whether output() is assigned (it always should be).
  bool output_written = false;
  /// Mask name -> read count (masks are read-only by construction).
  std::map<std::string, int> mask_reads;
};

/// Runs the analysis over `kernel`'s CFG.
AccessSummary AnalyzeAccesses(const ast::KernelDecl& kernel);

}  // namespace hipacc::codegen
