#include "ops/kernel_sources.hpp"

#include "ops/masks.hpp"
#include "support/string_utils.hpp"

namespace hipacc::ops {
namespace {

using ast::AccessorInfo;
using ast::MaskInfo;
using ast::ParamInfo;
using ast::ScalarType;
using ast::WindowExtent;

AccessorInfo InputAccessor(int size_x, int size_y, BoundaryMode mode,
                           float constant_value) {
  AccessorInfo acc;
  acc.name = "Input";
  acc.window = WindowExtent::FromSize(size_x, size_y);
  acc.boundary = mode;
  acc.constant_value = constant_value;
  return acc;
}

}  // namespace

frontend::KernelSource BilateralSource(int sigma_d, BoundaryMode mode,
                                       float constant_value) {
  const int size = 4 * sigma_d + 1;
  frontend::KernelSource src;
  src.name = "bilateral";
  src.params = {{"sigma_d", ScalarType::kInt}, {"sigma_r", ScalarType::kInt}};
  src.accessors = {InputAccessor(size, size, mode, constant_value)};
  src.body = R"(
    float c_r = 1.0f / (2.0f * sigma_r * sigma_r);
    float c_d = 1.0f / (2.0f * sigma_d * sigma_d);
    float d = 0.0f;
    float p = 0.0f;
    for (int yf = -2 * sigma_d; yf <= 2 * sigma_d; yf++) {
      for (int xf = -2 * sigma_d; xf <= 2 * sigma_d; xf++) {
        float diff = Input(xf, yf) - Input();
        float s = exp(-c_r * diff * diff);
        float c = exp(-c_d * xf * xf) * exp(-c_d * yf * yf);
        d += s * c;
        p += s * c * Input(xf, yf);
      }
    }
    output() = p / d;
  )";
  return src;
}

frontend::KernelSource BilateralMaskSource(int sigma_d, BoundaryMode mode,
                                           bool static_mask,
                                           float constant_value) {
  const int size = 4 * sigma_d + 1;
  frontend::KernelSource src;
  src.name = "bilateral_mask";
  src.params = {{"sigma_d", ScalarType::kInt}, {"sigma_r", ScalarType::kInt}};
  src.accessors = {InputAccessor(size, size, mode, constant_value)};
  MaskInfo mask;
  mask.name = "CMask";
  mask.size_x = size;
  mask.size_y = size;
  if (static_mask) mask.static_values = BilateralClosenessMask(sigma_d);
  src.masks = {mask};
  src.body = R"(
    float c_r = 1.0f / (2.0f * sigma_r * sigma_r);
    float d = 0.0f;
    float p = 0.0f;
    for (int yf = -2 * sigma_d; yf <= 2 * sigma_d; yf++) {
      for (int xf = -2 * sigma_d; xf <= 2 * sigma_d; xf++) {
        float diff = Input(xf, yf) - Input();
        float s = exp(-c_r * diff * diff);
        float c = CMask(xf, yf);
        d += s * c;
        p += s * c * Input(xf, yf);
      }
    }
    output() = p / d;
  )";
  return src;
}

frontend::KernelSource BilateralFixedSource(int sigma_d, BoundaryMode mode,
                                            float constant_value) {
  // Device-specific variant in the spirit of the paper: the filter window is
  // known at code-generation time, so the loop bounds are emitted as
  // literals instead of runtime parameters. This keeps the range sigma as a
  // launch argument (it only feeds arithmetic) while making the iteration
  // space static — which lets downstream tiers (separability analysis, the
  // native tier's unrolled fusion) see the whole loop nest.
  const int size = 4 * sigma_d + 1;
  const int radius = 2 * sigma_d;
  frontend::KernelSource src;
  src.name = "bilateral_fixed";
  src.params = {{"sigma_r", ScalarType::kInt}};
  src.accessors = {InputAccessor(size, size, mode, constant_value)};
  src.body = StrFormat(R"(
    float c_r = 1.0f / (2.0f * sigma_r * sigma_r);
    float c_d = 1.0f / (2.0f * %d * %d);
    float d = 0.0f;
    float p = 0.0f;
    for (int yf = -%d; yf <= %d; yf++) {
      for (int xf = -%d; xf <= %d; xf++) {
        float diff = Input(xf, yf) - Input();
        float s = exp(-c_r * diff * diff);
        float c = exp(-c_d * xf * xf) * exp(-c_d * yf * yf);
        d += s * c;
        p += s * c * Input(xf, yf);
      }
    }
    output() = p / d;
  )",
                        sigma_d, sigma_d, radius, radius, radius, radius);
  return src;
}

frontend::KernelSource ConvolutionSource(const std::string& name, int size_x,
                                         int size_y, std::vector<float> mask,
                                         BoundaryMode mode,
                                         float constant_value) {
  frontend::KernelSource src;
  src.name = name;
  src.accessors = {InputAccessor(size_x, size_y, mode, constant_value)};
  MaskInfo mask_info;
  mask_info.name = "M";
  mask_info.size_x = size_x;
  mask_info.size_y = size_y;
  mask_info.static_values = std::move(mask);
  src.masks = {mask_info};
  src.body = StrFormat(R"(
    float sum = 0.0f;
    for (int yf = -%d; yf <= %d; yf++) {
      for (int xf = -%d; xf <= %d; xf++) {
        sum += M(xf, yf) * Input(xf, yf);
      }
    }
    output() = sum;
  )",
                       size_y / 2, size_y / 2, size_x / 2, size_x / 2);
  return src;
}

frontend::KernelSource GaussianSource(int size, float sigma, BoundaryMode mode,
                                      float constant_value) {
  return ConvolutionSource("gaussian", size, size, GaussianMask2D(size, sigma),
                           mode, constant_value);
}

frontend::KernelSource GaussianConvolveSource(int size, float sigma,
                                              BoundaryMode mode,
                                              float constant_value) {
  frontend::KernelSource src;
  src.name = "gaussian_convolve";
  src.accessors = {InputAccessor(size, size, mode, constant_value)};
  MaskInfo mask;
  mask.name = "M";
  mask.size_x = size;
  mask.size_y = size;
  mask.static_values = GaussianMask2D(size, sigma);
  src.masks = {mask};
  // Listing 9: output() = convolve(cMask, SUM, cMask() * Input(cMask));
  src.body = "output() = convolve(M, SUM, M() * Input(M));";
  return src;
}

frontend::KernelSource Median3x3Source(BoundaryMode mode) {
  frontend::KernelSource src;
  src.name = "median3x3";
  src.accessors = {InputAccessor(3, 3, mode, 0.0f)};
  // McGuire's 9-element median exchange network: 19 compare-exchange pairs,
  // the median lands in p4.
  src.body = R"(
    float p0 = Input(-1, -1); float p1 = Input(0, -1); float p2 = Input(1, -1);
    float p3 = Input(-1, 0);  float p4 = Input(0, 0);  float p5 = Input(1, 0);
    float p6 = Input(-1, 1);  float p7 = Input(0, 1);  float p8 = Input(1, 1);
    float t = 0.0f;
    t = fmin(p1, p2); p2 = fmax(p1, p2); p1 = t;
    t = fmin(p4, p5); p5 = fmax(p4, p5); p4 = t;
    t = fmin(p7, p8); p8 = fmax(p7, p8); p7 = t;
    t = fmin(p0, p1); p1 = fmax(p0, p1); p0 = t;
    t = fmin(p3, p4); p4 = fmax(p3, p4); p3 = t;
    t = fmin(p6, p7); p7 = fmax(p6, p7); p6 = t;
    t = fmin(p1, p2); p2 = fmax(p1, p2); p1 = t;
    t = fmin(p4, p5); p5 = fmax(p4, p5); p4 = t;
    t = fmin(p7, p8); p8 = fmax(p7, p8); p7 = t;
    t = fmin(p0, p3); p3 = fmax(p0, p3); p0 = t;
    t = fmin(p5, p8); p8 = fmax(p5, p8); p5 = t;
    t = fmin(p4, p7); p7 = fmax(p4, p7); p4 = t;
    t = fmin(p3, p6); p6 = fmax(p3, p6); p3 = t;
    t = fmin(p1, p4); p4 = fmax(p1, p4); p1 = t;
    t = fmin(p2, p5); p5 = fmax(p2, p5); p2 = t;
    t = fmin(p4, p7); p7 = fmax(p4, p7); p4 = t;
    t = fmin(p4, p2); p2 = fmax(p4, p2); p4 = t;
    t = fmin(p6, p4); p4 = fmax(p6, p4); p6 = t;
    p4 = fmin(p4, p2);
    output() = p4;
  )";
  return src;
}

namespace {
frontend::KernelSource MorphologySource(const std::string& name, int size,
                                        BoundaryMode mode, bool is_min) {
  frontend::KernelSource src;
  src.name = name;
  src.accessors = {InputAccessor(size, size, mode, 0.0f)};
  src.body = StrFormat(R"(
    float m = Input();
    for (int yf = -%d; yf <= %d; yf++) {
      for (int xf = -%d; xf <= %d; xf++) {
        m = %s(m, Input(xf, yf));
      }
    }
    output() = m;
  )",
                       size / 2, size / 2, size / 2, size / 2,
                       is_min ? "fmin" : "fmax");
  return src;
}
}  // namespace

frontend::KernelSource ErodeSource(int size, BoundaryMode mode) {
  return MorphologySource("erode", size, mode, /*is_min=*/true);
}

frontend::KernelSource DilateSource(int size, BoundaryMode mode) {
  return MorphologySource("dilate", size, mode, /*is_min=*/false);
}

frontend::KernelSource ScaleOffsetSource() {
  frontend::KernelSource src;
  src.name = "scale_offset";
  src.params = {{"scale", ScalarType::kFloat}, {"offset", ScalarType::kFloat}};
  src.accessors = {InputAccessor(1, 1, BoundaryMode::kUndefined, 0.0f)};
  src.body = "output() = scale * Input() + offset;";
  return src;
}

frontend::KernelSource ToneCurveSource(int stages) {
  // Cascaded-sigmoid display windowing: each stage adds a rational soft
  // response centred on a different intensity band, approximating the
  // multi-window tone curves used for medical display mapping without any
  // transcendental calls. The stage count is baked in at code-generation
  // time (like BilateralFixedSource's window), so the loop unrolls into a
  // long straight-line arithmetic chain — the dispatch-bound shape that
  // stresses per-instruction engine overhead rather than the memory model.
  frontend::KernelSource src;
  src.name = "tone_curve";
  src.params = {{"center", ScalarType::kFloat}, {"weight", ScalarType::kFloat}};
  src.accessors = {InputAccessor(1, 1, BoundaryMode::kUndefined, 0.0f)};
  src.body = StrFormat(R"(
    float v = Input();
    float acc = 0.0f;
    for (int s = 1; s <= %d; s++) {
      float c = v * s - center;
      float w = c / (1.0f + c * c);
      acc += w * weight;
      v = 0.5f * v + w;
    }
    output() = acc;
  )",
                       stages);
  return src;
}

frontend::KernelSource ThresholdSource() {
  frontend::KernelSource src;
  src.name = "threshold";
  src.params = {{"threshold", ScalarType::kFloat}};
  src.accessors = {InputAccessor(1, 1, BoundaryMode::kUndefined, 0.0f)};
  src.body = "output() = Input() > threshold ? 1.0f : 0.0f;";
  return src;
}

frontend::KernelSource PyramidDetailSource() {
  // Laplacian band: fine minus the smoothed zero-upsampled coarse level.
  // PyramidUp scales the expand convolution by 4 (kernel taps sum to 1 over
  // a grid holding 1/4 of the samples); folding the factor in here keeps
  // the whole detail computation point-wise and fusable with the expand
  // convolution. 4.0f * s is bit-identical to the eager path's s * 4.0f.
  frontend::KernelSource src;
  src.name = "pyramid_detail";
  AccessorInfo up = InputAccessor(1, 1, BoundaryMode::kUndefined, 0.0f);
  up.name = "U";
  AccessorInfo fine = InputAccessor(1, 1, BoundaryMode::kUndefined, 0.0f);
  fine.name = "Fine";
  src.accessors = {up, fine};
  src.body = "output() = Fine() - 4.0f * U();";
  return src;
}

frontend::KernelSource PyramidCollectSource() {
  frontend::KernelSource src;
  src.name = "pyramid_collect";
  src.params = {{"gain", ScalarType::kFloat}};
  AccessorInfo up = InputAccessor(1, 1, BoundaryMode::kUndefined, 0.0f);
  up.name = "U";
  AccessorInfo band = InputAccessor(1, 1, BoundaryMode::kUndefined, 0.0f);
  band.name = "B";
  src.accessors = {up, band};
  src.body = "output() = 4.0f * U() + gain * B();";
  return src;
}

}  // namespace hipacc::ops
