// Source-to-source compiler driver: kernel source + metadata in, compiled
// artifact out. The artifact bundles the lowered IR (what the simulated
// device executes), the emitted CUDA/OpenCL source text (what the paper's
// compiler writes to disk), the resource estimate (the nvcc stand-in), and
// the launch configuration chosen by Algorithm 2 — or forced by the caller,
// as the evaluation tables do with 128x1.
#pragma once

#include <optional>

#include "codegen/emit.hpp"
#include "codegen/options.hpp"
#include "frontend/parser.hpp"
#include "hwmodel/device_db.hpp"
#include "hwmodel/heuristic.hpp"

namespace hipacc::sim {
class TraceSink;
}  // namespace hipacc::sim

namespace hipacc::compiler {

struct CompileOptions {
  codegen::CodegenOptions codegen;
  hw::DeviceSpec device = hw::TeslaC2050();
  /// Image extent the kernel will run on; used by the configuration
  /// heuristic and baked into the emitted source's region constants.
  int image_width = 0;
  int image_height = 0;
  /// Skip Algorithm 2 and use this configuration (evaluation tables).
  std::optional<hw::KernelConfig> forced_config;
  /// Optional observability sink: per-phase compile durations (parse,
  /// lower, estimate, select_config, emit) are recorded as spans.
  sim::TraceSink* trace = nullptr;
};

struct CompiledKernel {
  ast::KernelDecl decl;
  ast::DeviceKernel device_ir;
  std::string source;  ///< emitted CUDA or OpenCL kernel text
  hw::KernelResources resources;
  hw::HeuristicChoice config;  ///< selected (or forced) configuration
};

/// Runs the full pipeline: parse -> lower -> estimate -> select config ->
/// emit. Errors propagate from any stage (parse errors, unsupported
/// backend/mode combinations, resource exhaustion).
Result<CompiledKernel> Compile(const frontend::KernelSource& source,
                               const CompileOptions& options);

/// Re-selects the launch configuration of an already-compiled kernel for a
/// (possibly different) device and image size, re-emitting the source.
Result<CompiledKernel> Retarget(const CompiledKernel& kernel,
                                const CompileOptions& options);

}  // namespace hipacc::compiler
