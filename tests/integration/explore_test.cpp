// Configuration exploration (Section V-D) and retargeting: the exploration
// must cover all valid configurations, agree with the heuristic's pick,
// produce bit-identical results for any worker count, serialise to the
// BENCH_*.json schema, and Retarget must re-select per device.
#include <gtest/gtest.h>

#include <cstdio>

#include "compiler/explore.hpp"
#include "compiler/fusion.hpp"
#include "ops/kernel_sources.hpp"
#include "ops/masks.hpp"
#include "sim/trace.hpp"

namespace hipacc {
namespace {

compiler::CompiledKernel CompileBilateral(const hw::DeviceSpec& device,
                                          int n) {
  frontend::KernelSource source =
      ops::BilateralMaskSource(1, ast::BoundaryMode::kClamp);
  compiler::CompileOptions options;
  options.device = device;
  options.image_width = n;
  options.image_height = n;
  auto compiled = compiler::Compile(source, options);
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  return std::move(compiled).take();
}

TEST(ExploreTest, CoversConfigurationSpace) {
  const int n = 512;
  const hw::DeviceSpec device = hw::TeslaC2050();
  const compiler::CompiledKernel kernel = CompileBilateral(device, n);
  dsl::Image<float> in(n, n), out(n, n);
  runtime::BindingSet bindings;
  bindings.Input("Input", in).Output(out).Scalar("sigma_d", 1).Scalar(
      "sigma_r", 4);
  auto points = compiler::ExploreConfigurations(kernel, device, bindings);
  ASSERT_TRUE(points.ok()) << points.status().ToString();
  EXPECT_GT(points.value().size(), 50u);
  // Sorted by thread count, then block_x; all times positive; multiple
  // tilings per thread count (Figure 4's "multiple points").
  int tilings_of_256 = 0;
  for (size_t i = 0; i < points.value().size(); ++i) {
    const auto& p = points.value()[i];
    EXPECT_GT(p.ms, 0.0);
    EXPECT_GT(p.occupancy, 0.0);
    if (p.config.threads() == 256) ++tilings_of_256;
    if (i > 0) {
      const auto& prev = points.value()[i - 1];
      EXPECT_LE(prev.config.threads(), p.config.threads());
    }
  }
  EXPECT_GE(tilings_of_256, 3);
}

TEST(ExploreTest, HeuristicPickNearOptimum) {
  const int n = 512;
  const hw::DeviceSpec device = hw::TeslaC2050();
  const compiler::CompiledKernel kernel = CompileBilateral(device, n);
  dsl::Image<float> in(n, n), out(n, n);
  runtime::BindingSet bindings;
  bindings.Input("Input", in).Output(out).Scalar("sigma_d", 1).Scalar(
      "sigma_r", 4);
  auto points = compiler::ExploreConfigurations(kernel, device, bindings);
  ASSERT_TRUE(points.ok());
  double best = 1e30, picked = -1.0;
  for (const auto& p : points.value()) {
    best = std::min(best, p.ms);
    if (p.config == kernel.config.config) picked = p.ms;
  }
  ASSERT_GT(picked, 0.0) << "heuristic pick missing from the exploration";
  // "the configurations selected by our heuristic are typically within 10%
  // of the best configuration" (Section VI-B).
  EXPECT_LE(picked / best, 1.10);
}

TEST(ExploreTest, ResultsAreIdenticalForAnyWorkerCount) {
  const int n = 512;
  const hw::DeviceSpec device = hw::TeslaC2050();
  const compiler::CompiledKernel kernel = CompileBilateral(device, n);
  dsl::Image<float> in(n, n), out(n, n);
  runtime::BindingSet bindings;
  bindings.Input("Input", in).Output(out).Scalar("sigma_d", 1).Scalar(
      "sigma_r", 4);

  compiler::ExploreOptions serial;
  serial.jobs = 1;
  auto reference = compiler::ExploreConfigurations(kernel, device, bindings,
                                                   serial);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ASSERT_FALSE(reference.value().empty());

  // jobs=4 forces round-robin dealing across lanes; jobs=0 resolves to the
  // machine's core count (1 on a single-core runner, still a distinct path).
  for (const int jobs : {4, 0}) {
    compiler::ExploreOptions options;
    options.jobs = jobs;
    auto points = compiler::ExploreConfigurations(kernel, device, bindings,
                                                  options);
    ASSERT_TRUE(points.ok()) << points.status().ToString();
    ASSERT_EQ(points.value().size(), reference.value().size())
        << "jobs=" << jobs;
    for (size_t i = 0; i < points.value().size(); ++i) {
      const compiler::ExplorePoint& got = points.value()[i];
      const compiler::ExplorePoint& want = reference.value()[i];
      EXPECT_EQ(got.config, want.config) << "jobs=" << jobs << " i=" << i;
      // Bit-equal, not approximately equal: the parallel path must replay
      // the exact serial computation.
      EXPECT_EQ(got.ms, want.ms) << "jobs=" << jobs << " i=" << i;
      EXPECT_EQ(got.occupancy, want.occupancy) << "jobs=" << jobs << " i=" << i;
      EXPECT_EQ(got.border_threads, want.border_threads)
          << "jobs=" << jobs << " i=" << i;
      EXPECT_EQ(got.timing.total_ms, want.timing.total_ms)
          << "jobs=" << jobs << " i=" << i;
    }
  }
}

TEST(ExploreTest, MoreSamplesPerRegionStillCoversAllPoints) {
  const int n = 256;
  const hw::DeviceSpec device = hw::TeslaC2050();
  const compiler::CompiledKernel kernel = CompileBilateral(device, n);
  dsl::Image<float> in(n, n), out(n, n);
  runtime::BindingSet bindings;
  bindings.Input("Input", in).Output(out).Scalar("sigma_d", 1).Scalar(
      "sigma_r", 4);
  compiler::ExploreOptions one, three;
  one.samples_per_region = 1;
  three.samples_per_region = 3;
  auto a = compiler::ExploreConfigurations(kernel, device, bindings, one);
  auto b = compiler::ExploreConfigurations(kernel, device, bindings, three);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a.value().size(), b.value().size());
  for (size_t i = 0; i < a.value().size(); ++i) {
    EXPECT_EQ(a.value()[i].config, b.value()[i].config);
    // Sampling depth shifts the extrapolated time somewhat (boundary
    // regions weigh heavily at 256x256) but must stay the same order of
    // magnitude: every block in a region runs the same instruction stream.
    EXPECT_NEAR(a.value()[i].ms, b.value()[i].ms, 0.30 * b.value()[i].ms);
  }
  compiler::ExploreOptions invalid;
  invalid.samples_per_region = 0;
  EXPECT_FALSE(
      compiler::ExploreConfigurations(kernel, device, bindings, invalid).ok());
}

TEST(ExploreTest, TraceSinkSeesEveryMeasuredCandidate) {
  const int n = 256;
  const hw::DeviceSpec device = hw::TeslaC2050();
  const compiler::CompiledKernel kernel = CompileBilateral(device, n);
  dsl::Image<float> in(n, n), out(n, n);
  runtime::BindingSet bindings;
  bindings.Input("Input", in).Output(out).Scalar("sigma_d", 1).Scalar(
      "sigma_r", 4);
  sim::TraceSink trace;
  compiler::ExploreOptions options;
  options.jobs = 2;
  options.trace = &trace;
  auto points = compiler::ExploreConfigurations(kernel, device, bindings,
                                                options);
  ASSERT_TRUE(points.ok());
  size_t launches = 0;
  bool saw_summary = false;
  const support::Json doc = trace.ToJson();
  for (const auto& event : doc.Find("events")->elements()) {
    const std::string& name = event.Find("name")->string_value();
    if (name.rfind("launch ", 0) == 0) ++launches;
    if (name.rfind("explore ", 0) == 0) {
      saw_summary = true;
      EXPECT_EQ(event.Find("args")->Find("jobs")->int_value(), 2);
      EXPECT_EQ(
          static_cast<size_t>(
              event.Find("args")->Find("measured")->int_value()),
          points.value().size());
    }
  }
  EXPECT_EQ(launches, points.value().size());
  EXPECT_TRUE(saw_summary);
}

TEST(ExploreTest, ReportJsonMatchesBenchSchema) {
  // The schema contract for BENCH_fig4.json: whatever the bench writes, a
  // consumer must find config/ms/occupancy per point plus the header fields.
  const int n = 256;
  const hw::DeviceSpec device = hw::TeslaC2050();
  const compiler::CompiledKernel kernel = CompileBilateral(device, n);
  dsl::Image<float> in(n, n), out(n, n);
  runtime::BindingSet bindings;
  bindings.Input("Input", in).Output(out).Scalar("sigma_d", 1).Scalar(
      "sigma_r", 4);
  auto points = compiler::ExploreConfigurations(kernel, device, bindings);
  ASSERT_TRUE(points.ok());

  support::Json doc = compiler::ExploreReportJson(kernel, device, n, n,
                                                  points.value());
  const std::string path = ::testing::TempDir() + "/BENCH_fig4_test.json";
  ASSERT_TRUE(support::WriteFile(path, doc.Dump(2) + "\n").ok());
  auto text = support::ReadFile(path);
  ASSERT_TRUE(text.ok());
  auto parsed = support::Json::Parse(text.value());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  std::remove(path.c_str());

  const support::Json& report = parsed.value();
  EXPECT_EQ(report.Find("kernel")->string_value(), "bilateral_mask");
  EXPECT_EQ(report.Find("device")->string_value(), device.name);
  EXPECT_EQ(report.Find("backend")->string_value(), "CUDA");
  EXPECT_EQ(report.Find("image")->Find("width")->int_value(), n);
  EXPECT_EQ(report.Find("image")->Find("height")->int_value(), n);
  const support::Json* heuristic = report.Find("heuristic");
  ASSERT_NE(heuristic, nullptr);
  EXPECT_EQ(heuristic->Find("config")->Find("block_x")->int_value(),
            kernel.config.config.block_x);
  const support::Json* out_points = report.Find("points");
  ASSERT_NE(out_points, nullptr);
  ASSERT_EQ(out_points->size(), points.value().size());
  for (const support::Json& point : out_points->elements()) {
    const support::Json* config = point.Find("config");
    ASSERT_NE(config, nullptr);
    EXPECT_EQ(config->Find("threads")->int_value(),
              config->Find("block_x")->int_value() *
                  config->Find("block_y")->int_value());
    ASSERT_NE(point.Find("ms"), nullptr);
    EXPECT_GT(point.Find("ms")->number_value(), 0.0);
    ASSERT_NE(point.Find("occupancy"), nullptr);
    EXPECT_GT(point.Find("occupancy")->number_value(), 0.0);
    ASSERT_NE(point.Find("border_threads"), nullptr);
    ASSERT_NE(point.Find("timing"), nullptr);
  }
}

TEST(RetargetTest, ReSelectsPerDevice) {
  const int n = 1024;
  const compiler::CompiledKernel on_tesla =
      CompileBilateral(hw::TeslaC2050(), n);

  compiler::CompileOptions amd_options;
  amd_options.device = hw::RadeonHd5870();
  amd_options.image_width = n;
  amd_options.image_height = n;
  auto on_amd = compiler::Retarget(on_tesla, amd_options);
  ASSERT_TRUE(on_amd.ok()) << on_amd.status().ToString();
  // AMD wavefronts are 64 wide; the border tiling uses the SIMD width in x.
  EXPECT_EQ(on_amd.value().config.config.block_x, 64);
  EXPECT_LE(on_amd.value().config.config.threads(), 256);
}

TEST(RetargetTest, BackendSwitchChangesEmittedSource) {
  const compiler::CompiledKernel cuda = CompileBilateral(hw::TeslaC2050(), 256);
  EXPECT_NE(cuda.source.find("__global__"), std::string::npos);

  compiler::CompileOptions opencl_options;
  opencl_options.codegen.backend = ast::Backend::kOpenCL;
  opencl_options.device = hw::TeslaC2050();
  opencl_options.image_width = 256;
  opencl_options.image_height = 256;
  auto opencl = compiler::Retarget(cuda, opencl_options);
  ASSERT_TRUE(opencl.ok());
  EXPECT_NE(opencl.value().source.find("__kernel"), std::string::npos);
  EXPECT_EQ(opencl.value().source.find("__global__"), std::string::npos);
}

TEST(ExploreTest, FusionCandidateSweepScoresFusedVsUnfused) {
  const int n = 64;
  const hw::DeviceSpec device = hw::TeslaC2050();
  const frontend::KernelSource a = ops::ConvolutionSource(
      "sobel_x", 3, 3, ops::SobelMaskX(), ast::BoundaryMode::kClamp);
  const frontend::KernelSource b = ops::ConvolutionSource(
      "sobel_y", 3, 3, ops::SobelMaskY(), ast::BoundaryMode::kClamp);
  auto fused_src = compiler::FuseHorizontal(a, "Input", b, "Input", "gy");
  ASSERT_TRUE(fused_src.ok()) << fused_src.status().ToString();

  const auto compile = [&](const frontend::KernelSource& source) {
    compiler::CompileOptions options;
    options.device = device;
    options.image_width = options.image_height = n;
    options.codegen.border = codegen::BorderPolicy::kUniform;
    auto compiled = compiler::Compile(source, options);
    EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
    return std::move(compiled).take();
  };
  const compiler::CompiledKernel ka = compile(a);
  const compiler::CompiledKernel kb = compile(b);
  const compiler::CompiledKernel kf = compile(fused_src.value());

  dsl::Image<float> in(n, n), gx(n, n), gy(n, n);
  runtime::BindingSet ba, bb, bf;
  ba.Input("Input", in).Output(gx);
  bb.Input("Input", in).Output(gy);
  bf.Input("Input", in).Output(gx).Output("gy", gy);

  auto sweep = compiler::ExploreFusionCandidate(
      {&kf, &bf}, {{&ka, &ba}, {&kb, &bb}}, device);
  ASSERT_TRUE(sweep.ok()) << sweep.status().ToString();
  EXPECT_FALSE(sweep.value().fused.empty());
  ASSERT_EQ(sweep.value().stages.size(), 2u);
  EXPECT_GT(sweep.value().best_fused_ms, 0.0);
  EXPECT_GT(sweep.value().best_unfused_ms, 0.0);
  // One launch instead of two: at this extent the fused kernel's best
  // configuration must beat the stages at theirs.
  EXPECT_GT(sweep.value().speedup, 1.0);

  const support::Json doc = compiler::FusionSweepJson(sweep.value());
  ASSERT_NE(doc.Find("speedup"), nullptr);
  EXPECT_EQ(doc.Find("speedup")->number_value(), sweep.value().speedup);

  // Degenerate inputs are rejected.
  EXPECT_FALSE(compiler::ExploreFusionCandidate({&kf, &bf}, {}, device).ok());
  EXPECT_FALSE(
      compiler::ExploreFusionCandidate({nullptr, &bf}, {{&ka, &ba}}, device)
          .ok());
}

TEST(CompileTest, ForcedInvalidConfigIsLaunchError) {
  frontend::KernelSource source =
      ops::BilateralMaskSource(1, ast::BoundaryMode::kClamp);
  compiler::CompileOptions options;
  options.device = hw::RadeonHd5870();  // 256-thread block limit
  options.image_width = options.image_height = 512;
  options.forced_config = hw::KernelConfig{512, 1};
  const auto compiled = compiler::Compile(source, options);
  ASSERT_FALSE(compiled.ok());
  EXPECT_EQ(compiled.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace hipacc
