#include "sim/interpreter.hpp"

#include <array>
#include <cmath>
#include <vector>

#include "ast/builtins.hpp"
#include "dsl/boundary.hpp"
#include "sim/block_state.hpp"
#include "support/string_utils.hpp"

namespace hipacc::sim {
namespace {

using namespace hipacc::ast;

/// Flat variable environment. Kernels declare a handful of locals, so an
/// insertion-ordered vector with linear name lookup beats a node-based map:
/// no allocation per declaration and cache-friendly scans. Slot indices are
/// stable across later declarations (unlike raw pointers into the vector).
class Env {
 public:
  Env() { slots_.reserve(16); }

  WarpVal* Find(const std::string& name) {
    for (Slot& slot : slots_)
      if (*slot.name == name) return &slot.val;
    return nullptr;
  }

  /// Get-or-create. `name` must outlive the environment (all callers pass
  /// strings owned by the kernel IR).
  WarpVal& Var(const std::string& name) { return slots_[SlotOf(name)].val; }

  /// Index of `name`, creating the variable if needed. The single scan
  /// shared by every get-or-create path.
  std::size_t SlotOf(const std::string& name) {
    for (std::size_t i = 0; i < slots_.size(); ++i)
      if (*slots_[i].name == name) return i;
    slots_.push_back(Slot{&name, WarpVal{}});
    return slots_.size() - 1;
  }

  WarpVal& At(std::size_t slot) { return slots_[slot].val; }

 private:
  struct Slot {
    const std::string* name;
    WarpVal val;
  };
  std::vector<Slot> slots_;
};

class BlockRunner {
 public:
  BlockRunner(const Launch& launch, const hw::DeviceSpec& device,
              int block_x_idx, int block_y_idx, Metrics* metrics)
      : st_(launch, device, block_x_idx, block_y_idx, metrics) {}

  Status Run() {
    Result<BlockState::Plan> begun = st_.Begin();
    if (!begun.ok()) return begun.status();
    const BlockState::Plan plan = begun.value();
    const RegionVariant* variant = st_.launch.kernel->FindVariant(plan.region);

    for (int w = 0; w < plan.warps; ++w) {
      st_.BuildWarpContext(w, plan.threads);
      if (!AnyActive(st_.active)) continue;
      Env env;
      SeedParams(&env);
      HIPACC_RETURN_IF_ERROR(Exec(variant->body, st_.active, &env));
    }
    return Status::Ok();
  }

 private:
  void SeedParams(Env* env) {
    for (const auto& p : st_.launch.kernel->params) {
      const auto it = st_.launch.scalar_args.find(p.name);
      const double v = it != st_.launch.scalar_args.end() ? it->second : 0.0;
      WarpVal& val = env->Var(p.name);
      val.type = p.type;
      val.lanes.fill(p.type == ScalarType::kFloat
                         ? static_cast<double>(static_cast<float>(v))
                         : v);
    }
  }

  // ---- statements -----------------------------------------------------------
  Status Exec(const StmtPtr& stmt, const LaneMask& mask, Env* env) {
    if (!stmt) return Status::Ok();
    const Stmt& s = *stmt;
    switch (s.kind) {
      case StmtKind::kBlock:
        for (const auto& child : s.body)
          HIPACC_RETURN_IF_ERROR(Exec(child, mask, env));
        return Status::Ok();
      case StmtKind::kDecl: {
        WarpVal val;
        if (s.value) {
          HIPACC_RETURN_IF_ERROR(Eval(s.value, mask, env, &val));
          val = Convert(val, s.decl_type);
        } else {
          val.type = s.decl_type;
          val.lanes.fill(0.0);
        }
        env->Var(s.name) = std::move(val);
        return Status::Ok();
      }
      case StmtKind::kAssign: {
        WarpVal rhs;
        HIPACC_RETURN_IF_ERROR(Eval(s.value, mask, env, &rhs));
        WarpVal* found = env->Find(s.name);
        if (!found)
          return Status::Internal("assignment to unknown variable " + s.name);
        WarpVal& var = *found;
        rhs = Convert(rhs, var.type);
        st_.metrics->alu_ops += s.assign_op == AssignOp::kAssign ? 0 : 1;
        for (int lane = 0; lane < st_.warp_size; ++lane) {
          const size_t l = static_cast<size_t>(lane);
          if (!mask[l]) continue;
          var.lanes[l] = Combine(var.type, s.assign_op, var.lanes[l], rhs.lanes[l]);
        }
        return Status::Ok();
      }
      case StmtKind::kIf: {
        WarpVal cond;
        HIPACC_RETURN_IF_ERROR(Eval(s.cond, mask, env, &cond));
        st_.metrics->alu_ops += 1;
        LaneMask then_mask(mask), else_mask(mask);
        for (int lane = 0; lane < st_.warp_size; ++lane) {
          const size_t l = static_cast<size_t>(lane);
          const bool taken = mask[l] && cond.lanes[l] != 0.0;
          then_mask[l] = taken;
          else_mask[l] = mask[l] && !taken;
        }
        if (AnyActive(then_mask))
          HIPACC_RETURN_IF_ERROR(Exec(s.body[0], then_mask, env));
        if (s.body.size() > 1 && AnyActive(else_mask))
          HIPACC_RETURN_IF_ERROR(Exec(s.body[1], else_mask, env));
        return Status::Ok();
      }
      case StmtKind::kFor: {
        WarpVal lo, hi;
        HIPACC_RETURN_IF_ERROR(Eval(s.lo, mask, env, &lo));
        HIPACC_RETURN_IF_ERROR(Eval(s.hi, mask, env, &hi));
        // Slot index instead of a reference: the body may declare variables,
        // growing the environment and invalidating references into it.
        const std::size_t slot = env->SlotOf(s.name);
        WarpVal& var = env->At(slot);
        var.type = ScalarType::kInt;
        var.lanes = lo.lanes;
        while (true) {
          LaneMask iter_mask(mask);
          bool any = false;
          const WarpVal& cur = env->At(slot);
          for (int lane = 0; lane < st_.warp_size; ++lane) {
            const size_t l = static_cast<size_t>(lane);
            iter_mask[l] = mask[l] && cur.lanes[l] <= hi.lanes[l];
            any = any || iter_mask[l];
          }
          st_.metrics->alu_ops += 2;  // compare + increment
          if (!any) break;
          HIPACC_RETURN_IF_ERROR(Exec(s.body[0], iter_mask, env));
          WarpVal& loop_var = env->At(slot);
          for (int lane = 0; lane < st_.warp_size; ++lane) {
            const size_t l = static_cast<size_t>(lane);
            if (iter_mask[l]) loop_var.lanes[l] += s.step;
          }
        }
        return Status::Ok();
      }
      case StmtKind::kBarrier:
        st_.metrics->alu_ops += 1;
        return Status::Ok();
      case StmtKind::kMemWrite:
        return ExecMemWrite(s, mask, env);
      case StmtKind::kOutputAssign:
        return Status::Internal("OutputAssign reached the interpreter");
    }
    return Status::Ok();
  }

  Status ExecMemWrite(const Stmt& s, const LaneMask& mask, Env* env) {
    const BufferBinding* buf = st_.launch.FindBuffer(s.name);
    if (!buf || !buf->writable)
      return Status::Invalid("write to unbound or read-only buffer " + s.name);
    WarpVal value, x, y;
    HIPACC_RETURN_IF_ERROR(Eval(s.value, mask, env, &value));
    HIPACC_RETURN_IF_ERROR(Eval(s.x, mask, env, &x));
    HIPACC_RETURN_IF_ERROR(Eval(s.y, mask, env, &y));
    value = Convert(value, ScalarType::kFloat);
    st_.metrics->alu_ops += 2;  // address arithmetic
    st_.addr_scratch.clear();
    for (int lane = 0; lane < st_.warp_size; ++lane) {
      const size_t l = static_cast<size_t>(lane);
      if (!mask[l]) continue;
      const int px = static_cast<int>(x.lanes[l]);
      const int py = static_cast<int>(y.lanes[l]);
      if (px < 0 || px >= buf->width || py < 0 || py >= buf->height) {
        ++st_.metrics->oob_violations;
        continue;
      }
      const std::uint64_t addr = static_cast<std::uint64_t>(py) * buf->stride + px;
      buf->data[addr] = static_cast<float>(value.lanes[l]);
      st_.addr_scratch.push_back(addr);
    }
    st_.memory.GlobalAccess(st_.addr_scratch, /*is_write=*/true, st_.metrics);
    return Status::Ok();
  }

  // ---- expressions ----------------------------------------------------------
  Status Eval(const ExprPtr& expr, const LaneMask& mask, Env* env,
              WarpVal* out) {
    const Expr& e = *expr;
    switch (e.kind) {
      case ExprKind::kIntLit:
        return Broadcast(ScalarType::kInt, static_cast<double>(e.int_value), out);
      case ExprKind::kFloatLit:
        return Broadcast(ScalarType::kFloat,
                         static_cast<double>(static_cast<float>(e.float_value)),
                         out);
      case ExprKind::kBoolLit:
        return Broadcast(ScalarType::kBool, e.bool_value ? 1.0 : 0.0, out);
      case ExprKind::kVarRef: {
        const WarpVal* v = env->Find(e.name);
        if (!v) return Status::Internal("unknown variable " + e.name);
        *out = *v;
        return Status::Ok();
      }
      case ExprKind::kUnary: {
        WarpVal v;
        HIPACC_RETURN_IF_ERROR(Eval(e.args[0], mask, env, &v));
        st_.metrics->alu_ops += 1;
        out->type = e.type;
        for (size_t l = 0; l < static_cast<size_t>(st_.warp_size); ++l) {
          if (e.unary_op == UnaryOp::kNot)
            out->lanes[l] = v.lanes[l] == 0.0 ? 1.0 : 0.0;
          else
            out->lanes[l] = e.type == ScalarType::kFloat
                                ? static_cast<double>(-static_cast<float>(v.lanes[l]))
                                : -v.lanes[l];
        }
        return Status::Ok();
      }
      case ExprKind::kBinary:
        return EvalBinary(e, mask, env, out);
      case ExprKind::kConditional: {
        WarpVal cond, tval, fval;
        HIPACC_RETURN_IF_ERROR(Eval(e.args[0], mask, env, &cond));
        HIPACC_RETURN_IF_ERROR(Eval(e.args[1], mask, env, &tval));
        HIPACC_RETURN_IF_ERROR(Eval(e.args[2], mask, env, &fval));
        st_.metrics->alu_ops += 1;  // select
        out->type = e.type;
        for (size_t l = 0; l < static_cast<size_t>(st_.warp_size); ++l)
          out->lanes[l] = cond.lanes[l] != 0.0 ? tval.lanes[l] : fval.lanes[l];
        return Status::Ok();
      }
      case ExprKind::kCall:
        return EvalCall(e, mask, env, out);
      case ExprKind::kCast: {
        WarpVal v;
        HIPACC_RETURN_IF_ERROR(Eval(e.args[0], mask, env, &v));
        st_.metrics->alu_ops += 1;
        *out = Convert(v, e.type);
        return Status::Ok();
      }
      case ExprKind::kThreadIndex:
        return EvalThreadIndex(e.thread_index, out);
      case ExprKind::kMemRead:
        return EvalMemRead(e, mask, env, out);
      case ExprKind::kAccessorRead:
      case ExprKind::kMaskRead:
      case ExprKind::kIterIndex:
        return Status::Internal("DSL-level node reached the interpreter");
    }
    return Status::Internal("unhandled expression kind");
  }

  Status Broadcast(ScalarType type, double value, WarpVal* out) {
    out->type = type;
    out->lanes.fill(value);
    return Status::Ok();
  }

  Status EvalBinary(const Expr& e, const LaneMask& mask, Env* env,
                    WarpVal* out) {
    WarpVal a, b;
    HIPACC_RETURN_IF_ERROR(Eval(e.args[0], mask, env, &a));
    HIPACC_RETURN_IF_ERROR(Eval(e.args[1], mask, env, &b));
    const ScalarType operand_type = Promote(a.type, b.type);
    const bool float_math = operand_type == ScalarType::kFloat;
    // Division and modulo expand into multi-instruction sequences.
    if (e.binary_op == BinaryOp::kDiv)
      st_.metrics->alu_ops += float_math ? 5 : 16;
    else if (e.binary_op == BinaryOp::kMod)
      st_.metrics->alu_ops += 16;
    else
      st_.metrics->alu_ops += 1;
    out->type = e.type;
    for (size_t l = 0; l < static_cast<size_t>(st_.warp_size); ++l) {
      const double x = a.lanes[l];
      const double y = b.lanes[l];
      double r = 0.0;
      switch (e.binary_op) {
        case BinaryOp::kAdd: r = float_math ? static_cast<double>(static_cast<float>(x) + static_cast<float>(y)) : x + y; break;
        case BinaryOp::kSub: r = float_math ? static_cast<double>(static_cast<float>(x) - static_cast<float>(y)) : x - y; break;
        case BinaryOp::kMul: r = float_math ? static_cast<double>(static_cast<float>(x) * static_cast<float>(y)) : x * y; break;
        case BinaryOp::kDiv:
          if (float_math) {
            r = static_cast<double>(static_cast<float>(x) / static_cast<float>(y));
          } else {
            const long long yi = static_cast<long long>(y);
            r = yi == 0 ? 0.0
                        : static_cast<double>(static_cast<long long>(x) / yi);
          }
          break;
        case BinaryOp::kMod: {
          const long long yi = static_cast<long long>(y);
          r = yi == 0 ? 0.0
                      : static_cast<double>(static_cast<long long>(x) % yi);
          break;
        }
        case BinaryOp::kLt: r = x < y; break;
        case BinaryOp::kLe: r = x <= y; break;
        case BinaryOp::kGt: r = x > y; break;
        case BinaryOp::kGe: r = x >= y; break;
        case BinaryOp::kEq: r = x == y; break;
        case BinaryOp::kNe: r = x != y; break;
        case BinaryOp::kAnd: r = (x != 0.0) && (y != 0.0); break;
        case BinaryOp::kOr: r = (x != 0.0) || (y != 0.0); break;
      }
      out->lanes[l] = r;
    }
    return Status::Ok();
  }

  Status EvalCall(const Expr& e, const LaneMask& mask, Env* env, WarpVal* out) {
    // Builtins take at most two arguments (atan2/pow/fmod/min/max family).
    std::array<WarpVal, 3> args;
    if (e.args.size() > args.size())
      return Status::Internal("builtin " + e.name + " has too many arguments");
    for (size_t i = 0; i < e.args.size(); ++i)
      HIPACC_RETURN_IF_ERROR(Eval(e.args[i], mask, env, &args[i]));

    const auto builtin = FindBuiltin(e.name);
    if (!builtin) return Status::Internal("unknown builtin " + e.name);
    switch (builtin->cost) {
      case OpCost::kAlu: st_.metrics->alu_ops += 1; break;
      case OpCost::kSfu: st_.metrics->sfu_calls += 1; break;
      case OpCost::kMulti:
        st_.metrics->sfu_calls += 2;
        st_.metrics->alu_ops += 4;
        break;
    }

    out->type = builtin->result;
    for (size_t l = 0; l < static_cast<size_t>(st_.warp_size); ++l) {
      auto arg = [&](size_t i) { return static_cast<float>(args[i].lanes[l]); };
      float r = 0.0f;
      if (e.name == "exp") r = std::exp(arg(0));
      else if (e.name == "exp2") r = std::exp2(arg(0));
      else if (e.name == "log") r = std::log(arg(0));
      else if (e.name == "log2") r = std::log2(arg(0));
      else if (e.name == "sqrt") r = std::sqrt(arg(0));
      else if (e.name == "rsqrt") r = 1.0f / std::sqrt(arg(0));
      else if (e.name == "sin") r = std::sin(arg(0));
      else if (e.name == "cos") r = std::cos(arg(0));
      else if (e.name == "tan") r = std::tan(arg(0));
      else if (e.name == "atan") r = std::atan(arg(0));
      else if (e.name == "atan2") r = std::atan2(arg(0), arg(1));
      else if (e.name == "pow") r = std::pow(arg(0), arg(1));
      else if (e.name == "fmod") r = std::fmod(arg(0), arg(1));
      else if (e.name == "fabs") r = std::fabs(arg(0));
      else if (e.name == "fmin") r = std::fmin(arg(0), arg(1));
      else if (e.name == "fmax") r = std::fmax(arg(0), arg(1));
      else if (e.name == "floor") r = std::floor(arg(0));
      else if (e.name == "ceil") r = std::ceil(arg(0));
      else if (e.name == "round") r = std::round(arg(0));
      else if (e.name == "min") {
        out->lanes[l] = std::min(args[0].lanes[l], args[1].lanes[l]);
        continue;
      } else if (e.name == "max") {
        out->lanes[l] = std::max(args[0].lanes[l], args[1].lanes[l]);
        continue;
      } else if (e.name == "abs") {
        out->lanes[l] = std::fabs(args[0].lanes[l]);
        continue;
      } else {
        return Status::Internal("unimplemented builtin " + e.name);
      }
      out->lanes[l] = static_cast<double>(r);
    }
    return Status::Ok();
  }

  Status EvalThreadIndex(ThreadIndexKind kind, WarpVal* out) {
    out->type = ScalarType::kInt;
    const hw::GridDim grid = hw::ComputeGrid(st_.launch.config,
                                             st_.launch.width,
                                             st_.launch.height,
                                             st_.launch.kernel->ppt);
    for (int lane = 0; lane < st_.warp_size; ++lane) {
      const size_t l = static_cast<size_t>(lane);
      double v = 0.0;
      switch (kind) {
        case ThreadIndexKind::kThreadIdxX: v = st_.tid_x[l]; break;
        case ThreadIndexKind::kThreadIdxY: v = st_.tid_y[l]; break;
        case ThreadIndexKind::kBlockIdxX: v = st_.bix; break;
        case ThreadIndexKind::kBlockIdxY: v = st_.biy; break;
        case ThreadIndexKind::kBlockDimX: v = st_.launch.config.block_x; break;
        case ThreadIndexKind::kBlockDimY: v = st_.launch.config.block_y; break;
        case ThreadIndexKind::kGridDimX: v = grid.blocks_x; break;
        case ThreadIndexKind::kGridDimY: v = grid.blocks_y; break;
        case ThreadIndexKind::kGlobalIdX: v = st_.gid_x[l]; break;
        case ThreadIndexKind::kGlobalIdY: v = st_.gid_y[l]; break;
        case ThreadIndexKind::kImageW: v = st_.launch.width; break;
        case ThreadIndexKind::kImageH: v = st_.launch.height; break;
      }
      out->lanes[l] = v;
    }
    return Status::Ok();
  }

  /// Resolves one coordinate under the read's guard set. Returns -1 when the
  /// constant value must be substituted; sets *violation for unguarded OOB.
  int ResolveCoord(int c, int n, BoundaryMode mode, bool check_lo,
                   bool check_hi, bool hardware_resolved, bool* violation) {
    if (c >= 0 && c < n) return c;
    if (hardware_resolved)  // texture unit applies the address mode silently
      return dsl::ResolveBoundaryIndex(
          c, n, mode == BoundaryMode::kUndefined ? BoundaryMode::kClamp : mode);
    const bool guarded = (c < 0 && check_lo) || (c >= n && check_hi);
    if (!guarded) {
      *violation = true;
      return c < 0 ? 0 : n - 1;  // clamp as a safety net after recording
    }
    return dsl::ResolveBoundaryIndex(c, n, mode);
  }

  Status EvalMemRead(const Expr& e, const LaneMask& mask, Env* env,
                     WarpVal* out) {
    WarpVal x, y;
    HIPACC_RETURN_IF_ERROR(Eval(e.args[0], mask, env, &x));
    HIPACC_RETURN_IF_ERROR(Eval(e.args[1], mask, env, &y));
    out->type = ScalarType::kFloat;
    out->lanes.fill(0.0);

    switch (e.space) {
      case MemSpace::kShared: {
        st_.addr_scratch.clear();
        st_.metrics->alu_ops += 2;  // tile index arithmetic
        for (int lane = 0; lane < st_.warp_size; ++lane) {
          const size_t l = static_cast<size_t>(lane);
          if (!mask[l]) continue;
          const int sx = static_cast<int>(x.lanes[l]);
          const int sy = static_cast<int>(y.lanes[l]);
          if (sx < 0 || sx >= st_.tile_w || sy < 0 || sy >= st_.tile_h) {
            ++st_.metrics->oob_violations;
            continue;
          }
          const std::uint64_t addr = static_cast<std::uint64_t>(sy) * st_.tile_w + sx;
          out->lanes[l] = static_cast<double>(st_.tile[addr]);
          st_.addr_scratch.push_back(addr);
        }
        st_.memory.SharedAccess(st_.addr_scratch, st_.metrics);
        return Status::Ok();
      }
      case MemSpace::kConstant: {
        const auto it = st_.launch.const_masks.find(e.name);
        if (it == st_.launch.const_masks.end())
          return Status::Invalid("unbound constant mask " + e.name);
        const int mask_w = MaskWidth(e.name);
        st_.addr_scratch.clear();
        st_.metrics->alu_ops += 2;
        for (int lane = 0; lane < st_.warp_size; ++lane) {
          const size_t l = static_cast<size_t>(lane);
          if (!mask[l]) continue;
          const int sx = static_cast<int>(x.lanes[l]);
          const int sy = static_cast<int>(y.lanes[l]);
          const std::uint64_t addr = static_cast<std::uint64_t>(sy) * mask_w + sx;
          if (addr >= it->second.size()) {
            ++st_.metrics->oob_violations;
            continue;
          }
          out->lanes[l] = static_cast<double>(it->second[addr]);
          st_.addr_scratch.push_back(addr);
        }
        st_.memory.ConstantAccess(st_.addr_scratch, st_.metrics);
        return Status::Ok();
      }
      case MemSpace::kGlobal:
      case MemSpace::kTexture: {
        const BufferBinding* buf = st_.launch.FindBuffer(e.name);
        if (!buf) return Status::Invalid("unbound buffer " + e.name);
        const BufferParam* param = FindBufferParam(e.name);
        const bool hardware_bh = param && param->texture_2d_array;
        // Guard + address arithmetic cost.
        st_.metrics->alu_ops += 2;
        if (!hardware_bh) {
          const int guard_cost = GuardAluCost(e.boundary);
          st_.metrics->alu_ops +=
              static_cast<std::uint64_t>(e.checks.count()) * guard_cost;
          if (e.boundary == BoundaryMode::kConstant && e.checks.any())
            st_.metrics->alu_ops += 1;  // final select
        }
        st_.addr_scratch.clear();
        for (int lane = 0; lane < st_.warp_size; ++lane) {
          const size_t l = static_cast<size_t>(lane);
          if (!mask[l]) continue;
          const int cx = static_cast<int>(x.lanes[l]);
          const int cy = static_cast<int>(y.lanes[l]);
          // Constant mode with guards: out-of-bounds lanes are predicated
          // off and produce the constant without touching memory.
          if (e.boundary == BoundaryMode::kConstant && !hardware_bh) {
            const bool oob_x = (cx < 0 && e.checks.lo_x) ||
                               (cx >= buf->width && e.checks.hi_x);
            const bool oob_y = (cy < 0 && e.checks.lo_y) ||
                               (cy >= buf->height && e.checks.hi_y);
            if (oob_x || oob_y) {
              out->lanes[l] = static_cast<double>(e.constant_value);
              continue;
            }
          }
          bool violation = false;
          // Texture reads never fault; unguarded OOB through plain global
          // pointers is recorded as a violation (the "crash" of Table II).
          const bool tex = e.space == MemSpace::kTexture;
          const int rx = ResolveCoord(cx, buf->width, e.boundary, e.checks.lo_x,
                                      e.checks.hi_x, hardware_bh || tex,
                                      &violation);
          const int ry = ResolveCoord(cy, buf->height, e.boundary,
                                      e.checks.lo_y, e.checks.hi_y,
                                      hardware_bh || tex, &violation);
          if (violation) ++st_.metrics->oob_violations;
          if (rx < 0 || ry < 0) {
            out->lanes[l] = static_cast<double>(e.constant_value);
            continue;
          }
          const std::uint64_t addr =
              static_cast<std::uint64_t>(ry) * buf->stride + rx;
          out->lanes[l] = static_cast<double>(buf->data[addr]);
          st_.addr_scratch.push_back(addr);
        }
        if (e.space == MemSpace::kTexture)
          st_.memory.TextureAccess(st_.addr_scratch, st_.metrics);
        else
          st_.memory.GlobalAccess(st_.addr_scratch, /*is_write=*/false,
                                  st_.metrics);
        return Status::Ok();
      }
    }
    return Status::Internal("unhandled memory space");
  }

  int MaskWidth(const std::string& name) const {
    for (const auto& m : st_.launch.kernel->const_masks)
      if (m.name == name) return m.size_x;
    for (const auto& m : st_.launch.kernel->global_masks)
      if (m.name == name) return m.size_x;
    return 1;
  }

  const BufferParam* FindBufferParam(const std::string& name) const {
    for (const auto& buf : st_.launch.kernel->buffers)
      if (buf.name == name) return &buf;
    return nullptr;
  }

  static double Combine(ScalarType type, AssignOp op, double lhs, double rhs) {
    const bool f = type == ScalarType::kFloat;
    auto as_float = [](double v) { return static_cast<double>(static_cast<float>(v)); };
    switch (op) {
      case AssignOp::kAssign: return rhs;
      case AssignOp::kAddAssign: return f ? as_float(as_float(lhs) + as_float(rhs)) : lhs + rhs;
      case AssignOp::kSubAssign: return f ? as_float(as_float(lhs) - as_float(rhs)) : lhs - rhs;
      case AssignOp::kMulAssign: return f ? as_float(as_float(lhs) * as_float(rhs)) : lhs * rhs;
      case AssignOp::kDivAssign: return f ? as_float(as_float(lhs) / as_float(rhs)) : (rhs != 0.0 ? static_cast<double>(static_cast<long long>(lhs) / static_cast<long long>(rhs)) : 0.0);
    }
    return rhs;
  }

  static WarpVal Convert(const WarpVal& v, ScalarType type) {
    if (v.type == type) return v;
    WarpVal out;
    out.type = type;
    for (size_t l = 0; l < v.lanes.size(); ++l) {
      switch (type) {
        case ScalarType::kFloat:
          out.lanes[l] = static_cast<double>(static_cast<float>(v.lanes[l]));
          break;
        case ScalarType::kInt:
        case ScalarType::kUInt:
          out.lanes[l] = static_cast<double>(static_cast<long long>(v.lanes[l]));
          break;
        case ScalarType::kBool:
          out.lanes[l] = v.lanes[l] != 0.0 ? 1.0 : 0.0;
          break;
        case ScalarType::kVoid:
          out.lanes[l] = 0.0;
          break;
      }
    }
    return out;
  }

  BlockState st_;
};

}  // namespace

Status RunBlock(const Launch& launch, const hw::DeviceSpec& device,
                int block_x_idx, int block_y_idx, Metrics* metrics) {
  HIPACC_CHECK(launch.kernel != nullptr && metrics != nullptr);
  return BlockRunner(launch, device, block_x_idx, block_y_idx, metrics).Run();
}

}  // namespace hipacc::sim
