file(REMOVE_RECURSE
  "CMakeFiles/sobel_edges.dir/sobel_edges.cpp.o"
  "CMakeFiles/sobel_edges.dir/sobel_edges.cpp.o.d"
  "sobel_edges"
  "sobel_edges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sobel_edges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
