// Streaming frame executor: runs one compiled GraphPlan over a sequence of
// frames with up to N frames in flight. A camera pipeline at 30/60/120 fps
// re-executes the identical graph every frame; planning, fusion, and
// compilation are frame-invariant, so the executor builds the plan once and
// software-pipelines per-frame execution — while frame k's late stages still
// run, frame k+1's sources are already being bound and its early stages
// scheduled on the same worker pool. Every in-flight frame owns a private
// FrameExec (its own buffer map and refcounts over the shared BufferPool),
// so overlapped frames can never alias each other's intermediates; outputs
// are therefore bit-identical to running the frames one by one, and the
// differential test suite (tests/runtime/stream_executor_test.cpp) holds the
// executor to that.
//
// Ordering contract: frames are *admitted* in order, *retire* in order
// (outputs copied, buffers released, profile observations flushed as one
// ProfileStore::RecordBatch per frame), and only the stages in between
// overlap. The retire callback for frame k runs before the one for frame
// k+1, so a caller that reuses output images per in-flight slot reads each
// frame's pixels before they can be overwritten.
//
// Serial mode (--stream-mode=serial) runs the identical machinery with the
// window clamped to one frame — the baseline the overlap speedup is measured
// against (bench/stream_isp.cpp gates overlap >= 1.3x serial).
//
// ModelThroughput() is the simulated-device view of the same pipeline: each
// kernel stage's modelled launch time (sim::Simulator::Measure) plus
// PCIe-modelled H2D/D2H copies (sim::ModelCopyMs) replayed onto per-queue
// sim::StreamTimelines, reporting the modelled sustained fps and per-queue
// utilisation with and without copy/compute overlap.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "runtime/graph_plan.hpp"
#include "sim/timing.hpp"
#include "support/cli.hpp"

namespace hipacc::runtime {

/// How the frame window advances.
enum class StreamMode {
  kSerial,   ///< one frame at a time (the baseline; window forced to 1)
  kOverlap,  ///< up to `in_flight` frames pipelined across the worker pool
};

const char* to_string(StreamMode mode) noexcept;

/// Parses "serial" / "overlap" (the --stream-mode vocabulary).
Result<StreamMode> ParseStreamMode(const std::string& text);

struct StreamOptions {
  StreamMode mode = StreamMode::kOverlap;
  /// Maximum frames admitted but not yet retired (>= 1; serial mode always
  /// behaves as 1). Bounds buffer-pool footprint: the pool's widest cut
  /// grows linearly with the window.
  int in_flight = 2;
  /// Informational target for reports (30/60/120); 0 = no target.
  double fps_target = 0.0;
};

/// The streaming flags every streaming binary shares (--frames, --in-flight,
/// --fps-target, --stream-mode), registered through the unified CliParser so
/// the generated --help stays in sync. Call RegisterStreamFlags, parse, then
/// ToOptions() to validate and convert.
struct StreamCliConfig {
  int frames = 32;
  int in_flight = 2;
  int fps_target = 0;
  std::string mode = "overlap";

  /// Validates (frames >= 1, in_flight >= 1, known mode) and converts.
  Result<StreamOptions> ToOptions() const;
};

void RegisterStreamFlags(support::CliParser* cli, StreamCliConfig* config);

/// What one Run() observed, for reports and gates.
struct StreamStats {
  long long frames = 0;     ///< frames retired
  double wall_ms = 0.0;     ///< admission of frame 0 to last retire
  double fps = 0.0;         ///< frames / wall seconds
  int max_in_flight = 0;    ///< deepest admitted-but-not-retired window seen
  /// Per-frame latency, admission (before the bind callback) to retire
  /// (outputs copied, buffers released), in frame order.
  std::vector<double> latencies_ms;

  /// Interpolated percentile over latencies_ms (p in [0, 100]; 0 when no
  /// frames ran). LatencyPercentile(99) is the bench's p99 column.
  double LatencyPercentile(double p) const;
};

/// Modelled steady-state throughput of the pipeline on the simulated device
/// (see StreamExecutor::ModelThroughput).
struct StreamModel {
  double finish_ms = 0.0;  ///< modelled end of the last frame's readback
  double fps = 0.0;        ///< frames / modelled seconds
  double compute_utilisation = 0.0;  ///< busy fraction of the compute queue
  double h2d_utilisation = 0.0;
  double d2h_utilisation = 0.0;
};

class StreamExecutor {
 public:
  /// Fills one frame's bindings. Called once per frame, in frame order, from
  /// a worker thread (thread-safe with respect to other frames' execution;
  /// never concurrently with itself). The bound images must stay valid until
  /// the frame retired.
  using FrameBinder =
      std::function<Status(long long frame, PipelineGraph::InputBindings* in,
                           PipelineGraph::OutputBindings* out)>;
  /// Runs after `frame`'s outputs were copied into its bound images, in
  /// strict frame order. Optional; a failure aborts the stream.
  using FrameRetirer = std::function<Status(long long frame)>;

  /// The graph must outlive the executor; `graph_options` and `stream`
  /// are copied.
  StreamExecutor(PipelineGraph& graph, GraphOptions graph_options,
                 StreamOptions stream);
  ~StreamExecutor();

  StreamExecutor(const StreamExecutor&) = delete;
  StreamExecutor& operator=(const StreamExecutor&) = delete;

  /// Builds and compiles the frame-invariant plan. Idempotent; Run calls it
  /// implicitly, exposed so callers can front-load compilation (and its
  /// cache misses) before the timed region.
  Status Prepare();

  /// Executes `frames` frames through the window. On failure the first
  /// error is returned, admission stops, and every in-flight frame's
  /// buffers are returned to the pool.
  Status Run(long long frames, const FrameBinder& binder,
             const FrameRetirer& retirer = {});

  /// Statistics of the last completed Run().
  const StreamStats& stats() const noexcept { return stats_; }

  /// Window depth actually used (1 in serial mode).
  int window() const noexcept;

  /// Replays `frames` frames of the compiled pipeline onto per-queue
  /// simulated timelines (compute, H2D copy, D2H copy): kernel stages cost
  /// their sim::Simulator::Measure modelled time, copies are PCIe-modelled
  /// from image bytes. Overlap mode advances the three queues independently
  /// (copy/compute overlap + frames-in-flight); serial mode serialises
  /// everything onto one timeline, exactly like the pre-streaming
  /// single-launch-stream model.
  Result<StreamModel> ModelThroughput(long long frames);

 private:
  struct FrameState;
  struct Shared;

  Status MeasureStageCosts();
  void WorkerLoop(Shared* shared);

  PipelineGraph& graph_;
  GraphOptions graph_options_;
  StreamOptions stream_;
  bool prepared_ = false;
  GraphPlan plan_;
  StreamStats stats_;
  /// Modelled per-stage compute cost (ms), by stage index; filled lazily by
  /// ModelThroughput, empty until then.
  std::vector<double> stage_model_ms_;
};

}  // namespace hipacc::runtime
