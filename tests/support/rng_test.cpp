#include "support/rng.hpp"

#include <gtest/gtest.h>

namespace hipacc {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 10; ++i)
    if (a.Next() != b.Next()) ++differing;
  EXPECT_GE(differing, 9);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, IntInRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianRoughlyStandard) {
  Rng rng(5);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.05);
}

}  // namespace
}  // namespace hipacc
