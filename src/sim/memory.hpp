// Simulated device memory system: buffer bindings plus the models for
// coalescing, the texture / L1 caches, constant broadcast, and shared-memory
// bank conflicts. The functional side is trivial (host memory); the value of
// this module is the per-warp transaction accounting feeding the timing
// model.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "hwmodel/device_spec.hpp"
#include "sim/metrics.hpp"
#include "support/status.hpp"

namespace hipacc::sim {

/// A device buffer bound to a kernel launch (input image, output image, or
/// a dynamic mask in global memory).
struct BufferBinding {
  std::string name;
  float* data = nullptr;
  int width = 0;
  int height = 0;
  int stride = 0;  ///< padded row stride in elements
  bool writable = false;
};

/// Exact-LRU cache over memory segments, used for both the texture cache
/// and Fermi's L1 for global loads. Capacity is in segments (hundreds at
/// realistic transaction sizes) and Access sits on the per-load inner loop
/// of every engine, so the index is a flat open-addressing table (linear
/// probing, backshift deletion) over an intrusive recency list: no
/// per-node allocation, no pointer-chasing bucket lists, and the table is
/// sized once at construction so it never rehashes. The recency list
/// orders entries exactly like the last-use-stamp scheme it replaced, so
/// the hit/miss/eviction sequence — and every metric derived from it — is
/// unchanged.
class SegmentCache {
 public:
  SegmentCache() { InitTable(); }
  explicit SegmentCache(int capacity_segments)
      : capacity_(capacity_segments > 0 ? capacity_segments : 1) {
    InitTable();
  }

  /// Touches a segment; returns true on hit.
  bool Access(std::uint64_t segment);

  void Clear() {
    std::fill(keys_.begin(), keys_.end(), kEmpty);
    segments_.clear();
    prev_.clear();
    next_.clear();
    head_ = tail_ = -1;
  }

 private:
  // Sentinel for an empty table slot. Segment numbers are element addresses
  // scaled to transactions (addr * 4 >> shift), so reaching ~0 would need a
  // buffer of ~2^62 elements — unrepresentable on the host.
  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};

  void InitTable();
  std::size_t Hash(std::uint64_t segment) const {
    // Multiply-shift (Fibonacci) hashing: consecutive segments — the common
    // pattern for a sweeping warp — spread uniformly across the table.
    return static_cast<std::size_t>(
        (segment * 0x9E3779B97F4A7C15ull) >> shift_);
  }
  void EraseKey(std::uint64_t segment);
  void Unlink(int i);
  void PushFront(int i);

  int capacity_ = 64;
  std::vector<std::uint64_t> keys_;  ///< open-addressing table (kEmpty = free)
  std::vector<int> slot_node_;       ///< table slot -> node index
  std::size_t mask_ = 0;             ///< table size - 1 (power of two)
  int shift_ = 64;                   ///< 64 - log2(table size)
  std::vector<std::uint64_t> segments_;  ///< node payloads
  std::vector<int> prev_, next_;         ///< intrusive recency list
  int head_ = -1;  ///< most recently used
  int tail_ = -1;  ///< least recently used (eviction victim)
};

/// Per-warp memory-access accounting against one device model. A fresh
/// instance is used per thread block (caches are treated as block-private —
/// a coarse but adequate approximation for sampled simulation).
///
/// Each entry point has a span form (pointer + count) — the native tier
/// calls these directly from its trampoline without materialising a vector
/// — and a vector convenience wrapper used by the interpreter and the VM.
class MemoryModel {
 public:
  explicit MemoryModel(const hw::DeviceSpec& device);

  /// One warp-level global read/write: `addrs` holds the element addresses
  /// (linear element index into the buffer) of the active lanes.
  void GlobalAccess(const std::uint64_t* addrs, std::size_t count,
                    bool is_write, Metrics* metrics);
  void GlobalAccess(const std::vector<std::uint64_t>& addrs, bool is_write,
                    Metrics* metrics) {
    GlobalAccess(addrs.data(), addrs.size(), is_write, metrics);
  }

  /// One warp-level read through the texture path.
  void TextureAccess(const std::uint64_t* addrs, std::size_t count,
                     Metrics* metrics);
  void TextureAccess(const std::vector<std::uint64_t>& addrs,
                     Metrics* metrics) {
    TextureAccess(addrs.data(), addrs.size(), metrics);
  }

  /// One warp-level constant-memory read.
  void ConstantAccess(const std::uint64_t* addrs, std::size_t count,
                      Metrics* metrics);
  void ConstantAccess(const std::vector<std::uint64_t>& addrs,
                      Metrics* metrics) {
    ConstantAccess(addrs.data(), addrs.size(), metrics);
  }

  /// One warp-level scratchpad access; addresses are element offsets within
  /// the tile. Conflict degree = max lanes hitting one bank with distinct
  /// addresses (same-address lanes broadcast).
  void SharedAccess(const std::uint64_t* addrs, std::size_t count,
                    Metrics* metrics);
  void SharedAccess(const std::vector<std::uint64_t>& addrs,
                    Metrics* metrics) {
    SharedAccess(addrs.data(), addrs.size(), metrics);
  }

 private:
  std::uint64_t Segment(std::uint64_t element_addr) const {
    // Transaction sizes are powers of two on every modelled device, so the
    // division folds to a shift; the divide remains as a fallback for
    // hypothetical non-power-of-two specs.
    const std::uint64_t bytes = element_addr * sizeof(float);
    return seg_shift_ >= 0
               ? bytes >> seg_shift_
               : bytes / static_cast<std::uint64_t>(device_.mem_transaction_bytes);
  }

  /// Maps lane addresses to segments, deduplicating adjacent repeats, in a
  /// single pass. Succeeds only when the segment sequence is ascending —
  /// true for every coalesced warp — in which case `out` holds exactly the
  /// sorted distinct segments (a non-adjacent duplicate would break the
  /// ascending order, so adjacent dedup is complete). Returns false when
  /// the sequence is unsorted or too long; callers then take the
  /// sort+unique slow path, which produces the identical distinct set.
  bool CoalesceAscending(const std::uint64_t* addrs, std::size_t count,
                         std::uint64_t* out, std::size_t* out_count) const;

  /// Bumps the bank-counter generation, handling wraparound.
  void NextBankGen() {
    if (++bank_gen_ == 0) {
      bank_stamp_.fill(0);
      bank_gen_ = 1;
    }
  }

  const hw::DeviceSpec& device_;
  int seg_shift_ = -1;
  SegmentCache tex_cache_;
  SegmentCache l1_cache_;
  // Reused scratch for the sort+unique slow path (unsorted warps only).
  // The warp's distinct values are produced in ascending order, matching
  // the iteration order of the std::set this replaces, so the LRU caches
  // see the exact same access sequence.
  std::vector<std::uint64_t> scratch_;
  // Generation-stamped per-bank lane counts for SharedAccess: a stamp
  // mismatch means "count is stale, treat as zero", so no per-call zeroing
  // of the 64-entry array is needed.
  std::array<std::uint32_t, 64> bank_count_{};
  std::array<std::uint32_t, 64> bank_stamp_{};
  std::uint32_t bank_gen_ = 0;
};

}  // namespace hipacc::sim
