// Content-addressed compilation cache (two levels).
//
// Keys are canonical serialisations of everything a compilation result
// depends on; a 64-bit FNV-1a hash indexes the store while the full
// canonical string is compared on lookup, so hash collisions can never
// alias two different kernels (two sources with the same name but
// different bodies are distinct entries).
//
//   frontend level  (source fingerprint, codegen options)
//                   -> KernelDecl + lowered DeviceKernel + resource estimate
//   target level    (frontend key, device, image extent, forced config)
//                   -> complete CompiledKernel, emitted source included
//
// A frontend hit lets Retarget-style recompiles skip parse/lower/estimate;
// a target hit returns the cached CompiledKernel bit-identically. Lookups
// report into sim::TraceSink ("cache_{hit,miss}.{frontend,target}" counters
// plus instant events carrying the key hash). All methods are thread-safe —
// the parallel exploration engine shares one cache across lanes.
//
// Both levels optionally persist through a support::DiskStore (the
// "cache.disk.*" counters; see compiler/disk_cache.hpp for the artifact
// serialisation): an in-memory miss falls through to disk, a decodable disk
// entry is promoted into memory, and stores write through — so a second
// process with a warm cache directory skips the pipeline entirely.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "compiler/driver.hpp"

namespace hipacc::support {
class DiskStore;
}  // namespace hipacc::support

namespace hipacc::compiler {

/// A content-addressed key: hash for indexing, canonical string for
/// collision-proof identity.
struct CacheKey {
  std::uint64_t hash = 0;
  std::string canonical;

  /// 16-digit lowercase hex of the hash (trace/event payloads).
  std::string hex() const;
};

/// Canonical serialisation of a kernel source: name, parameters, accessor
/// windows/boundary modes, mask shapes and static coefficients, body text.
std::string SourceFingerprint(const frontend::KernelSource& source);

/// Canonical serialisation of the codegen options (every field).
std::string OptionsFingerprint(const codegen::CodegenOptions& options);

/// FNV-1a hash of a source fingerprint (CompiledKernel::source_hash).
std::uint64_t SourceHash(const std::string& source_fingerprint);

/// Canonical device identity used in target-level and profile keys: the
/// name plus every occupancy-relevant resource limit, so a customised
/// DeviceSpec never aliases the stock one.
std::string DeviceIdentity(const hw::DeviceSpec& device);

/// Frontend-level key: source fingerprint + codegen options.
CacheKey MakeFrontendKey(const frontend::KernelSource& source,
                         const codegen::CodegenOptions& options);
/// Same, from a stored fingerprint (Retarget has no KernelSource at hand).
CacheKey MakeFrontendKeyFromFingerprint(
    const std::string& source_fingerprint,
    const codegen::CodegenOptions& options);

/// Target-level key: frontend key + device identity + image extent +
/// forced configuration (if any). `profile_salt` distinguishes artifacts
/// whose configuration came from measured profile history (compiler/
/// profile.hpp) from pure-heuristic ones — the two may differ while hashing
/// the same source, so they must never alias in the cache.
CacheKey MakeTargetKey(const CacheKey& frontend_key,
                       const hw::DeviceSpec& device, int image_width,
                       int image_height,
                       const std::optional<hw::KernelConfig>& forced_config,
                       const std::string& profile_salt = "");

/// Target-independent products of the pipeline's first three passes.
struct FrontendArtifacts {
  ast::KernelDecl decl;
  ast::DeviceKernel device_ir;
  hw::KernelResources resources;
  codegen::CodegenOptions codegen;
  std::string source_fingerprint;
  std::uint64_t source_hash = 0;
};

class CompilationCache {
 public:
  struct Stats {
    long long frontend_hits = 0;
    long long frontend_misses = 0;
    long long target_hits = 0;
    long long target_misses = 0;
    /// Persistent-tier traffic (in-memory misses that the disk satisfied /
    /// artifacts written through to disk). Disk hits also count in
    /// frontend_hits / target_hits above.
    long long disk_hits = 0;
    long long disk_stores = 0;

    long long hits() const { return frontend_hits + target_hits; }
    long long misses() const { return frontend_misses + target_misses; }
  };

  /// Lookups count a hit or miss in stats and, when `trace` is non-null,
  /// report the access to the sink. An in-memory miss falls through to the
  /// persistent tier (when one is attached): a decodable disk entry counts
  /// as a hit, is promoted into memory, and bumps "cache.disk.hit".
  std::optional<FrontendArtifacts> LookupFrontend(
      const CacheKey& key, sim::TraceSink* trace = nullptr);
  std::optional<CompiledKernel> LookupTarget(const CacheKey& key,
                                             sim::TraceSink* trace = nullptr);

  /// Stores overwrite an existing entry with the same canonical key and
  /// write through to the persistent tier ("cache.disk.store" /
  /// "cache.disk.evict" counters when `trace` is given).
  void StoreFrontend(const CacheKey& key, FrontendArtifacts value,
                     sim::TraceSink* trace = nullptr);
  void StoreTarget(const CacheKey& key, CompiledKernel value,
                   sim::TraceSink* trace = nullptr);

  /// Overrides the persistent tier. By default the cache follows
  /// support::GlobalDiskStore() (disabled until a tool configures it);
  /// passing nullptr pins this cache to in-memory-only operation.
  void set_disk_store(support::DiskStore* store);

  Stats stats() const;
  /// Number of stored entries across both levels.
  std::size_t size() const;
  void Clear();

 private:
  support::DiskStore* disk() const;
  /// Hash-indexed buckets; each slot keeps the canonical key alongside the
  /// value and is only returned when the canonical strings match.
  template <typename V>
  struct Entry {
    std::string canonical;
    V value;
  };
  template <typename V>
  using Store = std::unordered_map<std::uint64_t, std::vector<Entry<V>>>;

  mutable std::mutex mutex_;
  Store<FrontendArtifacts> frontend_;
  Store<CompiledKernel> target_;
  Stats stats_;
  /// Persistent tier: follow the global store unless overridden.
  support::DiskStore* disk_override_ = nullptr;
  bool disk_overridden_ = false;
};

/// Process-wide cache shared by the runtime execute path and the CLI
/// (unless --no-cache).
CompilationCache& GlobalCompilationCache();

}  // namespace hipacc::compiler
