file(REMOVE_RECURSE
  "libhipacc_runtime.a"
)
