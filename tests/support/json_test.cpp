// JSON document model: writer/parser round trips, number formatting (the
// integral flag keeps counters free of a spurious ".0"), insertion-ordered
// objects, escape handling, and the strict-parser error cases.
#include "support/json.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <limits>
#include <string>

namespace hipacc::support {
namespace {

Json SampleDocument() {
  Json doc = Json::Object();
  doc["kernel"] = "bilateral";
  doc["ms"] = 157.58;
  doc["launches"] = 128;
  doc["sampled"] = true;
  doc["note"] = Json();  // null
  Json point = Json::Object();
  point["block_x"] = 32;
  point["block_y"] = 4;
  Json points = Json::Array();
  points.push_back(std::move(point));
  points.push_back(Json::Object());
  doc["points"] = std::move(points);
  return doc;
}

TEST(JsonTest, TypePredicates) {
  EXPECT_TRUE(Json().is_null());
  EXPECT_TRUE(Json(true).is_bool());
  EXPECT_TRUE(Json(3.5).is_number());
  EXPECT_TRUE(Json("x").is_string());
  EXPECT_TRUE(Json::Array().is_array());
  EXPECT_TRUE(Json::Object().is_object());
}

TEST(JsonTest, CompactDumpIsDeterministicAndInsertionOrdered) {
  EXPECT_EQ(SampleDocument().Dump(),
            "{\"kernel\":\"bilateral\",\"ms\":157.58,\"launches\":128,"
            "\"sampled\":true,\"note\":null,"
            "\"points\":[{\"block_x\":32,\"block_y\":4},{}]}");
}

TEST(JsonTest, IntegralNumbersDumpWithoutDecimalPoint) {
  EXPECT_EQ(Json(0).Dump(), "0");
  EXPECT_EQ(Json(-42).Dump(), "-42");
  EXPECT_EQ(Json(std::uint64_t{1} << 53).Dump(), "9007199254740992");
  // Plain doubles keep a shortest representation that round-trips.
  EXPECT_EQ(Json(0.5).Dump(), "0.5");
  EXPECT_EQ(Json(157.58).Dump(), "157.58");
  EXPECT_EQ(Json(1.0 / 3.0).Dump(), "0.3333333333333333");
}

TEST(JsonTest, NonFiniteNumbersSerialiseAsNull) {
  // JSON has no Infinity/NaN literal; emitting null keeps output parseable.
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).Dump(), "null");
  EXPECT_EQ(Json(std::numeric_limits<double>::quiet_NaN()).Dump(), "null");
}

TEST(JsonTest, QuoteEscapesControlCharacters) {
  EXPECT_EQ(Json::Quote("a\"b\\c"), "\"a\\\"b\\\\c\"");
  EXPECT_EQ(Json::Quote("line\nbreak\ttab"), "\"line\\nbreak\\ttab\"");
  EXPECT_EQ(Json::Quote(std::string("\x01", 1)), "\"\\u0001\"");
}

TEST(JsonTest, IndentedDump) {
  Json doc = Json::Object();
  doc["a"] = 1;
  doc["b"] = Json::Array();
  doc["b"].push_back(2);
  EXPECT_EQ(doc.Dump(2), "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}");
}

TEST(JsonTest, RoundTripThroughDumpAndParse) {
  const Json doc = SampleDocument();
  for (const int indent : {-1, 0, 2, 4}) {
    auto parsed = Json::Parse(doc.Dump(indent));
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(parsed.value(), doc) << "indent=" << indent;
    // The integral flag survives: re-dumping matches byte for byte.
    EXPECT_EQ(parsed.value().Dump(indent), doc.Dump(indent));
  }
}

TEST(JsonTest, ParseAcceptsWhitespaceAndNesting) {
  auto parsed = Json::Parse("  { \"a\" : [ 1 , { \"b\" : null } ] }  ");
  ASSERT_TRUE(parsed.ok());
  const Json* a = parsed.value().Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->size(), 2u);
  EXPECT_EQ((*a)[0].int_value(), 1);
  EXPECT_TRUE((*a)[1].Find("b")->is_null());
}

TEST(JsonTest, ParseDecodesUnicodeEscapes) {
  auto parsed = Json::Parse("\"\\u00e9\\u2192\"");  // é →
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().string_value(), "\xc3\xa9\xe2\x86\x92");
}

TEST(JsonTest, ParseRejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "{\"a\" 1}", "\"unterminated",
        "01", "1.", "+1", "nul", "truthy", "[1] trailing", "{\"a\":1,}",
        "'single'", "\"bad \\x escape\""}) {
    EXPECT_FALSE(Json::Parse(bad).ok()) << "accepted: " << bad;
  }
}

TEST(JsonTest, ParseRejectsRunawayNesting) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(Json::Parse(deep).ok());
}

TEST(JsonTest, FindAndIndexing) {
  Json doc = SampleDocument();
  EXPECT_EQ(doc.Find("kernel")->string_value(), "bilateral");
  EXPECT_EQ(doc.Find("missing"), nullptr);
  EXPECT_EQ(doc.Find("points")->elements()[0].Find("block_x")->int_value(), 32);
  // operator[] on an existing key returns the same member, not a duplicate.
  doc["kernel"] = "gaussian";
  EXPECT_EQ(doc.Find("kernel")->string_value(), "gaussian");
  EXPECT_EQ(doc.members().front().first, "kernel");
}

TEST(JsonTest, EqualityIsStructural) {
  EXPECT_EQ(Json(1), Json(1.0));  // same numeric value
  EXPECT_NE(Json(1), Json(2));
  EXPECT_NE(Json(1), Json("1"));
  Json a = Json::Object(), b = Json::Object();
  a["x"] = 1;
  a["y"] = 2;
  b["y"] = 2;
  b["x"] = 1;
  EXPECT_NE(a, b);  // member order is significant
}

TEST(JsonFileTest, WriteThenReadRoundTrips) {
  const std::string path =
      ::testing::TempDir() + "/hipacc_json_test_roundtrip.json";
  const Json doc = SampleDocument();
  ASSERT_TRUE(WriteFile(path, doc.Dump(2) + "\n").ok());
  auto text = ReadFile(path);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  auto parsed = Json::Parse(text.value());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value(), doc);
  std::remove(path.c_str());
}

TEST(JsonFileTest, ReadMissingFileFails) {
  EXPECT_FALSE(ReadFile("/nonexistent/dir/nope.json").ok());
  EXPECT_FALSE(WriteFile("/nonexistent/dir/nope.json", "x").ok());
}

}  // namespace
}  // namespace hipacc::support
