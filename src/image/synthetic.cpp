#include "image/synthetic.hpp"

#include <cmath>

#include "support/rng.hpp"

namespace hipacc {

HostImage<float> MakeNoiseImage(int width, int height, std::uint64_t seed) {
  HostImage<float> img(width, height);
  Rng rng(seed);
  for (int y = 0; y < height; ++y)
    for (int x = 0; x < width; ++x) img(x, y) = rng.NextFloat();
  return img;
}

HostImage<float> MakeGradientImage(int width, int height) {
  HostImage<float> img(width, height);
  const float denom = width > 1 ? static_cast<float>(width - 1) : 1.0f;
  for (int y = 0; y < height; ++y)
    for (int x = 0; x < width; ++x) img(x, y) = static_cast<float>(x) / denom;
  return img;
}

HostImage<float> MakeAngiogramPhantom(int width, int height, float noise_sigma,
                                      std::uint64_t seed) {
  HostImage<float> img(width, height);
  Rng rng(seed);

  // Tissue background: bright with a gentle radial falloff, as in fluoroscopy.
  const float cx = width * 0.5f, cy = height * 0.5f;
  const float rmax = std::sqrt(cx * cx + cy * cy);
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      const float dx = x - cx, dy = y - cy;
      const float r = std::sqrt(dx * dx + dy * dy) / (rmax > 0 ? rmax : 1.0f);
      img(x, y) = 0.85f - 0.25f * r * r;
    }
  }

  // Vessels: a handful of sinusoidal center-lines with branching widths.
  // Contrast agent makes vessels darker than tissue.
  const int num_vessels = 5;
  for (int v = 0; v < num_vessels; ++v) {
    const float phase = rng.NextFloat() * 6.2831853f;
    const float amp = (0.10f + 0.15f * rng.NextFloat()) * width;
    const float freq = (1.0f + 2.0f * rng.NextFloat()) * 6.2831853f / height;
    const float base_x = (0.2f + 0.6f * rng.NextFloat()) * width;
    const float w0 = 1.5f + 4.0f * rng.NextFloat();  // half-width in pixels
    for (int y = 0; y < height; ++y) {
      const float center = base_x + amp * std::sin(freq * y + phase);
      const float w = w0 * (0.6f + 0.4f * (1.0f - static_cast<float>(y) / height));
      const int x0 = static_cast<int>(std::floor(center - 3 * w));
      const int x1 = static_cast<int>(std::ceil(center + 3 * w));
      for (int x = std::max(0, x0); x <= std::min(width - 1, x1); ++x) {
        const float d = (x - center) / w;
        const float depth = 0.45f * std::exp(-0.5f * d * d);
        img(x, y) = std::max(0.0f, img(x, y) - depth);
      }
    }
  }

  if (noise_sigma > 0.0f) {
    for (int y = 0; y < height; ++y)
      for (int x = 0; x < width; ++x) {
        const float n = noise_sigma * static_cast<float>(rng.NextGaussian());
        img(x, y) = std::min(1.0f, std::max(0.0f, img(x, y) + n));
      }
  }
  return img;
}

HostImage<float> MakeCheckerboard(int width, int height, int cell, float lo,
                                  float hi) {
  HIPACC_CHECK(cell > 0);
  HostImage<float> img(width, height);
  for (int y = 0; y < height; ++y)
    for (int x = 0; x < width; ++x)
      img(x, y) = (((x / cell) + (y / cell)) % 2 == 0) ? lo : hi;
  return img;
}

HostImage<float> MakeImpulseImage(int width, int height, int cx, int cy,
                                  float value) {
  HostImage<float> img(width, height, 0.0f);
  img.at(cx, cy) = value;
  return img;
}

HostImage<float> MakeIndexImage(int width, int height) {
  HostImage<float> img(width, height);
  for (int y = 0; y < height; ++y)
    for (int x = 0; x < width; ++x)
      img(x, y) = static_cast<float>(y * width + x);
  return img;
}

}  // namespace hipacc
