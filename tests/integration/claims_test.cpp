// The paper's headline claims as CI-checked regressions over the modelled
// device (1024x1024 to keep CI fast; the bench binaries run the full
// 4096x4096 setup). If a model change breaks one of these orderings, the
// corresponding table in EXPERIMENTS.md no longer reproduces.
#include <gtest/gtest.h>

#include "baselines/manual.hpp"
#include "baselines/rapidmind.hpp"
#include "compiler/executable.hpp"
#include "ops/kernel_sources.hpp"

namespace hipacc {
namespace {

using ast::Backend;
using ast::BoundaryMode;

constexpr int kN = 1024;
constexpr int kSigmaD = 3;

Result<double> MeasureBilateral(BoundaryMode mode, bool generated,
                                bool use_mask, const hw::DeviceSpec& device,
                                Backend backend) {
  frontend::KernelSource source = use_mask
                                      ? ops::BilateralMaskSource(kSigmaD, mode)
                                      : ops::BilateralSource(kSigmaD, mode);
  compiler::CompileOptions options;
  options.codegen.backend = backend;
  options.codegen.border = generated ? codegen::BorderPolicy::kRegions
                                     : codegen::BorderPolicy::kUniform;
  options.device = device;
  options.image_width = options.image_height = kN;
  options.forced_config = hw::KernelConfig{128, 1};
  auto compiled = compiler::Compile(source, options);
  if (!compiled.ok()) return compiled.status();
  dsl::Image<float> in(kN, kN), out(kN, kN);
  runtime::BindingSet bindings;
  bindings.Input("Input", in).Output(out).Scalar("sigma_d", kSigmaD).Scalar(
      "sigma_r", 5);
  compiler::SimulatedExecutable exe(std::move(compiled).take(), device);
  auto stats = exe.Measure(bindings);
  if (!stats.ok()) return stats.status();
  return stats.value().timing.total_ms;
}

double Must(Result<double> r) {
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? r.value() : -1.0;
}

TEST(PaperClaimsTest, GeneratedBoundaryHandlingIsFlatAcrossModes) {
  // "code for boundary handling that has constant performance independent
  // from the selected boundary handling mode" (Conclusions).
  double lo = 1e30, hi = 0.0;
  for (const BoundaryMode mode : {BoundaryMode::kClamp, BoundaryMode::kRepeat,
                                  BoundaryMode::kMirror, BoundaryMode::kConstant}) {
    const double ms =
        Must(MeasureBilateral(mode, true, true, hw::TeslaC2050(), Backend::kCuda));
    lo = std::min(lo, ms);
    hi = std::max(hi, ms);
  }
  // The paper's own generated spread reaches 1.11x (Table II +Mask:
  // 181.45 -> 200.66); require at least that flatness.
  EXPECT_LT(hi / lo, 1.12);
}

TEST(PaperClaimsTest, ManualBoundaryHandlingVariesWithMode) {
  // "the performance of the manual implementation varies significantly (up
  // to a factor of two)" with Constant worst.
  const auto device = hw::TeslaC2050();
  const double clamp = Must(MeasureBilateral(BoundaryMode::kClamp, false, true,
                                             device, Backend::kCuda));
  const double repeat = Must(MeasureBilateral(BoundaryMode::kRepeat, false,
                                              true, device, Backend::kCuda));
  const double mirror = Must(MeasureBilateral(BoundaryMode::kMirror, false,
                                              true, device, Backend::kCuda));
  const double constant = Must(MeasureBilateral(
      BoundaryMode::kConstant, false, true, device, Backend::kCuda));
  EXPECT_LT(clamp, mirror);
  EXPECT_LT(mirror, repeat);
  EXPECT_LT(repeat, constant);
  EXPECT_GT(constant / clamp, 1.3);
}

TEST(PaperClaimsTest, GeneratedBeatsManualForEveryMode) {
  for (const BoundaryMode mode : {BoundaryMode::kClamp, BoundaryMode::kRepeat,
                                  BoundaryMode::kMirror, BoundaryMode::kConstant}) {
    const double generated = Must(MeasureBilateral(mode, true, true,
                                                   hw::TeslaC2050(), Backend::kCuda));
    const double manual = Must(MeasureBilateral(mode, false, true,
                                                hw::TeslaC2050(), Backend::kCuda));
    EXPECT_LE(generated, manual * 1.001) << to_string(mode);
  }
}

TEST(PaperClaimsTest, ConstantMemoryMasksPayOff) {
  // Removing the per-tap closeness exp()s via a Mask: ~1.4-1.6x in the
  // paper (302->215 manual, 285->181 generated).
  const double no_mask = Must(MeasureBilateral(
      BoundaryMode::kClamp, true, false, hw::TeslaC2050(), Backend::kCuda));
  const double with_mask = Must(MeasureBilateral(
      BoundaryMode::kClamp, true, true, hw::TeslaC2050(), Backend::kCuda));
  EXPECT_GT(no_mask / with_mask, 1.2);
  EXPECT_LT(no_mask / with_mask, 2.2);
}

TEST(PaperClaimsTest, OpenClSlowerThanCudaOnNvidia) {
  // Tables II vs III: the 2011/2012 OpenCL toolchain trails nvcc.
  const double cuda = Must(MeasureBilateral(BoundaryMode::kClamp, true, true,
                                            hw::TeslaC2050(), Backend::kCuda));
  const double opencl = Must(MeasureBilateral(
      BoundaryMode::kClamp, true, true, hw::TeslaC2050(), Backend::kOpenCL));
  EXPECT_GT(opencl, cuda * 1.1);
}

TEST(PaperClaimsTest, AmdInsensitiveToMasksUnlikeNvidia) {
  // Tables VI/VII: scalar code underutilises VLIW lanes, so removing the
  // exps barely moves AMD numbers while NVIDIA gains substantially.
  const double amd_no_mask = Must(MeasureBilateral(
      BoundaryMode::kClamp, true, false, hw::RadeonHd5870(), Backend::kOpenCL));
  const double amd_mask = Must(MeasureBilateral(
      BoundaryMode::kClamp, true, true, hw::RadeonHd5870(), Backend::kOpenCL));
  EXPECT_LT(amd_no_mask / amd_mask, 1.15);
}

TEST(PaperClaimsTest, RapidMindCrashSemantics) {
  dsl::Image<float> in(kN, kN), out(kN, kN);
  runtime::BindingSet bindings;
  bindings.Input("Input", in).Output(out);
  auto repeat = baselines::MeasureRapidMindBilateral(
      kSigmaD, 5, BoundaryMode::kRepeat, false, hw::TeslaC2050(), kN, kN,
      {128, 1}, bindings);
  ASSERT_TRUE(repeat.ok());
  EXPECT_TRUE(repeat.value().crashed);
  EXPECT_FALSE(baselines::MeasureRapidMindBilateral(
                   kSigmaD, 5, BoundaryMode::kMirror, false, hw::TeslaC2050(),
                   kN, kN, {128, 1}, bindings)
                   .ok());
}

}  // namespace
}  // namespace hipacc
