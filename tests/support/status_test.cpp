#include "support/status.hpp"

#include <gtest/gtest.h>

namespace hipacc {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status st = Status::Invalid("bad width");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad width");
  EXPECT_EQ(st.ToString(), "invalid_argument: bad width");
}

TEST(StatusTest, FactoryCodes) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Exhausted("x").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Parse("x").code(), StatusCode::kParseError);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::Invalid("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, TakeMovesValue) {
  Result<std::string> r = std::string("payload");
  const std::string taken = std::move(r).take();
  EXPECT_EQ(taken, "payload");
}

Status Propagates(bool fail) {
  HIPACC_RETURN_IF_ERROR(fail ? Status::Internal("inner") : Status::Ok());
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(Propagates(false).ok());
  EXPECT_EQ(Propagates(true).code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace hipacc
