#include "sim/vm.hpp"

#include <vector>

#include "dsl/boundary.hpp"
#include "sim/block_state.hpp"

namespace hipacc::sim {
namespace {

using namespace hipacc::ast;

/// Resolves one coordinate under the read's guard set. Returns -1 when the
/// constant value must be substituted; sets *violation for unguarded OOB.
/// (Identical to the interpreter's ResolveCoord.)
int ResolveCoord(int c, int n, BoundaryMode mode, bool check_lo, bool check_hi,
                 bool hardware_resolved, bool* violation) {
  if (c >= 0 && c < n) return c;
  if (hardware_resolved)  // texture unit applies the address mode silently
    return dsl::ResolveBoundaryIndex(
        c, n, mode == BoundaryMode::kUndefined ? BoundaryMode::kClamp : mode);
  const bool guarded = (c < 0 && check_lo) || (c >= n && check_hi);
  if (!guarded) {
    *violation = true;
    return c < 0 ? 0 : n - 1;  // clamp as a safety net after recording
  }
  return dsl::ResolveBoundaryIndex(c, n, mode);
}

/// Launch-time bindings of a program's buffer/mask tables, resolved once per
/// block. Null entries are legal until an instruction touches them.
struct BindCtx {
  std::vector<const BufferBinding*> buffers;
  struct MaskBind {
    const std::vector<float>* data = nullptr;
    int width = 1;
  };
  std::vector<MaskBind> masks;
};

struct ParamFill {
  std::uint16_t reg = 0;
  ScalarType type = ScalarType::kFloat;
  double value = 0.0;
};

// Lane loops templated on the operator so the per-lane switch inside the
// Eval*Lane helpers constant-folds away (at -O2 the optimizer does not
// unswitch the loop by itself); dispatch happens once per instruction, not
// once per lane. Reading both operands before the write keeps dst aliasing
// either source safe, exactly like the generic handlers did.

template <ast::BinaryOp op, bool float_math>
void BinaryLanes(const WarpVal& a, const WarpVal& b, WarpVal* d, int warp) {
  for (int l = 0; l < warp; ++l) {
    const std::size_t i = static_cast<std::size_t>(l);
    d->lanes[i] = EvalBinaryLane(op, float_math, a.lanes[i], b.lanes[i]);
  }
}

template <ast::AssignOp op, bool float_math>
void AssignLanes(const WarpVal& s, WarpVal* d, const LaneMask& mk,
                 ast::ScalarType to, bool convert, int warp) {
  constexpr ast::ScalarType kFolded =
      float_math ? ast::ScalarType::kFloat : ast::ScalarType::kInt;
  for (int l = 0; l < warp; ++l) {
    const std::size_t i = static_cast<std::size_t>(l);
    if (!mk[i]) continue;
    const double rhs = convert ? ConvertLaneValue(s.lanes[i], to) : s.lanes[i];
    d->lanes[i] = CombineLane(kFolded, op, d->lanes[i], rhs);
  }
}

template <VmBuiltin fn>
void BuiltinLanes(const WarpVal& a, const WarpVal& b, WarpVal* d, int warp) {
  for (int l = 0; l < warp; ++l) {
    const std::size_t i = static_cast<std::size_t>(l);
    d->lanes[i] = EvalBuiltinLane(fn, a.lanes[i], b.lanes[i]);
  }
}

/// Accumulates the interpreter-parity ALU/SFU costs in locals the compiler
/// can keep in registers; the destructor flushes them into the Metrics on
/// every exit path (including error returns) so totals stay exact.
struct CostCounters {
  Metrics* m;
  std::uint64_t alu = 0;
  std::uint64_t sfu = 0;
  ~CostCounters() {
    m->alu_ops += alu;
    m->sfu_calls += sfu;
  }
};

/// Per-thread scratch shared by consecutive VmRunner instances on the same
/// worker thread (one simulated block each).
struct VmScratch {
  std::vector<WarpVal> regs;
  std::vector<LaneMask> masks;
};

VmScratch& ThreadScratch() {
  static thread_local VmScratch scratch;
  return scratch;
}

class VmRunner {
 public:
  VmRunner(const Launch& launch, const ProgramSet& ps,
           const hw::DeviceSpec& device, int bx, int by, Metrics* metrics)
      : st_(launch, device, bx, by, metrics),
        ps_(ps),
        regs_(ThreadScratch().regs),
        masks_(ThreadScratch().masks) {}

  Status Run(std::uint64_t* executed_insns) {
    Result<BlockState::Plan> begun = st_.Begin();
    if (!begun.ok()) return begun.status();
    const BlockState::Plan plan = begun.value();
    const Program* prog = ps_.Find(plan.region);
    if (!prog)
      return Status::Internal("no bytecode program for region of kernel " +
                              ps_.kernel_name);

    bind_.buffers.reserve(ps_.buffer_names.size());
    for (const auto& name : ps_.buffer_names)
      bind_.buffers.push_back(st_.launch.FindBuffer(name));
    bind_.masks.reserve(ps_.const_masks.size());
    for (const auto& ref : ps_.const_masks) {
      BindCtx::MaskBind mb;
      const auto it = st_.launch.const_masks.find(ref.name);
      if (it != st_.launch.const_masks.end()) mb.data = &it->second;
      mb.width = ref.width;
      bind_.masks.push_back(mb);
    }

    std::vector<ParamFill> seeds;
    seeds.reserve(prog->params.size());
    for (const auto& p : prog->params) {
      const auto it = st_.launch.scalar_args.find(p.name);
      const double v = it != st_.launch.scalar_args.end() ? it->second : 0.0;
      seeds.push_back(ParamFill{
          p.reg, p.type,
          p.type == ScalarType::kFloat
              ? static_cast<double>(static_cast<float>(v))
              : v});
    }

    grid_ = hw::ComputeGrid(st_.launch.config, st_.launch.width,
                            st_.launch.height, st_.launch.kernel->ppt);
    regs_.resize(static_cast<std::size_t>(prog->num_regs));
    masks_.resize(static_cast<std::size_t>(prog->num_masks));

    for (int w = 0; w < plan.warps; ++w) {
      st_.BuildWarpContext(w, plan.threads);
      if (!AnyActive(st_.active)) continue;
      // Integer mirrors of the warp context so fused coordinates are pure
      // int adds instead of per-lane double→int conversions.
      for (int l = 0; l < st_.warp_size; ++l) {
        const std::size_t i = static_cast<std::size_t>(l);
        tid_xi_[i] = static_cast<int>(st_.tid_x[i]);
        tid_yi_[i] = static_cast<int>(st_.tid_y[i]);
        gid_xi_[i] = static_cast<int>(st_.gid_x[i]);
        gid_yi_[i] = static_cast<int>(st_.gid_y[i]);
      }
      masks_[0] = st_.active;
      for (const ParamFill& seed : seeds) {
        WarpVal& r = regs_[seed.reg];
        r.type = seed.type;
        r.lanes.fill(seed.value);
      }
      HIPACC_RETURN_IF_ERROR(ExecWarp(*prog, executed_insns));
    }
    return Status::Ok();
  }

 private:
  /// Materializes one coordinate for every lane of the warp, dispatching on
  /// the coordinate kind once instead of per lane. Lanes outside `mk` get 0
  /// for register coordinates (their values are never used — every consumer
  /// skips or zero-fills masked lanes) so stale register lanes are never
  /// cast to int.
  void CoordLanes(const Coord& c, const LaneMask& mk, int warp,
                  int* out) const {
    switch (c.kind) {
      case CoordKind::kReg: {
        const WarpVal& r = regs_[c.reg];
        for (int l = 0; l < warp; ++l) {
          const std::size_t i = static_cast<std::size_t>(l);
          out[l] = mk[i] ? static_cast<int>(r.lanes[i]) : 0;
        }
        break;
      }
      case CoordKind::kGidX:
        for (int l = 0; l < warp; ++l)
          out[l] = gid_xi_[static_cast<std::size_t>(l)] + c.off;
        break;
      case CoordKind::kGidY:
        for (int l = 0; l < warp; ++l)
          out[l] = gid_yi_[static_cast<std::size_t>(l)] + c.off;
        break;
      case CoordKind::kTidX:
        for (int l = 0; l < warp; ++l)
          out[l] = tid_xi_[static_cast<std::size_t>(l)] + c.off;
        break;
      case CoordKind::kTidY:
        for (int l = 0; l < warp; ++l)
          out[l] = tid_yi_[static_cast<std::size_t>(l)] + c.off;
        break;
      case CoordKind::kImm:
        for (int l = 0; l < warp; ++l) out[l] = c.off;
        break;
    }
  }

  Status ExecWarp(const Program& prog, std::uint64_t* executed_insns) {
    const Insn* code = prog.code.data();
    const std::int32_t n = static_cast<std::int32_t>(prog.code.size());
    const int warp = st_.warp_size;
    Metrics* m = st_.metrics;
    CostCounters cost{m};
    std::uint64_t count = 0;
    std::int32_t pc = 0;
    while (pc < n) {
      const Insn& I = code[pc];
      ++count;
      cost.alu += I.alu_cost;
      cost.sfu += I.sfu_cost;
      switch (I.op) {
        case Op::kConst: {
          // Lanes beyond the device's warp width are never read by any
          // handler, so only the live lanes are written here and in kCopy.
          WarpVal& d = regs_[I.dst];
          d.type = I.type;
          for (int l = 0; l < warp; ++l)
            d.lanes[static_cast<std::size_t>(l)] = I.imm;
          break;
        }
        case Op::kCopy: {
          const WarpVal& s = regs_[I.a];
          WarpVal& d = regs_[I.dst];
          d.type = s.type;
          if (&d != &s)
            for (int l = 0; l < warp; ++l)
              d.lanes[static_cast<std::size_t>(l)] =
                  s.lanes[static_cast<std::size_t>(l)];
          break;
        }
        case Op::kConvert: {
          const WarpVal& s = regs_[I.a];
          WarpVal& d = regs_[I.dst];
          const ScalarType from = s.type;
          if (from == I.type) {
            if (&d != &s)
              for (int l = 0; l < warp; ++l)
                d.lanes[static_cast<std::size_t>(l)] =
                    s.lanes[static_cast<std::size_t>(l)];
          } else {
            for (int l = 0; l < warp; ++l)
              d.lanes[static_cast<std::size_t>(l)] = ConvertLaneValue(
                  s.lanes[static_cast<std::size_t>(l)], I.type);
          }
          d.type = I.type;
          break;
        }
        case Op::kUnary: {
          const WarpVal& s = regs_[I.a];
          WarpVal& d = regs_[I.dst];
          const UnaryOp op = static_cast<UnaryOp>(I.sub);
          for (int l = 0; l < warp; ++l) {
            const std::size_t i = static_cast<std::size_t>(l);
            d.lanes[i] = EvalUnaryLane(op, I.type, s.lanes[i]);
          }
          d.type = I.type;
          break;
        }
        case Op::kBinary: {
          const WarpVal& a = regs_[I.a];
          const WarpVal& b = regs_[I.b];
          WarpVal& d = regs_[I.dst];
          const BinaryOp op = static_cast<BinaryOp>(I.sub);
          const bool fm = Promote(a.type, b.type) == ScalarType::kFloat;
          if (op == BinaryOp::kDiv) cost.alu += fm ? 5 : 16;
          switch (op) {
#define HIPACC_VM_BINARY(name)                              \
  case BinaryOp::name:                                      \
    if (fm)                                                 \
      BinaryLanes<BinaryOp::name, true>(a, b, &d, warp);    \
    else                                                    \
      BinaryLanes<BinaryOp::name, false>(a, b, &d, warp);   \
    break;
            HIPACC_VM_BINARY(kAdd)
            HIPACC_VM_BINARY(kSub)
            HIPACC_VM_BINARY(kMul)
            HIPACC_VM_BINARY(kDiv)
            HIPACC_VM_BINARY(kMod)
            HIPACC_VM_BINARY(kLt)
            HIPACC_VM_BINARY(kLe)
            HIPACC_VM_BINARY(kGt)
            HIPACC_VM_BINARY(kGe)
            HIPACC_VM_BINARY(kEq)
            HIPACC_VM_BINARY(kNe)
            HIPACC_VM_BINARY(kAnd)
            HIPACC_VM_BINARY(kOr)
#undef HIPACC_VM_BINARY
          }
          d.type = I.type;
          break;
        }
        case Op::kSelect: {
          const WarpVal& c = regs_[I.a];
          const WarpVal& t = regs_[I.b];
          const WarpVal& f = regs_[I.c];
          WarpVal& d = regs_[I.dst];
          for (int l = 0; l < warp; ++l) {
            const std::size_t i = static_cast<std::size_t>(l);
            const double cv = c.lanes[i];
            const double tv = t.lanes[i];
            const double fv = f.lanes[i];
            d.lanes[i] = cv != 0.0 ? tv : fv;
          }
          d.type = I.type;
          break;
        }
        case Op::kCall: {
          const WarpVal& a = regs_[I.a];
          const WarpVal& b = regs_[I.b];
          WarpVal& d = regs_[I.dst];
          switch (static_cast<VmBuiltin>(I.sub)) {
#define HIPACC_VM_BUILTIN(name)                           \
  case VmBuiltin::name:                                   \
    BuiltinLanes<VmBuiltin::name>(a, b, &d, warp);        \
    break;
            HIPACC_VM_BUILTIN(kExp)
            HIPACC_VM_BUILTIN(kExp2)
            HIPACC_VM_BUILTIN(kLog)
            HIPACC_VM_BUILTIN(kLog2)
            HIPACC_VM_BUILTIN(kSqrt)
            HIPACC_VM_BUILTIN(kRsqrt)
            HIPACC_VM_BUILTIN(kSin)
            HIPACC_VM_BUILTIN(kCos)
            HIPACC_VM_BUILTIN(kTan)
            HIPACC_VM_BUILTIN(kAtan)
            HIPACC_VM_BUILTIN(kAtan2)
            HIPACC_VM_BUILTIN(kPow)
            HIPACC_VM_BUILTIN(kFmod)
            HIPACC_VM_BUILTIN(kFabs)
            HIPACC_VM_BUILTIN(kFmin)
            HIPACC_VM_BUILTIN(kFmax)
            HIPACC_VM_BUILTIN(kFloor)
            HIPACC_VM_BUILTIN(kCeil)
            HIPACC_VM_BUILTIN(kRound)
            HIPACC_VM_BUILTIN(kMin)
            HIPACC_VM_BUILTIN(kMax)
            HIPACC_VM_BUILTIN(kAbs)
#undef HIPACC_VM_BUILTIN
          }
          d.type = I.type;
          break;
        }
        case Op::kThreadIdx: {
          WarpVal& d = regs_[I.dst];
          const ThreadIndexKind kind = static_cast<ThreadIndexKind>(I.sub);
          switch (kind) {
            case ThreadIndexKind::kThreadIdxX:
              CopyLanes(&d, st_.tid_x, warp);
              break;
            case ThreadIndexKind::kThreadIdxY:
              CopyLanes(&d, st_.tid_y, warp);
              break;
            case ThreadIndexKind::kGlobalIdX:
              CopyLanes(&d, st_.gid_x, warp);
              break;
            case ThreadIndexKind::kGlobalIdY:
              CopyLanes(&d, st_.gid_y, warp);
              break;
            case ThreadIndexKind::kBlockIdxX:
              FillLanes(&d, st_.bix, warp);
              break;
            case ThreadIndexKind::kBlockIdxY:
              FillLanes(&d, st_.biy, warp);
              break;
            case ThreadIndexKind::kBlockDimX:
              FillLanes(&d, st_.launch.config.block_x, warp);
              break;
            case ThreadIndexKind::kBlockDimY:
              FillLanes(&d, st_.launch.config.block_y, warp);
              break;
            case ThreadIndexKind::kGridDimX:
              FillLanes(&d, grid_.blocks_x, warp);
              break;
            case ThreadIndexKind::kGridDimY:
              FillLanes(&d, grid_.blocks_y, warp);
              break;
            case ThreadIndexKind::kImageW:
              FillLanes(&d, st_.launch.width, warp);
              break;
            case ThreadIndexKind::kImageH:
              FillLanes(&d, st_.launch.height, warp);
              break;
          }
          d.type = ScalarType::kInt;
          break;
        }
        case Op::kAssign: {
          const WarpVal& s = regs_[I.a];
          WarpVal& d = regs_[I.dst];
          const AssignOp op = static_cast<AssignOp>(I.sub);
          const LaneMask& mk = masks_[I.mask];
          const bool convert = s.type != I.type;
          const bool fm = I.type == ScalarType::kFloat;
          switch (op) {
#define HIPACC_VM_ASSIGN(name)                                        \
  case AssignOp::name:                                                \
    if (fm)                                                           \
      AssignLanes<AssignOp::name, true>(s, &d, mk, I.type, convert,   \
                                        warp);                        \
    else                                                              \
      AssignLanes<AssignOp::name, false>(s, &d, mk, I.type, convert,  \
                                         warp);                       \
    break;
            HIPACC_VM_ASSIGN(kAssign)
            HIPACC_VM_ASSIGN(kAddAssign)
            HIPACC_VM_ASSIGN(kSubAssign)
            HIPACC_VM_ASSIGN(kMulAssign)
            HIPACC_VM_ASSIGN(kDivAssign)
#undef HIPACC_VM_ASSIGN
          }
          break;
        }
        case Op::kLoadImage: {
          HIPACC_RETURN_IF_ERROR(LoadImage(I, warp));
          break;
        }
        case Op::kLoadShared: {
          WarpVal& d = regs_[I.dst];
          const LaneMask& mk = masks_[I.mask];
          int cxs[kMaxWarpWidth];
          int cys[kMaxWarpWidth];
          CoordLanes(I.cx, mk, warp, cxs);
          CoordLanes(I.cy, mk, warp, cys);
          st_.addr_scratch.clear();
          for (int l = 0; l < warp; ++l) {
            const std::size_t i = static_cast<std::size_t>(l);
            if (!mk[i]) {
              d.lanes[i] = 0.0;
              continue;
            }
            const int sx = cxs[l];
            const int sy = cys[l];
            if (sx < 0 || sx >= st_.tile_w || sy < 0 || sy >= st_.tile_h) {
              ++m->oob_violations;
              d.lanes[i] = 0.0;
              continue;
            }
            const std::uint64_t addr =
                static_cast<std::uint64_t>(sy) * st_.tile_w + sx;
            d.lanes[i] = static_cast<double>(st_.tile[addr]);
            st_.addr_scratch.push_back(addr);
          }
          d.type = ScalarType::kFloat;
          st_.memory.SharedAccess(st_.addr_scratch, m);
          break;
        }
        case Op::kLoadConst: {
          const BindCtx::MaskBind& mb = bind_.masks[static_cast<std::size_t>(I.buffer)];
          if (!mb.data)
            return Status::Invalid(
                "unbound constant mask " +
                ps_.const_masks[static_cast<std::size_t>(I.buffer)].name);
          WarpVal& d = regs_[I.dst];
          const LaneMask& mk = masks_[I.mask];
          int cxs[kMaxWarpWidth];
          int cys[kMaxWarpWidth];
          CoordLanes(I.cx, mk, warp, cxs);
          CoordLanes(I.cy, mk, warp, cys);
          st_.addr_scratch.clear();
          for (int l = 0; l < warp; ++l) {
            const std::size_t i = static_cast<std::size_t>(l);
            if (!mk[i]) {
              d.lanes[i] = 0.0;
              continue;
            }
            const int sx = cxs[l];
            const int sy = cys[l];
            const std::uint64_t addr =
                static_cast<std::uint64_t>(sy) * mb.width + sx;
            if (addr >= mb.data->size()) {
              ++m->oob_violations;
              d.lanes[i] = 0.0;
              continue;
            }
            d.lanes[i] = static_cast<double>((*mb.data)[addr]);
            st_.addr_scratch.push_back(addr);
          }
          d.type = ScalarType::kFloat;
          st_.memory.ConstantAccess(st_.addr_scratch, m);
          break;
        }
        case Op::kStore: {
          const BufferBinding* buf =
              bind_.buffers[static_cast<std::size_t>(I.buffer)];
          if (!buf || !buf->writable)
            return Status::Invalid(
                "write to unbound or read-only buffer " +
                ps_.buffer_names[static_cast<std::size_t>(I.buffer)]);
          const WarpVal& v = regs_[I.a];
          const LaneMask& mk = masks_[I.mask];
          int cxs[kMaxWarpWidth];
          int cys[kMaxWarpWidth];
          CoordLanes(I.cx, mk, warp, cxs);
          CoordLanes(I.cy, mk, warp, cys);
          st_.addr_scratch.clear();
          for (int l = 0; l < warp; ++l) {
            const std::size_t i = static_cast<std::size_t>(l);
            if (!mk[i]) continue;
            const int px = cxs[l];
            const int py = cys[l];
            if (px < 0 || px >= buf->width || py < 0 || py >= buf->height) {
              ++m->oob_violations;
              continue;
            }
            const std::uint64_t addr =
                static_cast<std::uint64_t>(py) * buf->stride + px;
            buf->data[addr] = static_cast<float>(v.lanes[i]);
            st_.addr_scratch.push_back(addr);
          }
          st_.memory.GlobalAccess(st_.addr_scratch, /*is_write=*/true, m);
          break;
        }
        case Op::kBarrier:
        case Op::kAccount:
          break;
        case Op::kMaskIf: {
          const WarpVal& cond = regs_[I.a];
          const LaneMask in = masks_[I.mask];
          LaneMask& tm = masks_[I.dst];
          LaneMask& em = masks_[I.b];
          tm = in;
          em = in;
          for (int l = 0; l < warp; ++l) {
            const std::size_t i = static_cast<std::size_t>(l);
            const bool taken = in[i] && cond.lanes[i] != 0.0;
            tm[i] = taken;
            em[i] = in[i] && !taken;
          }
          break;
        }
        case Op::kJumpIfNone:
          if (!AnyActive(masks_[I.mask])) {
            pc = I.jump;
            continue;
          }
          break;
        case Op::kLoopInit: {
          const WarpVal& s = regs_[I.a];
          WarpVal& d = regs_[I.dst];
          // The interpreter seeds the loop variable with lo's raw lanes (no
          // int conversion) under an int type tag.
          if (&d != &s) d.lanes = s.lanes;
          d.type = ScalarType::kInt;
          break;
        }
        case Op::kLoopHead: {
          const WarpVal& var = regs_[I.a];
          const WarpVal& hi = regs_[I.b];
          const LaneMask& in = masks_[I.mask];
          LaneMask& im = masks_[I.dst];
          im = in;
          bool any = false;
          for (int l = 0; l < warp; ++l) {
            const std::size_t i = static_cast<std::size_t>(l);
            const bool live = in[i] && var.lanes[i] <= hi.lanes[i];
            im[i] = live;
            any = any || live;
          }
          if (!any) {
            pc = I.jump;
            continue;
          }
          break;
        }
        case Op::kLoopInc: {
          WarpVal& d = regs_[I.dst];
          const LaneMask& mk = masks_[I.mask];
          for (int l = 0; l < warp; ++l) {
            const std::size_t i = static_cast<std::size_t>(l);
            if (mk[i]) d.lanes[i] += I.imm;
          }
          pc = I.jump;
          continue;
        }
      }
      ++pc;
    }
    if (executed_insns) *executed_insns += count;
    return Status::Ok();
  }

  Status LoadImage(const Insn& I, int warp) {
    const BufferBinding* buf = bind_.buffers[static_cast<std::size_t>(I.buffer)];
    if (!buf)
      return Status::Invalid(
          "unbound buffer " + ps_.buffer_names[static_cast<std::size_t>(I.buffer)]);
    Metrics* m = st_.metrics;
    WarpVal& d = regs_[I.dst];
    const LaneMask& mk = masks_[I.mask];
    const bool tex = I.sub == 1;
    const bool hardware_resolved = I.hw_bh || tex;
    int cxs[kMaxWarpWidth];
    int cys[kMaxWarpWidth];
    CoordLanes(I.cx, mk, warp, cxs);
    CoordLanes(I.cy, mk, warp, cys);
    const int bw = buf->width;
    const int bh = buf->height;
    const int stride = buf->stride;
    const float* data = buf->data;
    st_.addr_scratch.clear();
    for (int l = 0; l < warp; ++l) {
      const std::size_t i = static_cast<std::size_t>(l);
      if (!mk[i]) {
        d.lanes[i] = 0.0;
        continue;
      }
      const int cx = cxs[l];
      const int cy = cys[l];
      // In-range fast path: boundary handling (of any mode) only matters
      // for out-of-range coordinates, which even border-region warps see on
      // a minority of lanes.
      if (static_cast<unsigned>(cx) < static_cast<unsigned>(bw) &&
          static_cast<unsigned>(cy) < static_cast<unsigned>(bh)) {
        const std::uint64_t addr =
            static_cast<std::uint64_t>(cy) * stride + cx;
        d.lanes[i] = static_cast<double>(data[addr]);
        st_.addr_scratch.push_back(addr);
        continue;
      }
      // Constant mode with guards: out-of-bounds lanes are predicated off
      // and produce the constant without touching memory.
      if (I.boundary == BoundaryMode::kConstant && !I.hw_bh) {
        const bool oob_x =
            (cx < 0 && I.checks.lo_x) || (cx >= buf->width && I.checks.hi_x);
        const bool oob_y =
            (cy < 0 && I.checks.lo_y) || (cy >= buf->height && I.checks.hi_y);
        if (oob_x || oob_y) {
          d.lanes[i] = static_cast<double>(I.cvalue);
          continue;
        }
      }
      bool violation = false;
      const int rx = ResolveCoord(cx, buf->width, I.boundary, I.checks.lo_x,
                                  I.checks.hi_x, hardware_resolved, &violation);
      const int ry = ResolveCoord(cy, buf->height, I.boundary, I.checks.lo_y,
                                  I.checks.hi_y, hardware_resolved, &violation);
      if (violation) ++m->oob_violations;
      if (rx < 0 || ry < 0) {
        d.lanes[i] = static_cast<double>(I.cvalue);
        continue;
      }
      const std::uint64_t addr = static_cast<std::uint64_t>(ry) * buf->stride + rx;
      d.lanes[i] = static_cast<double>(buf->data[addr]);
      st_.addr_scratch.push_back(addr);
    }
    d.type = ScalarType::kFloat;
    if (tex)
      st_.memory.TextureAccess(st_.addr_scratch, m);
    else
      st_.memory.GlobalAccess(st_.addr_scratch, /*is_write=*/false, m);
    return Status::Ok();
  }

  static void CopyLanes(WarpVal* d, const std::array<double, kMaxWarpWidth>& src,
                        int warp) {
    for (int l = 0; l < warp; ++l) {
      const std::size_t i = static_cast<std::size_t>(l);
      d->lanes[i] = src[i];
    }
  }

  static void FillLanes(WarpVal* d, double v, int warp) {
    for (int l = 0; l < warp; ++l) d->lanes[static_cast<std::size_t>(l)] = v;
  }

  BlockState st_;
  const ProgramSet& ps_;
  BindCtx bind_;
  hw::GridDim grid_;
  // Register/mask files live in thread-local scratch reused across blocks
  // (allocating and zero-filling hundreds of WarpVals per block would
  // dominate small launches). Reuse is safe: every compiled program writes
  // a register before its first read (reads before declaration are compile
  // bail-outs), so stale lanes from a previous block are never observable.
  std::vector<WarpVal>& regs_;
  std::vector<LaneMask>& masks_;
  // Integer mirrors of the current warp's thread/global indices, refreshed
  // per warp so fused coordinate operands stay in integer arithmetic.
  std::array<int, kMaxWarpWidth> tid_xi_{}, tid_yi_{}, gid_xi_{}, gid_yi_{};
};

}  // namespace

Status RunBlockBytecode(const Launch& launch, const ProgramSet& programs,
                        const hw::DeviceSpec& device, int block_x_idx,
                        int block_y_idx, Metrics* metrics,
                        std::uint64_t* executed_insns) {
  HIPACC_CHECK(launch.kernel != nullptr && metrics != nullptr);
  return VmRunner(launch, programs, device, block_x_idx, block_y_idx, metrics)
      .Run(executed_insns);
}

}  // namespace hipacc::sim
