#include "runtime/host_exec.hpp"

#include <atomic>
#include <cstddef>
#include <vector>

#include "dsl/boundary.hpp"
#include "ast/type.hpp"
#include "support/parallel_for.hpp"
#include "support/string_utils.hpp"

namespace hipacc::runtime {
namespace {

using namespace hipacc::ast;
using sim::Coord;
using sim::CoordKind;
using sim::Insn;
using sim::Op;
using sim::Program;
using sim::ProgramSet;
using sim::VmBuiltin;

/// Pixels interpreted per dispatch of one instruction. Wider chunks amortise
/// dispatch further but grow the per-thread register file (num_regs * width
/// doubles); 256 keeps a typical kernel's file inside L1/L2.
constexpr int kLaneWidth = 256;

/// Identical to the VM's ResolveCoord minus the violation counter (the host
/// path keeps no metrics); clamp behaviour for unguarded OOB is preserved so
/// values match the simulator bit for bit.
int ResolveCoordHost(int c, int n, BoundaryMode mode, bool check_lo,
                     bool check_hi) {
  if (c >= 0 && c < n) return c;
  const bool guarded = (c < 0 && check_lo) || (c >= n && check_hi);
  if (!guarded) return c < 0 ? 0 : n - 1;  // safety-net clamp
  return dsl::ResolveBoundaryIndex(c, n, mode);
}

struct MaskBind {
  const std::vector<float>* data = nullptr;
  int width = 1;
};

struct ParamFill {
  std::uint16_t reg = 0;
  ScalarType type = ScalarType::kFloat;
  double value = 0.0;
};

// Lane loops templated on the operator, mirroring vm.cpp: the per-lane
// switch inside the shared Eval*Lane helpers constant-folds away, and
// dispatch happens once per instruction per chunk.

template <BinaryOp op, bool float_math>
void BinaryLanes(const double* a, const double* b, double* d, int n) {
  for (int l = 0; l < n; ++l)
    d[l] = sim::EvalBinaryLane(op, float_math, a[l], b[l]);
}

template <AssignOp op, bool float_math>
void AssignLanes(const double* s, double* d, const std::uint8_t* mk,
                 ScalarType to, bool convert, int n) {
  constexpr ScalarType kFolded =
      float_math ? ScalarType::kFloat : ScalarType::kInt;
  for (int l = 0; l < n; ++l) {
    if (!mk[l]) continue;
    const double rhs = convert ? sim::ConvertLaneValue(s[l], to) : s[l];
    d[l] = sim::CombineLane(kFolded, op, d[l], rhs);
  }
}

bool AnyActive(const std::uint8_t* mk, int n) {
  for (int l = 0; l < n; ++l)
    if (mk[l]) return true;
  return false;
}

/// Per-thread register / mask file reused across chunks (and across stages
/// on the same worker). Reuse is safe for the same reason as the VM's
/// scratch: compiled programs never read a register before writing it.
struct HostScratch {
  std::vector<double> regs;         // num_regs * kLaneWidth
  std::vector<ScalarType> types;    // per register
  std::vector<std::uint8_t> masks;  // num_masks * kLaneWidth
};

HostScratch& ThreadScratch() {
  static thread_local HostScratch scratch;
  return scratch;
}

/// Everything resolved once per launch and shared read-only by the row
/// workers: buffer/mask bindings in program index order and per-program
/// scalar seeds (floats pre-rounded exactly like the VM's ParamFill).
struct ExecPlan {
  const ProgramSet* ps = nullptr;
  std::vector<const sim::BufferBinding*> buffers;
  std::vector<MaskBind> masks;
  std::vector<std::vector<ParamFill>> seeds;  // parallel to ps->programs
  int width = 0;
  int height = 0;
  // Band boundaries of the nine-region pixel partition (x: [0,x1) [x1,x2)
  // [x2,W), same for y), and the program chosen for each band pair.
  int x1 = 0, x2 = 0, y1 = 0, y2 = 0;
  const Program* grid[3][3] = {};
};

constexpr Region kRegionGrid[3][3] = {
    {Region::kTopLeft, Region::kTop, Region::kTopRight},
    {Region::kLeft, Region::kInterior, Region::kRight},
    {Region::kBottomLeft, Region::kBottom, Region::kBottomRight},
};

/// Interprets one program over lanes (x0 .. x0+n-1, y). Infallible: every
/// failure mode is rejected up front by Validate / the binding pre-flight.
void ExecChunk(const ExecPlan& plan, const Program& prog,
               const std::vector<ParamFill>& seeds, int x0, int y, int n) {
  HostScratch& sc = ThreadScratch();
  const std::size_t reg_slots =
      static_cast<std::size_t>(prog.num_regs) * kLaneWidth;
  if (sc.regs.size() < reg_slots) sc.regs.resize(reg_slots);
  if (sc.types.size() < static_cast<std::size_t>(prog.num_regs))
    sc.types.resize(static_cast<std::size_t>(prog.num_regs));
  const std::size_t mask_slots =
      static_cast<std::size_t>(prog.num_masks) * kLaneWidth;
  if (sc.masks.size() < mask_slots) sc.masks.resize(mask_slots);

  double* regs = sc.regs.data();
  ScalarType* types = sc.types.data();
  std::uint8_t* masks = sc.masks.data();
  auto reg = [&](std::uint16_t r) { return regs + std::size_t{r} * kLaneWidth; };
  auto msk = [&](std::uint16_t m) { return masks + std::size_t{m} * kLaneWidth; };

  for (int l = 0; l < n; ++l) masks[l] = 1;  // slot 0: chunk active mask
  for (const ParamFill& seed : seeds) {
    double* r = reg(seed.reg);
    types[seed.reg] = seed.type;
    for (int l = 0; l < n; ++l) r[l] = seed.value;
  }

  // Coordinate materialisation, dispatching on the kind once per operand.
  // Masked-off lanes get 0 for register coordinates, like the VM: their
  // values are never used, but stale lanes must not be cast to int.
  int cxs[kLaneWidth];
  int cys[kLaneWidth];
  auto coord_lanes = [&](const Coord& c, const std::uint8_t* mk, int* out) {
    switch (c.kind) {
      case CoordKind::kReg: {
        const double* r = reg(c.reg);
        for (int l = 0; l < n; ++l) out[l] = mk[l] ? static_cast<int>(r[l]) : 0;
        break;
      }
      case CoordKind::kGidX:
        for (int l = 0; l < n; ++l) out[l] = x0 + l + c.off;
        break;
      case CoordKind::kGidY:
        for (int l = 0; l < n; ++l) out[l] = y + c.off;
        break;
      case CoordKind::kImm:
        for (int l = 0; l < n; ++l) out[l] = c.off;
        break;
      case CoordKind::kTidX:
      case CoordKind::kTidY:
        break;  // rejected by Validate
    }
  };

  const Insn* code = prog.code.data();
  const std::int32_t end = static_cast<std::int32_t>(prog.code.size());
  std::int32_t pc = 0;
  while (pc < end) {
    const Insn& I = code[pc];
    switch (I.op) {
      case Op::kConst: {
        double* d = reg(I.dst);
        types[I.dst] = I.type;
        for (int l = 0; l < n; ++l) d[l] = I.imm;
        break;
      }
      case Op::kCopy: {
        const double* s = reg(I.a);
        double* d = reg(I.dst);
        types[I.dst] = types[I.a];
        if (d != s)
          for (int l = 0; l < n; ++l) d[l] = s[l];
        break;
      }
      case Op::kConvert: {
        const double* s = reg(I.a);
        double* d = reg(I.dst);
        if (types[I.a] == I.type) {
          if (d != s)
            for (int l = 0; l < n; ++l) d[l] = s[l];
        } else {
          for (int l = 0; l < n; ++l)
            d[l] = sim::ConvertLaneValue(s[l], I.type);
        }
        types[I.dst] = I.type;
        break;
      }
      case Op::kUnary: {
        const double* s = reg(I.a);
        double* d = reg(I.dst);
        const UnaryOp op = static_cast<UnaryOp>(I.sub);
        for (int l = 0; l < n; ++l)
          d[l] = sim::EvalUnaryLane(op, I.type, s[l]);
        types[I.dst] = I.type;
        break;
      }
      case Op::kBinary: {
        const double* a = reg(I.a);
        const double* b = reg(I.b);
        double* d = reg(I.dst);
        const BinaryOp op = static_cast<BinaryOp>(I.sub);
        const bool fm = Promote(types[I.a], types[I.b]) == ScalarType::kFloat;
        switch (op) {
#define HIPACC_HOST_BINARY(name)                         \
  case BinaryOp::name:                                   \
    if (fm)                                              \
      BinaryLanes<BinaryOp::name, true>(a, b, d, n);     \
    else                                                 \
      BinaryLanes<BinaryOp::name, false>(a, b, d, n);    \
    break;
          HIPACC_HOST_BINARY(kAdd)
          HIPACC_HOST_BINARY(kSub)
          HIPACC_HOST_BINARY(kMul)
          HIPACC_HOST_BINARY(kDiv)
          HIPACC_HOST_BINARY(kMod)
          HIPACC_HOST_BINARY(kLt)
          HIPACC_HOST_BINARY(kLe)
          HIPACC_HOST_BINARY(kGt)
          HIPACC_HOST_BINARY(kGe)
          HIPACC_HOST_BINARY(kEq)
          HIPACC_HOST_BINARY(kNe)
          HIPACC_HOST_BINARY(kAnd)
          HIPACC_HOST_BINARY(kOr)
#undef HIPACC_HOST_BINARY
        }
        types[I.dst] = I.type;
        break;
      }
      case Op::kSelect: {
        const double* c = reg(I.a);
        const double* t = reg(I.b);
        const double* f = reg(I.c);
        double* d = reg(I.dst);
        for (int l = 0; l < n; ++l) {
          const double cv = c[l];
          const double tv = t[l];
          const double fv = f[l];
          d[l] = cv != 0.0 ? tv : fv;
        }
        types[I.dst] = I.type;
        break;
      }
      case Op::kCall: {
        const double* a = reg(I.a);
        const double* b = reg(I.b);
        double* d = reg(I.dst);
        const VmBuiltin fn = static_cast<VmBuiltin>(I.sub);
        for (int l = 0; l < n; ++l) d[l] = sim::EvalBuiltinLane(fn, a[l], b[l]);
        types[I.dst] = I.type;
        break;
      }
      case Op::kThreadIdx: {
        double* d = reg(I.dst);
        // Validate admits only the global-id kinds.
        if (static_cast<ThreadIndexKind>(I.sub) == ThreadIndexKind::kGlobalIdX)
          for (int l = 0; l < n; ++l) d[l] = static_cast<double>(x0 + l);
        else
          for (int l = 0; l < n; ++l) d[l] = static_cast<double>(y);
        types[I.dst] = ScalarType::kInt;
        break;
      }
      case Op::kAssign: {
        const double* s = reg(I.a);
        double* d = reg(I.dst);
        const AssignOp op = static_cast<AssignOp>(I.sub);
        const std::uint8_t* mk = msk(I.mask);
        const bool convert = types[I.a] != I.type;
        const bool fm = I.type == ScalarType::kFloat;
        switch (op) {
#define HIPACC_HOST_ASSIGN(name)                                          \
  case AssignOp::name:                                                    \
    if (fm)                                                               \
      AssignLanes<AssignOp::name, true>(s, d, mk, I.type, convert, n);    \
    else                                                                  \
      AssignLanes<AssignOp::name, false>(s, d, mk, I.type, convert, n);   \
    break;
          HIPACC_HOST_ASSIGN(kAssign)
          HIPACC_HOST_ASSIGN(kAddAssign)
          HIPACC_HOST_ASSIGN(kSubAssign)
          HIPACC_HOST_ASSIGN(kMulAssign)
          HIPACC_HOST_ASSIGN(kDivAssign)
#undef HIPACC_HOST_ASSIGN
        }
        break;
      }
      case Op::kLoadImage: {
        const sim::BufferBinding* buf =
            plan.buffers[static_cast<std::size_t>(I.buffer)];
        double* d = reg(I.dst);
        const int bw = buf->width;
        const int bh = buf->height;
        const int stride = buf->stride;
        const float* data = buf->data;
        // Whole-chunk fast path for the ubiquitous gid+offset addressing
        // when every lane is in range: one contiguous widening copy.
        if (I.mask == 0 && I.cx.kind == CoordKind::kGidX &&
            I.cy.kind == CoordKind::kGidY) {
          const int ry = y + I.cy.off;
          const int rx = x0 + I.cx.off;
          if (ry >= 0 && ry < bh && rx >= 0 && rx + n <= bw) {
            const float* src = data + static_cast<std::size_t>(ry) * stride + rx;
            for (int l = 0; l < n; ++l) d[l] = static_cast<double>(src[l]);
            types[I.dst] = ScalarType::kFloat;
            break;
          }
        }
        const std::uint8_t* mk = msk(I.mask);
        coord_lanes(I.cx, mk, cxs);
        coord_lanes(I.cy, mk, cys);
        for (int l = 0; l < n; ++l) {
          if (!mk[l]) {
            d[l] = 0.0;
            continue;
          }
          const int cx = cxs[l];
          const int cy = cys[l];
          if (static_cast<unsigned>(cx) < static_cast<unsigned>(bw) &&
              static_cast<unsigned>(cy) < static_cast<unsigned>(bh)) {
            d[l] = static_cast<double>(
                data[static_cast<std::size_t>(cy) * stride + cx]);
            continue;
          }
          if (I.boundary == BoundaryMode::kConstant) {
            const bool oob_x =
                (cx < 0 && I.checks.lo_x) || (cx >= bw && I.checks.hi_x);
            const bool oob_y =
                (cy < 0 && I.checks.lo_y) || (cy >= bh && I.checks.hi_y);
            if (oob_x || oob_y) {
              d[l] = static_cast<double>(I.cvalue);
              continue;
            }
          }
          const int rx = ResolveCoordHost(cx, bw, I.boundary, I.checks.lo_x,
                                          I.checks.hi_x);
          const int ry = ResolveCoordHost(cy, bh, I.boundary, I.checks.lo_y,
                                          I.checks.hi_y);
          if (rx < 0 || ry < 0) {
            d[l] = static_cast<double>(I.cvalue);
            continue;
          }
          d[l] = static_cast<double>(
              data[static_cast<std::size_t>(ry) * stride + rx]);
        }
        types[I.dst] = ScalarType::kFloat;
        break;
      }
      case Op::kLoadConst: {
        const MaskBind& mb = plan.masks[static_cast<std::size_t>(I.buffer)];
        double* d = reg(I.dst);
        // Mask coefficients are almost always read at literal window
        // offsets: a single broadcast per instruction.
        if (I.cx.kind == CoordKind::kImm && I.cy.kind == CoordKind::kImm) {
          const std::size_t addr =
              static_cast<std::size_t>(I.cy.off) * mb.width + I.cx.off;
          const double v = addr < mb.data->size()
                               ? static_cast<double>((*mb.data)[addr])
                               : 0.0;
          const std::uint8_t* mk = msk(I.mask);
          for (int l = 0; l < n; ++l) d[l] = mk[l] ? v : 0.0;
          types[I.dst] = ScalarType::kFloat;
          break;
        }
        const std::uint8_t* mk = msk(I.mask);
        coord_lanes(I.cx, mk, cxs);
        coord_lanes(I.cy, mk, cys);
        for (int l = 0; l < n; ++l) {
          if (!mk[l]) {
            d[l] = 0.0;
            continue;
          }
          const std::size_t addr =
              static_cast<std::size_t>(cys[l]) * mb.width + cxs[l];
          d[l] = addr < mb.data->size() ? static_cast<double>((*mb.data)[addr])
                                        : 0.0;
        }
        types[I.dst] = ScalarType::kFloat;
        break;
      }
      case Op::kStore: {
        const sim::BufferBinding* buf =
            plan.buffers[static_cast<std::size_t>(I.buffer)];
        const double* v = reg(I.a);
        if (I.mask == 0 && I.cx.kind == CoordKind::kGidX &&
            I.cy.kind == CoordKind::kGidY) {
          const int py = y + I.cy.off;
          const int px = x0 + I.cx.off;
          if (py >= 0 && py < buf->height && px >= 0 &&
              px + n <= buf->width) {
            float* dst =
                buf->data + static_cast<std::size_t>(py) * buf->stride + px;
            for (int l = 0; l < n; ++l) dst[l] = static_cast<float>(v[l]);
            break;
          }
        }
        const std::uint8_t* mk = msk(I.mask);
        coord_lanes(I.cx, mk, cxs);
        coord_lanes(I.cy, mk, cys);
        for (int l = 0; l < n; ++l) {
          if (!mk[l]) continue;
          const int px = cxs[l];
          const int py = cys[l];
          if (px < 0 || px >= buf->width || py < 0 || py >= buf->height)
            continue;
          buf->data[static_cast<std::size_t>(py) * buf->stride + px] =
              static_cast<float>(v[l]);
        }
        break;
      }
      case Op::kBarrier:
      case Op::kAccount:
        break;
      case Op::kLoadShared:
        break;  // rejected by Validate
      case Op::kMaskIf: {
        const double* cond = reg(I.a);
        const std::uint8_t* in = msk(I.mask);
        std::uint8_t* tm = msk(I.dst);
        std::uint8_t* em = msk(I.b);
        for (int l = 0; l < n; ++l) {
          const bool taken = in[l] && cond[l] != 0.0;
          const bool active = in[l] != 0;
          tm[l] = taken;
          em[l] = active && !taken;
        }
        break;
      }
      case Op::kJumpIfNone:
        if (!AnyActive(msk(I.mask), n)) {
          pc = I.jump;
          continue;
        }
        break;
      case Op::kLoopInit: {
        const double* s = reg(I.a);
        double* d = reg(I.dst);
        if (d != s)
          for (int l = 0; l < n; ++l) d[l] = s[l];
        types[I.dst] = ScalarType::kInt;
        break;
      }
      case Op::kLoopHead: {
        const double* var = reg(I.a);
        const double* hi = reg(I.b);
        const std::uint8_t* in = msk(I.mask);
        std::uint8_t* im = msk(I.dst);
        bool any = false;
        for (int l = 0; l < n; ++l) {
          const bool live = in[l] && var[l] <= hi[l];
          im[l] = live;
          any = any || live;
        }
        if (!any) {
          pc = I.jump;
          continue;
        }
        break;
      }
      case Op::kLoopInc: {
        double* d = reg(I.dst);
        const std::uint8_t* mk = msk(I.mask);
        for (int l = 0; l < n; ++l)
          if (mk[l]) d[l] += I.imm;
        pc = I.jump;
        continue;
      }
    }
    ++pc;
  }
}

/// Rejects programs whose host execution could diverge from the simulator:
/// scratchpad staging (tile contents depend on the block shape), texture or
/// hardware-resolved boundary handling, and any thread/block-shape dependent
/// index. Pure value computations pass.
Status ValidateProgram(const Program& prog, const std::string& kernel) {
  auto unsupported = [&](const char* what) {
    return Status::Unimplemented(
        StrFormat("host executor: kernel '%s' uses %s",
                           kernel.c_str(), what));
  };
  for (const Insn& I : prog.code) {
    if (I.op == Op::kLoadShared) return unsupported("scratchpad staging");
    if (I.op == Op::kLoadImage && (I.sub == 1 || I.hw_bh))
      return unsupported("texture/hardware boundary handling");
    if (I.op == Op::kThreadIdx) {
      const ThreadIndexKind kind = static_cast<ThreadIndexKind>(I.sub);
      if (kind != ThreadIndexKind::kGlobalIdX &&
          kind != ThreadIndexKind::kGlobalIdY)
        return unsupported("block-shape dependent thread indexing");
    }
    for (const Coord* c : {&I.cx, &I.cy})
      if (c->kind == CoordKind::kTidX || c->kind == CoordKind::kTidY)
        return unsupported("thread-local coordinates");
  }
  return Status::Ok();
}

/// Builds the band partition and per-band program table. With a single
/// program variant the whole image is one band; otherwise the halo cuts
/// three bands per axis and each band pair maps to its Figure 3 region.
Status PlanRegions(const ProgramSet& ps, int width, int height, int halo_x,
                   int halo_y, ExecPlan* plan) {
  // PPT kernels map one thread to several pixels; the host executor's
  // one-virtual-thread-per-pixel iteration cannot reproduce that (the
  // interior variants carry no rejectable node, so gate on the set itself).
  if (ps.ppt > 1)
    return Status::Unimplemented(StrFormat(
        "host executor: kernel '%s' uses %d pixels per thread",
        ps.kernel_name.c_str(), ps.ppt));
  if (ps.programs.size() == 1) {
    plan->x1 = 0;
    plan->x2 = width;
    plan->y1 = 0;
    plan->y2 = height;
    for (auto& row : plan->grid)
      for (auto& cell : row) cell = &ps.programs.front();
    return ValidateProgram(ps.programs.front(), ps.kernel_name);
  }
  if (halo_x < 0 || halo_y < 0 || width < 2 * halo_x || height < 2 * halo_y)
    return Status::Unimplemented(StrFormat(
        "host executor: %dx%d image smaller than twice the %dx%d halo",
        width, height, halo_x, halo_y));
  plan->x1 = halo_x;
  plan->x2 = width - halo_x;
  plan->y1 = halo_y;
  plan->y2 = height - halo_y;
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      const Program* prog = ps.Find(kRegionGrid[r][c]);
      if (prog == nullptr)
        return Status::Unimplemented(StrFormat(
            "host executor: kernel '%s' has no %s program",
            ps.kernel_name.c_str(), to_string(kRegionGrid[r][c])));
      HIPACC_RETURN_IF_ERROR(ValidateProgram(*prog, ps.kernel_name));
      plan->grid[r][c] = prog;
    }
  }
  return Status::Ok();
}

Status BindLaunch(const sim::Launch& launch, const ProgramSet& ps,
                  ExecPlan* plan) {
  plan->buffers.reserve(ps.buffer_names.size());
  for (const auto& name : ps.buffer_names)
    plan->buffers.push_back(launch.FindBuffer(name));
  plan->masks.reserve(ps.const_masks.size());
  for (const auto& ref : ps.const_masks) {
    MaskBind mb;
    const auto it = launch.const_masks.find(ref.name);
    if (it != launch.const_masks.end()) mb.data = &it->second;
    mb.width = ref.width;
    plan->masks.push_back(mb);
  }
  plan->seeds.resize(ps.programs.size());
  for (std::size_t p = 0; p < ps.programs.size(); ++p) {
    const Program& prog = ps.programs[p];
    auto& seeds = plan->seeds[p];
    seeds.reserve(prog.params.size());
    for (const auto& param : prog.params) {
      const auto it = launch.scalar_args.find(param.name);
      const double v = it != launch.scalar_args.end() ? it->second : 0.0;
      seeds.push_back(ParamFill{
          param.reg, param.type,
          param.type == ScalarType::kFloat
              ? static_cast<double>(static_cast<float>(v))
              : v});
    }
    // The VM binds lazily and errors when an instruction touches a missing
    // buffer; the host path front-loads the same checks so the row workers
    // are infallible.
    for (const Insn& I : prog.code) {
      if (I.op == Op::kLoadImage || I.op == Op::kStore) {
        const sim::BufferBinding* buf =
            plan->buffers[static_cast<std::size_t>(I.buffer)];
        if (buf == nullptr)
          return Status::Invalid(
              "unbound buffer " +
              ps.buffer_names[static_cast<std::size_t>(I.buffer)]);
        if (I.op == Op::kStore && !buf->writable)
          return Status::Invalid(
              "write to read-only buffer " +
              ps.buffer_names[static_cast<std::size_t>(I.buffer)]);
      } else if (I.op == Op::kLoadConst) {
        if (plan->masks[static_cast<std::size_t>(I.buffer)].data == nullptr)
          return Status::Invalid(
              "unbound constant mask " +
              ps.const_masks[static_cast<std::size_t>(I.buffer)].name);
      }
    }
  }
  return Status::Ok();
}

void ExecRow(const ExecPlan& plan, int y) {
  const int row = y < plan.y1 ? 0 : (y < plan.y2 ? 1 : 2);
  const ProgramSet& ps = *plan.ps;
  const int xs[4] = {0, plan.x1, plan.x2, plan.width};
  for (int col = 0; col < 3; ++col) {
    const Program* prog = plan.grid[row][col];
    const std::size_t prog_index =
        static_cast<std::size_t>(prog - ps.programs.data());
    const auto& seeds = plan.seeds[prog_index];
    for (int x0 = xs[col]; x0 < xs[col + 1]; x0 += kLaneWidth) {
      const int n = std::min(kLaneWidth, xs[col + 1] - x0);
      ExecChunk(plan, *prog, seeds, x0, y, n);
    }
  }
}

}  // namespace

bool HostExecSupports(const ProgramSet& programs, int width, int height,
                      int halo_x, int halo_y) {
  if (programs.programs.empty()) return false;
  ExecPlan plan;
  return PlanRegions(programs, width, height, halo_x, halo_y, &plan).ok();
}

Status RunOnHost(const sim::Launch& launch, int halo_x, int halo_y,
                 const HostExecOptions& options) {
  if (launch.programs == nullptr || launch.programs->programs.empty())
    return Status::Unimplemented(
        "host executor: launch carries no bytecode programs");
  const ProgramSet& ps = *launch.programs;
  ExecPlan plan;
  plan.ps = &ps;
  plan.width = launch.width;
  plan.height = launch.height;
  HIPACC_RETURN_IF_ERROR(
      PlanRegions(ps, launch.width, launch.height, halo_x, halo_y, &plan));
  HIPACC_RETURN_IF_ERROR(BindLaunch(launch, ps, &plan));
  ParallelFor(
      0, launch.height, [&plan](int y) { ExecRow(plan, y); },
      options.threads > 0 ? static_cast<unsigned>(options.threads) : 0);
  return Status::Ok();
}

}  // namespace hipacc::runtime
