// Ablation: filter-mask placement (Section IV-C). Compares recomputing the
// closeness weights per tap (no Mask), a Mask in constant memory (static and
// dynamic initialisation), and a Mask read from global memory. Constant
// memory broadcasts uniform warp accesses, so it should win; recomputation
// pays two transcendentals per tap.
#include <cstdio>

#include "common/table.hpp"
#include "compiler/executable.hpp"
#include "hwmodel/device_db.hpp"
#include "ops/kernel_sources.hpp"
#include "ops/masks.hpp"


using namespace hipacc;

namespace {

Result<double> Measure(const frontend::KernelSource& source,
                       bool masks_in_const, const hw::DeviceSpec& device,
                       int n, int sigma_d) {
  compiler::CompileOptions copts;
  copts.codegen.masks_in_constant_memory = masks_in_const;
  copts.device = device;
  copts.image_width = n;
  copts.image_height = n;
  copts.forced_config = hw::KernelConfig{128, 1};
  Result<compiler::CompiledKernel> compiled = compiler::Compile(source, copts);
  if (!compiled.ok()) return compiled.status();
  dsl::Image<float> in(n, n), out(n, n);
  runtime::BindingSet bindings;
  bindings.Input("Input", in)
      .Output(out)
      .Scalar("sigma_d", sigma_d)
      .Scalar("sigma_r", 5)
      .MaskValues("CMask", ops::BilateralClosenessMask(sigma_d));
  compiler::SimulatedExecutable exe(std::move(compiled).take(), device);
  Result<sim::LaunchStats> stats = exe.Run(bindings);
  if (!stats.ok()) return stats.status();
  // Full execution here (not sampled): also validates const vs global mask
  // reads produce identical pixels.
  return stats.value().timing.total_ms;
}

}  // namespace

int main(int argc, char** argv) {
  hipacc::support::CliParser cli =
      hipacc::bench::MakeBenchCli("ablation_mask", "Ablation: constant-memory vs global-memory masks");
  if (const int code = cli.HandleArgs(argc, argv); code >= 0) return code;

  const int n = 512;  // full (non-sampled) execution; keep the grid moderate
  const int sigma_d = 3;
  std::printf(
      "Ablation: mask placement, bilateral 13x13 on %dx%d, Tesla C2050, "
      "CUDA, config 128x1. Times in ms (modelled).\n\n",
      n, n);

  bench::Table table({"time_ms"});
  const auto mode = ast::BoundaryMode::kClamp;

  table.Row("recomputed per tap (no Mask)");
  auto r1 = Measure(ops::BilateralSource(sigma_d, mode), true,
                    hw::TeslaC2050(), n, sigma_d);
  r1.ok() ? table.Cell(r1.value()) : table.Cell(std::string("error"));

  table.Row("Mask, static constant memory");
  auto r2 = Measure(ops::BilateralMaskSource(sigma_d, mode, true), true,
                    hw::TeslaC2050(), n, sigma_d);
  r2.ok() ? table.Cell(r2.value()) : table.Cell(std::string("error"));

  table.Row("Mask, dynamic constant memory");
  auto r3 = Measure(ops::BilateralMaskSource(sigma_d, mode, false), true,
                    hw::TeslaC2050(), n, sigma_d);
  r3.ok() ? table.Cell(r3.value()) : table.Cell(std::string("error"));

  table.Row("Mask in global memory");
  auto r4 = Measure(ops::BilateralMaskSource(sigma_d, mode, false), false,
                    hw::TeslaC2050(), n, sigma_d);
  r4.ok() ? table.Cell(r4.value()) : table.Cell(std::string("error"));

  std::printf("%s\n", table.Render("mask placement").c_str());
  return 0;
}
