#include <gtest/gtest.h>

#include "ast/printer.hpp"
#include "ast/visitor.hpp"

namespace hipacc::ast {
namespace {

TEST(PrinterTest, ExpressionForms) {
  EXPECT_EQ(PrintExpr(IntLit(3)), "3");
  EXPECT_EQ(PrintExpr(FloatLit(1.5)), "1.5f");
  EXPECT_EQ(PrintExpr(FloatLit(2.0)), "2.0f");
  EXPECT_EQ(PrintExpr(BoolLit(true)), "true");
  EXPECT_EQ(PrintExpr(VarRef("d", ScalarType::kFloat)), "d");
  EXPECT_EQ(PrintExpr(Binary(BinaryOp::kAdd, IntLit(1), IntLit(2))), "(1 + 2)");
  EXPECT_EQ(PrintExpr(Unary(UnaryOp::kNeg, VarRef("x", ScalarType::kFloat))),
            "-(x)");
  EXPECT_EQ(PrintExpr(Cast(ScalarType::kFloat, IntLit(1))), "(float)(1)");
  EXPECT_EQ(PrintExpr(Call("exp", {FloatLit(1.0)}, ScalarType::kFloat)),
            "exp(1.0f)");
  EXPECT_EQ(PrintExpr(AccessorRead("Input", IntLit(-1), IntLit(0))),
            "Input(-1, 0)");
  EXPECT_EQ(PrintExpr(IterIndex(false)), "x()");
  EXPECT_EQ(PrintExpr(ThreadIndex(ThreadIndexKind::kGlobalIdX)), "gid_x");
}

TEST(PrinterTest, MemReadShowsSpaceModeAndGuards) {
  const ExprPtr read =
      MemRead(MemSpace::kTexture, "IN", IntLit(0), IntLit(1),
              BoundaryMode::kClamp, {true, false, false, true});
  const std::string text = PrintExpr(read);
  EXPECT_NE(text.find("texture_read"), std::string::npos);
  EXPECT_NE(text.find("clamp"), std::string::npos);
  EXPECT_NE(text.find("lx"), std::string::npos);
  EXPECT_NE(text.find("hy"), std::string::npos);
}

TEST(PrinterTest, StatementsRoundTripStructure) {
  const StmtPtr body = Block({
      Decl(ScalarType::kFloat, "d", FloatLit(0.0)),
      For("i", IntLit(0), IntLit(3), 1,
          Block({Assign("d", AssignOp::kAddAssign,
                        VarRef("i", ScalarType::kInt))})),
      OutputAssign(VarRef("d", ScalarType::kFloat)),
  });
  const std::string text = PrintStmt(body);
  EXPECT_NE(text.find("float d = 0.0f;"), std::string::npos);
  EXPECT_NE(text.find("for (int i = 0; i <= 3; i += 1) {"), std::string::npos);
  EXPECT_NE(text.find("d += i;"), std::string::npos);
  EXPECT_NE(text.find("output() = d;"), std::string::npos);
}

TEST(VisitorTest, VisitExprsReachesAllNodes) {
  const ExprPtr tree =
      Binary(BinaryOp::kMul, Binary(BinaryOp::kAdd, IntLit(1), IntLit(2)),
             Call("exp", {VarRef("x", ScalarType::kFloat)}, ScalarType::kFloat));
  int count = 0;
  VisitExprs(tree, [&count](const Expr&) { ++count; });
  EXPECT_EQ(count, 6);  // mul, add, 1, 2, call, x
}

TEST(VisitorTest, VisitExprsCoversStatementSlots) {
  const StmtPtr stmt =
      For("i", IntLit(0), VarRef("n", ScalarType::kInt), 1,
          Block({If(Binary(BinaryOp::kLt, VarRef("i", ScalarType::kInt),
                           IntLit(2)),
                    Block({}))}));
  int var_refs = 0;
  VisitExprs(stmt, [&var_refs](const Expr& e) {
    if (e.kind == ExprKind::kVarRef) ++var_refs;
  });
  EXPECT_EQ(var_refs, 2);  // n in bound, i in condition
}

TEST(VisitorTest, RewriteReplacesMatchesBottomUp) {
  const ExprPtr tree =
      Binary(BinaryOp::kAdd, VarRef("a", ScalarType::kInt), IntLit(1));
  const ExprPtr rewritten = RewriteExpr(tree, [](const Expr& e) -> ExprPtr {
    if (e.kind == ExprKind::kVarRef && e.name == "a") return IntLit(41);
    return nullptr;
  });
  EXPECT_EQ(PrintExpr(rewritten), "(41 + 1)");
  // Original untouched (persistent tree).
  EXPECT_EQ(PrintExpr(tree), "(a + 1)");
}

TEST(VisitorTest, RewriteSharesUntouchedSubtrees) {
  const ExprPtr left = Binary(BinaryOp::kAdd, IntLit(1), IntLit(2));
  const ExprPtr tree = Binary(BinaryOp::kMul, left, VarRef("b", ScalarType::kInt));
  const ExprPtr rewritten = RewriteExpr(tree, [](const Expr& e) -> ExprPtr {
    if (e.kind == ExprKind::kVarRef) return IntLit(0);
    return nullptr;
  });
  EXPECT_EQ(rewritten->args[0], left);  // untouched subtree shared, not cloned
}

TEST(VisitorTest, RewriteStmtExprsRebuildsOnlyChanged) {
  const StmtPtr stmt = Block({
      Assign("d", AssignOp::kAssign, VarRef("x", ScalarType::kFloat)),
      Assign("e", AssignOp::kAssign, IntLit(1)),
  });
  const StmtPtr rewritten = RewriteStmtExprs(stmt, [](const Expr& e) -> ExprPtr {
    if (e.kind == ExprKind::kVarRef) return FloatLit(9.0);
    return nullptr;
  });
  EXPECT_NE(rewritten, stmt);
  EXPECT_EQ(rewritten->body[1], stmt->body[1]);  // unchanged child shared
  EXPECT_EQ(rewritten->body[0]->value->kind, ExprKind::kFloatLit);
}

}  // namespace
}  // namespace hipacc::ast
