// Hardware model: device database, occupancy calculation (register
// allocation strategies, granularities, limiters), grids and region bands.
#include <gtest/gtest.h>

#include "hwmodel/config.hpp"
#include "hwmodel/device_db.hpp"
#include "hwmodel/occupancy.hpp"

namespace hipacc::hw {
namespace {

TEST(DeviceDbTest, ContainsEvaluationCards) {
  for (const char* name : {"Tesla C2050", "Quadro FX 5800", "Radeon HD 5870",
                           "Radeon HD 6970"}) {
    auto device = FindDevice(name);
    ASSERT_TRUE(device.ok()) << name;
    EXPECT_EQ(device.value().name, name);
  }
  EXPECT_FALSE(FindDevice("GeForce 256").ok());
}

TEST(DeviceDbTest, ArchitecturalFactsFromThePaper) {
  // "on graphics cards from AMD, the maximal number of threads that can be
  // mapped to one SIMD unit is 256, while this limit is either 512, 768, or
  // 1024 on graphics cards from NVIDIA" (Section V-C).
  EXPECT_EQ(RadeonHd5870().max_threads_per_block, 256);
  EXPECT_EQ(RadeonHd6970().max_threads_per_block, 256);
  EXPECT_EQ(TeslaC2050().max_threads_per_block, 1024);
  EXPECT_EQ(QuadroFx5800().max_threads_per_block, 512);
  // VLIW architectures (Section II / VI-A).
  EXPECT_EQ(RadeonHd5870().isa, CoreIsa::kVliw5);
  EXPECT_EQ(RadeonHd6970().isa, CoreIsa::kVliw4);
  EXPECT_EQ(RadeonHd5870().vliw_lanes(), 5);
  // Register allocation strategy differs between CC 1.x and 2.x.
  EXPECT_TRUE(QuadroFx5800().regs_allocated_per_block);
  EXPECT_FALSE(TeslaC2050().regs_allocated_per_block);
}

TEST(OccupancyTest, FullOccupancyWhenNothingLimits) {
  const DeviceSpec device = TeslaC2050();
  KernelResources res;
  res.regs_per_thread = 16;
  const OccupancyResult occ = ComputeOccupancy(device, {32, 6}, res);
  ASSERT_TRUE(occ.valid);
  EXPECT_EQ(occ.blocks_per_sm, 8);
  EXPECT_EQ(occ.active_warps, 48);
  EXPECT_DOUBLE_EQ(occ.occupancy, 1.0);
}

TEST(OccupancyTest, RegistersLimitResidency) {
  const DeviceSpec device = TeslaC2050();
  KernelResources res;
  res.regs_per_thread = 40;  // 40*32 = 1280 regs/warp -> 25 warps max
  const OccupancyResult occ = ComputeOccupancy(device, {32, 8}, res);
  ASSERT_TRUE(occ.valid);
  EXPECT_EQ(occ.limiter, OccupancyLimiter::kRegisters);
  EXPECT_LT(occ.occupancy, 0.75);
}

TEST(OccupancyTest, BlockCountLimitsSmallBlocks) {
  KernelResources res;
  res.regs_per_thread = 8;
  const OccupancyResult occ = ComputeOccupancy(TeslaC2050(), {32, 1}, res);
  ASSERT_TRUE(occ.valid);
  EXPECT_EQ(occ.limiter, OccupancyLimiter::kBlocks);
  EXPECT_EQ(occ.active_warps, 8);  // 8 blocks x 1 warp
}

TEST(OccupancyTest, SharedMemoryLimits) {
  const DeviceSpec device = QuadroFx5800();  // 16 KB per SM
  KernelResources res;
  res.regs_per_thread = 10;
  res.smem_static_bytes = 6 * 1024;
  const OccupancyResult occ = ComputeOccupancy(device, {64, 2}, res);
  ASSERT_TRUE(occ.valid);
  EXPECT_EQ(occ.limiter, OccupancyLimiter::kSharedMemory);
  EXPECT_EQ(occ.blocks_per_sm, 2);
}

TEST(OccupancyTest, SmemTileGrowsWithConfig) {
  KernelResources res;
  res.smem_tile = true;
  res.smem_halo_x = 6;
  res.smem_halo_y = 6;
  // (32 + 12 + 1) x (4 + 12) x 4 B = 2880 B.
  EXPECT_EQ(res.SmemBytesPerBlock({32, 4}), 45 * 16 * 4);
  EXPECT_GT(res.SmemBytesPerBlock({64, 4}), res.SmemBytesPerBlock({32, 4}));
}

TEST(OccupancyTest, InvalidConfigurations) {
  KernelResources res;
  // Too many threads per block.
  EXPECT_FALSE(ComputeOccupancy(RadeonHd5870(), {32, 16}, res).valid);
  EXPECT_FALSE(ComputeOccupancy(TeslaC2050(), {1024, 2}, res).valid);
  // Shared memory cannot fit a single block.
  KernelResources big;
  big.smem_static_bytes = 64 * 1024;
  EXPECT_FALSE(ComputeOccupancy(TeslaC2050(), {128, 1}, big).valid);
  // Registers cannot fit a single block.
  KernelResources greedy;
  greedy.regs_per_thread = 200;
  EXPECT_FALSE(ComputeOccupancy(QuadroFx5800(), {512, 1}, greedy).valid);
}

TEST(OccupancyTest, PerBlockRegisterGranularityOnCc1x) {
  // CC 1.x rounds register allocation to warp pairs and 512-register
  // granularity — a kernel just over a boundary loses a whole block.
  const DeviceSpec device = QuadroFx5800();
  KernelResources res;
  res.regs_per_thread = 16;  // 16*32*2(pair) = 1024 regs per 64-thread block
  const OccupancyResult at16 = ComputeOccupancy(device, {64, 1}, res);
  res.regs_per_thread = 17;
  const OccupancyResult at17 = ComputeOccupancy(device, {64, 1}, res);
  ASSERT_TRUE(at16.valid && at17.valid);
  EXPECT_GE(at16.blocks_per_sm, at17.blocks_per_sm);
}

TEST(GridTest, CeilDivCoverage) {
  const GridDim grid = ComputeGrid({128, 1}, 4096, 4096);
  EXPECT_EQ(grid.blocks_x, 32);
  EXPECT_EQ(grid.blocks_y, 4096);
  const GridDim uneven = ComputeGrid({32, 6}, 100, 100);
  EXPECT_EQ(uneven.blocks_x, 4);   // 100/32 -> 4
  EXPECT_EQ(uneven.blocks_y, 17);  // 100/6 -> 17
}

TEST(RegionGridTest, BandsCoverExactlyTheGuardedPixels) {
  const RegionGrid rg = ComputeRegionGrid({32, 6}, 4096, 4096, {6, 6});
  EXPECT_EQ(rg.band_left, 1);
  EXPECT_EQ(rg.band_top, 1);
  EXPECT_EQ(rg.band_right, 1);
  // 683 block rows of 6 cover 4098 > 4096: the partial trailing row plus one
  // full row hold all pixels within 6 of the bottom edge.
  EXPECT_EQ(rg.band_bottom, 2);
}

TEST(RegionGridTest, RegionOfMatchesFigure3Layout) {
  const RegionGrid rg = ComputeRegionGrid({32, 32}, 1024, 1024, {6, 6});
  using ast::Region;
  EXPECT_EQ(rg.RegionOf(0, 0), Region::kTopLeft);
  EXPECT_EQ(rg.RegionOf(5, 0), Region::kTop);
  EXPECT_EQ(rg.RegionOf(rg.grid.blocks_x - 1, 0), Region::kTopRight);
  EXPECT_EQ(rg.RegionOf(0, 5), Region::kLeft);
  EXPECT_EQ(rg.RegionOf(5, 5), Region::kInterior);
  EXPECT_EQ(rg.RegionOf(rg.grid.blocks_x - 1, 5), Region::kRight);
  EXPECT_EQ(rg.RegionOf(0, rg.grid.blocks_y - 1), Region::kBottomLeft);
  EXPECT_EQ(rg.RegionOf(5, rg.grid.blocks_y - 1), Region::kBottom);
  EXPECT_EQ(rg.RegionOf(rg.grid.blocks_x - 1, rg.grid.blocks_y - 1),
            Region::kBottomRight);
}

TEST(RegionGridTest, NoWindowMeansNoBands) {
  const RegionGrid rg = ComputeRegionGrid({128, 1}, 512, 512, {0, 0});
  EXPECT_EQ(rg.band_left + rg.band_right + rg.band_top + rg.band_bottom, 0);
  EXPECT_EQ(rg.BorderThreads(), 0);
}

// Property: every pixel within `half` of an image edge must belong to a
// block whose region carries the guards for that edge.
TEST(RegionGridTest, GuardCoverageProperty) {
  for (const int width : {33, 61, 128, 255}) {
    for (const int bx : {8, 32, 128}) {
      for (const int half : {1, 3, 6}) {
        if (2 * half >= width) continue;
        const RegionGrid rg =
            ComputeRegionGrid({bx, 4}, width, width, {half, half});
        if (rg.degenerate()) continue;  // rejected at launch validation
        for (int x = 0; x < width; ++x) {
          const int block = x / bx;
          const ast::RegionChecks checks =
              ast::ChecksFor(rg.RegionOf(block, rg.grid.blocks_y / 2));
          if (x - half < 0) {
            ASSERT_TRUE(checks.lo_x) << "x=" << x << " bx=" << bx
                                     << " half=" << half << " w=" << width;
          }
          if (x + half >= width) {
            ASSERT_TRUE(checks.hi_x) << "x=" << x << " bx=" << bx
                                     << " half=" << half << " w=" << width;
          }
        }
      }
    }
  }
}

TEST(RegionGridTest, DegenerateWhenBandsOverlap) {
  // A 33-wide image with 128-wide blocks: one block column is both the left
  // and the right band — the nine regions cannot guard it.
  EXPECT_TRUE(ComputeRegionGrid({128, 4}, 33, 256, {6, 6}).degenerate());
  // Window wider than the interior of a block column.
  EXPECT_TRUE(ComputeRegionGrid({8, 8}, 12, 256, {6, 0}).degenerate());
  // Comfortable case.
  EXPECT_FALSE(ComputeRegionGrid({32, 4}, 256, 256, {6, 6}).degenerate());
}

TEST(EnumerateConfigsTest, AllSimdMultiplesWithinLimits) {
  const DeviceSpec device = TeslaC2050();
  const auto configs = EnumerateConfigs(device);
  EXPECT_FALSE(configs.empty());
  for (const auto& config : configs) {
    EXPECT_EQ(config.threads() % device.simd_width, 0);
    EXPECT_LE(config.threads(), device.max_threads_per_block);
    EXPECT_GE(config.block_x, device.simd_width / 4);
  }
  // 128x1, 32x6, 32x4 are all present.
  auto has = [&](int bx, int by) {
    for (const auto& c : configs)
      if (c.block_x == bx && c.block_y == by) return true;
    return false;
  };
  EXPECT_TRUE(has(128, 1));
  EXPECT_TRUE(has(32, 6));
  EXPECT_TRUE(has(32, 4));
}

}  // namespace
}  // namespace hipacc::hw
