file(REMOVE_RECURSE
  "CMakeFiles/multiresolution.dir/multiresolution.cpp.o"
  "CMakeFiles/multiresolution.dir/multiresolution.cpp.o.d"
  "multiresolution"
  "multiresolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiresolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
