#include "compiler/explore.hpp"

#include <algorithm>

namespace hipacc::compiler {

Result<std::vector<ExplorePoint>> ExploreConfigurations(
    const CompiledKernel& kernel, const hw::DeviceSpec& device,
    const runtime::BindingSet& bindings) {
  if (!bindings.output()) return Status::Invalid("no output image bound");
  const int width = bindings.output()->width();
  const int height = bindings.output()->height();

  hw::HeuristicInput input;
  input.device = device;
  input.resources = kernel.resources;
  input.border_handling = kernel.device_ir.has_boundary_variants();
  input.window = kernel.device_ir.bh_window;
  input.image_width = width;
  input.image_height = height;

  SimulatedExecutable exe(kernel, device);
  std::vector<ExplorePoint> points;
  for (const hw::HeuristicChoice& candidate : hw::ExploreConfigs(input)) {
    Result<sim::LaunchStats> stats = exe.Measure(bindings, candidate.config);
    if (!stats.ok()) continue;  // invalid at launch time: skip, like nvcc
    ExplorePoint point;
    point.config = candidate.config;
    point.occupancy = candidate.occupancy.occupancy;
    point.border_threads = candidate.border_threads;
    point.ms = stats.value().timing.total_ms;
    points.push_back(point);
  }
  std::sort(points.begin(), points.end(),
            [](const ExplorePoint& a, const ExplorePoint& b) {
              if (a.config.threads() != b.config.threads())
                return a.config.threads() < b.config.threads();
              return a.config.block_x < b.config.block_x;
            });
  return points;
}

}  // namespace hipacc::compiler
