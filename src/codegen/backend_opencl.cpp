// OpenCL backend: image objects with an explicit sampler instead of texture
// references, dynamically initialised constant masks as __constant kernel
// parameters, and an else-if region dispatch (same control structure as
// Listing 8 — OpenCL C has no goto).
#include "codegen/backend.hpp"

#include "support/string_utils.hpp"

namespace hipacc::codegen {
namespace {

class OpenClBackendImpl final : public Backend {
 public:
  std::string_view name() const noexcept override { return "opencl"; }
  std::string_view display_name() const noexcept override { return "OpenCL"; }
  ast::Backend id() const noexcept override { return ast::Backend::kOpenCL; }

  std::string KernelQualifier() const override { return "__kernel void"; }

  std::optional<std::string> BufferParamDecl(
      const ast::BufferParam& buf) const override {
    if (buf.space == ast::MemSpace::kTexture)
      // read_only / write_only attributes from the read/write analysis.
      return StrFormat("__read_only image2d_t _img%s", buf.name.c_str());
    return StrFormat("__global %sfloat* %s", buf.is_output ? "" : "const ",
                     buf.name.c_str());
  }

  std::vector<std::string> ExtraParams(
      const ast::DeviceKernel& kernel) const override {
    std::vector<std::string> params;
    for (const auto& mask : kernel.const_masks)
      if (!mask.is_static())
        params.push_back(StrFormat("__constant float* %s", mask.name.c_str()));
    return params;
  }

  std::string TextureDeclarations(
      const ast::DeviceKernel& kernel) const override {
    bool any_tex = false;
    for (const auto& buf : kernel.buffers)
      any_tex = any_tex || buf.space == ast::MemSpace::kTexture;
    if (!any_tex) return "";
    // CL_R channel order: one float component, remaining channels zero.
    return
        "__constant sampler_t _smp = CLK_NORMALIZED_COORDS_FALSE | "
        "CLK_ADDRESS_NONE | CLK_FILTER_NEAREST;\n";
  }

  std::string ConstantQualifier() const override { return "__constant"; }

  bool DeclaresDynamicConstMasks() const override { return false; }

  std::string SmemQualifier() const override { return "__local"; }

  std::string Barrier() const override {
    return "barrier(CLK_LOCAL_MEM_FENCE);";
  }

  std::string LocalId(int dim) const override {
    return dim == 0 ? "get_local_id(0)" : "get_local_id(1)";
  }

  std::string GroupId(int dim) const override {
    return dim == 0 ? "get_group_id(0)" : "get_group_id(1)";
  }

  std::string ThreadIndex(ast::ThreadIndexKind kind) const override {
    using ast::ThreadIndexKind;
    switch (kind) {
      case ThreadIndexKind::kThreadIdxX: return "get_local_id(0)";
      case ThreadIndexKind::kThreadIdxY: return "get_local_id(1)";
      case ThreadIndexKind::kBlockIdxX: return "get_group_id(0)";
      case ThreadIndexKind::kBlockIdxY: return "get_group_id(1)";
      case ThreadIndexKind::kBlockDimX: return "get_local_size(0)";
      case ThreadIndexKind::kBlockDimY: return "get_local_size(1)";
      case ThreadIndexKind::kGridDimX: return "get_num_groups(0)";
      case ThreadIndexKind::kGridDimY: return "get_num_groups(1)";
      case ThreadIndexKind::kGlobalIdX: return "gid_x";
      case ThreadIndexKind::kGlobalIdY: return "gid_y";
      case ThreadIndexKind::kImageW: return "IW";
      case ThreadIndexKind::kImageH: return "IH";
    }
    return "?";
  }

  std::string BuiltinName(const ast::BuiltinFn& fn) const override {
    return fn.opencl_name;
  }

  std::string TextureRead(const ast::BufferParam& buf, const std::string&,
                          const std::string&, const std::string& adj_x,
                          const std::string& adj_y) const override {
    // CL_R channel order: extract the single populated component.
    return StrFormat("read_imagef(_img%s, _smp, (int2)(%s, %s)).x",
                     buf.name.c_str(), adj_x.c_str(), adj_y.c_str());
  }

  bool UsesGotoDispatch() const override { return false; }
};

}  // namespace

const Backend& OpenClBackend() {
  static const OpenClBackendImpl backend;
  return backend;
}

}  // namespace hipacc::codegen
