// Memory-system model: coalescing, caches, constant broadcast, and shared-
// memory bank conflicts (incl. the +1-column padding rationale).
#include "sim/memory.hpp"

#include <gtest/gtest.h>

#include "hwmodel/device_db.hpp"

namespace hipacc::sim {
namespace {

std::vector<std::uint64_t> Consecutive(std::uint64_t base, int count,
                                       int stride = 1) {
  std::vector<std::uint64_t> addrs;
  for (int i = 0; i < count; ++i)
    addrs.push_back(base + static_cast<std::uint64_t>(i) * stride);
  return addrs;
}

TEST(SegmentCacheTest, HitsAndLruEviction) {
  SegmentCache cache(2);
  EXPECT_FALSE(cache.Access(1));
  EXPECT_FALSE(cache.Access(2));
  EXPECT_TRUE(cache.Access(1));   // hit
  EXPECT_FALSE(cache.Access(3));  // evicts 2 (LRU)
  EXPECT_TRUE(cache.Access(1));
  EXPECT_FALSE(cache.Access(2));  // 2 was evicted
}

TEST(MemoryModelTest, CoalescedWarpReadIsOneTransaction) {
  const hw::DeviceSpec device = hw::QuadroFx5800();  // no global cache
  MemoryModel model(device);
  Metrics metrics;
  // 32 consecutive floats starting at a segment boundary: 128 B = 1 segment.
  model.GlobalAccess(Consecutive(0, 32), false, &metrics);
  EXPECT_EQ(metrics.global_transactions, 1u);
  EXPECT_EQ(metrics.global_read_instrs, 1u);
}

TEST(MemoryModelTest, MisalignedReadTouchesTwoSegments) {
  MemoryModel model(hw::QuadroFx5800());
  Metrics metrics;
  model.GlobalAccess(Consecutive(16, 32), false, &metrics);
  EXPECT_EQ(metrics.global_transactions, 2u);
}

TEST(MemoryModelTest, StridedReadSerialisesToOneSegmentPerLane) {
  MemoryModel model(hw::QuadroFx5800());
  Metrics metrics;
  // Stride of 32 elements = 128 B: every lane its own segment.
  model.GlobalAccess(Consecutive(0, 32, 32), false, &metrics);
  EXPECT_EQ(metrics.global_transactions, 32u);
}

TEST(MemoryModelTest, FermiL1CachesRepeatedReads) {
  const hw::DeviceSpec device = hw::TeslaC2050();  // has_global_l1
  MemoryModel model(device);
  Metrics metrics;
  model.GlobalAccess(Consecutive(0, 32), false, &metrics);
  model.GlobalAccess(Consecutive(0, 32), false, &metrics);
  EXPECT_EQ(metrics.global_transactions, 1u);  // second read hits
  EXPECT_EQ(metrics.l1_hits, 1u);
}

TEST(MemoryModelTest, WritesBypassTheCache) {
  MemoryModel model(hw::TeslaC2050());
  Metrics metrics;
  model.GlobalAccess(Consecutive(0, 32), true, &metrics);
  model.GlobalAccess(Consecutive(0, 32), true, &metrics);
  EXPECT_EQ(metrics.global_transactions, 2u);
  EXPECT_EQ(metrics.global_write_instrs, 2u);
  EXPECT_EQ(metrics.l1_hits, 0u);
}

TEST(MemoryModelTest, TextureCacheHitsOnReuse) {
  MemoryModel model(hw::QuadroFx5800());
  Metrics metrics;
  model.TextureAccess(Consecutive(0, 32), &metrics);
  model.TextureAccess(Consecutive(0, 32), &metrics);
  EXPECT_EQ(metrics.tex_transactions, 1u);
  EXPECT_EQ(metrics.tex_hits, 1u);
  EXPECT_EQ(metrics.tex_read_instrs, 2u);
}

TEST(MemoryModelTest, ConstantBroadcastVsSerialised) {
  MemoryModel model(hw::TeslaC2050());
  Metrics metrics;
  // All lanes the same address: one broadcast (the mask access pattern the
  // constant cache is optimised for, Section IV-C).
  model.ConstantAccess(std::vector<std::uint64_t>(32, 7), &metrics);
  EXPECT_EQ(metrics.const_broadcasts, 1u);
  EXPECT_EQ(metrics.const_serialized, 0u);
  // Divergent addresses replay per distinct address.
  model.ConstantAccess(Consecutive(0, 32), &metrics);
  EXPECT_EQ(metrics.const_serialized, 32u);
}

TEST(MemoryModelTest, SharedMemoryBankConflicts) {
  const hw::DeviceSpec device = hw::QuadroFx5800();  // 16 banks
  MemoryModel model(device);
  Metrics metrics;
  // Consecutive addresses: all banks distinct, no conflict.
  model.SharedAccess(Consecutive(0, 16), &metrics);
  EXPECT_EQ(metrics.smem_conflict_cycles, 0u);
  // Stride 16 = bank count: every lane hits bank 0 -> 15 replay cycles.
  model.SharedAccess(Consecutive(0, 16, 16), &metrics);
  EXPECT_EQ(metrics.smem_conflict_cycles, 15u);
  // Same address in all lanes broadcasts without conflict.
  model.SharedAccess(std::vector<std::uint64_t>(16, 5), &metrics);
  EXPECT_EQ(metrics.smem_conflict_cycles, 15u);  // unchanged
}

TEST(MemoryModelTest, PaddedTileColumnAccessAvoidsConflicts) {
  // Listing 7's +1 padding: column walks of a (BSX + 1)-wide tile hit
  // different banks, while an unpadded power-of-two width conflicts.
  const hw::DeviceSpec device = hw::QuadroFx5800();  // 16 banks
  Metrics padded_metrics, unpadded_metrics;
  MemoryModel padded(device), unpadded(device);
  const int tile_w_unpadded = 32, tile_w_padded = 33;
  std::vector<std::uint64_t> col_unpadded, col_padded;
  for (int row = 0; row < 16; ++row) {
    col_unpadded.push_back(static_cast<std::uint64_t>(row) * tile_w_unpadded);
    col_padded.push_back(static_cast<std::uint64_t>(row) * tile_w_padded);
  }
  unpadded.SharedAccess(col_unpadded, &unpadded_metrics);
  padded.SharedAccess(col_padded, &padded_metrics);
  EXPECT_EQ(unpadded_metrics.smem_conflict_cycles, 15u);  // 16-way conflict
  EXPECT_EQ(padded_metrics.smem_conflict_cycles, 0u);     // fully parallel
}

// The flat open-addressing index (linear probing with backshift deletion)
// must behave exactly like a textbook LRU: random churn with a key space
// several times the capacity forces constant eviction, so every insert
// erases a key mid-cluster and every lookup crosses displaced entries. The
// reference is the obvious O(n) list-based LRU.
TEST(SegmentCacheTest, FlatTableMatchesReferenceLruUnderChurn) {
  constexpr int kCapacity = 13;  // odd, so table occupancy patterns vary
  SegmentCache cache(kCapacity);
  std::vector<std::uint64_t> reference;  // front = most recently used
  std::uint64_t state = 0x1234567u;
  for (int i = 0; i < 20000; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    // Small key space (4x capacity) maximises hit/evict interleaving; keys
    // are scaled so their hashes land in unrelated table slots.
    const std::uint64_t key = ((state >> 33) % (4 * kCapacity)) * 977u;
    const bool hit = cache.Access(key);
    const auto it = std::find(reference.begin(), reference.end(), key);
    const bool ref_hit = it != reference.end();
    ASSERT_EQ(hit, ref_hit) << "access " << i << " key " << key;
    if (ref_hit) reference.erase(it);
    reference.insert(reference.begin(), key);
    if (static_cast<int>(reference.size()) > kCapacity) reference.pop_back();
  }
}

TEST(SegmentCacheTest, ClearEmptiesTableAndRecencyList) {
  SegmentCache cache(4);
  for (std::uint64_t k = 0; k < 4; ++k) EXPECT_FALSE(cache.Access(k));
  EXPECT_TRUE(cache.Access(2));
  cache.Clear();
  for (std::uint64_t k = 0; k < 4; ++k)
    EXPECT_FALSE(cache.Access(k)) << "stale entry survived Clear";
  EXPECT_TRUE(cache.Access(3));
}

// The one-pass ascending fast path and the sort+unique fallback must be
// observationally identical: permuting a warp's addresses may change which
// path runs, but never the modelled transactions or the cache sequence.
TEST(MemoryModelTest, ShuffledAddressesMatchAscendingGlobalAccess) {
  const std::vector<std::uint64_t> ascending =
      Consecutive(40, 24, 3);  // 3-element stride, crosses segments
  std::vector<std::uint64_t> shuffled = ascending;
  std::uint64_t state = 99;
  for (std::size_t i = shuffled.size(); i > 1; --i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    std::swap(shuffled[i - 1], shuffled[(state >> 33) % i]);
  }
  ASSERT_NE(shuffled, ascending);
  for (const bool use_l1 : {false, true}) {
    const hw::DeviceSpec device =
        use_l1 ? hw::TeslaC2050() : hw::QuadroFx5800();
    MemoryModel a(device), b(device);
    Metrics ma, mb;
    // Interleave with a second, disjoint access so cache state evolves.
    for (int round = 0; round < 8; ++round) {
      a.GlobalAccess(ascending, false, &ma);
      a.GlobalAccess(Consecutive(4000 + 64 * round, 8), false, &ma);
      b.GlobalAccess(shuffled, false, &mb);
      b.GlobalAccess(Consecutive(4000 + 64 * round, 8), false, &mb);
    }
    EXPECT_EQ(ma.global_transactions, mb.global_transactions);
    EXPECT_EQ(ma.l1_hits, mb.l1_hits);
    EXPECT_EQ(ma.global_read_instrs, mb.global_read_instrs);
  }
}

TEST(MemoryModelTest, SharedAccessUnsortedAndDuplicatesMatchSorted) {
  const hw::DeviceSpec device = hw::QuadroFx5800();  // 16 banks
  MemoryModel a(device), b(device);
  Metrics ma, mb;
  // Two distinct addresses per bank over 8 banks (degree 2), presented
  // sorted to one model and reversed-with-duplicates to the other.
  std::vector<std::uint64_t> sorted;
  for (int i = 0; i < 8; ++i) {
    sorted.push_back(static_cast<std::uint64_t>(i));
    sorted.push_back(static_cast<std::uint64_t>(i) + 16);
  }
  std::vector<std::uint64_t> messy(sorted.rbegin(), sorted.rend());
  messy.push_back(sorted.front());  // duplicate
  messy.push_back(sorted.back());
  // Many rounds so the generation counter advances well past its initial
  // state; stale bank counts from prior rounds must never leak in.
  for (int round = 0; round < 100; ++round) {
    a.SharedAccess(sorted, &ma);
    b.SharedAccess(messy, &mb);
  }
  EXPECT_EQ(ma.smem_accesses, mb.smem_accesses);
  EXPECT_EQ(ma.smem_conflict_cycles, mb.smem_conflict_cycles);
  EXPECT_EQ(ma.smem_conflict_cycles, 100u);  // degree 2 -> +1 per round
}

TEST(MemoryModelTest, ConstantAccessFastPathMatchesSlowPath) {
  MemoryModel model(hw::QuadroFx5800());
  Metrics metrics;
  // Warp-uniform read: broadcast regardless of lane count.
  model.ConstantAccess(std::vector<std::uint64_t>(32, 7), &metrics);
  EXPECT_EQ(metrics.const_broadcasts, 1u);
  EXPECT_EQ(metrics.const_serialized, 0u);
  // Two distinct values, unsorted with repeats: serialises to 2.
  model.ConstantAccess({9, 3, 9, 3, 9}, &metrics);
  EXPECT_EQ(metrics.const_broadcasts, 1u);
  EXPECT_EQ(metrics.const_serialized, 2u);
}

TEST(MetricsTest, AccumulateAndScale) {
  Metrics a, b;
  a.alu_ops = 10;
  a.global_transactions = 4;
  b.alu_ops = 5;
  b.oob_violations = 2;
  a += b;
  EXPECT_EQ(a.alu_ops, 15u);
  EXPECT_EQ(a.oob_violations, 2u);
  const Metrics scaled = a.Scaled(2.5);
  EXPECT_EQ(scaled.alu_ops, 38u);  // 37.5 rounded
  EXPECT_EQ(scaled.global_transactions, 10u);
}

}  // namespace
}  // namespace hipacc::sim
