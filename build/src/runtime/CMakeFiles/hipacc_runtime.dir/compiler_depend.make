# Empty compiler generated dependencies file for hipacc_runtime.
# This may be replaced when dependencies are built.
