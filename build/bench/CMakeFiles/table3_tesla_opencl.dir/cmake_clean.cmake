file(REMOVE_RECURSE
  "CMakeFiles/table3_tesla_opencl.dir/table3_tesla_opencl.cpp.o"
  "CMakeFiles/table3_tesla_opencl.dir/table3_tesla_opencl.cpp.o.d"
  "table3_tesla_opencl"
  "table3_tesla_opencl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_tesla_opencl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
