// DiskStore behaviour: round trips, the disabled no-op mode, corruption
// self-repair, schema-version invalidation, LRU eviction, dedup of racing
// writers, and thread safety of concurrent get-or-put on one key. The
// compiler- and JIT-level consumers of the store are covered in
// tests/compiler/disk_cache_test.cpp and tests/sim/jit_test.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "support/disk_store.hpp"

namespace hipacc::support {
namespace {

namespace fs = std::filesystem;

/// Fresh cache root per test so stores never see each other's entries.
std::string FreshRoot(const std::string& name) {
  const fs::path root = fs::path(::testing::TempDir()) / ("disk_store_" + name);
  fs::remove_all(root);
  return root.string();
}

DiskStoreOptions RootedOptions(const std::string& root) {
  DiskStoreOptions options;
  options.root = root;
  return options;
}

/// All regular files under `root`, sorted for determinism.
std::vector<fs::path> EntryFiles(const std::string& root) {
  std::vector<fs::path> files;
  if (!fs::exists(root)) return files;
  for (const auto& entry : fs::recursive_directory_iterator(root))
    if (entry.is_regular_file()) files.push_back(entry.path());
  std::sort(files.begin(), files.end());
  return files;
}

TEST(DiskStoreTest, PutGetRoundTrip) {
  DiskStore store(RootedOptions(FreshRoot("roundtrip")));
  ASSERT_TRUE(store.enabled());

  EXPECT_FALSE(store.Get("target", "key-a").has_value());
  const DiskStore::PutResult put = store.Put("target", "key-a", "payload-a");
  EXPECT_TRUE(put.stored);
  EXPECT_EQ(put.evicted, 0u);

  const std::optional<std::string> got = store.Get("target", "key-a");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "payload-a");

  // Kinds are separate namespaces: the same canonical under another kind
  // misses.
  EXPECT_FALSE(store.Get("frontend", "key-a").has_value());

  const DiskStoreStats stats = store.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.stores, 1u);
}

TEST(DiskStoreTest, DisabledStoreIsANoOp) {
  DiskStore store;  // empty root
  EXPECT_FALSE(store.enabled());
  EXPECT_FALSE(store.Get("target", "key").has_value());
  const DiskStore::PutResult put = store.Put("target", "key", "payload");
  EXPECT_FALSE(put.stored);
  EXPECT_FALSE(store.Get("target", "key").has_value());
}

TEST(DiskStoreTest, DedupSkipsIdenticalFrame) {
  DiskStore store(RootedOptions(FreshRoot("dedup")));
  EXPECT_TRUE(store.Put("jit", "key", "same-bytes").stored);
  EXPECT_FALSE(store.Put("jit", "key", "same-bytes").stored);
  EXPECT_EQ(store.stats().stores, 1u);
  EXPECT_EQ(store.stats().dedup, 1u);
  // A changed payload for the same key is rewritten, not deduped.
  EXPECT_TRUE(store.Put("jit", "key", "new-bytes").stored);
  EXPECT_EQ(*store.Get("jit", "key"), "new-bytes");
}

TEST(DiskStoreTest, CorruptEntryIsAMissAndSelfRepairs) {
  const std::string root = FreshRoot("corrupt");
  DiskStore store(RootedOptions(root));
  ASSERT_TRUE(store.Put("target", "key", "good payload").stored);

  const std::vector<fs::path> files = EntryFiles(root);
  ASSERT_EQ(files.size(), 1u);
  {
    std::ofstream garble(files[0], std::ios::binary | std::ios::trunc);
    garble << "HPCC but then garbage that cannot checksum";
  }

  // The tampered frame reads as a miss, is unlinked, and the next store
  // repairs it — no crash, no stale payload.
  EXPECT_FALSE(store.Get("target", "key").has_value());
  EXPECT_EQ(store.stats().corrupt, 1u);
  EXPECT_TRUE(EntryFiles(root).empty());
  EXPECT_TRUE(store.Put("target", "key", "good payload").stored);
  EXPECT_EQ(*store.Get("target", "key"), "good payload");

  // Truncation (the crash-mid-write shape WriteFileAtomic prevents, but a
  // hostile filesystem could still produce) is handled the same way.
  const std::vector<fs::path> repaired = EntryFiles(root);
  ASSERT_EQ(repaired.size(), 1u);
  fs::resize_file(repaired[0], 3);
  EXPECT_FALSE(store.Get("target", "key").has_value());
  EXPECT_EQ(store.stats().corrupt, 2u);
}

TEST(DiskStoreTest, SchemaVersionBumpInvalidatesOldEntries) {
  const std::string root = FreshRoot("version");
  DiskStore v_current(RootedOptions(root));
  ASSERT_TRUE(v_current.Put("target", "key", "old-schema payload").stored);

  DiskStoreOptions bumped = RootedOptions(root);
  bumped.schema_version_override = kDiskStoreSchemaVersion + 1;
  DiskStore v_next(bumped);
  EXPECT_EQ(v_next.schema_version(), kDiskStoreSchemaVersion + 1);

  // The bumped store sees an empty cache and repopulates under its own
  // version directory; the old store still reads its own entries.
  EXPECT_FALSE(v_next.Get("target", "key").has_value());
  EXPECT_TRUE(v_next.Put("target", "key", "new-schema payload").stored);
  EXPECT_EQ(*v_next.Get("target", "key"), "new-schema payload");
  EXPECT_EQ(*v_current.Get("target", "key"), "old-schema payload");
}

/// Rewinds a file's mtime — the LRU clock ticks in whole seconds, so tests
/// age entries explicitly instead of sleeping across tick boundaries.
void Backdate(const fs::path& file, int minutes) {
  fs::last_write_time(file,
                      fs::last_write_time(file) - std::chrono::minutes(minutes));
}

TEST(DiskStoreTest, LruEvictionUnderSizeCap) {
  const std::string root = FreshRoot("evict");
  const std::string payload(4096, 'x');
  DiskStoreOptions options = RootedOptions(root);
  options.max_bytes = 6 * 1024;  // fits one 4 KiB payload, not two
  DiskStore store(options);

  ASSERT_TRUE(store.Put("target", "old", payload).stored);
  for (const fs::path& file : EntryFiles(root)) Backdate(file, 60);
  const DiskStore::PutResult put = store.Put("target", "new", payload);
  EXPECT_TRUE(put.stored);
  EXPECT_GE(put.evicted, 1u);

  EXPECT_FALSE(store.Get("target", "old").has_value());
  const std::optional<std::string> kept = store.Get("target", "new");
  ASSERT_TRUE(kept.has_value());
  EXPECT_EQ(*kept, payload);
  EXPECT_GE(store.stats().evictions, 1u);
}

TEST(DiskStoreTest, GetRefreshesLruRecency) {
  const std::string root = FreshRoot("lru_touch");
  const std::string payload(4096, 'x');
  DiskStoreOptions options = RootedOptions(root);
  options.max_bytes = 10 * 1024;  // fits two payloads, not three
  DiskStore store(options);

  ASSERT_TRUE(store.Put("target", "a", payload).stored);
  const std::vector<fs::path> after_a = EntryFiles(root);
  ASSERT_EQ(after_a.size(), 1u);
  Backdate(after_a[0], 180);
  ASSERT_TRUE(store.Put("target", "b", payload).stored);
  for (const fs::path& file : EntryFiles(root))
    if (file != after_a[0]) Backdate(file, 120);
  // Touch "a": its mtime refreshes to now, leaving "b" least recently used.
  ASSERT_TRUE(store.Get("target", "a").has_value());

  ASSERT_TRUE(store.Put("target", "c", payload).stored);
  EXPECT_TRUE(store.Get("target", "a").has_value());
  EXPECT_FALSE(store.Get("target", "b").has_value());
  EXPECT_TRUE(store.Get("target", "c").has_value());
}

TEST(DiskStoreTest, ConcurrentGetOrPutYieldsOneConsistentEntry) {
  const std::string root = FreshRoot("race");
  const std::string payload = "the one true artifact for this key";
  constexpr int kThreads = 8;

  // Each worker owns its own DiskStore on the shared root — the
  // multi-process shape, where no in-process mutex serialises them.
  std::vector<std::thread> workers;
  std::vector<int> stored(kThreads, 0);
  workers.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    workers.emplace_back([&, i] {
      DiskStore local(RootedOptions(root));
      for (int round = 0; round < 16; ++round) {
        const std::optional<std::string> hit = local.Get("jit", "raced-key");
        if (hit.has_value()) {
          ASSERT_EQ(*hit, payload);
          continue;
        }
        if (local.Put("jit", "raced-key", payload).stored) stored[i] = 1;
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  // However the rename races resolved, the surviving entry is the payload,
  // bit-identical, and exactly one file exists for the key.
  DiskStore reader(RootedOptions(root));
  const std::optional<std::string> got = reader.Get("jit", "raced-key");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);
  EXPECT_EQ(EntryFiles(root).size(), 1u);
}

/// Saves and restores one environment variable around a test body.
struct EnvGuard {
  explicit EnvGuard(const char* name) : name_(name) {
    const char* current = std::getenv(name);
    if (current != nullptr) saved_ = current;
    had_ = current != nullptr;
  }
  ~EnvGuard() {
    if (had_)
      ::setenv(name_, saved_.c_str(), 1);
    else
      ::unsetenv(name_);
  }
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

TEST(ResolveCacheDirTest, SpecAndEnvironmentSemantics) {
  EnvGuard guard("HIPACC_CACHE_DIR");

  // Explicit spec wins outright; "off" disables.
  ::setenv("HIPACC_CACHE_DIR", "/env/cache", 1);
  EXPECT_EQ(ResolveCacheDir("/explicit/cache"), "/explicit/cache");
  EXPECT_EQ(ResolveCacheDir("off"), "");

  // Empty spec defers to the environment, which itself honours "off".
  EXPECT_EQ(ResolveCacheDir(""), "/env/cache");
  ::setenv("HIPACC_CACHE_DIR", "off", 1);
  EXPECT_EQ(ResolveCacheDir(""), "");

  // With no override at all the default lands under the user cache dir.
  ::unsetenv("HIPACC_CACHE_DIR");
  const std::string fallback = ResolveCacheDir("");
  if (!fallback.empty())
    EXPECT_NE(fallback.find("hipacc"), std::string::npos) << fallback;
}

}  // namespace
}  // namespace hipacc::support
