// Shared --sim-engine=bytecode|ast|native flag for the benchmark binaries:
// selects the simulator execution engine process-wide (sim/options.hpp), so
// the CI perf-smoke can run the same table under each engine and diff the
// output.
#pragma once

#include "sim/options.hpp"
#include "support/cli.hpp"

namespace hipacc::bench {

/// Registers `--sim-engine=ENGINE` on `cli`; parsing a value updates the
/// process-wide DefaultSimulatorOptions() in place.
inline support::CliParser& RegisterSimEngineFlag(support::CliParser& cli) {
  return cli.Value("sim-engine", "ENGINE",
                   "simulator engine: bytecode (default), ast, or native "
                   "(jit-compiled host code, threaded-VM fallback)",
                   [](const std::string& value) -> Status {
                     Result<sim::ExecEngine> engine =
                         sim::ParseExecEngine(value);
                     if (!engine.ok()) return engine.status();
                     sim::DefaultSimulatorOptions().engine = engine.value();
                     return Status::Ok();
                   });
}

}  // namespace hipacc::bench
