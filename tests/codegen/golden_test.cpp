// Golden test: the complete emitted CUDA source for a representative kernel
// (bilateral with mask, mirror boundaries, linear textures, 9 regions) must
// match the checked-in reference byte for byte. Regenerate the golden after
// an intentional emitter change with the snippet in the file header of
// tests/codegen/golden/bilateral_mask_mirror_cuda.golden... i.e. re-emit and
// review the diff.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "codegen/emit.hpp"
#include "codegen/lower.hpp"
#include "ops/kernel_sources.hpp"

namespace hipacc::codegen {
namespace {

#ifndef HIPACC_TEST_DATA_DIR
#define HIPACC_TEST_DATA_DIR "."
#endif

TEST(GoldenTest, BilateralMaskMirrorCuda) {
  frontend::KernelSource src =
      ops::BilateralMaskSource(1, ast::BoundaryMode::kMirror);
  auto kernel = frontend::ParseKernel(src);
  ASSERT_TRUE(kernel.ok()) << kernel.status().ToString();
  CodegenOptions options;
  options.texture = TexturePolicy::kLinear;
  auto lowered = LowerKernel(kernel.value(), options);
  ASSERT_TRUE(lowered.ok()) << lowered.status().ToString();
  EmitContext ctx;
  ctx.config = {32, 4};
  ctx.image_width = 512;
  ctx.image_height = 512;
  const std::string emitted = EmitKernelSource(lowered.value(), ctx);

  const std::string golden_path = std::string(HIPACC_TEST_DATA_DIR) +
                                  "/golden/bilateral_mask_mirror_cuda.golden";
  std::ifstream in(golden_path);
  ASSERT_TRUE(in) << "missing golden file " << golden_path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string golden = buffer.str();

  if (emitted != golden) {
    // Locate the first differing line for a readable failure.
    std::istringstream a(emitted), b(golden);
    std::string la, lb;
    int line = 0;
    while (true) {
      ++line;
      const bool more_a = static_cast<bool>(std::getline(a, la));
      const bool more_b = static_cast<bool>(std::getline(b, lb));
      if (!more_a && !more_b) break;
      if (la != lb || more_a != more_b) {
        FAIL() << "emitted source diverges from golden at line " << line
               << "\n  emitted: " << (more_a ? la : "<eof>")
               << "\n  golden:  " << (more_b ? lb : "<eof>");
      }
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace hipacc::codegen
