// Occupancy calculation (paper Section V-C): combines per-kernel resource
// usage (the stand-in for nvcc/OpenCL resource reports, see
// src/codegen/resource_estimator) with the abstract hardware model to decide
// which configurations are valid and how well they hide latency.
#pragma once

#include <string>

#include "hwmodel/config.hpp"
#include "hwmodel/device_spec.hpp"

namespace hipacc::hw {

/// Per-kernel resource usage, as reported by the resource estimator.
struct KernelResources {
  int regs_per_thread = 16;
  int smem_static_bytes = 0;  ///< shared memory independent of the config
  /// When the scratchpad staging pass ran, the tile is
  /// (block_y + 2*halo_y) x (block_x + 2*halo_x + 1) elements (Listing 7's
  /// +1 column avoids bank conflicts); its size depends on the config.
  bool smem_tile = false;
  int smem_halo_x = 0;
  int smem_halo_y = 0;
  int elem_bytes = 4;
  /// Pixels per thread the kernel was lowered with: the scratchpad tile
  /// covers block_y*ppt pixel rows (plus halo).
  int ppt = 1;
  /// Rough interpreter-cost op count of the interior variant's per-thread
  /// body (already covering all ppt outputs). Feeds the heuristic's
  /// analytic PPT/separability cost model; 0 when not estimated.
  long long approx_ops = 0;

  /// Total scratchpad bytes a block of the given config allocates.
  int SmemBytesPerBlock(const KernelConfig& config) const noexcept;
};

/// What bounded the number of resident blocks.
enum class OccupancyLimiter { kThreads, kBlocks, kRegisters, kSharedMemory, kInvalid };

const char* to_string(OccupancyLimiter limiter) noexcept;

struct OccupancyResult {
  bool valid = false;          ///< config launches on this device at all
  std::string reason;          ///< why invalid (empty when valid)
  int blocks_per_sm = 0;       ///< resident blocks per SIMD unit
  int active_warps = 0;        ///< resident warps per SIMD unit
  double occupancy = 0.0;      ///< active_warps / max_warps_per_sm
  OccupancyLimiter limiter = OccupancyLimiter::kInvalid;
};

/// Computes occupancy of `config` with `resources` on `device`, modelling
/// the per-block (CC 1.x) vs per-warp (CC 2.x) register allocation
/// strategies and allocation granularities.
OccupancyResult ComputeOccupancy(const DeviceSpec& device,
                                 const KernelConfig& config,
                                 const KernelResources& resources);

}  // namespace hipacc::hw
