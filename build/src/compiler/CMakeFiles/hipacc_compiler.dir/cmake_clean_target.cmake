file(REMOVE_RECURSE
  "libhipacc_compiler.a"
)
