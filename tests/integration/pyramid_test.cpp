// Multiresolution pyramid (the Mirror-mode use case, Section III-A).
#include <gtest/gtest.h>

#include "image/metrics.hpp"
#include "image/synthetic.hpp"
#include "ops/pyramid.hpp"

namespace hipacc {
namespace {

using ast::BoundaryMode;

TEST(PyramidTest, DownsampleHalvesDimensions) {
  const auto img = MakeNoiseImage(64, 48, 1);
  const auto down = ops::PyramidDown(img, BoundaryMode::kMirror);
  EXPECT_EQ(down.width(), 32);
  EXPECT_EQ(down.height(), 24);
  // Odd sizes round up.
  const auto odd = ops::PyramidDown(MakeNoiseImage(33, 17, 2),
                                    BoundaryMode::kMirror);
  EXPECT_EQ(odd.width(), 17);
  EXPECT_EQ(odd.height(), 9);
}

TEST(PyramidTest, UpsampleReachesTargetSize) {
  const auto img = MakeNoiseImage(16, 16, 3);
  const auto up = ops::PyramidUp(img, 32, 32, BoundaryMode::kMirror);
  EXPECT_EQ(up.width(), 32);
  EXPECT_EQ(up.height(), 32);
}

TEST(PyramidTest, DownPreservesMeanOfSmoothImages) {
  // A constant image must stay constant through the smoothing/decimation
  // (the Gaussian mask is normalised).
  HostImage<float> flat(32, 32, 0.75f);
  const auto down = ops::PyramidDown(flat, BoundaryMode::kMirror);
  for (int y = 0; y < down.height(); ++y)
    for (int x = 0; x < down.width(); ++x)
      ASSERT_NEAR(down(x, y), 0.75f, 1e-5f);
}

TEST(PyramidTest, UpsampleOfConstantIsConstant) {
  HostImage<float> flat(16, 16, 0.5f);
  const auto up = ops::PyramidUp(flat, 32, 32, BoundaryMode::kMirror);
  // Interior pixels: zero-insertion + gain-4 interpolation restores level.
  for (int y = 4; y < 28; ++y)
    for (int x = 4; x < 28; ++x) ASSERT_NEAR(up(x, y), 0.5f, 0.03f);  // interpolation ripple
}

class PyramidModeTest : public ::testing::TestWithParam<BoundaryMode> {};

TEST_P(PyramidModeTest, IdentityGainsReconstructExactly) {
  // The Laplacian pyramid is exactly invertible for any consistent boundary
  // rule: reconstruction adds back precisely what decomposition removed.
  const auto img = MakeAngiogramPhantom(64, 64, 0.05f, 5);
  const auto roundtrip =
      ops::MultiresolutionFilter(img, 3, {1.0f, 1.0f, 1.0f}, GetParam());
  EXPECT_LE(MaxAbsDiff(img, roundtrip), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Modes, PyramidModeTest,
                         ::testing::Values(BoundaryMode::kClamp,
                                           BoundaryMode::kRepeat,
                                           BoundaryMode::kMirror),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(PyramidTest, DetailGainAmplifiesEdges) {
  const auto img = MakeCheckerboard(64, 64, 8, 0.3f, 0.7f);
  const auto enhanced =
      ops::MultiresolutionFilter(img, 2, {3.0f, 1.0f}, BoundaryMode::kMirror);
  // Amplified detail increases the dynamic range at the edges.
  float lo = 1e9f, hi = -1e9f;
  for (int y = 8; y < 56; ++y)
    for (int x = 8; x < 56; ++x) {
      lo = std::min(lo, enhanced(x, y));
      hi = std::max(hi, enhanced(x, y));
    }
  EXPECT_GT(hi - lo, 0.41f);  // input range is exactly 0.4
}

TEST(PyramidTest, MirrorBeatsClampAtBorders) {
  // The paper's motivation: replication ("clamp") at each upsampling yields
  // larger border artifacts than mirroring. Oracle = enhancement computed
  // with 32 extra pixels of real context on each side.
  const int n = 128, pad = 32;
  HostImage<float> wide(n + 2 * pad, n + 2 * pad);
  for (int y = 0; y < wide.height(); ++y)
    for (int x = 0; x < wide.width(); ++x)
      wide(x, y) = 0.2f + 0.6f * static_cast<float>(x + 2 * y) /
                              (3.0f * wide.width());
  const std::vector<float> gains = {2.5f, 1.5f, 1.0f};
  const auto wide_enhanced =
      ops::MultiresolutionFilter(wide, 3, gains, BoundaryMode::kMirror);
  HostImage<float> input(n, n), oracle(n, n);
  for (int y = 0; y < n; ++y)
    for (int x = 0; x < n; ++x) {
      input(x, y) = wide(x + pad, y + pad);
      oracle(x, y) = wide_enhanced(x + pad, y + pad);
    }
  auto border_error = [&](BoundaryMode mode) {
    const auto enhanced = ops::MultiresolutionFilter(input, 3, gains, mode);
    double acc = 0.0;
    long count = 0;
    for (int y = 0; y < n; ++y)
      for (int x = 0; x < n; ++x) {
        if (x >= 8 && x < n - 8 && y >= 8 && y < n - 8) continue;
        acc += std::abs(static_cast<double>(enhanced(x, y)) - oracle(x, y));
        ++count;
      }
    return acc / static_cast<double>(count);
  };
  EXPECT_LT(border_error(BoundaryMode::kMirror),
            border_error(BoundaryMode::kClamp));
}

}  // namespace
}  // namespace hipacc
