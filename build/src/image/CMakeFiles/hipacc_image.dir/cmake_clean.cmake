file(REMOVE_RECURSE
  "CMakeFiles/hipacc_image.dir/io.cpp.o"
  "CMakeFiles/hipacc_image.dir/io.cpp.o.d"
  "CMakeFiles/hipacc_image.dir/metrics.cpp.o"
  "CMakeFiles/hipacc_image.dir/metrics.cpp.o.d"
  "CMakeFiles/hipacc_image.dir/synthetic.cpp.o"
  "CMakeFiles/hipacc_image.dir/synthetic.cpp.o.d"
  "libhipacc_image.a"
  "libhipacc_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipacc_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
