#include "compiler/separate.hpp"

#include "ast/mask_factor.hpp"
#include "support/string_utils.hpp"

namespace hipacc::compiler {
namespace {

using ast::Expr;
using ast::ExprKind;
using ast::Stmt;
using ast::StmtKind;

/// Launch + intermediate round-trip cost of the extra pass, in
/// taps-per-pixel equivalents. With this, a 3x3 window (9 taps direct,
/// 3+3 separated) stays direct and a 5x5 (25 vs 10) separates.
constexpr int kSeparateOverheadTaps = 4;

/// Unwraps single-statement blocks (the parser wraps every loop body).
const Stmt* Unwrap(const ast::StmtPtr& stmt) {
  const Stmt* s = stmt.get();
  while (s != nullptr && s->kind == StmtKind::kBlock && s->body.size() == 1)
    s = s->body.front().get();
  return s;
}

/// Constant integer value of `-h`, `h`, or a folded literal; nullopt for
/// anything non-constant.
std::optional<long long> ConstInt(const ast::ExprPtr& expr) {
  const Expr* e = expr.get();
  if (e == nullptr) return std::nullopt;
  if (e->kind == ExprKind::kIntLit) return e->int_value;
  if (e->kind == ExprKind::kUnary && e->unary_op == ast::UnaryOp::kNeg &&
      e->args.size() == 1 && e->args[0]->kind == ExprKind::kIntLit)
    return -e->args[0]->int_value;
  return std::nullopt;
}

bool IsVar(const ast::ExprPtr& expr, const std::string& name) {
  return expr && expr->kind == ExprKind::kVarRef && expr->name == name;
}

/// Matches `M(xf, yf)` / `Input(xf, yf)` against the two loop variables.
bool IsWindowRead(const ast::ExprPtr& expr, ExprKind kind,
                  const std::string& name, const std::string& xf,
                  const std::string& yf) {
  return expr && expr->kind == kind && expr->name == name &&
         expr->args.size() == 2 && IsVar(expr->args[0], xf) &&
         IsVar(expr->args[1], yf);
}

/// Matches the accumulation `sum += M(xf, yf) * Input(xf, yf)` (either
/// operand order of the multiply).
bool IsConvAccumulate(const Stmt* stmt, const std::string& sum,
                      const std::string& mask, const std::string& accessor,
                      const std::string& xf, const std::string& yf) {
  if (stmt == nullptr || stmt->kind != StmtKind::kAssign ||
      stmt->name != sum || stmt->assign_op != ast::AssignOp::kAddAssign)
    return false;
  const Expr* mul = stmt->value.get();
  if (mul == nullptr || mul->kind != ExprKind::kBinary ||
      mul->binary_op != ast::BinaryOp::kMul || mul->args.size() != 2)
    return false;
  return (IsWindowRead(mul->args[0], ExprKind::kMaskRead, mask, xf, yf) &&
          IsWindowRead(mul->args[1], ExprKind::kAccessorRead, accessor, xf,
                       yf)) ||
         (IsWindowRead(mul->args[1], ExprKind::kMaskRead, mask, xf, yf) &&
          IsWindowRead(mul->args[0], ExprKind::kAccessorRead, accessor, xf,
                       yf));
}

/// True when `decl` is exactly the canonical convolution body over the
/// given mask and accessor.
bool MatchesCanonicalConvolution(const ast::KernelDecl& decl,
                                 const ast::MaskInfo& mask,
                                 const ast::AccessorInfo& accessor) {
  const Stmt* block = decl.body.get();
  if (block == nullptr || block->kind != StmtKind::kBlock ||
      block->body.size() != 3)
    return false;

  const Stmt* init = block->body[0].get();
  if (init == nullptr || init->kind != StmtKind::kDecl ||
      init->value == nullptr)
    return false;
  const std::string& sum = init->name;
  const Expr* zero = init->value.get();
  if (zero->kind != ExprKind::kFloatLit || zero->float_value != 0.0)
    return false;

  const Stmt* outer = block->body[1].get();
  if (outer == nullptr || outer->kind != StmtKind::kFor || outer->step != 1)
    return false;
  const std::string& yf = outer->name;
  if (ConstInt(outer->lo) != -(mask.size_y / 2) ||
      ConstInt(outer->hi) != mask.size_y / 2)
    return false;

  const Stmt* inner = Unwrap(outer->body.empty() ? nullptr : outer->body[0]);
  if (outer->body.size() != 1 || inner == nullptr ||
      inner->kind != StmtKind::kFor || inner->step != 1)
    return false;
  const std::string& xf = inner->name;
  if (ConstInt(inner->lo) != -(mask.size_x / 2) ||
      ConstInt(inner->hi) != mask.size_x / 2)
    return false;

  const Stmt* acc = Unwrap(inner->body.empty() ? nullptr : inner->body[0]);
  if (inner->body.size() != 1 ||
      !IsConvAccumulate(acc, sum, mask.name, accessor.name, xf, yf))
    return false;

  const Stmt* out = block->body[2].get();
  return out != nullptr && out->kind == StmtKind::kOutputAssign &&
         IsVar(out->value, sum);
}

/// Builds the 1D pass kernel, same canonical body shape as the 2D original
/// (so the stage remains recognisable, cacheable, and fusable downstream).
frontend::KernelSource Conv1D(const std::string& name,
                              const std::string& accessor_name, int size_x,
                              int size_y, std::vector<float> coeffs,
                              ast::BoundaryMode mode, float constant_value) {
  frontend::KernelSource src;
  src.name = name;
  ast::AccessorInfo acc;
  acc.name = accessor_name;
  acc.window = ast::WindowExtent::FromSize(size_x, size_y);
  acc.boundary = mode;
  acc.constant_value = constant_value;
  src.accessors = {acc};
  ast::MaskInfo mask;
  mask.name = "M";
  mask.size_x = size_x;
  mask.size_y = size_y;
  mask.static_values = std::move(coeffs);
  src.masks = {mask};
  src.body = StrFormat(R"(
    float sum = 0.0f;
    for (int yf = -%d; yf <= %d; yf++) {
      for (int xf = -%d; xf <= %d; xf++) {
        sum += M(xf, yf) * Input(xf, yf);
      }
    }
    output() = sum;
  )",
                       size_y / 2, size_y / 2, size_x / 2, size_x / 2);
  return src;
}

}  // namespace

std::optional<SeparatedStages> SeparateConvolution(
    const frontend::KernelSource& source, float rel_tol) {
  // Shape gates that need no parsing: one accessor, one static 2D mask
  // matching the accessor window, no scalar parameters the loop nest could
  // depend on, and a boundary mode whose out-of-bounds values are defined.
  if (source.accessors.size() != 1 || source.masks.size() != 1 ||
      !source.params.empty())
    return std::nullopt;
  const ast::AccessorInfo& accessor = source.accessors.front();
  const ast::MaskInfo& mask = source.masks.front();
  if (!mask.is_static() || mask.size_x < 3 || mask.size_y < 3) return std::nullopt;
  if (accessor.window.half_x != mask.size_x / 2 ||
      accessor.window.half_y != mask.size_y / 2)
    return std::nullopt;
  if (accessor.boundary == ast::BoundaryMode::kUndefined) return std::nullopt;

  // Tap-count heuristic: the two 1D passes plus the intermediate image
  // round trip must beat the 2D window.
  if (mask.size_x + mask.size_y + kSeparateOverheadTaps >=
      mask.size_x * mask.size_y)
    return std::nullopt;

  Result<ast::KernelDecl> decl = frontend::ParseKernel(source);
  if (!decl.ok()) return std::nullopt;
  if (!MatchesCanonicalConvolution(decl.value(), mask, accessor))
    return std::nullopt;

  std::optional<ast::Rank1Factors> factors =
      ast::FactorizeRank1(mask.static_values, mask.size_x, mask.size_y,
                          rel_tol);
  if (!factors) return std::nullopt;

  // Constant mode: an out-of-bounds *row* of the intermediate image is what
  // the row pass would have produced from an all-constant row, i.e.
  // c * sum(row coefficients). With that, every direct constant tap is
  // reproduced exactly (c * M[dx,dy] == c * row[dx] * col[dy]).
  float col_constant = 0.0f;
  if (accessor.boundary == ast::BoundaryMode::kConstant) {
    double row_sum = 0.0;
    for (const float v : factors->row) row_sum += v;
    col_constant =
        static_cast<float>(accessor.constant_value * row_sum);
  }

  SeparatedStages out;
  out.row = Conv1D(source.name + "_row", accessor.name, mask.size_x, 1,
                   std::move(factors->row), accessor.boundary,
                   accessor.constant_value);
  out.col = Conv1D(source.name + "_col", accessor.name, 1, mask.size_y,
                   std::move(factors->col), accessor.boundary, col_constant);
  return out;
}

}  // namespace hipacc::compiler
