// Minimal JSON document model with a writer and a strict parser — the
// serialisation backbone of the observability layer (sim::TraceSink, the
// BENCH_*.json outputs, and `hipacc-compile --trace-out`). Objects preserve
// insertion order so emitted documents are deterministic and diffable;
// numbers remember whether they were integral so counters round-trip
// without a spurious ".0".
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "support/status.hpp"

namespace hipacc::support {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Insertion-ordered key/value storage (documents stay small; linear
  /// lookup beats a map's allocation churn and keeps output deterministic).
  using Member = std::pair<std::string, Json>;

  Json() = default;                    ///< null
  Json(bool value) : type_(Type::kBool), bool_(value) {}  // NOLINT implicit
  Json(double value) : type_(Type::kNumber), number_(value) {}  // NOLINT
  Json(int value)                                               // NOLINT
      : type_(Type::kNumber), number_(value), integral_(true) {}
  Json(long long value)                                         // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(value)),
        integral_(true) {}
  Json(std::uint64_t value)                                     // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(value)),
        integral_(true) {}
  Json(std::string value)                                       // NOLINT
      : type_(Type::kString), string_(std::move(value)) {}
  Json(const char* value) : type_(Type::kString), string_(value) {}  // NOLINT

  static Json Array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json Object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  Type type() const noexcept { return type_; }
  bool is_null() const noexcept { return type_ == Type::kNull; }
  bool is_bool() const noexcept { return type_ == Type::kBool; }
  bool is_number() const noexcept { return type_ == Type::kNumber; }
  bool is_string() const noexcept { return type_ == Type::kString; }
  bool is_array() const noexcept { return type_ == Type::kArray; }
  bool is_object() const noexcept { return type_ == Type::kObject; }

  bool bool_value() const noexcept { return bool_; }
  double number_value() const noexcept { return number_; }
  long long int_value() const noexcept {
    return static_cast<long long>(number_);
  }
  const std::string& string_value() const noexcept { return string_; }

  /// Array element count / object member count.
  std::size_t size() const noexcept {
    return type_ == Type::kObject ? members_.size() : elements_.size();
  }

  /// Appends to an array (converts a null value into an array first).
  void push_back(Json value) {
    if (type_ == Type::kNull) type_ = Type::kArray;
    elements_.push_back(std::move(value));
  }
  const std::vector<Json>& elements() const noexcept { return elements_; }
  const Json& operator[](std::size_t index) const { return elements_[index]; }

  /// Object insert-or-get (converts a null value into an object first).
  Json& operator[](const std::string& key);
  /// Member lookup; nullptr when absent or not an object.
  const Json* Find(const std::string& key) const noexcept;
  const std::vector<Member>& members() const noexcept { return members_; }

  /// Structural equality (numbers compare exactly; key order ignored for
  /// objects would be surprising in tests, so order matters).
  bool operator==(const Json& other) const;
  bool operator!=(const Json& other) const { return !(*this == other); }

  /// Serialises the document. `indent` < 0 renders compact one-line JSON;
  /// otherwise nested levels are indented by `indent` spaces.
  std::string Dump(int indent = -1) const;

  /// Strict parser for the subset Dump() emits (standard JSON: UTF-8 text,
  /// \uXXXX escapes, no trailing commas or comments).
  static Result<Json> Parse(const std::string& text);

  /// Escapes and quotes a string as a JSON string literal.
  static std::string Quote(const std::string& text);

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  bool integral_ = false;
  std::string string_;
  std::vector<Json> elements_;
  std::vector<Member> members_;
};

/// Writes `text` to `path`, replacing any existing file.
Status WriteFile(const std::string& path, const std::string& text);

/// Reads the entire file at `path`.
Result<std::string> ReadFile(const std::string& path);

}  // namespace hipacc::support
