file(REMOVE_RECURSE
  "libhipacc_hwmodel.a"
)
