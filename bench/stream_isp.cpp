// Streaming camera-ISP benchmark: the raw->YUV pipeline (ops/isp.hpp) run
// over a frame sequence through the StreamExecutor, serial window vs
// frames-in-flight overlap.
//
// Two views of the same compiled plan:
//  * executed: every frame really runs (host bytecode executor for the
//    point/convolution stages), per-frame outputs are FNV-hashed, and the
//    overlap run must reproduce the serial run's hashes bit for bit;
//    sustained wall fps and p99 frame latency come from these runs.
//  * modelled: the simulated device's per-queue timeline (compute + H2D +
//    D2H copy queues, sim::StreamTimeline) replays the same stages with
//    PCIe-modelled copies. This is the device the repository benchmarks
//    (host wall-clock depends on the build machine's cores; the modelled
//    timeline is deterministic), so the --min-speedup gate holds the
//    overlap mode's modelled sustained fps to >= 1.3x serial.
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "image/synthetic.hpp"
#include "ops/isp.hpp"
#include "runtime/stream_executor.hpp"
#include "sim/trace.hpp"
#include "support/string_utils.hpp"

using namespace hipacc;

namespace {

/// FNV-1a over an image's pixel bytes — cheap per-frame output identity.
std::uint64_t HashImage(const HostImage<float>& image) {
  std::uint64_t hash = 1469598103934665603ull;
  const unsigned char* bytes =
      reinterpret_cast<const unsigned char*>(image.data());
  const std::size_t count = image.size() * sizeof(float);
  for (std::size_t i = 0; i < count; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ull;
  }
  return hash;
}

struct ModeResult {
  runtime::StreamStats stats;
  runtime::StreamModel model;
  std::vector<std::uint64_t> hashes;  ///< y_dn ^ u ^ v per frame
};

/// One full streamed run of the ISP graph in the given mode. Output images
/// rotate through `window` slots; the in-order retire contract makes the
/// rotation safe (frame f retires before frame f+window is admitted).
Result<ModeResult> RunMode(runtime::StreamMode mode, int frames, int in_flight,
                           int size, double fps_target,
                           const std::vector<HostImage<float>>& raws,
                           const HostImage<float>& gain,
                           sim::TraceSink* trace) {
  runtime::PipelineGraph graph;
  ops::BuildCameraIspGraph(graph, size, size, ast::BoundaryMode::kClamp);

  runtime::GraphOptions gopts;
  gopts.run.trace = trace;
  gopts.fuse = bench::Tuning().fuse;

  runtime::StreamOptions sopts;
  sopts.mode = mode;
  sopts.in_flight = in_flight;
  sopts.fps_target = fps_target;
  runtime::StreamExecutor executor(graph, gopts, sopts);
  HIPACC_RETURN_IF_ERROR(executor.Prepare());

  const int window = executor.window();
  std::vector<HostImage<float>> y(window, HostImage<float>(size, size));
  std::vector<HostImage<float>> u(window, HostImage<float>(size, size));
  std::vector<HostImage<float>> v(window, HostImage<float>(size, size));

  ModeResult result;
  result.hashes.resize(static_cast<std::size_t>(frames));
  const Status run = executor.Run(
      frames,
      [&](long long frame, runtime::PipelineGraph::InputBindings* in,
          runtime::PipelineGraph::OutputBindings* out) {
        const std::size_t slot = static_cast<std::size_t>(frame % window);
        in->assign({{"raw", &raws[static_cast<std::size_t>(frame) %
                                  raws.size()]},
                    {"gain", &gain}});
        out->assign(
            {{"y_dn", &y[slot]}, {"u", &u[slot]}, {"v", &v[slot]}});
        return Status::Ok();
      },
      [&](long long frame) {
        const std::size_t slot = static_cast<std::size_t>(frame % window);
        result.hashes[static_cast<std::size_t>(frame)] =
            HashImage(y[slot]) ^ HashImage(u[slot]) ^ HashImage(v[slot]);
        return Status::Ok();
      });
  HIPACC_RETURN_IF_ERROR(run);
  result.stats = executor.stats();

  Result<runtime::StreamModel> model = executor.ModelThroughput(frames);
  if (!model.ok()) return model.status();
  result.model = model.value();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  int size = 512;
  int distinct_raws = 4;
  std::string json_out = "BENCH_streaming.json";
  std::string min_speedup_text = "1.3";
  runtime::StreamCliConfig stream_cli;

  support::CliParser cli = bench::MakeBenchCli(
      "stream_isp",
      "camera ISP over a frame stream: serial vs frames-in-flight overlap");
  runtime::RegisterStreamFlags(&cli, &stream_cli);
  cli.Int("size", &size, "N", "square frame extent (default 512)");
  cli.Int("distinct-raws", &distinct_raws, "N",
          "distinct synthetic raw frames cycled through (default 4)");
  cli.String("min-speedup", &min_speedup_text, "X",
             "fail unless overlap modelled fps >= X * serial (default 1.3; "
             "0 disables)");
  cli.String("json-out", &json_out, "FILE",
             "BENCH_*.json report path (default BENCH_streaming.json)");
  if (const int code = cli.HandleArgs(argc, argv); code >= 0) return code;

  Result<runtime::StreamOptions> sopts = stream_cli.ToOptions();
  if (!sopts.ok()) {
    std::fprintf(stderr, "error: %s\n", sopts.status().ToString().c_str());
    return 2;
  }
  const double min_speedup = std::atof(min_speedup_text.c_str());
  const int frames = stream_cli.frames;
  const int in_flight = stream_cli.in_flight;
  const double fps_target = stream_cli.fps_target;

  std::vector<HostImage<float>> raws;
  for (int i = 0; i < std::max(1, distinct_raws); ++i)
    raws.push_back(MakeNoiseImage(size, size, 0x15Cu + i));
  const HostImage<float> gain = ops::MakeVignettingGain(size, size);

  sim::TraceSink trace;
  const bool both = sopts.value().mode == runtime::StreamMode::kOverlap;
  // Serial is always run: it is the bit-identity reference and the speedup
  // baseline. Overlap runs unless --stream-mode=serial narrowed the bench.
  Result<ModeResult> serial =
      RunMode(runtime::StreamMode::kSerial, frames, in_flight, size,
              fps_target, raws, gain, &trace);
  if (!serial.ok()) {
    std::fprintf(stderr, "error: serial run: %s\n",
                 serial.status().ToString().c_str());
    return 1;
  }
  Result<ModeResult> overlap =
      both ? RunMode(runtime::StreamMode::kOverlap, frames, in_flight, size,
                     fps_target, raws, gain, &trace)
           : Result<ModeResult>(serial.value());
  if (!overlap.ok()) {
    std::fprintf(stderr, "error: overlap run: %s\n",
                 overlap.status().ToString().c_str());
    return 1;
  }

  if (both) {
    for (int f = 0; f < frames; ++f) {
      if (serial.value().hashes[static_cast<std::size_t>(f)] !=
          overlap.value().hashes[static_cast<std::size_t>(f)]) {
        std::fprintf(stderr,
                     "error: frame %d outputs differ between serial and "
                     "overlap runs\n",
                     f);
        return 1;
      }
    }
  }

  bench::Table table({"wall_fps", "p50_ms", "p99_ms", "max_in_flight",
                      "model_fps", "compute_util", "copy_util"});
  const auto add_row = [&table](const char* label, const ModeResult& r) {
    table.Row(label);
    table.Cell(r.stats.fps);
    table.Cell(r.stats.LatencyPercentile(50));
    table.Cell(r.stats.LatencyPercentile(99));
    table.Cell(static_cast<double>(r.stats.max_in_flight));
    table.Cell(r.model.fps);
    table.Cell(StrFormat("%.0f%%", 100.0 * r.model.compute_utilisation));
    table.Cell(StrFormat("%.0f%% / %.0f%%", 100.0 * r.model.h2d_utilisation,
                         100.0 * r.model.d2h_utilisation));
  };
  add_row("serial", serial.value());
  if (both) add_row(StrFormat("overlap(%d)", in_flight).c_str(),
                    overlap.value());

  const std::string title = StrFormat(
      "Camera ISP stream, %dx%d, %d frames: serial vs %d-in-flight overlap",
      size, size, frames, in_flight);
  std::printf("%s\n", table.Render(title).c_str());

  const double model_speedup =
      serial.value().model.fps > 0.0
          ? overlap.value().model.fps / serial.value().model.fps
          : 0.0;
  std::printf("modelled sustained fps: serial %.1f, overlap %.1f (%.2fx)\n",
              serial.value().model.fps, overlap.value().model.fps,
              model_speedup);
  for (const double target : {30.0, 60.0, 120.0}) {
    std::printf("  %3.0f fps target: serial %s, overlap %s\n", target,
                serial.value().model.fps >= target ? "met" : "missed",
                overlap.value().model.fps >= target ? "met" : "missed");
  }
  std::printf(
      "stream counters: frames %lld, runs %lld, host launches %lld, pool "
      "allocs %lld, pool reuses %lld\n",
      static_cast<long long>(trace.counter("stream.frames")),
      static_cast<long long>(trace.counter("stream.runs")),
      static_cast<long long>(trace.counter("graph.launches.host")),
      static_cast<long long>(trace.counter("bufpool.alloc")),
      static_cast<long long>(trace.counter("bufpool.reuse")));

  if (!json_out.empty()) {
    support::Json doc = table.ToJson(title);
    support::Json summary = support::Json::Object();
    summary["frames"] = static_cast<double>(frames);
    summary["in_flight"] = static_cast<double>(in_flight);
    summary["size"] = static_cast<double>(size);
    summary["serial_model_fps"] = serial.value().model.fps;
    summary["overlap_model_fps"] = overlap.value().model.fps;
    summary["model_speedup"] = model_speedup;
    summary["serial_wall_fps"] = serial.value().stats.fps;
    summary["overlap_wall_fps"] = overlap.value().stats.fps;
    summary["bit_identical"] = both;
    if (fps_target > 0.0) summary["fps_target"] = fps_target;
    doc["summary"] = std::move(summary);
    support::Json counters = support::Json::Object();
    for (const char* key :
         {"stream.frames", "stream.runs", "graph.stages",
          "graph.fused_edges", "graph.launches.host", "graph.launches.sim",
          "bufpool.alloc", "bufpool.reuse", "bufpool.peak_bytes"})
      counters[key] = static_cast<double>(trace.counter(key));
    doc["counters"] = std::move(counters);
    const Status written = support::WriteFile(json_out, doc.Dump(2) + "\n");
    if (!written.ok()) {
      std::fprintf(stderr, "error: %s\n", written.ToString().c_str());
      return 1;
    }
  }

  if (both && min_speedup > 0.0 && model_speedup < min_speedup) {
    std::fprintf(stderr,
                 "error: overlap modelled fps only %.2fx serial "
                 "(required %.2fx)\n",
                 model_speedup, min_speedup);
    return 1;
  }
  return 0;
}
