#include "sim/timing.hpp"

#include <algorithm>

namespace hipacc::sim {

TimingBreakdown ModelTime(const Metrics& metrics, const hw::DeviceSpec& device,
                          const hw::OccupancyResult& occupancy,
                          double issue_scale) {
  TimingBreakdown t;

  // ---- compute bound -------------------------------------------------------
  // A warp ALU instruction occupies the SM's ALUs for simd/alus cycles; SFU
  // calls occupy the special-function units, issuing in parallel with ALUs.
  // Shared-memory instructions issue like ALU ops plus conflict replays.
  const double alu_cycles =
      static_cast<double>(metrics.alu_ops + metrics.smem_accesses +
                          metrics.smem_conflict_cycles) *
      device.simd_width / device.alus_per_sm;
  const double sfu_cycles = static_cast<double>(metrics.sfu_calls) *
                            device.sfu_ops_per_transcendental *
                            device.simd_width / device.sfus_per_sm;
  // Memory instructions also consume issue slots.
  const double mem_issue_cycles =
      static_cast<double>(metrics.global_read_instrs +
                          metrics.global_write_instrs +
                          metrics.tex_read_instrs) *
      device.simd_width / device.alus_per_sm;
  // ALU and SFU pipes overlap only partially: both share the issue stage
  // and dependencies serialise transcendental results into ALU consumers,
  // so the shorter pipe hides at ~50%.
  const double alu_path = alu_cycles + mem_issue_cycles;
  const double compute_total = std::max(alu_path, sfu_cycles) +
                               0.5 * std::min(alu_path, sfu_cycles);
  t.compute_cycles = compute_total * issue_scale / device.num_sms;

  // ---- bandwidth bound -----------------------------------------------------
  const double bytes_moved =
      static_cast<double>(metrics.global_transactions +
                          metrics.tex_transactions) *
      device.mem_transaction_bytes;
  const double bytes_per_cycle =
      device.mem_bandwidth_gbps / device.core_clock_ghz;  // chip-wide
  t.bandwidth_cycles = bytes_moved / bytes_per_cycle;

  // ---- latency bound -------------------------------------------------------
  const double latency_sum =
      static_cast<double>(metrics.global_transactions +
                          metrics.tex_transactions) *
          device.mem_latency_cycles +
      static_cast<double>(metrics.l1_hits + metrics.tex_hits) *
          device.tex_cache_latency_cycles +
      static_cast<double>(metrics.const_broadcasts +
                          metrics.const_serialized) *
          device.const_cache_latency_cycles +
      static_cast<double>(metrics.smem_accesses) * device.smem_latency_cycles;
  const double concurrency =
      std::max(1, occupancy.active_warps) * device.num_sms;
  t.latency_cycles = latency_sum / concurrency;

  const double cycles =
      std::max({t.compute_cycles, t.bandwidth_cycles, t.latency_cycles});
  t.total_ms = cycles / (device.core_clock_ghz * 1e6) + kLaunchOverheadMs;
  return t;
}

double ModelCopyMs(long long bytes, const hw::DeviceSpec& device) {
  // GB/s == bytes/µs, so bytes / (gbps * 1e3) is milliseconds.
  const double bandwidth_bytes_per_ms = device.pcie_bandwidth_gbps * 1e6;
  return static_cast<double>(bytes) / bandwidth_bytes_per_ms + kCopyOverheadMs;
}

const char* to_string(StreamQueue queue) noexcept {
  switch (queue) {
    case StreamQueue::kCompute: return "compute";
    case StreamQueue::kCopyH2D: return "copy_h2d";
    case StreamQueue::kCopyD2H: return "copy_d2h";
  }
  return "?";
}

double StreamTimeline::Enqueue(StreamQueue queue, double ready_ms,
                               double duration_ms) {
  const int q = static_cast<int>(queue);
  // Serial mode: one shared availability timeline — a copy blocks the next
  // kernel launch exactly as the summed-launches model assumed.
  double& avail = overlap_ ? avail_[q] : avail_[0];
  const double start = std::max(ready_ms, avail);
  const double end = start + duration_ms;
  avail = end;
  busy_[q] += duration_ms;
  if (end > finish_ms_) finish_ms_ = end;
  ++ops_;
  return end;
}

}  // namespace hipacc::sim
