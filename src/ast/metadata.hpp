// Access/execute metadata shared between the embedded DSL, the compiler
// passes, and the simulator: boundary-handling modes (Table I of the paper),
// local-operator window extents, and device memory spaces.
#pragma once

#include <string>

namespace hipacc::ast {

/// Boundary handling modes for out-of-bounds image accesses (paper Table I).
enum class BoundaryMode {
  kUndefined,  ///< no handling: out-of-bounds behaviour unspecified
  kRepeat,     ///< image tiles periodically at the border
  kClamp,      ///< last valid pixel within the image
  kMirror,     ///< image mirrored at the border (key mode in medical imaging)
  kConstant,   ///< user-supplied constant value
};

const char* to_string(BoundaryMode mode) noexcept;

/// Symmetric local-operator window: size (2*half_x+1) x (2*half_y+1).
/// The paper requires uneven window sizes (3x3, 5x5, 9x3, 13x13, ...).
struct WindowExtent {
  int half_x = 0;
  int half_y = 0;

  int size_x() const noexcept { return 2 * half_x + 1; }
  int size_y() const noexcept { return 2 * half_y + 1; }

  /// Builds from full window sizes; both must be odd and positive.
  static WindowExtent FromSize(int size_x, int size_y);

  /// Component-wise maximum — used when a kernel has several accessors and
  /// the largest window decides the boundary-handling region sizes.
  WindowExtent Union(const WindowExtent& other) const {
    return {half_x > other.half_x ? half_x : other.half_x,
            half_y > other.half_y ? half_y : other.half_y};
  }

  bool operator==(const WindowExtent&) const = default;
};

/// Device memory spaces a lowered memory access can target.
enum class MemSpace {
  kGlobal,    ///< linear global memory (coalescing rules apply)
  kTexture,   ///< read through the texture path / image object (cached)
  kShared,    ///< on-chip scratchpad (shared/local memory)
  kConstant,  ///< constant memory (cached, broadcast on uniform access)
};

const char* to_string(MemSpace space) noexcept;

/// The nine boundary-handling regions of Figure 3, plus the single variant
/// used when no boundary handling is needed at all.
enum class Region {
  kTopLeft, kTop, kTopRight,
  kLeft, kInterior, kRight,
  kBottomLeft, kBottom, kBottomRight,
};

const char* to_string(Region region) noexcept;

/// Which out-of-bounds directions a given region must guard against.
struct RegionChecks {
  bool lo_x = false;  ///< index may be < 0 in x
  bool hi_x = false;  ///< index may be >= width
  bool lo_y = false;  ///< index may be < 0 in y
  bool hi_y = false;  ///< index may be >= height

  bool any() const noexcept { return lo_x || hi_x || lo_y || hi_y; }
  /// Number of guards active — proxy for added instruction count.
  int count() const noexcept {
    return (lo_x ? 1 : 0) + (hi_x ? 1 : 0) + (lo_y ? 1 : 0) + (hi_y ? 1 : 0);
  }
};

/// The guard set each of the nine regions requires (Figure 3 / Section IV-B).
RegionChecks ChecksFor(Region region) noexcept;

}  // namespace hipacc::ast
