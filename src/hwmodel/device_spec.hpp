// Abstract hardware model of graphics card architectures (paper Section V):
// the attributes the source-to-source compiler combines with per-kernel
// resource usage to pick valid, high-occupancy configurations, plus the
// microarchitectural parameters the performance model needs.
#pragma once

#include <string>

namespace hipacc::hw {

enum class Vendor { kNvidia, kAmd };

const char* to_string(Vendor vendor) noexcept;

/// Instruction-issue style of the shader core; AMD's VLIW4/VLIW5 machines
/// underutilise lanes on scalar code (paper Section VI-A, VIII).
enum class CoreIsa { kScalar, kVliw4, kVliw5 };

/// One GPU model. Sizes in bytes unless noted. The first block of fields is
/// exactly the paper's hardware model (a–d in Section V-C); the rest
/// parameterises the analytical performance model in src/sim.
struct DeviceSpec {
  std::string name;
  Vendor vendor = Vendor::kNvidia;
  /// NVIDIA compute capability times 10 (13 = 1.3, 20 = 2.0); 0 for AMD.
  int compute_capability = 0;

  // --- (a) SIMD width -------------------------------------------------
  int simd_width = 32;  ///< warp (NVIDIA) or wavefront (AMD) size

  // --- (b)/(c) thread configuration limits ----------------------------
  int max_threads_per_block = 512;  ///< per work-group limit
  int max_threads_per_sm = 1024;    ///< per SIMD unit (SM / CU)
  int max_blocks_per_sm = 8;

  // --- (d) register / shared-memory capacity & allocation -------------
  int regs_per_sm = 16384;        ///< 32-bit registers per SIMD unit
  int reg_alloc_granularity = 512;///< registers round up to this multiple
  /// True if registers are allocated per block (CC 1.x), false per warp
  /// (CC 2.x) — the two strategies the paper's model distinguishes.
  bool regs_allocated_per_block = true;
  int smem_per_sm = 16 * 1024;    ///< scratchpad bytes per SIMD unit
  int smem_alloc_granularity = 512;
  int smem_banks = 16;

  // --- execution resources (performance model) ------------------------
  int num_sms = 16;            ///< number of SIMD units on the chip
  int alus_per_sm = 8;         ///< scalar ALUs issuing per cycle per SM
  int sfus_per_sm = 2;         ///< special-function units (exp, sin, ...)
  /// SFU slots one transcendental call occupies (range reduction etc.);
  /// newer architectures have fast single-instruction paths.
  int sfu_ops_per_transcendental = 1;
  CoreIsa isa = CoreIsa::kScalar;
  double core_clock_ghz = 1.3;

  // --- memory system (performance model) ------------------------------
  double mem_bandwidth_gbps = 100.0;  ///< peak global-memory bandwidth
  int mem_latency_cycles = 450;       ///< uncached global access latency
  int mem_transaction_bytes = 128;    ///< coalescing segment size
  bool has_global_l1 = false;  ///< Fermi caches global loads by default
  int tex_cache_bytes = 8 * 1024;     ///< per-SM texture cache
  int tex_cache_latency_cycles = 60;  ///< texture-cache hit latency
  int const_cache_latency_cycles = 4; ///< constant-cache broadcast hit
  int smem_latency_cycles = 4;        ///< scratchpad access (no conflicts)

  // --- host interconnect (streaming model) ----------------------------
  /// Effective host<->device DMA bandwidth. The 2012-era boards in the
  /// device database all sit on PCIe 2.0 x16: ~8 GB/s theoretical, ~6 GB/s
  /// sustained with pinned memory — the number the per-queue streaming
  /// timeline charges uploads/downloads against.
  double pcie_bandwidth_gbps = 6.0;

  /// Relative issue-slot cost of OpenCL-compiled kernels vs the native
  /// toolchain — the 2011/2012-era OpenCL compilers generated measurably
  /// worse code than nvcc on NVIDIA parts (Tables II vs III); AMD's CAL
  /// stack was OpenCL-first, so no penalty there.
  double opencl_issue_overhead = 1.0;

  int max_warps_per_sm() const noexcept {
    return max_threads_per_sm / simd_width;
  }
  /// VLIW machines co-issue this many lanes; scalar code fills only one.
  int vliw_lanes() const noexcept {
    switch (isa) {
      case CoreIsa::kVliw4: return 4;
      case CoreIsa::kVliw5: return 5;
      default: return 1;
    }
  }
};

}  // namespace hipacc::hw
