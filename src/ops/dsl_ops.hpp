// DSL-class implementations of the built-in operators (the programmer-facing
// form of Listing 1 / Listing 5). These execute functionally on the host and
// serve as the reference the compiled/simulated path is tested against.
#pragma once

#include <cmath>

#include "dsl/kernel.hpp"
#include "dsl/mask.hpp"

namespace hipacc::ops {

/// Bilateral filter without masks (Listing 1).
class BilateralFilter : public dsl::Kernel<float> {
 public:
  BilateralFilter(dsl::IterationSpace<float>& is, dsl::Accessor<float>& input,
                  int sigma_d, int sigma_r)
      : Kernel(is), input_(input), sigma_d_(sigma_d), sigma_r_(sigma_r) {
    addAccessor(&input_);
  }

  void kernel() override {
    const float c_r = 1.0f / (2.0f * sigma_r_ * sigma_r_);
    const float c_d = 1.0f / (2.0f * sigma_d_ * sigma_d_);
    float d = 0.0f, p = 0.0f;
    for (int yf = -2 * sigma_d_; yf <= 2 * sigma_d_; ++yf) {
      for (int xf = -2 * sigma_d_; xf <= 2 * sigma_d_; ++xf) {
        const float diff = input_(xf, yf) - input_();
        const float s = std::exp(-c_r * diff * diff);
        const float c = std::exp(-c_d * xf * xf) * std::exp(-c_d * yf * yf);
        d += s * c;
        p += s * c * input_(xf, yf);
      }
    }
    output() = p / d;
  }

 private:
  dsl::Accessor<float>& input_;
  int sigma_d_;
  int sigma_r_;
};

/// Bilateral filter with the closeness weights in a Mask (Listing 5).
class BilateralFilterMask : public dsl::Kernel<float> {
 public:
  BilateralFilterMask(dsl::IterationSpace<float>& is,
                      dsl::Accessor<float>& input,
                      const dsl::Mask<float>& cmask, int sigma_d, int sigma_r)
      : Kernel(is), input_(input), cmask_(cmask), sigma_d_(sigma_d),
        sigma_r_(sigma_r) {
    addAccessor(&input_);
  }

  void kernel() override {
    const float c_r = 1.0f / (2.0f * sigma_r_ * sigma_r_);
    float d = 0.0f, p = 0.0f;
    for (int yf = -2 * sigma_d_; yf <= 2 * sigma_d_; ++yf) {
      for (int xf = -2 * sigma_d_; xf <= 2 * sigma_d_; ++xf) {
        const float diff = input_(xf, yf) - input_();
        const float s = std::exp(-c_r * diff * diff);
        const float c = cmask_(xf, yf);
        d += s * c;
        p += s * c * input_(xf, yf);
      }
    }
    output() = p / d;
  }

 private:
  dsl::Accessor<float>& input_;
  const dsl::Mask<float>& cmask_;
  int sigma_d_;
  int sigma_r_;
};

/// Generic mask convolution (Gaussian, Sobel, Laplacian, box, ...).
class Convolution : public dsl::Kernel<float> {
 public:
  Convolution(dsl::IterationSpace<float>& is, dsl::Accessor<float>& input,
              const dsl::Mask<float>& mask)
      : Kernel(is), input_(input), mask_(mask) {
    addAccessor(&input_);
  }

  void kernel() override {
    float sum = 0.0f;
    for (int yf = -mask_.half_y(); yf <= mask_.half_y(); ++yf)
      for (int xf = -mask_.half_x(); xf <= mask_.half_x(); ++xf)
        sum += mask_(xf, yf) * input_(xf, yf);
    output() = sum;
  }

 private:
  dsl::Accessor<float>& input_;
  const dsl::Mask<float>& mask_;
};

/// Grayscale morphology over a Domain footprint.
class Morphology : public dsl::Kernel<float> {
 public:
  enum class Op { kErode, kDilate };

  Morphology(dsl::IterationSpace<float>& is, dsl::Accessor<float>& input,
             const dsl::Domain& domain, Op op)
      : Kernel(is), input_(input), domain_(domain), op_(op) {
    addAccessor(&input_);
  }

  void kernel() override {
    float m = input_();
    for (int yf = -domain_.half_y(); yf <= domain_.half_y(); ++yf)
      for (int xf = -domain_.half_x(); xf <= domain_.half_x(); ++xf) {
        if (!domain_(xf, yf)) continue;
        const float v = input_(xf, yf);
        m = op_ == Op::kErode ? std::fmin(m, v) : std::fmax(m, v);
      }
    output() = m;
  }

 private:
  dsl::Accessor<float>& input_;
  const dsl::Domain& domain_;
  Op op_;
};

/// Point operator: affine pixel transform.
class ScaleOffset : public dsl::Kernel<float> {
 public:
  ScaleOffset(dsl::IterationSpace<float>& is, dsl::Accessor<float>& input,
              float scale, float offset)
      : Kernel(is), input_(input), scale_(scale), offset_(offset) {
    addAccessor(&input_);
  }

  void kernel() override { output() = scale_ * input_() + offset_; }

 private:
  dsl::Accessor<float>& input_;
  float scale_;
  float offset_;
};

}  // namespace hipacc::ops
