// Built-in device database. The paper's compiler "contains information about
// all available CUDA-capable graphics cards as specified by the compute
// capability and AMD GPUs of the Radeon HD 6900 and HD 5800 series"; we ship
// the devices the evaluation uses plus a few relatives for sweeps.
#pragma once

#include <vector>

#include "hwmodel/device_spec.hpp"
#include "support/status.hpp"

namespace hipacc::hw {

/// All devices known to the compiler.
const std::vector<DeviceSpec>& DeviceDatabase();

/// Looks a device up by exact name (e.g. "Tesla C2050").
Result<DeviceSpec> FindDevice(const std::string& name);

/// Convenience accessors for the evaluation's four cards.
DeviceSpec TeslaC2050();
DeviceSpec QuadroFx5800();
DeviceSpec RadeonHd5870();
DeviceSpec RadeonHd6970();

}  // namespace hipacc::hw
