// Minimal binary (de)serialisation for cache artifacts. Little-endian
// fixed-width integers, IEEE doubles via memcpy, and length-prefixed
// strings. The reader is fully bounds-checked and never throws: any
// truncated or malformed buffer flips a sticky error flag, subsequent
// reads return zero values, and the caller checks `ok()` once at the end —
// exactly the failure discipline a cache wants, where a corrupt entry must
// decode as "miss", never as UB.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace hipacc::support {

class BinaryWriter {
 public:
  void U8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void Bool(bool v) { U8(v ? 1 : 0); }
  void U32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back(static_cast<char>(v >> (8 * i)));
  }
  void U64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<char>(v >> (8 * i)));
  }
  void I32(std::int32_t v) { U32(static_cast<std::uint32_t>(v)); }
  void I64(std::int64_t v) { U64(static_cast<std::uint64_t>(v)); }
  void F64(double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  void Str(std::string_view s) {
    U64(s.size());
    out_.append(s.data(), s.size());
  }

  const std::string& data() const noexcept { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  std::uint8_t U8() {
    if (!Need(1)) return 0;
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  bool Bool() { return U8() != 0; }
  std::uint32_t U32() {
    if (!Need(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(
               static_cast<std::uint8_t>(data_[pos_ + i]))
           << (8 * i);
    pos_ += 4;
    return v;
  }
  std::uint64_t U64() {
    if (!Need(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(
               static_cast<std::uint8_t>(data_[pos_ + i]))
           << (8 * i);
    pos_ += 8;
    return v;
  }
  std::int32_t I32() { return static_cast<std::int32_t>(U32()); }
  std::int64_t I64() { return static_cast<std::int64_t>(U64()); }
  double F64() {
    const std::uint64_t bits = U64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string Str() {
    const std::uint64_t n = U64();
    if (!Need(n)) return {};
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }

  /// True iff every read so far was in-bounds. A decode is valid only when
  /// `ok()` holds AND the caller consumed what it expected (`AtEnd()` for
  /// whole-buffer decodes).
  bool ok() const noexcept { return ok_; }
  bool AtEnd() const noexcept { return ok_ && pos_ == data_.size(); }

 private:
  bool Need(std::uint64_t n) {
    if (!ok_ || n > data_.size() - pos_) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace hipacc::support
