// Reproduces Table IX: Gaussian 3x3 and 5x5 on the Quadro FX 5800.
#include <cstdio>

#include "common/gaussian_table.hpp"
#include "common/table.hpp"
#include "hwmodel/device_db.hpp"

int main(int argc, char** argv) {
  hipacc::support::CliParser cli =
      hipacc::bench::MakeBenchCli("table9_gaussian_quadro", "Table IX: Gaussian filters, Quadro FX 5800");
  if (const int code = cli.HandleArgs(argc, argv); code >= 0) return code;
  hipacc::bench::GaussianTableOptions options;
  options.device = hipacc::hw::QuadroFx5800();
  options.json_out = "BENCH_table9.json";
  std::printf("%s\n",
              hipacc::bench::RunGaussianTable(
                  "Table IX: Gaussian filters, Quadro FX 5800", options)
                  .c_str());
  return 0;
}
