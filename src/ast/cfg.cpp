#include "ast/cfg.hpp"

#include "support/status.hpp"

namespace hipacc::ast {
namespace {

class CfgBuilder {
 public:
  Cfg Build(const StmtPtr& body) {
    const int entry = NewBlock();
    current_ = entry;
    Visit(body);
    const int exit = NewBlock();
    Link(current_, exit);
    cfg_.entry = entry;
    cfg_.exit = exit;
    return std::move(cfg_);
  }

 private:
  int NewBlock() {
    BasicBlock bb;
    bb.id = static_cast<int>(cfg_.blocks.size());
    cfg_.blocks.push_back(std::move(bb));
    return cfg_.blocks.back().id;
  }

  void Link(int from, int to) {
    cfg_.blocks[static_cast<size_t>(from)].successors.push_back(to);
  }

  void Visit(const StmtPtr& stmt) {
    if (!stmt) return;
    const Stmt& s = *stmt;
    switch (s.kind) {
      case StmtKind::kBlock:
        for (const auto& child : s.body) Visit(child);
        return;
      case StmtKind::kIf: {
        cfg_.blocks[static_cast<size_t>(current_)].terminator = &s;
        const int cond_block = current_;
        const int then_block = NewBlock();
        Link(cond_block, then_block);
        current_ = then_block;
        Visit(s.body[0]);
        const int then_end = current_;
        int else_end = cond_block;
        if (s.body.size() > 1) {
          const int else_block = NewBlock();
          Link(cond_block, else_block);
          current_ = else_block;
          Visit(s.body[1]);
          else_end = current_;
        }
        const int join = NewBlock();
        Link(then_end, join);
        Link(else_end, join);
        current_ = join;
        return;
      }
      case StmtKind::kFor: {
        const int header = NewBlock();
        Link(current_, header);
        cfg_.blocks[static_cast<size_t>(header)].terminator = &s;
        const int body_block = NewBlock();
        Link(header, body_block);
        current_ = body_block;
        Visit(s.body[0]);
        Link(current_, header);  // back edge
        const int after = NewBlock();
        Link(header, after);
        current_ = after;
        return;
      }
      default:
        cfg_.blocks[static_cast<size_t>(current_)].stmts.push_back(&s);
        return;
    }
  }

  Cfg cfg_;
  int current_ = 0;
};

}  // namespace

Cfg BuildCfg(const StmtPtr& body) { return CfgBuilder().Build(body); }

std::vector<int> DepthFirstOrder(const Cfg& cfg) {
  std::vector<int> order;
  std::vector<bool> seen(cfg.blocks.size(), false);
  std::vector<int> stack = {cfg.entry};
  while (!stack.empty()) {
    const int id = stack.back();
    stack.pop_back();
    if (seen[static_cast<size_t>(id)]) continue;
    seen[static_cast<size_t>(id)] = true;
    order.push_back(id);
    const auto& successors = cfg.block(id).successors;
    for (auto it = successors.rbegin(); it != successors.rend(); ++it)
      stack.push_back(*it);
  }
  return order;
}

}  // namespace hipacc::ast
