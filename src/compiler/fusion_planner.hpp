// Fusion planner: decides *which* fusion rewrites (compiler/fusion.hpp) to
// apply to a pipeline of kernel stages. The planner separates three
// concerns the old point-wise-only rewrite conflated:
//
//  * candidate enumeration — point-wise and halo producer→consumer edges
//    (single-consumer, non-external intermediates of matching extent) and
//    horizontal sibling groups (independent stages sharing an input image
//    over the same iteration space);
//
//  * legality — structural rules per kind, delegated to the Fuse* mergers,
//    which reject rather than assume (multi-output producers, name capture,
//    unsupported boundary modes, non-expression producer bodies, ...);
//
//  * profitability — the candidate's fused kernel is compiled through the
//    normal pipeline (parse → lower → estimate → select_config) against the
//    target device: when no launch configuration fits the device's register
//    file / scratchpad, the candidate is declined outright, and otherwise a
//    per-pixel cost model compares saved global traffic + launch overhead
//    against the recompute the fusion introduces (halo fusion re-evaluates
//    the producer once per consumer tap).
//
// Each call plans ONE step; the caller applies it to its stage list and
// calls again until no candidate is both legal and profitable. Every
// examined candidate leaves a CandidateDecision for --explain-fusion and
// the fuse.rejected.{legality,profitability} counters.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "compiler/driver.hpp"
#include "compiler/fusion.hpp"

namespace hipacc::compiler {

/// The planner's view of one schedulable stage. Non-kernel stages (sources,
/// host-side resample stages) participate as barriers only.
struct PlannerStage {
  /// A DSL kernel stage whose source the planner may rewrite.
  bool fusable = false;
  /// Virtual image the stage produces (stage identity in decisions).
  std::string name;
  /// The stage's current (possibly already fused) kernel source. Owned by
  /// the caller; must outlive the PlanNextFusion call.
  const frontend::KernelSource* source = nullptr;
  /// accessor name -> virtual image consumed.
  std::vector<std::pair<std::string, std::string>> inputs;
  /// Further virtual images the stage produces as named extra outputs
  /// (earlier horizontal fusions). Such images cannot be eliminated by
  /// point/halo fusion, but stages reading them still resolve their
  /// producer for dependence checks.
  std::vector<std::string> extra_images;
  int width = 0;
  int height = 0;
  /// Externally visible image: its buffer must materialise, so the stage
  /// cannot be eliminated as a point/halo fusion producer (it can still be
  /// merged horizontally — both outputs survive).
  bool external = false;
};

/// Why (or why not) one examined candidate was applied.
struct CandidateDecision {
  FuseKind kind = FuseKind::kPoint;
  std::string producer;  ///< producer stage (point/halo) or first sibling
  std::string consumer;  ///< consumer stage (point/halo) or second sibling
  bool legal = false;
  bool accepted = false;
  /// Reject reason, or the accepted candidate's cost summary.
  std::string reason;
  /// Modelled per-pixel cycles saved (unfused minus fused); meaningful only
  /// when the profitability model ran (legal == true).
  double score = 0.0;
};

/// Keeps one decision per (kind, producer, consumer): the planner is
/// re-invoked after every applied step and re-examines surviving rejected
/// candidates, so callers accumulating decisions across calls dedupe before
/// reporting (an accepted decision always wins over earlier rejections).
void DedupeDecisions(std::vector<CandidateDecision>* decisions);

/// One planned fusion step, ready to apply.
struct PlannedFusion {
  /// Replay request for the surviving stage's fusion chain
  /// (CompileOptions::fusion).
  FusionRequest request;
  /// The merged source (the surviving stage's new effective source).
  frontend::KernelSource fused;
  /// Index (into the planner's stage view) of the stage that absorbs the
  /// fusion: the consumer for point/halo, the first sibling for horizontal.
  int into = -1;
  /// Index of the stage the step retires. Point/halo: the producer (its
  /// image disappears). Horizontal: the second sibling (its image is then
  /// produced by `into` as a named extra output).
  int retired = -1;
};

struct FusionPlannerOptions {
  /// Candidate kinds the planner may consider (the --fuse= flag).
  FusionMode mode = FusionMode::kAll;
  /// Compilation options for candidate profitability compiles: device,
  /// codegen options, cache, trace. Image extents are overridden per
  /// candidate. Sharing the caller's cache makes the winning candidate's
  /// compile a warm hit when the stage compiles for real.
  CompileOptions compile;
  /// When set, every examined candidate appends its decision.
  std::vector<CandidateDecision>* decisions = nullptr;
};

/// Plans the next fusion step over the current stage view, or nullopt when
/// no candidate is legal and profitable. Candidates are tried point-wise
/// edges first (a strict traffic win), then halo edges, then horizontal
/// sibling pairs; within a kind, in stage order (deterministic).
std::optional<PlannedFusion> PlanNextFusion(
    const std::vector<PlannerStage>& stages,
    const FusionPlannerOptions& options);

}  // namespace hipacc::compiler
