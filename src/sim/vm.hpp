// Bytecode execution engine: runs one thread block of a compiled ProgramSet
// (bytecode.hpp) with the same observable behaviour — outputs, metrics, and
// memory-model call sequence — as the AST interpreter's RunBlock.
#pragma once

#include <cstdint>

#include "hwmodel/device_spec.hpp"
#include "sim/bytecode.hpp"
#include "sim/launch.hpp"
#include "sim/metrics.hpp"

namespace hipacc::sim {

/// Inner-loop dispatch strategy of the VM. Both strategies execute the
/// exact same handler bodies (vm_exec.inc); kThreaded replaces the switch
/// with GCC computed-goto threading (one indirect branch per handler, so
/// the predictor learns per-opcode successor patterns). On compilers
/// without the extension kThreaded silently runs the switch.
enum class VmDispatch {
  kSwitch,    ///< portable switch dispatch (default)
  kThreaded,  ///< computed-goto threaded dispatch (native-tier fallback)
};

/// Executes one thread block through the region-specialised bytecode
/// program. `executed_insns`, when non-null, accumulates the number of
/// instructions dispatched (across all warps of the block).
Status RunBlockBytecode(const Launch& launch, const ProgramSet& programs,
                        const hw::DeviceSpec& device, int block_x_idx,
                        int block_y_idx, Metrics* metrics,
                        std::uint64_t* executed_insns,
                        VmDispatch dispatch = VmDispatch::kSwitch);

}  // namespace hipacc::sim
