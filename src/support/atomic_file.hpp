// Crash-safe filesystem primitives for the on-disk caches. The core
// protocol is write-to-temp + atomic rename: a writer materialises the full
// contents under a unique temporary name in the destination directory, then
// rename(2)s it over the final path. Readers therefore only ever observe
// complete files — a crashed or concurrent writer leaves at worst a stale
// temp file, never a torn entry. rename() is atomic within one filesystem,
// which holds because the temp name lives next to its destination.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "support/status.hpp"

namespace hipacc::support {

/// mkdir -p: creates `path` and every missing parent. Succeeds when the
/// directory already exists.
Status EnsureDirs(const std::string& path);

/// Writes `contents` to `path` via the temp-file + atomic-rename protocol.
/// The parent directory must exist (EnsureDirs it first).
Status WriteFileAtomic(const std::string& path, const std::string& contents);

/// Reads the whole file; std::nullopt when it does not exist (any other
/// I/O failure also reads as absent — callers treat both as a cache miss).
std::optional<std::string> ReadFileIfExists(const std::string& path);

/// Deletes a file; missing files are not an error.
void RemoveFileQuiet(const std::string& path);

/// One regular file inside a directory listing.
struct DirEntry {
  std::string path;        ///< full path
  std::uint64_t size = 0;  ///< bytes
  std::int64_t mtime = 0;  ///< seconds since epoch (LRU ordering)
};

/// Lists the regular files directly inside `dir` (non-recursive); an absent
/// directory lists as empty.
std::vector<DirEntry> ListDirFiles(const std::string& dir);

/// Lists the immediate subdirectory names (not paths) of `dir`.
std::vector<std::string> ListSubdirs(const std::string& dir);

/// Sets a file's modification time to now (LRU touch on cache hits).
/// Best-effort: failures are ignored.
void TouchFile(const std::string& path);

/// The per-user cache root: $XDG_CACHE_HOME or $HOME/.cache, with `app`
/// appended ("~/.cache/<app>"). Empty when neither variable resolves.
std::string UserCacheDir(const std::string& app);

/// Best-effort advisory lock via an O_CREAT|O_EXCL lock file. Used to
/// serialise read-modify-write cycles (the profile store's append-merge);
/// the data files themselves stay safe without it thanks to atomic renames.
/// A lock older than `stale_ms` is broken (its owner crashed).
class FileLock {
 public:
  /// Tries for ~`wait_ms`; `held()` reports the outcome. Proceeding without
  /// the lock is safe (last-writer-wins), just lossier.
  FileLock(const std::string& path, int wait_ms = 200, int stale_ms = 10000);
  ~FileLock();
  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;

  bool held() const noexcept { return held_; }

 private:
  std::string path_;
  bool held_ = false;
};

}  // namespace hipacc::support
