// Golden tests: the complete emitted source for representative kernels must
// match the checked-in references byte for byte, across backends (CUDA and
// OpenCL), boundary modes, and texture policies. After an intentional
// emitter change, regenerate every golden and review the diff:
//
//   HIPACC_REGEN_GOLDEN=1 ./codegen_test --gtest_filter='*Golden*'
//
// which rewrites the files under tests/codegen/golden/ in the source tree.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "codegen/emit.hpp"
#include "codegen/lower.hpp"
#include "ops/kernel_sources.hpp"

namespace hipacc::codegen {
namespace {

#ifndef HIPACC_TEST_DATA_DIR
#define HIPACC_TEST_DATA_DIR "."
#endif

struct GoldenCase {
  std::string file;  ///< name under tests/codegen/golden/
  ast::Backend backend;
  ast::BoundaryMode mode;
  TexturePolicy texture;
};

std::vector<GoldenCase> GoldenCases() {
  using ast::Backend;
  using ast::BoundaryMode;
  return {
      // The original representative kernel: mirror boundaries, linear
      // textures, nine regions.
      {"bilateral_mask_mirror_cuda.golden", Backend::kCuda,
       BoundaryMode::kMirror, TexturePolicy::kLinear},
      // One golden per remaining software-handled boundary mode, plain
      // global-memory reads, so guard emission is covered for each.
      {"bilateral_mask_clamp_cuda.golden", Backend::kCuda,
       BoundaryMode::kClamp, TexturePolicy::kNone},
      {"bilateral_mask_constant_cuda.golden", Backend::kCuda,
       BoundaryMode::kConstant, TexturePolicy::kNone},
      {"bilateral_mask_repeat_cuda.golden", Backend::kCuda,
       BoundaryMode::kRepeat, TexturePolicy::kNone},
      // OpenCL: same kernel through the other backend, with and without
      // image objects.
      {"bilateral_mask_mirror_opencl.golden", Backend::kOpenCL,
       BoundaryMode::kMirror, TexturePolicy::kLinear},
      {"bilateral_mask_clamp_opencl.golden", Backend::kOpenCL,
       BoundaryMode::kClamp, TexturePolicy::kNone},
  };
}

std::string Emit(const GoldenCase& c) {
  frontend::KernelSource src = ops::BilateralMaskSource(1, c.mode);
  auto kernel = frontend::ParseKernel(src);
  EXPECT_TRUE(kernel.ok()) << kernel.status().ToString();
  if (!kernel.ok()) return {};
  CodegenOptions options;
  options.backend = c.backend;
  options.texture = c.texture;
  auto lowered = LowerKernel(kernel.value(), options);
  EXPECT_TRUE(lowered.ok()) << lowered.status().ToString();
  if (!lowered.ok()) return {};
  EmitContext ctx;
  ctx.config = {32, 4};
  ctx.image_width = 512;
  ctx.image_height = 512;
  return EmitKernelSource(lowered.value(), ctx);
}

class GoldenTest : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(GoldenTest, EmittedSourceMatchesGolden) {
  const GoldenCase& c = GetParam();
  const std::string emitted = Emit(c);
  ASSERT_FALSE(emitted.empty());
  const std::string golden_path =
      std::string(HIPACC_TEST_DATA_DIR) + "/golden/" + c.file;

  if (std::getenv("HIPACC_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out) << "cannot write " << golden_path;
    out << emitted;
    ASSERT_TRUE(out.good());
    GTEST_SKIP() << "regenerated " << golden_path;
  }

  std::ifstream in(golden_path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << golden_path
                  << " (regenerate with HIPACC_REGEN_GOLDEN=1)";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string golden = buffer.str();

  if (emitted != golden) {
    // Locate the first differing line for a readable failure.
    std::istringstream a(emitted), b(golden);
    std::string la, lb;
    int line = 0;
    while (true) {
      ++line;
      const bool more_a = static_cast<bool>(std::getline(a, la));
      const bool more_b = static_cast<bool>(std::getline(b, lb));
      if (!more_a && !more_b) break;
      if (la != lb || more_a != more_b) {
        FAIL() << c.file << ": emitted source diverges from golden at line "
               << line << "\n  emitted: " << (more_a ? la : "<eof>")
               << "\n  golden:  " << (more_b ? lb : "<eof>");
      }
    }
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(AllBackendsAndModes, GoldenTest,
                         ::testing::ValuesIn(GoldenCases()),
                         [](const auto& info) {
                           std::string name = info.param.file;
                           name.resize(name.find('.'));
                           return name;
                         });

}  // namespace
}  // namespace hipacc::codegen
