// Source emitters: render a lowered DeviceKernel as compilable CUDA or
// OpenCL kernel source text (the paper's actual output artifact). The region
// dispatch uses Listing 8's goto structure; boundary guards are emitted
// inline per access; textures map to tex1Dfetch/read_imagef (Listing 6);
// scratchpad staging follows Listing 7; masks become __constant__ arrays.
//
// Launch-configuration-dependent constants (block sizes, region bounds,
// scratchpad tile sizes) are emitted as #defines at the top, mirroring the
// macros the paper's exploration mode substitutes at run time.
//
// The structural walk is shared; target syntax is provided by the Backend
// interface (codegen/backend.hpp), so new targets plug in without touching
// this emitter or the compiler driver.
#pragma once

#include <string>

#include "ast/kernel_ir.hpp"
#include "hwmodel/config.hpp"

namespace hipacc::codegen {

class Backend;

/// Everything the emitter needs besides the kernel itself.
struct EmitContext {
  hw::KernelConfig config{128, 1};
  int image_width = 0;   ///< 0 = leave IW/IH as runtime macros
  int image_height = 0;
  /// Target override; null resolves the backend from `kernel.backend`.
  const Backend* backend = nullptr;
};

/// Renders the complete kernel source for `ctx.backend` (or, when that is
/// null, the registered backend matching `kernel.backend`).
std::string EmitKernelSource(const ast::DeviceKernel& kernel,
                             const EmitContext& ctx);

/// Renders a single expression in backend syntax (exposed for tests).
std::string EmitExpr(const ast::ExprPtr& expr, ast::Backend backend);

}  // namespace hipacc::codegen
