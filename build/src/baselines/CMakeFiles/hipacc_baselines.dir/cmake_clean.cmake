file(REMOVE_RECURSE
  "CMakeFiles/hipacc_baselines.dir/manual.cpp.o"
  "CMakeFiles/hipacc_baselines.dir/manual.cpp.o.d"
  "CMakeFiles/hipacc_baselines.dir/opencv_like.cpp.o"
  "CMakeFiles/hipacc_baselines.dir/opencv_like.cpp.o.d"
  "CMakeFiles/hipacc_baselines.dir/rapidmind.cpp.o"
  "CMakeFiles/hipacc_baselines.dir/rapidmind.cpp.o.d"
  "libhipacc_baselines.a"
  "libhipacc_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipacc_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
