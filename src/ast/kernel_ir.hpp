// Top-level IR containers.
//
//  * KernelDecl — the DSL-level kernel as written by the programmer: a body
//    plus the decoupled access/execute metadata (accessors with boundary
//    conditions and windows, masks, scalar parameters).
//  * DeviceKernel — the device-level kernel after the codegen passes ran:
//    buffers bound to concrete memory spaces, an optional scratchpad staging
//    plan, and either one interior variant or the nine region-specialised
//    variants of Figure 3 multiplexed at launch.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ast/stmt.hpp"

namespace hipacc::ast {

/// Target backend of the source-to-source compiler.
enum class Backend { kCuda, kOpenCL };

const char* to_string(Backend backend) noexcept;

/// A scalar kernel parameter (sigma_d, thresholds, ...).
struct ParamInfo {
  std::string name;
  ScalarType type = ScalarType::kFloat;
};

/// Access metadata of one input accessor.
struct AccessorInfo {
  std::string name;
  /// Window of offsets the kernel reads through this accessor. Determined
  /// by the BoundaryCondition size or inferred from the kernel body.
  WindowExtent window;
  BoundaryMode boundary = BoundaryMode::kUndefined;
  float constant_value = 0.0f;  ///< for BoundaryMode::kConstant
};

/// Metadata of one filter mask.
struct MaskInfo {
  std::string name;
  int size_x = 1;
  int size_y = 1;
  /// Coefficients known at compile time enable statically initialised
  /// constant memory; empty means dynamically initialised at run time.
  std::vector<float> static_values;

  bool is_static() const noexcept { return !static_values.empty(); }
};

/// DSL-level kernel: metadata + body as parsed / built.
struct KernelDecl {
  std::string name;
  std::vector<ParamInfo> params;
  std::vector<AccessorInfo> accessors;
  std::vector<MaskInfo> masks;
  /// Extra output images written via `output(name) = ...`; each lowers to an
  /// `_out_<name>` global buffer next to the primary `_out`.
  std::vector<std::string> extra_outputs;
  StmtPtr body;  // a kBlock

  const AccessorInfo* FindAccessor(const std::string& accessor_name) const;
  const MaskInfo* FindMask(const std::string& mask_name) const;
  const ParamInfo* FindParam(const std::string& param_name) const;

  /// Union of all accessor windows — decides boundary-region sizes when a
  /// kernel reads through several accessors (Section IV-B).
  WindowExtent MaxWindow() const;

  /// True if any accessor requests a real boundary-handling mode.
  bool NeedsBoundaryHandling() const;
};

/// An input or output buffer of the lowered kernel.
struct BufferParam {
  std::string name;       ///< accessor name for inputs, "_out" for output
  MemSpace space = MemSpace::kGlobal;  ///< kGlobal or kTexture (inputs only)
  bool is_output = false;
  /// kTexture only: bound to a 2D array with a hardware address mode
  /// (boundary handling in the texture unit) instead of linear memory.
  bool texture_2d_array = false;
};

/// Scratchpad staging plan for one accessor (Listing 7): a
/// (BSY + SY) x (BSX + SX + 1) tile is staged cooperatively, then reads are
/// redirected to the scratchpad. The +1 column avoids bank conflicts.
struct SmemPlan {
  std::string accessor;    ///< which input is staged
  std::string smem_name;   ///< generated array name, e.g. "_smemInput"
  WindowExtent window;     ///< halo staged around the block tile
  BoundaryMode boundary = BoundaryMode::kUndefined;
  float constant_value = 0.0f;
};

/// One region-specialised variant of the kernel body.
struct RegionVariant {
  Region region = Region::kInterior;
  StmtPtr body;  // a kBlock with per-region lowered memory accesses
};

/// Device-level kernel produced by the codegen pipeline.
struct DeviceKernel {
  std::string name;
  Backend backend = Backend::kCuda;
  std::vector<ParamInfo> params;
  std::vector<BufferParam> buffers;
  std::vector<MaskInfo> const_masks;  ///< masks placed in constant memory
  /// Masks kept in global memory (the no-constant-memory baseline); each
  /// also appears in `buffers`.
  std::vector<MaskInfo> global_masks;
  std::optional<SmemPlan> smem;
  /// Either a single kInterior variant (no boundary handling) or all nine.
  std::vector<RegionVariant> variants;
  /// Window that defines the border region extents at dispatch time.
  WindowExtent bh_window;
  /// Boundary mode used by this kernel's accessors (reporting only).
  BoundaryMode boundary = BoundaryMode::kUndefined;
  /// Code was vector-packed for VLIW targets (paper Section VIII outlook:
  /// "first manual vectorization shows the performance improves
  /// significantly on graphics cards from AMD"). No effect on scalar ISAs.
  bool vliw_vectorized = false;
  /// Pixels per thread this kernel was lowered with: each thread computes
  /// ppt vertically-adjacent outputs at rows gid_y*ppt + i. The launch grid
  /// shrinks accordingly (hw::ComputeGrid with the same ppt).
  int ppt = 1;

  bool has_boundary_variants() const noexcept { return variants.size() > 1; }
  const BufferParam* output_buffer() const;
  const RegionVariant* FindVariant(Region region) const;
};

}  // namespace hipacc::ast
