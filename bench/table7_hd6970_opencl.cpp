// Reproduces Table VII: bilateral filter on the Radeon HD 6970 (VLIW4),
// OpenCL backend.
#include <cstdio>

#include "common/bilateral_table.hpp"
#include "common/sim_engine_flag.hpp"
#include "hwmodel/device_db.hpp"

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (!hipacc::bench::HandleSimEngineFlag(argv[i])) {
      std::fprintf(stderr, "usage: table7_hd6970_opencl [--sim-engine=bytecode|ast]\n");
      return 2;
    }
  }
  hipacc::bench::BilateralTableOptions options;
  options.device = hipacc::hw::RadeonHd6970();
  options.json_out = "BENCH_table7.json";
  options.backend = hipacc::ast::Backend::kOpenCL;
  std::printf("%s\n", hipacc::bench::RunBilateralTable(
                          "Table VII: Radeon HD 6970, OpenCL backend", options)
                          .c_str());
  return 0;
}
