// Backend registry: built-in targets plus anything plugged in via
// RegisterBackend. Lookup is by IR tag (emission) or by name (CLI flags).
#include "codegen/backend.hpp"

namespace hipacc::codegen {
namespace {

std::vector<const Backend*>& MutableRegistry() {
  static std::vector<const Backend*> registry = {&CudaBackend(),
                                                 &OpenClBackend()};
  return registry;
}

}  // namespace

const std::vector<const Backend*>& RegisteredBackends() {
  return MutableRegistry();
}

void RegisterBackend(const Backend* backend) {
  if (backend) MutableRegistry().push_back(backend);
}

const Backend* FindBackend(ast::Backend id) noexcept {
  for (const Backend* backend : MutableRegistry())
    if (backend->id() == id) return backend;
  return nullptr;
}

const Backend* FindBackend(std::string_view name) noexcept {
  for (const Backend* backend : MutableRegistry())
    if (backend->name() == name) return backend;
  return nullptr;
}

}  // namespace hipacc::codegen
