#include "runtime/kernel_runner.hpp"

#include "compiler/profile.hpp"

namespace hipacc::runtime {

KernelRunner::KernelRunner(frontend::KernelSource source)
    : KernelRunner(std::move(source), RunOptions{}) {}

KernelRunner::KernelRunner(frontend::KernelSource source, RunOptions options)
    : source_(std::move(source)), options_(std::move(options)) {}

void KernelRunner::set_device(hw::DeviceSpec device) {
  options_.device = std::move(device);
  // Invalidate the current executable; the next launch recompiles (a cache
  // hit when this device/extent pair was compiled before).
  executable_.reset();
  width_ = height_ = -1;
}

Status KernelRunner::EnsureCompiled(int width, int height) {
  if (executable_ && width == width_ && height == height_)
    return Status::Ok();

  compiler::CompileOptions copts = MakeCompileOptions(options_, width, height);
  Result<compiler::CompiledKernel> compiled = compiler::Compile(source_, copts);
  if (!compiled.ok()) return compiled.status();

  executable_.emplace(std::move(compiled).take(), options_.device,
                      options_.sim_options());
  if (options_.trace != nullptr) executable_->set_trace(options_.trace);
  width_ = width;
  height_ = height;
  return Status::Ok();
}

Status KernelRunner::EnsureCompiledFor(const BindingSet& bindings) {
  if (bindings.output() == nullptr)
    return Status::Invalid("no output image bound");
  return EnsureCompiled(bindings.output()->width(),
                        bindings.output()->height());
}

void KernelRunner::RecordProfile(const sim::LaunchStats& stats) {
  if (options_.profiles == nullptr || !executable_) return;
  const compiler::CompiledKernel& kernel = executable_->kernel();
  if (kernel.source_fingerprint.empty()) return;
  // Every launch feeds the reselection history: the incumbent keeps
  // accumulating samples (staying fresh), and challenge rounds re-measure
  // the heuristic's pick so a stale winner loses its seat.
  options_.profiles->Record(
      compiler::MakeProfileKey(kernel.source_fingerprint, kernel.codegen,
                               options_.device, width_, height_),
      compiler::ProfileObservation{kernel.config.config,
                                   kernel.device_ir.ppt,
                                   stats.timing.total_ms});
}

Result<sim::LaunchStats> KernelRunner::Run(const BindingSet& bindings) {
  HIPACC_RETURN_IF_ERROR(EnsureCompiledFor(bindings));
  Result<sim::LaunchStats> stats = executable_->Run(bindings);
  if (stats.ok()) RecordProfile(stats.value());
  return stats;
}

Result<sim::LaunchStats> KernelRunner::Measure(const BindingSet& bindings,
                                               int samples_per_region) {
  HIPACC_RETURN_IF_ERROR(EnsureCompiledFor(bindings));
  Result<sim::LaunchStats> stats =
      executable_->Measure(bindings, std::nullopt, samples_per_region);
  if (stats.ok()) RecordProfile(stats.value());
  return stats;
}

}  // namespace hipacc::runtime
