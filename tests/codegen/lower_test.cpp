// Lowering: read/write analysis, region variant generation, guard
// narrowing, memory-space selection, and mask placement.
#include "codegen/lower.hpp"

#include <gtest/gtest.h>

#include "ast/visitor.hpp"
#include "codegen/readwrite.hpp"
#include "ops/kernel_sources.hpp"

namespace hipacc::codegen {
namespace {

using ast::BoundaryMode;
using ast::ExprKind;
using ast::MemSpace;
using ast::Region;

ast::KernelDecl ParseBilateral(BoundaryMode mode, bool with_mask = false) {
  const frontend::KernelSource src =
      with_mask ? ops::BilateralMaskSource(1, mode)
                : ops::BilateralSource(1, mode);
  auto kernel = frontend::ParseKernel(src);
  EXPECT_TRUE(kernel.ok()) << kernel.status().ToString();
  return std::move(kernel).take();
}

TEST(ReadWriteTest, AccessorsAreReadOnlyAndOutputWritten) {
  const ast::KernelDecl kernel = ParseBilateral(BoundaryMode::kClamp);
  const AccessSummary summary = AnalyzeAccesses(kernel);
  ASSERT_EQ(summary.accessors.count("Input"), 1u);
  EXPECT_EQ(summary.accessors.at("Input"), AccessKind::kRead);
  EXPECT_TRUE(summary.output_written);
}

TEST(ReadWriteTest, MaskReadsCounted) {
  const ast::KernelDecl kernel = ParseBilateral(BoundaryMode::kClamp, true);
  const AccessSummary summary = AnalyzeAccesses(kernel);
  ASSERT_EQ(summary.mask_reads.count("CMask"), 1u);
  EXPECT_GE(summary.mask_reads.at("CMask"), 1);
}

TEST(LowerTest, BoundaryHandlingYieldsNineVariants) {
  const ast::KernelDecl kernel = ParseBilateral(BoundaryMode::kMirror);
  auto lowered = LowerKernel(kernel, {});
  ASSERT_TRUE(lowered.ok()) << lowered.status().ToString();
  EXPECT_EQ(lowered.value().variants.size(), 9u);
  for (const Region region :
       {Region::kTopLeft, Region::kTop, Region::kTopRight, Region::kLeft,
        Region::kInterior, Region::kRight, Region::kBottomLeft,
        Region::kBottom, Region::kBottomRight})
    EXPECT_NE(lowered.value().FindVariant(region), nullptr);
}

TEST(LowerTest, UndefinedModeYieldsSingleVariant) {
  const ast::KernelDecl kernel = ParseBilateral(BoundaryMode::kUndefined);
  auto lowered = LowerKernel(kernel, {});
  ASSERT_TRUE(lowered.ok());
  EXPECT_EQ(lowered.value().variants.size(), 1u);
  // ... and no guards anywhere.
  ast::VisitExprs(lowered.value().variants.front().body,
                  [](const ast::Expr& e) {
                    if (e.kind == ExprKind::kMemRead) {
                      EXPECT_FALSE(e.checks.any());
                    }
                  });
}

TEST(LowerTest, InteriorVariantHasNoGuards) {
  const ast::KernelDecl kernel = ParseBilateral(BoundaryMode::kClamp);
  auto lowered = LowerKernel(kernel, {});
  ASSERT_TRUE(lowered.ok());
  const ast::RegionVariant* interior =
      lowered.value().FindVariant(Region::kInterior);
  ASSERT_NE(interior, nullptr);
  ast::VisitExprs(interior->body, [](const ast::Expr& e) {
    if (e.kind == ExprKind::kMemRead && e.space == MemSpace::kGlobal) {
      EXPECT_FALSE(e.checks.any());
    }
  });
}

TEST(LowerTest, CornerVariantGuardsItsTwoDirections) {
  const ast::KernelDecl kernel = ParseBilateral(BoundaryMode::kClamp);
  auto lowered = LowerKernel(kernel, {});
  ASSERT_TRUE(lowered.ok());
  const ast::RegionVariant* tl = lowered.value().FindVariant(Region::kTopLeft);
  ASSERT_NE(tl, nullptr);
  bool saw_guarded_read = false;
  ast::VisitExprs(tl->body, [&](const ast::Expr& e) {
    if (e.kind != ExprKind::kMemRead || e.name != "Input") return;
    EXPECT_FALSE(e.checks.hi_x);
    EXPECT_FALSE(e.checks.hi_y);
    if (e.checks.lo_x || e.checks.lo_y) saw_guarded_read = true;
  });
  EXPECT_TRUE(saw_guarded_read);
}

TEST(LowerTest, UniformPolicyGuardsEverythingInOneVariant) {
  const ast::KernelDecl kernel = ParseBilateral(BoundaryMode::kRepeat);
  CodegenOptions options;
  options.border = BorderPolicy::kUniform;
  auto lowered = LowerKernel(kernel, options);
  ASSERT_TRUE(lowered.ok());
  EXPECT_EQ(lowered.value().variants.size(), 1u);
  bool saw_full_guard = false;
  ast::VisitExprs(lowered.value().variants.front().body,
                  [&](const ast::Expr& e) {
                    if (e.kind == ExprKind::kMemRead && e.checks.count() == 4)
                      saw_full_guard = true;
                  });
  EXPECT_TRUE(saw_full_guard);
}

TEST(LowerTest, LiteralOffsetsNarrowGuards) {
  frontend::KernelSource src;
  src.name = "narrow";
  src.accessors = {{"Input", {1, 1}, BoundaryMode::kClamp, 0.0f}};
  src.body = "output() = Input(1, 0) + Input(-1, 0) + Input(0, 0);";
  auto kernel = frontend::ParseKernel(src);
  ASSERT_TRUE(kernel.ok());
  CodegenOptions options;
  options.border = BorderPolicy::kUniform;  // all four region guards offered
  options.scalar_optimizer = false;         // keep the three reads distinct
  auto lowered = LowerKernel(kernel.value(), options);
  ASSERT_TRUE(lowered.ok());
  int lo_only = 0, hi_only = 0, unguarded_x = 0;
  ast::VisitExprs(lowered.value().variants.front().body,
                  [&](const ast::Expr& e) {
                    if (e.kind != ExprKind::kMemRead || e.name != "Input")
                      return;
                    // dy is 0 everywhere: y guards must be gone.
                    EXPECT_FALSE(e.checks.lo_y);
                    EXPECT_FALSE(e.checks.hi_y);
                    if (e.checks.hi_x && !e.checks.lo_x) ++hi_only;
                    if (e.checks.lo_x && !e.checks.hi_x) ++lo_only;
                    if (!e.checks.lo_x && !e.checks.hi_x) ++unguarded_x;
                  });
  EXPECT_EQ(hi_only, 1);      // Input(+1, 0)
  EXPECT_EQ(lo_only, 1);      // Input(-1, 0)
  EXPECT_EQ(unguarded_x, 1);  // Input(0, 0): the center never leaves
}

TEST(LowerTest, TexturePolicySetsBufferSpace) {
  const ast::KernelDecl kernel = ParseBilateral(BoundaryMode::kClamp);
  CodegenOptions options;
  options.texture = TexturePolicy::kLinear;
  auto lowered = LowerKernel(kernel, options);
  ASSERT_TRUE(lowered.ok());
  bool input_texture = false, output_global = false;
  for (const auto& buf : lowered.value().buffers) {
    if (buf.name == "Input") input_texture = buf.space == MemSpace::kTexture;
    if (buf.is_output) output_global = buf.space == MemSpace::kGlobal;
  }
  EXPECT_TRUE(input_texture);
  EXPECT_TRUE(output_global);  // write path never goes through textures
}

TEST(LowerTest, HardwareBoundaryHandlingClearsGuards) {
  const ast::KernelDecl kernel = ParseBilateral(BoundaryMode::kClamp);
  CodegenOptions options;
  options.texture = TexturePolicy::kArray2D;
  auto lowered = LowerKernel(kernel, options);
  ASSERT_TRUE(lowered.ok());
  ast::VisitExprs(lowered.value().variants.front().body,
                  [](const ast::Expr& e) {
                    if (e.kind == ExprKind::kMemRead &&
                        e.space == MemSpace::kTexture) {
                      EXPECT_FALSE(e.checks.any());
                    }
                  });
}

TEST(LowerTest, MirrorWith2DTexturesIsUnimplemented) {
  // The paper's "n/a" cells: no hardware address mode implements Mirror.
  const ast::KernelDecl kernel = ParseBilateral(BoundaryMode::kMirror);
  CodegenOptions options;
  options.texture = TexturePolicy::kArray2D;
  const auto lowered = LowerKernel(kernel, options);
  ASSERT_FALSE(lowered.ok());
  EXPECT_EQ(lowered.status().code(), StatusCode::kUnimplemented);
}

TEST(LowerTest, MaskPlacement) {
  const ast::KernelDecl kernel = ParseBilateral(BoundaryMode::kClamp, true);
  auto in_const = LowerKernel(kernel, {});
  ASSERT_TRUE(in_const.ok());
  EXPECT_EQ(in_const.value().const_masks.size(), 1u);
  EXPECT_TRUE(in_const.value().global_masks.empty());

  CodegenOptions options;
  options.masks_in_constant_memory = false;
  auto in_global = LowerKernel(kernel, options);
  ASSERT_TRUE(in_global.ok());
  EXPECT_TRUE(in_global.value().const_masks.empty());
  ASSERT_EQ(in_global.value().global_masks.size(), 1u);
  // ... and the mask shows up as a global buffer.
  bool mask_buffer = false;
  for (const auto& buf : in_global.value().buffers)
    if (buf.name == "CMask" && buf.space == MemSpace::kGlobal)
      mask_buffer = true;
  EXPECT_TRUE(mask_buffer);
}

TEST(LowerTest, ScratchpadPlanForWindowedAccessor) {
  const ast::KernelDecl kernel = ParseBilateral(BoundaryMode::kClamp);
  CodegenOptions options;
  options.use_scratchpad = true;
  auto lowered = LowerKernel(kernel, options);
  ASSERT_TRUE(lowered.ok());
  ASSERT_TRUE(lowered.value().smem.has_value());
  EXPECT_EQ(lowered.value().smem->accessor, "Input");
  EXPECT_EQ(lowered.value().smem->window.half_x, 2);  // sigma_d=1: 5x5
  // Reads are redirected into the tile.
  bool shared_read = false;
  ast::VisitExprs(lowered.value().variants.front().body,
                  [&](const ast::Expr& e) {
                    if (e.kind == ExprKind::kMemRead &&
                        e.space == MemSpace::kShared)
                      shared_read = true;
                  });
  EXPECT_TRUE(shared_read);
}

}  // namespace
}  // namespace hipacc::codegen
