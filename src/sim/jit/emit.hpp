// C++ source emitter for the native tier: partial evaluation of the
// bytecode VM over one ProgramSet. Every instruction's handler body is
// emitted with its fields (opcode, sub-op, types, coordinates, boundary
// mode, guard set, costs, immediates) baked in as constants.
//
// Two emission modes per region program:
//  - Fused (label-free programs whose loaded and stored buffers are
//    disjoint): one loop over lanes executes the whole instruction chain in
//    scalar locals, with register *types* resolved statically at emit time
//    (type tags are data-independent in straight-line code). Memory-model
//    address lists are buffered per instruction during the lane loop and
//    replayed after it in program order; stores are deferred the same way,
//    so global-memory writes and model calls happen in exactly the VM's
//    order and the results stay bit-identical.
//  - Per-insn (programs with control flow): each instruction becomes a
//    64-lane loop over the ABI register file, types tracked through the
//    same runtime tag array the VM uses — textually parallel to vm.cpp.
#pragma once

#include <string>
#include <vector>

#include "ast/metadata.hpp"
#include "sim/bytecode.hpp"

namespace hipacc::sim::jit {

/// A generated translation unit for one ProgramSet: self-contained C++
/// (standard headers + the embedded ABI text only) exporting one
/// extern "C" warp function per region program.
struct EmittedSource {
  struct SymbolInfo {
    ast::Region region = ast::Region::kInterior;
    std::string symbol;
    /// Lane-fused emission: binding checks are hoisted ahead of all side
    /// effects, so the runner must pre-check bindings and fall back to the
    /// VM for launches that would error mid-program.
    bool fused = false;
  };
  std::string source;
  std::vector<SymbolInfo> symbols;
};

/// Stable content fingerprint over every semantic field of every
/// instruction (plus the program/table shapes). Used both for symbol
/// naming and as the shared-object cache identity.
unsigned long long ProgramFingerprint(const ProgramSet& ps);

/// Emits the translation unit. `symbol_prefix` scopes the exported symbol
/// names (callers pass the fingerprint hex).
EmittedSource EmitNativeSource(const ProgramSet& ps);

}  // namespace hipacc::sim::jit
