// Convenience façade tying compiler output to the simulated device — the
// equivalent of the paper's generated host code: bind arguments, launch,
// and (for the evaluation) read back the modelled kernel time.
#pragma once

#include "compiler/driver.hpp"
#include "runtime/bindings.hpp"
#include "sim/simulator.hpp"

namespace hipacc::compiler {

class SimulatedExecutable {
 public:
  SimulatedExecutable(CompiledKernel kernel, hw::DeviceSpec device)
      : kernel_(std::move(kernel)), simulator_(std::move(device)) {}

  const CompiledKernel& kernel() const noexcept { return kernel_; }
  const hw::DeviceSpec& device() const noexcept { return simulator_.device(); }

  /// Functional execution of the whole grid (exact output pixels).
  Result<sim::LaunchStats> Run(const runtime::BindingSet& bindings) const {
    Result<runtime::LaunchHolder> holder =
        runtime::BuildLaunch(kernel_.device_ir, kernel_.config.config, bindings);
    if (!holder.ok()) return holder.status();
    return simulator_.Execute(holder.value().launch);
  }

  /// Sampled measurement (modelled time); optionally overrides the launch
  /// configuration, as the exploration mode does.
  Result<sim::LaunchStats> Measure(
      const runtime::BindingSet& bindings,
      std::optional<hw::KernelConfig> config_override = std::nullopt) const {
    Result<runtime::LaunchHolder> holder = runtime::BuildLaunch(
        kernel_.device_ir,
        config_override.value_or(kernel_.config.config), bindings);
    if (!holder.ok()) return holder.status();
    return simulator_.Measure(holder.value().launch);
  }

 private:
  CompiledKernel kernel_;
  sim::Simulator simulator_;
};

}  // namespace hipacc::compiler
