#include "codegen/readwrite.hpp"

#include "ast/cfg.hpp"
#include "ast/visitor.hpp"

namespace hipacc::codegen {
namespace {

void MergeRead(AccessKind* kind) {
  switch (*kind) {
    case AccessKind::kNone: *kind = AccessKind::kRead; break;
    case AccessKind::kWrite: *kind = AccessKind::kReadWrite; break;
    default: break;
  }
}

void ScanExpr(const ast::ExprPtr& expr, AccessSummary* summary) {
  ast::VisitExprs(expr, [summary](const ast::Expr& e) {
    if (e.kind == ast::ExprKind::kAccessorRead)
      MergeRead(&summary->accessors[e.name]);
    else if (e.kind == ast::ExprKind::kMaskRead)
      ++summary->mask_reads[e.name];
  });
}

void ScanStmt(const ast::Stmt& stmt, AccessSummary* summary) {
  if (stmt.kind == ast::StmtKind::kOutputAssign) summary->output_written = true;
  ScanExpr(stmt.value, summary);
  ScanExpr(stmt.x, summary);
  ScanExpr(stmt.y, summary);
}

}  // namespace

const char* to_string(AccessKind kind) noexcept {
  switch (kind) {
    case AccessKind::kNone: return "none";
    case AccessKind::kRead: return "read";
    case AccessKind::kWrite: return "write";
    case AccessKind::kReadWrite: return "read_write";
  }
  return "?";
}

AccessSummary AnalyzeAccesses(const ast::KernelDecl& kernel) {
  AccessSummary summary;
  for (const auto& acc : kernel.accessors)
    summary.accessors[acc.name] = AccessKind::kNone;

  // Traverse the CFG depth-first, scanning the statements of each basic
  // block and the controlling expressions of its terminator.
  const ast::Cfg cfg = ast::BuildCfg(kernel.body);
  for (const int id : ast::DepthFirstOrder(cfg)) {
    const ast::BasicBlock& bb = cfg.block(id);
    for (const ast::Stmt* stmt : bb.stmts) ScanStmt(*stmt, &summary);
    if (bb.terminator) {
      ScanExpr(bb.terminator->cond, &summary);
      ScanExpr(bb.terminator->lo, &summary);
      ScanExpr(bb.terminator->hi, &summary);
    }
  }
  return summary;
}

}  // namespace hipacc::codegen
