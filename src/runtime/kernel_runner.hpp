// Cached execute path: the host-side object an application holds to launch
// a DSL kernel repeatedly. The first Run() compiles the kernel for the
// bound output's extent through the compilation cache
// (compiler/cache.hpp); subsequent launches with an unchanged target reuse
// the compiled artifact directly — no parse, no lowering, not even a cache
// probe. Changing the device or launching on a different image extent
// recompiles through the cache, so switching back and forth (the paper's
// retargeting scenario) hits instead of recompiling.
//
// Lives in its own library (hipacc_runtime_exec) because it sits above the
// compiler: hipacc_compiler links hipacc_runtime, so the low-level binding
// layer must stay compiler-free.
#pragma once

#include <optional>

#include "compiler/cache.hpp"
#include "compiler/driver.hpp"
#include "compiler/executable.hpp"
#include "frontend/parser.hpp"
#include "runtime/bindings.hpp"
#include "runtime/run_options.hpp"

namespace hipacc::runtime {

class KernelRunner {
 public:
  explicit KernelRunner(frontend::KernelSource source);
  KernelRunner(frontend::KernelSource source, RunOptions options);

  /// Functional execution of the whole grid on the bound output's extent.
  Result<sim::LaunchStats> Run(const BindingSet& bindings);

  /// Sampled measurement (modelled kernel time).
  Result<sim::LaunchStats> Measure(const BindingSet& bindings,
                                   int samples_per_region = 3);

  /// Re-targets subsequent launches to `device`; the next Run recompiles
  /// (through the cache) for it.
  void set_device(hw::DeviceSpec device);

  /// Artifact backing the current target; null before the first launch.
  const compiler::CompiledKernel* compiled() const {
    return executable_ ? &executable_->kernel() : nullptr;
  }

 private:
  /// Compiles for (width, height) unless the current executable already
  /// matches that extent and the current device.
  Status EnsureCompiled(int width, int height);
  Status EnsureCompiledFor(const BindingSet& bindings);
  /// Feeds one launch's modelled time into options_.profiles (no-op when
  /// profile-guided reselection is off).
  void RecordProfile(const sim::LaunchStats& stats);

  frontend::KernelSource source_;
  RunOptions options_;
  int width_ = -1;
  int height_ = -1;
  std::optional<compiler::SimulatedExecutable> executable_;
};

}  // namespace hipacc::runtime
