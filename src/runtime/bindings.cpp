#include "runtime/bindings.hpp"

namespace hipacc::runtime {

Result<LaunchHolder> BuildLaunch(const ast::DeviceKernel& kernel,
                                 const hw::KernelConfig& config,
                                 const BindingSet& bindings) {
  auto holder = LaunchHolder{};
  sim::Launch& launch = holder.launch;
  // Reserve up front: buffer bindings hold pointers into `owned` entries and
  // must survive later push_backs.
  holder.owned.reserve(kernel.global_masks.size());
  launch.kernel = &kernel;
  launch.config = config;

  if (!bindings.output()) return Status::Invalid("no output image bound");
  dsl::Image<float>& out = *bindings.output();
  launch.width = out.width();
  launch.height = out.height();

  for (const auto& buf : kernel.buffers) {
    if (buf.is_output) {
      // "_out" is the primary output; "_out_<name>" the extra outputs of a
      // multi-output (horizontally fused) kernel, bound by name.
      dsl::Image<float>* target = &out;
      if (buf.name != "_out") {
        target = bindings.FindExtraOutput(buf.name.substr(5));
        if (target == nullptr)
          return Status::Invalid("extra output image not bound: " + buf.name);
        if (target->width() != out.width() || target->height() != out.height())
          return Status::Invalid("extra output extent mismatch: " + buf.name);
      }
      launch.buffers.push_back({buf.name, target->span().data(),
                                target->width(), target->height(),
                                target->stride(), true});
      continue;
    }
    // Global-memory mask buffer?
    bool is_mask = false;
    for (const auto& mask : kernel.global_masks) {
      if (mask.name != buf.name) continue;
      const std::vector<float>* values = bindings.FindMask(mask.name);
      if (values == nullptr)
        return Status::Invalid("mask values not bound: " + mask.name);
      if (static_cast<int>(values->size()) != mask.size_x * mask.size_y)
        return Status::Invalid("mask size mismatch: " + mask.name);
      holder.owned.push_back(*values);
      launch.buffers.push_back({mask.name, holder.owned.back().data(),
                                mask.size_x, mask.size_y, mask.size_x, false});
      is_mask = true;
      break;
    }
    if (is_mask) continue;
    dsl::Image<float>* input = bindings.FindInput(buf.name);
    if (input == nullptr)
      return Status::Invalid("input image not bound: " + buf.name);
    dsl::Image<float>& img = *input;
    // const_cast: the simulated device reads through a writable view but the
    // binding is marked read-only; the interpreter rejects writes to it.
    launch.buffers.push_back({buf.name, img.span().data(), img.width(),
                              img.height(), img.stride(), false});
  }

  for (const auto& mask : kernel.const_masks) {
    if (mask.is_static()) {
      // Statically initialised constant memory: coefficients came from the
      // kernel declaration itself.
      launch.const_masks[mask.name] = mask.static_values;
      continue;
    }
    const std::vector<float>* values = bindings.FindMask(mask.name);
    if (values == nullptr)
      return Status::Invalid("mask values not bound: " + mask.name);
    launch.const_masks[mask.name] = *values;
  }

  for (const auto& [name, value] : bindings.scalars())
    launch.scalar_args[name] = value;
  return holder;
}

}  // namespace hipacc::runtime
