file(REMOVE_RECURSE
  "CMakeFiles/hipacc_ops.dir/kernel_sources.cpp.o"
  "CMakeFiles/hipacc_ops.dir/kernel_sources.cpp.o.d"
  "CMakeFiles/hipacc_ops.dir/masks.cpp.o"
  "CMakeFiles/hipacc_ops.dir/masks.cpp.o.d"
  "CMakeFiles/hipacc_ops.dir/pyramid.cpp.o"
  "CMakeFiles/hipacc_ops.dir/pyramid.cpp.o.d"
  "libhipacc_ops.a"
  "libhipacc_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipacc_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
