// Separable decomposition + pixels-per-thread: the PR 5 headline bench.
// 5x5 Gaussian on a 1024x1024 image, Tesla C2050: the generated separable
// row+column pair at the heuristic-chosen PPT must beat the direct 2D
// kernel by >= 1.5x and land within 10% of (or beat) the hand-written
// OpenCV-like separable baseline at its native PPT=8 mapping.
//
//   --ppt=N|auto       PPT for the generated kernels (default auto)
//   --no-separate      functional graph run keeps the direct 2D stage
//   --size=N           square image extent (default 1024)
//   --window=N         Gaussian window (default 5)
//   --json-out=FILE    BENCH_*.json report path (default BENCH_separable.json)
//   --sim-engine=E     simulator engine: bytecode (default) or ast
#include <cstdio>
#include <string>

#include "baselines/opencv_like.hpp"
#include "common/table.hpp"
#include "compiler/executable.hpp"
#include "compiler/separate.hpp"
#include "hwmodel/device_db.hpp"
#include "image/metrics.hpp"
#include "image/synthetic.hpp"
#include "ops/kernel_sources.hpp"
#include "ops/masks.hpp"
#include "runtime/graph.hpp"
#include "sim/trace.hpp"
#include "support/string_utils.hpp"

namespace {

struct Measured {
  double ms = 0.0;
  int ppt = 1;
  hipacc::hw::KernelConfig config;
};

/// Compiles `source` with the requested pixels-per-thread (0 = heuristic
/// sweep) and returns the modelled kernel time under the heuristic-chosen
/// configuration.
hipacc::Result<Measured> MeasureGenerated(
    const hipacc::frontend::KernelSource& source,
    const hipacc::hw::DeviceSpec& device, int n, int ppt,
    hipacc::sim::TraceSink* trace) {
  using namespace hipacc;
  compiler::CompileOptions copts;
  copts.codegen.backend = ast::Backend::kCuda;
  copts.codegen.pixels_per_thread = ppt;
  copts.device = device;
  copts.image_width = n;
  copts.image_height = n;
  copts.trace = trace;
  Result<compiler::CompiledKernel> compiled = compiler::Compile(source, copts);
  if (!compiled.ok()) return compiled.status();
  Measured m;
  m.ppt = compiled.value().device_ir.ppt;
  m.config = compiled.value().config.config;
  dsl::Image<float> in(n, n), out(n, n);
  runtime::BindingSet bindings;
  bindings.Input(source.accessors.front().name, in).Output(out);
  compiler::SimulatedExecutable exe(std::move(compiled).take(), device);
  Result<sim::LaunchStats> stats = exe.Measure(bindings);
  if (!stats.ok()) return stats.status();
  m.ms = stats.value().timing.total_ms;
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hipacc;
  int n = 1024;
  int window = 5;
  std::string json_out = "BENCH_separable.json";
  support::CliParser cli = bench::MakeBenchCli(
      "separable_ppt",
      "separable Gaussian vs direct 2D vs OpenCV-like, with PPT selection");
  cli.Int("size", &n, "N", "square image extent (default 1024)");
  cli.Int("window", &window, "N", "Gaussian window size (default 5)");
  cli.String("json-out", &json_out, "FILE", "BENCH_*.json report path");
  if (const int code = cli.HandleArgs(argc, argv); code >= 0) return code;

  const hw::DeviceSpec device = hw::TeslaC2050();
  const float sigma = 0.5f * static_cast<float>(window);
  const frontend::KernelSource source =
      ops::GaussianSource(window, sigma, ast::BoundaryMode::kClamp);
  sim::TraceSink trace;

  // Direct 2D convolution, the framework's pre-separation output.
  Result<Measured> direct = MeasureGenerated(source, device, n, 1, &trace);
  if (!direct.ok()) {
    std::fprintf(stderr, "direct compile failed: %s\n",
                 direct.status().ToString().c_str());
    return 1;
  }

  // The tentpole path: rank-1 factorization splits the stage, and each 1D
  // pass is compiled at --ppt (default: the heuristic sweep's pick).
  std::optional<compiler::SeparatedStages> sep =
      compiler::SeparateConvolution(source);
  if (!sep) {
    std::fprintf(stderr, "error: %dx%d Gaussian did not separate\n", window,
                 window);
    return 1;
  }
  const int requested_ppt =
      bench::Tuning().ppt < 0 ? 0 : bench::Tuning().ppt;
  Result<Measured> row =
      MeasureGenerated(sep->row, device, n, requested_ppt, &trace);
  Result<Measured> col =
      MeasureGenerated(sep->col, device, n, requested_ppt, &trace);
  if (!row.ok() || !col.ok()) {
    std::fprintf(stderr, "separable compile failed: %s\n",
                 (row.ok() ? col : row).status().ToString().c_str());
    return 1;
  }
  const double sep_ms = row.value().ms + col.value().ms;

  // OpenCV-like separable baseline (Section VI-A3) at both mappings.
  const std::vector<float> mask1d = ops::GaussianMask1D(window, sigma);
  baselines::OpenCvLikeEngine engine(device, ast::Backend::kCuda);
  Result<baselines::SeparableTiming> opencv8 = engine.Measure(
      n, n, mask1d, ast::BoundaryMode::kClamp, 8, hw::KernelConfig{128, 1});
  Result<baselines::SeparableTiming> opencv1 = engine.Measure(
      n, n, mask1d, ast::BoundaryMode::kClamp, 1, hw::KernelConfig{128, 1});
  if (!opencv8.ok() || !opencv1.ok()) {
    std::fprintf(stderr, "baseline failed: %s\n",
                 (opencv8.ok() ? opencv1 : opencv8).status().ToString().c_str());
    return 1;
  }

  // Functional cross-check through the pipeline graph: the separated run
  // must match the direct stage (up to factorization rounding), and the
  // graph emits the separate.edges counter the CI smoke asserts on.
  const HostImage<float> input = MakeNoiseImage(n, n, 11);
  HostImage<float> direct_out(n, n), graph_out(n, n);
  double max_diff = 0.0;
  {
    runtime::PipelineGraph direct_graph;
    direct_graph.Source("in", n, n)
        .Kernel("gauss", source, {{"Input", "in"}})
        .Output("gauss");
    runtime::GraphOptions gopts;
    gopts.fuse = bench::Tuning().fuse;
    const Status st =
        direct_graph.Run({{"in", &input}}, {{"gauss", &direct_out}}, gopts);
    if (!st.ok()) {
      std::fprintf(stderr, "graph run failed: %s\n", st.ToString().c_str());
      return 1;
    }
    runtime::PipelineGraph sep_graph;
    sep_graph.Source("in", n, n)
        .Kernel("gauss", source, {{"Input", "in"}})
        .Output("gauss");
    runtime::GraphOptions sopts;
    sopts.separate = bench::Tuning().separate;
    sopts.fuse = bench::Tuning().fuse;
    sopts.run.trace = &trace;
    const Status ss =
        sep_graph.Run({{"in", &input}}, {{"gauss", &graph_out}}, sopts);
    if (!ss.ok()) {
      std::fprintf(stderr, "separated graph run failed: %s\n",
                   ss.ToString().c_str());
      return 1;
    }
    max_diff = MaxAbsDiff(direct_out, graph_out);
  }

  bench::Table table({"time_ms", "config", "ppt"});
  const auto add = [&table](const std::string& label, double ms,
                            const hw::KernelConfig& config, int ppt) {
    table.Row(label);
    table.Cell(ms);
    table.Cell(StrFormat("%dx%d", config.block_x, config.block_y));
    table.Cell(StrFormat("%d", ppt));
  };
  add("Direct 2D (gen)", direct.value().ms, direct.value().config,
      direct.value().ppt);
  add(StrFormat("Separable row (gen)"), row.value().ms, row.value().config,
      row.value().ppt);
  add(StrFormat("Separable col (gen)"), col.value().ms, col.value().config,
      col.value().ppt);
  add("Separable total (gen)", sep_ms, row.value().config, row.value().ppt);
  add("OpenCV-like PPT=8", opencv8.value().total_ms, hw::KernelConfig{128, 1},
      8);
  add("OpenCV-like PPT=1", opencv1.value().total_ms, hw::KernelConfig{128, 1},
      1);
  std::printf("%s\n",
              table
                  .Render(StrFormat(
                      "Separable Gaussian %dx%d, %dx%d image, %s (CUDA)",
                      window, window, n, n, device.name.c_str()))
                  .c_str());

  const double speedup = direct.value().ms / sep_ms;
  const double vs_opencv8 = sep_ms / opencv8.value().total_ms;
  std::printf("separable vs direct 2D:      %.2fx faster\n", speedup);
  std::printf("separable vs OpenCV PPT=8:   %.2fx the baseline's time\n",
              vs_opencv8);
  std::printf("graph output max |diff|:     %.2e (separate=%s)\n", max_diff,
              bench::Tuning().separate ? "on" : "off");
  std::printf("separate.edges counter:      %lld\n",
              trace.counter("separate.edges"));
  std::printf("ppt.selected counter:        %lld\n",
              trace.counter("ppt.selected"));

  if (!json_out.empty()) {
    support::Json doc = support::Json::Object();
    doc["bench"] = "separable_ppt";
    doc["device"] = device.name;
    doc["backend"] = "cuda";
    support::Json image = support::Json::Object();
    image["width"] = n;
    image["height"] = n;
    doc["image"] = std::move(image);
    doc["window"] = window;
    doc["direct_ms"] = direct.value().ms;
    doc["separable_row_ms"] = row.value().ms;
    doc["separable_col_ms"] = col.value().ms;
    doc["separable_ms"] = sep_ms;
    doc["separable_ppt"] = row.value().ppt;
    doc["opencv_ppt8_ms"] = opencv8.value().total_ms;
    doc["opencv_ppt1_ms"] = opencv1.value().total_ms;
    doc["speedup_vs_direct"] = speedup;
    doc["relative_to_opencv_ppt8"] = vs_opencv8;
    doc["graph_max_abs_diff"] = max_diff;
    support::Json counters = support::Json::Object();
    counters["separate.edges"] = trace.counter("separate.edges");
    counters["ppt.selected"] = trace.counter("ppt.selected");
    doc["counters"] = std::move(counters);
    doc["table"] = table.ToJson("separable_ppt");
    const Status written = support::WriteFile(json_out, doc.Dump(2) + "\n");
    if (!written.ok())
      std::fprintf(stderr, "warning: %s\n", written.ToString().c_str());
    else
      std::fprintf(stderr, "wrote %s\n", json_out.c_str());
  }
  return 0;
}
