file(REMOVE_RECURSE
  "CMakeFiles/hipacc_frontend.dir/lexer.cpp.o"
  "CMakeFiles/hipacc_frontend.dir/lexer.cpp.o.d"
  "CMakeFiles/hipacc_frontend.dir/parser.cpp.o"
  "CMakeFiles/hipacc_frontend.dir/parser.cpp.o.d"
  "libhipacc_frontend.a"
  "libhipacc_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipacc_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
