# Empty dependencies file for ablation_mask.
# This may be replaced when dependencies are built.
