#include "support/span2d.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hipacc {
namespace {

TEST(Span2DTest, DenseIndexing) {
  std::vector<float> data(12);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<float>(i);
  Span2D<float> span(data.data(), 4, 3);
  EXPECT_EQ(span(0, 0), 0.0f);
  EXPECT_EQ(span(3, 0), 3.0f);
  EXPECT_EQ(span(0, 1), 4.0f);
  EXPECT_EQ(span(3, 2), 11.0f);
}

TEST(Span2DTest, PaddedStride) {
  std::vector<float> data(3 * 8, -1.0f);
  Span2D<float> span(data.data(), 5, 3, 8);
  span(4, 2) = 7.0f;
  EXPECT_EQ(data[2 * 8 + 4], 7.0f);
  EXPECT_EQ(span.stride(), 8);
}

TEST(Span2DTest, ContainsAndRow) {
  std::vector<int> data(6);
  Span2D<int> span(data.data(), 3, 2);
  EXPECT_TRUE(span.contains(0, 0));
  EXPECT_TRUE(span.contains(2, 1));
  EXPECT_FALSE(span.contains(3, 0));
  EXPECT_FALSE(span.contains(0, -1));
  EXPECT_EQ(span.row(1), data.data() + 3);
}

TEST(Span2DTest, Subview) {
  std::vector<int> data(20);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<int>(i);
  Span2D<int> span(data.data(), 5, 4);
  Span2D<int> sub = span.subview(1, 1, 3, 2);
  EXPECT_EQ(sub.width(), 3);
  EXPECT_EQ(sub.height(), 2);
  EXPECT_EQ(sub.stride(), 5);
  EXPECT_EQ(sub(0, 0), 6);
  EXPECT_EQ(sub(2, 1), 13);
}

TEST(Span2DTest, ConstConversion) {
  std::vector<float> data(4);
  Span2D<float> mut(data.data(), 2, 2);
  Span2D<const float> view = mut;
  EXPECT_EQ(view.width(), 2);
  mut(1, 1) = 9.0f;
  EXPECT_EQ(view(1, 1), 9.0f);
}

TEST(Span2DTest, EmptySpan) {
  Span2D<float> span;
  EXPECT_TRUE(span.empty());
  EXPECT_EQ(span.width(), 0);
}

}  // namespace
}  // namespace hipacc
