file(REMOVE_RECURSE
  "CMakeFiles/hipacc_codegen.dir/emit.cpp.o"
  "CMakeFiles/hipacc_codegen.dir/emit.cpp.o.d"
  "CMakeFiles/hipacc_codegen.dir/lower.cpp.o"
  "CMakeFiles/hipacc_codegen.dir/lower.cpp.o.d"
  "CMakeFiles/hipacc_codegen.dir/readwrite.cpp.o"
  "CMakeFiles/hipacc_codegen.dir/readwrite.cpp.o.d"
  "CMakeFiles/hipacc_codegen.dir/resource_estimator.cpp.o"
  "CMakeFiles/hipacc_codegen.dir/resource_estimator.cpp.o.d"
  "CMakeFiles/hipacc_codegen.dir/scalar_opt.cpp.o"
  "CMakeFiles/hipacc_codegen.dir/scalar_opt.cpp.o.d"
  "libhipacc_codegen.a"
  "libhipacc_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipacc_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
