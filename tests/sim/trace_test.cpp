// TraceSink observability: spans and launch records land on the timeline
// with their payloads, the Chrome trace_event serialisation is well-formed
// JSON with the fields chrome://tracing needs, and the simulator feeds the
// sink when one is attached.
#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "compiler/executable.hpp"
#include "ops/kernel_sources.hpp"

namespace hipacc::sim {
namespace {

TEST(TraceSinkTest, StartsEmpty) {
  TraceSink sink;
  EXPECT_TRUE(sink.empty());
  EXPECT_EQ(sink.event_count(), 0u);
  EXPECT_EQ(sink.ToJson().Find("events")->size(), 0u);
}

TEST(TraceSinkTest, AddSpanRecordsNameCategoryAndArgs) {
  TraceSink sink;
  support::Json args = support::Json::Object();
  args["candidates"] = 128;
  sink.AddSpan("explore", "compiler", 1.0, 2.5, std::move(args), 3);
  sink.AddInstant("pruned", "compiler");

  ASSERT_EQ(sink.event_count(), 2u);
  const support::Json doc = sink.ToJson();
  const support::Json& events = *doc.Find("events");
  const support::Json& span = events[0];
  EXPECT_EQ(span.Find("name")->string_value(), "explore");
  EXPECT_EQ(span.Find("category")->string_value(), "compiler");
  EXPECT_EQ(span.Find("start_ms")->number_value(), 1.0);
  EXPECT_EQ(span.Find("dur_ms")->number_value(), 2.5);
  EXPECT_EQ(span.Find("tid")->int_value(), 3);
  EXPECT_EQ(span.Find("args")->Find("candidates")->int_value(), 128);
  EXPECT_EQ(events[1].Find("name")->string_value(), "pruned");
  EXPECT_EQ(events[1].Find("dur_ms")->number_value(), 0.0);
}

TEST(TraceSinkTest, TraceSpanFilesOnDestruction) {
  TraceSink sink;
  {
    TraceSpan span(&sink, "phase", "compile", 7);
    support::Json args = support::Json::Object();
    args["regs"] = 13;
    span.set_args(std::move(args));
    EXPECT_TRUE(sink.empty());  // not filed until the span closes
  }
  ASSERT_EQ(sink.event_count(), 1u);
  const support::Json doc = sink.ToJson();
  const support::Json& event = (*doc.Find("events"))[0];
  EXPECT_EQ(event.Find("name")->string_value(), "phase");
  EXPECT_EQ(event.Find("tid")->int_value(), 7);
  EXPECT_GE(event.Find("dur_ms")->number_value(), 0.0);
  EXPECT_EQ(event.Find("args")->Find("regs")->int_value(), 13);
}

TEST(TraceSinkTest, NullSinkSpanIsNoOp) {
  TraceSpan span(nullptr, "ignored", "compile");
  span.set_args(support::Json::Object());
  // Destruction must not crash; nothing to assert beyond that.
}

TEST(TraceSinkTest, ChromeTraceIsValidAndCarriesRequiredFields) {
  TraceSink sink;
  support::Json args = support::Json::Object();
  args["jobs"] = 4;
  sink.AddSpan("explore bilateral", "explore", 0.25, 10.5, std::move(args), 2);

  auto parsed = support::Json::Parse(sink.ToChromeTrace());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const support::Json* events = parsed.value().Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->size(), 1u);
  const support::Json& e = (*events)[0];
  EXPECT_EQ(e.Find("name")->string_value(), "explore bilateral");
  EXPECT_EQ(e.Find("cat")->string_value(), "explore");
  EXPECT_EQ(e.Find("ph")->string_value(), "X");  // complete event
  EXPECT_EQ(e.Find("pid")->int_value(), 1);
  EXPECT_EQ(e.Find("tid")->int_value(), 2);
  // trace_event timestamps are microseconds.
  EXPECT_EQ(e.Find("ts")->number_value(), 250.0);
  EXPECT_EQ(e.Find("dur")->number_value(), 10500.0);
  EXPECT_EQ(e.Find("args")->Find("jobs")->int_value(), 4);
}

TEST(TraceSinkTest, WriteChromeTraceRoundTripsThroughDisk) {
  TraceSink sink;
  sink.AddSpan("emit", "compile", 0.0, 1.0);
  const std::string path = ::testing::TempDir() + "/hipacc_trace_test.json";
  ASSERT_TRUE(sink.WriteChromeTrace(path).ok());
  auto text = support::ReadFile(path);
  ASSERT_TRUE(text.ok());
  auto parsed = support::Json::Parse(text.value());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().Find("traceEvents")->size(), 1u);
  std::remove(path.c_str());
}

TEST(TraceSinkTest, SimulatorRecordsLaunchesWhenAttached) {
  const int n = 128;
  frontend::KernelSource source =
      ops::BilateralMaskSource(1, ast::BoundaryMode::kClamp);
  compiler::CompileOptions options;
  options.device = hw::TeslaC2050();
  options.image_width = n;
  options.image_height = n;
  auto compiled = compiler::Compile(source, options);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();

  dsl::Image<float> in(n, n), out(n, n);
  runtime::BindingSet bindings;
  bindings.Input("Input", in).Output(out).Scalar("sigma_d", 1).Scalar(
      "sigma_r", 4);
  compiler::SimulatedExecutable exe(std::move(compiled).take(),
                                    hw::TeslaC2050());
  TraceSink sink;
  exe.set_trace(&sink, 5);
  ASSERT_TRUE(exe.Measure(bindings).ok());

  // One build_launch span plus one launch record, both on lane 5.
  ASSERT_EQ(sink.event_count(), 2u);
  const support::Json doc = sink.ToJson();
  const support::Json& events = *doc.Find("events");
  EXPECT_EQ(events[0].Find("name")->string_value(),
            "build_launch bilateral_mask");
  const support::Json& launch = events[1];
  EXPECT_EQ(launch.Find("name")->string_value(), "launch bilateral_mask");
  EXPECT_EQ(launch.Find("category")->string_value(), "sim");
  EXPECT_EQ(launch.Find("tid")->int_value(), 5);
  const support::Json* args = launch.Find("args");
  ASSERT_NE(args, nullptr);
  ASSERT_NE(args->Find("config"), nullptr);
  EXPECT_GT(args->Find("config")->Find("threads")->int_value(), 0);
  EXPECT_GT(args->Find("occupancy")->Find("occupancy")->number_value(), 0.0);
  EXPECT_GT(args->Find("timing")->Find("total_ms")->number_value(), 0.0);
  ASSERT_NE(args->Find("metrics"), nullptr);
  EXPECT_GT(args->Find("metrics")->Find("alu_ops")->number_value(), 0.0);
  EXPECT_TRUE(args->Find("sampled")->bool_value());
}

}  // namespace
}  // namespace hipacc::sim
