// google-benchmark microbenchmarks of the framework's own components
// (wall-clock, not modelled time): boundary-index resolution, the DSL host
// executor, the frontend, the full compile pipeline, and the simulated
// device's block interpreter. These guard the usability of the toolchain
// itself — compile times and host-execution throughput.
#include <benchmark/benchmark.h>

#include "compiler/executable.hpp"
#include "dsl/boundary.hpp"
#include "image/synthetic.hpp"
#include "ops/dsl_ops.hpp"
#include "ops/kernel_sources.hpp"
#include "ops/masks.hpp"

using namespace hipacc;

namespace {

void BM_BoundaryResolve(benchmark::State& state) {
  const auto mode = static_cast<ast::BoundaryMode>(state.range(0));
  int c = -1000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsl::ResolveBoundaryIndex(c, 512, mode));
    c = c >= 1500 ? -1000 : c + 7;
  }
}
BENCHMARK(BM_BoundaryResolve)
    ->Arg(static_cast<int>(ast::BoundaryMode::kClamp))
    ->Arg(static_cast<int>(ast::BoundaryMode::kRepeat))
    ->Arg(static_cast<int>(ast::BoundaryMode::kMirror));

void BM_DslGaussianHostExec(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const HostImage<float> host = MakeNoiseImage(n, n, 7);
  dsl::Image<float> in(n, n), out(n, n);
  in.CopyFrom(host);
  dsl::Mask<float> mask(5, 5);
  mask = ops::GaussianMask2D(5, 1.2f);
  dsl::BoundaryCondition<float> bc(in, 5, 5, ast::BoundaryMode::kMirror);
  dsl::Accessor<float> acc(bc);
  dsl::IterationSpace<float> is(out);
  ops::Convolution conv(is, acc, mask);
  for (auto _ : state) conv.execute();
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n) * n);
}
BENCHMARK(BM_DslGaussianHostExec)->Arg(256)->Arg(512);

void BM_FrontendParse(benchmark::State& state) {
  const frontend::KernelSource source =
      ops::BilateralMaskSource(3, ast::BoundaryMode::kClamp);
  for (auto _ : state) {
    auto kernel = frontend::ParseKernel(source);
    benchmark::DoNotOptimize(kernel.ok());
  }
}
BENCHMARK(BM_FrontendParse);

void BM_FullCompile(benchmark::State& state) {
  const frontend::KernelSource source =
      ops::BilateralMaskSource(3, ast::BoundaryMode::kMirror);
  compiler::CompileOptions copts;
  copts.device = hw::TeslaC2050();
  copts.image_width = 4096;
  copts.image_height = 4096;
  for (auto _ : state) {
    auto compiled = compiler::Compile(source, copts);
    benchmark::DoNotOptimize(compiled.ok());
  }
}
BENCHMARK(BM_FullCompile);

void BM_SimulatedBlockThroughput(benchmark::State& state) {
  const int n = 256;
  frontend::KernelSource source =
      ops::GaussianSource(5, 1.5f, ast::BoundaryMode::kClamp);
  compiler::CompileOptions copts;
  copts.device = hw::TeslaC2050();
  copts.image_width = n;
  copts.image_height = n;
  copts.forced_config = hw::KernelConfig{32, 4};
  auto compiled = compiler::Compile(source, copts);
  HIPACC_CHECK(compiled.ok());
  dsl::Image<float> in(n, n), out(n, n);
  runtime::BindingSet bindings;
  bindings.Input("Input", in).Output(out);
  compiler::SimulatedExecutable exe(std::move(compiled).take(),
                                    hw::TeslaC2050());
  for (auto _ : state) {
    auto stats = exe.Run(bindings);
    benchmark::DoNotOptimize(stats.ok());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n) * n);
}
BENCHMARK(BM_SimulatedBlockThroughput);

}  // namespace

BENCHMARK_MAIN();
