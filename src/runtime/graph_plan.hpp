// Split of the pipeline graph runtime into a reusable *plan* and per-frame
// *execution state*. PR 4's GraphRun bundled both into one object that lived
// for exactly one Run() call; the streaming executor needs the opposite
// lifetime — one planning/compilation pass amortised over a whole frame
// stream, with several frames' worth of mutable state alive at once. So:
//
//   GraphPlan   — everything about a graph that is frame-invariant: the
//                 validated, separated, fused, *compiled* stage list, the
//                 scheduling DAG, and the per-frame buffer refcount
//                 template. Built once (GraphPlan::Build), immutable
//                 afterwards, safe to execute from many frames/threads
//                 concurrently.
//   FrameExec   — one frame's mutable state over a plan: the live buffer
//                 map, the remaining-consumer refcounts, the bound inputs,
//                 and the profile observations the frame's launches
//                 produced. Each in-flight frame owns its own FrameExec, so
//                 overlapped frames can never alias each other's buffers —
//                 they draw from the shared BufferPool, which hands every
//                 Acquire a distinct image.
//
// PipelineGraph::Run is now exactly "Build one plan, execute one frame";
// runtime::StreamExecutor (stream_executor.hpp) keeps the plan and pipelines
// FrameExecs with N frames in flight.
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "compiler/driver.hpp"
#include "compiler/profile.hpp"
#include "runtime/graph.hpp"
#include "runtime/scheduler.hpp"

namespace hipacc::runtime {

/// Frame-invariant execution plan of one PipelineGraph under fixed
/// GraphOptions. Holds pointers to the graph's buffer pool and the options'
/// trace sink; the graph and options must outlive the plan.
struct GraphPlan {
  using Node = PipelineGraph::Node;

  /// One schedulable stage after separation/fusion. `source` + `chain`
  /// reproduce the compiled kernel through the driver's fuse pass;
  /// `effective` is the materialised fused source used for further legality
  /// checks during planning.
  struct Stage {
    Node::Kind kind = Node::Kind::kSource;
    std::string name;
    frontend::KernelSource source;
    std::vector<compiler::FusionRequest> chain;
    frontend::KernelSource effective;
    std::vector<std::pair<std::string, std::string>> inputs;
    /// extra-output name -> virtual image: further images this stage
    /// produces after horizontal fusion (the absorbed siblings' outputs).
    std::vector<std::pair<std::string, std::string>> extra_images;
    std::vector<std::pair<std::string, double>> scalars;
    int width = 0;
    int height = 0;
    compiler::CompiledKernel compiled;
  };

  /// Validates the graph structure (undeclared images, duplicate producers,
  /// cycles — with stage-named diagnostics), plans separation and fusion,
  /// and compiles every kernel stage concurrently through the compilation
  /// cache. Per-frame binding checks (source extents, null outputs) live in
  /// ValidateBindings so a streaming run re-checks each frame cheaply.
  static Result<GraphPlan> Build(PipelineGraph& graph,
                                 const GraphOptions& options);

  /// Per-frame half of the old Validate(): every declared source bound with
  /// the declared extent, every bound output declared and non-null.
  Status ValidateBindings(const PipelineGraph::InputBindings& inputs,
                          const PipelineGraph::OutputBindings& outputs) const;

  const GraphOptions* options = nullptr;
  sim::TraceSink* trace = nullptr;
  BufferPool* pool = nullptr;
  std::vector<Stage> stages;
  std::map<std::string, int> producer;  ///< image name -> stage index
  std::vector<std::string> outputs;     ///< externally visible images
  DagSpec dag;
  /// Per-frame buffer refcount template: consumer edges per image, plus one
  /// for externally visible outputs (held until copied out).
  std::map<std::string, int> base_refcount;
};

/// Mutable state of one frame's execution over a GraphPlan. ExecStage is
/// thread-safe across *distinct* stages of the same frame (the DAG workers'
/// contract); distinct frames are fully independent.
class FrameExec {
 public:
  /// `epoch` is the frame index in a streaming run (0 for one-shot Run());
  /// it labels trace spans/launches and groups profile observations.
  FrameExec(const GraphPlan& plan, long long epoch);

  /// Binds this frame's source images. The pointee vectors must stay alive
  /// until the frame completed. Call once before executing stages.
  void BindInputs(const PipelineGraph::InputBindings* inputs);

  /// Executes one stage: acquires its output buffers from the pool, runs
  /// the kernel (host bytecode executor when supported, simulated device
  /// otherwise), and releases inputs whose last consumer this was.
  Status ExecStage(int index);

  /// Copies every bound output's pixels out. Call after all stages ran.
  Status CopyOutputs(const PipelineGraph::OutputBindings& outputs);

  /// Returns every remaining live buffer (outputs, unconsumed leaves) to
  /// the pool. Safe to call after failures; idempotent.
  void ReleaseRemaining();

  /// Profile observations this frame's simulated launches produced, for a
  /// batched ProfileStore flush (empty when RunOptions::profiles is unset
  /// or every stage ran on the host executor). Clears the internal list.
  std::vector<compiler::KeyedObservation> TakeObservations();

  long long epoch() const noexcept { return epoch_; }

 private:
  Status RunKernelStage(const GraphPlan::Stage& stage);
  void ReleaseConsumed(const GraphPlan::Stage& stage);

  const GraphPlan& plan_;
  long long epoch_ = 0;
  std::mutex mutex_;
  std::map<std::string, BufferPool::ImagePtr> buffers_;
  std::map<std::string, int> refcount_;
  const PipelineGraph::InputBindings* inputs_ = nullptr;
  std::vector<compiler::KeyedObservation> observations_;
};

}  // namespace hipacc::runtime
