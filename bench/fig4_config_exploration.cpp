// Reproduces Figure 4: configuration-space exploration for the bilateral
// filter (13x13 window) on a 4096x4096 image, Tesla C2050, CUDA backend.
// Prints one point per (threads, tiling) configuration — execution time vs
// block size — plus the configuration Algorithm 2 selects and the measured
// optimum. The paper's heuristic pick (32x6) is optimal there; ours must be
// optimal or within ~10% (Section VI-B).
#include <cstdio>

#include "compiler/explore.hpp"
#include "hwmodel/device_db.hpp"
#include "ops/kernel_sources.hpp"

int main() {
  using namespace hipacc;
  const int n = 4096;
  const int sigma_d = 3, sigma_r = 5;
  const hw::DeviceSpec device = hw::TeslaC2050();

  frontend::KernelSource source =
      ops::BilateralMaskSource(sigma_d, ast::BoundaryMode::kClamp);
  compiler::CompileOptions copts;
  copts.codegen.backend = ast::Backend::kCuda;
  copts.device = device;
  copts.image_width = n;
  copts.image_height = n;

  Result<compiler::CompiledKernel> compiled = compiler::Compile(source, copts);
  if (!compiled.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 compiled.status().ToString().c_str());
    return 1;
  }
  const compiler::CompiledKernel& kernel = compiled.value();

  dsl::Image<float> in(n, n), out(n, n);
  runtime::BindingSet bindings;
  bindings.Input("Input", in).Output(out).Scalar("sigma_d", sigma_d).Scalar(
      "sigma_r", sigma_r);

  Result<std::vector<compiler::ExplorePoint>> points =
      compiler::ExploreConfigurations(kernel, device, bindings);
  if (!points.ok()) {
    std::fprintf(stderr, "exploration failed: %s\n",
                 points.status().ToString().c_str());
    return 1;
  }

  std::printf(
      "Figure 4: configuration space exploration, bilateral filter 13x13,\n"
      "4096x4096 image, Tesla C2050 (CUDA). One line per configuration.\n\n");
  std::printf("%8s  %6s  %6s  %9s  %14s  %10s\n", "threads", "blk_x", "blk_y",
              "occupancy", "border_threads", "time_ms");
  const compiler::ExplorePoint* best = nullptr;
  for (const auto& p : points.value()) {
    std::printf("%8d  %6d  %6d  %8.0f%%  %14lld  %10.2f\n",
                p.config.threads(), p.config.block_x, p.config.block_y,
                100.0 * p.occupancy, p.border_threads, p.ms);
    if (!best || p.ms < best->ms) best = &p;
  }

  std::printf("\nHeuristic (Algorithm 2) selected: %dx%d\n",
              kernel.config.config.block_x, kernel.config.config.block_y);
  if (best) {
    std::printf("Exploration optimum: %dx%d at %.2f ms\n",
                best->config.block_x, best->config.block_y, best->ms);
    for (const auto& p : points.value()) {
      if (p.config == kernel.config.config)
        std::printf("Heuristic pick measured at %.2f ms (%.1f%% above optimum)\n",
                    p.ms, 100.0 * (p.ms / best->ms - 1.0));
    }
  }
  return 0;
}
