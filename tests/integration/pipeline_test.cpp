// End-to-end checks: a kernel compiled by the source-to-source compiler and
// executed on the simulated device must produce exactly the pixels the DSL's
// functional host executor produces, for every operator, boundary mode, and
// backend combination. This is the contract that makes the benchmark
// numbers meaningful.
#include <gtest/gtest.h>

#include "compiler/executable.hpp"
#include "image/metrics.hpp"
#include "image/synthetic.hpp"
#include "ops/dsl_ops.hpp"
#include "ops/kernel_sources.hpp"
#include "ops/masks.hpp"

namespace hipacc {
namespace {

using ast::Backend;
using ast::BoundaryMode;

constexpr int kW = 61;  // deliberately not a multiple of the block size
constexpr int kH = 47;

HostImage<float> RunDslBilateral(const HostImage<float>& input,
                                 BoundaryMode mode, int sigma_d, int sigma_r) {
  dsl::Image<float> in(kW, kH), out(kW, kH);
  in.CopyFrom(input);
  const int size = 4 * sigma_d + 1;
  dsl::BoundaryCondition<float> bc =
      mode == BoundaryMode::kConstant
          ? dsl::BoundaryCondition<float>(in, size, size, mode, 0.25f)
          : dsl::BoundaryCondition<float>(in, size, size, mode);
  dsl::Accessor<float> acc(bc);
  dsl::IterationSpace<float> is(out);
  ops::BilateralFilter bf(is, acc, sigma_d, sigma_r);
  bf.execute();
  return out.getData();
}

struct PipelineParam {
  BoundaryMode mode;
  Backend backend;
  codegen::TexturePolicy texture;
};

class BilateralPipelineTest : public ::testing::TestWithParam<PipelineParam> {};

TEST_P(BilateralPipelineTest, CompiledMatchesDsl) {
  const PipelineParam param = GetParam();
  const int sigma_d = 1, sigma_r = 4;  // 5x5 window keeps the test fast

  const HostImage<float> input = MakeAngiogramPhantom(kW, kH, 0.05f, 42);
  const HostImage<float> expected =
      RunDslBilateral(input, param.mode, sigma_d, sigma_r);

  frontend::KernelSource source =
      ops::BilateralSource(sigma_d, param.mode, /*constant_value=*/0.25f);
  compiler::CompileOptions options;
  options.codegen.backend = param.backend;
  options.codegen.texture = param.texture;
  options.device = hw::TeslaC2050();
  options.image_width = kW;
  options.image_height = kH;
  options.forced_config = hw::KernelConfig{32, 4};

  Result<compiler::CompiledKernel> compiled =
      compiler::Compile(source, options);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();

  dsl::Image<float> in(kW, kH), out(kW, kH);
  in.CopyFrom(input);
  runtime::BindingSet bindings;
  bindings.Input("Input", in).Output(out).Scalar("sigma_d", sigma_d).Scalar(
      "sigma_r", sigma_r);

  compiler::SimulatedExecutable exe(std::move(compiled).take(),
                                    hw::TeslaC2050());
  Result<sim::LaunchStats> stats = exe.Run(bindings);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.value().metrics.oob_violations, 0u);

  const HostImage<float> actual = out.getData();
  EXPECT_LE(MaxAbsDiff(expected, actual), 1e-6)
      << "mode=" << to_string(param.mode);
}

std::vector<PipelineParam> AllParams() {
  std::vector<PipelineParam> params;
  for (const BoundaryMode mode :
       {BoundaryMode::kClamp, BoundaryMode::kRepeat, BoundaryMode::kMirror,
        BoundaryMode::kConstant}) {
    for (const Backend backend : {Backend::kCuda, Backend::kOpenCL}) {
      params.push_back({mode, backend, codegen::TexturePolicy::kNone});
      params.push_back({mode, backend, codegen::TexturePolicy::kLinear});
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(AllModesBackends, BilateralPipelineTest,
                         ::testing::ValuesIn(AllParams()),
                         [](const auto& info) {
                           const PipelineParam& p = info.param;
                           std::string name = to_string(p.mode);
                           name += "_";
                           name += to_string(p.backend);
                           name += p.texture == codegen::TexturePolicy::kLinear
                                       ? "_tex"
                                       : "_plain";
                           return name;
                         });

TEST(PipelineTest, MultipleAccessorsWithDifferentModes) {
  // Two accessors over two images, each with its own boundary mode — the
  // benefit the paper attributes to tying modes to Accessors, not Images.
  frontend::KernelSource source;
  source.name = "blend_gradients";
  source.accessors = {
      {"A", {1, 0}, BoundaryMode::kClamp, 0.0f},
      {"B", {1, 0}, BoundaryMode::kConstant, 0.25f},
  };
  source.body = "output() = A(1, 0) - A(-1, 0) + 0.5f * (B(1, 0) - B(-1, 0));";

  compiler::CompileOptions options;
  options.device = hw::TeslaC2050();
  options.image_width = kW;
  options.image_height = kH;
  options.forced_config = hw::KernelConfig{32, 4};
  auto compiled = compiler::Compile(source, options);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();

  const HostImage<float> host_a = MakeNoiseImage(kW, kH, 31);
  const HostImage<float> host_b = MakeNoiseImage(kW, kH, 32);
  dsl::Image<float> a(kW, kH), b(kW, kH), out(kW, kH);
  a.CopyFrom(host_a);
  b.CopyFrom(host_b);
  runtime::BindingSet bindings;
  bindings.Input("A", a).Input("B", b).Output(out);
  compiler::SimulatedExecutable exe(std::move(compiled).take(),
                                    hw::TeslaC2050());
  auto stats = exe.Run(bindings);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.value().metrics.oob_violations, 0u);

  // Direct reference with per-accessor boundary semantics.
  const HostImage<float> actual = out.getData();
  auto clampf = [&](int x) { return std::min(std::max(x, 0), kW - 1); };
  for (int y = 0; y < kH; ++y) {
    for (int x = 0; x < kW; ++x) {
      const float a_hi = host_a(clampf(x + 1), y);
      const float a_lo = host_a(clampf(x - 1), y);
      const float b_hi = x + 1 < kW ? host_b(x + 1, y) : 0.25f;
      const float b_lo = x - 1 >= 0 ? host_b(x - 1, y) : 0.25f;
      const float expected = a_hi - a_lo + 0.5f * (b_hi - b_lo);
      ASSERT_NEAR(actual(x, y), expected, 1e-6f) << x << "," << y;
    }
  }
}

TEST(PipelineTest, UndefinedModeReportsViolationsOnPlainGlobal) {
  const int sigma_d = 1;
  frontend::KernelSource source =
      ops::BilateralSource(sigma_d, BoundaryMode::kUndefined);
  compiler::CompileOptions options;
  options.device = hw::TeslaC2050();
  options.image_width = kW;
  options.image_height = kH;
  options.forced_config = hw::KernelConfig{32, 4};

  Result<compiler::CompiledKernel> compiled =
      compiler::Compile(source, options);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();

  dsl::Image<float> in(kW, kH), out(kW, kH);
  runtime::BindingSet bindings;
  bindings.Input("Input", in).Output(out).Scalar("sigma_d", sigma_d).Scalar(
      "sigma_r", 4);
  compiler::SimulatedExecutable exe(std::move(compiled).take(),
                                    hw::TeslaC2050());
  Result<sim::LaunchStats> stats = exe.Run(bindings);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  // Border pixels read out of bounds without guards: the simulated device
  // records the access violations that crash Fermi cards in Table II.
  EXPECT_GT(stats.value().metrics.oob_violations, 0u);
}

}  // namespace
}  // namespace hipacc
