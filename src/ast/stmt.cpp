#include "ast/stmt.hpp"

#include "support/status.hpp"

namespace hipacc::ast {

const char* to_string(AssignOp op) noexcept {
  switch (op) {
    case AssignOp::kAssign: return "=";
    case AssignOp::kAddAssign: return "+=";
    case AssignOp::kSubAssign: return "-=";
    case AssignOp::kMulAssign: return "*=";
    case AssignOp::kDivAssign: return "/=";
  }
  return "?";
}

namespace {
std::shared_ptr<Stmt> Make(StmtKind kind) {
  auto s = std::make_shared<Stmt>();
  s->kind = kind;
  return s;
}
}  // namespace

StmtPtr Decl(ScalarType type, std::string name, ExprPtr init) {
  auto s = Make(StmtKind::kDecl);
  s->decl_type = type;
  s->name = std::move(name);
  s->value = std::move(init);
  return s;
}

StmtPtr Assign(std::string name, AssignOp op, ExprPtr value) {
  HIPACC_CHECK(value != nullptr);
  auto s = Make(StmtKind::kAssign);
  s->name = std::move(name);
  s->assign_op = op;
  s->value = std::move(value);
  return s;
}

StmtPtr OutputAssign(ExprPtr value, std::string output_name) {
  HIPACC_CHECK(value != nullptr);
  auto s = Make(StmtKind::kOutputAssign);
  s->name = std::move(output_name);
  s->value = std::move(value);
  return s;
}

StmtPtr If(ExprPtr cond, StmtPtr then_stmt, StmtPtr else_stmt) {
  HIPACC_CHECK(cond != nullptr && then_stmt != nullptr);
  auto s = Make(StmtKind::kIf);
  s->cond = std::move(cond);
  s->body.push_back(std::move(then_stmt));
  if (else_stmt) s->body.push_back(std::move(else_stmt));
  return s;
}

StmtPtr For(std::string var, ExprPtr lo, ExprPtr hi, int step, StmtPtr body) {
  HIPACC_CHECK(lo != nullptr && hi != nullptr && body != nullptr && step != 0);
  auto s = Make(StmtKind::kFor);
  s->name = std::move(var);
  s->lo = std::move(lo);
  s->hi = std::move(hi);
  s->step = step;
  s->body.push_back(std::move(body));
  return s;
}

StmtPtr Block(std::vector<StmtPtr> stmts) {
  auto s = Make(StmtKind::kBlock);
  s->body = std::move(stmts);
  return s;
}

StmtPtr Barrier() { return Make(StmtKind::kBarrier); }

StmtPtr MemWrite(MemSpace space, std::string buffer, ExprPtr x, ExprPtr y,
                 ExprPtr value) {
  HIPACC_CHECK(x && y && value);
  auto s = Make(StmtKind::kMemWrite);
  s->space = space;
  s->name = std::move(buffer);
  s->x = std::move(x);
  s->y = std::move(y);
  s->value = std::move(value);
  return s;
}

}  // namespace hipacc::ast
