# Empty compiler generated dependencies file for table6_hd5870_opencl.
# This may be replaced when dependencies are built.
