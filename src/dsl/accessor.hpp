// DSL `BoundaryCondition`, `Accessor`, and `IterationSpace` (Sections II and
// III-A). The Accessor describes *how* an image is seen inside a kernel —
// the access half of the decoupled access/execute metadata. Tying the
// boundary mode to the Accessor (not the Image) lets several kernels view
// one image under different modes without copies.
#pragma once

#include "ast/metadata.hpp"
#include "dsl/boundary.hpp"
#include "dsl/image.hpp"
#include "support/status.hpp"

namespace hipacc::dsl {

using ast::WindowExtent;

/// Boundary-handling specification on an input image for a local operator of
/// a given window size (Listing 3). Holds no pixel data.
template <typename T>
class BoundaryCondition {
 public:
  /// `size_x` x `size_y` is the local-operator window (odd sizes).
  BoundaryCondition(const Image<T>& image, int size_x, int size_y,
                    BoundaryMode mode)
      : image_(&image), window_(WindowExtent::FromSize(size_x, size_y)),
        mode_(mode) {
    HIPACC_CHECK_MSG(mode != BoundaryMode::kConstant,
                     "constant boundary handling requires a constant value");
  }
  /// Constant-mode overload: `value` is returned for out-of-bounds reads.
  BoundaryCondition(const Image<T>& image, int size_x, int size_y,
                    BoundaryMode mode, T value)
      : image_(&image), window_(WindowExtent::FromSize(size_x, size_y)),
        mode_(mode), constant_(value) {}

  const Image<T>& image() const noexcept { return *image_; }
  WindowExtent window() const noexcept { return window_; }
  BoundaryMode mode() const noexcept { return mode_; }
  T constant_value() const noexcept { return constant_; }

 private:
  const Image<T>* image_;
  WindowExtent window_;
  BoundaryMode mode_;
  T constant_{};
};

/// Per-thread iteration point set by the executing kernel; Accessor reads
/// are relative to it. thread_local so the host executor can run blocks on
/// several worker threads concurrently.
struct ExecPoint {
  int x = 0;
  int y = 0;
};

namespace detail {
inline thread_local ExecPoint g_exec_point;
}  // namespace detail

/// View of an input image inside a kernel; `operator()(dx, dy)` reads the
/// pixel at the current iteration point plus the given offsets.
template <typename T>
class Accessor {
 public:
  /// Accessor without boundary handling (mode Undefined). Out-of-bounds
  /// reads clamp in this host implementation as a safety net; on real
  /// hardware the paper's Undefined mode may crash.
  explicit Accessor(const Image<T>& image)
      : image_(&image), mode_(BoundaryMode::kUndefined) {}

  /// Accessor viewing a BoundaryCondition (Listing 3).
  explicit Accessor(const BoundaryCondition<T>& bc)
      : image_(&bc.image()), window_(bc.window()), mode_(bc.mode()),
        constant_(bc.constant_value()) {}

  /// Pixel at the current iteration point plus (dx, dy); (0, 0) — or the
  /// zero-argument overload — is the center pixel.
  T operator()(int dx = 0, int dy = 0) const {
    const int x = detail::g_exec_point.x + dx;
    const int y = detail::g_exec_point.y + dy;
    const int rx = ResolveBoundaryIndex(x, image_->width(), mode_);
    const int ry = ResolveBoundaryIndex(y, image_->height(), mode_);
    if (rx < 0 || ry < 0) return constant_;
    return image_->at(rx, ry);
  }

  /// Absolute-coordinate read used by reductions and tests.
  T at(int x, int y) const {
    const int rx = ResolveBoundaryIndex(x, image_->width(), mode_);
    const int ry = ResolveBoundaryIndex(y, image_->height(), mode_);
    if (rx < 0 || ry < 0) return constant_;
    return image_->at(rx, ry);
  }

  const Image<T>& image() const noexcept { return *image_; }
  WindowExtent window() const noexcept { return window_; }
  BoundaryMode mode() const noexcept { return mode_; }
  T constant_value() const noexcept { return constant_; }

 private:
  const Image<T>* image_;
  WindowExtent window_{};  // zero window when no BoundaryCondition given
  BoundaryMode mode_;
  T constant_{};
};

/// Rectangular region of interest in the output image — the execute half of
/// the metadata. Each point is one work-item (1:1 mapping, Section II).
template <typename T>
class IterationSpace {
 public:
  /// Whole-image iteration space.
  explicit IterationSpace(Image<T>& image)
      : image_(&image), offset_x_(0), offset_y_(0), width_(image.width()),
        height_(image.height()) {}

  /// Sub-rectangle [offset_x, offset_x+width) x [offset_y, offset_y+height).
  IterationSpace(Image<T>& image, int offset_x, int offset_y, int width,
                 int height)
      : image_(&image), offset_x_(offset_x), offset_y_(offset_y),
        width_(width), height_(height) {
    HIPACC_CHECK(offset_x >= 0 && offset_y >= 0 && width > 0 && height > 0 &&
                 offset_x + width <= image.width() &&
                 offset_y + height <= image.height());
  }

  Image<T>& image() const noexcept { return *image_; }
  int offset_x() const noexcept { return offset_x_; }
  int offset_y() const noexcept { return offset_y_; }
  int width() const noexcept { return width_; }
  int height() const noexcept { return height_; }

 private:
  Image<T>* image_;
  int offset_x_;
  int offset_y_;
  int width_;
  int height_;
};

}  // namespace hipacc::dsl
