// Boundary index resolution — the semantics behind Table I and Figure 2.
// Property-style parameterized sweeps plus the exact expansions of the
// paper's figure.
#include "dsl/boundary.hpp"

#include <gtest/gtest.h>

namespace hipacc::dsl {
namespace {

using ast::BoundaryMode;

TEST(BoundaryTest, InRangeIsIdentityForAllModes) {
  for (const BoundaryMode mode :
       {BoundaryMode::kUndefined, BoundaryMode::kClamp, BoundaryMode::kRepeat,
        BoundaryMode::kMirror, BoundaryMode::kConstant}) {
    for (int c = 0; c < 7; ++c) EXPECT_EQ(ResolveBoundaryIndex(c, 7, mode), c);
  }
}

TEST(BoundaryTest, ClampPinsToEdges) {
  EXPECT_EQ(ResolveBoundaryIndex(-1, 4, BoundaryMode::kClamp), 0);
  EXPECT_EQ(ResolveBoundaryIndex(-100, 4, BoundaryMode::kClamp), 0);
  EXPECT_EQ(ResolveBoundaryIndex(4, 4, BoundaryMode::kClamp), 3);
  EXPECT_EQ(ResolveBoundaryIndex(99, 4, BoundaryMode::kClamp), 3);
}

TEST(BoundaryTest, RepeatIsPeriodic) {
  // Figure 2b row above the image shows M N O P continuing from the bottom.
  EXPECT_EQ(ResolveBoundaryIndex(-1, 4, BoundaryMode::kRepeat), 3);
  EXPECT_EQ(ResolveBoundaryIndex(-4, 4, BoundaryMode::kRepeat), 0);
  EXPECT_EQ(ResolveBoundaryIndex(-5, 4, BoundaryMode::kRepeat), 3);
  EXPECT_EQ(ResolveBoundaryIndex(4, 4, BoundaryMode::kRepeat), 0);
  EXPECT_EQ(ResolveBoundaryIndex(9, 4, BoundaryMode::kRepeat), 1);
}

TEST(BoundaryTest, MirrorDuplicatesBorderPixel) {
  // Figure 2d: -1 -> 0, -2 -> 1, -3 -> 2; n -> n-1, n+1 -> n-2.
  EXPECT_EQ(ResolveBoundaryIndex(-1, 4, BoundaryMode::kMirror), 0);
  EXPECT_EQ(ResolveBoundaryIndex(-2, 4, BoundaryMode::kMirror), 1);
  EXPECT_EQ(ResolveBoundaryIndex(-3, 4, BoundaryMode::kMirror), 2);
  EXPECT_EQ(ResolveBoundaryIndex(4, 4, BoundaryMode::kMirror), 3);
  EXPECT_EQ(ResolveBoundaryIndex(5, 4, BoundaryMode::kMirror), 2);
  EXPECT_EQ(ResolveBoundaryIndex(7, 4, BoundaryMode::kMirror), 0);
}

TEST(BoundaryTest, MirrorFarOutOfBoundsReflectsRepeatedly) {
  // Period 2n: -n-1 reflects back inward.
  EXPECT_EQ(ResolveBoundaryIndex(-5, 4, BoundaryMode::kMirror), 3);  // 2nd bounce
  EXPECT_EQ(ResolveBoundaryIndex(8, 4, BoundaryMode::kMirror), 0);
  EXPECT_EQ(ResolveBoundaryIndex(-8, 4, BoundaryMode::kMirror), 0);
}

TEST(BoundaryTest, ConstantSignalsSubstitution) {
  EXPECT_EQ(ResolveBoundaryIndex(-1, 4, BoundaryMode::kConstant), -1);
  EXPECT_EQ(ResolveBoundaryIndex(4, 4, BoundaryMode::kConstant), -1);
  EXPECT_EQ(ResolveBoundaryIndex(2, 4, BoundaryMode::kConstant), 2);
}

TEST(BoundaryTest, UndefinedClampsAsSafetyNet) {
  EXPECT_EQ(ResolveBoundaryIndex(-3, 4, BoundaryMode::kUndefined), 0);
  EXPECT_EQ(ResolveBoundaryIndex(6, 4, BoundaryMode::kUndefined), 3);
}

// Property sweep: every resolving mode maps any coordinate into [0, n).
struct SweepParam {
  BoundaryMode mode;
  int n;
};

class BoundarySweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(BoundarySweepTest, AlwaysLandsInRange) {
  const auto [mode, n] = GetParam();
  for (int c = -3 * n; c <= 3 * n; ++c) {
    const int r = ResolveBoundaryIndex(c, n, mode);
    ASSERT_GE(r, 0) << "c=" << c << " n=" << n;
    ASSERT_LT(r, n) << "c=" << c << " n=" << n;
  }
}

TEST_P(BoundarySweepTest, MirrorIsSymmetricAroundEdges) {
  const auto [mode, n] = GetParam();
  if (mode != BoundaryMode::kMirror) return;
  for (int k = 0; k < n; ++k) {
    // Reflection about the left edge: -1-k maps like k.
    EXPECT_EQ(ResolveBoundaryIndex(-1 - k, n, mode),
              ResolveBoundaryIndex(k, n, mode));
    // Reflection about the right edge: n+k maps like n-1-k.
    EXPECT_EQ(ResolveBoundaryIndex(n + k, n, mode),
              ResolveBoundaryIndex(n - 1 - k, n, mode));
  }
}

TEST_P(BoundarySweepTest, RepeatHasPeriodN) {
  const auto [mode, n] = GetParam();
  if (mode != BoundaryMode::kRepeat) return;
  for (int c = -2 * n; c < 2 * n; ++c)
    EXPECT_EQ(ResolveBoundaryIndex(c, n, mode),
              ResolveBoundaryIndex(c + n, n, mode));
}

std::vector<SweepParam> SweepParams() {
  std::vector<SweepParam> params;
  for (const BoundaryMode mode : {BoundaryMode::kClamp, BoundaryMode::kRepeat,
                                  BoundaryMode::kMirror, BoundaryMode::kUndefined})
    for (const int n : {1, 2, 3, 7, 16, 61}) params.push_back({mode, n});
  return params;
}

INSTANTIATE_TEST_SUITE_P(ModesAndSizes, BoundarySweepTest,
                         ::testing::ValuesIn(SweepParams()),
                         [](const auto& info) {
                           return std::string(to_string(info.param.mode)) +
                                  "_n" + std::to_string(info.param.n);
                         });

}  // namespace
}  // namespace hipacc::dsl
