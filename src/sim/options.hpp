// Simulator execution-engine selection. The simulator has two functionally
// identical engines: the tree-walking AST interpreter (interpreter.cpp) and
// the register-based bytecode VM (bytecode.cpp + vm.cpp). The VM is the
// default; the interpreter remains as the reference semantics, the fallback
// for programs the bytecode compiler rejects, and the `--sim-engine=ast`
// escape hatch for differential debugging.
#pragma once

#include <string>

#include "support/status.hpp"

namespace hipacc::sim {

enum class ExecEngine {
  kBytecode,  ///< compile-once linear programs, region-specialised (default)
  kAst,       ///< tree-walking reference interpreter
};

const char* to_string(ExecEngine engine) noexcept;

/// Parses "bytecode" / "ast" (the --sim-engine= vocabulary).
Result<ExecEngine> ParseExecEngine(const std::string& text);

struct SimulatorOptions {
  ExecEngine engine = ExecEngine::kBytecode;
};

/// Process-wide default used by Simulators constructed without explicit
/// options. Mutable so CLI flags (--sim-engine=) can steer every simulator
/// in the process, including those created deep inside the exploration
/// engine. Set it before spawning exploration threads; it is read without
/// synchronisation.
SimulatorOptions& DefaultSimulatorOptions();

}  // namespace hipacc::sim
