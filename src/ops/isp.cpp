#include "ops/isp.hpp"

#include <cmath>

#include "ops/kernel_sources.hpp"

namespace hipacc::ops {
namespace {

using ast::AccessorInfo;
using ast::BoundaryMode;
using ast::ScalarType;
using ast::WindowExtent;

AccessorInfo PointAccessor(const std::string& name) {
  AccessorInfo acc;
  acc.name = name;
  acc.window = WindowExtent::FromSize(1, 1);
  acc.boundary = BoundaryMode::kUndefined;
  acc.constant_value = 0.0f;
  return acc;
}

}  // namespace

frontend::KernelSource DebayerPlaneSource(char plane, ast::BoundaryMode mode) {
  // Bilinear Bayer interpolation averaged over the four phases of an RGGB
  // tile. At a matching site the channel passes through (centre weight); at
  // the others it is the mean of the 2 or 4 nearest samples. Averaging the
  // four per-phase stencils gives one coordinate-free 3x3 mask per channel:
  // R and B (one site per tile) get the full bilinear tent, G (two sites)
  // the diamond.
  std::vector<float> mask;
  switch (plane) {
    case 'r':
    case 'b':
      mask = {0.0625f, 0.125f, 0.0625f,  //
              0.125f,  0.25f,  0.125f,   //
              0.0625f, 0.125f, 0.0625f};
      break;
    case 'g':
    default:
      mask = {0.0f,   0.125f, 0.0f,    //
              0.125f, 0.5f,   0.125f,  //
              0.0f,   0.125f, 0.0f};
      break;
  }
  return ConvolutionSource(std::string("debayer_") + plane, 3, 3,
                           std::move(mask), mode);
}

frontend::KernelSource VignettingApplySource() {
  frontend::KernelSource src;
  src.name = "vignetting_apply";
  AccessorInfo input = PointAccessor("Input");
  AccessorInfo gain = PointAccessor("Gain");
  src.accessors = {input, gain};
  src.body = "output() = Input() * Gain();";
  return src;
}

frontend::KernelSource ColorMatrixSource(const std::string& name) {
  frontend::KernelSource src;
  src.name = name;
  src.params = {{"c_r", ScalarType::kFloat},
                {"c_g", ScalarType::kFloat},
                {"c_b", ScalarType::kFloat},
                {"bias", ScalarType::kFloat}};
  AccessorInfo r = PointAccessor("R");
  AccessorInfo g = PointAccessor("G");
  AccessorInfo b = PointAccessor("B");
  src.accessors = {r, g, b};
  src.body = "output() = c_r * R() + c_g * G() + c_b * B() + bias;";
  return src;
}

HostImage<float> MakeVignettingGain(int width, int height, float edge_gain) {
  HostImage<float> gain(width, height);
  const double cx = (width - 1) / 2.0;
  const double cy = (height - 1) / 2.0;
  const double r2_max = cx * cx + cy * cy;
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      const double dx = x - cx;
      const double dy = y - cy;
      const double falloff = r2_max > 0.0 ? (dx * dx + dy * dy) / r2_max : 0.0;
      gain.at(x, y) =
          static_cast<float>(1.0 + (edge_gain - 1.0) * falloff);
    }
  }
  return gain;
}

void BuildCameraIspGraph(runtime::PipelineGraph& graph, int width, int height,
                         ast::BoundaryMode mode) {
  // BT.601 full-range RGB -> YUV rows; U/V biased to mid-grey so every
  // channel stays in [0, 1] for unit-range input.
  graph.Source("raw", width, height)
      .Source("gain", width, height)
      .Kernel("shaded", VignettingApplySource(),
              {{"Input", "raw"}, {"Gain", "gain"}})
      .Kernel("r", DebayerPlaneSource('r', mode), {{"Input", "shaded"}})
      .Kernel("g", DebayerPlaneSource('g', mode), {{"Input", "shaded"}})
      .Kernel("b", DebayerPlaneSource('b', mode), {{"Input", "shaded"}})
      .Kernel("y", ColorMatrixSource("rgb2y"),
              {{"R", "r"}, {"G", "g"}, {"B", "b"}},
              {{"c_r", 0.299}, {"c_g", 0.587}, {"c_b", 0.114}, {"bias", 0.0}})
      .Kernel("u", ColorMatrixSource("rgb2u"),
              {{"R", "r"}, {"G", "g"}, {"B", "b"}},
              {{"c_r", -0.168736},
               {"c_g", -0.331264},
               {"c_b", 0.5},
               {"bias", 0.5}})
      .Kernel("v", ColorMatrixSource("rgb2v"),
              {{"R", "r"}, {"G", "g"}, {"B", "b"}},
              {{"c_r", 0.5},
               {"c_g", -0.418688},
               {"c_b", -0.081312},
               {"bias", 0.5}})
      .Kernel("y_dn", GaussianSource(3, 0.8f, mode), {{"Input", "y"}})
      .Output("y_dn")
      .Output("u")
      .Output("v");
}

}  // namespace hipacc::ops
