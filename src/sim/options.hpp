// Simulator execution-engine selection. The simulator has three
// functionally identical engines: the tree-walking AST interpreter
// (interpreter.cpp), the register-based bytecode VM (bytecode.cpp + vm.cpp),
// and the native tier (jit/) which compiles hot register programs to host
// machine code. The VM is the default; the interpreter remains as the
// reference semantics, the fallback for programs the bytecode compiler
// rejects, and the `--sim-engine=ast` escape hatch for differential
// debugging. `native` layers tiering on top of the VM: launches run on the
// threaded-dispatch VM until the invocation count reaches `jit_threshold`,
// then switch to the compiled shared object (or stay on the VM forever when
// no host toolchain is available).
#pragma once

#include <string>

#include "support/status.hpp"

namespace hipacc::sim {

enum class ExecEngine {
  kBytecode,  ///< compile-once linear programs, region-specialised (default)
  kAst,       ///< tree-walking reference interpreter
  kNative,    ///< bytecode + tiered native code (jit/), VM until hot
};

const char* to_string(ExecEngine engine) noexcept;

/// Parses "bytecode" / "ast" / "native" (the --sim-engine= vocabulary).
Result<ExecEngine> ParseExecEngine(const std::string& text);

struct SimulatorOptions {
  ExecEngine engine = ExecEngine::kBytecode;
  /// Native tier trigger: a kernel's program set is compiled to host code
  /// once it has been launched this many times (engine == kNative only).
  /// 1 compiles on first launch; a huge value pins the threaded VM.
  int jit_threshold = 2;
};

/// Process-wide default used by Simulators constructed without explicit
/// options. Mutable so CLI flags (--sim-engine=) can steer every simulator
/// in the process, including those created deep inside the exploration
/// engine. Set it before spawning exploration threads; it is read without
/// synchronisation.
SimulatorOptions& DefaultSimulatorOptions();

}  // namespace hipacc::sim
