// Warm-vs-cold persistent-cache report: the same compile + first-native-
// launch workload is run twice against one cache directory, with every
// in-memory cache dropped in between — so the second pass stands in for a
// fresh process against a populated disk cache. The cold pass pays frontend
// lowering, target selection, and the JIT toolchain; the warm pass decodes
// artifacts and dlopens cached shared objects, and the report proves it did
// no compilation at all (zero target-cache misses, zero toolchain runs,
// cache.disk.hit > 0).
//
// Meaningful cold numbers need an empty cache directory: point --cache-dir
// at a fresh path (the CI smoke uses mktemp -d). Against an already-warm
// directory both passes hit disk and the speedup reads ~1x.
//
//   --min-speedup=R    exit non-zero unless cold/warm wall >= R and the
//                      warm pass performed zero compiles with disk hits
//   --json-out=FILE    report path (default BENCH_cache.json)
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "compiler/cache.hpp"
#include "compiler/driver.hpp"
#include "image/synthetic.hpp"
#include "ops/kernel_sources.hpp"
#include "ops/masks.hpp"
#include "runtime/bindings.hpp"
#include "sim/jit/cache.hpp"
#include "sim/jit/toolchain.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "support/disk_store.hpp"
#include "support/stopwatch.hpp"

namespace {

using namespace hipacc;

struct Case {
  std::string label;
  frontend::KernelSource source;
  int n;
  runtime::BindingSet scalars;
};

struct PassReport {
  double wall_ms = 0.0;
  long long target_misses = 0;   ///< pipeline runs (0 = fully cached)
  long long disk_hits = 0;       ///< compiler-tier disk hits
  long long jit_compiles = 0;    ///< toolchain invocations
  long long trace_disk_hits = 0; ///< cache.disk.hit across all tiers
  long long trace_disk_stores = 0;
};

/// One full compile-and-first-launch pass over `cases` through fresh
/// in-memory caches. Dropping JitCache's process state is what turns the
/// second call into a faithful stand-in for a second process: everything it
/// reuses must come from the disk tier.
Result<PassReport> RunPass(const std::vector<Case>& cases) {
  sim::jit::JitCache::Instance().ResetForTesting();
  compiler::CompilationCache cache;
  sim::TraceSink trace;
  PassReport report;
  Stopwatch wall;

  for (const Case& c : cases) {
    compiler::CompileOptions options;
    options.device = hw::TeslaC2050();
    options.image_width = c.n;
    options.image_height = c.n;
    options.cache = &cache;
    options.trace = &trace;
    Result<compiler::CompiledKernel> compiled =
        compiler::Compile(c.source, options);
    if (!compiled.ok()) return compiled.status();

    dsl::Image<float> in(c.n, c.n), out(c.n, c.n);
    in.CopyFrom(MakeNoiseImage(c.n, c.n, 7));
    runtime::BindingSet bindings = c.scalars;
    bindings.Input("Input", in).Output(out);
    Result<runtime::LaunchHolder> holder = runtime::BuildLaunch(
        compiled.value().device_ir, compiled.value().config.config, bindings);
    if (!holder.ok()) return holder.status();
    holder.value().launch.programs = compiled.value().bytecode.get();

    sim::SimulatorOptions so;
    so.engine = sim::ExecEngine::kNative;
    so.jit_threshold = 1;
    sim::Simulator simulator(hw::TeslaC2050(), so);
    simulator.set_trace(&trace);
    Result<sim::LaunchStats> stats =
        simulator.Execute(holder.value().launch);
    if (!stats.ok()) return stats.status();
  }

  report.wall_ms = wall.ElapsedMs();
  const compiler::CompilationCache::Stats stats = cache.stats();
  report.target_misses = stats.target_misses;
  report.disk_hits = stats.disk_hits;
  report.jit_compiles =
      static_cast<long long>(sim::jit::JitCache::Instance().compiles());
  report.trace_disk_hits = trace.counter("cache.disk.hit");
  report.trace_disk_stores = trace.counter("cache.disk.store");
  return report;
}

support::Json PassJson(const PassReport& report) {
  support::Json j = support::Json::Object();
  j["wall_ms"] = report.wall_ms;
  j["target_misses"] = report.target_misses;
  j["compiler_disk_hits"] = report.disk_hits;
  j["jit_compiles"] = report.jit_compiles;
  j["disk_hits"] = report.trace_disk_hits;
  j["disk_stores"] = report.trace_disk_stores;
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  double min_speedup = 0.0;
  std::string json_out = "BENCH_cache.json";
  support::CliParser cli = bench::MakeBenchCli(
      "cache_warm", "warm-vs-cold persistent compilation/JIT cache");
  cli.Value("min-speedup", "R",
            "fail unless cold/warm wall >= R with a zero-compile warm pass",
            [&min_speedup](const std::string& value) -> Status {
              char* end = nullptr;
              min_speedup = std::strtod(value.c_str(), &end);
              if (end == value.c_str() || *end != '\0')
                return Status::Invalid("expected a number, got '" + value +
                                       "'");
              return Status::Ok();
            });
  cli.String("json-out", &json_out, "FILE", "BENCH_*.json report path");
  if (const int code = cli.HandleArgs(argc, argv); code >= 0) return code;

  if (!support::GlobalDiskStore().enabled()) {
    std::fprintf(stderr,
                 "persistent cache disabled (--cache-dir=off?): there is no "
                 "disk tier to warm\n");
    return min_speedup > 0.0 ? 1 : 0;
  }
  if (!sim::jit::ToolchainAvailable()) {
    std::fprintf(stderr,
                 "no host toolchain: the cold pass would never JIT, so the "
                 "warm comparison would be meaningless\n");
    return min_speedup > 0.0 ? 1 : 0;
  }

  runtime::BindingSet tone;
  tone.Scalar("center", 0.35f).Scalar("weight", 0.6f);
  const std::vector<Case> cases = {
      {"gaussian5_512",
       ops::GaussianSource(5, 1.2f, ast::BoundaryMode::kMirror), 512, {}},
      {"sobel3_512",
       ops::ConvolutionSource("sobel", 3, 3, ops::SobelMaskX(),
                              ast::BoundaryMode::kClamp),
       512,
       {}},
      {"tone_curve8_512", ops::ToneCurveSource(8), 512, tone},
  };

  Result<PassReport> cold = RunPass(cases);
  if (!cold.ok()) {
    std::fprintf(stderr, "cold pass failed: %s\n",
                 cold.status().ToString().c_str());
    return 1;
  }
  Result<PassReport> warm = RunPass(cases);
  if (!warm.ok()) {
    std::fprintf(stderr, "warm pass failed: %s\n",
                 warm.status().ToString().c_str());
    return 1;
  }

  const double speedup = warm.value().wall_ms > 0.0
                             ? cold.value().wall_ms / warm.value().wall_ms
                             : 0.0;
  std::printf("Persistent cache warm-start (%zu kernels, dir %s)\n\n",
              cases.size(), support::GlobalDiskStore().root().c_str());
  std::printf("%6s  %10s  %14s  %12s  %9s  %11s\n", "pass", "wall_ms",
              "target_misses", "jit_compiles", "disk_hits", "disk_stores");
  const auto row = [](const char* label, const PassReport& r) {
    std::printf("%6s  %10.1f  %14lld  %12lld  %9lld  %11lld\n", label,
                r.wall_ms, r.target_misses, r.jit_compiles, r.trace_disk_hits,
                r.trace_disk_stores);
  };
  row("cold", cold.value());
  row("warm", warm.value());
  std::printf("\nwarm-start speedup: %.2fx\n", speedup);
  if (cold.value().trace_disk_hits > 0)
    std::printf("note: the cold pass hit the disk cache — the directory was "
                "already warm, so the speedup above understates a true cold "
                "start\n");

  if (!json_out.empty()) {
    support::Json doc = support::Json::Object();
    doc["bench"] = "cache_warm";
    doc["device"] = hw::TeslaC2050().name;
    doc["cache_dir"] = support::GlobalDiskStore().root();
    support::Json kernels = support::Json::Array();
    for (const Case& c : cases) kernels.push_back(c.label);
    doc["kernels"] = std::move(kernels);
    doc["cold"] = PassJson(cold.value());
    doc["warm"] = PassJson(warm.value());
    doc["speedup"] = speedup;
    const Status written = support::WriteFile(json_out, doc.Dump(2) + "\n");
    if (!written.ok())
      std::fprintf(stderr, "warning: %s\n", written.ToString().c_str());
    else
      std::fprintf(stderr, "wrote %s\n", json_out.c_str());
  }

  if (min_speedup > 0.0) {
    bool ok = true;
    if (warm.value().trace_disk_hits <= 0) {
      std::fprintf(stderr, "FAIL: warm pass recorded no disk hits\n");
      ok = false;
    }
    if (warm.value().target_misses != 0 || warm.value().jit_compiles != 0) {
      std::fprintf(stderr,
                   "FAIL: warm pass still compiled (target misses %lld, jit "
                   "compiles %lld)\n",
                   warm.value().target_misses, warm.value().jit_compiles);
      ok = false;
    }
    if (speedup < min_speedup) {
      std::fprintf(stderr, "FAIL: warm-start speedup %.2fx < %.2fx\n",
                   speedup, min_speedup);
      ok = false;
    }
    if (!ok) return 1;
  }
  return 0;
}
