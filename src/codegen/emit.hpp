// Source emitters: render a lowered DeviceKernel as compilable CUDA or
// OpenCL kernel source text (the paper's actual output artifact). The region
// dispatch uses Listing 8's goto structure; boundary guards are emitted
// inline per access; textures map to tex1Dfetch/read_imagef (Listing 6);
// scratchpad staging follows Listing 7; masks become __constant__ arrays.
//
// Launch-configuration-dependent constants (block sizes, region bounds,
// scratchpad tile sizes) are emitted as #defines at the top, mirroring the
// macros the paper's exploration mode substitutes at run time.
#pragma once

#include <string>

#include "ast/kernel_ir.hpp"
#include "hwmodel/config.hpp"

namespace hipacc::codegen {

/// Everything the emitter needs besides the kernel itself.
struct EmitContext {
  hw::KernelConfig config{128, 1};
  int image_width = 0;   ///< 0 = leave IW/IH as runtime macros
  int image_height = 0;
};

/// Renders the complete kernel source for `kernel.backend`.
std::string EmitKernelSource(const ast::DeviceKernel& kernel,
                             const EmitContext& ctx);

/// Renders a single expression in backend syntax (exposed for tests).
std::string EmitExpr(const ast::ExprPtr& expr, ast::Backend backend);

}  // namespace hipacc::codegen
