// Reproduces Table V: bilateral filter on the Quadro FX 5800, OpenCL backend.
#include <cstdio>

#include "common/bilateral_table.hpp"
#include "common/table.hpp"
#include "hwmodel/device_db.hpp"

int main(int argc, char** argv) {
  hipacc::support::CliParser cli =
      hipacc::bench::MakeBenchCli("table5_quadro_opencl", "Table V: bilateral filter, Quadro FX 5800, OpenCL backend");
  if (const int code = cli.HandleArgs(argc, argv); code >= 0) return code;
  hipacc::bench::BilateralTableOptions options;
  options.device = hipacc::hw::QuadroFx5800();
  options.json_out = "BENCH_table5.json";
  options.backend = hipacc::ast::Backend::kOpenCL;
  std::printf("%s\n", hipacc::bench::RunBilateralTable(
                          "Table V: Quadro FX 5800, OpenCL backend", options)
                          .c_str());
  return 0;
}
