#include "runtime/graph.hpp"

#include <algorithm>
#include <map>
#include <mutex>

#include "compiler/cache.hpp"
#include "compiler/driver.hpp"
#include "compiler/separate.hpp"
#include "runtime/bindings.hpp"
#include "runtime/host_exec.hpp"
#include "runtime/scheduler.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "support/parallel_for.hpp"
#include "support/string_utils.hpp"

namespace hipacc::runtime {

PipelineGraph& PipelineGraph::AddNode(Node node) {
  for (const Node& existing : nodes_) {
    if (existing.name == node.name) {
      if (deferred_error_.ok())
        deferred_error_ = Status::Invalid("image '" + node.name +
                                          "' is produced by more than one "
                                          "stage");
      return *this;
    }
  }
  nodes_.push_back(std::move(node));
  return *this;
}

PipelineGraph& PipelineGraph::Source(std::string name, int width, int height) {
  if (width <= 0 || height <= 0) {
    if (deferred_error_.ok())
      deferred_error_ =
          Status::Invalid("source '" + name + "' needs a positive extent");
    return *this;
  }
  Node node;
  node.kind = Node::Kind::kSource;
  node.name = std::move(name);
  node.width = width;
  node.height = height;
  return AddNode(std::move(node));
}

PipelineGraph& PipelineGraph::Kernel(
    std::string name, frontend::KernelSource kernel,
    std::vector<std::pair<std::string, std::string>> inputs,
    std::vector<std::pair<std::string, double>> scalars) {
  if (inputs.empty()) {
    if (deferred_error_.ok())
      deferred_error_ = Status::Invalid(
          "kernel stage '" + name +
          "' needs at least one input (its extent is inferred from the "
          "first)");
    return *this;
  }
  Node node;
  node.kind = Node::Kind::kKernel;
  node.name = std::move(name);
  node.kernel = std::move(kernel);
  node.inputs = std::move(inputs);
  node.scalars = std::move(scalars);
  return AddNode(std::move(node));
}

PipelineGraph& PipelineGraph::Decimate2(std::string name, std::string input) {
  Node node;
  node.kind = Node::Kind::kDecimate;
  node.name = std::move(name);
  node.inputs.emplace_back(std::string(), std::move(input));
  return AddNode(std::move(node));
}

PipelineGraph& PipelineGraph::ZeroUpsample(std::string name, std::string input,
                                           int width, int height) {
  if (width <= 0 || height <= 0) {
    if (deferred_error_.ok())
      deferred_error_ = Status::Invalid("upsample stage '" + name +
                                        "' needs a positive target extent");
    return *this;
  }
  Node node;
  node.kind = Node::Kind::kUpsample;
  node.name = std::move(name);
  node.inputs.emplace_back(std::string(), std::move(input));
  node.width = width;
  node.height = height;
  return AddNode(std::move(node));
}

PipelineGraph& PipelineGraph::Output(std::string name) {
  if (std::find(outputs_.begin(), outputs_.end(), name) == outputs_.end())
    outputs_.push_back(std::move(name));
  return *this;
}

/// All state of one Run(): the fused stage list, compiled artifacts, live
/// buffers, and reference counts. A fresh GraphRun per call keeps
/// PipelineGraph itself reusable and Run() re-entrant over the same graph.
struct GraphRun {
  using Node = PipelineGraph::Node;

  /// One schedulable stage after fusion. `source` + `chain` reproduce the
  /// compiled kernel through the driver's fuse pass; `effective` is the
  /// materialised fused source used for further legality checks.
  struct Stage {
    Node::Kind kind = Node::Kind::kSource;
    std::string name;
    frontend::KernelSource source;
    std::vector<compiler::FusionRequest> chain;
    frontend::KernelSource effective;
    std::vector<std::pair<std::string, std::string>> inputs;
    std::vector<std::pair<std::string, double>> scalars;
    int width = 0;
    int height = 0;
    compiler::CompiledKernel compiled;
  };

  PipelineGraph& graph;
  const GraphOptions& options;
  sim::TraceSink* trace;
  std::vector<Stage> stages;
  std::map<std::string, int> producer;  ///< image name -> stage index

  // Execution state.
  std::mutex mutex;
  std::map<std::string, BufferPool::ImagePtr> buffers;
  std::map<std::string, int> refcount;
  const PipelineGraph::InputBindings* inputs = nullptr;

  GraphRun(PipelineGraph& g, const GraphOptions& o)
      : graph(g), options(o), trace(o.run.trace) {}

  Status Validate(const PipelineGraph::InputBindings& in,
                  const PipelineGraph::OutputBindings& out);
  Result<std::vector<int>> OrderAndExtents();
  void PlanSeparation();
  void PlanFusion();
  Status CompileStages();
  DagSpec BuildDag() const;
  Status ExecStage(int index);
  Status RunKernelStage(Stage& stage);
  void ReleaseConsumed(const Stage& stage);
};

Status GraphRun::Validate(const PipelineGraph::InputBindings& in,
                          const PipelineGraph::OutputBindings& out) {
  for (std::size_t i = 0; i < graph.nodes_.size(); ++i)
    producer[graph.nodes_[i].name] = static_cast<int>(i);
  for (const Node& node : graph.nodes_) {
    for (const auto& [accessor, image] : node.inputs) {
      if (producer.find(image) == producer.end())
        return Status::Invalid("stage '" + node.name +
                               "' consumes undeclared image '" + image + "'");
      if (image == node.name)
        return Status::Invalid("pipeline graph has a cycle: " + node.name +
                               " -> " + node.name);
    }
  }
  for (const std::string& name : graph.outputs_) {
    if (producer.find(name) == producer.end())
      return Status::Invalid("output '" + name +
                             "' is not produced by any stage");
  }
  for (const auto& [name, image] : out) {
    if (image == nullptr)
      return Status::Invalid("output '" + name + "' bound to null");
    if (std::find(graph.outputs_.begin(), graph.outputs_.end(), name) ==
        graph.outputs_.end())
      return Status::Invalid("'" + name +
                             "' is not declared as a graph output");
  }
  for (const Node& node : graph.nodes_) {
    if (node.kind != Node::Kind::kSource) continue;
    const HostImage<float>* bound = nullptr;
    for (const auto& [name, image] : in)
      if (name == node.name) bound = image;
    if (bound == nullptr)
      return Status::Invalid("source '" + node.name + "' is not bound");
    if (bound->width() != node.width || bound->height() != node.height)
      return Status::Invalid(StrFormat(
          "source '%s' declared %dx%d but bound %dx%d", node.name.c_str(),
          node.width, node.height, bound->width(), bound->height()));
  }
  return Status::Ok();
}

Result<std::vector<int>> GraphRun::OrderAndExtents() {
  // Cycle check runs on the *declared* graph so the diagnostic speaks the
  // user's stage names; fusion afterwards preserves acyclicity.
  DagSpec dag;
  dag.dependencies.assign(graph.nodes_.size(), 0);
  dag.consumers.assign(graph.nodes_.size(), {});
  for (std::size_t i = 0; i < graph.nodes_.size(); ++i) {
    for (const auto& [accessor, image] : graph.nodes_[i].inputs) {
      dag.dependencies[i] += 1;
      dag.consumers[static_cast<std::size_t>(producer.at(image))].push_back(
          static_cast<int>(i));
    }
  }
  Result<std::vector<int>> order = TopologicalOrder(
      dag, [this](int i) { return graph.nodes_[static_cast<std::size_t>(i)].name; });
  if (!order.ok()) return order.status();

  stages.resize(graph.nodes_.size());
  for (std::size_t i = 0; i < graph.nodes_.size(); ++i) {
    const Node& node = graph.nodes_[i];
    Stage& stage = stages[i];
    stage.kind = node.kind;
    stage.name = node.name;
    stage.source = node.kernel;
    stage.effective = node.kernel;
    stage.inputs = node.inputs;
    stage.scalars = node.scalars;
    stage.width = node.width;
    stage.height = node.height;
  }
  for (int index : order.value()) {
    Stage& stage = stages[static_cast<std::size_t>(index)];
    if (stage.kind == Node::Kind::kSource) continue;
    const Stage& first =
        stages[static_cast<std::size_t>(producer.at(stage.inputs.front().second))];
    switch (stage.kind) {
      case Node::Kind::kKernel:
        stage.width = first.width;
        stage.height = first.height;
        break;
      case Node::Kind::kDecimate:
        stage.width = (first.width + 1) / 2;
        stage.height = (first.height + 1) / 2;
        break;
      case Node::Kind::kUpsample:
        if (stage.width < first.width || stage.height < first.height)
          return Status::Invalid(StrFormat(
              "upsample stage '%s' target %dx%d is smaller than its input "
              "%dx%d",
              stage.name.c_str(), stage.width, stage.height, first.width,
              first.height));
        break;
      case Node::Kind::kSource:
        break;
    }
  }
  return order;
}

void GraphRun::PlanSeparation() {
  if (!options.separate) return;
  // Runs before fusion: a fused convolution body no longer matches the
  // canonical form, while a separated column pass is still a convolution
  // a point-wise consumer can fuse into afterwards.
  const std::size_t count = stages.size();
  for (std::size_t s = 0; s < count; ++s) {
    if (stages[s].kind != Node::Kind::kKernel) continue;
    if (stages[s].inputs.size() != 1) continue;
    std::optional<compiler::SeparatedStages> sep =
        compiler::SeparateConvolution(stages[s].effective);
    if (!sep) continue;
    const std::string intermediate = stages[s].name + ".sep_row";
    if (producer.find(intermediate) != producer.end()) continue;

    // The appended row stage consumes the original input edge and produces
    // the intermediate virtual image; the original slot becomes the column
    // pass so the stage keeps producing its externally visible name.
    Stage row;
    row.kind = Node::Kind::kKernel;
    row.name = intermediate;
    row.source = sep->row;
    row.effective = std::move(sep->row);
    row.inputs = stages[s].inputs;
    row.width = stages[s].width;
    row.height = stages[s].height;
    const std::string accessor = row.inputs.front().first;
    stages.push_back(std::move(row));  // may reallocate: re-index below

    Stage& col = stages[s];
    col.source = sep->col;
    col.effective = std::move(sep->col);
    col.inputs = {{accessor, intermediate}};
    producer[intermediate] = static_cast<int>(stages.size() - 1);
    if (trace != nullptr) trace->IncrementCounter("separate.edges");
  }
}

void GraphRun::PlanFusion() {
  if (!options.fuse) return;
  // Count consumer edges per image; a producer is only fusable when exactly
  // one edge reads it (and it is not an externally visible output).
  auto edge_count = [this](const std::string& image) {
    int count = 0;
    for (const Stage& stage : stages)
      for (const auto& [accessor, input] : stage.inputs)
        if (input == image) ++count;
    return count;
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t c = 0; c < stages.size() && !changed; ++c) {
      Stage& consumer = stages[c];
      if (consumer.kind != Node::Kind::kKernel) continue;
      for (std::size_t e = 0; e < consumer.inputs.size(); ++e) {
        const auto [accessor, image] = consumer.inputs[e];
        const std::size_t p = static_cast<std::size_t>(producer.at(image));
        Stage& prod = stages[p];
        if (prod.kind != Node::Kind::kKernel) continue;
        if (edge_count(image) != 1) continue;
        if (std::find(graph.outputs_.begin(), graph.outputs_.end(), image) !=
            graph.outputs_.end())
          continue;
        if (prod.width != consumer.width || prod.height != consumer.height)
          continue;
        Result<frontend::KernelSource> fused = compiler::FusePointwise(
            prod.effective, consumer.effective, accessor);
        if (!fused.ok()) continue;  // not point-wise fusable; stay eager

        // Merge the producer into the consumer's slot: the consumer stage
        // now compiles the producer's source with the consumer appended to
        // the fusion chain, consumes the producer's inputs plus its own
        // remaining ones, and still produces the consumer's image.
        consumer.chain = std::move(prod.chain);
        consumer.chain.push_back(
            compiler::FusionRequest{consumer.effective, accessor});
        consumer.source = prod.source;
        consumer.effective = std::move(fused).take();
        consumer.inputs.erase(consumer.inputs.begin() +
                              static_cast<std::ptrdiff_t>(e));
        consumer.inputs.insert(consumer.inputs.begin(), prod.inputs.begin(),
                               prod.inputs.end());
        consumer.scalars.insert(consumer.scalars.end(), prod.scalars.begin(),
                                prod.scalars.end());
        // Retire the producer stage in place (erasing would invalidate the
        // `producer` index map); BuildDag skips retired stages.
        prod.kind = Node::Kind::kSource;
        prod.inputs.clear();
        producer[consumer.name] = static_cast<int>(c);
        producer.erase(prod.name);
        prod.name.clear();
        if (trace != nullptr) trace->IncrementCounter("graph.fused_edges");
        changed = true;
        break;
      }
    }
  }
}

Status GraphRun::CompileStages() {
  sim::TraceSpan span(trace, "graph compile", "graph");
  std::vector<Status> statuses(stages.size());
  // Concurrent compilation through the (thread-safe) compilation cache;
  // repeated extents and repeated Run() calls hit instead of recompiling.
  ParallelFor(0, static_cast<int>(stages.size()), [&](int i) {
    Stage& stage = stages[static_cast<std::size_t>(i)];
    if (stage.kind != Node::Kind::kKernel) return;
    compiler::CompileOptions copts =
        MakeCompileOptions(options.run, stage.width, stage.height);
    copts.fusion = stage.chain;
    Result<compiler::CompiledKernel> compiled =
        compiler::Compile(stage.source, copts);
    if (!compiled.ok()) {
      statuses[static_cast<std::size_t>(i)] =
          Status::Invalid("stage '" + stage.name +
                          "': " + compiled.status().message());
      return;
    }
    stage.compiled = std::move(compiled).take();
  });
  for (const Status& status : statuses) HIPACC_RETURN_IF_ERROR(status);
  return Status::Ok();
}

DagSpec GraphRun::BuildDag() const {
  DagSpec dag;
  dag.dependencies.assign(stages.size(), 0);
  dag.consumers.assign(stages.size(), {});
  for (std::size_t i = 0; i < stages.size(); ++i) {
    // Retired fusion producers keep their slot but have no inputs and no
    // name; they run as zero-cost no-ops.
    for (const auto& [accessor, image] : stages[i].inputs) {
      dag.dependencies[i] += 1;
      dag.consumers[static_cast<std::size_t>(producer.at(image))].push_back(
          static_cast<int>(i));
    }
  }
  return dag;
}

Status GraphRun::RunKernelStage(Stage& stage) {
  BindingSet bindings;
  for (const auto& [accessor, image] : stage.inputs) {
    dsl::Image<float>* bound = nullptr;
    {
      std::lock_guard<std::mutex> lock(mutex);
      bound = buffers.at(image).get();
    }
    bindings.Input(accessor, *bound);
  }
  dsl::Image<float>* out = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex);
    out = buffers.at(stage.name).get();
  }
  bindings.Output(*out);
  for (const auto& [name, value] : stage.scalars) bindings.Scalar(name, value);

  const compiler::CompiledKernel& ck = stage.compiled;
  Result<LaunchHolder> holder =
      BuildLaunch(ck.device_ir, ck.config.config, bindings);
  if (!holder.ok()) return holder.status();
  sim::Launch& launch = holder.value().launch;
  launch.programs = ck.bytecode.get();

  const bool host_ok =
      options.executor != GraphOptions::Executor::kSimulator &&
      ck.bytecode != nullptr &&
      HostExecSupports(*ck.bytecode, launch.width, launch.height,
                       ck.device_ir.bh_window.half_x,
                       ck.device_ir.bh_window.half_y);
  if (options.executor == GraphOptions::Executor::kHost && !host_ok)
    return Status::Unimplemented(
        "stage '" + stage.name +
        "' is not supported by the host executor (GraphOptions::Executor::"
        "kHost)");
  if (host_ok) {
    // Inside a multi-worker schedule each stage runs its rows serially —
    // the DAG branches are the parallelism; a lone worker hands the row
    // loop all cores instead.
    HostExecOptions exec_options;
    exec_options.threads = options.workers == 1 ? 0 : 1;
    HIPACC_RETURN_IF_ERROR(RunOnHost(launch, ck.device_ir.bh_window.half_x,
                                     ck.device_ir.bh_window.half_y,
                                     exec_options));
    if (trace != nullptr) trace->IncrementCounter("graph.launches.host");
    return Status::Ok();
  }
  sim::Simulator simulator(options.run.device, options.run.sim_options());
  Result<sim::LaunchStats> stats = simulator.Execute(launch);
  if (!stats.ok()) return stats.status();
  if (trace != nullptr) trace->IncrementCounter("graph.launches.sim");
  return Status::Ok();
}

void GraphRun::ReleaseConsumed(const Stage& stage) {
  for (const auto& [accessor, image] : stage.inputs) {
    std::lock_guard<std::mutex> lock(mutex);
    auto it = refcount.find(image);
    if (it == refcount.end() || --it->second > 0) continue;
    refcount.erase(it);
    auto buffer = buffers.find(image);
    if (buffer != buffers.end()) {
      graph.pool_.Release(std::move(buffer->second));
      buffers.erase(buffer);
    }
  }
}

Status GraphRun::ExecStage(int index) {
  Stage& stage = stages[static_cast<std::size_t>(index)];
  if (stage.name.empty()) return Status::Ok();  // retired fusion producer
  sim::TraceSpan span(trace, "stage " + stage.name, "graph");

  BufferPool::ImagePtr out =
      graph.pool_.Acquire(stage.width, stage.height, trace);
  {
    std::lock_guard<std::mutex> lock(mutex);
    buffers[stage.name] = std::move(out);
  }

  Status status = Status::Ok();
  switch (stage.kind) {
    case Node::Kind::kSource: {
      const HostImage<float>* host = nullptr;
      for (const auto& [name, image] : *inputs)
        if (name == stage.name) host = image;
      std::lock_guard<std::mutex> lock(mutex);
      buffers.at(stage.name)->CopyFrom(*host);
      break;
    }
    case Node::Kind::kDecimate: {
      dsl::Image<float>* in = nullptr;
      dsl::Image<float>* dst = nullptr;
      {
        std::lock_guard<std::mutex> lock(mutex);
        in = buffers.at(stage.inputs.front().second).get();
        dst = buffers.at(stage.name).get();
      }
      for (int y = 0; y < stage.height; ++y)
        for (int x = 0; x < stage.width; ++x)
          dst->at(x, y) = in->at(2 * x, 2 * y);
      break;
    }
    case Node::Kind::kUpsample: {
      dsl::Image<float>* in = nullptr;
      dsl::Image<float>* dst = nullptr;
      {
        std::lock_guard<std::mutex> lock(mutex);
        in = buffers.at(stage.inputs.front().second).get();
        dst = buffers.at(stage.name).get();
      }
      for (int y = 0; y < stage.height; ++y)
        for (int x = 0; x < stage.width; ++x) dst->at(x, y) = 0.0f;
      for (int y = 0; y < in->height(); ++y)
        for (int x = 0; x < in->width(); ++x) {
          const int tx = 2 * x, ty = 2 * y;
          if (tx < stage.width && ty < stage.height)
            dst->at(tx, ty) = in->at(x, y);
        }
      break;
    }
    case Node::Kind::kKernel:
      status = RunKernelStage(stage);
      break;
  }
  if (!status.ok()) return status;
  if (trace != nullptr) trace->IncrementCounter("graph.stages");
  ReleaseConsumed(stage);
  return Status::Ok();
}

Status PipelineGraph::Run(const InputBindings& inputs,
                          const OutputBindings& outputs,
                          const GraphOptions& options) {
  HIPACC_RETURN_IF_ERROR(deferred_error_);
  if (nodes_.empty()) return Status::Invalid("pipeline graph has no stages");

  GraphRun run(*this, options);
  sim::TraceSpan span(run.trace, "graph run", "graph");
  HIPACC_RETURN_IF_ERROR(run.Validate(inputs, outputs));
  {
    Result<std::vector<int>> order = run.OrderAndExtents();
    if (!order.ok()) return order.status();
  }
  run.PlanSeparation();
  run.PlanFusion();
  HIPACC_RETURN_IF_ERROR(run.CompileStages());

  // A consumed image is released to the pool once its last consumer edge
  // ran; externally visible outputs hold one extra reference until copied.
  run.inputs = &inputs;
  for (const GraphRun::Stage& stage : run.stages)
    for (const auto& [accessor, image] : stage.inputs) run.refcount[image] += 1;
  for (const std::string& name : outputs_)
    if (run.producer.find(name) != run.producer.end()) run.refcount[name] += 1;

  const DagSpec dag = run.BuildDag();
  HIPACC_RETURN_IF_ERROR(RunDag(dag, options.workers,
                                [&run](int index) { return run.ExecStage(index); }));

  for (const auto& [name, image] : outputs) {
    auto it = run.buffers.find(name);
    if (it == run.buffers.end())
      return Status::Internal("output '" + name + "' was never produced");
    *image = it->second->getData();
  }
  // Return every remaining buffer (outputs, unconsumed leaves) to the pool
  // for the next Run().
  for (auto& [name, buffer] : run.buffers) pool_.Release(std::move(buffer));
  if (run.trace != nullptr) run.trace->IncrementCounter("graph.runs");
  return Status::Ok();
}

}  // namespace hipacc::runtime
