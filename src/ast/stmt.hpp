// Statement nodes of the kernel IR. Like expressions, statements cover both
// the DSL level (`output() = ...`) and the device level (barriers and
// explicit memory writes produced by the lowering passes).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ast/expr.hpp"

namespace hipacc::ast {

enum class StmtKind {
  kDecl,          // T name = init;
  kAssign,        // name op= value;
  kOutputAssign,  // output() = value;            (DSL level)
  kIf,            // if (cond) then [else]
  kFor,           // for (int v = lo; v <= hi; v += step) body
  kBlock,         // { ... }
  kBarrier,       // __syncthreads() / barrier()  (device level)
  kMemWrite,      // buffer[x, y] = value;        (device level)
};

enum class AssignOp { kAssign, kAddAssign, kSubAssign, kMulAssign, kDivAssign };

const char* to_string(AssignOp op) noexcept;

struct Stmt;
using StmtPtr = std::shared_ptr<const Stmt>;

/// A single IR statement; fields populated per `kind`.
struct Stmt {
  StmtKind kind;

  // kDecl: declared variable. kAssign: assigned variable. kMemWrite: buffer.
  // kOutputAssign: extra-output name ("" = the primary output image).
  std::string name;
  ScalarType decl_type = ScalarType::kFloat;
  AssignOp assign_op = AssignOp::kAssign;

  // kDecl: init (may be null). kAssign / kOutputAssign / kMemWrite: value.
  ExprPtr value;

  // kIf: condition; kFor: loop variable bounds are canonical counted loops
  // `for (int name = lo; name <= hi; name += step)`.
  ExprPtr cond;
  ExprPtr lo, hi;
  int step = 1;

  // kMemWrite coordinates.
  ExprPtr x, y;
  MemSpace space = MemSpace::kGlobal;

  // kIf: body[0] = then, body[1] = else (optional). kFor / kBlock: children.
  std::vector<StmtPtr> body;
};

// ---- Factory helpers ------------------------------------------------------

StmtPtr Decl(ScalarType type, std::string name, ExprPtr init);
StmtPtr Assign(std::string name, AssignOp op, ExprPtr value);
/// `output_name` selects a declared extra output ("" = the primary output).
StmtPtr OutputAssign(ExprPtr value, std::string output_name = "");
StmtPtr If(ExprPtr cond, StmtPtr then_stmt, StmtPtr else_stmt = nullptr);
/// Canonical counted loop: for (int var = lo; var <= hi; var += step) body.
StmtPtr For(std::string var, ExprPtr lo, ExprPtr hi, int step, StmtPtr body);
StmtPtr Block(std::vector<StmtPtr> stmts);
StmtPtr Barrier();
StmtPtr MemWrite(MemSpace space, std::string buffer, ExprPtr x, ExprPtr y,
                 ExprPtr value);

}  // namespace hipacc::ast
