// Debug pretty-printer rendering IR as C-like source. This is NOT the CUDA /
// OpenCL emitter (see src/codegen/emit_*.{hpp,cpp}); it prints device-level
// nodes as pseudo-intrinsics so pass outputs are easy to golden-test.
#pragma once

#include <string>

#include "ast/kernel_ir.hpp"

namespace hipacc::ast {

/// Renders an expression without a trailing newline.
std::string PrintExpr(const ExprPtr& expr);

/// Renders a statement tree with 2-space indentation per nesting level.
std::string PrintStmt(const StmtPtr& stmt, int indent = 0);

/// Renders a full DSL-level kernel declaration (signature + metadata + body).
std::string PrintKernel(const KernelDecl& kernel);

/// Renders a lowered device kernel (buffers, smem plan, region variants).
std::string PrintDeviceKernel(const DeviceKernel& kernel);

}  // namespace hipacc::ast
