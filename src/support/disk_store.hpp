// Content-addressed on-disk blob store — the persistent tier shared by the
// compiler's CompilationCache, the simulator's JitCache, and the profile
// store (tinygrad's @diskcache idiom, grown a schema).
//
// Layout:   <root>/v<schema>/<kind>/<fnv16hex-of-canonical>
// Each file is a self-describing frame:
//
//   "HPCC" | u32 schema | kind | canonical | payload | u64 fnv(payload)
//
// The filename hash is only an index; the canonical key string stored in the
// frame is compared on every Get, so hash collisions read as misses rather
// than wrong artifacts. Writes go through WriteFileAtomic (temp + rename),
// so concurrent processes race safely: both write complete frames, one
// rename wins, and since identical keys carry identical payloads either
// winner is correct. Any frame that fails to parse or checksum is unlinked
// and reported as a miss — corruption self-repairs on the next store.
//
// Versioning: the schema version is baked into both the directory name and
// the frame header. Bumping kSchemaVersion orphans old entries wholesale
// (they age out by LRU eviction) without any migration code.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

namespace hipacc::support {

/// Current on-disk schema. Bump when any serialised artifact layout changes;
/// every existing cache directory then reads as empty.
inline constexpr std::uint32_t kDiskStoreSchemaVersion = 1;

struct DiskStoreOptions {
  /// Cache root directory. Empty disables the store (every Get misses,
  /// every Put is dropped) — the hermetic default for libraries and tests.
  std::string root;
  /// Soft size cap across all kinds; least-recently-used entries are evicted
  /// after a Put pushes the total above it. 0 = unlimited.
  std::uint64_t max_bytes = 512ull << 20;
  /// Test hook: overrides kDiskStoreSchemaVersion when non-zero, so the
  /// version-bump invalidation path is testable without editing the header.
  std::uint32_t schema_version_override = 0;
};

/// Cumulative counters (process-local, not persisted).
struct DiskStoreStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stores = 0;    ///< frames actually written
  std::uint64_t dedup = 0;     ///< Puts skipped because an identical frame exists
  std::uint64_t evictions = 0;
  std::uint64_t corrupt = 0;   ///< frames unlinked after failing validation
};

class DiskStore {
 public:
  explicit DiskStore(DiskStoreOptions options = {});

  /// True when a root directory is configured; a disabled store is a valid
  /// object whose operations are all no-ops.
  bool enabled() const;
  std::string root() const;

  /// Looks up `canonical` under `kind` ("frontend", "target", "jit",
  /// "profile"). Returns the payload, or nullopt on miss/corruption.
  /// Hits refresh the entry's mtime (LRU touch).
  std::optional<std::string> Get(const std::string& kind,
                                 const std::string& canonical);

  /// What one Put did — callers forward these into trace counters.
  struct PutResult {
    bool stored = false;          ///< a frame was written
    std::uint64_t evicted = 0;    ///< LRU entries removed afterwards
  };

  /// Stores `payload` for `canonical`. Skips the write when an identical
  /// frame is already present (the common loser-of-a-race case). Triggers
  /// LRU eviction when the store exceeds max_bytes. Failures are swallowed:
  /// the disk tier is an accelerator, never a correctness dependency.
  PutResult Put(const std::string& kind, const std::string& canonical,
                const std::string& payload);

  DiskStoreStats stats() const;

  /// Swaps in a new configuration (used by ConfigureGlobalDiskStore after
  /// flag parsing) and resets the counters.
  void Configure(DiskStoreOptions options);

  /// Effective schema version (override or kDiskStoreSchemaVersion).
  std::uint32_t schema_version() const;

 private:
  std::string PathFor(const std::string& kind,
                      const std::string& canonical) const;
  std::string EncodeFrame(const std::string& kind,
                          const std::string& canonical,
                          const std::string& payload) const;
  std::optional<std::string> DecodeFrame(const std::string& frame,
                                         const std::string& kind,
                                         const std::string& canonical) const;
  std::uint64_t EvictIfNeeded();

  DiskStoreOptions options_;
  std::uint32_t schema_ = kDiskStoreSchemaVersion;
  std::string version_root_;  ///< <root>/v<schema>

  mutable std::mutex mutex_;
  DiskStoreStats stats_;
};

/// Resolves the cache directory from a CLI-style spec:
///   "off"      -> "" (disabled)
///   non-empty  -> the path itself
///   ""         -> $HIPACC_CACHE_DIR if set (itself honouring "off"),
///                 else ~/.cache/hipacc, else disabled.
std::string ResolveCacheDir(const std::string& spec);

/// The process-wide persistent tier consulted by CompilationCache and
/// JitCache by default. Starts disabled; tools and benches enable it via
/// ConfigureGlobalDiskStore after flag parsing.
DiskStore& GlobalDiskStore();

/// Reconfigures the global store (thread-safe). Call once, right after flag
/// parsing and before the first compilation.
void ConfigureGlobalDiskStore(DiskStoreOptions options);

}  // namespace hipacc::support
