#include "ast/metadata.hpp"

#include "support/status.hpp"

namespace hipacc::ast {

const char* to_string(BoundaryMode mode) noexcept {
  switch (mode) {
    case BoundaryMode::kUndefined: return "undefined";
    case BoundaryMode::kRepeat: return "repeat";
    case BoundaryMode::kClamp: return "clamp";
    case BoundaryMode::kMirror: return "mirror";
    case BoundaryMode::kConstant: return "constant";
  }
  return "?";
}

WindowExtent WindowExtent::FromSize(int size_x, int size_y) {
  HIPACC_CHECK_MSG(size_x > 0 && size_y > 0 && size_x % 2 == 1 && size_y % 2 == 1,
                   "local operator window sizes must be odd and positive");
  return {(size_x - 1) / 2, (size_y - 1) / 2};
}

const char* to_string(MemSpace space) noexcept {
  switch (space) {
    case MemSpace::kGlobal: return "global";
    case MemSpace::kTexture: return "texture";
    case MemSpace::kShared: return "shared";
    case MemSpace::kConstant: return "constant";
  }
  return "?";
}

const char* to_string(Region region) noexcept {
  switch (region) {
    case Region::kTopLeft: return "TL";
    case Region::kTop: return "T";
    case Region::kTopRight: return "TR";
    case Region::kLeft: return "L";
    case Region::kInterior: return "NO";
    case Region::kRight: return "R";
    case Region::kBottomLeft: return "BL";
    case Region::kBottom: return "B";
    case Region::kBottomRight: return "BR";
  }
  return "?";
}

RegionChecks ChecksFor(Region region) noexcept {
  switch (region) {
    case Region::kTopLeft: return {true, false, true, false};
    case Region::kTop: return {false, false, true, false};
    case Region::kTopRight: return {false, true, true, false};
    case Region::kLeft: return {true, false, false, false};
    case Region::kInterior: return {false, false, false, false};
    case Region::kRight: return {false, true, false, false};
    case Region::kBottomLeft: return {true, false, false, true};
    case Region::kBottom: return {false, false, false, true};
    case Region::kBottomRight: return {false, true, false, true};
  }
  return {};
}

}  // namespace hipacc::ast
