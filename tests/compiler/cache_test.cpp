// Compilation cache: key construction, hit/miss semantics at both levels,
// bit-identical cached artifacts, collision safety (same kernel name with
// different source must miss), trace counters, and stats accounting.
#include <gtest/gtest.h>

#include "compiler/cache.hpp"
#include "compiler/driver.hpp"
#include "ops/kernel_sources.hpp"
#include "sim/trace.hpp"

namespace hipacc {
namespace {

frontend::KernelSource Source() {
  return ops::BilateralMaskSource(1, ast::BoundaryMode::kClamp);
}

compiler::CompileOptions Options(compiler::CompilationCache* cache) {
  compiler::CompileOptions options;
  options.image_width = 512;
  options.image_height = 512;
  options.cache = cache;
  return options;
}

TEST(CacheKeyTest, FrontendKeyDependsOnSourceAndOptions) {
  const frontend::KernelSource source = Source();
  const codegen::CodegenOptions defaults;
  const compiler::CacheKey base = compiler::MakeFrontendKey(source, defaults);
  EXPECT_EQ(base.canonical,
            compiler::MakeFrontendKey(source, defaults).canonical);

  codegen::CodegenOptions texture = defaults;
  texture.texture = codegen::TexturePolicy::kLinear;
  EXPECT_NE(base.canonical,
            compiler::MakeFrontendKey(source, texture).canonical);

  frontend::KernelSource edited = source;
  edited.body += " ";
  EXPECT_NE(base.canonical,
            compiler::MakeFrontendKey(edited, defaults).canonical);
}

TEST(CacheKeyTest, TargetKeyDependsOnDeviceExtentAndForcedConfig) {
  const compiler::CacheKey fe =
      compiler::MakeFrontendKey(Source(), codegen::CodegenOptions{});
  const compiler::CacheKey base =
      compiler::MakeTargetKey(fe, hw::TeslaC2050(), 512, 512, std::nullopt);
  EXPECT_EQ(base.canonical,
            compiler::MakeTargetKey(fe, hw::TeslaC2050(), 512, 512,
                                    std::nullopt)
                .canonical);
  EXPECT_NE(base.canonical,
            compiler::MakeTargetKey(fe, hw::RadeonHd5870(), 512, 512,
                                    std::nullopt)
                .canonical);
  EXPECT_NE(base.canonical,
            compiler::MakeTargetKey(fe, hw::TeslaC2050(), 1024, 512,
                                    std::nullopt)
                .canonical);
  EXPECT_NE(base.canonical,
            compiler::MakeTargetKey(fe, hw::TeslaC2050(), 512, 512,
                                    hw::KernelConfig{128, 1})
                .canonical);
  // 16 hex digits of the 64-bit hash.
  EXPECT_EQ(base.hex().size(), 16u);
}

TEST(CacheTest, RecompileIsTargetHitAndBitIdentical) {
  compiler::CompilationCache cache;
  const frontend::KernelSource source = Source();
  const compiler::CompileOptions options = Options(&cache);

  auto first = compiler::Compile(source, options);
  ASSERT_TRUE(first.ok());
  const compiler::CompilationCache::Stats cold = cache.stats();
  EXPECT_EQ(cold.target_hits, 0);
  EXPECT_EQ(cold.target_misses, 1);
  EXPECT_EQ(cold.frontend_misses, 1);
  EXPECT_GE(cache.size(), 2u);  // frontend + target entries

  auto second = compiler::Compile(source, options);
  ASSERT_TRUE(second.ok());
  const compiler::CompilationCache::Stats warm = cache.stats();
  EXPECT_EQ(warm.target_hits, 1);
  EXPECT_EQ(warm.target_misses, 1);

  // The cached artifact is bit-identical to the original.
  EXPECT_EQ(first.value().source, second.value().source);
  EXPECT_EQ(first.value().resources.regs_per_thread,
            second.value().resources.regs_per_thread);
  EXPECT_EQ(first.value().config.config, second.value().config.config);
  EXPECT_EQ(first.value().source_hash, second.value().source_hash);
}

TEST(CacheTest, ChangedExtentHitsFrontendOnly) {
  compiler::CompilationCache cache;
  const frontend::KernelSource source = Source();

  ASSERT_TRUE(compiler::Compile(source, Options(&cache)).ok());
  compiler::CompileOptions other = Options(&cache);
  other.image_width = 1024;
  ASSERT_TRUE(compiler::Compile(source, other).ok());

  const compiler::CompilationCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.target_hits, 0);
  EXPECT_EQ(stats.target_misses, 2);
  EXPECT_EQ(stats.frontend_hits, 1);  // lowered IR reused for new extent
  EXPECT_EQ(stats.frontend_misses, 1);
}

TEST(CacheTest, SameNameDifferentSourceMisses) {
  compiler::CompilationCache cache;
  const frontend::KernelSource source = Source();

  auto first = compiler::Compile(source, Options(&cache));
  ASSERT_TRUE(first.ok());

  // Same kernel name, different body: must not alias the cached entry.
  frontend::KernelSource renamed = ops::ThresholdSource();
  ASSERT_NE(renamed.body, source.body);
  renamed.name = source.name;
  auto other = compiler::Compile(renamed, Options(&cache));
  ASSERT_TRUE(other.ok());

  const compiler::CompilationCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.target_hits, 0);
  EXPECT_EQ(stats.frontend_hits, 0);
  EXPECT_NE(first.value().source, other.value().source);
  EXPECT_NE(first.value().source_hash, other.value().source_hash);
}

TEST(CacheTest, ColdLookupsReportMissesToTrace) {
  compiler::CompilationCache cache;
  sim::TraceSink sink;
  compiler::CompileOptions options = Options(&cache);
  options.trace = &sink;

  ASSERT_TRUE(compiler::Compile(Source(), options).ok());
  EXPECT_EQ(sink.counter("cache_miss.target"), 1);
  EXPECT_EQ(sink.counter("cache_miss.frontend"), 1);
  EXPECT_EQ(sink.counter("cache_hit.target"), 0);

  ASSERT_TRUE(compiler::Compile(Source(), options).ok());
  EXPECT_EQ(sink.counter("cache_hit.target"), 1);

  // The counters ride along in the serialised trace.
  const support::Json doc = sink.ToJson();
  const support::Json* counters = doc.Find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->Find("cache_hit.target"), nullptr);
  EXPECT_EQ(counters->Find("cache_hit.target")->int_value(), 1);
}

TEST(CacheTest, ClearEmptiesEverything) {
  compiler::CompilationCache cache;
  ASSERT_TRUE(compiler::Compile(Source(), Options(&cache)).ok());
  EXPECT_GT(cache.size(), 0u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().misses(), 0);

  ASSERT_TRUE(compiler::Compile(Source(), Options(&cache)).ok());
  EXPECT_EQ(cache.stats().target_misses, 1);
}

TEST(CacheTest, RetargetPopulatesAndHitsCache) {
  compiler::CompilationCache cache;
  const frontend::KernelSource source = Source();
  auto compiled = compiler::Compile(source, Options(&cache));
  ASSERT_TRUE(compiled.ok());

  compiler::CompileOptions amd = Options(&cache);
  amd.device = hw::RadeonHd5870();
  auto first = compiler::Retarget(compiled.value(), amd);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(cache.stats().target_misses, 2);

  // Retargeting to the same device again is a pure target hit.
  auto again = compiler::Retarget(compiled.value(), amd);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(cache.stats().target_hits, 1);
  EXPECT_EQ(first.value().source, again.value().source);

  // A plain Compile for that target hits the entry Retarget stored.
  auto direct = compiler::Compile(source, amd);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(cache.stats().target_hits, 2);
  EXPECT_EQ(direct.value().source, first.value().source);
}

}  // namespace
}  // namespace hipacc
