#include "sim/jit/emit.hpp"

#include <cstdint>
#include <cstring>
#include <set>

#include "support/hash.hpp"
#include "support/string_utils.hpp"

namespace hipacc::sim::jit {

// Defined in the build-generated jit_abi_text.cpp (CMake embeds abi.hpp).
const char* AbiHeaderText();

namespace {

using ast::AssignOp;
using ast::BinaryOp;
using ast::BoundaryMode;
using ast::ScalarType;
using ast::ThreadIndexKind;
using ast::UnaryOp;
using hipacc::StrFormat;

int TypeCode(ScalarType t) { return static_cast<int>(t); }

/// Doubles are emitted through their bit pattern (jit_d helper in the
/// prelude): hexfloat formatting round-trips, but bit-pattern emission is
/// immune to printf/locale corner cases and handles inf/nan uniformly. GCC
/// folds the memcpy to a literal constant.
std::string DLit(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return StrFormat("jit_d(0x%016llxull)", static_cast<unsigned long long>(bits));
}

std::string FLit(float v) {
  std::uint32_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return StrFormat("jit_f(0x%08xu)", bits);
}

/// The self-contained prelude shared by every generated TU: bit-literal
/// constructors, the runtime type conversion, mask scan, boundary
/// resolution (textually equivalent to dsl::ResolveBoundaryIndex +
/// vm.cpp::ResolveCoord), and the RAII metric flusher. ScalarType /
/// BoundaryMode enum values are baked as integers; the fingerprint pins
// the encoding so an enum reorder invalidates cached objects.
const char kPrelude[] = R"jit(
static inline double jit_d(unsigned long long b) {
  double v;
  std::memcpy(&v, &b, 8);
  return v;
}
static inline float jit_f(unsigned int b) {
  float v;
  std::memcpy(&v, &b, 4);
  return v;
}
// ConvertLaneValue with ScalarType baked: 1=bool 2=int 3=uint 4=float.
static inline double jit_conv(double v, int to) {
  switch (to) {
    case 4: return (double)(float)v;
    case 2:
    case 3: return (double)(long long)v;
    case 1: return v != 0.0 ? 1.0 : 0.0;
    default: return 0.0;
  }
}
static inline double jit_as_f(double v) { return (double)(float)v; }
static inline int jit_any(const unsigned char* m) {
  for (int i = 0; i < 64; ++i)
    if (m[i]) return 1;
  return 0;
}
// dsl::ResolveBoundaryIndex with BoundaryMode baked:
// 0=undefined 1=repeat 2=clamp 3=mirror 4=constant.
static inline int jit_reflect(int c, int n, int mode) {
  if (n <= 0) return -1;
  if (c >= 0 && c < n) return c;
  switch (mode) {
    case 4: return -1;
    case 0:
    case 2: return c < 0 ? 0 : n - 1;
    case 1: {
      int r = c % n;
      if (r < 0) r += n;
      return r;
    }
    case 3: {
      int r = c % (2 * n);
      if (r < 0) r += 2 * n;
      return r < n ? r : 2 * n - 1 - r;
    }
  }
  return -1;
}
// vm.cpp ResolveCoord.
static inline int jit_resolve(int c, int n, int mode, int check_lo,
                              int check_hi, int hw, int* violation) {
  if (c >= 0 && c < n) return c;
  if (hw) return jit_reflect(c, n, mode == 0 ? 2 : mode);
  const int guarded = (c < 0 && check_lo) || (c >= n && check_hi);
  if (!guarded) {
    *violation = 1;
    return c < 0 ? 0 : n - 1;
  }
  return jit_reflect(c, n, mode);
}
// Accumulates metric deltas in locals; the destructor flushes them on
// every exit path (including error returns), like the VM's CostCounters.
struct JitFlush {
  hipacc::sim::jit::JitWarpCtx* c;
  unsigned long long alu = 0, sfu = 0, oob = 0, n = 0;
  explicit JitFlush(hipacc::sim::jit::JitWarpCtx* ctx) : c(ctx) {}
  ~JitFlush() {
    *c->alu += alu;
    *c->sfu += sfu;
    *c->oob += oob;
    *c->insns += n;
  }
};
#define JR(k) (regs + (k) * 64)
#define JM(k) (mks + (k) * 64)
)jit";

/// Emits the body of one region program as one extern "C" function.
class FnEmitter {
 public:
  FnEmitter(const ProgramSet& ps, const Program& prog, std::string& out)
      : ps_(ps), prog_(prog), out_(out) {}

  void Emit(const std::string& symbol) {
    CollectLabels();
    AnalyzeFusion();
    out_ += StrFormat(
        "\nextern \"C\" int %s(hipacc::sim::jit::JitWarpCtx* ctx) {\n",
        symbol.c_str());
    if (fused_)
      EmitFusedBody();
    else
      EmitVectorBody();
    out_ += "}\n";
  }

  bool fused() const { return fused_; }

 private:
  void CollectLabels() {
    for (const Insn& I : prog_.code)
      if ((I.op == Op::kJumpIfNone || I.op == Op::kLoopHead ||
           I.op == Op::kLoopInc) &&
          I.jump >= 0)
        labels_.insert(I.jump);
  }

  /// Lane fusion requires the executed instruction sequence to be the same
  /// for every warp, so the emitter can replay it statically. Divergent
  /// jumps (kJumpIfNone) are rejected outright. Counted loops are admitted
  /// when their trip counts are decidable at emit time — init value, bound,
  /// and increment all rooted in kConst — and their loop mask is
  /// warp-uniform (slot 0 or a chain of uniformly-true loop heads): the
  /// walk below then unrolls them into `schedule_`, the exact sequence of
  /// executed instructions, which EmitFusedBody replays. Loaded and stored
  /// buffers must also be disjoint — fused execution runs lanes in outer
  /// order, which would reorder a read-after-write through global memory
  /// within one warp (stores themselves are deferred to program order, so
  /// store/store is safe).
  void AnalyzeFusion() {
    fused_ = false;
    std::set<int> loaded, stored;
    for (const Insn& I : prog_.code) {
      if (I.op == Op::kJumpIfNone) return;
      if (I.op == Op::kLoadImage) loaded.insert(I.buffer);
      if (I.op == Op::kStore) stored.insert(I.buffer);
    }
    for (int b : loaded)
      if (stored.count(b)) return;

    // Static walk. `known` tracks registers whose double value is fully
    // determined at emit time (constants and copies/increments thereof);
    // `uniform` tracks mask slots currently equal to the warp active mask
    // element-wise. Both follow exactly the updates the VM would perform.
    const int num_regs = prog_.num_regs > 0 ? prog_.num_regs : 1;
    struct Known {
      bool ok = false;
      double v = 0.0;
    };
    std::vector<Known> known(static_cast<std::size_t>(num_regs));
    std::set<int> uniform{0};
    schedule_.clear();
    const std::int32_t n = static_cast<std::int32_t>(prog_.code.size());
    std::int32_t pc = 0;
    while (pc != n) {
      if (pc < 0 || pc > n ||
          static_cast<int>(schedule_.size()) >= kMaxFusedSteps) {
        schedule_.clear();
        return;
      }
      const Insn& I = prog_.code[static_cast<std::size_t>(pc)];
      switch (I.op) {
        case Op::kConst:
          known[I.dst] = {true, I.imm};
          schedule_.push_back({pc, false});
          ++pc;
          break;
        case Op::kCopy:
        case Op::kLoopInit:
          known[I.dst] = known[I.a];
          schedule_.push_back({pc, false});
          ++pc;
          break;
        case Op::kLoopHead: {
          // Warps with no active lane never reach the generated function
          // (the runner skips them, as does the VM), so a uniform-true
          // condition chain rooted at slot 0 guarantees `any` is set and
          // the VM takes the same branch the walk takes here.
          if (!uniform.count(I.mask) || !known[I.a].ok || !known[I.b].ok) {
            schedule_.clear();
            return;
          }
          const bool live = known[I.a].v <= known[I.b].v;
          schedule_.push_back({pc, !live});
          if (live) {
            uniform.insert(static_cast<int>(I.dst));
            ++pc;
          } else {
            uniform.erase(static_cast<int>(I.dst));
            pc = I.jump;
          }
          break;
        }
        case Op::kLoopInc:
          if (known[I.dst].ok) known[I.dst].v += I.imm;
          schedule_.push_back({pc, false});
          pc = I.jump;
          break;
        case Op::kMaskIf:
          uniform.erase(static_cast<int>(I.dst));
          uniform.erase(static_cast<int>(I.b));
          schedule_.push_back({pc, false});
          ++pc;
          break;
        case Op::kStore:
        case Op::kBarrier:
        case Op::kAccount:
          schedule_.push_back({pc, false});
          ++pc;
          break;
        default:
          // Every remaining op writes a data register whose value is not
          // tracked statically.
          known[I.dst].ok = false;
          schedule_.push_back({pc, false});
          ++pc;
          break;
      }
    }
    fused_ = true;
  }

  void EmitVectorBody() {
    // The register/mask/type files are function-local: unlike the VM's
    // persistent scratch they never escape this frame (only addrs arrays
    // and stored pixels do), so the optimizer can keep whole def-use
    // chains in machine registers and vectorize across instructions. This
    // is sound because compiled programs write every register/mask slot
    // before reading it (the same invariant the VM's reused thread-local
    // scratch depends on); only the externally seeded state — the warp
    // active mask (slot 0) and the scalar parameter registers — is copied
    // in from the host context.
    const int num_regs = prog_.num_regs > 0 ? prog_.num_regs : 1;
    const int num_masks = prog_.num_masks > 0 ? prog_.num_masks : 1;
    out_ += StrFormat(
        "  const int W = ctx->warp_size;\n"
        "  double regs[%d * 64];\n"
        "  unsigned char rt[%d];\n"
        "  unsigned char mks[%d * 64];\n"
        "  std::memset(rt, 4, sizeof(rt));\n"
        "  std::memset(mks, 0, sizeof(mks));\n"
        "  std::memcpy(mks, ctx->masks, 64);\n",
        num_regs, num_regs, num_masks);
    for (const ParamSeed& p : prog_.params)
      out_ += StrFormat(
          "  std::memcpy(regs + %d * 64, ctx->regs + %d * 64,"
          " 64 * sizeof(double));"
          " rt[%d] = %d;\n",
          static_cast<int>(p.reg), static_cast<int>(p.reg),
          static_cast<int>(p.reg), static_cast<int>(p.type));
    out_ +=
        "  JitFlush fl(ctx);\n"
        "  (void)W; (void)regs; (void)rt; (void)mks;\n";
    const std::int32_t n = static_cast<std::int32_t>(prog_.code.size());
    for (std::int32_t pc = 0; pc < n; ++pc) {
      if (labels_.count(pc)) out_ += StrFormat("L%d:;\n", pc);
      EmitInsn(pc, prog_.code[static_cast<std::size_t>(pc)]);
    }
    if (labels_.count(n)) out_ += StrFormat("L%d:;\n", n);
    out_ += "  return 0;\n";
  }

  /// One coordinate operand materialised into a stack array, dispatch baked
  /// (vm.cpp CoordLanes). `mk` must be in scope for register coordinates.
  void EmitCoord(const Coord& c, const char* arr) {
    switch (c.kind) {
      case CoordKind::kReg:
        out_ += StrFormat(
            "  { const double* rv = JR(%u);\n"
            "    for (int l = 0; l < W; ++l) %s[l] = mk[l] ? (int)rv[l] : 0; "
            "}\n",
            c.reg, arr);
        break;
      case CoordKind::kGidX:
      case CoordKind::kGidY:
      case CoordKind::kTidX:
      case CoordKind::kTidY: {
        const char* src = c.kind == CoordKind::kGidX   ? "gid_xi"
                          : c.kind == CoordKind::kGidY ? "gid_yi"
                          : c.kind == CoordKind::kTidX ? "tid_xi"
                                                       : "tid_yi";
        out_ += StrFormat(
            "  for (int l = 0; l < W; ++l) %s[l] = ctx->%s[l] + (%d);\n", arr,
            src, c.off);
        break;
      }
      case CoordKind::kImm:
        out_ += StrFormat("  for (int l = 0; l < W; ++l) %s[l] = %d;\n", arr,
                          c.off);
        break;
    }
  }

  void EmitInsn(std::int32_t pc, const Insn& I) {
    out_ += StrFormat("  // [%d]\n", pc);
    out_ += "  ++fl.n;";
    if (I.alu_cost) out_ += StrFormat(" fl.alu += %uu;", I.alu_cost);
    if (I.sfu_cost) out_ += StrFormat(" fl.sfu += %uu;", I.sfu_cost);
    out_ += "\n";
    const int T = TypeCode(I.type);
    switch (I.op) {
      case Op::kConst:
        out_ += StrFormat(
            "  { double* d = JR(%u); rt[%u] = %d;\n"
            "    for (int l = 0; l < W; ++l) d[l] = %s; }\n",
            I.dst, I.dst, T, DLit(I.imm).c_str());
        break;
      case Op::kCopy:
        if (I.dst == I.a) {
          out_ += StrFormat("  rt[%u] = rt[%u];\n", I.dst, I.a);
        } else {
          out_ += StrFormat(
              "  { const double* s = JR(%u); double* d = JR(%u); rt[%u] = "
              "rt[%u];\n"
              "    for (int l = 0; l < W; ++l) d[l] = s[l]; }\n",
              I.a, I.dst, I.dst, I.a);
        }
        break;
      case Op::kConvert:
        if (I.dst == I.a) {
          out_ += StrFormat(
              "  { double* d = JR(%u);\n"
              "    if (rt[%u] != %d)\n"
              "      for (int l = 0; l < W; ++l) d[l] = jit_conv(d[l], %d);\n"
              "    rt[%u] = %d; }\n",
              I.dst, I.a, T, T, I.dst, T);
        } else {
          out_ += StrFormat(
              "  { const double* s = JR(%u); double* d = JR(%u);\n"
              "    if (rt[%u] == %d) {\n"
              "      for (int l = 0; l < W; ++l) d[l] = s[l];\n"
              "    } else {\n"
              "      for (int l = 0; l < W; ++l) d[l] = jit_conv(s[l], %d);\n"
              "    }\n"
              "    rt[%u] = %d; }\n",
              I.a, I.dst, I.a, T, T, I.dst, T);
        }
        break;
      case Op::kUnary: {
        const char* body =
            static_cast<UnaryOp>(I.sub) == UnaryOp::kNot
                ? "d[l] = s[l] == 0.0 ? 1.0 : 0.0;"
                : (I.type == ScalarType::kFloat
                       ? "d[l] = (double)(-(float)s[l]);"
                       : "d[l] = -s[l];");
        out_ += StrFormat(
            "  { const double* s = JR(%u); double* d = JR(%u);\n"
            "    for (int l = 0; l < W; ++l) %s\n"
            "    rt[%u] = %d; }\n",
            I.a, I.dst, body, I.dst, T);
        break;
      }
      case Op::kBinary:
        EmitBinary(I);
        break;
      case Op::kSelect:
        out_ += StrFormat(
            "  { const double* c = JR(%u); const double* t = JR(%u);\n"
            "    const double* f = JR(%u); double* d = JR(%u);\n"
            "    for (int l = 0; l < W; ++l) {\n"
            "      const double cv = c[l]; const double tv = t[l];\n"
            "      const double fv = f[l];\n"
            "      d[l] = cv != 0.0 ? tv : fv;\n"
            "    }\n"
            "    rt[%u] = %d; }\n",
            I.a, I.b, I.c, I.dst, I.dst, T);
        break;
      case Op::kCall:
        EmitCall(I);
        break;
      case Op::kThreadIdx:
        EmitThreadIdx(I);
        break;
      case Op::kAssign:
        EmitAssign(I);
        break;
      case Op::kLoadImage:
        EmitLoadImage(I);
        break;
      case Op::kLoadShared:
        out_ += StrFormat(
            "  { double* d = JR(%u); const unsigned char* mk = JM(%u);\n"
            "  int cxs[64]; int cys[64];\n",
            I.dst, I.mask);
        EmitCoord(I.cx, "cxs");
        EmitCoord(I.cy, "cys");
        out_ += StrFormat(
            "  const float* tile = ctx->tile;\n"
            "  const int tw = ctx->tile_w; const int th = ctx->tile_h;\n"
            "  unsigned long long addrs[64]; int na = 0;\n"
            "  for (int l = 0; l < W; ++l) {\n"
            "    if (!mk[l]) { d[l] = 0.0; continue; }\n"
            "    const int sx = cxs[l]; const int sy = cys[l];\n"
            "    if (sx < 0 || sx >= tw || sy < 0 || sy >= th) {\n"
            "      ++fl.oob; d[l] = 0.0; continue;\n"
            "    }\n"
            "    const unsigned long long addr =\n"
            "        (unsigned long long)sy * tw + sx;\n"
            "    d[l] = (double)tile[addr]; addrs[na++] = addr;\n"
            "  }\n"
            "  rt[%u] = 4;\n"
            "  if (na) ctx->mem_access(ctx->host, 2, addrs, na); }\n",
            I.dst);
        break;
      case Op::kLoadConst: {
        const int width =
            ps_.const_masks[static_cast<std::size_t>(I.buffer)].width;
        out_ += StrFormat(
            "  { const hipacc::sim::jit::JitMaskTable* mt = "
            "&ctx->mask_tables[%d];\n"
            "  if (!mt->bound) return (3 << 16) | %d;\n"
            "  double* d = JR(%u); const unsigned char* mk = JM(%u);\n"
            "  int cxs[64]; int cys[64];\n",
            I.buffer, I.buffer, I.dst, I.mask);
        EmitCoord(I.cx, "cxs");
        EmitCoord(I.cy, "cys");
        out_ += StrFormat(
            "  const float* mdata = mt->data;\n"
            "  const unsigned long long msize = mt->size;\n"
            "  unsigned long long addrs[64]; int na = 0;\n"
            "  for (int l = 0; l < W; ++l) {\n"
            "    if (!mk[l]) { d[l] = 0.0; continue; }\n"
            "    const unsigned long long addr =\n"
            "        (unsigned long long)cys[l] * %d + cxs[l];\n"
            "    if (addr >= msize) { ++fl.oob; d[l] = 0.0; continue; }\n"
            "    d[l] = (double)mdata[addr]; addrs[na++] = addr;\n"
            "  }\n"
            "  rt[%u] = 4;\n"
            "  if (na) ctx->mem_access(ctx->host, 3, addrs, na); }\n",
            width, I.dst);
        break;
      }
      case Op::kStore:
        out_ += StrFormat(
            "  { const hipacc::sim::jit::JitBuffer* buf = &ctx->buffers[%d];\n"
            "  if (!buf->bound || !buf->writable) return (2 << 16) | %d;\n"
            "  const double* v = JR(%u); const unsigned char* mk = JM(%u);\n"
            "  int cxs[64]; int cys[64];\n",
            I.buffer, I.buffer, I.a, I.mask);
        EmitCoord(I.cx, "cxs");
        EmitCoord(I.cy, "cys");
        out_ +=
            "  const int bw = buf->width; const int bh = buf->height;\n"
            "  const int stride = buf->stride; float* data = buf->data;\n"
            "  unsigned long long addrs[64]; int na = 0;\n"
            "  for (int l = 0; l < W; ++l) {\n"
            "    if (!mk[l]) continue;\n"
            "    const int px = cxs[l]; const int py = cys[l];\n"
            "    if (px < 0 || px >= bw || py < 0 || py >= bh) {\n"
            "      ++fl.oob; continue;\n"
            "    }\n"
            "    const unsigned long long addr =\n"
            "        (unsigned long long)py * stride + px;\n"
            "    data[addr] = (float)v[l]; addrs[na++] = addr;\n"
            "  }\n"
            "  if (na) ctx->mem_access(ctx->host, 1, addrs, na); }\n";
        break;
      case Op::kBarrier:
      case Op::kAccount:
        out_ += "  ;\n";
        break;
      case Op::kMaskIf:
        out_ += StrFormat(
            "  { const double* c = JR(%u);\n"
            "    unsigned char in[64];\n"
            "    std::memcpy(in, JM(%u), 64);\n"
            "    unsigned char* tm = JM(%u); unsigned char* em = JM(%u);\n"
            "    std::memcpy(tm, in, 64); std::memcpy(em, in, 64);\n"
            "    for (int l = 0; l < W; ++l) {\n"
            "      const int taken = in[l] && c[l] != 0.0;\n"
            "      tm[l] = (unsigned char)taken;\n"
            "      em[l] = (unsigned char)(in[l] && !taken);\n"
            "    } }\n",
            I.a, I.mask, I.dst, I.b);
        break;
      case Op::kJumpIfNone:
        out_ += StrFormat("  if (!jit_any(JM(%u))) goto L%d;\n", I.mask,
                          I.jump);
        break;
      case Op::kLoopInit:
        if (I.dst == I.a) {
          out_ += StrFormat("  rt[%u] = 2;\n", I.dst);
        } else {
          out_ += StrFormat(
              "  std::memcpy(JR(%u), JR(%u), 64 * sizeof(double)); rt[%u] = "
              "2;\n",
              I.dst, I.a, I.dst);
        }
        break;
      case Op::kLoopHead:
        out_ += StrFormat(
            "  { const double* var = JR(%u); const double* hi = JR(%u);\n"
            "    const unsigned char* in = JM(%u); unsigned char* im = "
            "JM(%u);\n",
            I.a, I.b, I.mask, I.dst);
        if (I.dst != I.mask) out_ += "    std::memcpy(im, in, 64);\n";
        out_ += StrFormat(
            "    int any = 0;\n"
            "    for (int l = 0; l < W; ++l) {\n"
            "      const int live = in[l] && var[l] <= hi[l];\n"
            "      im[l] = (unsigned char)live;\n"
            "      any = any || live;\n"
            "    }\n"
            "    if (!any) goto L%d; }\n",
            I.jump);
        break;
      case Op::kLoopInc:
        out_ += StrFormat(
            "  { double* d = JR(%u); const unsigned char* mk = JM(%u);\n"
            "    for (int l = 0; l < W; ++l)\n"
            "      if (mk[l]) d[l] += %s;\n"
            "    goto L%d; }\n",
            I.dst, I.mask, DLit(I.imm).c_str(), I.jump);
        break;
    }
  }

  void EmitBinary(const Insn& I) {
    const BinaryOp op = static_cast<BinaryOp>(I.sub);
    const int T = TypeCode(I.type);
    out_ += StrFormat(
        "  { const double* A = JR(%u); const double* B = JR(%u);\n"
        "    double* D = JR(%u);\n",
        I.a, I.b, I.dst);
    // Promote(a, b) == kFloat iff either operand type is kFloat. Only the
    // four arithmetic ops (and the div cost) depend on it.
    const bool needs_fm = op == BinaryOp::kAdd || op == BinaryOp::kSub ||
                          op == BinaryOp::kMul || op == BinaryOp::kDiv;
    if (needs_fm)
      out_ += StrFormat("    const int fm = rt[%u] == 4 || rt[%u] == 4;\n",
                        I.a, I.b);
    if (op == BinaryOp::kDiv) out_ += "    fl.alu += fm ? 5u : 16u;\n";
    auto lanes = [&](const char* body) {
      out_ += StrFormat(
          "    for (int l = 0; l < W; ++l) {\n"
          "      const double x = A[l]; const double y = B[l]; (void)y;\n"
          "      %s\n"
          "    }\n",
          body);
    };
    switch (op) {
      case BinaryOp::kAdd:
      case BinaryOp::kSub:
      case BinaryOp::kMul: {
        const char sym = op == BinaryOp::kAdd ? '+'
                         : op == BinaryOp::kSub ? '-'
                                                : '*';
        out_ += "    if (fm) {\n";
        lanes(StrFormat("D[l] = (double)((float)x %c (float)y);", sym).c_str());
        out_ += "    } else {\n";
        lanes(StrFormat("D[l] = x %c y;", sym).c_str());
        out_ += "    }\n";
        break;
      }
      case BinaryOp::kDiv:
        out_ += "    if (fm) {\n";
        lanes("D[l] = (double)((float)x / (float)y);");
        out_ += "    } else {\n";
        lanes(
            "const long long yi = (long long)y;\n"
            "      D[l] = yi == 0 ? 0.0 : (double)((long long)x / yi);");
        out_ += "    }\n";
        break;
      case BinaryOp::kMod:
        lanes(
            "const long long yi = (long long)y;\n"
            "      D[l] = yi == 0 ? 0.0 : (double)((long long)x % yi);");
        break;
      case BinaryOp::kLt:
        lanes("D[l] = x < y ? 1.0 : 0.0;");
        break;
      case BinaryOp::kLe:
        lanes("D[l] = x <= y ? 1.0 : 0.0;");
        break;
      case BinaryOp::kGt:
        lanes("D[l] = x > y ? 1.0 : 0.0;");
        break;
      case BinaryOp::kGe:
        lanes("D[l] = x >= y ? 1.0 : 0.0;");
        break;
      case BinaryOp::kEq:
        lanes("D[l] = x == y ? 1.0 : 0.0;");
        break;
      case BinaryOp::kNe:
        lanes("D[l] = x != y ? 1.0 : 0.0;");
        break;
      case BinaryOp::kAnd:
        lanes("D[l] = (x != 0.0 && y != 0.0) ? 1.0 : 0.0;");
        break;
      case BinaryOp::kOr:
        lanes("D[l] = (x != 0.0 || y != 0.0) ? 1.0 : 0.0;");
        break;
    }
    out_ += StrFormat("    rt[%u] = %d; }\n", I.dst, T);
  }

  // EvalBuiltinLane: float builtins compute on (float)x via the float
  // std:: overloads (same libm entry points as the VM); min/max/abs
  // operate on the raw double lanes.
  static const char* BuiltinExpr(VmBuiltin fn, bool* two_out) {
    const char* expr = "0.0";
    bool two = false;
    switch (fn) {
      case VmBuiltin::kExp: expr = "(double)std::exp((float)x)"; break;
      case VmBuiltin::kExp2: expr = "(double)std::exp2((float)x)"; break;
      case VmBuiltin::kLog: expr = "(double)std::log((float)x)"; break;
      case VmBuiltin::kLog2: expr = "(double)std::log2((float)x)"; break;
      case VmBuiltin::kSqrt: expr = "(double)std::sqrt((float)x)"; break;
      case VmBuiltin::kRsqrt:
        expr = "(double)(1.0f / std::sqrt((float)x))";
        break;
      case VmBuiltin::kSin: expr = "(double)std::sin((float)x)"; break;
      case VmBuiltin::kCos: expr = "(double)std::cos((float)x)"; break;
      case VmBuiltin::kTan: expr = "(double)std::tan((float)x)"; break;
      case VmBuiltin::kAtan: expr = "(double)std::atan((float)x)"; break;
      case VmBuiltin::kAtan2:
        expr = "(double)std::atan2((float)x, (float)y)";
        two = true;
        break;
      case VmBuiltin::kPow:
        expr = "(double)std::pow((float)x, (float)y)";
        two = true;
        break;
      case VmBuiltin::kFmod:
        expr = "(double)std::fmod((float)x, (float)y)";
        two = true;
        break;
      case VmBuiltin::kFabs: expr = "(double)std::fabs((float)x)"; break;
      case VmBuiltin::kFmin:
        expr = "(double)std::fmin((float)x, (float)y)";
        two = true;
        break;
      case VmBuiltin::kFmax:
        expr = "(double)std::fmax((float)x, (float)y)";
        two = true;
        break;
      case VmBuiltin::kFloor: expr = "(double)std::floor((float)x)"; break;
      case VmBuiltin::kCeil: expr = "(double)std::ceil((float)x)"; break;
      case VmBuiltin::kRound: expr = "(double)std::round((float)x)"; break;
      case VmBuiltin::kMin:
        expr = "std::min(x, y)";
        two = true;
        break;
      case VmBuiltin::kMax:
        expr = "std::max(x, y)";
        two = true;
        break;
      case VmBuiltin::kAbs: expr = "std::fabs(x)"; break;
    }
    *two_out = two;
    return expr;
  }

  void EmitCall(const Insn& I) {
    bool two = false;
    const char* expr = BuiltinExpr(static_cast<VmBuiltin>(I.sub), &two);
    out_ += StrFormat(
        "  { const double* A = JR(%u); const double* B = JR(%u);\n"
        "    double* D = JR(%u); (void)B;\n"
        "    for (int l = 0; l < W; ++l) {\n",
        I.a, I.b, I.dst);
    out_ += "      const double x = A[l];";
    if (two) out_ += " const double y = B[l];";
    out_ += "\n";
    out_ += StrFormat("      D[l] = %s;\n    }\n    rt[%u] = %d; }\n", expr,
                      I.dst, TypeCode(I.type));
  }

  void EmitThreadIdx(const Insn& I) {
    const ThreadIndexKind kind = static_cast<ThreadIndexKind>(I.sub);
    const char* lane_src = nullptr;
    const char* scalar_src = nullptr;
    switch (kind) {
      case ThreadIndexKind::kThreadIdxX: lane_src = "tid_x"; break;
      case ThreadIndexKind::kThreadIdxY: lane_src = "tid_y"; break;
      case ThreadIndexKind::kGlobalIdX: lane_src = "gid_x"; break;
      case ThreadIndexKind::kGlobalIdY: lane_src = "gid_y"; break;
      case ThreadIndexKind::kBlockIdxX: scalar_src = "bix"; break;
      case ThreadIndexKind::kBlockIdxY: scalar_src = "biy"; break;
      case ThreadIndexKind::kBlockDimX: scalar_src = "block_dim_x"; break;
      case ThreadIndexKind::kBlockDimY: scalar_src = "block_dim_y"; break;
      case ThreadIndexKind::kGridDimX: scalar_src = "grid_dim_x"; break;
      case ThreadIndexKind::kGridDimY: scalar_src = "grid_dim_y"; break;
      case ThreadIndexKind::kImageW: scalar_src = "image_w"; break;
      case ThreadIndexKind::kImageH: scalar_src = "image_h"; break;
    }
    if (lane_src) {
      out_ += StrFormat(
          "  { double* d = JR(%u);\n"
          "    for (int l = 0; l < W; ++l) d[l] = ctx->%s[l];\n"
          "    rt[%u] = 2; }\n",
          I.dst, lane_src, I.dst);
    } else {
      out_ += StrFormat(
          "  { double* d = JR(%u); const double v = ctx->%s;\n"
          "    for (int l = 0; l < W; ++l) d[l] = v;\n"
          "    rt[%u] = 2; }\n",
          I.dst, scalar_src, I.dst);
    }
  }

  void EmitAssign(const Insn& I) {
    const AssignOp op = static_cast<AssignOp>(I.sub);
    const int T = TypeCode(I.type);
    // CombineLane's folded type: float iff the declared type is float,
    // otherwise the integer paths (AssignLanes' kFolded).
    const bool fm = I.type == ScalarType::kFloat;
    const char* combine = "d[l] = rhs;";
    switch (op) {
      case AssignOp::kAssign:
        break;
      case AssignOp::kAddAssign:
        combine = fm ? "d[l] = jit_as_f(jit_as_f(d[l]) + jit_as_f(rhs));"
                     : "d[l] = d[l] + rhs;";
        break;
      case AssignOp::kSubAssign:
        combine = fm ? "d[l] = jit_as_f(jit_as_f(d[l]) - jit_as_f(rhs));"
                     : "d[l] = d[l] - rhs;";
        break;
      case AssignOp::kMulAssign:
        combine = fm ? "d[l] = jit_as_f(jit_as_f(d[l]) * jit_as_f(rhs));"
                     : "d[l] = d[l] * rhs;";
        break;
      case AssignOp::kDivAssign:
        combine = fm ? "d[l] = jit_as_f(jit_as_f(d[l]) / jit_as_f(rhs));"
                     : "d[l] = rhs != 0.0 ? (double)((long long)d[l] / "
                       "(long long)rhs) : 0.0;";
        break;
    }
    out_ += StrFormat(
        "  { const double* s = JR(%u); double* d = JR(%u);\n"
        "    const unsigned char* mk = JM(%u);\n"
        "    const int cvt = rt[%u] != %d;\n"
        "    for (int l = 0; l < W; ++l) {\n"
        "      if (!mk[l]) continue;\n"
        "      const double rhs = cvt ? jit_conv(s[l], %d) : s[l];\n"
        "      %s\n"
        "    } }\n",
        I.a, I.dst, I.mask, I.a, T, T, combine);
  }

  void EmitLoadImage(const Insn& I) {
    const bool tex = I.sub == 1;
    const bool hw = I.hw_bh || tex;
    const int mode = static_cast<int>(I.boundary);
    out_ += StrFormat(
        "  { const hipacc::sim::jit::JitBuffer* buf = &ctx->buffers[%d];\n"
        "  if (!buf->bound) return (1 << 16) | %d;\n"
        "  double* d = JR(%u); const unsigned char* mk = JM(%u);\n"
        "  int cxs[64]; int cys[64];\n",
        I.buffer, I.buffer, I.dst, I.mask);
    EmitCoord(I.cx, "cxs");
    EmitCoord(I.cy, "cys");
    out_ +=
        "  const int bw = buf->width; const int bh = buf->height;\n"
        "  const int stride = buf->stride; const float* data = buf->data;\n"
        "  unsigned long long addrs[64]; int na = 0;\n"
        "  for (int l = 0; l < W; ++l) {\n"
        "    if (!mk[l]) { d[l] = 0.0; continue; }\n"
        "    const int cx = cxs[l]; const int cy = cys[l];\n"
        "    if ((unsigned)cx < (unsigned)bw && (unsigned)cy < (unsigned)bh) "
        "{\n"
        "      const unsigned long long addr =\n"
        "          (unsigned long long)cy * stride + cx;\n"
        "      d[l] = (double)data[addr]; addrs[na++] = addr; continue;\n"
        "    }\n";
    if (I.boundary == BoundaryMode::kConstant && !I.hw_bh) {
      out_ += StrFormat(
          "    {\n"
          "      const int oob_x = (cx < 0 && %d) || (cx >= bw && %d);\n"
          "      const int oob_y = (cy < 0 && %d) || (cy >= bh && %d);\n"
          "      if (oob_x || oob_y) { d[l] = (double)%s; continue; }\n"
          "    }\n",
          I.checks.lo_x ? 1 : 0, I.checks.hi_x ? 1 : 0, I.checks.lo_y ? 1 : 0,
          I.checks.hi_y ? 1 : 0, FLit(I.cvalue).c_str());
    }
    out_ += StrFormat(
        "    int violation = 0;\n"
        "    const int rx = jit_resolve(cx, bw, %d, %d, %d, %d, &violation);\n"
        "    const int ry = jit_resolve(cy, bh, %d, %d, %d, %d, &violation);\n"
        "    if (violation) ++fl.oob;\n"
        "    if (rx < 0 || ry < 0) { d[l] = (double)%s; continue; }\n"
        "    const unsigned long long addr =\n"
        "        (unsigned long long)ry * stride + rx;\n"
        "    d[l] = (double)data[addr]; addrs[na++] = addr;\n"
        "  }\n"
        "  rt[%u] = 4;\n"
        "  if (na) ctx->mem_access(ctx->host, %d, addrs, na); }\n",
        mode, I.checks.lo_x ? 1 : 0, I.checks.hi_x ? 1 : 0, hw ? 1 : 0, mode,
        I.checks.lo_y ? 1 : 0, I.checks.hi_y ? 1 : 0, hw ? 1 : 0,
        FLit(I.cvalue).c_str(), I.dst, tex ? 4 : 0);
  }

  // ---- lane-fused emission ------------------------------------------------
  //
  // One loop over lanes runs the whole scheduled instruction sequence (the
  // program, with emit-time-decidable loops unrolled) in scalar locals.
  // Register type tags are data-independent along the schedule, so they
  // are resolved here at emit time (the emitter replays exactly the tag
  // updates the VM performs at runtime); per-insn costs become constants
  // folded into one flush after the loop. Memory-model address lists are
  // buffered per *scheduled step* — an insn inside an unrolled loop gets
  // one slot per execution — and replayed after the lane loop in schedule
  // order; stores buffer (value, coord, active) per lane and perform the
  // actual global writes in the same post-loop pass, so every observable
  // effect — stored pixels, model call order, metric totals — lands in
  // exactly the VM's order.
  //
  // Float residency: the VM keeps every value as a double, but float-typed
  // results are always exactly-representable floats (every float op rounds
  // through (float)). The fused body therefore keeps such values in real
  // `float` locals (res_[k] == 'F'), eliding the double<->float conversion
  // chatter. This is bit-exact: double carries >= 2*24+2 significand bits,
  // so rounding a float +,-,*,/ or sqrt through double and back (what the
  // VM computes) equals the directly computed float op — and any consumer
  // that wants the raw double reads (double)fK, which reproduces the VM's
  // stored value exactly. Values that are float-*typed* but not float-exact
  // (a kConst whose immediate doesn't round-trip) simply stay double
  // resident; residency is a per-slot emitter fact, independent of the
  // type tag.

  /// Reads register `r` as the raw double the VM stores: the double local
  /// itself, or the float local widened (exact by construction).
  std::string DX(unsigned r) {
    return res_[r] == 'F' ? StrFormat("(double)f%u", r) : StrFormat("r%u", r);
  }

  /// Reads register `r` as (float)value — the operand form of every
  /// float-mode op. For a float-resident slot this is the local itself.
  std::string FX(unsigned r) {
    return res_[r] == 'F' ? StrFormat("f%u", r) : StrFormat("(float)r%u", r);
  }

  /// Forces register `r` into its double local (exact: widening). Needed
  /// before masked writes that must leave inactive lanes' raw doubles
  /// intact, and before raw-double read-modify-write paths.
  void NormD(unsigned r) {
    if (res_[r] != 'F') return;
    fbody_ += StrFormat("    r%u = (double)f%u;\n", r, r);
    res_[r] = 'D';
  }

  /// Scalar coordinate expression for lane `l`. Register coordinates are
  /// only evaluated under an active mask (the VM zeroes them for inactive
  /// lanes, but inactive lanes never reach an address computation).
  std::string FusedCoord(const Coord& c) {
    switch (c.kind) {
      case CoordKind::kReg: return StrFormat("(int)%s", DX(c.reg).c_str());
      case CoordKind::kGidX:
        return StrFormat("(ctx->gid_xi[l] + (%d))", c.off);
      case CoordKind::kGidY:
        return StrFormat("(ctx->gid_yi[l] + (%d))", c.off);
      case CoordKind::kTidX:
        return StrFormat("(ctx->tid_xi[l] + (%d))", c.off);
      case CoordKind::kTidY:
        return StrFormat("(ctx->tid_yi[l] + (%d))", c.off);
      case CoordKind::kImm: return StrFormat("%d", c.off);
    }
    return "0";
  }

  /// First use of a global buffer: binding check (program order, before any
  /// side effect) plus hoisted field loads shared by every insn on it.
  void FuseBuffer(int b, bool store) {
    if (!fbuf_seen_.insert(b).second) return;
    fchecks_ += StrFormat(
        "  const hipacc::sim::jit::JitBuffer* b%d = &ctx->buffers[%d];\n", b,
        b);
    fchecks_ += store ? StrFormat(
                            "  if (!b%d->bound || !b%d->writable) return (2 "
                            "<< 16) | %d;\n",
                            b, b, b)
                      : StrFormat("  if (!b%d->bound) return (1 << 16) | %d;\n",
                                  b, b);
    fdecls_ += StrFormat(
        "  const int bw%d = b%d->width; const int bh%d = b%d->height;\n"
        "  const int bs%d = b%d->stride; float* const bp%d = b%d->data;\n",
        b, b, b, b, b, b, b, b);
  }

  void FuseMaskTable(int t) {
    if (!fmask_seen_.insert(t).second) return;
    fchecks_ += StrFormat(
        "  const hipacc::sim::jit::JitMaskTable* mt%d = "
        "&ctx->mask_tables[%d];\n"
        "  if (!mt%d->bound) return (3 << 16) | %d;\n",
        t, t, t, t);
    fdecls_ += StrFormat(
        "  const float* md%d = mt%d->data;"
        " const unsigned long long ms%d = mt%d->size;\n",
        t, t, t, t);
  }

  /// Declares the per-step address buffer and schedules the post-loop
  /// memory-model replay for scheduled step `step` with ABI kind `kind`.
  /// Keyed by step, not pc: an insn inside an unrolled loop issues one
  /// model call per execution, in schedule order — the VM's exact sequence.
  void FuseMemSlot(int step, int kind) {
    fdecls_ += StrFormat("  unsigned long long a%d[64]; int n%d = 0;\n", step,
                         step);
    fpost_ += StrFormat(
        "  if (n%d) ctx->mem_access(ctx->host, %d, a%d, n%d);\n", step, kind,
        step, step);
  }

  void EmitFusedBinary(const Insn& I) {
    const BinaryOp op = static_cast<BinaryOp>(I.sub);
    const bool fm = ty_[I.a] == 4 || ty_[I.b] == 4;
    const std::string X = DX(I.a);
    const std::string Y = DX(I.b);
    const std::string D = StrFormat("r%u", I.dst);
    auto set_d = [&] { res_[I.dst] = 'D'; };
    auto cmp = [&](const char* sym) {
      fbody_ += StrFormat("    %s = %s %s %s ? 1.0 : 0.0;\n", D.c_str(),
                          X.c_str(), sym, Y.c_str());
      set_d();
    };
    switch (op) {
      case BinaryOp::kAdd:
      case BinaryOp::kSub:
      case BinaryOp::kMul: {
        const char sym = op == BinaryOp::kAdd ? '+'
                         : op == BinaryOp::kSub ? '-'
                                                : '*';
        if (fm) {
          // Direct float arithmetic: equals the VM's
          // (double)((float)x op (float)y) — double rounding through a
          // format with >= 2p+2 bits is exact for + - * /.
          fbody_ += StrFormat("    f%u = %s %c %s;\n", I.dst,
                              FX(I.a).c_str(), sym, FX(I.b).c_str());
          res_[I.dst] = 'F';
        } else {
          fbody_ += StrFormat("    %s = %s %c %s;\n", D.c_str(), X.c_str(),
                              sym, Y.c_str());
          set_d();
        }
        break;
      }
      case BinaryOp::kDiv:
        falu_ += fm ? 5 : 16;
        if (fm) {
          fbody_ += StrFormat("    f%u = %s / %s;\n", I.dst, FX(I.a).c_str(),
                              FX(I.b).c_str());
          res_[I.dst] = 'F';
        } else {
          fbody_ += StrFormat(
              "    { const long long yi = (long long)%s;\n"
              "      %s = yi == 0 ? 0.0 : (double)((long long)%s / yi); }\n",
              Y.c_str(), D.c_str(), X.c_str());
          set_d();
        }
        break;
      case BinaryOp::kMod:
        fbody_ += StrFormat(
            "    { const long long yi = (long long)%s;\n"
            "      %s = yi == 0 ? 0.0 : (double)((long long)%s %% yi); }\n",
            Y.c_str(), D.c_str(), X.c_str());
        set_d();
        break;
      case BinaryOp::kLt: cmp("<"); break;
      case BinaryOp::kLe: cmp("<="); break;
      case BinaryOp::kGt: cmp(">"); break;
      case BinaryOp::kGe: cmp(">="); break;
      case BinaryOp::kEq: cmp("=="); break;
      case BinaryOp::kNe: cmp("!="); break;
      case BinaryOp::kAnd:
        fbody_ += StrFormat(
            "    %s = (%s != 0.0 && %s != 0.0) ? 1.0 : 0.0;\n", D.c_str(),
            X.c_str(), Y.c_str());
        set_d();
        break;
      case BinaryOp::kOr:
        fbody_ += StrFormat(
            "    %s = (%s != 0.0 || %s != 0.0) ? 1.0 : 0.0;\n", D.c_str(),
            X.c_str(), Y.c_str());
        set_d();
        break;
    }
    ty_[I.dst] = TypeCode(I.type);
  }

  void EmitFusedAssign(const Insn& I) {
    const AssignOp op = static_cast<AssignOp>(I.sub);
    const int T = TypeCode(I.type);
    const bool fm = I.type == ScalarType::kFloat;
    const bool cvt = ty_[I.a] != T;
    // Masked writes must leave inactive lanes' values untouched, so the
    // destination's residency cannot change here: a double-resident slot
    // stays double (the float result widens exactly), and a float-resident
    // slot only stays float when the stored value is float-exact —
    // otherwise it is widened to double up front (exact) and written there.
    if (fm && op != AssignOp::kAssign) {
      // CombineLane float fold: d = (double)((float)d op (float)rhs), with
      // (float)rhs == (float)raw regardless of the conversion step — so
      // both operands reduce to their FX forms and the op runs in float
      // (exact through double, >= 2p+2 bits).
      const char sym = op == AssignOp::kAddAssign   ? '+'
                       : op == AssignOp::kSubAssign ? '-'
                       : op == AssignOp::kMulAssign ? '*'
                                                    : '/';
      const std::string val =
          StrFormat("%s %c %s", FX(I.dst).c_str(), sym, FX(I.a).c_str());
      fbody_ += res_[I.dst] == 'F'
                    ? StrFormat("    if (m%u) f%u = %s;\n", I.mask, I.dst,
                                val.c_str())
                    : StrFormat("    if (m%u) r%u = (double)(%s);\n", I.mask,
                                I.dst, val.c_str());
      return;
    }
    if (fm) {
      // Plain float assign: converted or float-resident sources are
      // float-exact; a raw double-resident source keeps the destination
      // double resident.
      if (cvt || res_[I.a] == 'F') {
        const std::string val = cvt ? FX(I.a) : StrFormat("f%u", I.a);
        fbody_ += res_[I.dst] == 'F'
                      ? StrFormat("    if (m%u) f%u = %s;\n", I.mask, I.dst,
                                  val.c_str())
                      : StrFormat("    if (m%u) r%u = (double)%s;\n", I.mask,
                                  I.dst, val.c_str());
      } else {
        NormD(I.dst);
        fbody_ += StrFormat("    if (m%u) r%u = r%u;\n", I.mask, I.dst, I.a);
      }
      return;
    }
    // Integer paths operate on raw doubles.
    NormD(I.dst);
    const std::string D = StrFormat("r%u", I.dst);
    const std::string rhs =
        cvt ? StrFormat("jit_conv(%s, %d)", DX(I.a).c_str(), T) : DX(I.a);
    std::string stmt;
    switch (op) {
      case AssignOp::kAssign:
        stmt = D + " = rhs;";
        break;
      case AssignOp::kAddAssign:
        stmt = D + " = " + D + " + rhs;";
        break;
      case AssignOp::kSubAssign:
        stmt = D + " = " + D + " - rhs;";
        break;
      case AssignOp::kMulAssign:
        stmt = D + " = " + D + " * rhs;";
        break;
      case AssignOp::kDivAssign:
        stmt = D + " = rhs != 0.0 ? (double)((long long)" + D +
               " / (long long)rhs) : 0.0;";
        break;
    }
    fbody_ += StrFormat("    if (m%u) { const double rhs = %s; %s }\n", I.mask,
                        rhs.c_str(), stmt.c_str());
  }

  void EmitFusedLoadImage(int step, const Insn& I) {
    const bool tex = I.sub == 1;
    const bool hw = I.hw_bh || tex;
    const int mode = static_cast<int>(I.boundary);
    const int K = I.buffer;
    FuseBuffer(K, /*store=*/false);
    FuseMemSlot(step, tex ? 4 : 0);
    // Loaded pixels are floats: the result lives in the float local
    // (res F), and every written value — pixel, boundary constant, masked
    // zero — is float-exact.
    fbody_ += StrFormat(
        "    if (!m%u) { f%u = 0.0f; } else {\n"
        "      const int cx = %s; const int cy = %s;\n"
        "      if ((unsigned)cx < (unsigned)bw%d && (unsigned)cy < "
        "(unsigned)bh%d) {\n"
        "        const unsigned long long ad =\n"
        "            (unsigned long long)cy * bs%d + cx;\n"
        "        f%u = bp%d[ad]; a%d[n%d++] = ad;\n"
        "      } else {\n",
        I.mask, I.dst, FusedCoord(I.cx).c_str(), FusedCoord(I.cy).c_str(), K,
        K, K, I.dst, K, step, step);
    const bool cguard = I.boundary == BoundaryMode::kConstant && !I.hw_bh;
    if (cguard)
      fbody_ += StrFormat(
          "        const int oob_x = (cx < 0 && %d) || (cx >= bw%d && %d);\n"
          "        const int oob_y = (cy < 0 && %d) || (cy >= bh%d && %d);\n"
          "        if (oob_x || oob_y) { f%u = %s; } else {\n",
          I.checks.lo_x ? 1 : 0, K, I.checks.hi_x ? 1 : 0,
          I.checks.lo_y ? 1 : 0, K, I.checks.hi_y ? 1 : 0, I.dst,
          FLit(I.cvalue).c_str());
    fbody_ += StrFormat(
        "        int violation = 0;\n"
        "        const int rx = jit_resolve(cx, bw%d, %d, %d, %d, %d, "
        "&violation);\n"
        "        const int ry = jit_resolve(cy, bh%d, %d, %d, %d, %d, "
        "&violation);\n"
        "        if (violation) ++fl.oob;\n"
        "        if (rx < 0 || ry < 0) { f%u = %s; }\n"
        "        else { const unsigned long long ad =\n"
        "                   (unsigned long long)ry * bs%d + rx;\n"
        "               f%u = bp%d[ad]; a%d[n%d++] = ad; }\n",
        K, mode, I.checks.lo_x ? 1 : 0, I.checks.hi_x ? 1 : 0, hw ? 1 : 0, K,
        mode, I.checks.lo_y ? 1 : 0, I.checks.hi_y ? 1 : 0, hw ? 1 : 0, I.dst,
        FLit(I.cvalue).c_str(), K, I.dst, K, step, step);
    if (cguard) fbody_ += "        }\n";
    fbody_ += "      }\n    }\n";
    ty_[I.dst] = 4;
    res_[I.dst] = 'F';
  }

  void EmitFusedLoadShared(int step, const Insn& I) {
    if (!ftile_) {
      ftile_ = true;
      fdecls_ +=
          "  const float* tile = ctx->tile;\n"
          "  const int tw = ctx->tile_w; const int th = ctx->tile_h;\n";
    }
    FuseMemSlot(step, 2);
    fbody_ += StrFormat(
        "    if (!m%u) { f%u = 0.0f; } else {\n"
        "      const int sx = %s; const int sy = %s;\n"
        "      if (sx < 0 || sx >= tw || sy < 0 || sy >= th) {\n"
        "        ++fl.oob; f%u = 0.0f;\n"
        "      } else {\n"
        "        const unsigned long long ad =\n"
        "            (unsigned long long)sy * tw + sx;\n"
        "        f%u = tile[ad]; a%d[n%d++] = ad;\n"
        "      }\n    }\n",
        I.mask, I.dst, FusedCoord(I.cx).c_str(), FusedCoord(I.cy).c_str(),
        I.dst, I.dst, step, step);
    ty_[I.dst] = 4;
    res_[I.dst] = 'F';
  }

  void EmitFusedLoadConst(int step, const Insn& I) {
    const int width = ps_.const_masks[static_cast<std::size_t>(I.buffer)].width;
    FuseMaskTable(I.buffer);
    FuseMemSlot(step, 3);
    fbody_ += StrFormat(
        "    if (!m%u) { f%u = 0.0f; } else {\n"
        "      const unsigned long long ad =\n"
        "          (unsigned long long)(%s) * %d + (%s);\n"
        "      if (ad >= ms%d) { ++fl.oob; f%u = 0.0f; }\n"
        "      else { f%u = md%d[ad]; a%d[n%d++] = ad; }\n"
        "    }\n",
        I.mask, I.dst, FusedCoord(I.cy).c_str(), width,
        FusedCoord(I.cx).c_str(), I.buffer, I.dst, I.dst, I.buffer, step,
        step);
    ty_[I.dst] = 4;
    res_[I.dst] = 'F';
  }

  void EmitFusedStore(int step, const Insn& I) {
    const int K = I.buffer;
    FuseBuffer(K, /*store=*/true);
    // The VM narrows to float at write time, so the deferred value is
    // buffered as the float actually stored.
    fdecls_ += StrFormat(
        "  unsigned long long a%d[64]; int n%d = 0;\n"
        "  float sv%d[64]; int sx%d[64]; int sy%d[64];"
        " unsigned char sm%d[64];\n",
        step, step, step, step, step, step);
    fbody_ += StrFormat(
        "    sm%d[l] = m%u;\n"
        "    if (m%u) { sv%d[l] = %s; sx%d[l] = %s; sy%d[l] = %s; }\n",
        step, I.mask, I.mask, step, FX(I.a).c_str(), step,
        FusedCoord(I.cx).c_str(), step, FusedCoord(I.cy).c_str());
    // Deferred write-back: lane order within the insn, schedule order
    // across steps — the VM's exact store order, so colliding addresses
    // resolve identically.
    fpost_ += StrFormat(
        "  for (int l = 0; l < W; ++l) {\n"
        "    if (!sm%d[l]) continue;\n"
        "    const int px = sx%d[l]; const int py = sy%d[l];\n"
        "    if (px < 0 || px >= bw%d || py < 0 || py >= bh%d) {\n"
        "      ++fl.oob; continue;\n"
        "    }\n"
        "    const unsigned long long ad = (unsigned long long)py * bs%d + "
        "px;\n"
        "    bp%d[ad] = sv%d[l]; a%d[n%d++] = ad;\n"
        "  }\n"
        "  if (n%d) ctx->mem_access(ctx->host, 1, a%d, n%d);\n",
        step, step, step, K, K, K, K, step, step, step, step, step, step);
  }

  /// Emits one float-builtin call with float-resident operands/result where
  /// the VM computes in float anyway (same libm entry points, so results
  /// are bit-identical); min/max/abs operate on the raw doubles.
  void EmitFusedCall(const Insn& I) {
    const VmBuiltin fn = static_cast<VmBuiltin>(I.sub);
    const char* nm = nullptr;
    bool two = false;
    switch (fn) {
      case VmBuiltin::kExp: nm = "exp"; break;
      case VmBuiltin::kExp2: nm = "exp2"; break;
      case VmBuiltin::kLog: nm = "log"; break;
      case VmBuiltin::kLog2: nm = "log2"; break;
      case VmBuiltin::kSqrt: nm = "sqrt"; break;
      case VmBuiltin::kSin: nm = "sin"; break;
      case VmBuiltin::kCos: nm = "cos"; break;
      case VmBuiltin::kTan: nm = "tan"; break;
      case VmBuiltin::kAtan: nm = "atan"; break;
      case VmBuiltin::kFabs: nm = "fabs"; break;
      case VmBuiltin::kFloor: nm = "floor"; break;
      case VmBuiltin::kCeil: nm = "ceil"; break;
      case VmBuiltin::kRound: nm = "round"; break;
      case VmBuiltin::kAtan2: nm = "atan2"; two = true; break;
      case VmBuiltin::kPow: nm = "pow"; two = true; break;
      case VmBuiltin::kFmod: nm = "fmod"; two = true; break;
      case VmBuiltin::kFmin: nm = "fmin"; two = true; break;
      case VmBuiltin::kFmax: nm = "fmax"; two = true; break;
      case VmBuiltin::kRsqrt:
        fbody_ += StrFormat("    f%u = 1.0f / std::sqrt(%s);\n", I.dst,
                            FX(I.a).c_str());
        res_[I.dst] = 'F';
        return;
      case VmBuiltin::kMin:
        fbody_ += StrFormat("    r%u = std::min(%s, %s);\n", I.dst,
                            DX(I.a).c_str(), DX(I.b).c_str());
        res_[I.dst] = 'D';
        return;
      case VmBuiltin::kMax:
        fbody_ += StrFormat("    r%u = std::max(%s, %s);\n", I.dst,
                            DX(I.a).c_str(), DX(I.b).c_str());
        res_[I.dst] = 'D';
        return;
      case VmBuiltin::kAbs:
        fbody_ += StrFormat("    r%u = std::fabs(%s);\n", I.dst,
                            DX(I.a).c_str());
        res_[I.dst] = 'D';
        return;
    }
    fbody_ += two ? StrFormat("    f%u = std::%s(%s, %s);\n", I.dst, nm,
                              FX(I.a).c_str(), FX(I.b).c_str())
                  : StrFormat("    f%u = std::%s(%s);\n", I.dst, nm,
                              FX(I.a).c_str());
    res_[I.dst] = 'F';
  }

  void EmitFusedInsn(int step, std::int32_t pc, const Insn& I, bool exit) {
    falu_ += I.alu_cost;
    fsfu_ += I.sfu_cost;
    const int T = TypeCode(I.type);
    fbody_ += StrFormat("    // [%d]\n", pc);
    switch (I.op) {
      case Op::kConst: {
        // Float-exact immediates become float resident; everything else
        // (including any NaN, whose payload must survive raw reads) stays
        // in the double local.
        const double rt = static_cast<double>(static_cast<float>(I.imm));
        const bool fexact = std::memcmp(&rt, &I.imm, sizeof(rt)) == 0;
        if (fexact) {
          fbody_ += StrFormat("    f%u = %s;\n", I.dst,
                              FLit(static_cast<float>(I.imm)).c_str());
          res_[I.dst] = 'F';
        } else {
          fbody_ += StrFormat("    r%u = %s;\n", I.dst, DLit(I.imm).c_str());
          res_[I.dst] = 'D';
        }
        ty_[I.dst] = T;
        break;
      }
      case Op::kCopy:
        if (I.dst != I.a)
          fbody_ += res_[I.a] == 'F'
                        ? StrFormat("    f%u = f%u;\n", I.dst, I.a)
                        : StrFormat("    r%u = r%u;\n", I.dst, I.a);
        res_[I.dst] = res_[I.a];
        ty_[I.dst] = ty_[I.a];
        break;
      case Op::kConvert:
        if (ty_[I.a] == T) {
          if (I.dst != I.a)
            fbody_ += res_[I.a] == 'F'
                          ? StrFormat("    f%u = f%u;\n", I.dst, I.a)
                          : StrFormat("    r%u = r%u;\n", I.dst, I.a);
          res_[I.dst] = res_[I.a];
        } else if (T == 4) {
          // jit_conv(v, 4) == (double)(float)v: the float local holds it.
          fbody_ += StrFormat("    f%u = %s;\n", I.dst, FX(I.a).c_str());
          res_[I.dst] = 'F';
        } else {
          fbody_ += StrFormat("    r%u = jit_conv(%s, %d);\n", I.dst,
                              DX(I.a).c_str(), T);
          res_[I.dst] = 'D';
        }
        ty_[I.dst] = T;
        break;
      case Op::kUnary:
        if (static_cast<UnaryOp>(I.sub) == UnaryOp::kNot) {
          fbody_ += StrFormat("    r%u = %s == 0.0 ? 1.0 : 0.0;\n", I.dst,
                              DX(I.a).c_str());
          res_[I.dst] = 'D';
        } else if (I.type == ScalarType::kFloat) {
          fbody_ += StrFormat("    f%u = -%s;\n", I.dst, FX(I.a).c_str());
          res_[I.dst] = 'F';
        } else {
          fbody_ += StrFormat("    r%u = -%s;\n", I.dst, DX(I.a).c_str());
          res_[I.dst] = 'D';
        }
        ty_[I.dst] = T;
        break;
      case Op::kBinary:
        EmitFusedBinary(I);
        break;
      case Op::kSelect:
        // Raw selection between the operands' stored values; float resident
        // only when both arms already are.
        if (res_[I.b] == 'F' && res_[I.c] == 'F') {
          fbody_ += StrFormat("    f%u = %s != 0.0 ? f%u : f%u;\n", I.dst,
                              DX(I.a).c_str(), I.b, I.c);
          res_[I.dst] = 'F';
        } else {
          fbody_ += StrFormat("    r%u = %s != 0.0 ? %s : %s;\n", I.dst,
                              DX(I.a).c_str(), DX(I.b).c_str(),
                              DX(I.c).c_str());
          res_[I.dst] = 'D';
        }
        ty_[I.dst] = T;
        break;
      case Op::kCall:
        EmitFusedCall(I);
        ty_[I.dst] = T;
        break;
      case Op::kThreadIdx: {
        const ThreadIndexKind kind = static_cast<ThreadIndexKind>(I.sub);
        const char* lane_src = nullptr;
        const char* scalar_src = nullptr;
        switch (kind) {
          case ThreadIndexKind::kThreadIdxX: lane_src = "tid_x"; break;
          case ThreadIndexKind::kThreadIdxY: lane_src = "tid_y"; break;
          case ThreadIndexKind::kGlobalIdX: lane_src = "gid_x"; break;
          case ThreadIndexKind::kGlobalIdY: lane_src = "gid_y"; break;
          case ThreadIndexKind::kBlockIdxX: scalar_src = "bix"; break;
          case ThreadIndexKind::kBlockIdxY: scalar_src = "biy"; break;
          case ThreadIndexKind::kBlockDimX: scalar_src = "block_dim_x"; break;
          case ThreadIndexKind::kBlockDimY: scalar_src = "block_dim_y"; break;
          case ThreadIndexKind::kGridDimX: scalar_src = "grid_dim_x"; break;
          case ThreadIndexKind::kGridDimY: scalar_src = "grid_dim_y"; break;
          case ThreadIndexKind::kImageW: scalar_src = "image_w"; break;
          case ThreadIndexKind::kImageH: scalar_src = "image_h"; break;
        }
        fbody_ += lane_src
                      ? StrFormat("    r%u = ctx->%s[l];\n", I.dst, lane_src)
                      : StrFormat("    r%u = ctx->%s;\n", I.dst, scalar_src);
        res_[I.dst] = 'D';
        ty_[I.dst] = 2;
        break;
      }
      case Op::kAssign:
        EmitFusedAssign(I);
        break;
      case Op::kLoadImage:
        EmitFusedLoadImage(step, I);
        break;
      case Op::kLoadShared:
        EmitFusedLoadShared(step, I);
        break;
      case Op::kLoadConst:
        EmitFusedLoadConst(step, I);
        break;
      case Op::kStore:
        EmitFusedStore(step, I);
        break;
      case Op::kBarrier:
      case Op::kAccount:
        break;
      case Op::kMaskIf:
        fbody_ += StrFormat(
            "    { const unsigned char inv = m%u;\n"
            "      const int tk = inv && %s != 0.0;\n"
            "      m%u = (unsigned char)tk;"
            " m%u = (unsigned char)(inv && !tk); }\n",
            I.mask, DX(I.a).c_str(), I.dst, I.b);
        break;
      case Op::kLoopInit:
        if (I.dst != I.a)
          fbody_ += res_[I.a] == 'F'
                        ? StrFormat("    f%u = f%u;\n", I.dst, I.a)
                        : StrFormat("    r%u = r%u;\n", I.dst, I.a);
        res_[I.dst] = res_[I.a];
        ty_[I.dst] = 2;
        break;
      case Op::kLoopHead:
        // AnalyzeFusion proved the loop condition warp-uniform with a known
        // truth value, so this step reduces to the mask update the VM
        // performs: while iterating, live = in && true lane-wise (inactive
        // lanes fail `in`, active lanes share the uniform variable value);
        // on exit, live = in && false = 0 for every lane.
        if (exit) {
          fbody_ += StrFormat("    m%u = 0;\n", I.dst);
        } else if (I.dst != I.mask) {
          fbody_ += StrFormat("    m%u = m%u;\n", I.dst, I.mask);
        }
        break;
      case Op::kLoopInc:
        // The VM increments the raw double only for lanes active in the
        // loop mask — inactive lanes keep their stale value, which must be
        // preserved (raw register state persists across the program).
        NormD(I.dst);
        fbody_ += StrFormat("    if (m%u) r%u += %s;\n", I.mask, I.dst,
                            DLit(I.imm).c_str());
        break;
      case Op::kJumpIfNone:
        break;  // unreachable: AnalyzeFusion rejects divergent jumps
    }
  }

  void EmitFusedBody() {
    const int num_regs = prog_.num_regs > 0 ? prog_.num_regs : 1;
    const int num_masks = prog_.num_masks > 0 ? prog_.num_masks : 1;
    // Static tag file: fresh slots carry the VM's default (kFloat), params
    // their declared type — the same seeding the runtime tag array gets.
    // Every slot starts double resident (params are seeded into the double
    // locals; fresh slots are written before being read).
    ty_.assign(static_cast<std::size_t>(num_regs), 4);
    for (const ParamSeed& p : prog_.params)
      ty_[p.reg] = static_cast<int>(p.type);
    res_.assign(static_cast<std::size_t>(num_regs), 'D');

    for (std::size_t s = 0; s < schedule_.size(); ++s) {
      const Step& st = schedule_[s];
      EmitFusedInsn(static_cast<int>(s), st.pc,
                    prog_.code[static_cast<std::size_t>(st.pc)], st.exit);
    }

    out_ += "  const int W = ctx->warp_size;\n";
    out_ += fchecks_;
    out_ += "  JitFlush fl(ctx);\n";
    out_ += fdecls_;
    out_ += "  for (int l = 0; l < W; ++l) {\n";
    for (int r = 0; r < num_regs; ++r) {
      if (r % 8 == 0) out_ += std::string(r ? ";\n" : "") + "    double ";
      out_ += StrFormat(r % 8 == 0 ? "r%d = 0" : ", r%d = 0", r);
    }
    out_ += ";\n";
    for (int r = 0; r < num_regs; ++r) {
      if (r % 8 == 0) out_ += std::string(r ? ";\n" : "") + "    float ";
      out_ += StrFormat(r % 8 == 0 ? "f%d = 0" : ", f%d = 0", r);
    }
    out_ += ";\n    unsigned char m0 = ctx->masks[l];\n";
    for (int m = 1; m < num_masks; ++m) {
      if ((m - 1) % 8 == 0)
        out_ += std::string(m > 1 ? ";\n" : "") + "    unsigned char ";
      out_ += StrFormat((m - 1) % 8 == 0 ? "m%d = 0" : ", m%d = 0", m);
    }
    if (num_masks > 1) out_ += ";\n";
    out_ += "    (void)m0; (void)r0; (void)f0;\n";
    for (const ParamSeed& p : prog_.params)
      out_ += StrFormat("    r%u = ctx->regs[%u * 64 + l];\n", p.reg, p.reg);
    out_ += fbody_;
    out_ += "  }\n";
    out_ += fpost_;
    out_ += StrFormat("  fl.n += %lluull;\n",
                      static_cast<unsigned long long>(schedule_.size()));
    if (falu_) out_ += StrFormat("  fl.alu += %lluull;\n", falu_);
    if (fsfu_) out_ += StrFormat("  fl.sfu += %lluull;\n", fsfu_);
    out_ += "  return 0;\n";
  }

  const ProgramSet& ps_;
  const Program& prog_;
  std::string& out_;
  std::set<std::int32_t> labels_;
  bool fused_ = true;
  /// One executed instruction in the fused schedule; `exit` marks the
  /// final (condition-false) evaluation of a kLoopHead.
  struct Step {
    std::int32_t pc;
    bool exit;
  };
  /// Unroll budget: programs whose executed sequence exceeds this fall back
  /// to the per-insn vector body (keeps generated TUs and host-compile
  /// times bounded).
  static constexpr int kMaxFusedSteps = 8192;
  std::vector<Step> schedule_;
  std::vector<int> ty_;
  std::vector<char> res_;
  std::set<int> fbuf_seen_, fmask_seen_;
  std::string fchecks_, fdecls_, fbody_, fpost_;
  bool ftile_ = false;
  unsigned long long falu_ = 0, fsfu_ = 0;
};

std::string StripPragmaOnce(std::string text) {
  const std::size_t pos = text.find("#pragma once");
  if (pos != std::string::npos) text.erase(pos, std::strlen("#pragma once"));
  return text;
}

}  // namespace

unsigned long long ProgramFingerprint(const ProgramSet& ps) {
  support::Fnv1a h;
  // Encoding version: bump when the emitted semantics change without an ABI
  // layout change (the ABI version is mixed separately by the cache).
  h.Mix(std::uint64_t{1});
  h.Mix(static_cast<std::uint64_t>(ps.buffer_names.size()));
  h.Mix(static_cast<std::uint64_t>(ps.const_masks.size()));
  for (const auto& mref : ps.const_masks) h.Mix(mref.width);
  h.Mix(ps.ppt);
  h.Mix(static_cast<std::uint64_t>(ps.programs.size()));
  for (const Program& prog : ps.programs) {
    h.Mix(static_cast<int>(prog.region));
    h.Mix(prog.num_regs);
    h.Mix(prog.num_masks);
    h.Mix(static_cast<std::uint64_t>(prog.code.size()));
    for (const Insn& I : prog.code) {
      h.Mix(static_cast<int>(I.op));
      h.Mix(static_cast<int>(I.type));
      h.Mix(static_cast<int>(I.sub));
      h.Mix(I.hw_bh);
      h.Mix(static_cast<int>(I.dst));
      h.Mix(static_cast<int>(I.a));
      h.Mix(static_cast<int>(I.b));
      h.Mix(static_cast<int>(I.c));
      h.Mix(static_cast<int>(I.mask));
      h.Mix(static_cast<int>(I.jump));
      h.Mix(static_cast<int>(I.alu_cost));
      h.Mix(static_cast<int>(I.sfu_cost));
      h.Mix(I.imm);
      h.Mix(static_cast<int>(I.buffer));
      for (const Coord& c : {I.cx, I.cy}) {
        h.Mix(static_cast<int>(c.kind));
        h.Mix(static_cast<int>(c.reg));
        h.Mix(c.off);
      }
      h.Mix(static_cast<int>(I.boundary));
      h.Mix(I.checks.lo_x);
      h.Mix(I.checks.hi_x);
      h.Mix(I.checks.lo_y);
      h.Mix(I.checks.hi_y);
      h.Mix(I.cvalue);
    }
  }
  return h.digest();
}

EmittedSource EmitNativeSource(const ProgramSet& ps) {
  EmittedSource out;
  support::Fnv1a h;
  h.Mix(static_cast<std::uint64_t>(ProgramFingerprint(ps)));
  const std::string tag = h.hex();
  out.source = StrFormat(
      "// Generated by the hipacc simulator native tier.\n"
      "// kernel: %s  fingerprint: %s\n"
      "#include <algorithm>\n"
      "#include <cmath>\n"
      "#include <cstring>\n",
      ps.kernel_name.c_str(), tag.c_str());
  out.source += StripPragmaOnce(AbiHeaderText());
  out.source += "\nnamespace {\n";
  out.source += kPrelude;
  out.source += "}  // namespace\n";
  for (const Program& prog : ps.programs) {
    const std::string symbol =
        StrFormat("hipacc_jit_%s_r%d", tag.c_str(), static_cast<int>(prog.region));
    FnEmitter fe(ps, prog, out.source);
    fe.Emit(symbol);
    out.symbols.push_back({prog.region, symbol, fe.fused()});
  }
  return out;
}

}  // namespace hipacc::sim::jit
