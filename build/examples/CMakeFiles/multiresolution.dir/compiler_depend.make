# Empty compiler generated dependencies file for multiresolution.
# This may be replaced when dependencies are built.
