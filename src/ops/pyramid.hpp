// Multiresolution (Laplacian-pyramid) filtering — the medical-imaging use
// case the paper cites for Mirror boundary handling (Section III-A, ref
// [7]): an image is repeatedly downsampled/upsampled; replicating the border
// pixel produces large unnatural artifacts at each upsampling, mirroring
// produces natural-looking borders. Built on the DSL's Convolution kernel so
// the whole pipeline exercises the framework.
#pragma once

#include <vector>

#include "ast/metadata.hpp"
#include "image/host_image.hpp"
#include "runtime/graph.hpp"

namespace hipacc::ops {

/// 5-tap Gaussian smoothing followed by factor-2 decimation.
HostImage<float> PyramidDown(const HostImage<float>& image,
                             ast::BoundaryMode mode);

/// Zero-insertion upsampling to (target_width, target_height) followed by
/// 5-tap Gaussian interpolation (gain 4).
HostImage<float> PyramidUp(const HostImage<float>& image, int target_width,
                           int target_height, ast::BoundaryMode mode);

/// Declares the full Laplacian band-pass pipeline on `graph`: source "g0"
/// (width x height), per-level smooth/decimate/upsample/detail stages, the
/// gain-weighted reconstruction, and output "r0". The expand convolutions
/// feed point-wise detail/collect stages, so the fusion pass merges two
/// edges per level. Reusable: bind "g0"/"r0" and Run() repeatedly.
void BuildMultiresolutionGraph(runtime::PipelineGraph& graph, int width,
                               int height, int levels,
                               const std::vector<float>& gains,
                               ast::BoundaryMode mode);

/// Laplacian-pyramid band-pass filter: decomposes into `levels` detail
/// bands, scales band i by gains[i] (missing entries default to 1), and
/// reconstructs. With gains > 1 this is the classic multiresolution
/// enhancement used in angiography processing. Scheduled through the
/// pipeline graph runtime (BuildMultiresolutionGraph); bit-identical to
/// MultiresolutionFilterEager.
HostImage<float> MultiresolutionFilter(const HostImage<float>& image,
                                       int levels,
                                       const std::vector<float>& gains,
                                       ast::BoundaryMode mode);

/// Graph-scheduled multiresolution filter with explicit execution options
/// and error reporting (MultiresolutionFilter aborts on failure).
Result<HostImage<float>> MultiresolutionFilterGraph(
    const HostImage<float>& image, int levels, const std::vector<float>& gains,
    ast::BoundaryMode mode, const runtime::GraphOptions& options = {});

/// Stage-by-stage reference implementation on the DSL classes (one eager
/// kernel per pyramid step, host images between steps) — what the graph
/// path is verified bit-identical against.
HostImage<float> MultiresolutionFilterEager(const HostImage<float>& image,
                                            int levels,
                                            const std::vector<float>& gains,
                                            ast::BoundaryMode mode);

}  // namespace hipacc::ops
