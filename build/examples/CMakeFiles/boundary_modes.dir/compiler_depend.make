# Empty compiler generated dependencies file for boundary_modes.
# This may be replaced when dependencies are built.
