// Simulator driver: functional execution (every block, exact output) and
// sampled measurement (a few blocks per boundary region interpreted, metrics
// extrapolated by region population, then run through the timing model).
// Sampling is exact for our kernels because every block within one region
// executes the same instruction stream — only cache behaviour varies
// slightly at the image edges, which the per-region samples capture.
#pragma once

#include "codegen/resource_estimator.hpp"
#include "sim/launch.hpp"
#include "sim/timing.hpp"

namespace hipacc::sim {

struct LaunchStats {
  Metrics metrics;              ///< whole-grid (exact or extrapolated)
  TimingBreakdown timing;       ///< modelled time
  hw::OccupancyResult occupancy;
  hw::RegionGrid region_grid;
  bool sampled = false;
};

class Simulator {
 public:
  explicit Simulator(hw::DeviceSpec device) : device_(std::move(device)) {}

  const hw::DeviceSpec& device() const noexcept { return device_; }

  /// Validates the launch against device limits (configs exceeding the
  /// hardware model's resources fail like a real kernel-launch error).
  Status Validate(const Launch& launch) const;

  /// Executes every block of the grid (host-parallel), producing the exact
  /// output image and exact whole-grid metrics.
  Result<LaunchStats> Execute(const Launch& launch) const;

  /// Interprets up to `samples_per_region` blocks of each populated region
  /// and extrapolates. Output buffers are only partially written.
  Result<LaunchStats> Measure(const Launch& launch,
                              int samples_per_region = 3) const;

 private:
  hw::OccupancyResult Occupancy(const Launch& launch) const;
  double IssueScale(const Launch& launch) const;

  hw::DeviceSpec device_;
};

}  // namespace hipacc::sim
