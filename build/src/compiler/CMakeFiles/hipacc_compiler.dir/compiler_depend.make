# Empty compiler generated dependencies file for hipacc_compiler.
# This may be replaced when dependencies are built.
