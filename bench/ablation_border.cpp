// Ablation: the paper's 9-region specialised boundary handling (Figure 3 /
// Listing 8) vs uniform per-pixel guards (manual style) vs no handling, for
// growing window sizes. The region approach's overhead should stay near the
// Undefined baseline regardless of mode, while uniform guards grow with the
// guard cost of the mode.
#include <cstdio>

#include "common/table.hpp"
#include "compiler/executable.hpp"
#include "hwmodel/device_db.hpp"
#include "ops/kernel_sources.hpp"
#include "support/string_utils.hpp"


using namespace hipacc;

namespace {

Result<double> MeasureGaussian(int window, ast::BoundaryMode mode,
                               codegen::BorderPolicy border,
                               const hw::DeviceSpec& device, int n) {
  frontend::KernelSource source =
      ops::GaussianSource(window, 0.5f * window, mode);
  compiler::CompileOptions copts;
  copts.codegen.border = border;
  copts.device = device;
  copts.image_width = n;
  copts.image_height = n;
  copts.forced_config = hw::KernelConfig{32, 4};
  Result<compiler::CompiledKernel> compiled = compiler::Compile(source, copts);
  if (!compiled.ok()) return compiled.status();
  dsl::Image<float> in(n, n), out(n, n);
  runtime::BindingSet bindings;
  bindings.Input("Input", in).Output(out);
  compiler::SimulatedExecutable exe(std::move(compiled).take(), device);
  Result<sim::LaunchStats> stats = exe.Measure(bindings);
  if (!stats.ok()) return stats.status();
  return stats.value().timing.total_ms;
}

}  // namespace

int main(int argc, char** argv) {
  hipacc::support::CliParser cli =
      hipacc::bench::MakeBenchCli("ablation_border", "Ablation: 9-region boundary specialisation vs uniform guards");
  if (const int code = cli.HandleArgs(argc, argv); code >= 0) return code;

  const hw::DeviceSpec device = hw::TeslaC2050();
  const int n = 2048;
  std::printf(
      "Ablation: boundary-handling strategy (Gaussian, %dx%d image, Tesla "
      "C2050, CUDA, config 32x4). Times in ms (modelled).\n\n",
      n, n);
  for (const int window : {5, 9, 13, 17}) {
    bench::Table table({"Clamp", "Repeat", "Mirror", "Const."});
    struct Row {
      const char* label;
      codegen::BorderPolicy policy;
    };
    for (const Row& row :
         {Row{"9-region (paper)", codegen::BorderPolicy::kRegions},
          Row{"uniform guards", codegen::BorderPolicy::kUniform}}) {
      table.Row(row.label);
      for (const ast::BoundaryMode mode :
           {ast::BoundaryMode::kClamp, ast::BoundaryMode::kRepeat,
            ast::BoundaryMode::kMirror, ast::BoundaryMode::kConstant}) {
        Result<double> ms = MeasureGaussian(window, mode, row.policy, device, n);
        if (ms.ok())
          table.Cell(ms.value());
        else
          table.Cell(std::string("error"));
      }
    }
    Result<double> baseline =
        MeasureGaussian(window, ast::BoundaryMode::kUndefined,
                        codegen::BorderPolicy::kNone, device, n);
    std::printf("%s", table
                          .Render(StrFormat("window %dx%d (no-handling "
                                            "baseline: %.2f ms)",
                                            window, window,
                                            baseline.ok() ? baseline.value()
                                                          : -1.0))
                          .c_str());
    std::printf("\n");
  }
  return 0;
}
