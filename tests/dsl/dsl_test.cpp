// The embedded DSL: Image upload/download with padding, Mask, Domain,
// Accessor boundary views (the Figure 2 expansions), Kernel execution, and
// global reductions.
#include <gtest/gtest.h>

#include <algorithm>

#include "dsl/accessor.hpp"
#include "dsl/image.hpp"
#include "dsl/kernel.hpp"
#include "dsl/mask.hpp"
#include "dsl/reduce.hpp"
#include "image/synthetic.hpp"

namespace hipacc::dsl {
namespace {

using ast::BoundaryMode;

TEST(ImageTest, PaddedStrideAndRoundTrip) {
  Image<float> img(61, 9);  // 61 pads to 64
  EXPECT_EQ(img.stride(), 64);
  const HostImage<float> host = MakeNoiseImage(61, 9, 4);
  img.CopyFrom(host);
  EXPECT_EQ(img.getData(), host);
}

TEST(ImageTest, RawPointerAssignmentMatchesListing2) {
  const HostImage<float> host = MakeIndexImage(8, 4);
  Image<float> img(8, 4);
  img = host.data();  // IN = host_in;
  EXPECT_EQ(img.at(3, 2), host(3, 2));
}

TEST(MaskTest, CenteredIndexingAndAssignment) {
  Mask<float> mask(3, 3);
  mask = std::vector<float>{1, 2, 3, 4, 5, 6, 7, 8, 9};
  EXPECT_EQ(mask(-1, -1), 1.0f);
  EXPECT_EQ(mask(0, 0), 5.0f);
  EXPECT_EQ(mask(1, 1), 9.0f);
  EXPECT_EQ(mask(1, -1), 3.0f);
  EXPECT_EQ(mask.half_x(), 1);
  EXPECT_EQ(mask.window().half_y, 1);
}

TEST(DomainTest, FootprintToggling) {
  Domain domain(3, 3);
  EXPECT_EQ(domain.count(), 9);
  domain.set(0, 0, false);
  domain.set(-1, -1, false);
  EXPECT_EQ(domain.count(), 7);
  EXPECT_FALSE(domain(0, 0));
  EXPECT_TRUE(domain(1, 0));
}

// Figure 2 as data: the 4x4 image A..P viewed through each boundary mode.
class Figure2Test : public ::testing::TestWithParam<BoundaryMode> {};

TEST_P(Figure2Test, ExpansionRowsMatchPaper) {
  const BoundaryMode mode = GetParam();
  Image<float> img(4, 4);
  for (int y = 0; y < 4; ++y)
    for (int x = 0; x < 4; ++x) img.at(x, y) = static_cast<float>(y * 4 + x);
  BoundaryCondition<float> bc =
      mode == BoundaryMode::kConstant
          ? BoundaryCondition<float>(img, 7, 7, mode, 16.0f)
          : BoundaryCondition<float>(img, 7, 7, mode);
  Accessor<float> acc(bc);

  auto row = [&](int y) {
    std::string out;
    for (int x = -3; x < 7; ++x)
      out += static_cast<char>('A' + static_cast<int>(acc.at(x, y)));
    return out;
  };

  switch (mode) {
    case BoundaryMode::kRepeat:
      // Figure 2b, first row shown: F G H E F G H E F G (y = -3).
      EXPECT_EQ(row(-3), "FGHEFGHEFG");
      EXPECT_EQ(row(0), "BCDABCDABC");
      break;
    case BoundaryMode::kClamp:
      // Figure 2c: rows above the image clamp to the first row.
      EXPECT_EQ(row(-1), "AAAABCDDDD");
      EXPECT_EQ(row(0), "AAAABCDDDD");
      EXPECT_EQ(row(3), "MMMMNOPPPP");
      break;
    case BoundaryMode::kMirror:
      // Figure 2d, row y = 0 of the expansion: C B A A B C D D C B.
      EXPECT_EQ(row(0), "CBAABCDDCB");
      EXPECT_EQ(row(-1), "CBAABCDDCB");
      EXPECT_EQ(row(-2), "GFEEFGHHGF");
      break;
    case BoundaryMode::kConstant:
      // Figure 2e: everything outside is 'Q'.
      EXPECT_EQ(row(-3), "QQQQQQQQQQ");
      EXPECT_EQ(row(0), "QQQABCDQQQ");
      break;
    default:
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, Figure2Test,
                         ::testing::Values(BoundaryMode::kRepeat,
                                           BoundaryMode::kClamp,
                                           BoundaryMode::kMirror,
                                           BoundaryMode::kConstant),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

// A 3x3 mean filter as a Kernel subclass: checks iteration, accessors,
// output(), and x()/y().
class MeanKernel : public Kernel<float> {
 public:
  MeanKernel(IterationSpace<float>& is, Accessor<float>& input)
      : Kernel(is), input_(input) {
    addAccessor(&input_);
  }
  void kernel() override {
    float sum = 0.0f;
    for (int dy = -1; dy <= 1; ++dy)
      for (int dx = -1; dx <= 1; ++dx) sum += input_(dx, dy);
    output() = sum / 9.0f;
  }

 private:
  Accessor<float>& input_;
};

TEST(KernelTest, MeanFilterMatchesDirectComputation) {
  const int n = 16;
  const HostImage<float> host = MakeNoiseImage(n, n, 77);
  Image<float> in(n, n), out(n, n);
  in.CopyFrom(host);
  BoundaryCondition<float> bc(in, 3, 3, BoundaryMode::kClamp);
  Accessor<float> acc(bc);
  IterationSpace<float> is(out);
  MeanKernel mean(is, acc);
  mean.execute();

  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      float expected = 0.0f;
      for (int dy = -1; dy <= 1; ++dy)
        for (int dx = -1; dx <= 1; ++dx) {
          const int cx = std::clamp(x + dx, 0, n - 1);
          const int cy = std::clamp(y + dy, 0, n - 1);
          expected += host(cx, cy);
        }
      expected /= 9.0f;
      ASSERT_FLOAT_EQ(out.at(x, y), expected) << x << "," << y;
    }
  }
}

class CoordKernel : public Kernel<float> {
 public:
  explicit CoordKernel(IterationSpace<float>& is) : Kernel(is) {}
  void kernel() override { output() = static_cast<float>(y() * 100 + x()); }
};

TEST(KernelTest, IterationSpaceRegionOfInterest) {
  Image<float> out(8, 8);
  for (int y = 0; y < 8; ++y)
    for (int x = 0; x < 8; ++x) out.at(x, y) = -1.0f;
  IterationSpace<float> roi(out, 2, 3, 4, 2);  // x:2..5, y:3..4
  CoordKernel coords(roi);
  coords.execute();
  EXPECT_EQ(out.at(2, 3), 302.0f);
  EXPECT_EQ(out.at(5, 4), 405.0f);
  EXPECT_EQ(out.at(0, 0), -1.0f);  // outside the ROI untouched
  EXPECT_EQ(out.at(6, 3), -1.0f);
}

TEST(ReduceTest, SumMinMax) {
  Image<float> img(4, 3);
  float expected_sum = 0.0f;
  for (int y = 0; y < 3; ++y)
    for (int x = 0; x < 4; ++x) {
      img.at(x, y) = static_cast<float>(y * 4 + x);
      expected_sum += img.at(x, y);
    }
  EXPECT_FLOAT_EQ(ReduceSum(img), expected_sum);
  EXPECT_FLOAT_EQ(ReduceMin(img), 0.0f);
  EXPECT_FLOAT_EQ(ReduceMax(img), 11.0f);
}

TEST(ReduceTest, GenericCombine) {
  Image<float> img(32, 32);
  for (int y = 0; y < 32; ++y)
    for (int x = 0; x < 32; ++x) img.at(x, y) = 1.0f;
  // Count via sum of ones.
  EXPECT_FLOAT_EQ(Reduce<float>(img, 0.0f, [](float a, float b) { return a + b; }),
                  1024.0f);
}

}  // namespace
}  // namespace hipacc::dsl
