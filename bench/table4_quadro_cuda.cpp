// Reproduces Table IV: bilateral filter on the Quadro FX 5800, CUDA backend.
#include <cstdio>

#include "common/bilateral_table.hpp"
#include "common/table.hpp"
#include "hwmodel/device_db.hpp"

int main(int argc, char** argv) {
  hipacc::support::CliParser cli =
      hipacc::bench::MakeBenchCli("table4_quadro_cuda", "Table IV: bilateral filter, Quadro FX 5800, CUDA backend");
  if (const int code = cli.HandleArgs(argc, argv); code >= 0) return code;
  hipacc::bench::BilateralTableOptions options;
  options.device = hipacc::hw::QuadroFx5800();
  options.json_out = "BENCH_table4.json";
  options.backend = hipacc::ast::Backend::kCuda;
  options.include_rapidmind = true;
  std::printf("%s\n", hipacc::bench::RunBilateralTable(
                          "Table IV: Quadro FX 5800, CUDA backend", options)
                          .c_str());
  return 0;
}
