// Pluggable target backends for the source emitter. The structural walk
// over the lowered DeviceKernel (region dispatch, scratchpad staging,
// statement/expression recursion) is shared; everything that is target
// *syntax* — kernel qualifiers, thread-index spellings, texture access,
// barriers, the CUDA/OpenCL side of the function-mapping table — goes
// through this interface. A new target implements Backend, registers
// itself, and the driver and every existing caller pick it up without
// modification.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ast/builtins.hpp"
#include "ast/kernel_ir.hpp"

namespace hipacc::codegen {

struct EmitContext;

/// Target-syntax provider consumed by the shared emitter core.
class Backend {
 public:
  virtual ~Backend() = default;

  /// CLI / registry name ("cuda", "opencl").
  virtual std::string_view name() const noexcept = 0;
  /// Human-readable language name used in the emitted header ("CUDA").
  virtual std::string_view display_name() const noexcept = 0;
  /// The ast::Backend tag lowered kernels carry for this target.
  virtual ast::Backend id() const noexcept = 0;

  /// Renders the complete kernel source using the shared emitter core
  /// parameterised by this backend's syntax hooks.
  std::string EmitKernel(const ast::DeviceKernel& kernel,
                         const EmitContext& ctx) const;

  // ---- syntax hooks --------------------------------------------------------
  /// Function qualifier introducing the kernel definition.
  virtual std::string KernelQualifier() const = 0;
  /// Parameter declaration for one buffer; nullopt removes it from the
  /// signature (CUDA texture references are globals, not parameters).
  virtual std::optional<std::string> BufferParamDecl(
      const ast::BufferParam& buf) const = 0;
  /// Extra parameters appended after the buffers (OpenCL passes dynamically
  /// initialised constant masks as __constant pointers).
  virtual std::vector<std::string> ExtraParams(
      const ast::DeviceKernel& kernel) const = 0;
  /// File-scope texture/sampler declarations.
  virtual std::string TextureDeclarations(
      const ast::DeviceKernel& kernel) const = 0;
  /// Qualifier for file-scope constant-memory arrays.
  virtual std::string ConstantQualifier() const = 0;
  /// Whether dynamically initialised constant masks are declared at file
  /// scope (CUDA: yes, filled via cudaMemcpyToSymbol; OpenCL: no, they are
  /// kernel parameters instead).
  virtual bool DeclaresDynamicConstMasks() const = 0;
  /// Qualifier declaring a scratchpad array.
  virtual std::string SmemQualifier() const = 0;
  /// Work-group barrier statement (no trailing newline).
  virtual std::string Barrier() const = 0;
  /// Local / group index spelling per dimension (0 = x, 1 = y).
  virtual std::string LocalId(int dim) const = 0;
  virtual std::string GroupId(int dim) const = 0;
  /// Spelling of one thread-index builtin.
  virtual std::string ThreadIndex(ast::ThreadIndexKind kind) const = 0;
  /// This backend's side of the function-mapping table (Section V-A).
  virtual std::string BuiltinName(const ast::BuiltinFn& fn) const = 0;
  /// Texture read. `raw_*` are the unadjusted indices (hardware address
  /// modes resolve them in the texture unit); `adj_*` carry the software
  /// boundary adjustment.
  virtual std::string TextureRead(const ast::BufferParam& buf,
                                  const std::string& raw_x,
                                  const std::string& raw_y,
                                  const std::string& adj_x,
                                  const std::string& adj_y) const = 0;
  /// Region dispatch style: goto labels (Listing 8) or an else-if chain.
  virtual bool UsesGotoDispatch() const = 0;
};

/// Built-in backends (shared singletons).
const Backend& CudaBackend();
const Backend& OpenClBackend();

/// Lookup by IR tag / registry name. Returns nullptr when unknown.
const Backend* FindBackend(ast::Backend id) noexcept;
const Backend* FindBackend(std::string_view name) noexcept;

/// All registered backends, built-ins first, in registration order.
const std::vector<const Backend*>& RegisteredBackends();

/// Plugs in an additional target; `backend` must outlive the process (use a
/// static). Registration is not thread-safe — do it during start-up.
void RegisterBackend(const Backend* backend);

}  // namespace hipacc::codegen
