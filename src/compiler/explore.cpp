#include "compiler/explore.hpp"

#include <algorithm>
#include <optional>
#include <thread>

#include "compiler/profile.hpp"
#include "support/parallel_for.hpp"

namespace hipacc::compiler {
namespace {

/// Coarse hardware-model prune (no interpreter work): a candidate that the
/// occupancy calculator already rejected never reaches ExploreConfigs, and
/// one whose boundary tiling is degenerate (opposite guard bands overlap)
/// would only fail launch validation after building the launch. Both are
/// decided from arithmetic alone.
bool PrunedByRegionGrid(const CompiledKernel& kernel,
                        const hw::KernelConfig& config, int width,
                        int height) {
  if (!kernel.device_ir.has_boundary_variants()) return false;
  return hw::ComputeRegionGrid(config, width, height,
                               kernel.device_ir.bh_window,
                               kernel.device_ir.ppt)
      .degenerate();
}

}  // namespace

Result<std::vector<ExplorePoint>> ExploreConfigurations(
    const CompiledKernel& kernel, const hw::DeviceSpec& device,
    const runtime::BindingSet& bindings, const ExploreOptions& options) {
  if (!bindings.output()) return Status::Invalid("no output image bound");
  if (options.samples_per_region < 1)
    return Status::Invalid("samples_per_region must be >= 1");
  const int width = bindings.output()->width();
  const int height = bindings.output()->height();
  const double trace_start = options.trace ? options.trace->NowMs() : 0.0;

  hw::HeuristicInput input;
  input.device = device;
  input.resources = kernel.resources;
  input.border_handling = kernel.device_ir.has_boundary_variants();
  input.window = kernel.device_ir.bh_window;
  input.image_width = width;
  input.image_height = height;

  // Candidate enumeration already applies the occupancy-calculator prune;
  // the region-grid prune removes launch-time failures before any
  // interpreter work.
  const std::vector<hw::HeuristicChoice> all = hw::ExploreConfigs(input);
  std::vector<const hw::HeuristicChoice*> candidates;
  candidates.reserve(all.size());
  for (const hw::HeuristicChoice& choice : all)
    if (!PrunedByRegionGrid(kernel, choice.config, width, height))
      candidates.push_back(&choice);

  const int pruned = static_cast<int>(all.size() - candidates.size());
  unsigned jobs = options.jobs > 0
                      ? static_cast<unsigned>(options.jobs)
                      : std::max(1u, std::thread::hardware_concurrency());
  jobs = std::min<unsigned>(
      std::max(1u, jobs),
      std::max<size_t>(1, candidates.size()));

  // Candidates are dealt round-robin so the per-worker load is balanced
  // (enumeration order grows with thread count, i.e. with cost). Each slot
  // is written by exactly one worker; merging by index keeps the result
  // independent of scheduling.
  std::vector<std::optional<ExplorePoint>> slots(candidates.size());
  const auto measure_lane = [&](int worker) {
    // Private measurement lane: own interpreter/simulator state and a
    // private output image, so concurrent candidates never write the same
    // buffer. Inputs are shared read-only.
    dsl::Image<float> lane_out(width, height);
    runtime::BindingSet lane_bindings = bindings;
    lane_bindings.Output(lane_out);
    SimulatedExecutable exe(kernel, device);
    exe.set_trace(options.trace, worker);
    for (size_t i = static_cast<size_t>(worker); i < candidates.size();
         i += jobs) {
      const hw::HeuristicChoice& candidate = *candidates[i];
      Result<sim::LaunchStats> stats = exe.Measure(
          lane_bindings, candidate.config, options.samples_per_region);
      if (!stats.ok()) continue;  // invalid at launch time: skip, like nvcc
      ExplorePoint point;
      point.config = candidate.config;
      point.ppt = kernel.device_ir.ppt;
      point.occupancy = candidate.occupancy.occupancy;
      point.border_threads = candidate.border_threads;
      point.ms = stats.value().timing.total_ms;
      point.timing = stats.value().timing;
      slots[i] = point;
    }
  };
  if (jobs <= 1)
    measure_lane(0);
  else
    ParallelFor(0, static_cast<int>(jobs), measure_lane, jobs);

  std::vector<ExplorePoint> points;
  points.reserve(slots.size());
  for (const std::optional<ExplorePoint>& slot : slots)
    if (slot) points.push_back(*slot);
  // (threads, block_x) determines block_y, so this order is total and the
  // output is reproducible regardless of measurement order.
  std::sort(points.begin(), points.end(),
            [](const ExplorePoint& a, const ExplorePoint& b) {
              if (a.config.threads() != b.config.threads())
                return a.config.threads() < b.config.threads();
              return a.config.block_x < b.config.block_x;
            });
  // A sweep is the richest profile source there is: one pass measures the
  // whole configuration space, so the reselection winner is trustworthy
  // immediately. Each point is recorded twice (two full passes) to clear
  // min_samples — the EWMA of two identical samples is the sample — and the
  // passes run worst-time-first so the fastest points carry the highest
  // last_seq: however large the sweep, the winner can never age out of the
  // freshness window on the very round that measured it.
  if (options.profiles != nullptr && !kernel.source_fingerprint.empty()) {
    const std::string key =
        MakeProfileKey(kernel.source_fingerprint, kernel.codegen, device,
                       width, height);
    std::vector<const ExplorePoint*> by_time;
    by_time.reserve(points.size());
    for (const ExplorePoint& point : points) by_time.push_back(&point);
    std::stable_sort(by_time.begin(), by_time.end(),
                     [](const ExplorePoint* a, const ExplorePoint* b) {
                       return a->ms > b->ms;
                     });
    for (int pass = 0; pass < 2; ++pass)
      for (const ExplorePoint* point : by_time)
        options.profiles->Record(
            key, ProfileObservation{point->config, point->ppt, point->ms});
  }

  if (options.trace) {
    support::Json args = support::Json::Object();
    args["candidates"] = static_cast<long long>(all.size());
    args["pruned"] = pruned;
    args["measured"] = static_cast<long long>(points.size());
    args["jobs"] = static_cast<long long>(jobs);
    args["samples_per_region"] = options.samples_per_region;
    options.trace->AddSpan("explore " + kernel.decl.name, "explore",
                           trace_start,
                           options.trace->NowMs() - trace_start,
                           std::move(args));
  }
  return points;
}

Result<FusionSweep> ExploreFusionCandidate(
    const FusionSweepStage& fused, const std::vector<FusionSweepStage>& stages,
    const hw::DeviceSpec& device, const ExploreOptions& options) {
  if (!fused.kernel || !fused.bindings)
    return Status::Invalid("fused stage is missing a kernel or bindings");
  if (stages.empty())
    return Status::Invalid("a fusion candidate replaces at least one stage");

  const auto best_ms = [](const std::vector<ExplorePoint>& points) {
    double best = points.front().ms;
    for (const ExplorePoint& p : points) best = std::min(best, p.ms);
    return best;
  };

  FusionSweep sweep;
  Result<std::vector<ExplorePoint>> fused_points =
      ExploreConfigurations(*fused.kernel, device, *fused.bindings, options);
  HIPACC_RETURN_IF_ERROR(fused_points.status());
  if (fused_points.value().empty())
    return Status::Invalid("fused kernel '" + fused.kernel->decl.name +
                           "' has no measurable configuration");
  sweep.fused = std::move(fused_points).take();
  sweep.best_fused_ms = best_ms(sweep.fused);

  for (const FusionSweepStage& stage : stages) {
    if (!stage.kernel || !stage.bindings)
      return Status::Invalid("a replaced stage is missing a kernel or "
                             "bindings");
    Result<std::vector<ExplorePoint>> points =
        ExploreConfigurations(*stage.kernel, device, *stage.bindings, options);
    HIPACC_RETURN_IF_ERROR(points.status());
    if (points.value().empty())
      return Status::Invalid("stage '" + stage.kernel->decl.name +
                             "' has no measurable configuration");
    sweep.best_unfused_ms += best_ms(points.value());
    sweep.stages.push_back(std::move(points).take());
  }
  sweep.speedup = sweep.best_unfused_ms / sweep.best_fused_ms;
  return sweep;
}

support::Json FusionSweepJson(const FusionSweep& sweep) {
  support::Json doc = support::Json::Object();
  doc["best_fused_ms"] = sweep.best_fused_ms;
  doc["best_unfused_ms"] = sweep.best_unfused_ms;
  doc["speedup"] = sweep.speedup;
  support::Json fused = support::Json::Array();
  for (const ExplorePoint& p : sweep.fused) fused.push_back(ExplorePointJson(p));
  doc["fused"] = std::move(fused);
  support::Json stages = support::Json::Array();
  for (const std::vector<ExplorePoint>& stage : sweep.stages) {
    support::Json points = support::Json::Array();
    for (const ExplorePoint& p : stage) points.push_back(ExplorePointJson(p));
    stages.push_back(std::move(points));
  }
  doc["stages"] = std::move(stages);
  return doc;
}

support::Json ExplorePointJson(const ExplorePoint& point) {
  support::Json j = support::Json::Object();
  j["config"] = sim::ConfigJson(point.config);
  j["ppt"] = point.ppt;
  j["occupancy"] = point.occupancy;
  j["border_threads"] = point.border_threads;
  j["ms"] = point.ms;
  j["timing"] = sim::TimingJson(point.timing);
  return j;
}

support::Json ExploreReportJson(const CompiledKernel& kernel,
                                const hw::DeviceSpec& device, int image_width,
                                int image_height,
                                const std::vector<ExplorePoint>& points) {
  support::Json doc = support::Json::Object();
  doc["kernel"] = kernel.decl.name;
  doc["device"] = device.name;
  doc["backend"] = to_string(kernel.device_ir.backend);
  support::Json image = support::Json::Object();
  image["width"] = image_width;
  image["height"] = image_height;
  doc["image"] = std::move(image);
  support::Json heuristic = support::Json::Object();
  heuristic["config"] = sim::ConfigJson(kernel.config.config);
  heuristic["occupancy"] = kernel.config.occupancy.occupancy;
  heuristic["border_threads"] = kernel.config.border_threads;
  doc["heuristic"] = std::move(heuristic);
  support::Json array = support::Json::Array();
  for (const ExplorePoint& point : points)
    array.push_back(ExplorePointJson(point));
  doc["points"] = std::move(array);
  return doc;
}

}  // namespace hipacc::compiler
