# Empty compiler generated dependencies file for table3_tesla_opencl.
# This may be replaced when dependencies are built.
