file(REMOVE_RECURSE
  "CMakeFiles/support_test.dir/parallel_for_test.cpp.o"
  "CMakeFiles/support_test.dir/parallel_for_test.cpp.o.d"
  "CMakeFiles/support_test.dir/rng_test.cpp.o"
  "CMakeFiles/support_test.dir/rng_test.cpp.o.d"
  "CMakeFiles/support_test.dir/span2d_test.cpp.o"
  "CMakeFiles/support_test.dir/span2d_test.cpp.o.d"
  "CMakeFiles/support_test.dir/status_test.cpp.o"
  "CMakeFiles/support_test.dir/status_test.cpp.o.d"
  "CMakeFiles/support_test.dir/string_utils_test.cpp.o"
  "CMakeFiles/support_test.dir/string_utils_test.cpp.o.d"
  "support_test"
  "support_test.pdb"
  "support_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
