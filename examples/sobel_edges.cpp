// Edge detection pipeline built from three DSL kernels: Sobel derivative
// convolutions in x and y, a point operator combining them into a gradient
// magnitude, and a threshold — the classic vessel-boundary extraction step.
// Demonstrates chaining kernels over shared Images with different accessors.
#include <cmath>
#include <cstdio>

#include "hipacc.hpp"

using namespace hipacc;

namespace {

/// Point operator: magnitude of two gradient images.
class GradientMagnitude : public dsl::Kernel<float> {
 public:
  GradientMagnitude(dsl::IterationSpace<float>& is, dsl::Accessor<float>& gx,
                    dsl::Accessor<float>& gy)
      : Kernel(is), gx_(gx), gy_(gy) {
    addAccessor(&gx_);
    addAccessor(&gy_);
  }
  void kernel() override {
    output() = std::sqrt(gx_() * gx_() + gy_() * gy_());
  }

 private:
  dsl::Accessor<float>& gx_;
  dsl::Accessor<float>& gy_;
};

/// Point operator: binary threshold.
class Threshold : public dsl::Kernel<float> {
 public:
  Threshold(dsl::IterationSpace<float>& is, dsl::Accessor<float>& input,
            float level)
      : Kernel(is), input_(input), level_(level) {
    addAccessor(&input_);
  }
  void kernel() override { output() = input_() > level_ ? 1.0f : 0.0f; }

 private:
  dsl::Accessor<float>& input_;
  float level_;
};

}  // namespace

int main() {
  const int n = 512;
  const HostImage<float> host_in = MakeAngiogramPhantom(n, n, 0.03f, 9);

  dsl::Image<float> in(n, n), grad_x(n, n), grad_y(n, n), mag(n, n), edges(n, n);
  in.CopyFrom(host_in);

  // Sobel derivatives: same input image, one BoundaryCondition, two masks.
  dsl::Mask<float> mask_x(3, 3), mask_y(3, 3);
  mask_x = ops::SobelMaskX();
  mask_y = ops::SobelMaskY();
  dsl::BoundaryCondition<float> bc(in, 3, 3, ast::BoundaryMode::kClamp);
  dsl::Accessor<float> acc(bc);

  dsl::IterationSpace<float> is_x(grad_x);
  ops::Convolution sobel_x(is_x, acc, mask_x);
  sobel_x.execute();

  dsl::IterationSpace<float> is_y(grad_y);
  ops::Convolution sobel_y(is_y, acc, mask_y);
  sobel_y.execute();

  // Gradient magnitude (point operator on two inputs).
  dsl::Accessor<float> acc_gx(grad_x), acc_gy(grad_y);
  dsl::IterationSpace<float> is_mag(mag);
  GradientMagnitude magnitude(is_mag, acc_gx, acc_gy);
  magnitude.execute();

  // Auto threshold at 4x the mean gradient (global operator feeds a point
  // operator's parameter — the three operator classes of Section I).
  const float mean_grad =
      dsl::ReduceSum(mag) / static_cast<float>(n) / static_cast<float>(n);
  dsl::Accessor<float> acc_mag(mag);
  dsl::IterationSpace<float> is_edges(edges);
  Threshold threshold(is_edges, acc_mag, 4.0f * mean_grad);
  threshold.execute();

  const float edge_fraction =
      dsl::ReduceSum(edges) / static_cast<float>(n) / static_cast<float>(n);
  std::printf("Sobel edge extraction on a %dx%d angiogram\n", n, n);
  std::printf("  mean gradient magnitude: %.5f\n", mean_grad);
  std::printf("  max gradient magnitude:  %.5f\n", dsl::ReduceMax(mag));
  std::printf("  edge pixels: %.2f%%\n", 100.0f * edge_fraction);

  (void)WritePgm(host_in, ExampleOutputPath("sobel_in.pgm"));
  (void)WritePgm(mag.getData(), ExampleOutputPath("sobel_magnitude.pgm"));
  (void)WritePgm(edges.getData(), ExampleOutputPath("sobel_edges.pgm"));
  std::printf("wrote %s\n",
              ExampleOutputPath("sobel_{in,magnitude,edges}.pgm").c_str());
  return 0;
}
