// Deterministic content hashing for cache keys: 64-bit FNV-1a over a
// canonical byte stream. The mixer is endian- and platform-stable because
// every scalar is serialised through a fixed-width integer representation —
// two processes (or two runs) hashing the same logical content always agree.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace hipacc::support {

/// Incremental FNV-1a (64-bit). Collisions are guarded against at the cache
/// layer by storing the canonical key string alongside the digest — the hash
/// is an index, never the sole identity.
class Fnv1a {
 public:
  static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ull;
  static constexpr std::uint64_t kPrime = 0x100000001b3ull;

  Fnv1a& MixBytes(const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      digest_ ^= bytes[i];
      digest_ *= kPrime;
    }
    return *this;
  }

  /// Length-prefixed so that Mix("ab") + Mix("c") != Mix("a") + Mix("bc").
  Fnv1a& Mix(std::string_view text) {
    Mix(static_cast<std::uint64_t>(text.size()));
    return MixBytes(text.data(), text.size());
  }

  Fnv1a& Mix(std::uint64_t value) {
    unsigned char bytes[8];
    for (int i = 0; i < 8; ++i)
      bytes[i] = static_cast<unsigned char>(value >> (8 * i));
    return MixBytes(bytes, sizeof(bytes));
  }

  Fnv1a& Mix(long long value) { return Mix(static_cast<std::uint64_t>(value)); }
  Fnv1a& Mix(int value) {
    return Mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(value)));
  }
  Fnv1a& Mix(bool value) { return Mix(std::uint64_t{value ? 1u : 0u}); }

  Fnv1a& Mix(double value) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    return Mix(bits);
  }
  Fnv1a& Mix(float value) { return Mix(static_cast<double>(value)); }

  std::uint64_t digest() const noexcept { return digest_; }

  /// 16-char lowercase hex form, used for trace labels.
  std::string hex() const {
    static const char* kDigits = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 0; i < 16; ++i)
      out[15 - i] = kDigits[(digest_ >> (4 * i)) & 0xf];
    return out;
  }

 private:
  std::uint64_t digest_ = kOffsetBasis;
};

}  // namespace hipacc::support
