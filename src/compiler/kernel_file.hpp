// Textual kernel description format for the command-line compiler driver —
// the offline equivalent of the compiler-known C++ classes. A `.hipacc`
// file carries the access/execute metadata as header directives and the
// kernel() body verbatim:
//
//     kernel bilateral
//     param int sigma_d
//     param int sigma_r
//     accessor Input 13 13 clamp
//     mask CMask 13 13
//     values 0.018 0.082 ...          # optional: static coefficients
//     body
//     float d = 0.0f;
//     ...
//     output() = p / d;
//
// Directives: kernel <name>; param <float|int|bool> <name>;
// accessor <name> <size_x> <size_y> <undefined|clamp|repeat|mirror|constant>
// [<constant_value>]; mask <name> <size_x> <size_y>; values <floats...>
// (attaches to the preceding mask); body (everything after is kernel text).
// Lines starting with '#' are comments.
#pragma once

#include "frontend/parser.hpp"
#include "support/status.hpp"

namespace hipacc::compiler {

/// Parses the `.hipacc` kernel description format.
Result<frontend::KernelSource> ParseKernelFile(const std::string& text);

/// Reads and parses a kernel description from disk.
Result<frontend::KernelSource> LoadKernelFile(const std::string& path);

}  // namespace hipacc::compiler
