file(REMOVE_RECURSE
  "libhipacc_frontend.a"
)
