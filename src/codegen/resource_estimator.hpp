// Per-kernel resource-usage estimation — the stand-in for compiling the
// generated source with nvcc / the OpenCL runtime and reading back register
// and shared-memory counts (paper Section V-C). The estimate feeds the
// occupancy calculator; it only needs to be monotone and in the right range,
// not bit-exact against ptxas.
#pragma once

#include "ast/kernel_ir.hpp"
#include "hwmodel/occupancy.hpp"

namespace hipacc::codegen {

/// Estimates registers per thread and shared-memory demand of a lowered
/// kernel. Registers: a fixed overhead for indices and address arithmetic,
/// plus live locals, plus temporaries from the deepest expression, plus
/// guard predicates for boundary handling.
hw::KernelResources EstimateResources(const ast::DeviceKernel& kernel);

}  // namespace hipacc::codegen
