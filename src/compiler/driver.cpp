#include "compiler/driver.hpp"

#include "codegen/lower.hpp"
#include "codegen/resource_estimator.hpp"
#include "sim/trace.hpp"
#include "support/log.hpp"
#include "support/string_utils.hpp"

namespace hipacc::compiler {
namespace {

Result<CompiledKernel> Finish(ast::KernelDecl decl,
                              const CompileOptions& options) {
  CompiledKernel out;
  out.decl = std::move(decl);

  {
    sim::TraceSpan span(options.trace, "lower " + out.decl.name, "compile");
    Result<ast::DeviceKernel> lowered =
        codegen::LowerKernel(out.decl, options.codegen);
    if (!lowered.ok()) return lowered.status();
    out.device_ir = std::move(lowered).take();
  }

  {
    sim::TraceSpan span(options.trace, "estimate " + out.decl.name, "compile");
    out.resources = codegen::EstimateResources(out.device_ir);
  }

  {
    sim::TraceSpan span(options.trace, "select_config " + out.decl.name,
                        "compile");
    if (options.forced_config) {
      out.config.config = *options.forced_config;
      out.config.occupancy = hw::ComputeOccupancy(
          options.device, out.config.config, out.resources);
      if (!out.config.occupancy.valid)
        return Status::Exhausted(StrFormat(
            "forced configuration %dx%d is invalid on %s: %s",
            out.config.config.block_x, out.config.config.block_y,
            options.device.name.c_str(), out.config.occupancy.reason.c_str()));
    } else {
      hw::HeuristicInput input;
      input.device = options.device;
      input.resources = out.resources;
      input.border_handling = out.device_ir.has_boundary_variants();
      input.window = out.device_ir.bh_window;
      input.image_width = options.image_width;
      input.image_height = options.image_height;
      Result<hw::HeuristicChoice> choice = hw::SelectConfig(input);
      if (!choice.ok()) return choice.status();
      out.config = std::move(choice).take();
    }
  }

  {
    sim::TraceSpan span(options.trace, "emit " + out.decl.name, "compile");
    codegen::EmitContext ctx;
    ctx.config = out.config.config;
    ctx.image_width = options.image_width;
    ctx.image_height = options.image_height;
    out.source = codegen::EmitKernelSource(out.device_ir, ctx);
  }

  LogInfo(StrFormat("compiled kernel '%s' for %s/%s: config %dx%d, "
                    "%d regs/thread, occupancy %.0f%%",
                    out.decl.name.c_str(), options.device.name.c_str(),
                    to_string(options.codegen.backend),
                    out.config.config.block_x, out.config.config.block_y,
                    out.resources.regs_per_thread,
                    100.0 * out.config.occupancy.occupancy));
  return out;
}

}  // namespace

Result<CompiledKernel> Compile(const frontend::KernelSource& source,
                               const CompileOptions& options) {
  Result<ast::KernelDecl> decl = [&] {
    sim::TraceSpan span(options.trace, "parse " + source.name, "compile");
    return frontend::ParseKernel(source);
  }();
  if (!decl.ok()) return decl.status();
  return Finish(std::move(decl).take(), options);
}

Result<CompiledKernel> Retarget(const CompiledKernel& kernel,
                                const CompileOptions& options) {
  return Finish(kernel.decl, options);
}

}  // namespace hipacc::compiler
