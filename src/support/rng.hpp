// Deterministic, seedable RNG (xoshiro256**) so tests, examples, and
// benchmark workloads are reproducible across platforms, unlike
// std::mt19937's distribution functions which are implementation-defined.
#pragma once

#include <cstdint>

namespace hipacc {

/// xoshiro256** by Blackman & Vigna; small, fast, and high quality.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { Seed(seed); }

  /// Re-seeds via splitmix64 so even seeds 0 and 1 diverge immediately.
  void Seed(std::uint64_t seed);

  /// Next 64 uniformly distributed bits.
  std::uint64_t Next();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform float in [0, 1).
  float NextFloat() { return static_cast<float>(NextDouble()); }

  /// Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
  int NextInt(int lo, int hi);

  /// Standard normal via Box-Muller (one value per call, no caching).
  double NextGaussian();

 private:
  std::uint64_t s_[4];
};

}  // namespace hipacc
