# Empty compiler generated dependencies file for bilateral_denoise.
# This may be replaced when dependencies are built.
