#include "baselines/opencv_like.hpp"

#include "dsl/image.hpp"
#include "support/string_utils.hpp"

namespace hipacc::baselines {
namespace {

using namespace hipacc::ast;

ExprPtr Gx() { return ast::ThreadIndex(ThreadIndexKind::kGlobalIdX); }
ExprPtr Gy() { return ast::ThreadIndex(ThreadIndexKind::kGlobalIdY); }

}  // namespace

ast::DeviceKernel BuildSeparableKernel(int taps, ast::BoundaryMode mode,
                                       int ppt, bool horizontal,
                                       ast::Backend backend) {
  HIPACC_CHECK(taps > 0 && taps % 2 == 1 && ppt >= 1);
  const int half = taps / 2;

  DeviceKernel dk;
  dk.name = StrFormat("opencv_%s_filter_ppt%d",
                      horizontal ? "row" : "col", ppt);
  dk.backend = backend;
  dk.boundary = mode;
  dk.params = {{"_iw", ScalarType::kInt}, {"_ih", ScalarType::kInt}};
  dk.buffers = {{"Src", MemSpace::kGlobal, false}, {"_out", MemSpace::kGlobal, true}};

  MaskInfo mask;
  mask.name = "K";
  mask.size_x = taps;
  mask.size_y = 1;
  mask.static_values.assign(static_cast<size_t>(taps), 0.0f);  // bound later
  dk.const_masks.push_back(mask);

  // Uniform per-pixel guards in the filtered dimension only (OpenCV's
  // row/column filters check exactly their own axis).
  RegionChecks checks;
  if (horizontal) {
    checks.lo_x = checks.hi_x = mode != BoundaryMode::kUndefined;
  } else {
    checks.lo_y = checks.hi_y = mode != BoundaryMode::kUndefined;
  }

  // Pixel coordinate covered by loop iteration p of this thread. OpenCV
  // interleaves the PPT pixels at blockDim stride so each warp read stays
  // coalesced: pixel = blockIdx*blockDim*ppt + p*blockDim + threadIdx.
  auto pixel_x = [&](ExprPtr p) {
    if (!horizontal) return Gx();
    ExprPtr base = Binary(
        BinaryOp::kMul, ast::ThreadIndex(ThreadIndexKind::kBlockIdxX),
        Binary(BinaryOp::kMul, ast::ThreadIndex(ThreadIndexKind::kBlockDimX),
               IntLit(ppt)));
    ExprPtr offset = Binary(
        BinaryOp::kMul, std::move(p), ast::ThreadIndex(ThreadIndexKind::kBlockDimX));
    return Binary(BinaryOp::kAdd,
                  Binary(BinaryOp::kAdd, std::move(base), std::move(offset)),
                  ast::ThreadIndex(ThreadIndexKind::kThreadIdxX));
  };
  auto pixel_y = [&](ExprPtr p) {
    if (horizontal) return Gy();
    ExprPtr base = Binary(
        BinaryOp::kMul, ast::ThreadIndex(ThreadIndexKind::kBlockIdxY),
        Binary(BinaryOp::kMul, ast::ThreadIndex(ThreadIndexKind::kBlockDimY),
               IntLit(ppt)));
    ExprPtr offset = Binary(
        BinaryOp::kMul, std::move(p), ast::ThreadIndex(ThreadIndexKind::kBlockDimY));
    return Binary(BinaryOp::kAdd,
                  Binary(BinaryOp::kAdd, std::move(base), std::move(offset)),
                  ast::ThreadIndex(ThreadIndexKind::kThreadIdxY));
  };

  // Inner accumulation loop over taps.
  ExprPtr tap_x = horizontal
                      ? Binary(BinaryOp::kAdd, pixel_x(VarRef("p", ScalarType::kInt)),
                               VarRef("t", ScalarType::kInt))
                      : pixel_x(VarRef("p", ScalarType::kInt));
  ExprPtr tap_y = horizontal
                      ? pixel_y(VarRef("p", ScalarType::kInt))
                      : Binary(BinaryOp::kAdd, pixel_y(VarRef("p", ScalarType::kInt)),
                               VarRef("t", ScalarType::kInt));
  ExprPtr coeff = ast::MemRead(
      MemSpace::kConstant, "K",
      Binary(BinaryOp::kAdd, VarRef("t", ScalarType::kInt), IntLit(half)),
      IntLit(0), BoundaryMode::kUndefined, {});
  ExprPtr sample = ast::MemRead(MemSpace::kGlobal, "Src", std::move(tap_x),
                                std::move(tap_y), mode, checks, 0.0f);
  StmtPtr accumulate = Assign(
      "sum", AssignOp::kAddAssign,
      Binary(BinaryOp::kMul, std::move(coeff), std::move(sample)));
  StmtPtr tap_loop =
      For("t", IntLit(-half), IntLit(half), 1, Block({accumulate}));

  // Guard: the trailing thread's last pixels may fall outside the image.
  ExprPtr in_bounds =
      horizontal
          ? Binary(BinaryOp::kLt, pixel_x(VarRef("p", ScalarType::kInt)),
                   VarRef("_iw", ScalarType::kInt))
          : Binary(BinaryOp::kLt, pixel_y(VarRef("p", ScalarType::kInt)),
                   VarRef("_ih", ScalarType::kInt));
  StmtPtr write = ast::MemWrite(MemSpace::kGlobal, "_out",
                                pixel_x(VarRef("p", ScalarType::kInt)),
                                pixel_y(VarRef("p", ScalarType::kInt)),
                                VarRef("sum", ScalarType::kFloat));
  StmtPtr per_pixel =
      Block({Decl(ScalarType::kFloat, "sum", FloatLit(0.0)), tap_loop,
             If(std::move(in_bounds), std::move(write))});

  // OpenCV's filter engines run a heavyweight per-thread prologue — shared
  // tile staging offsets, alignment handling, block-border set-up — before
  // the first output pixel. Reproduce that issue cost with the equivalent
  // index arithmetic; amortising it over PPT outputs is precisely why
  // OpenCV maps eight pixels to one thread.
  std::vector<StmtPtr> prologue;
  ExprPtr running = ast::ThreadIndex(ThreadIndexKind::kThreadIdxX);
  for (int i = 0; i < 12; ++i) {
    running = Binary(
        BinaryOp::kAdd,
        Binary(BinaryOp::kMul, std::move(running),
               ast::ThreadIndex(ThreadIndexKind::kBlockDimX)),
        Binary(BinaryOp::kAdd, ast::ThreadIndex(ThreadIndexKind::kBlockIdxX),
               IntLit(i)));
    prologue.push_back(
        Decl(ScalarType::kInt, StrFormat("_setup%d", i), running));
    running = VarRef(StrFormat("_setup%d", i), ScalarType::kInt);
  }

  std::vector<StmtPtr> stmts = std::move(prologue);
  if (ppt == 1) {
    stmts.push_back(Decl(ScalarType::kInt, "p", IntLit(0)));
    stmts.push_back(per_pixel);
  } else {
    stmts.push_back(For("p", IntLit(0), IntLit(ppt - 1), 1, per_pixel));
  }

  dk.variants.push_back({Region::kInterior, Block(std::move(stmts))});
  return dk;
}

namespace {

int CeilDiv(int a, int b) { return (a + b - 1) / b; }

sim::Launch MakeLaunch(const ast::DeviceKernel& kernel, bool horizontal,
                       int ppt, dsl::Image<float>& src,
                       dsl::Image<float>& dst,
                       const std::vector<float>& mask1d,
                       hw::KernelConfig config) {
  sim::Launch launch;
  launch.kernel = &kernel;
  launch.config = config;
  // Interleaved PPT mapping: a block covers blockDim*ppt consecutive pixels
  // in the filtered dimension, so the thread space is whole blocks (trailing
  // threads are masked by the per-pixel image-extent guard in the kernel).
  if (horizontal) {
    launch.width = CeilDiv(src.width(), config.block_x * ppt) * config.block_x;
    launch.height = src.height();
  } else {
    launch.width = src.width();
    launch.height =
        CeilDiv(src.height(), config.block_y * ppt) * config.block_y;
  }
  launch.buffers.push_back({"Src", src.span().data(), src.width(),
                            src.height(), src.stride(), false});
  launch.buffers.push_back({"_out", dst.span().data(), dst.width(),
                            dst.height(), dst.stride(), true});
  launch.const_masks["K"] = mask1d;
  launch.scalar_args["_iw"] = src.width();
  launch.scalar_args["_ih"] = src.height();
  return launch;
}

}  // namespace

Result<HostImage<float>> OpenCvLikeEngine::Run(const HostImage<float>& src,
                                               const std::vector<float>& mask1d,
                                               ast::BoundaryMode mode,
                                               int ppt) const {
  const int taps = static_cast<int>(mask1d.size());
  const ast::DeviceKernel row =
      BuildSeparableKernel(taps, mode, ppt, /*horizontal=*/true, backend_);
  const ast::DeviceKernel col =
      BuildSeparableKernel(taps, mode, ppt, /*horizontal=*/false, backend_);

  dsl::Image<float> d_src(src.width(), src.height());
  dsl::Image<float> d_tmp(src.width(), src.height());
  dsl::Image<float> d_dst(src.width(), src.height());
  d_src.CopyFrom(src);

  const hw::KernelConfig config{128, 1};
  sim::Launch row_launch = MakeLaunch(row, true, ppt, d_src, d_tmp, mask1d, config);
  Result<sim::LaunchStats> row_stats = simulator_.Execute(row_launch);
  if (!row_stats.ok()) return row_stats.status();

  sim::Launch col_launch = MakeLaunch(col, false, ppt, d_tmp, d_dst, mask1d, config);
  Result<sim::LaunchStats> col_stats = simulator_.Execute(col_launch);
  if (!col_stats.ok()) return col_stats.status();

  return d_dst.getData();
}

Result<SeparableTiming> OpenCvLikeEngine::Measure(
    int width, int height, const std::vector<float>& mask1d,
    ast::BoundaryMode mode, int ppt, hw::KernelConfig config) const {
  const int taps = static_cast<int>(mask1d.size());
  const ast::DeviceKernel row =
      BuildSeparableKernel(taps, mode, ppt, /*horizontal=*/true, backend_);
  const ast::DeviceKernel col =
      BuildSeparableKernel(taps, mode, ppt, /*horizontal=*/false, backend_);

  dsl::Image<float> d_src(width, height);
  dsl::Image<float> d_tmp(width, height);
  dsl::Image<float> d_dst(width, height);

  sim::Launch row_launch = MakeLaunch(row, true, ppt, d_src, d_tmp, mask1d, config);
  Result<sim::LaunchStats> row_stats = simulator_.Measure(row_launch);
  if (!row_stats.ok()) return row_stats.status();

  sim::Launch col_launch = MakeLaunch(col, false, ppt, d_tmp, d_dst, mask1d, config);
  Result<sim::LaunchStats> col_stats = simulator_.Measure(col_launch);
  if (!col_stats.ok()) return col_stats.status();

  SeparableTiming t;
  t.row_ms = row_stats.value().timing.total_ms;
  t.col_ms = col_stats.value().timing.total_ms;
  t.total_ms = t.row_ms + t.col_ms;
  return t;
}

}  // namespace hipacc::baselines
