# CMake generated Testfile for 
# Source directory: /root/repo/tests/integration
# Build directory: /root/repo/build/tests/integration
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/integration/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/integration/ops_test[1]_include.cmake")
include("/root/repo/build/tests/integration/explore_test[1]_include.cmake")
include("/root/repo/build/tests/integration/pyramid_test[1]_include.cmake")
include("/root/repo/build/tests/integration/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/integration/kernel_file_test[1]_include.cmake")
include("/root/repo/build/tests/integration/claims_test[1]_include.cmake")
