#include "sim/simulator.hpp"

#include <algorithm>
#include <cstdint>
#include <mutex>

#include "sim/bytecode.hpp"
#include "sim/interpreter.hpp"
#include "sim/jit/cache.hpp"
#include "sim/jit/native_runner.hpp"
#include "sim/trace.hpp"
#include "sim/vm.hpp"
#include "support/parallel_for.hpp"
#include "support/string_utils.hpp"

namespace hipacc::sim {

const ProgramSet* Simulator::PreparePrograms(const Launch& launch) const {
  if (options_.engine == ExecEngine::kAst) return nullptr;
  if (launch.programs) return launch.programs;
  if (programs_kernel_ != launch.kernel) {
    programs_kernel_ = launch.kernel;
    programs_cache_.reset();
    Result<std::shared_ptr<const ProgramSet>> compiled =
        CompileToBytecode(*launch.kernel);
    if (compiled.ok()) {
      programs_cache_ = std::move(compiled).take();
      if (trace_) {
        trace_->IncrementCounter("bytecode.programs",
                                 static_cast<long long>(
                                     programs_cache_->programs.size()));
        trace_->IncrementCounter("bytecode.instructions",
                                 programs_cache_->total_instructions);
        trace_->IncrementCounter(
            "bytecode.compile_us",
            static_cast<long long>(programs_cache_->compile_ms * 1000.0));
      }
    } else if (trace_) {
      trace_->IncrementCounter("bytecode.fallback");
    }
  }
  return programs_cache_.get();
}

double Simulator::IssueScale(const Launch& launch) const {
  double scale = launch.kernel->backend == ast::Backend::kOpenCL
                     ? device_.opencl_issue_overhead
                     : 1.0;
  // VLIW vectorization (Section VIII outlook): packed bundles fill the
  // co-issue lanes that scalar code leaves idle. Real packers reach roughly
  // 60% lane utilisation on image kernels, so the issue cost shrinks by
  // 0.6 * lanes rather than the full lane count.
  if (launch.kernel->vliw_vectorized && device_.vliw_lanes() > 1)
    scale /= 0.6 * device_.vliw_lanes();
  return scale;
}

const hw::KernelResources& Simulator::Resources(const Launch& launch) const {
  if (resources_kernel_ != launch.kernel) {
    resources_cache_ = codegen::EstimateResources(*launch.kernel);
    resources_kernel_ = launch.kernel;
  }
  return resources_cache_;
}

hw::OccupancyResult Simulator::Occupancy(const Launch& launch) const {
  return hw::ComputeOccupancy(device_, launch.config, Resources(launch));
}

Status Simulator::Validate(const Launch& launch) const {
  if (!launch.kernel) return Status::Invalid("launch without kernel");
  if (launch.width <= 0 || launch.height <= 0)
    return Status::Invalid("empty iteration space");
  for (const auto& buf : launch.kernel->buffers) {
    if (!launch.FindBuffer(buf.name))
      return Status::Invalid("buffer not bound: " + buf.name);
  }
  for (const auto& mask : launch.kernel->const_masks) {
    const auto it = launch.const_masks.find(mask.name);
    if (it == launch.const_masks.end())
      return Status::Invalid("constant mask not bound: " + mask.name);
    if (static_cast<int>(it->second.size()) != mask.size_x * mask.size_y)
      return Status::Invalid("constant mask size mismatch: " + mask.name);
  }
  const hw::OccupancyResult occ = Occupancy(launch);
  if (!occ.valid)
    return Status::Exhausted(StrFormat(
        "kernel launch error on %s: %s", device_.name.c_str(),
        occ.reason.c_str()));
  if (launch.kernel->has_boundary_variants()) {
    const hw::RegionGrid rg = hw::ComputeRegionGrid(
        launch.config, launch.width, launch.height, launch.kernel->bh_window,
        launch.kernel->ppt);
    if (rg.degenerate())
      return Status::Invalid(StrFormat(
          "image %dx%d too small for a %dx%d window with a %dx%d "
          "configuration: boundary regions would overlap (recompile with "
          "uniform guards)",
          launch.width, launch.height, launch.kernel->bh_window.size_x(),
          launch.kernel->bh_window.size_y(), launch.config.block_x,
          launch.config.block_y));
  }
  return Status::Ok();
}

Result<LaunchStats> Simulator::Execute(const Launch& launch) const {
  HIPACC_RETURN_IF_ERROR(Validate(launch));
  const double trace_start = trace_ ? trace_->NowMs() : 0.0;
  LaunchStats stats;
  stats.occupancy = Occupancy(launch);
  stats.region_grid = hw::ComputeRegionGrid(
      launch.config, launch.width, launch.height, launch.kernel->bh_window,
      launch.kernel->ppt);

  const ProgramSet* programs = PreparePrograms(launch);
  const jit::NativeProgram* native =
      programs && options_.engine == ExecEngine::kNative
          ? jit::AcquireNative(*programs, options_.jit_threshold, trace_)
          : nullptr;
  // With engine=native but the tier still cold (or failed), blocks run on
  // the VM's threaded dispatcher instead of the portable switch.
  const VmDispatch dispatch = options_.engine == ExecEngine::kNative
                                  ? VmDispatch::kThreaded
                                  : VmDispatch::kSwitch;
  if (trace_)
    trace_->IncrementCounter(native     ? "sim.launch.native"
                             : programs ? "sim.launch.bytecode"
                                        : "sim.launch.ast");
  const hw::GridDim grid = stats.region_grid.grid;
  std::mutex merge_mutex;
  Metrics total;
  std::uint64_t executed_insns = 0;
  Status first_error = Status::Ok();
  ParallelFor(0, grid.blocks_y, [&](int by) {
    Metrics row_metrics;
    std::uint64_t row_insns = 0;
    Status row_status = Status::Ok();
    for (int bx = 0; bx < grid.blocks_x && row_status.ok(); ++bx)
      row_status =
          native ? jit::RunBlockNative(launch, *programs, *native, device_,
                                       bx, by, &row_metrics, &row_insns)
          : programs
              ? RunBlockBytecode(launch, *programs, device_, bx, by,
                                 &row_metrics, &row_insns, dispatch)
              : RunBlock(launch, device_, bx, by, &row_metrics);
    const std::lock_guard<std::mutex> lock(merge_mutex);
    total += row_metrics;
    executed_insns += row_insns;
    if (!row_status.ok() && first_error.ok()) first_error = row_status;
  });
  HIPACC_RETURN_IF_ERROR(first_error);
  if (trace_ && executed_insns)
    trace_->IncrementCounter("bytecode.executed_insns",
                             static_cast<long long>(executed_insns));
  stats.metrics = total;
  stats.timing = ModelTime(total, device_, stats.occupancy, IssueScale(launch));
  if (trace_)
    trace_->RecordLaunch(launch.kernel->name, launch.config, stats,
                         trace_start, trace_->NowMs() - trace_start,
                         launch.epoch != 0 ? static_cast<int>(launch.epoch)
                                            : trace_tid_);
  return stats;
}

Result<LaunchStats> Simulator::Measure(const Launch& launch,
                                       int samples_per_region) const {
  HIPACC_RETURN_IF_ERROR(Validate(launch));
  const double trace_start = trace_ ? trace_->NowMs() : 0.0;
  LaunchStats stats;
  stats.sampled = true;
  stats.occupancy = Occupancy(launch);
  stats.region_grid = hw::ComputeRegionGrid(
      launch.config, launch.width, launch.height, launch.kernel->bh_window,
      launch.kernel->ppt);
  const hw::RegionGrid& rg = stats.region_grid;
  const hw::GridDim grid = rg.grid;

  // Count blocks per region and pick up to `samples_per_region` sample
  // positions spread across each region.
  struct RegionSample {
    long long population = 0;
    std::vector<std::pair<int, int>> samples;
  };
  std::map<ast::Region, RegionSample> regions;
  // Representative coordinates: scan the grid border bands exhaustively is
  // too expensive; instead enumerate candidate rows/cols per band.
  auto band_coords = [](int band_lo, int band_hi_start, int count,
                        int size) -> std::vector<int> {
    std::vector<int> coords;
    for (int i = 0; i < band_lo && i < size; ++i) coords.push_back(i);
    for (int i = std::max(0, band_hi_start); i < size; ++i) coords.push_back(i);
    // Interior representatives: near the start, middle, end.
    const int lo = band_lo;
    const int hi = std::max(lo, band_hi_start - 1);
    coords.push_back(std::min(size - 1, lo));
    coords.push_back(std::min(size - 1, (lo + hi) / 2));
    coords.push_back(std::min(size - 1, hi));
    (void)count;
    return coords;
  };
  const std::vector<int> xs = band_coords(
      rg.band_left, grid.blocks_x - rg.band_right, 3, grid.blocks_x);
  const std::vector<int> ys = band_coords(
      rg.band_top, grid.blocks_y - rg.band_bottom, 3, grid.blocks_y);

  // Region populations (exact, computed from the band arithmetic).
  const long long ix = std::max(0, grid.blocks_x - rg.band_left - rg.band_right);
  const long long iy = std::max(0, grid.blocks_y - rg.band_top - rg.band_bottom);
  auto population = [&](ast::Region region) -> long long {
    using R = ast::Region;
    switch (region) {
      case R::kTopLeft: return static_cast<long long>(rg.band_left) * rg.band_top;
      case R::kTop: return ix * rg.band_top;
      case R::kTopRight: return static_cast<long long>(rg.band_right) * rg.band_top;
      case R::kLeft: return static_cast<long long>(rg.band_left) * iy;
      case R::kInterior: return ix * iy;
      case R::kRight: return static_cast<long long>(rg.band_right) * iy;
      case R::kBottomLeft: return static_cast<long long>(rg.band_left) * rg.band_bottom;
      case R::kBottom: return ix * rg.band_bottom;
      case R::kBottomRight: return static_cast<long long>(rg.band_right) * rg.band_bottom;
    }
    return 0;
  };

  const bool has_regions = launch.kernel->has_boundary_variants();
  for (const int by : ys) {
    for (const int bx : xs) {
      if (bx < 0 || bx >= grid.blocks_x || by < 0 || by >= grid.blocks_y)
        continue;
      const ast::Region region =
          has_regions ? rg.RegionOf(bx, by) : ast::Region::kInterior;
      RegionSample& rs = regions[region];
      if (static_cast<int>(rs.samples.size()) >= samples_per_region) continue;
      if (std::find(rs.samples.begin(), rs.samples.end(),
                    std::make_pair(bx, by)) != rs.samples.end())
        continue;
      rs.samples.emplace_back(bx, by);
    }
  }

  const ProgramSet* programs = PreparePrograms(launch);
  const jit::NativeProgram* native =
      programs && options_.engine == ExecEngine::kNative
          ? jit::AcquireNative(*programs, options_.jit_threshold, trace_)
          : nullptr;
  const VmDispatch dispatch = options_.engine == ExecEngine::kNative
                                  ? VmDispatch::kThreaded
                                  : VmDispatch::kSwitch;
  if (trace_)
    trace_->IncrementCounter(native     ? "sim.launch.native"
                             : programs ? "sim.launch.bytecode"
                                        : "sim.launch.ast");
  std::uint64_t executed_insns = 0;
  Metrics total;
  for (auto& [region, rs] : regions) {
    rs.population = has_regions ? population(region) : grid.total();
    if (rs.samples.empty() || rs.population == 0) continue;
    Metrics region_metrics;
    for (const auto& [bx, by] : rs.samples)
      HIPACC_RETURN_IF_ERROR(
          native ? jit::RunBlockNative(launch, *programs, *native, device_,
                                       bx, by, &region_metrics,
                                       &executed_insns)
          : programs
              ? RunBlockBytecode(launch, *programs, device_, bx, by,
                                 &region_metrics, &executed_insns, dispatch)
              : RunBlock(launch, device_, bx, by, &region_metrics));
    const double scale = static_cast<double>(rs.population) /
                         static_cast<double>(rs.samples.size());
    total += region_metrics.Scaled(scale);
    if (!has_regions) break;  // single-variant kernels: one region suffices
  }
  if (trace_ && executed_insns)
    trace_->IncrementCounter("bytecode.executed_insns",
                             static_cast<long long>(executed_insns));
  stats.metrics = total;
  stats.timing = ModelTime(total, device_, stats.occupancy, IssueScale(launch));
  if (trace_)
    trace_->RecordLaunch(launch.kernel->name, launch.config, stats,
                         trace_start, trace_->NowMs() - trace_start,
                         launch.epoch != 0 ? static_cast<int>(launch.epoch)
                                            : trace_tid_);
  return stats;
}

}  // namespace hipacc::sim
