#include "support/string_utils.hpp"

#include <gtest/gtest.h>

namespace hipacc {
namespace {

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d + %d = %d", 1, 2, 3), "1 + 2 = 3");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("%s", "plain"), "plain");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split(",x,", ','), (std::vector<std::string>{"", "x", ""}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(TrimTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim("nochange"), "nochange");
  EXPECT_EQ(Trim(" \t "), "");
}

TEST(StartsEndsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("_cse0", "_"));
  EXPECT_FALSE(StartsWith("cse0", "_"));
  EXPECT_TRUE(EndsWith("kernel.cu", ".cu"));
  EXPECT_FALSE(EndsWith("cu", "kernel.cu"));
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(ReplaceAllTest, ReplacesEveryOccurrence) {
  EXPECT_EQ(ReplaceAll("aaa", "a", "bb"), "bbbbbb");
  EXPECT_EQ(ReplaceAll("none here", "xyz", "q"), "none here");
  EXPECT_EQ(ReplaceAll("overlap", "", "x"), "overlap");  // empty from: no-op
}

TEST(IndentTest, IndentsEveryNonEmptyLine) {
  EXPECT_EQ(Indent("a\nb\n", 2), "  a\n  b\n");
  EXPECT_EQ(Indent("a\n\nb", 2), "  a\n\n  b");
}

}  // namespace
}  // namespace hipacc
