#include "support/string_utils.hpp"

#include <cstdarg>
#include <cstdio>

namespace hipacc {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(n > 0 ? static_cast<size_t>(n) : 0, '\0');
  if (n > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  va_end(args2);
  return out;
}

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view Trim(std::string_view text) {
  const char* ws = " \t\r\n";
  const size_t b = text.find_first_not_of(ws);
  if (b == std::string_view::npos) return {};
  const size_t e = text.find_last_not_of(ws);
  return text.substr(b, e - b + 1);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string Join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i) out += sep;
    out += items[i];
  }
  return out;
}

std::string ReplaceAll(std::string text, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return text;
  size_t pos = 0;
  while ((pos = text.find(from, pos)) != std::string::npos) {
    text.replace(pos, from.size(), to);
    pos += to.size();
  }
  return text;
}

std::string Indent(const std::string& text, int spaces) {
  const std::string pad(static_cast<size_t>(spaces), ' ');
  std::string out;
  size_t start = 0;
  while (start <= text.size()) {
    const size_t pos = text.find('\n', start);
    const std::string_view line(text.data() + start,
                                (pos == std::string::npos ? text.size() : pos) -
                                    start);
    if (!line.empty()) out += pad;
    out.append(line);
    if (pos == std::string::npos) break;
    out += '\n';
    start = pos + 1;
  }
  return out;
}

}  // namespace hipacc
