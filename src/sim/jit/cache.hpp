// Native-tier caching and tiering state.
//
// Two layers share compiled objects:
//  - JitCache: a process-wide, content-addressed module cache (emitted
//    source + ABI version + toolchain identity). Exploration lanes and
//    retargeted kernels whose register programs are semantically identical
//    reuse one shared object, and concurrent requests for the same
//    fingerprint deduplicate in flight — only one lane pays the compile.
//    When support::GlobalDiskStore() is enabled, compiled .so bytes persist
//    under the same identity, so a warm second process pays a dlopen
//    instead of a toolchain run ("cache.disk.*" counters).
//  - TierState: per-ProgramSet tiering (hung off ProgramSet::jit_state, so
//    the PR 2 target-level compilation cache shares it for free). Counts
//    launches, flips to the native program at the configured threshold, and
//    latches failure so a broken toolchain is probed exactly once.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "ast/metadata.hpp"
#include "sim/jit/abi.hpp"
#include "sim/jit/toolchain.hpp"

namespace hipacc::sim {

struct ProgramSet;
class TraceSink;

namespace jit {

/// The dlopened warp functions of one ProgramSet, region-addressed like
/// ProgramSet::Find.
struct NativeProgram {
  std::shared_ptr<NativeModule> module;
  struct Entry {
    ast::Region region = ast::Region::kInterior;
    JitWarpFn fn = nullptr;
    /// Lane-fused emission: binding checks hoisted ahead of all side
    /// effects — the runner pre-checks bindings and falls back to the VM
    /// for launches that would error mid-program (see native_runner.cpp).
    bool fused = false;
  };
  std::vector<Entry> fns;

  JitWarpFn Find(ast::Region region) const {
    for (const Entry& e : fns)
      if (e.region == region) return e.fn;
    return nullptr;
  }
};

/// Per-ProgramSet tiering state. Created by CompileToBytecode; shared by
/// every Simulator (and exploration lane) holding the same ProgramSet.
struct TierState {
  std::atomic<std::uint64_t> launches{0};
  /// 0 = cold (VM), 1 = native ready, 2 = failed (VM forever).
  std::atomic<int> phase{0};
  std::mutex mu;
  std::shared_ptr<const NativeProgram> program;  // guarded by mu
  /// Lock-free fast path; set once under mu, read per launch.
  std::atomic<const NativeProgram*> fast{nullptr};
};

/// Process-wide module cache. Keyed by the emitted source text (itself a
/// canonical serialisation of the program semantics) hashed together with
/// the ABI version and toolchain identity; the full source is kept per
/// entry so a hash collision can never alias two programs.
class JitCache {
 public:
  static JitCache& Instance();

  struct Outcome {
    std::shared_ptr<const NativeProgram> program;
    bool compiled = false;  ///< this call invoked the toolchain
    std::string error;      ///< non-empty on failure
    /// Persistent-tier traffic of this call (support::GlobalDiskStore):
    /// checked at all / satisfied from a cached .so / wrote the .so back.
    bool disk_checked = false;
    bool disk_hit = false;
    bool disk_stored = false;
  };

  /// Returns the cached module for `ps` or compiles it (deduplicating
  /// concurrent requests for the same key).
  Outcome GetOrCompile(const ProgramSet& ps);

  /// Toolchain invocations since process start / last reset (tests).
  std::uint64_t compiles() const { return compiles_.load(); }
  void ResetForTesting();

 private:
  struct Entry {
    std::string source;  // canonical identity (collision guard)
    bool done = false;
    bool failed = false;
    std::string error;
    std::shared_ptr<const NativeProgram> program;
  };

  std::mutex mu_;
  std::condition_variable cv_;
  // hash -> entries (collisions resolved by exact source compare).
  std::unordered_map<std::uint64_t, std::vector<std::shared_ptr<Entry>>> map_;
  std::atomic<std::uint64_t> compiles_{0};
};

/// The tiering decision for one launch with engine == kNative. Counts the
/// launch, compiles through JitCache once the threshold is reached, and
/// returns the native program when ready (else nullptr: run the threaded
/// VM). Emits jit.hit / jit.compile / jit.cache_hit / jit.threaded /
/// jit.error trace counters on `trace` when attached.
const NativeProgram* AcquireNative(const ProgramSet& ps, int threshold,
                                   TraceSink* trace);

}  // namespace jit
}  // namespace hipacc::sim
