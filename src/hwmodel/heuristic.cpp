#include "hwmodel/heuristic.hpp"

#include <algorithm>

#include "support/log.hpp"
#include "support/string_utils.hpp"

namespace hipacc::hw {
namespace {
int CeilDiv(int a, int b) { return (a + b - 1) / b; }
}  // namespace

long long ApproxBorderThreads(const KernelConfig& config, int width,
                              int height, ast::WindowExtent window, int ppt) {
  const GridDim grid = ComputeGrid(config, width, height, ppt);
  const int rows_per_block = config.block_y * (ppt > 0 ? ppt : 1);
  const int band_x =
      window.half_x > 0 ? std::min(grid.blocks_x, CeilDiv(window.half_x, config.block_x)) : 0;
  const int band_y =
      window.half_y > 0 ? std::min(grid.blocks_y, CeilDiv(window.half_y, rows_per_block)) : 0;
  const long long interior_x = std::max(0, grid.blocks_x - 2 * band_x);
  const long long interior_y = std::max(0, grid.blocks_y - 2 * band_y);
  const long long border_blocks = grid.total() - interior_x * interior_y;
  return border_blocks * config.threads();
}

std::vector<HeuristicChoice> ExploreConfigs(const HeuristicInput& input) {
  std::vector<HeuristicChoice> out;
  for (const KernelConfig& config : EnumerateConfigs(input.device)) {
    const OccupancyResult occ =
        ComputeOccupancy(input.device, config, input.resources);
    if (!occ.valid) continue;
    HeuristicChoice choice;
    choice.config = config;
    choice.occupancy = occ;
    choice.border_threads =
        input.border_handling && input.image_width > 0
            ? ApproxBorderThreads(config, input.image_width,
                                  input.image_height, input.window,
                                  input.resources.ppt)
            : 0;
    out.push_back(choice);
  }
  return out;
}

Result<HeuristicChoice> SelectConfig(const HeuristicInput& input) {
  // Line 1-2 of Algorithm 2: SIMD-width multiples within resource limits.
  std::vector<HeuristicChoice> candidates = ExploreConfigs(input);

  if (input.border_handling) {
    // "The minimal size for the x-configuration of the SIMD width is in most
    // cases sufficient and the y-configuration is preferred instead."
    std::erase_if(candidates, [&](const HeuristicChoice& c) {
      return c.config.block_x != input.device.simd_width;
    });
  } else {
    // 1D configurations like 128x1 or 256x1 ("precedence to the x-component").
    std::erase_if(candidates,
                  [](const HeuristicChoice& c) { return c.config.block_y != 1; });
  }
  if (candidates.empty())
    return Status::Exhausted(
        "no valid kernel configuration for device " + input.device.name);

  // Prefer tilings whose boundary regions do not overlap (degenerate region
  // grid): those fail the simulator's region dispatch. One block covers
  // block_y * ppt image rows, so pixels-per-thread kernels hit this with
  // much smaller configurations than classic ones. Best-effort: when every
  // remaining candidate is degenerate (image smaller than one block plus
  // its halo), keep them all — executors that can handle the case still
  // accept the launch.
  if (input.border_handling && input.image_width > 0 &&
      input.image_height > 0) {
    std::vector<HeuristicChoice> sound;
    sound.reserve(candidates.size());
    for (const HeuristicChoice& c : candidates)
      if (!ComputeRegionGrid(c.config, input.image_width, input.image_height,
                             input.window, input.resources.ppt)
               .degenerate())
        sound.push_back(c);
    if (!sound.empty()) candidates = std::move(sound);
  }

  // Line 3: sort by descending occupancy, ascending thread count.
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const HeuristicChoice& a, const HeuristicChoice& b) {
                     if (a.occupancy.occupancy != b.occupancy.occupancy)
                       return a.occupancy.occupancy > b.occupancy.occupancy;
                     return a.config.threads() < b.config.threads();
                   });

  if (!input.border_handling) {
    // Lines 19-20: highest occupancy, fewest threads, tiled along x.
    return candidates.front();
  }

  // Lines 5-17: within the highest-occupancy set, minimise the number of
  // threads executing boundary-handling conditionals.
  const double best_occ = candidates.front().occupancy.occupancy;
  HeuristicChoice best = candidates.front();
  for (const HeuristicChoice& c : candidates) {
    if (c.occupancy.occupancy < best_occ) break;  // sorted: set exhausted
    if (c.border_threads < best.border_threads) best = c;
    // Ties keep the earlier entry, which has fewer threads by the sort.
  }
  LogInfo(StrFormat(
      "Algorithm 2 selected %dx%d (occupancy %.0f%%, border threads %lld) on %s",
      best.config.block_x, best.config.block_y, 100.0 * best.occupancy.occupancy,
      best.border_threads, input.device.name.c_str()));
  return best;
}

}  // namespace hipacc::hw
