# Empty dependencies file for table4_quadro_cuda.
# This may be replaced when dependencies are built.
