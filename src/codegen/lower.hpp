// Lowering: DSL-level KernelDecl -> device-level DeviceKernel.
//
// This pass implements the paper's Section IV transformations:
//  * iteration-space coordinates become global thread indices,
//  * Accessor reads become memory reads in the space chosen by the texture
//    policy and the read/write analysis (Listing 6),
//  * Mask reads become constant-memory reads (Section IV-C),
//  * boundary handling is compiled into nine region-specialised variants
//    with per-access minimal guard sets (Figure 3 / Listing 8) — or into a
//    single uniformly-guarded variant when mimicking manual code,
//  * optionally, accessor tiles are staged through scratchpad memory
//    (Listing 7).
#pragma once

#include "ast/kernel_ir.hpp"
#include "codegen/options.hpp"
#include "support/status.hpp"

namespace hipacc::codegen {

/// Lowers `kernel` under `options`. Fails if the kernel writes no output or
/// requests combinations the backend cannot express (e.g. hardware boundary
/// handling for Mirror — Section VI-A's "n/a" cells).
Result<ast::DeviceKernel> LowerKernel(const ast::KernelDecl& kernel,
                                      const CodegenOptions& options);

}  // namespace hipacc::codegen
