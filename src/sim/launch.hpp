// Kernel launch description for the simulated device: the lowered kernel,
// the configuration, the bound buffers, mask coefficient tables, and scalar
// arguments. Produced by the runtime, consumed by the Simulator.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "ast/kernel_ir.hpp"
#include "hwmodel/config.hpp"
#include "sim/memory.hpp"

namespace hipacc::sim {

struct ProgramSet;  // sim/bytecode.hpp

struct Launch {
  const ast::DeviceKernel* kernel = nullptr;
  /// Pre-compiled bytecode programs for `kernel` (owned by the compiled
  /// artifact). Null is fine: the simulator compiles lazily — or runs the
  /// AST engine when bytecode is disabled or compilation fell back.
  const ProgramSet* programs = nullptr;
  hw::KernelConfig config{128, 1};
  /// Iteration space == output image extent.
  int width = 0;
  int height = 0;
  /// Frame epoch in a streaming run (0 for one-shot launches). Purely
  /// observational: trace spans of overlapped frames separate by epoch
  /// instead of collapsing onto one lane, and profile-store feeding batches
  /// per epoch.
  long long epoch = 0;
  std::vector<BufferBinding> buffers;
  /// Mask name -> row-major coefficients (constant-memory masks; global-mask
  /// buffers appear in `buffers` instead).
  std::map<std::string, std::vector<float>> const_masks;
  std::map<std::string, double> scalar_args;

  const BufferBinding* FindBuffer(const std::string& name) const {
    for (const auto& buf : buffers)
      if (buf.name == name) return &buf;
    return nullptr;
  }
};

}  // namespace hipacc::sim
