# Empty compiler generated dependencies file for hipacc_ops.
# This may be replaced when dependencies are built.
