#include "ast/visitor.hpp"

#include "support/status.hpp"

namespace hipacc::ast {

void VisitExprs(const ExprPtr& expr,
                const std::function<void(const Expr&)>& fn) {
  if (!expr) return;
  fn(*expr);
  for (const auto& arg : expr->args) VisitExprs(arg, fn);
}

void VisitExprs(const StmtPtr& stmt,
                const std::function<void(const Expr&)>& fn) {
  VisitStmts(stmt, [&fn](const Stmt& s) {
    VisitExprs(s.value, fn);
    VisitExprs(s.cond, fn);
    VisitExprs(s.lo, fn);
    VisitExprs(s.hi, fn);
    VisitExprs(s.x, fn);
    VisitExprs(s.y, fn);
  });
}

void VisitStmts(const StmtPtr& stmt,
                const std::function<void(const Stmt&)>& fn) {
  if (!stmt) return;
  fn(*stmt);
  for (const auto& child : stmt->body) VisitStmts(child, fn);
}

ExprPtr WithArgs(const Expr& node, std::vector<ExprPtr> args) {
  auto copy = std::make_shared<Expr>(node);
  copy->args = std::move(args);
  return copy;
}

ExprPtr RewriteExpr(const ExprPtr& expr, const ExprRewriteFn& fn) {
  if (!expr) return nullptr;
  bool changed = false;
  std::vector<ExprPtr> new_args;
  new_args.reserve(expr->args.size());
  for (const auto& arg : expr->args) {
    ExprPtr rewritten = RewriteExpr(arg, fn);
    changed = changed || rewritten != arg;
    new_args.push_back(std::move(rewritten));
  }
  ExprPtr candidate = changed ? WithArgs(*expr, std::move(new_args)) : expr;
  ExprPtr replacement = fn(*candidate);
  return replacement ? replacement : candidate;
}

StmtPtr RewriteStmtExprs(const StmtPtr& stmt, const ExprRewriteFn& fn) {
  if (!stmt) return nullptr;
  auto rewrite = [&fn](const ExprPtr& e) { return RewriteExpr(e, fn); };

  bool changed = false;
  auto copy = std::make_shared<Stmt>(*stmt);

  auto apply = [&](ExprPtr& slot) {
    ExprPtr next = rewrite(slot);
    if (next != slot) {
      slot = std::move(next);
      changed = true;
    }
  };
  apply(copy->value);
  apply(copy->cond);
  apply(copy->lo);
  apply(copy->hi);
  apply(copy->x);
  apply(copy->y);

  for (auto& child : copy->body) {
    StmtPtr next = RewriteStmtExprs(child, fn);
    if (next != child) {
      child = std::move(next);
      changed = true;
    }
  }
  return changed ? StmtPtr(copy) : stmt;
}

}  // namespace hipacc::ast
