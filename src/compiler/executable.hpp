// Convenience façade tying compiler output to the simulated device — the
// equivalent of the paper's generated host code: bind arguments, launch,
// and (for the evaluation) read back the modelled kernel time.
#pragma once

#include "compiler/driver.hpp"
#include "runtime/bindings.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace hipacc::compiler {

class SimulatedExecutable {
 public:
  SimulatedExecutable(
      CompiledKernel kernel, hw::DeviceSpec device,
      sim::SimulatorOptions options = sim::DefaultSimulatorOptions())
      : kernel_(std::move(kernel)),
        simulator_(std::move(device), std::move(options)) {}

  const CompiledKernel& kernel() const noexcept { return kernel_; }
  const hw::DeviceSpec& device() const noexcept { return simulator_.device(); }

  /// Attaches an observability sink: launch building and every simulated
  /// launch get recorded as spans (see sim::TraceSink). `tid` labels this
  /// executable's lane in the trace.
  void set_trace(sim::TraceSink* sink, int tid = 0) noexcept {
    trace_ = sink;
    trace_tid_ = tid;
    simulator_.set_trace(sink, tid);
  }

  /// Functional execution of the whole grid (exact output pixels).
  Result<sim::LaunchStats> Run(const runtime::BindingSet& bindings) const {
    Result<runtime::LaunchHolder> holder =
        BuildLaunchTraced(kernel_.config.config, bindings);
    if (!holder.ok()) return holder.status();
    holder.value().launch.programs = kernel_.bytecode.get();
    return simulator_.Execute(holder.value().launch);
  }

  /// Sampled measurement (modelled time); optionally overrides the launch
  /// configuration, as the exploration mode does. `samples_per_region`
  /// bounds how many blocks per boundary region the simulator interprets.
  Result<sim::LaunchStats> Measure(
      const runtime::BindingSet& bindings,
      std::optional<hw::KernelConfig> config_override = std::nullopt,
      int samples_per_region = 3) const {
    Result<runtime::LaunchHolder> holder = BuildLaunchTraced(
        config_override.value_or(kernel_.config.config), bindings);
    if (!holder.ok()) return holder.status();
    holder.value().launch.programs = kernel_.bytecode.get();
    return simulator_.Measure(holder.value().launch, samples_per_region);
  }

 private:
  Result<runtime::LaunchHolder> BuildLaunchTraced(
      const hw::KernelConfig& config,
      const runtime::BindingSet& bindings) const {
    sim::TraceSpan span(trace_, "build_launch " + kernel_.decl.name,
                        "runtime", trace_tid_);
    return runtime::BuildLaunch(kernel_.device_ir, config, bindings);
  }

  CompiledKernel kernel_;
  sim::Simulator simulator_;
  sim::TraceSink* trace_ = nullptr;
  int trace_tid_ = 0;
};

}  // namespace hipacc::compiler
