// RapidMind-like baseline (paper Section VI-A2). RapidMind's backend emitted
// generic streaming code: boundary handling evaluated uniformly for every
// pixel, filter weights recomputed per tap (no constant-memory masks), and
// additional per-element indirection from its dynamically staged arrays. We
// reproduce that strategy with the uniform-guard pipeline plus a documented
// ALU overhead factor for the generic array machinery.
//
// Platform quirks the paper observed and we model:
//  * Mirror is not supported by RapidMind's boundary modes -> Unimplemented.
//  * Repeat used a naive modulo that mis-handles negative coordinates: the
//    resulting out-of-bounds reads fault on Fermi-class devices ("crash" in
//    Tables II) and degrade severely on older parts (~3x on the Quadro).
#pragma once

#include "compiler/driver.hpp"
#include "runtime/bindings.hpp"

namespace hipacc::baselines {

/// ALU overhead multiplier of RapidMind's generic code vs direct CUDA.
inline constexpr double kRapidMindAluOverhead = 1.9;

struct RapidMindMeasurement {
  double ms = 0.0;
  bool crashed = false;  ///< faulted on out-of-bounds (Repeat on Fermi)
};

/// Measures the RapidMind implementation of the bilateral filter; `texture`
/// selects the +Tex variant. Returns Unimplemented for Mirror.
Result<RapidMindMeasurement> MeasureRapidMindBilateral(
    int sigma_d, int sigma_r, ast::BoundaryMode mode, bool texture,
    const hw::DeviceSpec& device, int width, int height,
    hw::KernelConfig config, runtime::BindingSet& bindings);

}  // namespace hipacc::baselines
