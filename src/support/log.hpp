// Minimal leveled logging to stderr. The source-to-source compiler uses it to
// report selected optimizations and configurations (mirroring HIPAcc's
// verbose output); benches run with the level raised to kWarn.
#pragma once

#include <string>

namespace hipacc {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global minimum level that is emitted (default kWarn).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Emits `msg` at `level` if it passes the global filter.
void Log(LogLevel level, const std::string& msg);

inline void LogDebug(const std::string& msg) { Log(LogLevel::kDebug, msg); }
inline void LogInfo(const std::string& msg) { Log(LogLevel::kInfo, msg); }
inline void LogWarn(const std::string& msg) { Log(LogLevel::kWarn, msg); }
inline void LogError(const std::string& msg) { Log(LogLevel::kError, msg); }

}  // namespace hipacc
