// Warp-lockstep interpreter for lowered device kernels.
//
// Threads of a warp evaluate each IR node together (SIMT); divergent
// control flow is handled with lane masks, and per-warp memory operations
// feed the MemoryModel so coalescing, caching, constant broadcast, and bank
// conflicts are accounted exactly as the hardware would group them.
//
// One BlockRunner instance executes one thread block: it selects the
// boundary-handling region variant for the block (Figure 3 dispatch), runs
// the scratchpad staging phase if the kernel has one (Listing 7), and then
// the body for every warp.
#pragma once

#include "sim/launch.hpp"
#include "sim/metrics.hpp"

namespace hipacc::sim {

/// Executes the thread block at grid position (block_x_idx, block_y_idx) and
/// accumulates metrics. Writes the block's output pixels through the bound
/// output buffer. Returns an error for malformed kernels (unbound buffers,
/// missing masks, non-uniform loop bounds are fine — handled per lane).
Status RunBlock(const Launch& launch, const hw::DeviceSpec& device,
                int block_x_idx, int block_y_idx, Metrics* metrics);

}  // namespace hipacc::sim
