// Manual-implementation baselines (paper Section VI-A1): straightforward
// CUDA/OpenCL code whose boundary handling is a uniform per-pixel guard on
// every access (no region specialisation), subsequently improved with linear
// texture memory (+Tex/+Img), hardware-boundary-handling 2D textures
// (+2DTex/ImgBH), and constant-memory masks (+Mask). Expressed through the
// same pipeline with BorderPolicy::kUniform so the comparison isolates
// exactly the techniques the paper varies.
#pragma once

#include "compiler/driver.hpp"

namespace hipacc::baselines {

struct ManualVariant {
  bool use_mask_kernel = false;  ///< bilateral written with a Mask (Listing 5)
  codegen::TexturePolicy texture = codegen::TexturePolicy::kNone;
  /// Uniform guards (manual style). Undefined-mode kernels have none anyway.
  codegen::BorderPolicy border = codegen::BorderPolicy::kUniform;
};

/// Compiles a manual-style bilateral filter.
Result<compiler::CompiledKernel> CompileManualBilateral(
    int sigma_d, ast::BoundaryMode mode, const ManualVariant& variant,
    ast::Backend backend, const hw::DeviceSpec& device, int width, int height,
    hw::KernelConfig config);

}  // namespace hipacc::baselines
