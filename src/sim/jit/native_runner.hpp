// Native execution engine: runs one thread block of a compiled ProgramSet
// through its dlopened warp functions (cache.hpp) with the same observable
// behaviour — outputs, metrics, memory-model call sequence, and error
// texts — as the bytecode VM's RunBlockBytecode.
#pragma once

#include <cstdint>

#include "hwmodel/device_spec.hpp"
#include "sim/bytecode.hpp"
#include "sim/jit/cache.hpp"
#include "sim/launch.hpp"
#include "sim/metrics.hpp"

namespace hipacc::sim::jit {

/// Executes one thread block through the native warp functions.
/// `executed_insns` accumulates dispatched instruction counts like the VM.
Status RunBlockNative(const Launch& launch, const ProgramSet& programs,
                      const NativeProgram& native,
                      const hw::DeviceSpec& device, int block_x_idx,
                      int block_y_idx, Metrics* metrics,
                      std::uint64_t* executed_insns);

}  // namespace hipacc::sim::jit
