#include "runtime/graph_plan.hpp"

#include <algorithm>

#include "compiler/cache.hpp"
#include "compiler/separate.hpp"
#include "runtime/bindings.hpp"
#include "runtime/host_exec.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "support/parallel_for.hpp"
#include "support/string_utils.hpp"

namespace hipacc::runtime {

namespace {

using Node = PipelineGraph::Node;

/// Structural validation on the *declared* graph: every consumed image has
/// a producer, no self-loops, every output is produced.
Status ValidateStructure(const std::vector<Node>& nodes,
                         const std::vector<std::string>& outputs,
                         const std::map<std::string, int>& producer) {
  for (const Node& node : nodes) {
    for (const auto& [accessor, image] : node.inputs) {
      if (producer.find(image) == producer.end())
        return Status::Invalid("stage '" + node.name +
                               "' consumes undeclared image '" + image + "'");
      if (image == node.name)
        return Status::Invalid("pipeline graph has a cycle: " + node.name +
                               " -> " + node.name);
    }
  }
  for (const std::string& name : outputs) {
    if (producer.find(name) == producer.end())
      return Status::Invalid("output '" + name +
                             "' is not produced by any stage");
  }
  return Status::Ok();
}

/// Kahn order over the declared nodes (cycle diagnostics speak the user's
/// stage names; fusion afterwards preserves acyclicity), then per-stage
/// extent propagation into the plan's stage list.
Result<std::vector<int>> OrderAndExtents(const std::vector<Node>& nodes,
                                         GraphPlan* plan) {
  DagSpec dag;
  dag.dependencies.assign(nodes.size(), 0);
  dag.consumers.assign(nodes.size(), {});
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (const auto& [accessor, image] : nodes[i].inputs) {
      dag.dependencies[i] += 1;
      dag.consumers[static_cast<std::size_t>(plan->producer.at(image))]
          .push_back(static_cast<int>(i));
    }
  }
  Result<std::vector<int>> order = TopologicalOrder(
      dag, [&nodes](int i) { return nodes[static_cast<std::size_t>(i)].name; });
  if (!order.ok()) return order.status();

  plan->stages.resize(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const Node& node = nodes[i];
    GraphPlan::Stage& stage = plan->stages[i];
    stage.kind = node.kind;
    stage.name = node.name;
    stage.source = node.kernel;
    stage.effective = node.kernel;
    stage.inputs = node.inputs;
    stage.scalars = node.scalars;
    stage.width = node.width;
    stage.height = node.height;
  }
  for (int index : order.value()) {
    GraphPlan::Stage& stage = plan->stages[static_cast<std::size_t>(index)];
    if (stage.kind == Node::Kind::kSource) continue;
    const GraphPlan::Stage& first =
        plan->stages[static_cast<std::size_t>(
            plan->producer.at(stage.inputs.front().second))];
    switch (stage.kind) {
      case Node::Kind::kKernel:
        stage.width = first.width;
        stage.height = first.height;
        break;
      case Node::Kind::kDecimate:
        stage.width = (first.width + 1) / 2;
        stage.height = (first.height + 1) / 2;
        break;
      case Node::Kind::kUpsample:
        if (stage.width < first.width || stage.height < first.height)
          return Status::Invalid(StrFormat(
              "upsample stage '%s' target %dx%d is smaller than its input "
              "%dx%d",
              stage.name.c_str(), stage.width, stage.height, first.width,
              first.height));
        break;
      case Node::Kind::kSource:
        break;
    }
  }
  return order;
}

void PlanSeparation(GraphPlan* plan) {
  if (!plan->options->separate) return;
  // Runs before fusion: a fused convolution body no longer matches the
  // canonical form, while a separated column pass is still a convolution
  // a point-wise consumer can fuse into afterwards.
  const std::size_t count = plan->stages.size();
  for (std::size_t s = 0; s < count; ++s) {
    if (plan->stages[s].kind != Node::Kind::kKernel) continue;
    if (plan->stages[s].inputs.size() != 1) continue;
    std::optional<compiler::SeparatedStages> sep =
        compiler::SeparateConvolution(plan->stages[s].effective);
    if (!sep) continue;
    const std::string intermediate = plan->stages[s].name + ".sep_row";
    if (plan->producer.find(intermediate) != plan->producer.end()) continue;

    // The appended row stage consumes the original input edge and produces
    // the intermediate virtual image; the original slot becomes the column
    // pass so the stage keeps producing its externally visible name.
    GraphPlan::Stage row;
    row.kind = Node::Kind::kKernel;
    row.name = intermediate;
    row.source = sep->row;
    row.effective = std::move(sep->row);
    row.inputs = plan->stages[s].inputs;
    row.width = plan->stages[s].width;
    row.height = plan->stages[s].height;
    const std::string accessor = row.inputs.front().first;
    plan->stages.push_back(std::move(row));  // may reallocate: re-index below

    GraphPlan::Stage& col = plan->stages[s];
    col.source = sep->col;
    col.effective = std::move(sep->col);
    col.inputs = {{accessor, intermediate}};
    plan->producer[intermediate] = static_cast<int>(plan->stages.size() - 1);
    if (plan->trace != nullptr) plan->trace->IncrementCounter("separate.edges");
  }
}

void PlanFusion(GraphPlan* plan) {
  const GraphOptions& options = *plan->options;
  if (options.fuse == compiler::FusionMode::kOff) return;
  compiler::FusionPlannerOptions popts;
  popts.mode = options.fuse;
  popts.compile = MakeCompileOptions(options.run, 0, 0);
  std::vector<compiler::CandidateDecision> decisions;
  popts.decisions = &decisions;

  while (true) {
    // The planner sees the current (post-separation, partially fused) stage
    // list; one accepted step is applied per round until none remains.
    std::vector<compiler::PlannerStage> view(plan->stages.size());
    for (std::size_t i = 0; i < plan->stages.size(); ++i) {
      const GraphPlan::Stage& stage = plan->stages[i];
      view[i].fusable =
          stage.kind == Node::Kind::kKernel && !stage.name.empty();
      view[i].name = stage.name;
      view[i].source = &stage.effective;
      view[i].inputs = stage.inputs;
      for (const auto& [output_name, image] : stage.extra_images)
        view[i].extra_images.push_back(image);
      view[i].width = stage.width;
      view[i].height = stage.height;
      view[i].external =
          std::find(plan->outputs.begin(), plan->outputs.end(), stage.name) !=
          plan->outputs.end();
    }
    std::optional<compiler::PlannedFusion> fusion =
        compiler::PlanNextFusion(view, popts);
    if (!fusion) break;

    GraphPlan::Stage& into = plan->stages[static_cast<std::size_t>(fusion->into)];
    GraphPlan::Stage& retired =
        plan->stages[static_cast<std::size_t>(fusion->retired)];
    if (fusion->request.kind == compiler::FuseKind::kHorizontal) {
      // Sibling merge: `into` absorbs `retired`, whose image it keeps
      // producing as a named extra output. The sibling's shared-input edge
      // collapsed into `into`'s accessor; its other inputs carry over.
      into.chain.push_back(fusion->request);
      into.effective = std::move(fusion->fused);
      for (const auto& [accessor, image] : retired.inputs)
        if (accessor != fusion->request.peer_accessor)
          into.inputs.emplace_back(accessor, image);
      into.scalars.insert(into.scalars.end(), retired.scalars.begin(),
                          retired.scalars.end());
      into.extra_images.emplace_back(fusion->request.output_name, retired.name);
      plan->producer[retired.name] = fusion->into;
    } else {
      // Producer→consumer merge (point or halo): the consumer's slot now
      // compiles the producer's source with the consumer appended to the
      // fusion chain, consumes the producer's inputs plus its own remaining
      // ones, and still produces the consumer's image. The intermediate
      // image disappears.
      for (std::size_t e = 0; e < into.inputs.size(); ++e) {
        if (into.inputs[e].first == fusion->request.accessor &&
            into.inputs[e].second == retired.name) {
          into.inputs.erase(into.inputs.begin() +
                            static_cast<std::ptrdiff_t>(e));
          break;
        }
      }
      into.chain = std::move(retired.chain);
      into.chain.push_back(fusion->request);
      into.source = retired.source;
      into.effective = std::move(fusion->fused);
      into.inputs.insert(into.inputs.begin(), retired.inputs.begin(),
                         retired.inputs.end());
      into.scalars.insert(into.scalars.end(), retired.scalars.begin(),
                          retired.scalars.end());
      plan->producer[into.name] = fusion->into;
      plan->producer.erase(retired.name);
    }
    // Retire the absorbed stage in place (erasing would invalidate the
    // `producer` index map); the DAG build skips retired stages.
    retired.kind = Node::Kind::kSource;
    retired.inputs.clear();
    retired.name.clear();
    if (plan->trace != nullptr) {
      plan->trace->IncrementCounter("graph.fused_edges");
      plan->trace->IncrementCounter(std::string("graph.fused.") +
                                    compiler::to_string(fusion->request.kind));
    }
  }

  // One decision per candidate (the planner re-examines surviving rejects
  // every round): rejected candidates feed the fuse.rejected.* counters and
  // the --explain-fusion sink.
  compiler::DedupeDecisions(&decisions);
  if (plan->trace != nullptr) {
    for (const compiler::CandidateDecision& d : decisions) {
      if (d.accepted) continue;
      plan->trace->IncrementCounter(d.legal ? "fuse.rejected.profitability"
                                            : "fuse.rejected.legality");
    }
  }
  if (options.explain != nullptr)
    options.explain->insert(options.explain->end(), decisions.begin(),
                            decisions.end());
}

Status CompileStages(GraphPlan* plan) {
  sim::TraceSpan span(plan->trace, "graph compile", "graph");
  std::vector<Status> statuses(plan->stages.size());
  // Concurrent compilation through the (thread-safe) compilation cache;
  // repeated extents and repeated Build() calls hit instead of recompiling.
  ParallelFor(0, static_cast<int>(plan->stages.size()), [&](int i) {
    GraphPlan::Stage& stage = plan->stages[static_cast<std::size_t>(i)];
    if (stage.kind != Node::Kind::kKernel) return;
    compiler::CompileOptions copts =
        MakeCompileOptions(plan->options->run, stage.width, stage.height);
    copts.fusion = stage.chain;
    Result<compiler::CompiledKernel> compiled =
        compiler::Compile(stage.source, copts);
    if (!compiled.ok()) {
      statuses[static_cast<std::size_t>(i)] =
          Status::Invalid("stage '" + stage.name +
                          "': " + compiled.status().message());
      return;
    }
    stage.compiled = std::move(compiled).take();
  });
  for (const Status& status : statuses) HIPACC_RETURN_IF_ERROR(status);
  return Status::Ok();
}

void BuildDagAndRefcounts(GraphPlan* plan) {
  plan->dag.dependencies.assign(plan->stages.size(), 0);
  plan->dag.consumers.assign(plan->stages.size(), {});
  for (std::size_t i = 0; i < plan->stages.size(); ++i) {
    // Retired fusion producers keep their slot but have no inputs and no
    // name; they run as zero-cost no-ops.
    for (const auto& [accessor, image] : plan->stages[i].inputs) {
      plan->dag.dependencies[i] += 1;
      plan->dag.consumers[static_cast<std::size_t>(plan->producer.at(image))]
          .push_back(static_cast<int>(i));
      plan->base_refcount[image] += 1;
    }
  }
  // A consumed image is released to the pool once its last consumer edge
  // ran; externally visible outputs hold one extra reference until copied.
  for (const std::string& name : plan->outputs)
    if (plan->producer.find(name) != plan->producer.end())
      plan->base_refcount[name] += 1;
}

}  // namespace

Result<GraphPlan> GraphPlan::Build(PipelineGraph& graph,
                                   const GraphOptions& options) {
  HIPACC_RETURN_IF_ERROR(graph.deferred_error_);
  if (graph.nodes_.empty())
    return Status::Invalid("pipeline graph has no stages");

  GraphPlan plan;
  plan.options = &options;
  plan.trace = options.run.trace;
  plan.pool = &graph.pool_;
  plan.outputs = graph.outputs_;
  for (std::size_t i = 0; i < graph.nodes_.size(); ++i)
    plan.producer[graph.nodes_[i].name] = static_cast<int>(i);

  HIPACC_RETURN_IF_ERROR(
      ValidateStructure(graph.nodes_, graph.outputs_, plan.producer));
  {
    Result<std::vector<int>> order = OrderAndExtents(graph.nodes_, &plan);
    if (!order.ok()) return order.status();
  }
  PlanSeparation(&plan);
  PlanFusion(&plan);
  HIPACC_RETURN_IF_ERROR(CompileStages(&plan));
  BuildDagAndRefcounts(&plan);
  return plan;
}

Status GraphPlan::ValidateBindings(
    const PipelineGraph::InputBindings& inputs,
    const PipelineGraph::OutputBindings& outputs) const {
  for (const auto& [name, image] : outputs) {
    if (image == nullptr)
      return Status::Invalid("output '" + name + "' bound to null");
    if (std::find(this->outputs.begin(), this->outputs.end(), name) ==
        this->outputs.end())
      return Status::Invalid("'" + name +
                             "' is not declared as a graph output");
  }
  for (const Stage& stage : stages) {
    if (stage.kind != Node::Kind::kSource || stage.name.empty()) continue;
    const HostImage<float>* bound = nullptr;
    for (const auto& [name, image] : inputs)
      if (name == stage.name) bound = image;
    if (bound == nullptr)
      return Status::Invalid("source '" + stage.name + "' is not bound");
    if (bound->width() != stage.width || bound->height() != stage.height)
      return Status::Invalid(StrFormat(
          "source '%s' declared %dx%d but bound %dx%d", stage.name.c_str(),
          stage.width, stage.height, bound->width(), bound->height()));
  }
  return Status::Ok();
}

FrameExec::FrameExec(const GraphPlan& plan, long long epoch)
    : plan_(plan), epoch_(epoch), refcount_(plan.base_refcount) {}

void FrameExec::BindInputs(const PipelineGraph::InputBindings* inputs) {
  inputs_ = inputs;
}

Status FrameExec::RunKernelStage(const GraphPlan::Stage& stage) {
  const GraphOptions& options = *plan_.options;
  BindingSet bindings;
  for (const auto& [accessor, image] : stage.inputs) {
    dsl::Image<float>* bound = nullptr;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      bound = buffers_.at(image).get();
    }
    bindings.Input(accessor, *bound);
  }
  dsl::Image<float>* out = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out = buffers_.at(stage.name).get();
  }
  bindings.Output(*out);
  for (const auto& [output_name, image] : stage.extra_images) {
    dsl::Image<float>* extra = nullptr;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      extra = buffers_.at(image).get();
    }
    bindings.Output(output_name, *extra);
  }
  for (const auto& [name, value] : stage.scalars) bindings.Scalar(name, value);

  const compiler::CompiledKernel& ck = stage.compiled;
  Result<LaunchHolder> holder =
      BuildLaunch(ck.device_ir, ck.config.config, bindings);
  if (!holder.ok()) return holder.status();
  sim::Launch& launch = holder.value().launch;
  launch.programs = ck.bytecode.get();
  launch.epoch = epoch_;

  const bool host_ok =
      options.executor != GraphOptions::Executor::kSimulator &&
      ck.bytecode != nullptr &&
      HostExecSupports(*ck.bytecode, launch.width, launch.height,
                       ck.device_ir.bh_window.half_x,
                       ck.device_ir.bh_window.half_y);
  if (options.executor == GraphOptions::Executor::kHost && !host_ok)
    return Status::Unimplemented(
        "stage '" + stage.name +
        "' is not supported by the host executor (GraphOptions::Executor::"
        "kHost)");
  if (host_ok) {
    // Inside a multi-worker schedule each stage runs its rows serially —
    // the DAG branches (and, when streaming, the overlapped frames) are the
    // parallelism; a lone worker hands the row loop all cores instead.
    HostExecOptions exec_options;
    exec_options.threads = options.workers == 1 ? 0 : 1;
    HIPACC_RETURN_IF_ERROR(RunOnHost(launch, ck.device_ir.bh_window.half_x,
                                     ck.device_ir.bh_window.half_y,
                                     exec_options));
    if (plan_.trace != nullptr)
      plan_.trace->IncrementCounter("graph.launches.host");
    return Status::Ok();
  }
  sim::Simulator simulator(options.run.device, options.run.sim_options());
  Result<sim::LaunchStats> stats = simulator.Execute(launch);
  if (!stats.ok()) return stats.status();
  if (plan_.trace != nullptr) {
    plan_.trace->IncrementCounter("graph.launches.sim");
    // Modelled device time of the whole graph, in microseconds — what the
    // fusion benches gate on (host wall-clock would mis-charge the halo
    // recompute the device model absorbs in its memory bounds).
    plan_.trace->IncrementCounter(
        "graph.modelled_us",
        static_cast<long long>(stats.value().timing.total_ms * 1000.0));
  }
  if (options.run.profiles != nullptr && !ck.source_fingerprint.empty()) {
    // Collected locally, flushed as one ProfileStore batch when the frame
    // retires — streaming epochs must not take the store's FileLock per
    // launch.
    compiler::KeyedObservation keyed;
    keyed.key = compiler::MakeProfileKey(ck.source_fingerprint, ck.codegen,
                                         options.run.device, stage.width,
                                         stage.height);
    keyed.observation = compiler::ProfileObservation{
        ck.config.config, ck.device_ir.ppt, stats.value().timing.total_ms};
    std::lock_guard<std::mutex> lock(mutex_);
    observations_.push_back(std::move(keyed));
  }
  return Status::Ok();
}

void FrameExec::ReleaseConsumed(const GraphPlan::Stage& stage) {
  for (const auto& [accessor, image] : stage.inputs) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = refcount_.find(image);
    if (it == refcount_.end() || --it->second > 0) continue;
    refcount_.erase(it);
    auto buffer = buffers_.find(image);
    if (buffer != buffers_.end()) {
      plan_.pool->Release(std::move(buffer->second));
      buffers_.erase(buffer);
    }
  }
}

Status FrameExec::ExecStage(int index) {
  const GraphPlan::Stage& stage =
      plan_.stages[static_cast<std::size_t>(index)];
  if (stage.name.empty()) return Status::Ok();  // retired fusion producer
  sim::TraceSpan span(plan_.trace, "stage " + stage.name, "graph",
                      static_cast<int>(epoch_));

  BufferPool::ImagePtr out =
      plan_.pool->Acquire(stage.width, stage.height, plan_.trace);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    buffers_[stage.name] = std::move(out);
  }
  // A horizontally fused stage fills several virtual images in one launch;
  // each gets its own pooled buffer under its declared name.
  for (const auto& [output_name, image] : stage.extra_images) {
    BufferPool::ImagePtr extra =
        plan_.pool->Acquire(stage.width, stage.height, plan_.trace);
    std::lock_guard<std::mutex> lock(mutex_);
    buffers_[image] = std::move(extra);
  }

  Status status = Status::Ok();
  switch (stage.kind) {
    case Node::Kind::kSource: {
      const HostImage<float>* host = nullptr;
      for (const auto& [name, image] : *inputs_)
        if (name == stage.name) host = image;
      std::lock_guard<std::mutex> lock(mutex_);
      buffers_.at(stage.name)->CopyFrom(*host);
      break;
    }
    case Node::Kind::kDecimate: {
      dsl::Image<float>* in = nullptr;
      dsl::Image<float>* dst = nullptr;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        in = buffers_.at(stage.inputs.front().second).get();
        dst = buffers_.at(stage.name).get();
      }
      for (int y = 0; y < stage.height; ++y)
        for (int x = 0; x < stage.width; ++x)
          dst->at(x, y) = in->at(2 * x, 2 * y);
      break;
    }
    case Node::Kind::kUpsample: {
      dsl::Image<float>* in = nullptr;
      dsl::Image<float>* dst = nullptr;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        in = buffers_.at(stage.inputs.front().second).get();
        dst = buffers_.at(stage.name).get();
      }
      for (int y = 0; y < stage.height; ++y)
        for (int x = 0; x < stage.width; ++x) dst->at(x, y) = 0.0f;
      for (int y = 0; y < in->height(); ++y)
        for (int x = 0; x < in->width(); ++x) {
          const int tx = 2 * x, ty = 2 * y;
          if (tx < stage.width && ty < stage.height)
            dst->at(tx, ty) = in->at(x, y);
        }
      break;
    }
    case Node::Kind::kKernel:
      status = RunKernelStage(stage);
      break;
  }
  if (!status.ok()) return status;
  if (plan_.trace != nullptr) plan_.trace->IncrementCounter("graph.stages");
  ReleaseConsumed(stage);
  return Status::Ok();
}

Status FrameExec::CopyOutputs(const PipelineGraph::OutputBindings& outputs) {
  for (const auto& [name, image] : outputs) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = buffers_.find(name);
    if (it == buffers_.end())
      return Status::Internal("output '" + name + "' was never produced");
    *image = it->second->getData();
  }
  return Status::Ok();
}

void FrameExec::ReleaseRemaining() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, buffer] : buffers_) plan_.pool->Release(std::move(buffer));
  buffers_.clear();
  refcount_.clear();
}

std::vector<compiler::KeyedObservation> FrameExec::TakeObservations() {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::exchange(observations_, {});
}

}  // namespace hipacc::runtime
