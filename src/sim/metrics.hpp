// Execution metrics collected by the warp-level interpreter. Counts are
// warp-granular (one issued instruction per warp, SIMT), which is what the
// throughput-based timing model consumes.
#pragma once

#include <cstdint>

namespace hipacc::sim {

struct Metrics {
  // Compute.
  std::uint64_t alu_ops = 0;        ///< warp ALU issues (arith, guards, addr)
  std::uint64_t sfu_calls = 0;      ///< transcendental calls (exp, sqrt, ...)

  // Global memory (device DRAM).
  std::uint64_t global_read_instrs = 0;   ///< warp-level read instructions
  std::uint64_t global_write_instrs = 0;
  std::uint64_t global_transactions = 0;  ///< 128 B segments moved
  std::uint64_t l1_hits = 0;              ///< Fermi global-load cache hits

  // Texture path.
  std::uint64_t tex_read_instrs = 0;
  std::uint64_t tex_hits = 0;
  std::uint64_t tex_transactions = 0;  ///< texture-cache misses (segments)

  // Constant memory.
  std::uint64_t const_broadcasts = 0;  ///< uniform warp accesses (cached)
  std::uint64_t const_serialized = 0;  ///< distinct-address replays

  // Scratchpad.
  std::uint64_t smem_accesses = 0;       ///< warp-level shared accesses
  std::uint64_t smem_conflict_cycles = 0;///< replay cycles from bank conflicts

  // Correctness tracking.
  std::uint64_t oob_violations = 0;  ///< unguarded out-of-bounds accesses

  Metrics& operator+=(const Metrics& other) {
    alu_ops += other.alu_ops;
    sfu_calls += other.sfu_calls;
    global_read_instrs += other.global_read_instrs;
    global_write_instrs += other.global_write_instrs;
    global_transactions += other.global_transactions;
    l1_hits += other.l1_hits;
    tex_read_instrs += other.tex_read_instrs;
    tex_hits += other.tex_hits;
    tex_transactions += other.tex_transactions;
    const_broadcasts += other.const_broadcasts;
    const_serialized += other.const_serialized;
    smem_accesses += other.smem_accesses;
    smem_conflict_cycles += other.smem_conflict_cycles;
    oob_violations += other.oob_violations;
    return *this;
  }

  /// Scales all counters (used to extrapolate sampled blocks to a region).
  Metrics Scaled(double factor) const {
    Metrics m;
    auto scale = [factor](std::uint64_t v) {
      return static_cast<std::uint64_t>(static_cast<double>(v) * factor + 0.5);
    };
    m.alu_ops = scale(alu_ops);
    m.sfu_calls = scale(sfu_calls);
    m.global_read_instrs = scale(global_read_instrs);
    m.global_write_instrs = scale(global_write_instrs);
    m.global_transactions = scale(global_transactions);
    m.l1_hits = scale(l1_hits);
    m.tex_read_instrs = scale(tex_read_instrs);
    m.tex_hits = scale(tex_hits);
    m.tex_transactions = scale(tex_transactions);
    m.const_broadcasts = scale(const_broadcasts);
    m.const_serialized = scale(const_serialized);
    m.smem_accesses = scale(smem_accesses);
    m.smem_conflict_cycles = scale(smem_conflict_cycles);
    m.oob_violations = scale(oob_violations);
    return m;
  }
};

}  // namespace hipacc::sim
