// Umbrella public header: everything an application needs to write, compile,
// and run DSL kernels — the DSL classes (Listing 1), the source-to-source
// compiler and its cached execute path, the pipeline graph runtime, the
// built-in operators, and the host-image utilities. Examples and downstream
// code include just this header; the fine-grained headers below remain the
// internal layering (and stay includable individually).
#pragma once

// DSL: Image, Mask, Domain, Accessor, BoundaryCondition, IterationSpace,
// Kernel, reductions.
#include "dsl/accessor.hpp"
#include "dsl/boundary.hpp"
#include "dsl/image.hpp"
#include "dsl/kernel.hpp"
#include "dsl/mask.hpp"
#include "dsl/reduce.hpp"

// Host images: dense storage, synthetic test content, PGM/PPM I/O, metrics.
#include "image/host_image.hpp"
#include "image/io.hpp"
#include "image/metrics.hpp"
#include "image/synthetic.hpp"

// Compiler: driver (Compile), compilation cache, simulated executable,
// kernel-file loading, configuration exploration.
#include "compiler/cache.hpp"
#include "compiler/driver.hpp"
#include "compiler/executable.hpp"
#include "compiler/explore.hpp"
#include "compiler/kernel_file.hpp"

// Runtime: argument binding, cached kernel launches, consolidated
// RunOptions, and the pipeline graph (DAG scheduling, buffer pooling,
// point-wise fusion).
#include "runtime/bindings.hpp"
#include "runtime/graph.hpp"
#include "runtime/kernel_runner.hpp"
#include "runtime/run_options.hpp"

// Built-in operators: kernel sources, DSL reference classes, masks,
// Laplacian pyramid / multiresolution filtering.
#include "ops/dsl_ops.hpp"
#include "ops/kernel_sources.hpp"
#include "ops/masks.hpp"
#include "ops/pyramid.hpp"

// Device database for retargeting (TeslaC2050(), FindDevice(), ...).
#include "hwmodel/device_db.hpp"
