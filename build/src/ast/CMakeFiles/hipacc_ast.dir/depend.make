# Empty dependencies file for hipacc_ast.
# This may be replaced when dependencies are built.
