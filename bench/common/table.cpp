#include "common/table.hpp"

#include <algorithm>

#include "support/string_utils.hpp"

namespace hipacc::bench {

void Table::Row(const std::string& label) { rows_.emplace_back(label, std::vector<std::string>{}); }

void Table::Cell(double ms) {
  rows_.back().second.push_back(StrFormat("%.2f", ms));
}

void Table::Cell(const std::string& text) { rows_.back().second.push_back(text); }

std::string Table::Render(const std::string& title) const {
  size_t label_width = 8;
  for (const auto& [label, cells] : rows_)
    label_width = std::max(label_width, label.size());
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
    for (const auto& [label, cells] : rows_)
      if (c < cells.size()) widths[c] = std::max(widths[c], cells[c].size());
  }

  std::string out = title + "\n";
  std::string header(label_width, ' ');
  for (size_t c = 0; c < columns_.size(); ++c) {
    header += "  ";
    header += std::string(widths[c] - columns_[c].size(), ' ') + columns_[c];
  }
  out += header + "\n";
  out += std::string(header.size(), '-') + "\n";
  for (const auto& [label, cells] : rows_) {
    std::string line = label + std::string(label_width - label.size(), ' ');
    for (size_t c = 0; c < cells.size(); ++c) {
      line += "  ";
      line += std::string(widths[c] >= cells[c].size() ? widths[c] - cells[c].size() : 0, ' ') +
              cells[c];
    }
    out += line + "\n";
  }
  return out;
}

}  // namespace hipacc::bench
