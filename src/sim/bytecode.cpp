#include "sim/bytecode.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "ast/builtins.hpp"
#include "sim/block_state.hpp"
#include "sim/jit/cache.hpp"
#include "support/stopwatch.hpp"

namespace hipacc::sim {
namespace {

using namespace hipacc::ast;

// Compile-time guard rails. Real kernels sit orders of magnitude below all
// of these; hitting one degrades to the AST engine instead of mis-compiling.
constexpr int kMaxUnrollIterations = 64;
constexpr int kMaxUnrollNodes = 20000;
constexpr std::size_t kMaxCodeLength = 100000;
constexpr int kMaxRegisters = 60000;
constexpr int kMaxMaskSlots = 250;

/// A subtree the compiler evaluated at compile time: its warp-uniform value,
/// its runtime type, and the metric cost the interpreter would have paid to
/// evaluate it (re-attached to whichever instruction replaces the subtree,
/// so folding never changes modelled time).
struct Folded {
  ScalarType type = ScalarType::kInt;
  double value = 0.0;
  std::uint32_t alu = 0;
  std::uint32_t sfu = 0;
};

/// A compiled expression operand: the register holding it, its (statically
/// known) runtime type, and whether the register came from the temp stack.
struct RegRef {
  std::uint16_t reg = 0;
  ScalarType type = ScalarType::kFloat;
  bool temp = false;
};

int CountStmtNodes(const StmtPtr& stmt) {
  if (!stmt) return 0;
  int n = 1;
  for (const auto& child : stmt->body) n += CountStmtNodes(child);
  return n;
}

/// Names written by the subtree (Decl, Assign, and For loop variables) —
/// the set whose constant-tracking must be invalidated around control flow.
void CollectModified(const StmtPtr& stmt, std::set<std::string>* out) {
  if (!stmt) return;
  const Stmt& s = *stmt;
  if (s.kind == StmtKind::kDecl || s.kind == StmtKind::kAssign ||
      s.kind == StmtKind::kFor)
    out->insert(s.name);
  for (const auto& child : stmt->body) CollectModified(child, out);
}

/// Compiles the region variants of one kernel into one shared ProgramSet.
/// One instance per variant; the buffer/mask name tables live on the set and
/// are shared (indices are find-or-add across variants).
class VariantCompiler {
 public:
  VariantCompiler(const DeviceKernel& kernel, ProgramSet* set)
      : kernel_(kernel), set_(set) {}

  Result<Program> Compile(const RegionVariant& variant) {
    HIPACC_RETURN_IF_ERROR(Prescan(variant.body));
    Program prog;
    prog.region = variant.region;
    for (const auto& p : kernel_.params) {
      const VarInfo& vi = vars_.at(p.name);
      prog.params.push_back(ParamSeed{p.name, vi.reg, p.type});
    }
    HIPACC_RETURN_IF_ERROR(CompileStmt(variant.body, /*mask_slot=*/0));
    if (code_.size() > kMaxCodeLength)
      return Status::Unimplemented("bytecode: program too long");
    prog.code = std::move(code_);
    prog.num_regs = temp_base_ + temp_high_;
    prog.num_masks = mask_high_;
    return prog;
  }

 private:
  struct VarInfo {
    std::uint16_t reg = 0;
    ScalarType static_type = ScalarType::kFloat;
    bool declared = false;
  };

  // ---- prescan: fixed register layout [params+locals | loop pins | temps]

  Status Prescan(const StmtPtr& body) {
    int next = 0;
    for (const auto& p : kernel_.params) {
      if (vars_.count(p.name))
        return Status::Unimplemented("bytecode: duplicate parameter " + p.name);
      vars_[p.name] = VarInfo{NextReg(&next), p.type, /*declared=*/true};
    }
    int for_count = 0;
    HIPACC_RETURN_IF_ERROR(ScanDecls(body, &next, &for_count));
    pin_base_ = next;
    next += for_count;
    temp_base_ = next;
    if (next >= kMaxRegisters)
      return Status::Unimplemented("bytecode: register budget exceeded");
    next_pin_ = pin_base_;
    return Status::Ok();
  }

  Status ScanDecls(const StmtPtr& stmt, int* next, int* for_count) {
    if (!stmt) return Status::Ok();
    const Stmt& s = *stmt;
    if (s.kind == StmtKind::kDecl)
      HIPACC_RETURN_IF_ERROR(AddLocal(s.name, s.decl_type, next));
    if (s.kind == StmtKind::kFor) {
      HIPACC_RETURN_IF_ERROR(AddLocal(s.name, ScalarType::kInt, next));
      ++*for_count;
    }
    for (const auto& child : s.body)
      HIPACC_RETURN_IF_ERROR(ScanDecls(child, next, for_count));
    return Status::Ok();
  }

  /// Every name must have one consistent type across all of its declaration
  /// sites (and any parameter of the same name) — the static type the
  /// compiler resolves reads against. Shadowing with a new type would need
  /// per-occurrence type inference; such kernels fall back to the AST engine.
  Status AddLocal(const std::string& name, ScalarType type, int* next) {
    auto it = vars_.find(name);
    if (it == vars_.end()) {
      vars_[name] = VarInfo{NextReg(next), type, /*declared=*/false};
      return Status::Ok();
    }
    if (it->second.static_type != type)
      return Status::Unimplemented(
          "bytecode: variable " + name + " is redeclared with a new type");
    return Status::Ok();
  }

  std::uint16_t NextReg(int* next) { return static_cast<std::uint16_t>((*next)++); }

  // ---- emission helpers ----------------------------------------------------

  std::size_t Emit(Insn insn) {
    code_.push_back(insn);
    return code_.size() - 1;
  }

  void EmitAccount(std::uint32_t alu, std::uint32_t sfu) {
    if (alu == 0 && sfu == 0) return;
    // Merge adjacent pure-cost instructions.
    if (!code_.empty() && code_.back().op == Op::kAccount) {
      code_.back().alu_cost += alu;
      code_.back().sfu_cost += sfu;
      return;
    }
    Insn i;
    i.op = Op::kAccount;
    i.alu_cost = alu;
    i.sfu_cost = sfu;
    Emit(i);
  }

  void EmitConst(std::uint16_t dst, ScalarType type, double value,
                 std::uint32_t alu, std::uint32_t sfu) {
    Insn i;
    i.op = Op::kConst;
    i.dst = dst;
    i.type = type;
    i.imm = value;
    i.alu_cost = alu;
    i.sfu_cost = sfu;
    Emit(i);
  }

  Result<std::uint16_t> AllocTemp() {
    const int reg = temp_base_ + temp_sp_;
    if (reg >= kMaxRegisters)
      return Status::Unimplemented("bytecode: register budget exceeded");
    ++temp_sp_;
    temp_high_ = std::max(temp_high_, temp_sp_);
    return static_cast<std::uint16_t>(reg);
  }

  void Release(const RegRef& r) {
    if (r.temp && r.reg == static_cast<std::uint16_t>(temp_base_ + temp_sp_ - 1))
      --temp_sp_;
  }

  Result<std::uint16_t> AllocMask() {
    const int slot = mask_sp_;
    if (slot >= kMaxMaskSlots)
      return Status::Unimplemented("bytecode: mask slot budget exceeded");
    ++mask_sp_;
    mask_high_ = std::max(mask_high_, mask_sp_);
    return static_cast<std::uint16_t>(slot);
  }

  void ReleaseMask() { --mask_sp_; }

  int BufferIndex(const std::string& name) {
    for (std::size_t i = 0; i < set_->buffer_names.size(); ++i)
      if (set_->buffer_names[i] == name) return static_cast<int>(i);
    set_->buffer_names.push_back(name);
    return static_cast<int>(set_->buffer_names.size() - 1);
  }

  int ConstMaskIndex(const std::string& name) {
    for (std::size_t i = 0; i < set_->const_masks.size(); ++i)
      if (set_->const_masks[i].name == name) return static_cast<int>(i);
    set_->const_masks.push_back(ProgramSet::MaskRef{name, MaskWidth(name)});
    return static_cast<int>(set_->const_masks.size() - 1);
  }

  int MaskWidth(const std::string& name) const {
    for (const auto& m : kernel_.const_masks)
      if (m.name == name) return m.size_x;
    for (const auto& m : kernel_.global_masks)
      if (m.name == name) return m.size_x;
    return 1;
  }

  const BufferParam* FindBufferParam(const std::string& name) const {
    for (const auto& buf : kernel_.buffers)
      if (buf.name == name) return &buf;
    return nullptr;
  }

  // ---- constant folding ----------------------------------------------------

  /// Mirrors the interpreter's evaluation on one uniform lane, accumulating
  /// the metric cost the interpreter would record. Only subtrees whose value
  /// is provably warp-uniform and compile-time known fold; anything touching
  /// thread indices, memory, or untracked variables stays in the program.
  std::optional<Folded> Fold(const ExprPtr& expr) const {
    const Expr& e = *expr;
    switch (e.kind) {
      case ExprKind::kIntLit:
        return Folded{ScalarType::kInt, static_cast<double>(e.int_value), 0, 0};
      case ExprKind::kFloatLit:
        return Folded{ScalarType::kFloat,
                      static_cast<double>(static_cast<float>(e.float_value)), 0,
                      0};
      case ExprKind::kBoolLit:
        return Folded{ScalarType::kBool, e.bool_value ? 1.0 : 0.0, 0, 0};
      case ExprKind::kVarRef: {
        const auto it = consts_.find(e.name);
        if (it == consts_.end()) return std::nullopt;
        return Folded{it->second.type, it->second.value, 0, 0};
      }
      case ExprKind::kUnary: {
        const auto v = Fold(e.args[0]);
        if (!v) return std::nullopt;
        return Folded{e.type, EvalUnaryLane(e.unary_op, e.type, v->value),
                      v->alu + 1, v->sfu};
      }
      case ExprKind::kBinary: {
        const auto a = Fold(e.args[0]);
        if (!a) return std::nullopt;
        const auto b = Fold(e.args[1]);
        if (!b) return std::nullopt;
        const bool fm = Promote(a->type, b->type) == ScalarType::kFloat;
        std::uint32_t alu = a->alu + b->alu;
        if (e.binary_op == BinaryOp::kDiv)
          alu += fm ? 5 : 16;
        else if (e.binary_op == BinaryOp::kMod)
          alu += 16;
        else
          alu += 1;
        return Folded{e.type, EvalBinaryLane(e.binary_op, fm, a->value, b->value),
                      alu, a->sfu + b->sfu};
      }
      case ExprKind::kConditional: {
        // The interpreter evaluates (and costs) all three operands.
        const auto c = Fold(e.args[0]);
        if (!c) return std::nullopt;
        const auto t = Fold(e.args[1]);
        if (!t) return std::nullopt;
        const auto f = Fold(e.args[2]);
        if (!f) return std::nullopt;
        return Folded{e.type, c->value != 0.0 ? t->value : f->value,
                      c->alu + t->alu + f->alu + 1, c->sfu + t->sfu + f->sfu};
      }
      case ExprKind::kCast: {
        const auto v = Fold(e.args[0]);
        if (!v) return std::nullopt;
        return Folded{e.type, ConvertLaneIf(v->value, v->type, e.type),
                      v->alu + 1, v->sfu};
      }
      case ExprKind::kCall: {
        if (e.args.size() > 2) return std::nullopt;
        const auto builtin = FindBuiltin(e.name);
        const auto vb = ResolveBuiltin(e.name);
        if (!builtin || !vb) return std::nullopt;
        Folded out;
        out.type = builtin->result;
        double argv[2] = {0.0, 0.0};
        for (std::size_t i = 0; i < e.args.size(); ++i) {
          const auto a = Fold(e.args[i]);
          if (!a) return std::nullopt;
          argv[i] = a->value;
          out.alu += a->alu;
          out.sfu += a->sfu;
        }
        switch (builtin->cost) {
          case OpCost::kAlu: out.alu += 1; break;
          case OpCost::kSfu: out.sfu += 1; break;
          case OpCost::kMulti:
            out.sfu += 2;
            out.alu += 4;
            break;
        }
        out.value = EvalBuiltinLane(*vb, argv[0], argv[1]);
        return out;
      }
      default:
        return std::nullopt;
    }
  }

  // ---- expression compilation ----------------------------------------------

  Result<RegRef> CompileExpr(const ExprPtr& expr) {
    if (const auto f = Fold(expr)) {
      HIPACC_ASSIGN_OR_RETURN(const std::uint16_t dst, AllocTemp());
      EmitConst(dst, f->type, f->value, f->alu, f->sfu);
      return RegRef{dst, f->type, /*temp=*/true};
    }
    const Expr& e = *expr;
    switch (e.kind) {
      case ExprKind::kVarRef: {
        const auto it = vars_.find(e.name);
        if (it == vars_.end() || !it->second.declared)
          return Status::Unimplemented(
              "bytecode: variable " + e.name + " is read before declaration");
        return RegRef{it->second.reg, it->second.static_type, /*temp=*/false};
      }
      case ExprKind::kUnary: {
        HIPACC_ASSIGN_OR_RETURN(const RegRef a, CompileExpr(e.args[0]));
        Release(a);
        HIPACC_ASSIGN_OR_RETURN(const std::uint16_t dst, AllocTemp());
        Insn i;
        i.op = Op::kUnary;
        i.type = e.type;
        i.sub = static_cast<std::uint8_t>(e.unary_op);
        i.dst = dst;
        i.a = a.reg;
        i.alu_cost = 1;
        Emit(i);
        return RegRef{dst, e.type, true};
      }
      case ExprKind::kBinary: {
        HIPACC_ASSIGN_OR_RETURN(const RegRef a, CompileExpr(e.args[0]));
        HIPACC_ASSIGN_OR_RETURN(const RegRef b, CompileExpr(e.args[1]));
        Release(b);
        Release(a);
        HIPACC_ASSIGN_OR_RETURN(const std::uint16_t dst, AllocTemp());
        Insn i;
        i.op = Op::kBinary;
        i.type = e.type;
        i.sub = static_cast<std::uint8_t>(e.binary_op);
        i.dst = dst;
        i.a = a.reg;
        i.b = b.reg;
        // Div's expansion depends on the (runtime-promoted) operand types;
        // the VM handler accounts it. Everything else is static.
        if (e.binary_op == BinaryOp::kMod)
          i.alu_cost = 16;
        else if (e.binary_op != BinaryOp::kDiv)
          i.alu_cost = 1;
        Emit(i);
        return RegRef{dst, e.type, true};
      }
      case ExprKind::kConditional: {
        HIPACC_ASSIGN_OR_RETURN(const RegRef c, CompileExpr(e.args[0]));
        HIPACC_ASSIGN_OR_RETURN(const RegRef t, CompileExpr(e.args[1]));
        HIPACC_ASSIGN_OR_RETURN(const RegRef f, CompileExpr(e.args[2]));
        Release(f);
        Release(t);
        Release(c);
        HIPACC_ASSIGN_OR_RETURN(const std::uint16_t dst, AllocTemp());
        Insn i;
        i.op = Op::kSelect;
        i.type = e.type;
        i.dst = dst;
        i.a = c.reg;
        i.b = t.reg;
        i.c = f.reg;
        i.alu_cost = 1;
        Emit(i);
        return RegRef{dst, e.type, true};
      }
      case ExprKind::kCall: {
        if (e.args.size() > 2)
          return Status::Unimplemented("bytecode: builtin " + e.name +
                                       " has too many arguments");
        const auto builtin = FindBuiltin(e.name);
        const auto vb = ResolveBuiltin(e.name);
        if (!builtin || !vb)
          return Status::Unimplemented("bytecode: unknown builtin " + e.name);
        RegRef args[2];
        for (std::size_t i = 0; i < e.args.size(); ++i) {
          HIPACC_ASSIGN_OR_RETURN(args[i], CompileExpr(e.args[i]));
        }
        for (std::size_t i = e.args.size(); i-- > 0;) Release(args[i]);
        HIPACC_ASSIGN_OR_RETURN(const std::uint16_t dst, AllocTemp());
        Insn i;
        i.op = Op::kCall;
        i.type = builtin->result;
        i.sub = static_cast<std::uint8_t>(*vb);
        i.dst = dst;
        i.a = args[0].reg;
        i.b = args[1].reg;
        switch (builtin->cost) {
          case OpCost::kAlu: i.alu_cost = 1; break;
          case OpCost::kSfu: i.sfu_cost = 1; break;
          case OpCost::kMulti:
            i.sfu_cost = 2;
            i.alu_cost = 4;
            break;
        }
        Emit(i);
        return RegRef{dst, builtin->result, true};
      }
      case ExprKind::kCast: {
        HIPACC_ASSIGN_OR_RETURN(const RegRef a, CompileExpr(e.args[0]));
        Release(a);
        HIPACC_ASSIGN_OR_RETURN(const std::uint16_t dst, AllocTemp());
        Insn i;
        i.op = Op::kConvert;
        i.type = e.type;
        i.dst = dst;
        i.a = a.reg;
        i.alu_cost = 1;
        Emit(i);
        return RegRef{dst, e.type, true};
      }
      case ExprKind::kThreadIndex: {
        HIPACC_ASSIGN_OR_RETURN(const std::uint16_t dst, AllocTemp());
        Insn i;
        i.op = Op::kThreadIdx;
        i.type = ScalarType::kInt;
        i.sub = static_cast<std::uint8_t>(e.thread_index);
        i.dst = dst;
        Emit(i);
        return RegRef{dst, ScalarType::kInt, true};
      }
      case ExprKind::kMemRead:
        return CompileMemRead(e);
      default:
        return Status::Unimplemented(
            "bytecode: unsupported expression kind in kernel " + kernel_.name);
    }
  }

  // ---- memory coordinates --------------------------------------------------

  struct CoordPlan {
    Coord coord;
    std::uint32_t alu = 0;
    std::uint32_t sfu = 0;
    RegRef reg;  // valid when coord.kind == kReg (so the caller can Release)
  };

  struct BaseOffset {
    CoordKind kind = CoordKind::kImm;
    int off = 0;
    std::uint32_t alu = 0;
    std::uint32_t sfu = 0;
  };

  /// Offset operand of a fusable `index ± literal` coordinate: must be an
  /// exactly-integral non-float constant so the interpreter's double add is
  /// bit-equal to integer offset arithmetic on the resolved index.
  std::optional<BaseOffset> IntegralFold(const ExprPtr& e) const {
    const auto f = Fold(e);
    if (!f || f->type == ScalarType::kFloat) return std::nullopt;
    if (f->value != std::floor(f->value) || f->value < -2147483648.0 ||
        f->value > 2147483647.0)
      return std::nullopt;
    return BaseOffset{CoordKind::kImm, static_cast<int>(f->value), f->alu,
                      f->sfu};
  }

  /// Recognises gid/tid ± folded-integer chains so mask-window addressing
  /// (`gid_x + (i - half)` after unrolling) becomes a base+offset operand on
  /// the memory instruction itself instead of an add per access.
  std::optional<BaseOffset> FoldBaseCoord(const ExprPtr& expr) const {
    const Expr& e = *expr;
    if (e.kind == ExprKind::kThreadIndex) {
      switch (e.thread_index) {
        case ThreadIndexKind::kGlobalIdX: return BaseOffset{CoordKind::kGidX, 0, 0, 0};
        case ThreadIndexKind::kGlobalIdY: return BaseOffset{CoordKind::kGidY, 0, 0, 0};
        case ThreadIndexKind::kThreadIdxX: return BaseOffset{CoordKind::kTidX, 0, 0, 0};
        case ThreadIndexKind::kThreadIdxY: return BaseOffset{CoordKind::kTidY, 0, 0, 0};
        default: return std::nullopt;
      }
    }
    if (e.kind != ExprKind::kBinary) return std::nullopt;
    if (e.binary_op == BinaryOp::kAdd) {
      for (int side = 0; side < 2; ++side) {
        const auto base = FoldBaseCoord(e.args[static_cast<std::size_t>(side)]);
        if (!base || base->kind == CoordKind::kImm) continue;
        const auto off = IntegralFold(e.args[static_cast<std::size_t>(1 - side)]);
        if (!off) continue;
        return BaseOffset{base->kind, base->off + off->off,
                          base->alu + off->alu + 1, base->sfu + off->sfu};
      }
      return std::nullopt;
    }
    if (e.binary_op == BinaryOp::kSub) {
      const auto base = FoldBaseCoord(e.args[0]);
      if (!base || base->kind == CoordKind::kImm) return std::nullopt;
      const auto off = IntegralFold(e.args[1]);
      if (!off) return std::nullopt;
      return BaseOffset{base->kind, base->off - off->off,
                        base->alu + off->alu + 1, base->sfu + off->sfu};
    }
    return std::nullopt;
  }

  Result<CoordPlan> CompileCoord(const ExprPtr& expr) {
    CoordPlan plan;
    if (const auto f = Fold(expr)) {
      plan.coord = Coord{CoordKind::kImm, 0, static_cast<int>(f->value)};
      plan.alu = f->alu;
      plan.sfu = f->sfu;
      return plan;
    }
    if (const auto bc = FoldBaseCoord(expr)) {
      plan.coord = Coord{bc->kind, 0, bc->off};
      plan.alu = bc->alu;
      plan.sfu = bc->sfu;
      return plan;
    }
    HIPACC_ASSIGN_OR_RETURN(plan.reg, CompileExpr(expr));
    plan.coord = Coord{CoordKind::kReg, plan.reg.reg, 0};
    return plan;
  }

  Result<RegRef> CompileMemRead(const Expr& e) {
    // Interpreter evaluation order: x then y (loads inside coordinate
    // expressions must hit the memory model in the same sequence).
    HIPACC_ASSIGN_OR_RETURN(const CoordPlan cx, CompileCoord(e.args[0]));
    HIPACC_ASSIGN_OR_RETURN(const CoordPlan cy, CompileCoord(e.args[1]));
    if (cy.coord.kind == CoordKind::kReg) Release(cy.reg);
    if (cx.coord.kind == CoordKind::kReg) Release(cx.reg);
    HIPACC_ASSIGN_OR_RETURN(const std::uint16_t dst, AllocTemp());

    Insn i;
    i.type = ScalarType::kFloat;
    i.dst = dst;
    i.mask = cur_mask_;
    i.cx = cx.coord;
    i.cy = cy.coord;
    i.alu_cost = 2 + cx.alu + cy.alu;
    i.sfu_cost = cx.sfu + cy.sfu;
    switch (e.space) {
      case MemSpace::kShared:
        i.op = Op::kLoadShared;
        break;
      case MemSpace::kConstant:
        i.op = Op::kLoadConst;
        i.buffer = static_cast<std::int16_t>(ConstMaskIndex(e.name));
        break;
      case MemSpace::kGlobal:
      case MemSpace::kTexture: {
        i.op = Op::kLoadImage;
        i.sub = e.space == MemSpace::kTexture ? 1 : 0;
        i.buffer = static_cast<std::int16_t>(BufferIndex(e.name));
        const BufferParam* param = FindBufferParam(e.name);
        i.hw_bh = param && param->texture_2d_array;
        i.boundary = e.boundary;
        i.checks = e.checks;
        i.cvalue = e.constant_value;
        if (!i.hw_bh) {
          i.alu_cost += static_cast<std::uint32_t>(e.checks.count()) *
                        static_cast<std::uint32_t>(GuardAluCost(e.boundary));
          if (e.boundary == BoundaryMode::kConstant && e.checks.any())
            i.alu_cost += 1;  // final select
        }
        break;
      }
    }
    Emit(i);
    return RegRef{dst, ScalarType::kFloat, true};
  }

  // ---- statement compilation -----------------------------------------------

  Status CompileStmt(const StmtPtr& stmt, std::uint16_t mask_slot) {
    if (!stmt) return Status::Ok();
    cur_mask_ = mask_slot;
    const Stmt& s = *stmt;
    switch (s.kind) {
      case StmtKind::kBlock:
        for (const auto& child : s.body)
          HIPACC_RETURN_IF_ERROR(CompileStmt(child, mask_slot));
        return Status::Ok();
      case StmtKind::kDecl:
        return CompileDecl(s, mask_slot);
      case StmtKind::kAssign:
        return CompileAssign(s, mask_slot);
      case StmtKind::kIf:
        return CompileIf(s, mask_slot);
      case StmtKind::kFor:
        return CompileFor(s, mask_slot);
      case StmtKind::kBarrier: {
        Insn i;
        i.op = Op::kBarrier;
        i.alu_cost = 1;
        Emit(i);
        return Status::Ok();
      }
      case StmtKind::kMemWrite:
        return CompileMemWrite(s, mask_slot);
      case StmtKind::kOutputAssign:
        return Status::Unimplemented("bytecode: OutputAssign in device IR");
    }
    return Status::Ok();
  }

  Status CompileDecl(const Stmt& s, std::uint16_t mask_slot) {
    (void)mask_slot;  // declarations write all lanes, mask-independent
    VarInfo& vi = vars_.at(s.name);
    vi.declared = true;
    if (!s.value) {
      EmitConst(vi.reg, s.decl_type, 0.0, 0, 0);
      consts_[s.name] = Folded{s.decl_type, 0.0, 0, 0};
      return Status::Ok();
    }
    if (const auto f = Fold(s.value)) {
      const double v = ConvertLaneIf(f->value, f->type, s.decl_type);
      EmitConst(vi.reg, s.decl_type, v, f->alu, f->sfu);
      consts_[s.name] = Folded{s.decl_type, v, 0, 0};
      return Status::Ok();
    }
    consts_.erase(s.name);
    HIPACC_ASSIGN_OR_RETURN(const RegRef val, CompileExpr(s.value));
    Release(val);
    Insn i;
    i.dst = vi.reg;
    i.a = val.reg;
    if (val.type == s.decl_type) {
      i.op = Op::kCopy;  // the interpreter's Convert skips equal types
    } else {
      i.op = Op::kConvert;
      i.type = s.decl_type;  // declaration conversion is free (no Cast node)
    }
    Emit(i);
    return Status::Ok();
  }

  Status CompileAssign(const Stmt& s, std::uint16_t mask_slot) {
    const auto it = vars_.find(s.name);
    if (it == vars_.end() || !it->second.declared)
      return Status::Unimplemented(
          "bytecode: assignment to unknown variable " + s.name);
    const VarInfo& vi = it->second;
    const std::uint32_t op_cost = s.assign_op == AssignOp::kAssign ? 0 : 1;
    if (const auto f = Fold(s.value)) {
      // A constant store under the full warp mask can itself be folded: the
      // register is rewritten in every lane (lanes outside the active mask
      // are unobservable — nothing reads them and stores are predicated).
      // Deeper masks must keep the predicated write: the inactive lanes
      // rejoin a wider mask after the branch.
      if (mask_slot == 0) {
        const double rhs = ConvertLaneIf(f->value, f->type, vi.static_type);
        const auto tracked = consts_.find(s.name);
        if (tracked != consts_.end()) {
          const double v =
              CombineLane(vi.static_type, s.assign_op, tracked->second.value, rhs);
          EmitConst(vi.reg, vi.static_type, v, f->alu + op_cost, f->sfu);
          consts_[s.name] = Folded{vi.static_type, v, 0, 0};
          return Status::Ok();
        }
        if (s.assign_op == AssignOp::kAssign) {
          EmitConst(vi.reg, vi.static_type, rhs, f->alu, f->sfu);
          consts_[s.name] = Folded{vi.static_type, rhs, 0, 0};
          return Status::Ok();
        }
      }
    }
    consts_.erase(s.name);
    HIPACC_ASSIGN_OR_RETURN(const RegRef rhs, CompileExpr(s.value));
    Release(rhs);
    Insn i;
    i.op = Op::kAssign;
    i.type = vi.static_type;
    i.sub = static_cast<std::uint8_t>(s.assign_op);
    i.dst = vi.reg;
    i.a = rhs.reg;
    i.mask = mask_slot;
    i.alu_cost = op_cost;
    Emit(i);
    return Status::Ok();
  }

  Status CompileIf(const Stmt& s, std::uint16_t mask_slot) {
    if (const auto fc = Fold(s.cond)) {
      // Uniform condition: the interpreter still pays for the condition and
      // the mask split, then runs exactly one branch under the same mask.
      EmitAccount(fc->alu + 1, fc->sfu);
      const bool taken = fc->value != 0.0;
      if (taken) return CompileStmt(s.body[0], mask_slot);
      if (s.body.size() > 1) return CompileStmt(s.body[1], mask_slot);
      return Status::Ok();
    }

    HIPACC_ASSIGN_OR_RETURN(const RegRef cond, CompileExpr(s.cond));
    Release(cond);
    HIPACC_ASSIGN_OR_RETURN(const std::uint16_t then_slot, AllocMask());
    HIPACC_ASSIGN_OR_RETURN(const std::uint16_t else_slot, AllocMask());
    Insn split;
    split.op = Op::kMaskIf;
    split.dst = then_slot;
    split.b = else_slot;
    split.a = cond.reg;
    split.mask = mask_slot;
    split.alu_cost = 1;
    Emit(split);

    const std::map<std::string, Folded> entry_consts = consts_;

    Insn guard;
    guard.op = Op::kJumpIfNone;
    guard.mask = then_slot;
    const std::size_t j1 = Emit(guard);
    HIPACC_RETURN_IF_ERROR(CompileStmt(s.body[0], then_slot));
    std::size_t else_start = code_.size();
    if (s.body.size() > 1) {
      consts_ = entry_consts;
      Insn guard2;
      guard2.op = Op::kJumpIfNone;
      guard2.mask = else_slot;
      const std::size_t j2 = Emit(guard2);
      else_start = j2;  // a skipped then-branch still checks the else mask
      HIPACC_RETURN_IF_ERROR(CompileStmt(s.body[1], else_slot));
      code_[j2].jump = static_cast<std::int32_t>(code_.size());
    }
    code_[j1].jump = static_cast<std::int32_t>(else_start);
    ReleaseMask();
    ReleaseMask();

    // After the reconvergence point only constants no branch wrote survive.
    std::set<std::string> modified;
    CollectModified(s.body[0], &modified);
    if (s.body.size() > 1) CollectModified(s.body[1], &modified);
    consts_ = entry_consts;
    for (const auto& name : modified) consts_.erase(name);
    cur_mask_ = mask_slot;
    return Status::Ok();
  }

  Status CompileFor(const Stmt& s, std::uint16_t mask_slot) {
    VarInfo& vi = vars_.at(s.name);
    vi.declared = true;

    const auto f_lo = Fold(s.lo);
    const auto f_hi = Fold(s.hi);
    if (f_lo && f_hi && mask_slot == 0 && s.step > 0) {
      std::set<std::string> modified;
      CollectModified(s.body.empty() ? StmtPtr() : s.body[0], &modified);
      if (!modified.count(s.name)) {
        // Trip values replicate the interpreter's raw-lane loop: lo is
        // copied unconverted (the loop variable's int type notwithstanding)
        // and compared against hi as doubles.
        std::vector<double> values;
        double v = f_lo->value;
        bool bounded = true;
        while (v <= f_hi->value) {
          values.push_back(v);
          v += s.step;
          if (values.size() > static_cast<std::size_t>(kMaxUnrollIterations)) {
            bounded = false;
            break;
          }
        }
        const int body_nodes =
            s.body.empty() ? 0 : CountStmtNodes(s.body[0]);
        if (bounded &&
            static_cast<int>(values.size()) * body_nodes <= kMaxUnrollNodes)
          return UnrollFor(s, *f_lo, *f_hi, values, v, mask_slot);
      }
    }

    // General path. Constants the body writes are stale from iteration two
    // onward, so drop them before compiling the body (and again after: the
    // body's own tracking only describes its final straight-line pass).
    std::set<std::string> modified;
    CollectModified(s.body.empty() ? StmtPtr() : s.body[0], &modified);
    modified.insert(s.name);
    for (const auto& name : modified) consts_.erase(name);

    // lo then hi evaluate before the loop variable is touched (loads inside
    // either must hit the memory model in the interpreter's order). The
    // upper bound is pinned outside the temp zone: the interpreter snapshots
    // it before the loop, and body temporaries would otherwise recycle its
    // register.
    HIPACC_ASSIGN_OR_RETURN(const RegRef lo, CompileExpr(s.lo));
    const std::uint16_t pin = static_cast<std::uint16_t>(next_pin_++);
    if (const auto fh = Fold(s.hi)) {
      EmitConst(pin, fh->type, fh->value, fh->alu, fh->sfu);
    } else {
      HIPACC_ASSIGN_OR_RETURN(const RegRef hi, CompileExpr(s.hi));
      Release(hi);
      Insn cp;
      cp.op = Op::kCopy;
      cp.dst = pin;
      cp.a = hi.reg;
      Emit(cp);
    }
    Insn init;
    init.op = Op::kLoopInit;
    init.type = ScalarType::kInt;
    init.dst = vi.reg;
    init.a = lo.reg;
    Emit(init);
    Release(lo);

    HIPACC_ASSIGN_OR_RETURN(const std::uint16_t iter_slot, AllocMask());
    Insn head;
    head.op = Op::kLoopHead;
    head.dst = iter_slot;
    head.mask = mask_slot;
    head.a = vi.reg;
    head.b = pin;
    head.alu_cost = 2;  // compare + increment, paid on the failing check too
    const std::size_t head_idx = Emit(head);

    if (!s.body.empty())
      HIPACC_RETURN_IF_ERROR(CompileStmt(s.body[0], iter_slot));

    Insn inc;
    inc.op = Op::kLoopInc;
    inc.dst = vi.reg;
    inc.mask = iter_slot;
    inc.imm = static_cast<double>(s.step);
    inc.jump = static_cast<std::int32_t>(head_idx);
    Emit(inc);
    code_[head_idx].jump = static_cast<std::int32_t>(code_.size());
    ReleaseMask();

    for (const auto& name : modified) consts_.erase(name);
    --next_pin_;  // the pin is dead past the loop; nested loops may reuse it
    cur_mask_ = mask_slot;
    return Status::Ok();
  }

  Status UnrollFor(const Stmt& s, const Folded& f_lo, const Folded& f_hi,
                   const std::vector<double>& values, double final_value,
                   std::uint16_t mask_slot) {
    // lo/hi evaluation plus one compare+increment charge per iteration,
    // including the final failing check.
    EmitAccount(f_lo.alu + f_hi.alu +
                    2 * (static_cast<std::uint32_t>(values.size()) + 1),
                f_lo.sfu + f_hi.sfu);
    const VarInfo& vi = vars_.at(s.name);
    for (const double v : values) {
      consts_[s.name] = Folded{ScalarType::kInt, v, 0, 0};
      if (!s.body.empty())
        HIPACC_RETURN_IF_ERROR(CompileStmt(s.body[0], mask_slot));
    }
    // Materialise the loop variable's exit value (lanes the interpreter
    // leaves at lo are outside the active mask — unobservable).
    const double exit_v = values.empty() ? f_lo.value : final_value;
    EmitConst(vi.reg, ScalarType::kInt, exit_v, 0, 0);
    consts_[s.name] = Folded{ScalarType::kInt, exit_v, 0, 0};
    cur_mask_ = mask_slot;
    return Status::Ok();
  }

  Status CompileMemWrite(const Stmt& s, std::uint16_t mask_slot) {
    // Interpreter evaluation order: value, x, y, then the global write.
    HIPACC_ASSIGN_OR_RETURN(const RegRef value, CompileExpr(s.value));
    HIPACC_ASSIGN_OR_RETURN(const CoordPlan cx, CompileCoord(s.x));
    HIPACC_ASSIGN_OR_RETURN(const CoordPlan cy, CompileCoord(s.y));
    if (cy.coord.kind == CoordKind::kReg) Release(cy.reg);
    if (cx.coord.kind == CoordKind::kReg) Release(cx.reg);
    Release(value);
    Insn i;
    i.op = Op::kStore;
    i.a = value.reg;
    i.mask = mask_slot;
    i.cx = cx.coord;
    i.cy = cy.coord;
    i.buffer = static_cast<std::int16_t>(BufferIndex(s.name));
    i.alu_cost = 2 + cx.alu + cy.alu;  // address arithmetic
    i.sfu_cost = cx.sfu + cy.sfu;
    Emit(i);
    return Status::Ok();
  }

  const DeviceKernel& kernel_;
  ProgramSet* set_;
  std::vector<Insn> code_;
  std::map<std::string, VarInfo> vars_;
  std::map<std::string, Folded> consts_;
  std::uint16_t cur_mask_ = 0;
  int pin_base_ = 0;
  int next_pin_ = 0;
  int temp_base_ = 0;
  int temp_sp_ = 0;
  int temp_high_ = 0;
  int mask_sp_ = 1;  // slot 0 = warp active mask
  int mask_high_ = 1;
};

}  // namespace

std::optional<VmBuiltin> ResolveBuiltin(const std::string& name) {
  if (name == "exp") return VmBuiltin::kExp;
  if (name == "exp2") return VmBuiltin::kExp2;
  if (name == "log") return VmBuiltin::kLog;
  if (name == "log2") return VmBuiltin::kLog2;
  if (name == "sqrt") return VmBuiltin::kSqrt;
  if (name == "rsqrt") return VmBuiltin::kRsqrt;
  if (name == "sin") return VmBuiltin::kSin;
  if (name == "cos") return VmBuiltin::kCos;
  if (name == "tan") return VmBuiltin::kTan;
  if (name == "atan") return VmBuiltin::kAtan;
  if (name == "atan2") return VmBuiltin::kAtan2;
  if (name == "pow") return VmBuiltin::kPow;
  if (name == "fmod") return VmBuiltin::kFmod;
  if (name == "fabs") return VmBuiltin::kFabs;
  if (name == "fmin") return VmBuiltin::kFmin;
  if (name == "fmax") return VmBuiltin::kFmax;
  if (name == "floor") return VmBuiltin::kFloor;
  if (name == "ceil") return VmBuiltin::kCeil;
  if (name == "round") return VmBuiltin::kRound;
  if (name == "min") return VmBuiltin::kMin;
  if (name == "max") return VmBuiltin::kMax;
  if (name == "abs") return VmBuiltin::kAbs;
  return std::nullopt;
}

const Program* ProgramSet::Find(ast::Region region) const {
  for (const Program& p : programs)
    if (p.region == region) return &p;
  return nullptr;
}

Result<std::shared_ptr<const ProgramSet>> CompileToBytecode(
    const ast::DeviceKernel& kernel) {
  Stopwatch sw;
  auto set = std::make_shared<ProgramSet>();
  set->kernel_name = kernel.name;
  set->ppt = kernel.ppt;
  for (const auto& variant : kernel.variants) {
    VariantCompiler compiler(kernel, set.get());
    HIPACC_ASSIGN_OR_RETURN(Program prog, compiler.Compile(variant));
    set->total_instructions += prog.code.size();
    set->programs.push_back(std::move(prog));
  }
  set->compile_ms = sw.ElapsedMs();
  set->jit_state = std::make_shared<jit::TierState>();
  return std::shared_ptr<const ProgramSet>(std::move(set));
}

}  // namespace hipacc::sim
