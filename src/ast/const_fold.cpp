#include "ast/const_fold.hpp"

#include <cmath>

#include "ast/visitor.hpp"

namespace hipacc::ast {
namespace {

bool IsLiteral(const ExprPtr& e) {
  return e && (e->kind == ExprKind::kIntLit || e->kind == ExprKind::kFloatLit ||
               e->kind == ExprKind::kBoolLit);
}

double LiteralValue(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kIntLit: return static_cast<double>(e.int_value);
    case ExprKind::kFloatLit: return e.float_value;
    case ExprKind::kBoolLit: return e.bool_value ? 1.0 : 0.0;
    default: return 0.0;
  }
}

bool IsIntLike(const Expr& e) {
  return e.kind == ExprKind::kIntLit || e.kind == ExprKind::kBoolLit;
}

ExprPtr MakeLiteral(ScalarType type, double value) {
  switch (type) {
    case ScalarType::kBool: return BoolLit(value != 0.0);
    case ScalarType::kInt:
    case ScalarType::kUInt: return IntLit(static_cast<long long>(value));
    default: return FloatLit(value);
  }
}

/// Math builtins foldable at compile time; both CUDA-suffixed and plain
/// OpenCL spellings are accepted since folding runs before function mapping.
bool EvalMathCall(const std::string& name, const std::vector<double>& args,
                  double* out) {
  auto unary = [&](double (*fn)(double)) {
    if (args.size() != 1) return false;
    *out = fn(args[0]);
    return true;
  };
  auto binary = [&](double (*fn)(double, double)) {
    if (args.size() != 2) return false;
    *out = fn(args[0], args[1]);
    return true;
  };
  if (name == "expf" || name == "exp") return unary(std::exp);
  if (name == "logf" || name == "log") return unary(std::log);
  if (name == "sqrtf" || name == "sqrt") return unary(std::sqrt);
  if (name == "fabsf" || name == "fabs") return unary(std::fabs);
  if (name == "sinf" || name == "sin") return unary(std::sin);
  if (name == "cosf" || name == "cos") return unary(std::cos);
  if (name == "powf" || name == "pow") return binary(std::pow);
  if (name == "fminf" || name == "fmin") return binary([](double a, double b) { return a < b ? a : b; });
  if (name == "fmaxf" || name == "fmax") return binary([](double a, double b) { return a > b ? a : b; });
  return false;
}

ExprPtr FoldNode(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kUnary: {
      if (!IsLiteral(e.args[0])) return nullptr;
      const double v = LiteralValue(*e.args[0]);
      if (e.unary_op == UnaryOp::kNot) return BoolLit(v == 0.0);
      return MakeLiteral(e.args[0]->type, -v);
    }
    case ExprKind::kBinary: {
      const ExprPtr& lhs = e.args[0];
      const ExprPtr& rhs = e.args[1];
      // Algebraic identities on one literal operand (x+0, x*1, x*0).
      if (IsLiteral(rhs) && !IsLiteral(lhs)) {
        const double r = LiteralValue(*rhs);
        if (e.binary_op == BinaryOp::kAdd && r == 0.0) return lhs;
        if (e.binary_op == BinaryOp::kSub && r == 0.0) return lhs;
        if (e.binary_op == BinaryOp::kMul && r == 1.0) return lhs;
        if (e.binary_op == BinaryOp::kDiv && r == 1.0) return lhs;
        if (e.binary_op == BinaryOp::kMul && r == 0.0 &&
            lhs->type != ScalarType::kFloat)
          return MakeLiteral(lhs->type, 0.0);
      }
      if (IsLiteral(lhs) && !IsLiteral(rhs)) {
        const double l = LiteralValue(*lhs);
        if (e.binary_op == BinaryOp::kAdd && l == 0.0) return rhs;
        if (e.binary_op == BinaryOp::kMul && l == 1.0) return rhs;
        if (e.binary_op == BinaryOp::kMul && l == 0.0 &&
            rhs->type != ScalarType::kFloat)
          return MakeLiteral(rhs->type, 0.0);
      }
      if (!IsLiteral(lhs) || !IsLiteral(rhs)) return nullptr;
      const double l = LiteralValue(*lhs);
      const double r = LiteralValue(*rhs);
      const bool int_math = IsIntLike(*lhs) && IsIntLike(*rhs);
      switch (e.binary_op) {
        case BinaryOp::kAdd: return MakeLiteral(e.type, l + r);
        case BinaryOp::kSub: return MakeLiteral(e.type, l - r);
        case BinaryOp::kMul: return MakeLiteral(e.type, l * r);
        case BinaryOp::kDiv:
          if (r == 0.0) return nullptr;  // keep; runtime semantics decide
          if (int_math)
            return IntLit(static_cast<long long>(l) / static_cast<long long>(r));
          return MakeLiteral(e.type, l / r);
        case BinaryOp::kMod:
          if (!int_math || r == 0.0) return nullptr;
          return IntLit(static_cast<long long>(l) % static_cast<long long>(r));
        case BinaryOp::kLt: return BoolLit(l < r);
        case BinaryOp::kLe: return BoolLit(l <= r);
        case BinaryOp::kGt: return BoolLit(l > r);
        case BinaryOp::kGe: return BoolLit(l >= r);
        case BinaryOp::kEq: return BoolLit(l == r);
        case BinaryOp::kNe: return BoolLit(l != r);
        case BinaryOp::kAnd: return BoolLit(l != 0.0 && r != 0.0);
        case BinaryOp::kOr: return BoolLit(l != 0.0 || r != 0.0);
      }
      return nullptr;
    }
    case ExprKind::kConditional:
      if (IsLiteral(e.args[0]))
        return LiteralValue(*e.args[0]) != 0.0 ? e.args[1] : e.args[2];
      return nullptr;
    case ExprKind::kCast:
      if (IsLiteral(e.args[0]))
        return MakeLiteral(e.type, LiteralValue(*e.args[0]));
      return nullptr;
    case ExprKind::kCall: {
      std::vector<double> values;
      for (const auto& arg : e.args) {
        if (!IsLiteral(arg)) return nullptr;
        values.push_back(LiteralValue(*arg));
      }
      double out = 0.0;
      if (!EvalMathCall(e.name, values, &out)) return nullptr;
      // Math results are float-typed in the DSL (single precision kernels).
      return FloatLit(static_cast<float>(out));
    }
    default:
      return nullptr;
  }
}

}  // namespace

ExprPtr FoldConstants(const ExprPtr& expr) {
  return RewriteExpr(expr, FoldNode);
}

StmtPtr FoldConstants(const StmtPtr& stmt) {
  return RewriteStmtExprs(stmt, FoldNode);
}

bool EvaluateConstant(const ExprPtr& expr, double* out) {
  const ExprPtr folded = FoldConstants(expr);
  if (!IsLiteral(folded)) return false;
  *out = LiteralValue(*folded);
  return true;
}

}  // namespace hipacc::ast
