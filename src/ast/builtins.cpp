#include "ast/builtins.hpp"

#include <vector>

namespace hipacc::ast {
namespace {

const std::vector<BuiltinFn>& Table() {
  using S = ScalarType;
  static const std::vector<BuiltinFn> table = {
      {"exp", 1, S::kFloat, "expf", "exp", "__expf", OpCost::kSfu},
      {"exp2", 1, S::kFloat, "exp2f", "exp2", "__exp2f", OpCost::kSfu},
      {"log", 1, S::kFloat, "logf", "log", "__logf", OpCost::kSfu},
      {"log2", 1, S::kFloat, "log2f", "log2", "__log2f", OpCost::kSfu},
      {"sqrt", 1, S::kFloat, "sqrtf", "sqrt", "", OpCost::kSfu},
      {"rsqrt", 1, S::kFloat, "rsqrtf", "rsqrt", "", OpCost::kSfu},
      {"sin", 1, S::kFloat, "sinf", "sin", "__sinf", OpCost::kSfu},
      {"cos", 1, S::kFloat, "cosf", "cos", "__cosf", OpCost::kSfu},
      {"tan", 1, S::kFloat, "tanf", "tan", "__tanf", OpCost::kMulti},
      {"atan", 1, S::kFloat, "atanf", "atan", "", OpCost::kMulti},
      {"atan2", 2, S::kFloat, "atan2f", "atan2", "", OpCost::kMulti},
      {"pow", 2, S::kFloat, "powf", "pow", "__powf", OpCost::kMulti},
      {"fmod", 2, S::kFloat, "fmodf", "fmod", "", OpCost::kMulti},
      {"fabs", 1, S::kFloat, "fabsf", "fabs", "", OpCost::kAlu},
      {"fmin", 2, S::kFloat, "fminf", "fmin", "", OpCost::kAlu},
      {"fmax", 2, S::kFloat, "fmaxf", "fmax", "", OpCost::kAlu},
      {"floor", 1, S::kFloat, "floorf", "floor", "", OpCost::kAlu},
      {"ceil", 1, S::kFloat, "ceilf", "ceil", "", OpCost::kAlu},
      {"round", 1, S::kFloat, "roundf", "round", "", OpCost::kAlu},
      {"min", 2, S::kInt, "min", "min", "", OpCost::kAlu},
      {"max", 2, S::kInt, "max", "max", "", OpCost::kAlu},
      {"abs", 1, S::kInt, "abs", "abs", "", OpCost::kAlu},
  };
  return table;
}

}  // namespace

std::optional<BuiltinFn> FindBuiltin(const std::string& name) {
  for (const auto& fn : Table()) {
    if (fn.name == name || fn.cuda_name == name || fn.opencl_name == name)
      return fn;
  }
  return std::nullopt;
}

}  // namespace hipacc::ast
