# Empty compiler generated dependencies file for ablation_smem_window.
# This may be replaced when dependencies are built.
