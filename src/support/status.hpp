// Lightweight error-handling primitives used across the HIPAcc reproduction.
//
// The library avoids exceptions on hot paths; fallible operations return
// Status (or Result<T>) and the caller decides whether to propagate, log, or
// abort. HIPACC_CHECK is for programmer invariants that must never fail.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace hipacc {

/// Error categories mirroring the failure surfaces of a GPU runtime.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< bad user input (sizes, modes, null data)
  kOutOfRange,        ///< index / region outside a valid domain
  kResourceExhausted, ///< kernel config exceeds device limits (launch error)
  kUnimplemented,     ///< feature not supported by a backend
  kInternal,          ///< invariant violation inside the framework
  kParseError,        ///< DSL frontend rejected the kernel source
};

/// Human-readable name of a StatusCode ("ok", "invalid_argument", ...).
const char* to_string(StatusCode code) noexcept;

/// A cheap, movable success-or-error value. Empty message means success.
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;
  /// Constructs an error status; `code` must not be kOk for real errors.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory helpers for the common cases.
  static Status Ok() { return {}; }
  static Status Invalid(std::string msg) {
    return {StatusCode::kInvalidArgument, std::move(msg)};
  }
  static Status OutOfRange(std::string msg) {
    return {StatusCode::kOutOfRange, std::move(msg)};
  }
  static Status Exhausted(std::string msg) {
    return {StatusCode::kResourceExhausted, std::move(msg)};
  }
  static Status Unimplemented(std::string msg) {
    return {StatusCode::kUnimplemented, std::move(msg)};
  }
  static Status Internal(std::string msg) {
    return {StatusCode::kInternal, std::move(msg)};
  }
  static Status Parse(std::string msg) {
    return {StatusCode::kParseError, std::move(msg)};
  }

  bool ok() const noexcept { return code_ == StatusCode::kOk; }
  StatusCode code() const noexcept { return code_; }
  const std::string& message() const noexcept { return message_; }

  /// "ok" or "<code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Value-or-error. On error the value is absent; accessing it is a bug.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}          // NOLINT implicit
  Result(Status status) : status_(std::move(status)) {}  // NOLINT implicit

  bool ok() const noexcept { return status_.ok(); }
  const Status& status() const noexcept { return status_; }

  /// Access the contained value. Precondition: ok().
  const T& value() const& {
    if (!ok()) {
      std::fprintf(stderr, "Result::value() on error: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
    return *value_;
  }
  T& value() & {
    return const_cast<T&>(static_cast<const Result*>(this)->value());
  }
  T&& take() && {
    value();  // validates
    return std::move(*value_);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

namespace detail {
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& msg);
}  // namespace detail

/// Fatal invariant check; prints location and aborts on failure.
#define HIPACC_CHECK(expr)                                              \
  do {                                                                  \
    if (!(expr)) ::hipacc::detail::CheckFailed(__FILE__, __LINE__, #expr, ""); \
  } while (0)

#define HIPACC_CHECK_MSG(expr, msg)                                     \
  do {                                                                  \
    if (!(expr))                                                        \
      ::hipacc::detail::CheckFailed(__FILE__, __LINE__, #expr, (msg));  \
  } while (0)

/// Propagates a non-ok Status out of the current function.
#define HIPACC_RETURN_IF_ERROR(expr)              \
  do {                                            \
    ::hipacc::Status _st = (expr);                \
    if (!_st.ok()) return _st;                    \
  } while (0)

#define HIPACC_CONCAT_IMPL_(a, b) a##b
#define HIPACC_CONCAT_(a, b) HIPACC_CONCAT_IMPL_(a, b)

/// Evaluates a Result<T> expression, propagating the error or binding the
/// value: HIPACC_ASSIGN_OR_RETURN(const Foo foo, ComputeFoo());
/// Expands to multiple statements — requires a braced scope.
#define HIPACC_ASSIGN_OR_RETURN(decl, expr) \
  HIPACC_ASSIGN_OR_RETURN_IMPL_(HIPACC_CONCAT_(_hipacc_result_, __LINE__), \
                                decl, expr)
#define HIPACC_ASSIGN_OR_RETURN_IMPL_(tmp, decl, expr) \
  auto tmp = (expr);                                   \
  if (!tmp.ok()) return tmp.status();                  \
  decl = std::move(tmp).take();

}  // namespace hipacc
