// Separable-filter decomposition: the graph runtime's `separate` option
// splits rank-1 2D convolutions into a row pass plus a column pass, and the
// result must match the direct 2D kernel up to factorization rounding on
// every defined boundary mode — while non-separable, small, or
// undefined-border stages stay direct.
#include <gtest/gtest.h>

#include "compiler/separate.hpp"
#include "image/metrics.hpp"
#include "image/synthetic.hpp"
#include "ops/kernel_sources.hpp"
#include "ops/masks.hpp"
#include "runtime/graph.hpp"
#include "sim/trace.hpp"

namespace hipacc {
namespace {

using ast::BoundaryMode;
using runtime::GraphOptions;
using runtime::PipelineGraph;

/// Runs a single-stage graph over `source` and returns the output pixels.
/// `edges` (optional) receives the separate.edges counter value.
HostImage<float> RunStage(const frontend::KernelSource& source,
                          const HostImage<float>& in, bool separate,
                          long long* edges = nullptr,
                          long long* stages = nullptr) {
  PipelineGraph graph;
  graph.Source("in", in.width(), in.height())
      .Kernel("filter", source, {{"Input", "in"}})
      .Output("filter");
  HostImage<float> out(in.width(), in.height());
  sim::TraceSink trace;
  GraphOptions options;
  options.separate = separate;
  options.run.trace = &trace;
  const Status status = graph.Run({{"in", &in}}, {{"filter", &out}}, options);
  EXPECT_TRUE(status.ok()) << status.message();
  if (edges != nullptr) *edges = trace.counter("separate.edges");
  if (stages != nullptr) *stages = trace.counter("graph.stages");
  return out;
}

TEST(SeparateTest, GaussianMatchesDirectOnEveryDefinedBoundaryMode) {
  const HostImage<float> in = MakeNoiseImage(73, 41, 7);
  for (const BoundaryMode mode :
       {BoundaryMode::kClamp, BoundaryMode::kRepeat, BoundaryMode::kMirror,
        BoundaryMode::kConstant}) {
    const frontend::KernelSource source =
        ops::GaussianSource(5, 1.5f, mode, /*constant_value=*/0.25f);
    long long edges = 0, stages = 0;
    const HostImage<float> direct = RunStage(source, in, /*separate=*/false);
    const HostImage<float> split =
        RunStage(source, in, /*separate=*/true, &edges, &stages);
    EXPECT_EQ(edges, 1) << "mode " << static_cast<int>(mode);
    EXPECT_EQ(stages, 3);  // source + row pass + column pass
    // Clamp/repeat/mirror remap indices per axis and constant borders are
    // reproduced via the row-sum trick, so the decomposition is exact up to
    // float rounding of the factor products (coefficients sum to ~1).
    EXPECT_LE(MaxAbsDiff(direct, split), 1e-5)
        << "mode " << static_cast<int>(mode);
  }
}

TEST(SeparateTest, LargeKernelStillMatches) {
  const HostImage<float> in = MakeNoiseImage(64, 64, 3);
  const frontend::KernelSource source =
      ops::GaussianSource(9, 2.5f, BoundaryMode::kMirror);
  long long edges = 0;
  const HostImage<float> direct = RunStage(source, in, false);
  const HostImage<float> split = RunStage(source, in, true, &edges);
  EXPECT_EQ(edges, 1);
  EXPECT_LE(MaxAbsDiff(direct, split), 1e-5);
}

TEST(SeparateTest, SmallWindowStaysDirect) {
  // 3x3: 9 direct taps vs 3+3 plus the intermediate round trip — the tap
  // heuristic keeps it as one stage.
  const HostImage<float> in = MakeNoiseImage(32, 32, 1);
  long long edges = 0, stages = 0;
  RunStage(ops::GaussianSource(3, 1.0f, BoundaryMode::kClamp), in, true,
           &edges, &stages);
  EXPECT_EQ(edges, 0);
  EXPECT_EQ(stages, 2);  // source + the unchanged direct stage
}

TEST(SeparateTest, UndefinedBorderStaysDirect) {
  // kUndefined out-of-bounds reads have no defined value, so routing them
  // through an intermediate image would launder garbage; the pass must
  // leave such stages alone.
  const frontend::KernelSource source =
      ops::GaussianSource(5, 1.5f, BoundaryMode::kUndefined);
  EXPECT_FALSE(compiler::SeparateConvolution(source).has_value());
}

TEST(SeparateTest, NonSeparableMaskStaysDirect) {
  // A genuinely 2D mask (rank 2) must not be decomposed even at a window
  // size where the tap heuristic would want to.
  frontend::KernelSource source =
      ops::GaussianSource(5, 1.5f, BoundaryMode::kClamp);
  std::vector<float>& coeffs = source.masks.front().static_values;
  coeffs[0] += 0.25f;  // break rank-1 structure
  coeffs[7] -= 0.125f;
  EXPECT_FALSE(compiler::SeparateConvolution(source).has_value());

  const HostImage<float> in = MakeNoiseImage(24, 24, 5);
  long long edges = 0;
  const HostImage<float> direct = RunStage(source, in, false);
  const HostImage<float> split = RunStage(source, in, true, &edges);
  EXPECT_EQ(edges, 0);
  EXPECT_EQ(MaxAbsDiff(direct, split), 0.0);  // same stage, bit-identical
}

TEST(SeparateTest, NonCanonicalBodyStaysDirect) {
  // The DSL-level convolve() form and parameterised kernels are not the
  // canonical loop nest; the structural matcher must decline both.
  EXPECT_FALSE(compiler::SeparateConvolution(
                   ops::GaussianConvolveSource(5, 1.5f, BoundaryMode::kClamp))
                   .has_value());
  EXPECT_FALSE(
      compiler::SeparateConvolution(ops::Median3x3Source(BoundaryMode::kClamp))
          .has_value());
}

TEST(SeparateTest, SeparatedStagesReuseThePool) {
  // The row->col intermediate is a pooled buffer: a second Run() must not
  // allocate again.
  const HostImage<float> in = MakeNoiseImage(48, 48, 2);
  const frontend::KernelSource source =
      ops::GaussianSource(5, 1.5f, BoundaryMode::kClamp);
  PipelineGraph graph;
  graph.Source("in", in.width(), in.height())
      .Kernel("filter", source, {{"Input", "in"}})
      .Output("filter");
  HostImage<float> out(in.width(), in.height());
  sim::TraceSink trace;
  GraphOptions options;
  options.separate = true;
  options.run.trace = &trace;
  ASSERT_TRUE(graph.Run({{"in", &in}}, {{"filter", &out}}, options).ok());
  const long long allocs = trace.counter("bufpool.alloc");
  ASSERT_TRUE(graph.Run({{"in", &in}}, {{"filter", &out}}, options).ok());
  EXPECT_EQ(trace.counter("bufpool.alloc"), allocs);
  EXPECT_GT(trace.counter("bufpool.reuse"), 0);
  EXPECT_EQ(trace.counter("separate.edges"), 2);  // once per Run()
}

}  // namespace
}  // namespace hipacc
