file(REMOVE_RECURSE
  "CMakeFiles/ablation_border.dir/ablation_border.cpp.o"
  "CMakeFiles/ablation_border.dir/ablation_border.cpp.o.d"
  "ablation_border"
  "ablation_border.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_border.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
