file(REMOVE_RECURSE
  "CMakeFiles/hipacc_sim.dir/interpreter.cpp.o"
  "CMakeFiles/hipacc_sim.dir/interpreter.cpp.o.d"
  "CMakeFiles/hipacc_sim.dir/memory.cpp.o"
  "CMakeFiles/hipacc_sim.dir/memory.cpp.o.d"
  "CMakeFiles/hipacc_sim.dir/simulator.cpp.o"
  "CMakeFiles/hipacc_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/hipacc_sim.dir/timing.cpp.o"
  "CMakeFiles/hipacc_sim.dir/timing.cpp.o.d"
  "libhipacc_sim.a"
  "libhipacc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipacc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
