// Scalar optimizer over lowered kernel bodies: common-subexpression
// elimination and loop-invariant code motion for memory reads and math
// calls. This models what nvcc / the OpenCL compiler do to the generated
// source after source-to-source translation (the paper relies on the vendor
// compiler for these cleanups — e.g. Listing 1 re-reads Input(xf, yf) three
// times per tap and reads the loop-invariant center pixel in every
// iteration); without it the simulated device would grossly over-count
// memory traffic.
//
// Conservative by construction: an expression is only reused or hoisted if
// it is pure (all IR expressions are — input buffers are read-only and the
// output never aliases an input) and none of its free variables is assigned
// or declared within the region it would span.
#pragma once

#include "ast/stmt.hpp"

namespace hipacc::codegen {

/// Applies CSE within every block and LICM on every counted loop, bottom-up.
/// Introduced temporaries are named _cse<N> / _licm<N>.
ast::StmtPtr OptimizeScalars(const ast::StmtPtr& body);

}  // namespace hipacc::codegen
