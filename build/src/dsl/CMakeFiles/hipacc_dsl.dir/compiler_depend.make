# Empty compiler generated dependencies file for hipacc_dsl.
# This may be replaced when dependencies are built.
