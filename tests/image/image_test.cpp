#include <gtest/gtest.h>

#include <cmath>

#include "image/host_image.hpp"
#include "image/metrics.hpp"
#include "image/synthetic.hpp"

namespace hipacc {
namespace {

TEST(HostImageTest, ConstructionAndFill) {
  HostImage<float> img(4, 3, 0.5f);
  EXPECT_EQ(img.width(), 4);
  EXPECT_EQ(img.height(), 3);
  EXPECT_EQ(img.size(), 12u);
  EXPECT_EQ(img(3, 2), 0.5f);
  img.Fill(1.0f);
  EXPECT_EQ(img(0, 0), 1.0f);
}

TEST(HostImageTest, FromDataRowMajor) {
  auto img = HostImage<int>::FromData(2, 2, {1, 2, 3, 4});
  EXPECT_EQ(img(0, 0), 1);
  EXPECT_EQ(img(1, 0), 2);
  EXPECT_EQ(img(0, 1), 3);
  EXPECT_EQ(img(1, 1), 4);
}

TEST(HostImageTest, Equality) {
  auto a = HostImage<int>::FromData(2, 1, {1, 2});
  auto b = HostImage<int>::FromData(2, 1, {1, 2});
  auto c = HostImage<int>::FromData(2, 1, {1, 3});
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(SyntheticTest, NoiseDeterministicAndInRange) {
  const auto a = MakeNoiseImage(16, 16, 42);
  const auto b = MakeNoiseImage(16, 16, 42);
  EXPECT_EQ(a, b);
  for (int y = 0; y < 16; ++y)
    for (int x = 0; x < 16; ++x) {
      EXPECT_GE(a(x, y), 0.0f);
      EXPECT_LT(a(x, y), 1.0f);
    }
}

TEST(SyntheticTest, GradientEndpoints) {
  const auto g = MakeGradientImage(5, 2);
  EXPECT_FLOAT_EQ(g(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(g(4, 1), 1.0f);
}

TEST(SyntheticTest, PhantomHasVesselsAndRange) {
  const auto clean = MakeAngiogramPhantom(64, 64, 0.0f, 1);
  float lo = 1e9f, hi = -1e9f;
  for (int y = 0; y < 64; ++y)
    for (int x = 0; x < 64; ++x) {
      lo = std::min(lo, clean(x, y));
      hi = std::max(hi, clean(x, y));
    }
  EXPECT_GE(lo, 0.0f);
  EXPECT_LE(hi, 1.0f);
  EXPECT_LT(lo, hi - 0.2f);  // vessels create real contrast
}

TEST(SyntheticTest, CheckerboardAlternates) {
  const auto cb = MakeCheckerboard(4, 4, 2, 0.0f, 1.0f);
  EXPECT_EQ(cb(0, 0), 0.0f);
  EXPECT_EQ(cb(2, 0), 1.0f);
  EXPECT_EQ(cb(0, 2), 1.0f);
  EXPECT_EQ(cb(2, 2), 0.0f);
}

TEST(SyntheticTest, ImpulseAndIndexImages) {
  const auto imp = MakeImpulseImage(8, 8, 3, 4, 2.0f);
  EXPECT_EQ(imp(3, 4), 2.0f);
  EXPECT_EQ(imp(0, 0), 0.0f);
  const auto idx = MakeIndexImage(4, 4);
  EXPECT_EQ(idx(2, 3), 14.0f);
}

TEST(MetricsTest, MaxAbsDiffAndMse) {
  auto a = HostImage<float>::FromData(2, 1, {1.0f, 2.0f});
  auto b = HostImage<float>::FromData(2, 1, {1.5f, 1.0f});
  EXPECT_FLOAT_EQ(MaxAbsDiff(a, b), 1.0);
  EXPECT_FLOAT_EQ(MeanSquaredError(a, b), (0.25 + 1.0) / 2.0);
}

TEST(MetricsTest, PsnrInfiniteForIdentical) {
  const auto a = MakeNoiseImage(8, 8, 3);
  EXPECT_TRUE(std::isinf(Psnr(a, a)));
  const auto b = MakeNoiseImage(8, 8, 4);
  EXPECT_GT(Psnr(a, b), 0.0);
  EXPECT_FALSE(std::isinf(Psnr(a, b)));
}

TEST(MetricsTest, AllCloseRespectsTolerance) {
  auto a = HostImage<float>::FromData(1, 1, {1.0f});
  auto b = HostImage<float>::FromData(1, 1, {1.01f});
  EXPECT_TRUE(AllClose(a, b, 0.02));
  EXPECT_FALSE(AllClose(a, b, 0.001));
  auto c = HostImage<float>::FromData(2, 1, {1.0f, 1.0f});
  EXPECT_FALSE(AllClose(a, c, 1.0));  // shape mismatch
}

}  // namespace
}  // namespace hipacc
