#include "common/table.hpp"

#include <algorithm>
#include <cstdio>

#include "common/sim_engine_flag.hpp"
#include "support/cache_dir_flag.hpp"
#include "support/string_utils.hpp"

namespace hipacc::bench {

BenchTuning& Tuning() {
  static BenchTuning tuning;
  return tuning;
}

support::CliParser MakeBenchCli(std::string program, std::string summary) {
  support::CliParser cli(std::move(program), std::move(summary));
  RegisterSimEngineFlag(cli);
  support::RegisterCacheDirFlag(cli);
  cli.Value("ppt", "N|auto",
            "pixels per thread for generated kernels (auto = heuristic "
            "sweep; default: bench-specific)",
            [](const std::string& value) -> Status {
              if (value == "auto") {
                Tuning().ppt = 0;
                return Status::Ok();
              }
              int n = 0;
              if (std::sscanf(value.c_str(), "%d", &n) != 1 || n < 1 ||
                  n > 32)
                return Status::Invalid("--ppt expects 1..32 or auto, got '" +
                                       value + "'");
              Tuning().ppt = n;
              return Status::Ok();
            });
  cli.Switch("no-separate",
             "keep separable convolutions as direct 2D stages in "
             "graph-based benches",
             []() -> Status {
               Tuning().separate = false;
               return Status::Ok();
             });
  cli.Value("fuse", "off|point|horizontal|halo|all",
            "fusion kinds the graph planner may apply (default: all)",
            [](const std::string& value) -> Status {
              Result<compiler::FusionMode> mode =
                  compiler::ParseFusionMode(value);
              if (!mode.ok()) return mode.status();
              Tuning().fuse = mode.value();
              return Status::Ok();
            });
  cli.Switch("explain-fusion",
             "print every fusion candidate the planner examined "
             "(accept/reject, reason, modelled score)",
             []() -> Status {
               Tuning().explain_fusion = true;
               return Status::Ok();
             });
  return cli;
}

void PrintFusionDecisions(
    std::vector<compiler::CandidateDecision> decisions) {
  compiler::DedupeDecisions(&decisions);
  std::printf("fusion candidates (%zu examined):\n", decisions.size());
  for (const compiler::CandidateDecision& d : decisions) {
    const char* verdict = d.accepted ? "accepted"
                          : d.legal  ? "rejected (profitability)"
                                     : "rejected (legality)";
    std::printf("  [%-10s] %s -> %s: %s — %s", to_string(d.kind),
                d.producer.c_str(), d.consumer.c_str(), verdict,
                d.reason.c_str());
    if (d.legal) std::printf(" (score %.4f cycles/pixel)", d.score);
    std::printf("\n");
  }
}

void Table::Row(const std::string& label) {
  rows_.push_back({label, {}, {}});
}

void Table::Cell(double ms) {
  rows_.back().rendered.push_back(StrFormat("%.2f", ms));
  rows_.back().values.emplace_back(ms);
}

void Table::Cell(const std::string& text) {
  rows_.back().rendered.push_back(text);
  // Typed sentinel for the JSON form: consumers check "status" instead of
  // pattern-matching magic strings, and "ms" is null rather than absent so
  // every cell has the same shape.
  support::Json cell = support::Json::Object();
  cell["ms"] = support::Json();
  cell["status"] = text;
  rows_.back().values.push_back(std::move(cell));
}

std::string Table::Render(const std::string& title) const {
  size_t label_width = 8;
  for (const TableRow& row : rows_)
    label_width = std::max(label_width, row.label.size());
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
    for (const TableRow& row : rows_)
      if (c < row.rendered.size())
        widths[c] = std::max(widths[c], row.rendered[c].size());
  }

  std::string out = title + "\n";
  std::string header(label_width, ' ');
  for (size_t c = 0; c < columns_.size(); ++c) {
    header += "  ";
    header += std::string(widths[c] - columns_[c].size(), ' ') + columns_[c];
  }
  out += header + "\n";
  out += std::string(header.size(), '-') + "\n";
  for (const TableRow& row : rows_) {
    std::string line = row.label + std::string(label_width - row.label.size(), ' ');
    for (size_t c = 0; c < row.rendered.size(); ++c) {
      line += "  ";
      line += std::string(widths[c] >= row.rendered[c].size()
                              ? widths[c] - row.rendered[c].size()
                              : 0,
                          ' ') +
              row.rendered[c];
    }
    out += line + "\n";
  }
  return out;
}

support::Json Table::ToJson(const std::string& title) const {
  support::Json doc = support::Json::Object();
  doc["title"] = title;
  support::Json columns = support::Json::Array();
  for (const std::string& column : columns_) columns.push_back(column);
  doc["columns"] = std::move(columns);
  support::Json rows = support::Json::Array();
  for (const TableRow& row : rows_) {
    support::Json r = support::Json::Object();
    r["label"] = row.label;
    support::Json cells = support::Json::Array();
    for (const support::Json& value : row.values) cells.push_back(value);
    r["cells"] = std::move(cells);
    rows.push_back(std::move(r));
  }
  doc["rows"] = std::move(rows);
  return doc;
}

Status Table::WriteJson(const std::string& path,
                        const std::string& title) const {
  return support::WriteFile(path, ToJson(title).Dump(2) + "\n");
}

}  // namespace hipacc::bench
