// google-benchmark head-to-head of the simulator's execution engines: the
// tree-walking AST interpreter, the compiled bytecode VM, and the native
// tier (generated host code), on the Gaussian, Sobel, and bilateral
// kernels. Reports ns/pixel (wall-clock of the simulator itself, not
// modelled device time) so the engines' dispatch overhead is directly
// comparable; the bytecode rows should be well under half the AST rows and
// the native rows well under the bytecode rows. Native rows tier up during
// a warm-up launch, so the measured loop never includes the toolchain.
// Run with --benchmark_filter=Engine to see just the comparison.
#include <benchmark/benchmark.h>

#include "compiler/driver.hpp"
#include "image/synthetic.hpp"
#include "ops/kernel_sources.hpp"
#include "ops/masks.hpp"
#include "runtime/bindings.hpp"
#include "sim/simulator.hpp"

using namespace hipacc;

namespace {

struct Workload {
  compiler::CompiledKernel kernel;
  dsl::Image<float> in;
  dsl::Image<float> out;
  runtime::LaunchHolder holder;

  Workload(const frontend::KernelSource& source, int n,
           const runtime::BindingSet& scalars)
      : in(n, n), out(n, n) {
    compiler::CompileOptions options;
    options.device = hw::TeslaC2050();
    options.image_width = n;
    options.image_height = n;
    auto compiled = compiler::Compile(source, options);
    HIPACC_CHECK(compiled.ok());
    kernel = std::move(compiled).take();
    in.CopyFrom(MakeNoiseImage(n, n, 7));
    runtime::BindingSet bindings = scalars;
    bindings.Input("Input", in).Output(out);
    auto built =
        runtime::BuildLaunch(kernel.device_ir, kernel.config.config, bindings);
    HIPACC_CHECK(built.ok());
    holder = std::move(built).take();
    holder.launch.programs = kernel.bytecode.get();
  }
};

void RunEngineBench(benchmark::State& state, Workload& w,
                    sim::ExecEngine engine) {
  sim::SimulatorOptions options;
  options.engine = engine;
  options.jit_threshold = 1;
  const sim::Simulator simulator(hw::TeslaC2050(), options);
  if (engine == sim::ExecEngine::kNative) {
    // Tier up outside the timed loop: the first launch pays the one-off
    // host-compiler run (cached process-wide afterwards).
    auto warm = simulator.Execute(w.holder.launch);
    HIPACC_CHECK(warm.ok());
  }
  for (auto _ : state) {
    auto stats = simulator.Execute(w.holder.launch);
    benchmark::DoNotOptimize(stats.ok());
    HIPACC_CHECK(stats.ok());
  }
  const long pixels =
      static_cast<long>(w.holder.launch.width) * w.holder.launch.height;
  state.SetItemsProcessed(state.iterations() * pixels);
}

Workload& GaussianWorkload() {
  static Workload w(
      ops::GaussianSource(5, 1.2f, ast::BoundaryMode::kMirror), 512, {});
  return w;
}

Workload& SobelWorkload() {
  static Workload w(ops::ConvolutionSource("sobel", 3, 3, ops::SobelMaskX(),
                                           ast::BoundaryMode::kClamp),
                    512, {});
  return w;
}

Workload& BilateralWorkload() {
  static runtime::BindingSet scalars = [] {
    runtime::BindingSet s;
    s.Scalar("sigma_d", 2).Scalar("sigma_r", 5);
    return s;
  }();
  static Workload w(ops::BilateralMaskSource(2, ast::BoundaryMode::kClamp),
                    256, scalars);
  return w;
}

Workload& BilateralFixedWorkload() {
  static runtime::BindingSet scalars = [] {
    runtime::BindingSet s;
    s.Scalar("sigma_r", 5);
    return s;
  }();
  static Workload w(ops::BilateralFixedSource(2, ast::BoundaryMode::kClamp),
                    256, scalars);
  return w;
}

Workload& ToneCurveWorkload() {
  static runtime::BindingSet scalars = [] {
    runtime::BindingSet s;
    s.Scalar("center", 0.35f).Scalar("weight", 0.6f);
    return s;
  }();
  static Workload w(ops::ToneCurveSource(8), 512, scalars);
  return w;
}

void BM_EngineAst_Gaussian5(benchmark::State& state) {
  RunEngineBench(state, GaussianWorkload(), sim::ExecEngine::kAst);
}
void BM_EngineNative_Gaussian5(benchmark::State& state) {
  RunEngineBench(state, GaussianWorkload(), sim::ExecEngine::kNative);
}
void BM_EngineBytecode_Gaussian5(benchmark::State& state) {
  RunEngineBench(state, GaussianWorkload(), sim::ExecEngine::kBytecode);
}
void BM_EngineAst_Sobel3(benchmark::State& state) {
  RunEngineBench(state, SobelWorkload(), sim::ExecEngine::kAst);
}
void BM_EngineNative_Sobel3(benchmark::State& state) {
  RunEngineBench(state, SobelWorkload(), sim::ExecEngine::kNative);
}
void BM_EngineBytecode_Sobel3(benchmark::State& state) {
  RunEngineBench(state, SobelWorkload(), sim::ExecEngine::kBytecode);
}
void BM_EngineAst_Bilateral9(benchmark::State& state) {
  RunEngineBench(state, BilateralWorkload(), sim::ExecEngine::kAst);
}
void BM_EngineNative_Bilateral9(benchmark::State& state) {
  RunEngineBench(state, BilateralWorkload(), sim::ExecEngine::kNative);
}
void BM_EngineBytecode_Bilateral9(benchmark::State& state) {
  RunEngineBench(state, BilateralWorkload(), sim::ExecEngine::kBytecode);
}
void BM_EngineAst_BilateralFixed9(benchmark::State& state) {
  RunEngineBench(state, BilateralFixedWorkload(), sim::ExecEngine::kAst);
}
void BM_EngineNative_BilateralFixed9(benchmark::State& state) {
  RunEngineBench(state, BilateralFixedWorkload(), sim::ExecEngine::kNative);
}
void BM_EngineBytecode_BilateralFixed9(benchmark::State& state) {
  RunEngineBench(state, BilateralFixedWorkload(), sim::ExecEngine::kBytecode);
}

void BM_EngineAst_ToneCurve8(benchmark::State& state) {
  RunEngineBench(state, ToneCurveWorkload(), sim::ExecEngine::kAst);
}
void BM_EngineNative_ToneCurve8(benchmark::State& state) {
  RunEngineBench(state, ToneCurveWorkload(), sim::ExecEngine::kNative);
}
void BM_EngineBytecode_ToneCurve8(benchmark::State& state) {
  RunEngineBench(state, ToneCurveWorkload(), sim::ExecEngine::kBytecode);
}

BENCHMARK(BM_EngineAst_Gaussian5)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EngineBytecode_Gaussian5)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EngineNative_Gaussian5)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EngineAst_Sobel3)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EngineBytecode_Sobel3)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EngineNative_Sobel3)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EngineAst_Bilateral9)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EngineBytecode_Bilateral9)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EngineNative_Bilateral9)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EngineAst_BilateralFixed9)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EngineBytecode_BilateralFixed9)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EngineNative_BilateralFixed9)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EngineAst_ToneCurve8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EngineBytecode_ToneCurve8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EngineNative_ToneCurve8)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
