# Empty compiler generated dependencies file for hipacc_sim.
# This may be replaced when dependencies are built.
