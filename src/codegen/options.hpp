// Codegen options: which backend to target and which memory-hierarchy
// optimizations to apply. The defaults correspond to what the paper's
// compiler selects from its micro-benchmark database; the evaluation tables
// toggle them explicitly (+Tex, +Smem, ...) to compare variants.
#pragma once

#include "ast/kernel_ir.hpp"

namespace hipacc::codegen {

/// Strategy for reading input images.
enum class TexturePolicy {
  kNone,     ///< plain global-memory pointers
  kLinear,   ///< CUDA linear-memory texture / OpenCL image object: cached
             ///< reads, boundary handling still in software (the "+Tex" rows)
  kArray2D,  ///< CUDA 2D array texture / OpenCL sampler with address mode:
             ///< hardware boundary handling, Clamp/Repeat only (the
             ///< "+2DTex" / "ImgBH" rows used by the manual baselines)
};

/// How boundary handling is compiled.
enum class BorderPolicy {
  kRegions,  ///< nine region-specialised variants (the paper's approach)
  kUniform,  ///< guards on every access for every thread (manual style)
  kNone,     ///< no guards even if the accessor declares a mode (Undefined)
};

struct CodegenOptions {
  ast::Backend backend = ast::Backend::kCuda;
  TexturePolicy texture = TexturePolicy::kNone;
  BorderPolicy border = BorderPolicy::kRegions;
  /// Stage input tiles into scratchpad memory (Listing 7). Rarely a win for
  /// small windows — Section IV-A — but supported, as in the paper.
  bool use_scratchpad = false;
  /// Place Mask objects in constant memory (Section IV-C). When off, mask
  /// reads are lowered to global-memory reads (the no-constant baseline).
  bool masks_in_constant_memory = true;
  /// Map math builtins onto hardware-accelerated CUDA intrinsics (__expf).
  /// Supported but off by default, exactly as in the paper's evaluation.
  bool use_fast_intrinsics = false;
  /// Run the scalar optimizer (CSE + LICM) on lowered bodies — the stand-in
  /// for the vendor compiler's optimizations over the generated source.
  bool scalar_optimizer = true;
  /// Pack independent scalar operations into VLIW bundles for AMD's
  /// VLIW4/VLIW5 targets (Section VIII outlook). Modelled as improved ALU
  /// issue efficiency on those devices; a no-op elsewhere.
  bool vectorize_vliw = false;
  /// Pixels per thread: each thread computes this many vertically-adjacent
  /// outputs, amortising guards, mask reads and scratchpad staging. 1 =
  /// one output per thread (the classic mapping); 0 = let the hardware-model
  /// heuristic pick from {1, 2, 4, 8} per device.
  int pixels_per_thread = 1;

  /// Memberwise equality; the compilation cache and Retarget use it to
  /// decide whether lowered IR can be reused.
  bool operator==(const CodegenOptions&) const = default;
};

}  // namespace hipacc::codegen
