// OpenCV-like GPU baseline (paper Section VI-A3): separable row/column
// filters as OpenCV's CUDA backend implements Gaussian and Sobel — per-pixel
// boundary handling, precalculated masks in constant memory, and multiple
// output pixels mapped to one thread (PPT) to amortise scheduling overhead
// and maximise reuse. PPT=8 reproduces OpenCV's original mapping, PPT=1 the
// one-to-one mapping of Table VIII/IX.
#pragma once

#include "hwmodel/device_db.hpp"
#include "image/host_image.hpp"
#include "sim/simulator.hpp"

namespace hipacc::baselines {

/// Builds the row- or column-pass device kernel: `taps`-tap 1D convolution
/// with `ppt` output pixels per thread and uniform boundary guards for
/// `mode`. Coefficients go to constant memory under the name "K".
ast::DeviceKernel BuildSeparableKernel(int taps, ast::BoundaryMode mode,
                                       int ppt, bool horizontal,
                                       ast::Backend backend);

struct SeparableTiming {
  double row_ms = 0.0;
  double col_ms = 0.0;
  double total_ms = 0.0;
};

class OpenCvLikeEngine {
 public:
  OpenCvLikeEngine(hw::DeviceSpec device, ast::Backend backend)
      : simulator_(std::move(device)), backend_(backend) {}

  /// Functional separable filtering: dst = colpass(rowpass(src)).
  Result<HostImage<float>> Run(const HostImage<float>& src,
                               const std::vector<float>& mask1d,
                               ast::BoundaryMode mode, int ppt) const;

  /// Modelled execution time of both passes on a width x height image.
  Result<SeparableTiming> Measure(int width, int height,
                                  const std::vector<float>& mask1d,
                                  ast::BoundaryMode mode, int ppt,
                                  hw::KernelConfig config) const;

 private:
  sim::Simulator simulator_;
  ast::Backend backend_;
};

}  // namespace hipacc::baselines
