#include "sim/memory.hpp"

#include <algorithm>
#include <array>

namespace hipacc::sim {

namespace {

/// Sorts `v` and drops duplicates, leaving the distinct values in ascending
/// order — the same order a std::set would iterate them in. The inputs are
/// one warp's addresses (at most 32), so this is far cheaper than
/// tree-based deduplication.
void SortUnique(std::vector<std::uint64_t>* v) {
  // Coalesced warps produce addresses that are already ascending, so check
  // before paying for a sort.
  if (!std::is_sorted(v->begin(), v->end())) std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

}  // namespace

bool SegmentCache::Access(std::uint64_t segment) {
  ++stamp_;
  const std::size_t n = segments_.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (segments_[i] == segment) {
      stamps_[i] = stamp_;
      return true;
    }
  }
  if (static_cast<int>(n) >= capacity_) {
    // Evict the least recently used entry.
    std::size_t lru = 0;
    for (std::size_t i = 1; i < n; ++i)
      if (stamps_[i] < stamps_[lru]) lru = i;
    segments_[lru] = segment;
    stamps_[lru] = stamp_;
  } else {
    segments_.push_back(segment);
    stamps_.push_back(stamp_);
  }
  return false;
}

MemoryModel::MemoryModel(const hw::DeviceSpec& device)
    : device_(device),
      tex_cache_(device.tex_cache_bytes / device.mem_transaction_bytes),
      l1_cache_(device.tex_cache_bytes / device.mem_transaction_bytes) {
  const unsigned t = static_cast<unsigned>(device.mem_transaction_bytes);
  if (t != 0 && (t & (t - 1)) == 0) seg_shift_ = __builtin_ctz(t);
}

void MemoryModel::GlobalAccess(const std::vector<std::uint64_t>& addrs,
                               bool is_write, Metrics* metrics) {
  if (addrs.empty()) return;
  if (is_write)
    ++metrics->global_write_instrs;
  else
    ++metrics->global_read_instrs;

  // Coalescing: one transaction per distinct segment touched by the warp.
  scratch_.clear();
  for (const std::uint64_t addr : addrs) scratch_.push_back(Segment(addr));
  SortUnique(&scratch_);

  if (!is_write && device_.has_global_l1) {
    for (const std::uint64_t seg : scratch_) {
      if (l1_cache_.Access(seg))
        ++metrics->l1_hits;
      else
        ++metrics->global_transactions;
    }
  } else {
    metrics->global_transactions += scratch_.size();
  }
}

void MemoryModel::TextureAccess(const std::vector<std::uint64_t>& addrs,
                                Metrics* metrics) {
  if (addrs.empty()) return;
  ++metrics->tex_read_instrs;
  scratch_.clear();
  for (const std::uint64_t addr : addrs) scratch_.push_back(Segment(addr));
  SortUnique(&scratch_);
  for (const std::uint64_t seg : scratch_) {
    if (tex_cache_.Access(seg))
      ++metrics->tex_hits;
    else
      ++metrics->tex_transactions;
  }
}

void MemoryModel::ConstantAccess(const std::vector<std::uint64_t>& addrs,
                                 Metrics* metrics) {
  if (addrs.empty()) return;
  scratch_ = addrs;
  SortUnique(&scratch_);
  if (scratch_.size() == 1)
    ++metrics->const_broadcasts;
  else
    metrics->const_serialized += scratch_.size();
}

void MemoryModel::SharedAccess(const std::vector<std::uint64_t>& addrs,
                               Metrics* metrics) {
  if (addrs.empty()) return;
  ++metrics->smem_accesses;
  // Bank conflict degree: lanes with the same address broadcast; distinct
  // addresses mapping to one bank serialize.
  scratch_ = addrs;
  SortUnique(&scratch_);
  std::array<std::uint32_t, 64> per_bank{};
  const std::uint64_t banks =
      std::min<std::uint64_t>(static_cast<std::uint64_t>(device_.smem_banks),
                              per_bank.size());
  std::uint64_t degree = 1;
  for (const std::uint64_t addr : scratch_) {
    const std::uint32_t count = ++per_bank[addr % banks];
    degree = std::max<std::uint64_t>(degree, count);
  }
  metrics->smem_conflict_cycles += degree - 1;
}

}  // namespace hipacc::sim
