// Reproduces Table VIII: Gaussian 3x3 and 5x5 on the Tesla C2050 — OpenCV's
// separable GPU filters (PPT=8 original mapping, PPT=1 one-to-one) vs our
// generated implementations with automatic configuration selection.
#include <cstdio>

#include "common/gaussian_table.hpp"
#include "common/sim_engine_flag.hpp"
#include "hwmodel/device_db.hpp"

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (!hipacc::bench::HandleSimEngineFlag(argv[i])) {
      std::fprintf(stderr, "usage: table8_gaussian_tesla [--sim-engine=bytecode|ast]\n");
      return 2;
    }
  }
  hipacc::bench::GaussianTableOptions options;
  options.device = hipacc::hw::TeslaC2050();
  options.json_out = "BENCH_table8.json";
  std::printf("%s\n", hipacc::bench::RunGaussianTable(
                          "Table VIII: Gaussian filters, Tesla C2050", options)
                          .c_str());
  return 0;
}
