file(REMOVE_RECURSE
  "CMakeFiles/hipacc_dsl.dir/boundary.cpp.o"
  "CMakeFiles/hipacc_dsl.dir/boundary.cpp.o.d"
  "libhipacc_dsl.a"
  "libhipacc_dsl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipacc_dsl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
