file(REMOVE_RECURSE
  "CMakeFiles/hipacc_runtime.dir/bindings.cpp.o"
  "CMakeFiles/hipacc_runtime.dir/bindings.cpp.o.d"
  "libhipacc_runtime.a"
  "libhipacc_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipacc_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
