// Persistent compilation-cache tier: a second cache instance (standing in
// for a second process) hits the shared disk store and reproduces the
// artifact bit-identically, corrupted entries repair instead of crash or
// poison, a schema-version bump invalidates wholesale, and concurrent
// get-or-compile races settle on one consistent artifact. The store's own
// frame mechanics live in tests/support/disk_store_test.cpp.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "compiler/cache.hpp"
#include "compiler/disk_cache.hpp"
#include "compiler/driver.hpp"
#include "ops/kernel_sources.hpp"
#include "support/disk_store.hpp"

namespace hipacc {
namespace {

namespace fs = std::filesystem;

frontend::KernelSource Source() {
  return ops::BilateralMaskSource(1, ast::BoundaryMode::kClamp);
}

compiler::CompileOptions Options(compiler::CompilationCache* cache) {
  compiler::CompileOptions options;
  options.image_width = 512;
  options.image_height = 512;
  options.cache = cache;
  return options;
}

std::string FreshRoot(const std::string& name) {
  const fs::path root = fs::path(::testing::TempDir()) / ("disk_cache_" + name);
  fs::remove_all(root);
  return root.string();
}

support::DiskStoreOptions RootedOptions(const std::string& root) {
  support::DiskStoreOptions options;
  options.root = root;
  return options;
}

compiler::CompiledKernel MustCompile(const compiler::CompileOptions& options) {
  Result<compiler::CompiledKernel> compiled = compiler::Compile(Source(), options);
  HIPACC_CHECK(compiled.ok());
  return std::move(compiled).take();
}

TEST(DiskCacheTest, DefaultCacheKeepsDiskTierQuiet) {
  // GlobalDiskStore starts disabled, so a plain cache never touches disk —
  // the hermetic default every other test in the suite relies on.
  compiler::CompilationCache cache;
  MustCompile(Options(&cache));
  const compiler::CompilationCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.disk_hits, 0);
  EXPECT_EQ(stats.disk_stores, 0);
  EXPECT_EQ(stats.target_misses, 1);
}

TEST(DiskCacheTest, SecondCacheInstanceHitsDiskBitIdentically) {
  support::DiskStore store(RootedOptions(FreshRoot("warm")));

  compiler::CompilationCache cold_cache;
  cold_cache.set_disk_store(&store);
  const compiler::CompiledKernel cold = MustCompile(Options(&cold_cache));
  EXPECT_GE(cold_cache.stats().disk_stores, 2);  // frontend + target levels
  EXPECT_EQ(cold_cache.stats().disk_hits, 0);

  // A fresh cache instance is a fresh process as far as the in-memory tier
  // is concerned: every level misses memory and must come off the disk.
  compiler::CompilationCache warm_cache;
  warm_cache.set_disk_store(&store);
  const compiler::CompiledKernel warm = MustCompile(Options(&warm_cache));
  const compiler::CompilationCache::Stats stats = warm_cache.stats();
  EXPECT_EQ(stats.target_misses, 0);
  EXPECT_EQ(stats.target_hits, 1);
  EXPECT_GE(stats.disk_hits, 1);
  EXPECT_EQ(stats.disk_stores, 0);

  EXPECT_EQ(warm.source, cold.source);
  EXPECT_EQ(warm.source_fingerprint, cold.source_fingerprint);
  EXPECT_EQ(warm.config.config, cold.config.config);
  EXPECT_EQ(warm.device_ir.ppt, cold.device_ir.ppt);
  // Bytecode is not serialised; the decode path re-attaches it.
  EXPECT_EQ(warm.bytecode != nullptr, cold.bytecode != nullptr);
}

TEST(DiskCacheTest, CorruptedEntriesRepairOnTheNextCompile) {
  const std::string root = FreshRoot("corrupt");
  support::DiskStore store(RootedOptions(root));

  compiler::CompilationCache seed_cache;
  seed_cache.set_disk_store(&store);
  const compiler::CompiledKernel seeded = MustCompile(Options(&seed_cache));

  for (const auto& entry : fs::recursive_directory_iterator(root))
    if (entry.is_regular_file()) {
      std::ofstream garble(entry.path(), std::ios::binary | std::ios::trunc);
      garble << "not a cache frame";
    }

  // Every disk probe now misses (and unlinks the wreckage); the compile
  // falls through to the real pipeline and restores the entries.
  compiler::CompilationCache repair_cache;
  repair_cache.set_disk_store(&store);
  const compiler::CompiledKernel repaired = MustCompile(Options(&repair_cache));
  EXPECT_EQ(repair_cache.stats().disk_hits, 0);
  EXPECT_EQ(repair_cache.stats().target_misses, 1);
  EXPECT_GE(repair_cache.stats().disk_stores, 2);
  EXPECT_EQ(repaired.source, seeded.source);

  compiler::CompilationCache verify_cache;
  verify_cache.set_disk_store(&store);
  MustCompile(Options(&verify_cache));
  EXPECT_GE(verify_cache.stats().disk_hits, 1);
}

TEST(DiskCacheTest, SchemaVersionBumpInvalidatesWholesale) {
  const std::string root = FreshRoot("version");
  support::DiskStore current(RootedOptions(root));
  compiler::CompilationCache seed_cache;
  seed_cache.set_disk_store(&current);
  MustCompile(Options(&seed_cache));
  ASSERT_GE(seed_cache.stats().disk_stores, 2);

  support::DiskStoreOptions bumped = RootedOptions(root);
  bumped.schema_version_override = support::kDiskStoreSchemaVersion + 1;
  support::DiskStore next(bumped);
  compiler::CompilationCache bumped_cache;
  bumped_cache.set_disk_store(&next);
  MustCompile(Options(&bumped_cache));
  EXPECT_EQ(bumped_cache.stats().disk_hits, 0);
  EXPECT_EQ(bumped_cache.stats().target_misses, 1);
  EXPECT_GE(bumped_cache.stats().disk_stores, 2);
}

TEST(DiskCacheTest, ConcurrentCachesRacingOneKeySettleOnOneArtifact) {
  const std::string root = FreshRoot("race");
  constexpr int kThreads = 6;
  std::vector<std::string> sources(kThreads);

  // Each thread models a separate process: its own DiskStore view and its
  // own CompilationCache, all racing get-or-compile on the same key.
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    workers.emplace_back([&, i] {
      support::DiskStore local(RootedOptions(root));
      compiler::CompilationCache cache;
      cache.set_disk_store(&local);
      sources[i] = MustCompile(Options(&cache)).source;
    });
  }
  for (std::thread& worker : workers) worker.join();

  for (int i = 1; i < kThreads; ++i) EXPECT_EQ(sources[i], sources[0]);

  // Whoever won each rename, the surviving entries serve a clean warm hit.
  support::DiskStore reader(RootedOptions(root));
  compiler::CompilationCache warm_cache;
  warm_cache.set_disk_store(&reader);
  EXPECT_EQ(MustCompile(Options(&warm_cache)).source, sources[0]);
  EXPECT_EQ(warm_cache.stats().target_misses, 0);
  EXPECT_GE(warm_cache.stats().disk_hits, 1);
}

TEST(DiskCacheTest, ArtifactCodecRejectsTamperedPayloads) {
  compiler::CompilationCache cache;
  const compiler::CompiledKernel kernel = MustCompile(Options(&cache));

  const std::string payload = compiler::EncodeCompiledKernel(kernel);
  const std::optional<compiler::CompiledKernel> decoded =
      compiler::DecodeCompiledKernel(payload);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->source, kernel.source);
  EXPECT_EQ(decoded->config.config, kernel.config.config);

  // Decoders are total: truncations yield nullopt, never a malformed
  // artifact (payload-content bit flips are caught one layer down by the
  // DiskStore frame checksum).
  for (const std::size_t cut : {payload.size() / 2, std::size_t{8}, std::size_t{0}})
    EXPECT_FALSE(
        compiler::DecodeCompiledKernel(payload.substr(0, cut)).has_value());
  EXPECT_FALSE(compiler::DecodeCompiledKernel("junk payload").has_value());
}

}  // namespace
}  // namespace hipacc
