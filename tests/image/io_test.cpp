#include "image/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "image/metrics.hpp"
#include "image/synthetic.hpp"

namespace hipacc {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(IoTest, PgmRoundTripWithinQuantization) {
  const auto img = MakeNoiseImage(33, 17, 5);  // odd sizes
  const std::string path = TempPath("roundtrip.pgm");
  ASSERT_TRUE(WritePgm(img, path).ok());
  auto loaded = ReadPgm(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().width(), 33);
  EXPECT_EQ(loaded.value().height(), 17);
  // 8-bit quantization: half a step of 1/255.
  EXPECT_LE(MaxAbsDiff(img, loaded.value()), 0.5 / 255.0 + 1e-6);
  std::remove(path.c_str());
}

TEST(IoTest, PgmClampsOutOfRangePixels) {
  auto img = HostImage<float>::FromData(2, 1, {-0.5f, 1.5f});
  const std::string path = TempPath("clamped.pgm");
  ASSERT_TRUE(WritePgm(img, path).ok());
  auto loaded = ReadPgm(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_FLOAT_EQ(loaded.value()(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(loaded.value()(1, 0), 1.0f);
  std::remove(path.c_str());
}

TEST(IoTest, CsvRoundTripExact) {
  const auto img = MakeNoiseImage(7, 5, 9);
  const std::string path = TempPath("roundtrip.csv");
  ASSERT_TRUE(WriteCsv(img, path).ok());
  auto loaded = ReadCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(img, loaded.value());
  std::remove(path.c_str());
}

TEST(IoTest, MissingFileReportsError) {
  EXPECT_FALSE(ReadPgm(TempPath("does_not_exist.pgm")).ok());
  EXPECT_FALSE(ReadCsv(TempPath("does_not_exist.csv")).ok());
}

TEST(IoTest, RejectsBadPgmHeader) {
  const std::string path = TempPath("bad.pgm");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("P2\n2 2\n255\n0 0 0 0\n", f);  // ASCII PGM is unsupported
  std::fclose(f);
  EXPECT_FALSE(ReadPgm(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hipacc
