// Source-to-source compiler driver: kernel source + metadata in, compiled
// artifact out. The artifact bundles the lowered IR (what the simulated
// device executes), the emitted CUDA/OpenCL source text (what the paper's
// compiler writes to disk), the resource estimate (the nvcc stand-in), and
// the launch configuration chosen by Algorithm 2 — or forced by the caller,
// as the evaluation tables do with 128x1.
//
// Internally the driver is a thin orchestrator over the pass pipeline
// (compiler/pass.hpp): parse -> lower -> estimate -> select_config -> emit,
// each pass reporting diagnostics and timing into the CompilationContext.
// When CompileOptions::cache is set, compilation is memoised at two levels
// (compiler/cache.hpp): the target-independent frontend artifacts and the
// fully configured CompiledKernel.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "codegen/emit.hpp"
#include "codegen/options.hpp"
#include "compiler/fusion.hpp"
#include "compiler/profile.hpp"
#include "frontend/parser.hpp"
#include "hwmodel/device_db.hpp"
#include "hwmodel/heuristic.hpp"

namespace hipacc::sim {
class TraceSink;
struct ProgramSet;
}  // namespace hipacc::sim

namespace hipacc::compiler {

class CompilationCache;
struct PassTiming;

struct CompileOptions {
  codegen::CodegenOptions codegen;
  hw::DeviceSpec device = hw::TeslaC2050();
  /// Image extent the kernel will run on; used by the configuration
  /// heuristic and baked into the emitted source's region constants.
  int image_width = 0;
  int image_height = 0;
  /// Skip Algorithm 2 and use this configuration (evaluation tables).
  std::optional<hw::KernelConfig> forced_config;
  /// Optional observability sink: per-pass compile durations (parse, lower,
  /// estimate, select_config, emit) are recorded as spans, cache lookups as
  /// instant events and aggregate counters.
  sim::TraceSink* trace = nullptr;
  /// Optional content-addressed memoisation of compilation results, keyed
  /// by (kernel-source fingerprint, codegen options, device, image extent).
  /// Null compiles from scratch every time.
  CompilationCache* cache = nullptr;
  /// Optional measured-timing history (compiler/profile.hpp): select_config
  /// prefers a trustworthy measured winner over the Algorithm-2/PPT
  /// heuristic, re-lowering at the winner's pixels-per-thread if needed.
  /// forced_config always wins over profiles; with no (fresh) history the
  /// compile is bit-identical to a profile-less one.
  ProfileStore* profiles = nullptr;
  ProfilePolicy profile_policy;
  /// When set, the per-pass wall-clock timings of every executed pipeline
  /// are appended here (the CLI's --print-pass-timings).
  std::vector<PassTiming>* pass_timings = nullptr;
  /// When non-empty, the driver prints the pipeline state to stderr after
  /// the named pass finishes (the CLI's --dump-after; see
  /// DefaultPassNames() for the vocabulary).
  std::string dump_after;
  /// Point-wise consumers to inline into this kernel before parsing (the
  /// "fuse" pass; see compiler/fusion.hpp for the legality rule). The
  /// driver fingerprints the *fused* source, so cache entries of fused and
  /// unfused variants never alias. Ignored by Retarget — its input artifact
  /// is already fused.
  std::vector<FusionRequest> fusion;
};

struct CompiledKernel {
  ast::KernelDecl decl;
  ast::DeviceKernel device_ir;
  std::string source;  ///< emitted CUDA or OpenCL kernel text
  hw::KernelResources resources;
  hw::HeuristicChoice config;  ///< selected (or forced) configuration
  /// Simulator bytecode compiled from device_ir by the "bytecode" pass.
  /// Shared: artifact copies (compilation-cache entries, exploration lanes)
  /// all reference the same programs. Null when the pass fell back.
  std::shared_ptr<const sim::ProgramSet> bytecode;

  /// Provenance: the codegen options the IR was lowered with. Retarget
  /// skips re-lowering when they match the requested options.
  codegen::CodegenOptions codegen;
  /// Canonical serialisation of the kernel source this artifact came from
  /// (cache key material; empty for hand-built artifacts) and its hash.
  std::string source_fingerprint;
  std::uint64_t source_hash = 0;
};

/// Runs the full pipeline: parse -> lower -> estimate -> select config ->
/// emit. Errors propagate from any stage (parse errors, unsupported
/// backend/mode combinations, resource exhaustion).
Result<CompiledKernel> Compile(const frontend::KernelSource& source,
                               const CompileOptions& options);

/// Re-selects the launch configuration of an already-compiled kernel for a
/// (possibly different) device and image size, re-emitting the source. When
/// the codegen options match the kernel's provenance, the lowered IR and
/// resource estimate are reused instead of being recomputed.
Result<CompiledKernel> Retarget(const CompiledKernel& kernel,
                                const CompileOptions& options);

}  // namespace hipacc::compiler
