#include "compiler/profile.hpp"

#include <algorithm>

#include "compiler/cache.hpp"
#include "support/atomic_file.hpp"
#include "support/disk_store.hpp"
#include "support/json.hpp"
#include "support/string_utils.hpp"

namespace hipacc::compiler {
namespace {

constexpr double kEwmaAlpha = 0.5;

/// Strict-weak entry ordering for winner selection: faster EWMA first, then
/// fewer threads, then narrower block, then smaller ppt — fully
/// deterministic for equal timings.
bool BetterEntry(const ProfileEntry& a, const ProfileEntry& b) {
  if (a.ms != b.ms) return a.ms < b.ms;
  if (a.config.threads() != b.config.threads())
    return a.config.threads() < b.config.threads();
  if (a.config.block_x != b.config.block_x)
    return a.config.block_x < b.config.block_x;
  return a.ppt < b.ppt;
}

void MergeObservation(ProfileHistory* history,
                      const ProfileObservation& observation) {
  ++history->seq;
  for (ProfileEntry& entry : history->entries) {
    if (entry.config == observation.config && entry.ppt == observation.ppt) {
      entry.ms = kEwmaAlpha * observation.ms + (1.0 - kEwmaAlpha) * entry.ms;
      ++entry.samples;
      entry.last_seq = history->seq;
      return;
    }
  }
  ProfileEntry entry;
  entry.config = observation.config;
  entry.ppt = observation.ppt;
  entry.ms = observation.ms;
  entry.samples = 1;
  entry.last_seq = history->seq;
  history->entries.push_back(entry);
}

/// Two independently-grown histories of the same key (concurrent
/// processes): keep the union, preferring the side that has seen a point
/// more often; seq advances to cover both.
void MergeHistories(ProfileHistory* into, const ProfileHistory& other) {
  into->seq = std::max(into->seq, other.seq);
  for (const ProfileEntry& theirs : other.entries) {
    bool found = false;
    for (ProfileEntry& ours : into->entries) {
      if (ours.config == theirs.config && ours.ppt == theirs.ppt) {
        found = true;
        if (theirs.samples > ours.samples) ours = theirs;
        break;
      }
    }
    if (!found) into->entries.push_back(theirs);
  }
}

}  // namespace

const char* to_string(SelectionMode mode) noexcept {
  switch (mode) {
    case SelectionMode::kNoHistory: return "no_history";
    case SelectionMode::kMeasured: return "measured";
    case SelectionMode::kChallenge: return "challenge";
  }
  return "?";
}

SelectionDecision DecideSelection(const ProfileHistory& history,
                                  const ProfilePolicy& policy) {
  SelectionDecision decision;
  const ProfileEntry* winner = nullptr;
  for (const ProfileEntry& entry : history.entries) {
    if (policy.require_ppt > 0 && entry.ppt != policy.require_ppt) continue;
    if (entry.samples < policy.min_samples) continue;
    if (policy.freshness_window > 0 &&
        entry.last_seq + policy.freshness_window < history.seq)
      continue;  // stale: not re-observed recently enough to be trusted
    if (winner == nullptr || BetterEntry(entry, *winner)) winner = &entry;
  }
  if (winner == nullptr) return decision;  // kNoHistory
  if (policy.reexplore_period > 0 && history.seq > 0 &&
      history.seq % policy.reexplore_period == 0) {
    decision.mode = SelectionMode::kChallenge;
    return decision;
  }
  decision.mode = SelectionMode::kMeasured;
  decision.winner = *winner;
  return decision;
}

SelectionDecision DecideForCompile(ProfileStore* profiles,
                                   const ProfilePolicy& base_policy,
                                   const std::string& source_fingerprint,
                                   const codegen::CodegenOptions& options,
                                   const hw::DeviceSpec& device,
                                   int image_width, int image_height,
                                   bool forced_config) {
  if (profiles == nullptr || forced_config || source_fingerprint.empty())
    return {};
  ProfilePolicy policy = base_policy;
  if (options.pixels_per_thread > 0)
    policy.require_ppt = options.pixels_per_thread;
  return DecideSelection(
      profiles->Lookup(MakeProfileKey(source_fingerprint, options, device,
                                      image_width, image_height)),
      policy);
}

std::string MakeProfileKey(const std::string& source_fingerprint,
                           const codegen::CodegenOptions& options,
                           const hw::DeviceSpec& device, int image_width,
                           int image_height) {
  // Normalise the PPT axis out of the options: all sweeps of one kernel
  // feed one pool, and every entry carries its own ppt.
  codegen::CodegenOptions normalized = options;
  normalized.pixels_per_thread = 0;
  return source_fingerprint + "|" + OptionsFingerprint(normalized) +
         "|device=" + DeviceIdentity(device) +
         StrFormat("|extent=%dx%d", image_width, image_height);
}

std::string ProfileSalt(const SelectionDecision& decision) {
  if (decision.mode != SelectionMode::kMeasured) return "";
  return StrFormat("m:%dx%dx%d", decision.winner.config.block_x,
                   decision.winner.config.block_y, decision.winner.ppt);
}

std::string EncodeProfileHistory(const ProfileHistory& history) {
  support::Json doc = support::Json::Object();
  doc["v"] = 1;
  doc["seq"] = history.seq;
  support::Json entries = support::Json::Array();
  for (const ProfileEntry& entry : history.entries) {
    support::Json e = support::Json::Object();
    e["bx"] = entry.config.block_x;
    e["by"] = entry.config.block_y;
    e["ppt"] = entry.ppt;
    e["ms"] = entry.ms;
    e["samples"] = entry.samples;
    e["last_seq"] = entry.last_seq;
    entries.push_back(std::move(e));
  }
  doc["entries"] = std::move(entries);
  return doc.Dump();
}

bool DecodeProfileHistory(const std::string& payload, ProfileHistory* out) {
  Result<support::Json> parsed = support::Json::Parse(payload);
  if (!parsed.ok()) return false;
  const support::Json& doc = parsed.value();
  const support::Json* version = doc.Find("v");
  if (version == nullptr || version->int_value() != 1) return false;
  const support::Json* seq = doc.Find("seq");
  const support::Json* entries = doc.Find("entries");
  if (seq == nullptr || entries == nullptr || !entries->is_array())
    return false;
  ProfileHistory history;
  history.seq = seq->int_value();
  for (const support::Json& e : entries->elements()) {
    const support::Json* bx = e.Find("bx");
    const support::Json* by = e.Find("by");
    const support::Json* ppt = e.Find("ppt");
    const support::Json* ms = e.Find("ms");
    const support::Json* samples = e.Find("samples");
    const support::Json* last_seq = e.Find("last_seq");
    if (bx == nullptr || by == nullptr || ppt == nullptr || ms == nullptr ||
        samples == nullptr || last_seq == nullptr)
      return false;
    ProfileEntry entry;
    entry.config.block_x = static_cast<int>(bx->int_value());
    entry.config.block_y = static_cast<int>(by->int_value());
    entry.ppt = static_cast<int>(ppt->int_value());
    entry.ms = ms->number_value();
    entry.samples = samples->int_value();
    entry.last_seq = last_seq->int_value();
    history.entries.push_back(entry);
  }
  *out = std::move(history);
  return true;
}

ProfileStore::ProfileStore(support::DiskStore* disk) : disk_(disk) {}

ProfileHistory& ProfileStore::LoadLocked(const std::string& key) const {
  auto it = histories_.find(key);
  if (it != histories_.end()) return it->second;
  ProfileHistory history;
  if (disk_ != nullptr && disk_->enabled()) {
    if (std::optional<std::string> payload = disk_->Get("profile", key)) {
      ProfileHistory from_disk;
      if (DecodeProfileHistory(*payload, &from_disk))
        history = std::move(from_disk);
    }
  }
  return histories_.emplace(key, std::move(history)).first->second;
}

void ProfileStore::MergeDiskLocked(const std::string& key,
                                   ProfileHistory* history) {
  if (std::optional<std::string> payload = disk_->Get("profile", key)) {
    ProfileHistory from_disk;
    if (DecodeProfileHistory(*payload, &from_disk))
      MergeHistories(history, from_disk);
  }
}

void ProfileStore::Record(const std::string& key,
                          const ProfileObservation& observation) {
  RecordBatch({{key, observation}});
}

void ProfileStore::RecordBatch(const std::vector<KeyedObservation>& batch) {
  if (batch.empty()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  ++flushes_;
  observations_ += static_cast<long long>(batch.size());
  if (disk_ != nullptr && disk_->enabled()) {
    // Append-merge under an advisory lock: re-read the disk side so a
    // concurrent process's observations survive, merge the whole batch,
    // then write each touched key's union back once. Losing the lock race
    // degrades to last-writer-wins, which loses samples but never corrupts
    // (writes stay atomic). One FileLock per flush — not per observation —
    // is what keeps streaming epochs off the lock.
    support::FileLock file_lock(disk_->root() + "/profile.lock");
    std::vector<const std::string*> touched;
    for (const KeyedObservation& keyed : batch) {
      ProfileHistory& history = LoadLocked(keyed.key);
      bool first_touch = true;
      for (const std::string* seen : touched)
        if (*seen == keyed.key) {
          first_touch = false;
          break;
        }
      if (first_touch) {
        MergeDiskLocked(keyed.key, &history);
        touched.push_back(&keyed.key);
      }
      MergeObservation(&history, keyed.observation);
    }
    for (const std::string* key : touched)
      disk_->Put("profile", *key, EncodeProfileHistory(histories_.at(*key)));
  } else {
    for (const KeyedObservation& keyed : batch)
      MergeObservation(&LoadLocked(keyed.key), keyed.observation);
  }
}

ProfileHistory ProfileStore::Lookup(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return LoadLocked(key);
}

std::size_t ProfileStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& [key, history] : histories_) n += history.entries.size();
  return n;
}

long long ProfileStore::flush_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return flushes_;
}

long long ProfileStore::observation_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return observations_;
}

}  // namespace hipacc::compiler
