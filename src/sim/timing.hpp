// Analytical timing model: converts the interpreter's warp-level metrics
// into a modelled kernel time on a device. The model is a simplified
// MWP/CWP-style bound (Hong & Kim, ISCA'09): kernel time is the maximum of
// the compute-throughput bound, the memory-bandwidth bound, and the exposed
// memory latency given the occupancy-determined warp concurrency — plus a
// fixed launch overhead.
#pragma once

#include "hwmodel/device_spec.hpp"
#include "hwmodel/occupancy.hpp"
#include "sim/metrics.hpp"

namespace hipacc::sim {

/// Breakdown of the modelled time (reported by benches and tests).
struct TimingBreakdown {
  double compute_cycles = 0.0;   ///< per-"wall" compute bound
  double bandwidth_cycles = 0.0; ///< DRAM bandwidth bound
  double latency_cycles = 0.0;   ///< exposed latency bound
  double total_ms = 0.0;
};

/// Fixed per-launch host/driver overhead in ms.
inline constexpr double kLaunchOverheadMs = 0.005;

/// Models the execution time of a kernel whose *whole-grid* metrics are
/// `metrics`, launched with `occupancy` resident warps per SIMD unit.
/// `issue_scale` multiplies the compute bound (toolchain quality factor,
/// e.g. DeviceSpec::opencl_issue_overhead for OpenCL-compiled kernels).
TimingBreakdown ModelTime(const Metrics& metrics, const hw::DeviceSpec& device,
                          const hw::OccupancyResult& occupancy,
                          double issue_scale = 1.0);

}  // namespace hipacc::sim
