// Baselines: the manual variants, the RapidMind shim, and the OpenCV-like
// separable engine must exhibit the behaviours the evaluation tables rest
// on (uniform guards, crash semantics, PPT ordering).
#include <gtest/gtest.h>

#include "baselines/manual.hpp"
#include "baselines/opencv_like.hpp"
#include "baselines/rapidmind.hpp"
#include "compiler/executable.hpp"
#include "image/metrics.hpp"
#include "image/synthetic.hpp"
#include "ops/dsl_ops.hpp"
#include "ops/kernel_sources.hpp"
#include "ops/masks.hpp"

namespace hipacc {
namespace {

using ast::Backend;
using ast::BoundaryMode;

TEST(ManualBaselineTest, CompilesAllVariantCombinations) {
  for (const BoundaryMode mode :
       {BoundaryMode::kUndefined, BoundaryMode::kClamp, BoundaryMode::kRepeat,
        BoundaryMode::kMirror, BoundaryMode::kConstant}) {
    for (const bool use_mask : {false, true}) {
      baselines::ManualVariant variant;
      variant.use_mask_kernel = use_mask;
      auto compiled = baselines::CompileManualBilateral(
          1, mode, variant, Backend::kCuda, hw::TeslaC2050(), 256, 256,
          {128, 1});
      ASSERT_TRUE(compiled.ok())
          << to_string(mode) << ": " << compiled.status().ToString();
      // Manual style: one variant, not nine.
      EXPECT_EQ(compiled.value().device_ir.variants.size(), 1u);
    }
  }
}

TEST(ManualBaselineTest, ManualMatchesDslFunctionally) {
  const int n = 61;
  const auto input = MakeAngiogramPhantom(n, n, 0.05f, 21);
  dsl::Image<float> in(n, n), out(n, n), ref(n, n);
  in.CopyFrom(input);

  baselines::ManualVariant variant;
  auto compiled = baselines::CompileManualBilateral(
      1, BoundaryMode::kMirror, variant, Backend::kCuda, hw::TeslaC2050(), n,
      n, {32, 2});
  ASSERT_TRUE(compiled.ok());
  runtime::BindingSet bindings;
  bindings.Input("Input", in).Output(out).Scalar("sigma_d", 1).Scalar(
      "sigma_r", 4);
  compiler::SimulatedExecutable exe(std::move(compiled).take(),
                                    hw::TeslaC2050());
  ASSERT_TRUE(exe.Run(bindings).ok());

  dsl::BoundaryCondition<float> bc(in, 5, 5, BoundaryMode::kMirror);
  dsl::Accessor<float> acc(bc);
  dsl::IterationSpace<float> is(ref);
  ops::BilateralFilter bf(is, acc, 1, 4);
  bf.execute();
  EXPECT_LE(MaxAbsDiff(ref.getData(), out.getData()), 1e-6);
}

TEST(RapidMindTest, MirrorUnsupported) {
  const int n = 128;
  dsl::Image<float> in(n, n), out(n, n);
  runtime::BindingSet bindings;
  bindings.Input("Input", in).Output(out);
  auto result = baselines::MeasureRapidMindBilateral(
      1, 4, BoundaryMode::kMirror, false, hw::TeslaC2050(), n, n, {128, 1},
      bindings);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnimplemented);
}

TEST(RapidMindTest, RepeatCrashesOnFermiOnly) {
  const int n = 128;
  dsl::Image<float> in(n, n), out(n, n);
  runtime::BindingSet fermi_bindings;
  fermi_bindings.Input("Input", in).Output(out);
  auto fermi = baselines::MeasureRapidMindBilateral(
      1, 4, BoundaryMode::kRepeat, false, hw::TeslaC2050(), n, n, {128, 1},
      fermi_bindings);
  ASSERT_TRUE(fermi.ok()) << fermi.status().ToString();
  EXPECT_TRUE(fermi.value().crashed);

  runtime::BindingSet quadro_bindings;
  quadro_bindings.Input("Input", in).Output(out);
  auto quadro = baselines::MeasureRapidMindBilateral(
      1, 4, BoundaryMode::kRepeat, false, hw::QuadroFx5800(), n, n, {128, 1},
      quadro_bindings);
  ASSERT_TRUE(quadro.ok());
  EXPECT_FALSE(quadro.value().crashed);
  EXPECT_GT(quadro.value().ms, 0.0);
}

TEST(RapidMindTest, SlowerThanGeneratedCode) {
  const int n = 1024;
  dsl::Image<float> in(n, n), out(n, n);
  runtime::BindingSet rm_bindings;
  rm_bindings.Input("Input", in).Output(out);
  auto rapidmind = baselines::MeasureRapidMindBilateral(
      2, 4, BoundaryMode::kClamp, false, hw::TeslaC2050(), n, n, {128, 1},
      rm_bindings);
  ASSERT_TRUE(rapidmind.ok());

  // Compare against the framework's mask kernel — the configuration the
  // paper's "factor of two" claim refers to.
  frontend::KernelSource source =
      ops::BilateralMaskSource(2, BoundaryMode::kClamp);
  compiler::CompileOptions options;
  options.device = hw::TeslaC2050();
  options.image_width = options.image_height = n;
  options.forced_config = hw::KernelConfig{128, 1};
  auto compiled = compiler::Compile(source, options);
  ASSERT_TRUE(compiled.ok());
  runtime::BindingSet gen_bindings;
  gen_bindings.Input("Input", in).Output(out).Scalar("sigma_d", 2).Scalar(
      "sigma_r", 4);
  compiler::SimulatedExecutable exe(std::move(compiled).take(),
                                    hw::TeslaC2050());
  auto generated = exe.Measure(gen_bindings);
  ASSERT_TRUE(generated.ok());
  // The paper reports ~2x against the generated mask kernel.
  EXPECT_GT(rapidmind.value().ms, 1.8 * generated.value().timing.total_ms);
}

TEST(OpenCvLikeTest, PptMappingsAgreeFunctionally) {
  const auto input = MakeAngiogramPhantom(80, 50, 0.05f, 13);
  const auto mask1d = ops::GaussianMask1D(3, 0.8f);
  baselines::OpenCvLikeEngine engine(hw::TeslaC2050(), Backend::kCuda);
  auto ppt1 = engine.Run(input, mask1d, BoundaryMode::kMirror, 1);
  auto ppt8 = engine.Run(input, mask1d, BoundaryMode::kMirror, 8);
  ASSERT_TRUE(ppt1.ok());
  ASSERT_TRUE(ppt8.ok());
  EXPECT_LE(MaxAbsDiff(ppt1.value(), ppt8.value()), 0.0);
}

TEST(OpenCvLikeTest, Ppt8FasterThanPpt1) {
  baselines::OpenCvLikeEngine engine(hw::TeslaC2050(), Backend::kCuda);
  const auto mask1d = ops::GaussianMask1D(3, 0.8f);
  auto ppt1 = engine.Measure(1024, 1024, mask1d, BoundaryMode::kClamp, 1,
                             {128, 1});
  auto ppt8 = engine.Measure(1024, 1024, mask1d, BoundaryMode::kClamp, 8,
                             {128, 1});
  ASSERT_TRUE(ppt1.ok());
  ASSERT_TRUE(ppt8.ok());
  EXPECT_LT(ppt8.value().total_ms, ppt1.value().total_ms);
}

TEST(OpenCvLikeTest, BoundaryModeChangesCost) {
  // OpenCV's per-pixel guards make its time mode-dependent (Table VIII).
  baselines::OpenCvLikeEngine engine(hw::TeslaC2050(), Backend::kCuda);
  const auto mask1d = ops::GaussianMask1D(3, 0.8f);
  auto clamp = engine.Measure(1024, 1024, mask1d, BoundaryMode::kClamp, 8,
                              {128, 1});
  auto constant = engine.Measure(1024, 1024, mask1d, BoundaryMode::kConstant,
                                 8, {128, 1});
  ASSERT_TRUE(clamp.ok());
  ASSERT_TRUE(constant.ok());
  EXPECT_GT(constant.value().total_ms, clamp.value().total_ms);
}

}  // namespace
}  // namespace hipacc
