// Token definitions for the DSL kernel-body lexer.
#pragma once

#include <string>

namespace hipacc::frontend {

enum class TokenKind {
  kEnd,
  kIdent,
  kIntLit,
  kFloatLit,
  // punctuation / operators
  kLParen, kRParen, kLBrace, kRBrace,
  kSemicolon, kComma, kQuestion, kColon,
  kPlus, kMinus, kStar, kSlash, kPercent,
  kAssign, kPlusAssign, kMinusAssign, kStarAssign, kSlashAssign,
  kPlusPlus, kMinusMinus,
  kLt, kLe, kGt, kGe, kEqEq, kNe, kNot, kAndAnd, kOrOr,
  // keywords
  kKwFloat, kKwInt, kKwBool, kKwIf, kKwElse, kKwFor, kKwOutput,
  kKwTrue, kKwFalse, kKwReturn,
};

const char* to_string(TokenKind kind) noexcept;

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;       ///< identifier spelling (kIdent only)
  long long int_value = 0;
  double float_value = 0.0;
  int line = 1;
  int column = 1;
};

}  // namespace hipacc::frontend
