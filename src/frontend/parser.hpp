// Recursive-descent parser for the DSL kernel subset — the stand-in for the
// Clang frontend of the paper. The surrounding C++ classes (Kernel,
// Accessor, Mask, ...) supply the access/execute metadata programmatically,
// exactly like HIPAcc's compiler-known classes do; the parser turns the text
// of the kernel() method body into the IR.
//
// Accepted subset (everything the paper's kernels use):
//   declarations        float d = 0.0f;   int i;          (with init lists)
//   assignments         d += s*c;   output() = p/d;
//   control flow        if/else, canonical counted for loops
//   expressions         arithmetic, comparisons, &&/||/!, ?:, casts,
//                       math builtins, Accessor(dx,dy), Mask(xf,yf), x(), y()
#pragma once

#include "ast/kernel_ir.hpp"
#include "support/status.hpp"

namespace hipacc::frontend {

/// Input to the frontend: metadata from the DSL objects + kernel body text.
struct KernelSource {
  std::string name;
  std::vector<ast::ParamInfo> params;
  std::vector<ast::AccessorInfo> accessors;
  std::vector<ast::MaskInfo> masks;
  /// Names of additional output images the kernel writes via
  /// `output(name) = ...` (the unnamed `output()` is always present).
  /// Horizontally fused sibling stages compile to one such multi-output
  /// kernel; plain kernels leave this empty.
  std::vector<std::string> extra_outputs;
  /// Text of the kernel() method body, without the outer braces.
  std::string body;
};

/// Parses and semantically checks a kernel. Reports kParseError with a line
/// number for syntax errors, unknown identifiers, unsupported functions
/// (Section V-A: "our compiler emits an error message"), arity mismatches,
/// and writes to anything but locals/output().
Result<ast::KernelDecl> ParseKernel(const KernelSource& source);

}  // namespace hipacc::frontend
