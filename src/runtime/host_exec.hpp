// Host bytecode executor: runs a kernel's compiled register programs
// (sim/bytecode.hpp) directly over image rows, without the simulator's
// warp-lockstep machinery, memory model, or metric accounting. It exists
// for the pipeline graph runtime (runtime/graph.hpp), where stages only
// need *values* — the simulator remains the path that also models time.
//
// Execution model: each output row is cut into x-segments by the kernel's
// boundary-handling halo — [0, halo_x), [halo_x, W - halo_x), [W - halo_x,
// W) — and crossed with the same three y-bands, selecting one of the nine
// region programs per segment at *pixel* granularity. This is value-exact
// with the simulator's block-granular region multiplexing: a region's
// program differs from the interior one only in which boundary guards it
// carries, and guards are value-neutral for in-range reads — every pixel
// here runs under a program whose guards cover exactly the directions it
// can actually exceed. Segments are interpreted in lane chunks (one
// dispatch per instruction per chunk, amortised over up to kLaneWidth
// pixels) using the very same per-lane arithmetic helpers as the VM, so
// outputs are bit-identical to both simulator engines and to the DSL's
// functional path.
//
// Programs the executor cannot prove equivalent return Unimplemented:
// scratchpad staging (kLoadShared), texture/hardware boundary handling,
// thread/block-index dependent values, or a halo exceeding the image (the
// degenerate-region case). Callers fall back to the simulator.
#pragma once

#include "sim/bytecode.hpp"
#include "sim/launch.hpp"
#include "support/status.hpp"

namespace hipacc::runtime {

struct HostExecOptions {
  /// Worker threads for the row loop (0 = hardware concurrency, 1 =
  /// serial). Rows are data-parallel; any thread count is value-identical.
  int threads = 0;
};

/// Executes `launch.programs` over the launch's iteration space, writing
/// bound output buffers in place. `halo_x` / `halo_y` is the kernel's
/// boundary-handling window (DeviceKernel::bh_window) that sized the nine
/// region variants; ignored when the program set has a single variant.
/// Returns Unimplemented for unsupported programs (see file comment) —
/// the caller is expected to fall back to simulator execution.
Status RunOnHost(const sim::Launch& launch, int halo_x, int halo_y,
                 const HostExecOptions& options = {});

/// True when RunOnHost would accept this program set (used by the graph
/// scheduler to decide the execution path before launching).
bool HostExecSupports(const sim::ProgramSet& programs, int width, int height,
                      int halo_x, int halo_y);

}  // namespace hipacc::runtime
