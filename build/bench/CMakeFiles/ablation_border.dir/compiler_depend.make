# Empty compiler generated dependencies file for ablation_border.
# This may be replaced when dependencies are built.
