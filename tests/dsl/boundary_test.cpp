// Boundary index resolution — the semantics behind Table I and Figure 2.
// Property-style parameterized sweeps plus the exact expansions of the
// paper's figure, randomized property tests over (coordinate, extent)
// pairs, and an end-to-end check that Undefined-mode kernels only fire
// oob_violations where the stencil actually leaves the image.
#include "dsl/boundary.hpp"

#include <gtest/gtest.h>

#include "compiler/executable.hpp"
#include "hwmodel/device_db.hpp"
#include "ops/kernel_sources.hpp"
#include "sim/interpreter.hpp"
#include "support/rng.hpp"

namespace hipacc::dsl {
namespace {

using ast::BoundaryMode;

TEST(BoundaryTest, InRangeIsIdentityForAllModes) {
  for (const BoundaryMode mode :
       {BoundaryMode::kUndefined, BoundaryMode::kClamp, BoundaryMode::kRepeat,
        BoundaryMode::kMirror, BoundaryMode::kConstant}) {
    for (int c = 0; c < 7; ++c) EXPECT_EQ(ResolveBoundaryIndex(c, 7, mode), c);
  }
}

TEST(BoundaryTest, ClampPinsToEdges) {
  EXPECT_EQ(ResolveBoundaryIndex(-1, 4, BoundaryMode::kClamp), 0);
  EXPECT_EQ(ResolveBoundaryIndex(-100, 4, BoundaryMode::kClamp), 0);
  EXPECT_EQ(ResolveBoundaryIndex(4, 4, BoundaryMode::kClamp), 3);
  EXPECT_EQ(ResolveBoundaryIndex(99, 4, BoundaryMode::kClamp), 3);
}

TEST(BoundaryTest, RepeatIsPeriodic) {
  // Figure 2b row above the image shows M N O P continuing from the bottom.
  EXPECT_EQ(ResolveBoundaryIndex(-1, 4, BoundaryMode::kRepeat), 3);
  EXPECT_EQ(ResolveBoundaryIndex(-4, 4, BoundaryMode::kRepeat), 0);
  EXPECT_EQ(ResolveBoundaryIndex(-5, 4, BoundaryMode::kRepeat), 3);
  EXPECT_EQ(ResolveBoundaryIndex(4, 4, BoundaryMode::kRepeat), 0);
  EXPECT_EQ(ResolveBoundaryIndex(9, 4, BoundaryMode::kRepeat), 1);
}

TEST(BoundaryTest, MirrorDuplicatesBorderPixel) {
  // Figure 2d: -1 -> 0, -2 -> 1, -3 -> 2; n -> n-1, n+1 -> n-2.
  EXPECT_EQ(ResolveBoundaryIndex(-1, 4, BoundaryMode::kMirror), 0);
  EXPECT_EQ(ResolveBoundaryIndex(-2, 4, BoundaryMode::kMirror), 1);
  EXPECT_EQ(ResolveBoundaryIndex(-3, 4, BoundaryMode::kMirror), 2);
  EXPECT_EQ(ResolveBoundaryIndex(4, 4, BoundaryMode::kMirror), 3);
  EXPECT_EQ(ResolveBoundaryIndex(5, 4, BoundaryMode::kMirror), 2);
  EXPECT_EQ(ResolveBoundaryIndex(7, 4, BoundaryMode::kMirror), 0);
}

TEST(BoundaryTest, MirrorFarOutOfBoundsReflectsRepeatedly) {
  // Period 2n: -n-1 reflects back inward.
  EXPECT_EQ(ResolveBoundaryIndex(-5, 4, BoundaryMode::kMirror), 3);  // 2nd bounce
  EXPECT_EQ(ResolveBoundaryIndex(8, 4, BoundaryMode::kMirror), 0);
  EXPECT_EQ(ResolveBoundaryIndex(-8, 4, BoundaryMode::kMirror), 0);
}

TEST(BoundaryTest, ConstantSignalsSubstitution) {
  EXPECT_EQ(ResolveBoundaryIndex(-1, 4, BoundaryMode::kConstant), -1);
  EXPECT_EQ(ResolveBoundaryIndex(4, 4, BoundaryMode::kConstant), -1);
  EXPECT_EQ(ResolveBoundaryIndex(2, 4, BoundaryMode::kConstant), 2);
}

TEST(BoundaryTest, UndefinedClampsAsSafetyNet) {
  EXPECT_EQ(ResolveBoundaryIndex(-3, 4, BoundaryMode::kUndefined), 0);
  EXPECT_EQ(ResolveBoundaryIndex(6, 4, BoundaryMode::kUndefined), 3);
}

// Property sweep: every resolving mode maps any coordinate into [0, n).
struct SweepParam {
  BoundaryMode mode;
  int n;
};

class BoundarySweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(BoundarySweepTest, AlwaysLandsInRange) {
  const auto [mode, n] = GetParam();
  for (int c = -3 * n; c <= 3 * n; ++c) {
    const int r = ResolveBoundaryIndex(c, n, mode);
    ASSERT_GE(r, 0) << "c=" << c << " n=" << n;
    ASSERT_LT(r, n) << "c=" << c << " n=" << n;
  }
}

TEST_P(BoundarySweepTest, MirrorIsSymmetricAroundEdges) {
  const auto [mode, n] = GetParam();
  if (mode != BoundaryMode::kMirror) return;
  for (int k = 0; k < n; ++k) {
    // Reflection about the left edge: -1-k maps like k.
    EXPECT_EQ(ResolveBoundaryIndex(-1 - k, n, mode),
              ResolveBoundaryIndex(k, n, mode));
    // Reflection about the right edge: n+k maps like n-1-k.
    EXPECT_EQ(ResolveBoundaryIndex(n + k, n, mode),
              ResolveBoundaryIndex(n - 1 - k, n, mode));
  }
}

TEST_P(BoundarySweepTest, RepeatHasPeriodN) {
  const auto [mode, n] = GetParam();
  if (mode != BoundaryMode::kRepeat) return;
  for (int c = -2 * n; c < 2 * n; ++c)
    EXPECT_EQ(ResolveBoundaryIndex(c, n, mode),
              ResolveBoundaryIndex(c + n, n, mode));
}

std::vector<SweepParam> SweepParams() {
  std::vector<SweepParam> params;
  for (const BoundaryMode mode : {BoundaryMode::kClamp, BoundaryMode::kRepeat,
                                  BoundaryMode::kMirror, BoundaryMode::kUndefined})
    for (const int n : {1, 2, 3, 7, 16, 61}) params.push_back({mode, n});
  return params;
}

INSTANTIATE_TEST_SUITE_P(ModesAndSizes, BoundarySweepTest,
                         ::testing::ValuesIn(SweepParams()),
                         [](const auto& info) {
                           return std::string(to_string(info.param.mode)) +
                                  "_n" + std::to_string(info.param.n);
                         });

// Randomized property sweeps: the exhaustive tests above cover small
// extents; these sample the full (coordinate, extent) space with the
// repo's deterministic RNG, so failures reproduce byte-for-byte.
TEST(BoundaryPropertyTest, ResolvingModesAlwaysLandInRange) {
  Rng rng(0xB0DA12u);
  for (int trial = 0; trial < 5000; ++trial) {
    const int n = rng.NextInt(1, 4096);
    const int c = rng.NextInt(-3 * n - 7, 4 * n + 7);
    for (const BoundaryMode mode :
         {BoundaryMode::kClamp, BoundaryMode::kRepeat, BoundaryMode::kMirror,
          BoundaryMode::kUndefined}) {
      const int r = ResolveBoundaryIndex(c, n, mode);
      ASSERT_GE(r, 0) << to_string(mode) << " c=" << c << " n=" << n;
      ASSERT_LT(r, n) << to_string(mode) << " c=" << c << " n=" << n;
    }
    // Constant either passes an in-range index through or signals -1.
    const int rc = ResolveBoundaryIndex(c, n, BoundaryMode::kConstant);
    if (c >= 0 && c < n)
      ASSERT_EQ(rc, c);
    else
      ASSERT_EQ(rc, -1);
  }
}

TEST(BoundaryPropertyTest, InRangeCoordinatesAreUntouched) {
  Rng rng(0x1DF00Du);
  for (int trial = 0; trial < 5000; ++trial) {
    const int n = rng.NextInt(1, 4096);
    const int c = rng.NextInt(0, n - 1);
    for (const BoundaryMode mode :
         {BoundaryMode::kUndefined, BoundaryMode::kClamp,
          BoundaryMode::kRepeat, BoundaryMode::kMirror,
          BoundaryMode::kConstant})
      ASSERT_EQ(ResolveBoundaryIndex(c, n, mode), c)
          << to_string(mode) << " c=" << c << " n=" << n;
  }
}

TEST(BoundaryPropertyTest, MirrorReflectionAcrossEachEdgeIsASymmetry) {
  // The border-duplicating mirror extension is symmetric about both image
  // edges, including multi-bounce coordinates: reflecting any coordinate
  // across an edge (x <-> -1-x on the left, x <-> 2n-1-x on the right)
  // resolves to the same pixel.
  Rng rng(0x314159u);
  for (int trial = 0; trial < 5000; ++trial) {
    const int n = rng.NextInt(1, 2048);
    const int d = rng.NextInt(1, 3 * n);
    ASSERT_EQ(ResolveBoundaryIndex(-d, n, BoundaryMode::kMirror),
              ResolveBoundaryIndex(d - 1, n, BoundaryMode::kMirror))
        << "left edge, d=" << d << " n=" << n;
    ASSERT_EQ(ResolveBoundaryIndex(n - 1 + d, n, BoundaryMode::kMirror),
              ResolveBoundaryIndex(n - d, n, BoundaryMode::kMirror))
        << "right edge, d=" << d << " n=" << n;
  }
}

TEST(BoundaryPropertyTest, RepeatShiftsByWholePeriods) {
  Rng rng(0xCAFEu);
  for (int trial = 0; trial < 5000; ++trial) {
    const int n = rng.NextInt(1, 2048);
    const int c = rng.NextInt(-2 * n, 2 * n);
    const int periods = rng.NextInt(-3, 3);
    ASSERT_EQ(ResolveBoundaryIndex(c, n, BoundaryMode::kRepeat),
              ResolveBoundaryIndex(c + periods * n, n, BoundaryMode::kRepeat))
        << "c=" << c << " n=" << n << " periods=" << periods;
  }
}

// End-to-end: an Undefined-mode kernel counts oob_violations only for
// blocks whose stencil actually leaves the image. Interior blocks are the
// reason Table II's generated kernels survive: the region-specialised
// interior variant performs no boundary handling yet never reads OOB.
TEST(BoundaryOobTest, UndefinedFiresOnlyWhereTheStencilLeavesTheImage) {
  const int n = 128;
  const hw::DeviceSpec device = hw::TeslaC2050();
  frontend::KernelSource source =
      ops::BilateralMaskSource(1, BoundaryMode::kUndefined);  // 5x5 window
  compiler::CompileOptions options;
  options.device = device;
  options.image_width = n;
  options.image_height = n;
  // A fixed 32x4 configuration gives a 4x32 grid, so interior and corner
  // blocks both exist regardless of what the heuristic would pick.
  options.forced_config = hw::KernelConfig{32, 4};
  auto compiled = compiler::Compile(source, options);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();

  dsl::Image<float> in(n, n), out(n, n);
  runtime::BindingSet bindings;
  bindings.Input("Input", in).Output(out).Scalar("sigma_d", 1).Scalar(
      "sigma_r", 4);
  auto holder = runtime::BuildLaunch(compiled.value().device_ir,
                                     compiled.value().config.config, bindings);
  ASSERT_TRUE(holder.ok()) << holder.status().ToString();
  const sim::Launch& launch = holder.value().launch;
  const int grid_x = (n + launch.config.block_x - 1) / launch.config.block_x;
  const int grid_y = (n + launch.config.block_y - 1) / launch.config.block_y;
  ASSERT_GE(grid_x, 3);
  ASSERT_GE(grid_y, 3);

  sim::Metrics interior;
  ASSERT_TRUE(sim::RunBlock(launch, device, grid_x / 2, grid_y / 2, &interior)
                  .ok());
  EXPECT_EQ(interior.oob_violations, 0u);
  EXPECT_GT(interior.global_read_instrs, 0u);

  sim::Metrics corner;
  ASSERT_TRUE(sim::RunBlock(launch, device, 0, 0, &corner).ok());
  EXPECT_GT(corner.oob_violations, 0u);
}

TEST(BoundaryOobTest, GuardedModesNeverFireAnywhere) {
  const int n = 96;
  const hw::DeviceSpec device = hw::TeslaC2050();
  for (const BoundaryMode mode : {BoundaryMode::kClamp, BoundaryMode::kMirror,
                                  BoundaryMode::kRepeat,
                                  BoundaryMode::kConstant}) {
    frontend::KernelSource source = ops::BilateralMaskSource(1, mode);
    compiler::CompileOptions options;
    options.device = device;
    options.image_width = n;
    options.image_height = n;
    auto compiled = compiler::Compile(source, options);
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
    dsl::Image<float> in(n, n), out(n, n);
    runtime::BindingSet bindings;
    bindings.Input("Input", in).Output(out).Scalar("sigma_d", 1).Scalar(
        "sigma_r", 4);
    compiler::SimulatedExecutable exe(std::move(compiled).take(), device);
    auto stats = exe.Run(bindings);  // full grid, exact metrics
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats.value().metrics.oob_violations, 0u) << to_string(mode);
  }
}

}  // namespace
}  // namespace hipacc::dsl
