#include "compiler/pass.hpp"

#include <algorithm>
#include <cstdio>

#include "codegen/lower.hpp"
#include "codegen/resource_estimator.hpp"
#include "sim/bytecode.hpp"
#include "sim/trace.hpp"
#include "support/stopwatch.hpp"
#include "support/string_utils.hpp"

namespace hipacc::compiler {

const char* to_string(DiagSeverity severity) noexcept {
  switch (severity) {
    case DiagSeverity::kNote: return "note";
    case DiagSeverity::kWarning: return "warning";
    case DiagSeverity::kError: return "error";
  }
  return "?";
}

std::string CompilationContext::KernelName() const {
  if (!artifact.decl.name.empty()) return artifact.decl.name;
  if (source != nullptr) return source->name;
  return "<kernel>";
}

void CompilationContext::Note(const std::string& pass, std::string message) {
  diagnostics.push_back({pass, DiagSeverity::kNote, std::move(message)});
}

void CompilationContext::Warn(const std::string& pass, std::string message) {
  diagnostics.push_back({pass, DiagSeverity::kWarning, std::move(message)});
}

namespace {

/// Fuse: inline the point-wise consumers requested by
/// CompileOptions::fusion into the kernel source (compiler/fusion.hpp). A
/// no-op without requests. Reuses a pre-fused source when the driver
/// already computed one for the cache key.
class FusePass final : public Pass {
 public:
  const char* name() const override { return "fuse"; }
  Status Run(CompilationContext& ctx) const override {
    if (ctx.options.fusion.empty()) {
      ctx.Note(name(), "no fusion requests; kernel unchanged");
      return Status::Ok();
    }
    if (ctx.source == nullptr)
      return Status::Internal("fuse pass requires a KernelSource input");
    if (!ctx.fused_source) {
      Result<frontend::KernelSource> fused =
          ApplyFusion(*ctx.source, ctx.options.fusion);
      if (!fused.ok()) return fused.status();
      ctx.fused_source = std::move(fused).take();
    }
    ctx.source = &*ctx.fused_source;
    ctx.Note(name(),
             StrFormat("fused %zu consumer(s)/sibling(s) into '%s'",
                       ctx.options.fusion.size(),
                       ctx.fused_source->name.c_str()));
    if (ctx.options.trace) {
      // Per-kind counters: fuse.{point,horizontal,halo}.edges.
      for (const FusionRequest& request : ctx.options.fusion)
        ctx.options.trace->IncrementCounter(
            std::string("fuse.") + to_string(request.kind) + ".edges");
    }
    return Status::Ok();
  }
};

/// Parse: DSL text -> KernelDecl.
class ParsePass final : public Pass {
 public:
  const char* name() const override { return "parse"; }
  Status Run(CompilationContext& ctx) const override {
    if (ctx.source == nullptr)
      return Status::Internal("parse pass requires a KernelSource input");
    Result<ast::KernelDecl> decl = frontend::ParseKernel(*ctx.source);
    if (!decl.ok()) return decl.status();
    ctx.artifact.decl = std::move(decl).take();
    ctx.Note(name(), StrFormat("parsed kernel '%s': %zu params, %zu "
                               "accessors, %zu masks",
                               ctx.artifact.decl.name.c_str(),
                               ctx.artifact.decl.params.size(),
                               ctx.artifact.decl.accessors.size(),
                               ctx.artifact.decl.masks.size()));
    return Status::Ok();
  }
};

/// Lower: KernelDecl -> DeviceKernel under the requested codegen options.
/// Also stamps the artifact's codegen provenance, which Retarget and the
/// cache consult before reusing the IR.
class LowerPass final : public Pass {
 public:
  const char* name() const override { return "lower"; }
  Status Run(CompilationContext& ctx) const override {
    Result<ast::DeviceKernel> lowered =
        codegen::LowerKernel(ctx.artifact.decl, ctx.options.codegen);
    if (!lowered.ok()) return lowered.status();
    ctx.artifact.device_ir = std::move(lowered).take();
    ctx.artifact.codegen = ctx.options.codegen;
    // Any previously attached bytecode was compiled from the old IR.
    ctx.artifact.bytecode.reset();
    ctx.Note(name(),
             StrFormat("lowered for %s: %zu variants, %zu buffers",
                       to_string(ctx.artifact.device_ir.backend),
                       ctx.artifact.device_ir.variants.size(),
                       ctx.artifact.device_ir.buffers.size()));
    return Status::Ok();
  }
};

/// Estimate: DeviceKernel -> register/shared-memory footprint (the nvcc
/// stand-in the occupancy model consumes).
class EstimateResourcesPass final : public Pass {
 public:
  const char* name() const override { return "estimate"; }
  Status Run(CompilationContext& ctx) const override {
    ctx.artifact.resources = codegen::EstimateResources(ctx.artifact.device_ir);
    ctx.Note(name(),
             StrFormat("%d regs/thread, %d B static smem",
                       ctx.artifact.resources.regs_per_thread,
                       ctx.artifact.resources.smem_static_bytes));
    return Status::Ok();
  }
};

/// Select: resources + device -> launch configuration, via Algorithm 2 or
/// the caller's forced configuration. When the caller asked for automatic
/// pixels-per-thread selection (pixels_per_thread == 0), the pass first
/// sweeps PPT in {1, 2, 4, 8}: each candidate is re-lowered and re-estimated,
/// then scored with an analytic per-pixel cost — the per-thread prologue
/// (index math, launch guard) amortised over ppt output pixels, divided by
/// the occupancy the fatter kernel still achieves. The winning IR replaces
/// the artifact before the ordinary configuration selection runs.
class SelectConfigPass final : public Pass {
 public:
  const char* name() const override { return "select_config"; }

  Status Run(CompilationContext& ctx) const override {
    // Profile-guided reselection first: a trustworthy measured winner
    // replaces both the PPT sweep and the heuristic. Challenge and
    // no-history rounds fall through and compile bit-identically to a
    // profile-less run.
    if (TrySelectFromProfile(ctx)) return Status::Ok();
    if (ctx.options.codegen.pixels_per_thread == 0) {
      Status swept = SelectPixelsPerThread(ctx);
      if (!swept.ok()) return swept;
    }
    CompiledKernel& out = ctx.artifact;
    const CompileOptions& options = ctx.options;
    if (options.forced_config) {
      out.config.config = *options.forced_config;
      out.config.occupancy = hw::ComputeOccupancy(
          options.device, out.config.config, out.resources);
      if (!out.config.occupancy.valid)
        return Status::Exhausted(StrFormat(
            "forced configuration %dx%d is invalid on %s: %s",
            out.config.config.block_x, out.config.config.block_y,
            options.device.name.c_str(), out.config.occupancy.reason.c_str()));
      ctx.Note(name(), StrFormat("forced config %dx%d",
                                 out.config.config.block_x,
                                 out.config.config.block_y));
    } else {
      hw::HeuristicInput input;
      input.device = options.device;
      input.resources = out.resources;
      input.border_handling = out.device_ir.has_boundary_variants();
      input.window = out.device_ir.bh_window;
      input.image_width = options.image_width;
      input.image_height = options.image_height;
      Result<hw::HeuristicChoice> choice = hw::SelectConfig(input);
      if (!choice.ok()) return choice.status();
      out.config = std::move(choice).take();
      ctx.Note(name(),
               StrFormat("selected config %dx%d, occupancy %.0f%%",
                         out.config.config.block_x, out.config.config.block_y,
                         100.0 * out.config.occupancy.occupancy));
    }
    return Status::Ok();
  }

 private:
  /// Applies a measured profile winner (compiler/profile.hpp) when one
  /// exists: re-lowers at the winner's PPT if it differs, validates the
  /// winning configuration's occupancy, and installs it. Returns false
  /// whenever the ordinary sweep + heuristic should run instead — no
  /// profiles wired, no (fresh) history, a challenge round, or a winner
  /// that no longer validates on the device ("reselect.fallback").
  bool TrySelectFromProfile(CompilationContext& ctx) const {
    CompiledKernel& out = ctx.artifact;
    const CompileOptions& options = ctx.options;
    const SelectionDecision decision = DecideForCompile(
        options.profiles, options.profile_policy, out.source_fingerprint,
        options.codegen, options.device, options.image_width,
        options.image_height, options.forced_config.has_value());
    if (options.profiles != nullptr && ctx.options.trace != nullptr)
      ctx.options.trace->IncrementCounter(
          std::string("reselect.") + to_string(decision.mode));
    if (decision.mode != SelectionMode::kMeasured) return false;
    const ProfileEntry& winner = decision.winner;
    // Stage the (possibly re-lowered) IR in locals and validate before
    // committing: a fallback must leave the artifact exactly as a
    // profile-less compile would find it.
    ast::DeviceKernel relowered_ir;
    hw::KernelResources resources = out.resources;
    bool relowered = false;
    if (out.device_ir.ppt != winner.ppt) {
      // The winner was measured at a different pixels-per-thread: the IR
      // must match, or the configuration is meaningless.
      if (!out.decl.body) return false;  // hand-built artifact: cannot relower
      codegen::CodegenOptions copts = options.codegen;
      copts.pixels_per_thread = winner.ppt;
      Result<ast::DeviceKernel> lowered =
          codegen::LowerKernel(out.decl, copts);
      if (!lowered.ok()) {
        if (ctx.options.trace != nullptr)
          ctx.options.trace->IncrementCounter("reselect.fallback");
        return false;
      }
      relowered_ir = std::move(lowered).take();
      resources = codegen::EstimateResources(relowered_ir);
      relowered = true;
    }
    const hw::OccupancyResult occupancy =
        hw::ComputeOccupancy(options.device, winner.config, resources);
    if (!occupancy.valid) {
      if (ctx.options.trace != nullptr)
        ctx.options.trace->IncrementCounter("reselect.fallback");
      return false;
    }
    if (relowered) {
      out.device_ir = std::move(relowered_ir);
      out.resources = resources;
      out.bytecode.reset();  // compiled from the replaced IR
    }
    out.config.config = winner.config;
    out.config.occupancy = occupancy;
    out.config.border_threads = hw::ApproxBorderThreads(
        winner.config, options.image_width, options.image_height,
        out.device_ir.bh_window, out.device_ir.ppt);
    ctx.Note(name(),
             StrFormat("profile-guided config %dx%d (ppt %d, %.4f ms EWMA "
                       "over %lld samples)",
                       winner.config.block_x, winner.config.block_y,
                       winner.ppt, winner.ms,
                       static_cast<long long>(winner.samples)));
    return true;
  }

  /// Analytic cost model behind the PPT axis of the extended Algorithm 2:
  /// per-pixel work is the variant's op count over its ppt output pixels
  /// plus a fixed per-thread prologue amortised the same way, all divided
  /// by achieved occupancy (a half-occupied device doubles effective cost).
  static double PptScore(const hw::KernelResources& resources,
                         double occupancy) {
    // Index computation, launch guard, address setup: work every thread
    // pays once regardless of how many pixels it produces.
    constexpr double kThreadPrologueOps = 16.0;
    const int ppt = resources.ppt > 0 ? resources.ppt : 1;
    const double per_pixel =
        (static_cast<double>(resources.approx_ops) + kThreadPrologueOps) /
        static_cast<double>(ppt);
    return per_pixel / std::max(occupancy, 1e-6);
  }

  Status SelectPixelsPerThread(CompilationContext& ctx) const {
    if (!ctx.artifact.decl.body)
      return Status::Invalid(
          "pixels_per_thread=0 (auto) requires a parsed kernel declaration");
    static constexpr int kCandidates[] = {1, 2, 4, 8};
    int best_ppt = 1;
    double best_score = 0.0;
    ast::DeviceKernel best_ir;
    hw::KernelResources best_res;
    bool have_best = false;
    for (int ppt : kCandidates) {
      codegen::CodegenOptions copts = ctx.options.codegen;
      copts.pixels_per_thread = ppt;
      Result<ast::DeviceKernel> lowered =
          codegen::LowerKernel(ctx.artifact.decl, copts);
      if (!lowered.ok()) {
        if (ppt == 1) return lowered.status();
        continue;  // candidate not lowerable; the swept space just shrinks
      }
      hw::KernelResources res = codegen::EstimateResources(lowered.value());
      double occupancy = 0.0;
      if (ctx.options.forced_config) {
        const hw::OccupancyResult occ = hw::ComputeOccupancy(
            ctx.options.device, *ctx.options.forced_config, res);
        if (!occ.valid) continue;  // too fat for the forced configuration
        occupancy = occ.occupancy;
      } else {
        hw::HeuristicInput input;
        input.device = ctx.options.device;
        input.resources = res;
        input.border_handling = lowered.value().has_boundary_variants();
        input.window = lowered.value().bh_window;
        input.image_width = ctx.options.image_width;
        input.image_height = ctx.options.image_height;
        Result<hw::HeuristicChoice> choice = hw::SelectConfig(input);
        if (!choice.ok()) continue;  // no valid configuration at this ppt
        // SelectConfig is best-effort about degenerate region grids (tiny
        // images keep their classic behaviour); the sweep is not — a ppt>1
        // candidate that cannot pass region dispatch is simply not taken.
        if (ppt > 1 && input.border_handling &&
            hw::ComputeRegionGrid(choice.value().config,
                                  ctx.options.image_width,
                                  ctx.options.image_height,
                                  lowered.value().bh_window, ppt)
                .degenerate())
          continue;
        occupancy = choice.value().occupancy.occupancy;
      }
      const double score = PptScore(res, occupancy);
      if (!have_best || score < best_score) {
        have_best = true;
        best_ppt = ppt;
        best_score = score;
        best_ir = std::move(lowered).take();
        best_res = res;
      }
    }
    if (!have_best)
      return Status::Exhausted(
          "no pixels-per-thread candidate is valid on device " +
          ctx.options.device.name);
    if (ctx.artifact.device_ir.ppt != best_ppt) {
      ctx.artifact.device_ir = std::move(best_ir);
      ctx.artifact.resources = best_res;
      // Any attached bytecode was compiled from the replaced IR.
      ctx.artifact.bytecode.reset();
    }
    ctx.Note(name(), StrFormat("auto pixels-per-thread: selected %d "
                               "(%.1f weighted ops/pixel)",
                               best_ppt, best_score));
    if (ctx.options.trace)
      ctx.options.trace->IncrementCounter("ppt.selected", best_ppt);
    return Status::Ok();
  }
};

/// Emit: DeviceKernel + configuration -> kernel source text through the
/// registered codegen backend.
class EmitPass final : public Pass {
 public:
  const char* name() const override { return "emit"; }
  Status Run(CompilationContext& ctx) const override {
    codegen::EmitContext ectx;
    ectx.config = ctx.artifact.config.config;
    ectx.image_width = ctx.options.image_width;
    ectx.image_height = ctx.options.image_height;
    ctx.artifact.source = codegen::EmitKernelSource(ctx.artifact.device_ir,
                                                    ectx);
    ctx.Note(name(), StrFormat("emitted %zu bytes of %s source",
                               ctx.artifact.source.size(),
                               to_string(ctx.artifact.device_ir.backend)));
    return Status::Ok();
  }
};

/// Bytecode: DeviceKernel -> region-specialised simulator programs. Runs
/// after emit so the artifact is complete either way; a bail-out (an IR
/// construct the bytecode compiler doesn't model) downgrades to a warning
/// and the simulator uses the AST interpreter for this kernel.
class BytecodePass final : public Pass {
 public:
  const char* name() const override { return "bytecode"; }
  Status Run(CompilationContext& ctx) const override {
    if (ctx.artifact.bytecode) {
      ctx.Note(name(), StrFormat("reusing %zu cached programs",
                                 ctx.artifact.bytecode->programs.size()));
      return Status::Ok();
    }
    Result<std::shared_ptr<const sim::ProgramSet>> compiled =
        sim::CompileToBytecode(ctx.artifact.device_ir);
    if (!compiled.ok()) {
      ctx.Warn(name(), "falling back to AST engine: " +
                           compiled.status().ToString());
      ctx.Note(name(), "no bytecode programs attached");
      if (ctx.options.trace)
        ctx.options.trace->IncrementCounter("bytecode.fallback");
      return Status::Ok();
    }
    ctx.artifact.bytecode = std::move(compiled).take();
    ctx.Note(name(),
             StrFormat("compiled %zu programs, %lld instructions",
                       ctx.artifact.bytecode->programs.size(),
                       static_cast<long long>(
                           ctx.artifact.bytecode->total_instructions)));
    if (ctx.options.trace) {
      ctx.options.trace->IncrementCounter(
          "bytecode.programs",
          static_cast<long long>(ctx.artifact.bytecode->programs.size()));
      ctx.options.trace->IncrementCounter(
          "bytecode.instructions", ctx.artifact.bytecode->total_instructions);
      ctx.options.trace->IncrementCounter(
          "bytecode.compile_us",
          static_cast<long long>(ctx.artifact.bytecode->compile_ms * 1000.0));
    }
    return Status::Ok();
  }
};

}  // namespace

PassManager& PassManager::Add(std::unique_ptr<Pass> pass) {
  passes_.push_back(std::move(pass));
  return *this;
}

void PassManager::set_dump_hook(std::string after, DumpHook hook) {
  dump_after_ = std::move(after);
  dump_hook_ = std::move(hook);
}

Status PassManager::Run(CompilationContext& ctx) const {
  for (const std::unique_ptr<Pass>& pass : passes_) {
    const std::size_t first_diag = ctx.diagnostics.size();
    Stopwatch stopwatch;
    Status status;
    {
      sim::TraceSpan span(ctx.options.trace,
                          std::string(pass->name()) + " " + ctx.KernelName(),
                          "compile");
      status = pass->Run(ctx);
      if (ctx.options.trace != nullptr) {
        support::Json args = support::Json::Object();
        args["pass"] = pass->name();
        if (!status.ok()) args["error"] = status.ToString();
        if (ctx.diagnostics.size() > first_diag) {
          support::Json notes = support::Json::Array();
          for (std::size_t i = first_diag; i < ctx.diagnostics.size(); ++i)
            notes.push_back(ctx.diagnostics[i].message);
          args["diagnostics"] = std::move(notes);
        }
        span.set_args(std::move(args));
      }
    }
    ctx.timings.push_back({pass->name(), stopwatch.ElapsedMs()});
    if (!status.ok()) {
      ctx.diagnostics.push_back(
          {pass->name(), DiagSeverity::kError, status.ToString()});
      return status;
    }
    if (dump_hook_ && dump_after_ == pass->name()) dump_hook_(*pass, ctx);
  }
  return Status::Ok();
}

std::vector<std::string> PassManager::names() const {
  std::vector<std::string> out;
  out.reserve(passes_.size());
  for (const std::unique_ptr<Pass>& pass : passes_) out.push_back(pass->name());
  return out;
}

std::unique_ptr<Pass> MakeFusePass() { return std::make_unique<FusePass>(); }
std::unique_ptr<Pass> MakeParsePass() { return std::make_unique<ParsePass>(); }
std::unique_ptr<Pass> MakeLowerPass() { return std::make_unique<LowerPass>(); }
std::unique_ptr<Pass> MakeEstimateResourcesPass() {
  return std::make_unique<EstimateResourcesPass>();
}
std::unique_ptr<Pass> MakeSelectConfigPass() {
  return std::make_unique<SelectConfigPass>();
}
std::unique_ptr<Pass> MakeEmitPass() { return std::make_unique<EmitPass>(); }
std::unique_ptr<Pass> MakeBytecodePass() {
  return std::make_unique<BytecodePass>();
}

PassManager BuildCompilePipeline() {
  PassManager pm;
  pm.Add(MakeFusePass())
      .Add(MakeParsePass())
      .Add(MakeLowerPass())
      .Add(MakeEstimateResourcesPass())
      .Add(MakeSelectConfigPass())
      .Add(MakeEmitPass())
      .Add(MakeBytecodePass());
  return pm;
}

PassManager BuildDevicePipeline() {
  PassManager pm;
  pm.Add(MakeLowerPass())
      .Add(MakeEstimateResourcesPass())
      .Add(MakeSelectConfigPass())
      .Add(MakeEmitPass())
      .Add(MakeBytecodePass());
  return pm;
}

PassManager BuildTargetPipeline() {
  PassManager pm;
  pm.Add(MakeSelectConfigPass()).Add(MakeEmitPass()).Add(MakeBytecodePass());
  return pm;
}

const std::vector<std::string>& DefaultPassNames() {
  static const std::vector<std::string> names =
      BuildCompilePipeline().names();
  return names;
}

void DumpAfterPass(const Pass& pass, const CompilationContext& ctx) {
  const std::string name = pass.name();
  const CompiledKernel& a = ctx.artifact;
  std::fprintf(stderr, "--- after pass '%s' (kernel '%s') ---\n",
               name.c_str(), ctx.KernelName().c_str());
  if (name == "fuse") {
    if (ctx.source != nullptr) {
      std::fprintf(stderr, "  kernel '%s', %zu accessors\n",
                   ctx.source->name.c_str(), ctx.source->accessors.size());
      std::fputs(ctx.source->body.c_str(), stderr);
      std::fputc('\n', stderr);
    }
  } else if (name == "parse") {
    for (const ast::ParamInfo& p : a.decl.params)
      std::fprintf(stderr, "  param %s\n", p.name.c_str());
    for (const ast::AccessorInfo& acc : a.decl.accessors)
      std::fprintf(stderr, "  accessor %s: window %dx%d, boundary %s\n",
                   acc.name.c_str(), acc.window.size_x(), acc.window.size_y(),
                   to_string(acc.boundary));
    for (const ast::MaskInfo& m : a.decl.masks)
      std::fprintf(stderr, "  mask %s: %dx%d, %s\n", m.name.c_str(), m.size_x,
                   m.size_y, m.is_static() ? "static" : "dynamic");
  } else if (name == "lower") {
    std::fprintf(stderr, "  backend %s, %zu variants, %zu buffers, "
                 "%zu const masks, %zu global masks\n",
                 to_string(a.device_ir.backend), a.device_ir.variants.size(),
                 a.device_ir.buffers.size(), a.device_ir.const_masks.size(),
                 a.device_ir.global_masks.size());
  } else if (name == "estimate") {
    std::fprintf(stderr, "  %d regs/thread, %d B static smem\n",
                 a.resources.regs_per_thread, a.resources.smem_static_bytes);
  } else if (name == "select_config") {
    std::fprintf(stderr, "  config %dx%d, occupancy %.0f%%\n",
                 a.config.config.block_x, a.config.config.block_y,
                 100.0 * a.config.occupancy.occupancy);
  } else if (name == "emit") {
    std::fputs(a.source.c_str(), stderr);
  }
  std::fprintf(stderr, "--- end dump ---\n");
}

}  // namespace hipacc::compiler
