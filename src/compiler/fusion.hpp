// Kernel fusion at the DSL-source level. Three fusion kinds, applied by the
// fusion planner (compiler/fusion_planner.*) and replayed by the compiler's
// "fuse" pass (compiler/pass.cpp) from CompileOptions::fusion so the driver
// fingerprints the *fused* source (fused and unfused compilations never
// collide in the cache):
//
//  * kPoint — producer→consumer fusion of a point-wise consumer (every
//    accessor a 1x1 window): the producer's output pixel becomes a local
//    variable substituted for the consumer's reads, eliminating the
//    intermediate image (one global write + re-read per pixel).
//
//  * kHorizontal — sibling fusion: two stages reading the same input over
//    the same iteration space merge into one multi-output kernel. The
//    sibling's `output()` writes are retargeted to a named extra output
//    (`output(<name>) = ...`, lowered to an `_out_<name>` buffer) and, when
//    the boundary semantics agree, the shared input collapses into one
//    accessor so scratchpad staging loads the tile once for both bodies.
//    Neither intermediate is eliminated — the win is the shared input
//    traffic and one launch instead of two.
//
//  * kHalo — producer→local-operator fusion with halo recomputation: an
//    expression-bodied producer (single `output() = expr;`) is inlined into
//    a consuming local operator *at every tap offset*. The consumer's read
//    of the intermediate at (x()+dx, y()+dy) becomes the producer expression
//    re-evaluated at the boundary-remapped coordinate, with the remap
//    (clamp / mirror, image extents baked in as literals) emitted as DSL
//    arithmetic so fused and unfused pixels agree bit for bit. The
//    producer's input accessors survive with their windows extended by the
//    consumer's window (the extended tile+halo region the scratchpad then
//    stages); the intermediate image is eliminated at the price of
//    re-computing the producer once per consumer tap.
//
// Legality is checked here (never assumed); profitability lives in the
// planner. The graph runtime adds the structural rules (single consumer
// edge for kPoint/kHalo, no external output, matching extents).
#pragma once

#include <string>
#include <vector>

#include "frontend/parser.hpp"

namespace hipacc::compiler {

/// Candidate kind of one fusion rewrite.
enum class FuseKind { kPoint, kHorizontal, kHalo };

const char* to_string(FuseKind kind) noexcept;

/// Which fusion kinds the runtime may apply — the `--fuse=` flag.
enum class FusionMode { kOff, kPoint, kHorizontal, kHalo, kAll };

const char* to_string(FusionMode mode) noexcept;

/// Parses "off" | "point" | "horizontal" | "halo" | "all".
Result<FusionMode> ParseFusionMode(const std::string& text);

/// True when `mode` permits candidates of `kind`.
bool FusionModeAllows(FusionMode mode, FuseKind kind) noexcept;

/// One fusion step. The populated fields depend on `kind`:
///  * kPoint / kHalo: `consumer` is the consuming kernel and `accessor` its
///    accessor fed by the current (producer) kernel; kHalo additionally
///    bakes `image_width` / `image_height` into the boundary remap.
///  * kHorizontal: `consumer` is the sibling kernel, `accessor` the current
///    kernel's accessor of the shared input, `peer_accessor` the sibling's,
///    and `output_name` the extra-output name its image is written under.
struct FusionRequest {
  FuseKind kind = FuseKind::kPoint;
  frontend::KernelSource consumer;
  std::string accessor;
  std::string peer_accessor;
  std::string output_name;
  int image_width = 0;
  int image_height = 0;
};

/// Fuses one point-wise consumer into `producer`. The fused kernel is named
/// "<producer>_<consumer>"; its accessor list is the producer's accessors
/// followed by the consumer's remaining ones, so the producer's (windowed)
/// accessor keeps driving boundary-region selection.
Result<frontend::KernelSource> FusePointwise(
    const frontend::KernelSource& producer,
    const frontend::KernelSource& consumer, const std::string& accessor);

/// Merges sibling `b` into `a` as a multi-output kernel: `b`'s output()
/// writes become `output(<output_name>)`, and its reads of `b_accessor`
/// (the shared input) are redirected to `a_accessor` when the two agree on
/// boundary semantics (the merged accessor's window is the element-wise
/// max). `b` must not itself carry extra outputs; all other names must be
/// disjoint.
Result<frontend::KernelSource> FuseHorizontal(
    const frontend::KernelSource& a, const std::string& a_accessor,
    const frontend::KernelSource& b, const std::string& b_accessor,
    const std::string& output_name);

/// Inlines an expression-bodied `producer` into `consumer` at every read of
/// `accessor`, re-evaluating the producer at the boundary-remapped tap
/// coordinate (see file comment). Requires the consumed accessor's boundary
/// mode to be kClamp or kMirror (kRepeat breaks scratchpad tile locality,
/// kConstant would need f(c) != c, kUndefined has no defined remap) and the
/// consumer's window to fit the image (`image_width` / `image_height`).
Result<frontend::KernelSource> FuseHalo(const frontend::KernelSource& producer,
                                        const frontend::KernelSource& consumer,
                                        const std::string& accessor,
                                        int image_width, int image_height);

/// Applies a chain of fusion steps in order, each step treating the previous
/// result as the current kernel and dispatching on the request kind.
Result<frontend::KernelSource> ApplyFusion(
    const frontend::KernelSource& producer,
    const std::vector<FusionRequest>& chain);

}  // namespace hipacc::compiler
