#include "support/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "support/string_utils.hpp"

namespace hipacc::support {

Json& Json::operator[](const std::string& key) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  for (Member& member : members_)
    if (member.first == key) return member.second;
  members_.emplace_back(key, Json());
  return members_.back().second;
}

const Json* Json::Find(const std::string& key) const noexcept {
  if (type_ != Type::kObject) return nullptr;
  for (const Member& member : members_)
    if (member.first == key) return &member.second;
  return nullptr;
}

bool Json::operator==(const Json& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull: return true;
    case Type::kBool: return bool_ == other.bool_;
    case Type::kNumber: return number_ == other.number_;
    case Type::kString: return string_ == other.string_;
    case Type::kArray: return elements_ == other.elements_;
    case Type::kObject: return members_ == other.members_;
  }
  return false;
}

std::string Json::Quote(const std::string& text) {
  std::string out = "\"";
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          out += StrFormat("\\u%04x", c);
        else
          out += c;
    }
  }
  out += '"';
  return out;
}

namespace {

std::string FormatNumber(double value, bool integral) {
  if (integral) return StrFormat("%lld", static_cast<long long>(value));
  if (!std::isfinite(value)) return "null";  // JSON has no Inf/NaN
  std::string s = StrFormat("%.17g", value);
  // Prefer the shortest representation that round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    std::string candidate = StrFormat("%.*g", precision, value);
    if (std::strtod(candidate.c_str(), nullptr) == value) {
      s = candidate;
      break;
    }
  }
  return s;
}

}  // namespace

void Json::DumpTo(std::string* out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const std::string pad =
      pretty ? "\n" + std::string(static_cast<size_t>(indent) * (depth + 1), ' ')
             : "";
  const std::string close_pad =
      pretty ? "\n" + std::string(static_cast<size_t>(indent) * depth, ' ') : "";
  const char* colon = pretty ? ": " : ":";
  switch (type_) {
    case Type::kNull: *out += "null"; break;
    case Type::kBool: *out += bool_ ? "true" : "false"; break;
    case Type::kNumber: *out += FormatNumber(number_, integral_); break;
    case Type::kString: *out += Quote(string_); break;
    case Type::kArray: {
      if (elements_.empty()) {
        *out += "[]";
        break;
      }
      *out += '[';
      for (size_t i = 0; i < elements_.size(); ++i) {
        if (i) *out += pretty ? "," : ",";
        *out += pad;
        elements_[i].DumpTo(out, indent, depth + 1);
      }
      *out += close_pad;
      *out += ']';
      break;
    }
    case Type::kObject: {
      if (members_.empty()) {
        *out += "{}";
        break;
      }
      *out += '{';
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i) *out += ",";
        *out += pad;
        *out += Quote(members_[i].first);
        *out += colon;
        members_[i].second.DumpTo(out, indent, depth + 1);
      }
      *out += close_pad;
      *out += '}';
      break;
    }
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

namespace {

/// Recursive-descent JSON parser over the raw text. Position-tracked so
/// errors name the offending offset.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<Json> Run() {
    Json value;
    HIPACC_RETURN_IF_ERROR(ParseValue(&value, 0));
    SkipWhitespace();
    if (pos_ != text_.size())
      return Error("trailing characters after top-level value");
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return Status::Parse(
        StrFormat("JSON parse error at offset %zu: %s", pos_, what.c_str()));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ConsumeLiteral(const char* literal) {
    for (const char* p = literal; *p; ++p)
      if (pos_ >= text_.size() || text_[pos_++] != *p)
        return Error(StrFormat("expected '%s'", literal));
    return Status::Ok();
  }

  Status ParseValue(Json* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case 'n': HIPACC_RETURN_IF_ERROR(ConsumeLiteral("null")); *out = Json(); return Status::Ok();
      case 't': HIPACC_RETURN_IF_ERROR(ConsumeLiteral("true")); *out = Json(true); return Status::Ok();
      case 'f': HIPACC_RETURN_IF_ERROR(ConsumeLiteral("false")); *out = Json(false); return Status::Ok();
      case '"': return ParseString(out);
      case '[': return ParseArray(out, depth);
      case '{': return ParseObject(out, depth);
      default: return ParseNumber(out);
    }
  }

  Status ParseString(Json* out) {
    std::string value;
    HIPACC_RETURN_IF_ERROR(ParseRawString(&value));
    *out = Json(std::move(value));
    return Status::Ok();
  }

  Status ParseRawString(std::string* out) {
    if (!Consume('"')) return Error("expected '\"'");
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (static_cast<unsigned char>(c) < 0x20)
        return Error("unescaped control character in string");
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size()) return Error("truncated \\u escape");
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Error("invalid hex digit in \\u escape");
          }
          // Encode the code point as UTF-8 (surrogate pairs unsupported —
          // the writer never emits them; reject rather than corrupt).
          if (code >= 0xD800 && code <= 0xDFFF)
            return Error("surrogate \\u escapes are not supported");
          if (code < 0x80) {
            *out += static_cast<char>(code);
          } else if (code < 0x800) {
            *out += static_cast<char>(0xC0 | (code >> 6));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            *out += static_cast<char>(0xE0 | (code >> 12));
            *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return Error("invalid escape sequence");
      }
    }
    return Error("unterminated string");
  }

  static bool MatchesNumberGrammar(const std::string& token) {
    size_t i = 0;
    const auto digits = [&](size_t* count) {
      const size_t first = i;
      while (i < token.size() &&
             std::isdigit(static_cast<unsigned char>(token[i])))
        ++i;
      *count = i - first;
    };
    if (i < token.size() && token[i] == '-') ++i;
    size_t int_digits = 0;
    const size_t int_start = i;
    digits(&int_digits);
    if (int_digits == 0 || (int_digits > 1 && token[int_start] == '0'))
      return false;
    if (i < token.size() && token[i] == '.') {
      ++i;
      size_t frac_digits = 0;
      digits(&frac_digits);
      if (frac_digits == 0) return false;
    }
    if (i < token.size() && (token[i] == 'e' || token[i] == 'E')) {
      ++i;
      if (i < token.size() && (token[i] == '+' || token[i] == '-')) ++i;
      size_t exp_digits = 0;
      digits(&exp_digits);
      if (exp_digits == 0) return false;
    }
    return i == token.size();
  }

  Status ParseNumber(Json* out) {
    const size_t start = pos_;
    if (Consume('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) return Error("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    // Enforce the JSON number grammar -?(0|[1-9][0-9]*)(.[0-9]+)?(e...)?;
    // strtod alone is laxer (it accepts "+1", "1.", ".5", "01", hex floats).
    if (!MatchesNumberGrammar(token))
      return Error("malformed number '" + token + "'");
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size())
      return Error("malformed number '" + token + "'");
    const bool integral = token.find_first_of(".eE") == std::string::npos &&
                          value >= -9.007199254740992e15 &&
                          value <= 9.007199254740992e15;
    *out = integral ? Json(static_cast<long long>(value)) : Json(value);
    return Status::Ok();
  }

  Status ParseArray(Json* out, int depth) {
    ++pos_;  // '['
    *out = Json::Array();
    SkipWhitespace();
    if (Consume(']')) return Status::Ok();
    while (true) {
      Json element;
      HIPACC_RETURN_IF_ERROR(ParseValue(&element, depth + 1));
      out->push_back(std::move(element));
      SkipWhitespace();
      if (Consume(']')) return Status::Ok();
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  Status ParseObject(Json* out, int depth) {
    ++pos_;  // '{'
    *out = Json::Object();
    SkipWhitespace();
    if (Consume('}')) return Status::Ok();
    while (true) {
      SkipWhitespace();
      std::string key;
      HIPACC_RETURN_IF_ERROR(ParseRawString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      Json value;
      HIPACC_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      (*out)[key] = std::move(value);
      SkipWhitespace();
      if (Consume('}')) return Status::Ok();
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Json> Json::Parse(const std::string& text) {
  return Parser(text).Run();
}

Status WriteFile(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Invalid("cannot open for writing: " + path);
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  out.flush();
  if (!out) return Status::Internal("short write to " + path);
  return Status::Ok();
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::Invalid("cannot open for reading: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace hipacc::support
