#include "runtime/stream_executor.hpp"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <map>
#include <mutex>
#include <thread>

#include "runtime/bindings.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "support/stopwatch.hpp"

namespace hipacc::runtime {

const char* to_string(StreamMode mode) noexcept {
  switch (mode) {
    case StreamMode::kSerial: return "serial";
    case StreamMode::kOverlap: return "overlap";
  }
  return "?";
}

Result<StreamMode> ParseStreamMode(const std::string& text) {
  if (text == "serial") return StreamMode::kSerial;
  if (text == "overlap") return StreamMode::kOverlap;
  return Status::Invalid("unknown stream mode '" + text +
                         "' (expected serial|overlap)");
}

Result<StreamOptions> StreamCliConfig::ToOptions() const {
  if (frames < 1) return Status::Invalid("--frames must be >= 1");
  if (in_flight < 1) return Status::Invalid("--in-flight must be >= 1");
  if (fps_target < 0) return Status::Invalid("--fps-target must be >= 0");
  Result<StreamMode> parsed = ParseStreamMode(mode);
  if (!parsed.ok()) return parsed.status();
  StreamOptions options;
  options.mode = parsed.value();
  options.in_flight = in_flight;
  options.fps_target = fps_target;
  return options;
}

void RegisterStreamFlags(support::CliParser* cli, StreamCliConfig* config) {
  cli->Int("frames", &config->frames, "N", "frames to stream");
  cli->Int("in-flight", &config->in_flight, "N",
           "max frames admitted but not yet retired (overlap mode)");
  cli->Int("fps-target", &config->fps_target, "N",
           "frame-rate target the report compares against (0 = none)");
  cli->String("stream-mode", &config->mode, "MODE",
              "frame window policy: serial | overlap");
}

double StreamStats::LatencyPercentile(double p) const {
  if (latencies_ms.empty()) return 0.0;
  std::vector<double> sorted = latencies_ms;
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::min(100.0, std::max(0.0, p));
  const double rank =
      clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

/// One in-flight frame: its FrameExec, its caller-provided bindings, and the
/// per-frame scheduling state (remaining dependency counts).
struct StreamExecutor::FrameState {
  std::unique_ptr<FrameExec> exec;
  PipelineGraph::InputBindings inputs;
  PipelineGraph::OutputBindings outputs;
  std::vector<int> deps;  ///< remaining unfinished producers, per node
  int remaining = 0;      ///< nodes not yet executed
  bool done = false;      ///< every node ran; eligible to retire
  double admit_ms = 0.0;
};

/// The workers' shared scheduling state. One mutex guards everything; stage
/// execution, binding, and retirement all happen with it released.
struct StreamExecutor::Shared {
  std::mutex mutex;
  std::condition_variable cv;
  long long total = 0;
  long long admitted = 0;
  long long retired = 0;
  bool binding = false;   ///< a worker is inside the bind callback
  bool retiring = false;  ///< a worker is driving the in-order retire chain
  int executing = 0;      ///< stages currently running
  Status error = Status::Ok();
  std::map<long long, FrameState> frames;
  /// Ready nodes, keyed by frame: workers always drain the *oldest* frame
  /// first so frames retire (and their buffers free) as early as possible.
  std::map<long long, std::vector<int>> ready;
  const FrameBinder* binder = nullptr;
  const FrameRetirer* retirer = nullptr;
  Stopwatch clock;
  std::vector<double> latencies;
  int max_in_flight = 0;
};

StreamExecutor::StreamExecutor(PipelineGraph& graph,
                               GraphOptions graph_options, StreamOptions stream)
    : graph_(graph),
      graph_options_(std::move(graph_options)),
      stream_(stream) {}

StreamExecutor::~StreamExecutor() = default;

int StreamExecutor::window() const noexcept {
  return stream_.mode == StreamMode::kSerial ? 1
                                             : std::max(1, stream_.in_flight);
}

Status StreamExecutor::Prepare() {
  if (prepared_) return Status::Ok();
  Result<GraphPlan> plan = GraphPlan::Build(graph_, graph_options_);
  if (!plan.ok()) return plan.status();
  plan_ = std::move(plan).take();
  prepared_ = true;
  return Status::Ok();
}

void StreamExecutor::WorkerLoop(Shared* s) {
  std::unique_lock<std::mutex> lock(s->mutex);
  for (;;) {
    // 1. Execute a ready stage, oldest admitted frame first.
    if (!s->ready.empty()) {
      auto it = s->ready.begin();
      const long long frame = it->first;
      const int node = it->second.back();
      it->second.pop_back();
      if (it->second.empty()) s->ready.erase(it);
      FrameState& state = s->frames.at(frame);
      ++s->executing;
      lock.unlock();
      Status status = state.exec->ExecStage(node);
      lock.lock();
      --s->executing;
      if (!status.ok()) {
        if (s->error.ok()) s->error = status;
        s->ready.clear();
        s->cv.notify_all();
        continue;
      }
      for (int consumer :
           plan_.dag.consumers[static_cast<std::size_t>(node)]) {
        if (--state.deps[static_cast<std::size_t>(consumer)] == 0)
          s->ready[frame].push_back(consumer);
      }
      if (--state.remaining == 0) {
        state.done = true;
        // Frames retire strictly in admission order; a frame that finished
        // early waits for its elders. One worker drives the whole chain.
        if (!s->retiring && frame == s->retired && s->error.ok()) {
          s->retiring = true;
          while (s->error.ok()) {
            auto oldest = s->frames.find(s->retired);
            if (oldest == s->frames.end() || !oldest->second.done) break;
            FrameState& retire = oldest->second;
            const long long epoch = s->retired;
            lock.unlock();
            Status retire_status = retire.exec->CopyOutputs(retire.outputs);
            std::vector<compiler::KeyedObservation> observations =
                retire.exec->TakeObservations();
            retire.exec->ReleaseRemaining();
            // One batched flush per frame, off the per-launch hot path —
            // the store's mutex (and, disk-backed, its FileLock) is taken
            // once per epoch instead of once per kernel launch.
            if (retire_status.ok() &&
                graph_options_.run.profiles != nullptr &&
                !observations.empty())
              graph_options_.run.profiles->RecordBatch(observations);
            const double latency = s->clock.ElapsedMs() - retire.admit_ms;
            if (retire_status.ok() && s->retirer != nullptr)
              retire_status = (*s->retirer)(epoch);
            if (graph_options_.run.trace != nullptr)
              graph_options_.run.trace->IncrementCounter("stream.frames");
            lock.lock();
            s->latencies.push_back(latency);
            s->frames.erase(oldest);
            ++s->retired;
            if (!retire_status.ok()) {
              if (s->error.ok()) s->error = retire_status;
              s->ready.clear();
            }
          }
          s->retiring = false;
        }
      }
      s->cv.notify_all();
      continue;
    }
    // 2. Admit the next frame when the window has room. Binding is
    // exclusive, so bind callbacks run one at a time, in frame order.
    if (s->error.ok() && !s->binding && s->admitted < s->total &&
        s->admitted - s->retired < window()) {
      const long long frame = s->admitted++;
      s->binding = true;
      const double admit_ms = s->clock.ElapsedMs();
      lock.unlock();
      FrameState state;
      state.admit_ms = admit_ms;
      Status status = (*s->binder)(frame, &state.inputs, &state.outputs);
      if (status.ok())
        status = plan_.ValidateBindings(state.inputs, state.outputs);
      if (status.ok()) {
        // Epoch frame+1: epoch 0 is the one-shot Run() lane in traces.
        state.exec = std::make_unique<FrameExec>(plan_, frame + 1);
        state.deps = plan_.dag.dependencies;
        state.remaining = plan_.dag.node_count();
      }
      lock.lock();
      s->binding = false;
      if (!status.ok()) {
        if (s->error.ok()) s->error = status;
        s->cv.notify_all();
        continue;
      }
      FrameState& placed = s->frames[frame] = std::move(state);
      placed.exec->BindInputs(&placed.inputs);
      std::vector<int>& queue = s->ready[frame];
      for (std::size_t i = 0; i < plan_.dag.dependencies.size(); ++i)
        if (plan_.dag.dependencies[i] == 0)
          queue.push_back(static_cast<int>(i));
      s->max_in_flight =
          std::max(s->max_in_flight, static_cast<int>(s->admitted - s->retired));
      s->cv.notify_all();
      continue;
    }
    // 3. Done — every frame retired, or a failure fully drained.
    if ((s->error.ok() && s->retired == s->total) ||
        (!s->error.ok() && s->executing == 0 && !s->binding && !s->retiring)) {
      s->cv.notify_all();
      return;
    }
    s->cv.wait(lock);
  }
}

Status StreamExecutor::Run(long long frames, const FrameBinder& binder,
                           const FrameRetirer& retirer) {
  HIPACC_RETURN_IF_ERROR(Prepare());
  stats_ = StreamStats{};
  if (frames < 0) return Status::Invalid("stream frame count must be >= 0");
  if (frames == 0) return Status::Ok();
  if (!binder) return Status::Invalid("stream run needs a frame binder");

  Shared shared;
  shared.total = frames;
  shared.binder = &binder;
  shared.retirer = retirer ? &retirer : nullptr;

  int workers = graph_options_.workers;
  if (workers <= 0)
    workers = static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i)
    pool.emplace_back([this, &shared] { WorkerLoop(&shared); });
  for (std::thread& worker : pool) worker.join();

  // On failure, frames can be stranded mid-window: return their buffers.
  for (auto& [frame, state] : shared.frames)
    if (state.exec != nullptr) state.exec->ReleaseRemaining();

  stats_.frames = static_cast<long long>(shared.latencies.size());
  stats_.wall_ms = shared.clock.ElapsedMs();
  stats_.fps = stats_.wall_ms > 0.0
                   ? static_cast<double>(stats_.frames) /
                         (stats_.wall_ms / 1000.0)
                   : 0.0;
  stats_.max_in_flight = shared.max_in_flight;
  stats_.latencies_ms = std::move(shared.latencies);
  if (graph_options_.run.trace != nullptr)
    graph_options_.run.trace->IncrementCounter("stream.runs");
  return shared.error;
}

namespace {

long long ImageBytes(const GraphPlan::Stage& stage) {
  return static_cast<long long>(stage.width) * stage.height *
         static_cast<long long>(sizeof(float));
}

}  // namespace

Status StreamExecutor::MeasureStageCosts() {
  if (!stage_model_ms_.empty()) return Status::Ok();
  stage_model_ms_.assign(plan_.stages.size(), 0.0);
  for (std::size_t i = 0; i < plan_.stages.size(); ++i) {
    const GraphPlan::Stage& stage = plan_.stages[i];
    if (stage.name.empty()) continue;
    switch (stage.kind) {
      case GraphPlan::Node::Kind::kSource:
        break;  // modelled as an H2D copy, not compute
      case GraphPlan::Node::Kind::kDecimate:
      case GraphPlan::Node::Kind::kUpsample:
        // Host resampling loops are bandwidth-shaped; charge the output's
        // bytes at interconnect bandwidth as a stand-in compute cost.
        stage_model_ms_[i] =
            sim::ModelCopyMs(ImageBytes(stage), graph_options_.run.device);
        break;
      case GraphPlan::Node::Kind::kKernel: {
        BindingSet bindings;
        std::vector<BufferPool::ImagePtr> held;
        for (const auto& [accessor, image] : stage.inputs) {
          const GraphPlan::Stage& producer = plan_.stages[
              static_cast<std::size_t>(plan_.producer.at(image))];
          held.push_back(plan_.pool->Acquire(producer.width, producer.height));
          bindings.Input(accessor, *held.back());
        }
        held.push_back(plan_.pool->Acquire(stage.width, stage.height));
        bindings.Output(*held.back());
        for (const auto& [output_name, image] : stage.extra_images) {
          held.push_back(plan_.pool->Acquire(stage.width, stage.height));
          bindings.Output(output_name, *held.back());
        }
        for (const auto& [name, value] : stage.scalars)
          bindings.Scalar(name, value);
        const compiler::CompiledKernel& ck = stage.compiled;
        Result<LaunchHolder> holder =
            BuildLaunch(ck.device_ir, ck.config.config, bindings);
        if (!holder.ok()) return holder.status();
        holder.value().launch.programs = ck.bytecode.get();
        sim::Simulator simulator(graph_options_.run.device,
                                 graph_options_.run.sim_options());
        Result<sim::LaunchStats> stats =
            simulator.Measure(holder.value().launch);
        if (!stats.ok()) return stats.status();
        stage_model_ms_[i] = stats.value().timing.total_ms;
        for (BufferPool::ImagePtr& image : held)
          plan_.pool->Release(std::move(image));
        break;
      }
    }
  }
  return Status::Ok();
}

Result<StreamModel> StreamExecutor::ModelThroughput(long long frames) {
  HIPACC_RETURN_IF_ERROR(Prepare());
  if (frames < 1)
    return Status::Invalid("throughput model needs at least one frame");
  HIPACC_RETURN_IF_ERROR(MeasureStageCosts());

  Result<std::vector<int>> order =
      TopologicalOrder(plan_.dag, [this](int i) {
        return plan_.stages[static_cast<std::size_t>(i)].name;
      });
  if (!order.ok()) return order.status();

  sim::StreamTimeline timeline(stream_.mode == StreamMode::kOverlap);
  const int depth = window();
  std::vector<double> frame_finish;
  frame_finish.reserve(static_cast<std::size_t>(frames));
  std::map<std::string, double> done;  // image -> modelled availability
  for (long long f = 0; f < frames; ++f) {
    // Frame f reuses the window slot frame f-depth held: its first op may
    // not start before that frame fully finished (buffer recycling), which
    // is exactly what bounds frames-in-flight on a real device.
    const double frame_ready =
        f >= depth ? frame_finish[static_cast<std::size_t>(f - depth)] : 0.0;
    done.clear();
    for (int index : order.value()) {
      const GraphPlan::Stage& stage =
          plan_.stages[static_cast<std::size_t>(index)];
      if (stage.name.empty()) continue;  // retired fusion producer
      double ready = frame_ready;
      for (const auto& [accessor, image] : stage.inputs)
        ready = std::max(ready, done.at(image));
      double end;
      if (stage.kind == GraphPlan::Node::Kind::kSource) {
        end = timeline.Enqueue(
            sim::StreamQueue::kCopyH2D, ready,
            sim::ModelCopyMs(ImageBytes(stage), graph_options_.run.device));
      } else {
        end = timeline.Enqueue(sim::StreamQueue::kCompute, ready,
                               stage_model_ms_[static_cast<std::size_t>(index)]);
      }
      done[stage.name] = end;
      for (const auto& [output_name, image] : stage.extra_images)
        done[image] = end;
    }
    double finish = frame_ready;
    for (const std::string& name : plan_.outputs) {
      const GraphPlan::Stage& producer = plan_.stages[
          static_cast<std::size_t>(plan_.producer.at(name))];
      finish = std::max(
          finish, timeline.Enqueue(sim::StreamQueue::kCopyD2H, done.at(name),
                                   sim::ModelCopyMs(ImageBytes(producer),
                                                    graph_options_.run.device)));
    }
    frame_finish.push_back(finish);
  }

  StreamModel model;
  model.finish_ms = timeline.finish_ms();
  model.fps = model.finish_ms > 0.0
                  ? static_cast<double>(frames) / (model.finish_ms / 1000.0)
                  : 0.0;
  model.compute_utilisation = timeline.utilisation(sim::StreamQueue::kCompute);
  model.h2d_utilisation = timeline.utilisation(sim::StreamQueue::kCopyH2D);
  model.d2h_utilisation = timeline.utilisation(sim::StreamQueue::kCopyD2H);
  return model;
}

}  // namespace hipacc::runtime
